package nacho_test

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nacho"
	"nacho/internal/fuzzer"
	"nacho/internal/systems"
)

// ledgerRecord decodes one line of the campaign run ledger the way an
// external consumer would — by the documented JSON field names, not by
// importing the internal type.
type ledgerRecord struct {
	V             int    `json:"v"`
	Program       string `json:"program"`
	System        string `json:"system"`
	Engine        string `json:"engine"`
	Cache         int    `json:"cache"`
	Ways          int    `json:"ways"`
	Schedule      string `json:"schedule"`
	Outcome       string `json:"outcome"`
	Error         string `json:"error"`
	Bypass        bool   `json:"bypass"`
	Cycles        uint64 `json:"cycles"`
	Instructions  uint64 `json:"instructions"`
	Checkpoints   uint64 `json:"checkpoints"`
	NVMReadBytes  uint64 `json:"nvm_read_bytes"`
	NVMWriteBytes uint64 `json:"nvm_write_bytes"`
	CacheHits     uint64 `json:"cache_hits"`
	CacheMisses   uint64 `json:"cache_misses"`
	PowerFailures uint64 `json:"power_failures"`
	WallMicros    uint64 `json:"wall_micros"`
}

func readLedgerFile(t *testing.T, path string) []ledgerRecord {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var recs []ledgerRecord
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var r ledgerRecord
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("ledger line %d: %v", len(recs)+1, err)
		}
		recs = append(recs, r)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return recs
}

// traceSpan is one duration event of the campaign Perfetto export, with the
// span hierarchy recovered from args.
type traceSpan struct {
	Kind   string
	Name   string
	ID     uint64
	Parent uint64
	Err    bool
}

func readTraceFile(t *testing.T, path string) map[uint64]traceSpan {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph   string `json:"ph"`
			Cat  string `json:"cat"`
			Name string `json:"name"`
			Args struct {
				ID     uint64 `json:"id"`
				Parent uint64 `json:"parent"`
				Error  bool   `json:"error"`
			} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("campaign trace is not valid JSON: %v", err)
	}
	spans := map[uint64]traceSpan{}
	for _, e := range doc.TraceEvents {
		if e.Ph != "X" {
			continue
		}
		if _, dup := spans[e.Args.ID]; dup {
			t.Errorf("duplicate span id %d in trace", e.Args.ID)
		}
		spans[e.Args.ID] = traceSpan{
			Kind: e.Cat, Name: e.Name,
			ID: e.Args.ID, Parent: e.Args.Parent, Err: e.Args.Error,
		}
	}
	return spans
}

// checkCampaignTree asserts the exported span set forms one well-nested
// campaign → cell → {run, window} hierarchy and returns the per-kind counts.
func checkCampaignTree(t *testing.T, spans map[uint64]traceSpan) map[string]int {
	t.Helper()
	counts := map[string]int{}
	for _, s := range spans {
		counts[s.Kind]++
		switch s.Kind {
		case "campaign":
			if s.Parent != 0 {
				t.Errorf("campaign span %d has parent %d, want 0", s.ID, s.Parent)
			}
		case "cell":
			if p, ok := spans[s.Parent]; !ok || p.Kind != "campaign" {
				t.Errorf("cell span %d parent %d is not the campaign root", s.ID, s.Parent)
			}
		case "run", "window":
			if p, ok := spans[s.Parent]; !ok || p.Kind != "cell" {
				t.Errorf("%s span %d parent %d is not a cell", s.Kind, s.ID, s.Parent)
			}
		default:
			t.Errorf("span %d has unknown kind %q", s.ID, s.Kind)
		}
	}
	if counts["campaign"] != 1 {
		t.Errorf("trace has %d campaign roots, want exactly 1", counts["campaign"])
	}
	return counts
}

// TestCampaignEndToEnd is the acceptance test for campaign observability: an
// experiment regeneration under StartCampaign must produce (a) a Perfetto
// trace whose nested campaign/cell/run spans cover every executed run, (b) a
// ledger with one record per run request whose counters reproduce the
// report's cells, and (c) a report byte-identical to the same regeneration
// with observability off.
func TestCampaignEndToEnd(t *testing.T) {
	// Baseline: the same experiment with no campaign installed.
	baseline, err := nacho.RunExperiment("fig5", []string{"crc"})
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	tracePath := filepath.Join(dir, "campaign.json")
	ledgerPath := filepath.Join(dir, "runs.jsonl")
	c, err := nacho.StartCampaign(nacho.CampaignConfig{
		Name: "e2e", TracePath: tracePath, LedgerPath: ledgerPath,
	})
	if err != nil {
		t.Fatal(err)
	}
	observed, err := nacho.RunExperiment("fig5", []string{"crc"})
	if err != nil {
		c.Close()
		t.Fatal(err)
	}
	runs, dropped := c.Runs(), c.DroppedSpans()
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	// (c) Observability must not perturb the science: byte-identical reports.
	if observed.Text != baseline.Text {
		t.Errorf("report text differs under campaign observability:\nwith:\n%s\nwithout:\n%s",
			observed.Text, baseline.Text)
	}
	if observed.CSV != baseline.CSV {
		t.Error("report CSV differs under campaign observability")
	}
	if dropped != 0 {
		t.Errorf("tracer dropped %d spans in a small campaign", dropped)
	}

	// (b) The ledger: one record per run request, executed runs and cache
	// hits both, every record well-formed.
	recs := readLedgerFile(t, ledgerPath)
	if uint64(len(recs)) != runs {
		t.Fatalf("ledger has %d records, Campaign.Runs reported %d", len(recs), runs)
	}
	executed := map[string]ledgerRecord{} // identity key -> the executed record
	for i, r := range recs {
		if r.V != 1 || r.Program != "crc" || r.System == "" || r.Engine == "" {
			t.Fatalf("ledger record %d malformed: %+v", i, r)
		}
		if r.Cycles == 0 || r.Instructions == 0 {
			t.Errorf("ledger record %d has zero counters: %+v", i, r)
		}
		key := fmt.Sprintf("%s/%s/%d/%d/%s", r.Program, r.System, r.Cache, r.Ways, r.Schedule)
		switch r.Outcome {
		case "ok":
			if prev, dup := executed[key]; dup {
				t.Errorf("config %s executed twice: %+v vs %+v", key, prev, r)
			}
			executed[key] = r
		case "cache-hit":
			// Deduplicated by the run cache; counters must be the cached
			// result's, verified against the executed record below.
		default:
			t.Errorf("ledger record %d outcome %q: %+v", i, r.Outcome, r)
		}
	}
	for i, r := range recs {
		if r.Outcome != "cache-hit" {
			continue
		}
		key := fmt.Sprintf("%s/%s/%d/%d/%s", r.Program, r.System, r.Cache, r.Ways, r.Schedule)
		ex, ok := executed[key]
		if !ok {
			t.Errorf("cache-hit record %d has no executed record for %s", i, key)
			continue
		}
		if r.Cycles != ex.Cycles || r.Instructions != ex.Instructions || r.Checkpoints != ex.Checkpoints {
			t.Errorf("cache-hit record %d counters differ from executed run %s", i, key)
		}
	}

	// The ledger's counters must reproduce the report: every fig5 cell is
	// cycles(system, size) / cycles(volatile) formatted to three decimals.
	base, ok := executed["crc/volatile/512/2/none"]
	if !ok {
		t.Fatal("ledger has no volatile baseline record")
	}
	cols := []string{"clank", "prowl", "replaycache", "nacho", "oracle-nacho"}
	cells := 0
	for _, line := range strings.Split(observed.Text, "\n") {
		f := strings.Fields(line)
		if len(f) != 2+len(cols) || f[0] != "crc" {
			continue
		}
		var size int
		if _, err := fmt.Sscanf(f[1], "%dB", &size); err != nil {
			continue
		}
		for i, sys := range cols {
			r, ok := executed[fmt.Sprintf("crc/%s/%d/2/none", sys, size)]
			if !ok {
				t.Errorf("ledger has no record for %s at %dB", sys, size)
				continue
			}
			want := fmt.Sprintf("%.3f", float64(r.Cycles)/float64(base.Cycles))
			if f[2+i] != want {
				t.Errorf("report cell %s@%dB = %s, ledger reproduces %s", sys, size, f[2+i], want)
			}
			cells++
		}
	}
	if cells != 2*len(cols) {
		t.Errorf("matched %d report cells against the ledger, want %d", cells, 2*len(cols))
	}

	// (a) The trace: a single campaign root, the experiment as a cell, and a
	// run span for every executed (non-cache-hit) run.
	spans := readTraceFile(t, tracePath)
	counts := checkCampaignTree(t, spans)
	if counts["cell"] != 1 {
		t.Errorf("trace has %d cell spans, want 1 (one experiment)", counts["cell"])
	}
	if counts["run"] != len(executed) {
		t.Errorf("trace has %d run spans, ledger has %d executed runs", counts["run"], len(executed))
	}
	for _, s := range spans {
		if s.Kind == "cell" && !strings.Contains(s.Name, "Figure 5") {
			t.Errorf("cell span named %q, want the experiment title", s.Name)
		}
		if s.Err {
			t.Errorf("span %d (%s %q) marked failed in an all-green campaign", s.ID, s.Kind, s.Name)
		}
	}
}

// TestCampaignExhaustiveWindows drives a second campaign through the
// exhaustive fuzzer so the trace exercises the full hierarchy: seed cells
// fanning out into oracle runs and snapshot-explorer window spans. Run under
// -race this doubles as the span-emit data race check against the parallel
// harness and fork workers.
func TestCampaignExhaustiveWindows(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "fuzz.json")
	ledgerPath := filepath.Join(dir, "fuzz.jsonl")
	c, err := nacho.StartCampaign(nacho.CampaignConfig{
		Name: "fuzz-e2e", TracePath: tracePath, LedgerPath: ledgerPath,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := fuzzer.RunCampaign(fuzzer.CampaignConfig{
		Seeds:      2,
		SeedBase:   1,
		Kinds:      []systems.Kind{systems.KindNACHO},
		Oracle:     fuzzer.Config{CacheSize: 512, Ways: 2, Schedules: 1},
		Exhaustive: true,
		Intervals:  1,
		Stride:     4,
	})
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if len(rep.Errors) > 0 {
		t.Fatalf("exhaustive campaign errors: %v", rep.Errors)
	}
	if len(rep.Findings) > 0 {
		t.Fatalf("exhaustive campaign found unexpected divergences: %v", rep.Findings)
	}

	spans := readTraceFile(t, tracePath)
	counts := checkCampaignTree(t, spans)
	if counts["cell"] != 2 {
		t.Errorf("trace has %d cell spans, want 2 (one per seed)", counts["cell"])
	}
	if counts["window"] == 0 {
		t.Error("trace has no window spans from the snapshot explorer")
	}
	if counts["run"] == 0 {
		t.Error("trace has no run spans from the oracle")
	}
	if recs := readLedgerFile(t, ledgerPath); len(recs) == 0 {
		t.Error("fuzz campaign appended no ledger records")
	}
}
