//go:build !race

package cmd_test

const raceEnabled = false
