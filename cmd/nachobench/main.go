// Command nachobench regenerates the paper's evaluation tables and figures
// (Section 6.2) as text reports: Figure 5 (execution time), Figure 6
// (checkpoints), Figure 7 (NVM transfers), Table 2 (re-execution overhead),
// Table 3 (component ablation), Figure 8 (cache design space) and the
// Table 1 feature matrix.
//
// Usage:
//
//	nachobench                  # regenerate everything
//	nachobench -exp fig5        # one experiment
//	nachobench -exp fig7 -bench aes,sha
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"nacho"
)

func main() {
	var (
		exp   = flag.String("exp", "all", `experiment: all, or one of `+strings.Join(nacho.ExperimentNames(), ", "))
		bench = flag.String("bench", "", "comma-separated benchmark subset (default: the experiment's paper set)")
		csv   = flag.Bool("csv", false, "emit CSV (the original artifact's log format) instead of tables")
	)
	flag.Parse()

	var subset []string
	if *bench != "" {
		subset = strings.Split(*bench, ",")
	}

	names := nacho.ExperimentNames()
	if *exp != "all" {
		names = []string{*exp}
	}
	for i, name := range names {
		if i > 0 {
			fmt.Println()
		}
		render := nacho.Experiment
		if *csv {
			render = nacho.ExperimentCSV
		}
		out, err := render(name, subset)
		if err != nil {
			fmt.Fprintln(os.Stderr, "nachobench:", err)
			os.Exit(1)
		}
		fmt.Print(out)
	}
}
