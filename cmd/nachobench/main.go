// Command nachobench regenerates the paper's evaluation tables and figures
// (Section 6.2) as text reports: Figure 5 (execution time), Figure 6
// (checkpoints), Figure 7 (NVM transfers), Table 2 (re-execution overhead),
// Table 3 (component ablation), Figure 8 (cache design space) and the
// Table 1 feature matrix.
//
// Each experiment's run matrix is fanned out across -j worker goroutines
// (default: all CPUs). Reports are byte-identical for every -j value; the
// per-experiment timing summary goes to stderr so stdout stays exactly
// reproducible.
//
// Usage:
//
//	nachobench                  # regenerate everything, parallel
//	nachobench -exp fig5 -j 1   # one experiment, sequential
//	nachobench -exp fig7 -bench aes,sha
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"nacho"
	"nacho/internal/profiling"
)

func main() {
	var (
		exp     = flag.String("exp", "all", `experiment: all, or one of `+strings.Join(nacho.ExperimentNames(), ", "))
		bench   = flag.String("bench", "", "comma-separated benchmark subset (default: the experiment's paper set)")
		csv     = flag.Bool("csv", false, "emit CSV (the original artifact's log format) instead of tables")
		j       = flag.Int("j", 0, "parallel simulation workers (0 = all CPUs, 1 = sequential)")
		timings = flag.Bool("timings", true, "print per-experiment timing summaries to stderr")
		engine  = flag.String("engine", "auto", "execution engine for all simulations: auto, ref, fast, or aot")
		serve   = flag.String("serve", "", "serve live telemetry (/metrics, /status, /dashboard, /debug/pprof) on this address during the sweep")

		traceCampaign = flag.String("trace-campaign", "", "write a Perfetto trace of the whole campaign (experiment/run spans) to this file")
		ledger        = flag.String("ledger", "", "append one JSON record per run to this ledger file")

		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()
	nacho.SetParallelism(*j)
	if _, err := nacho.SetDefaultEngine(*engine); err != nil {
		fmt.Fprintln(os.Stderr, "nachobench:", err)
		os.Exit(1)
	}

	if *cpuprofile != "" || *memprofile != "" {
		stop, err := profiling.Start(*cpuprofile, *memprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "nachobench:", err)
			os.Exit(1)
		}
		defer func() {
			if err := stop(); err != nil {
				fmt.Fprintln(os.Stderr, "nachobench:", err)
			}
		}()
	}

	if *serve != "" {
		ts, err := nacho.ServeTelemetry(*serve)
		if err != nil {
			fmt.Fprintln(os.Stderr, "nachobench:", err)
			os.Exit(1)
		}
		defer ts.Close()
		fmt.Fprintf(os.Stderr, "nachobench: telemetry on http://%s\n", ts.Addr())
	}

	campaign, err := nacho.StartCampaign(nacho.CampaignConfig{
		Name: "nachobench", TracePath: *traceCampaign, LedgerPath: *ledger,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "nachobench:", err)
		os.Exit(1)
	}
	defer func() {
		if err := campaign.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "nachobench:", err)
		}
	}()

	var subset []string
	if *bench != "" {
		subset = strings.Split(*bench, ",")
	}

	names := nacho.ExperimentNames()
	if *exp != "all" {
		names = []string{*exp}
	}
	for i, name := range names {
		if i > 0 {
			fmt.Println()
		}
		out, err := nacho.RunExperiment(name, subset)
		if err != nil {
			fmt.Fprintln(os.Stderr, "nachobench:", err)
			campaign.Close() // flush the partial trace/ledger before exiting
			os.Exit(1)
		}
		if *csv {
			fmt.Print(out.CSV)
		} else {
			fmt.Print(out.Text)
		}
		if *timings && out.Timing != "" {
			fmt.Fprintf(os.Stderr, "%s %s\n", name, out.Timing)
		}
	}
}
