// Command nachobench regenerates the paper's evaluation tables and figures
// (Section 6.2) as text reports: Figure 5 (execution time), Figure 6
// (checkpoints), Figure 7 (NVM transfers), Table 2 (re-execution overhead),
// Table 3 (component ablation), Figure 8 (cache design space) and the
// Table 1 feature matrix.
//
// Each experiment's run matrix is fanned out across -j worker goroutines
// (default: all CPUs). Reports are byte-identical for every -j value; the
// per-experiment timing summary goes to stderr so stdout stays exactly
// reproducible.
//
// With -store, results persist in a content-addressed store across
// invocations: a re-run of an experiment whose matrix is already stored
// executes zero simulations and prints a byte-identical report. With
// -serve-jobs the process becomes a campaign coordinator — experiments are
// submitted to an HTTP job queue and executed by `nachobench -worker <url>`
// processes sharing the same -store directory — and the report is
// regenerated from the warm store once the fleet drains the queue.
//
// Usage:
//
//	nachobench                  # regenerate everything, parallel
//	nachobench -exp fig5 -j 1   # one experiment, sequential
//	nachobench -exp fig7 -bench aes,sha
//	nachobench -store runs/     # warm re-runs execute nothing
//	nachobench -store runs/ -serve-jobs -exp fig5     # coordinator
//	nachobench -store runs/ -worker http://host:9100  # worker
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"nacho"
	"nacho/internal/jobs"
	"nacho/internal/profiling"
)

func main() {
	var (
		exp     = flag.String("exp", "all", `experiment: all, none (serve jobs only, with -serve-jobs), or one of `+strings.Join(nacho.ExperimentNames(), ", "))
		bench   = flag.String("bench", "", "comma-separated benchmark subset (default: the experiment's paper set)")
		csv     = flag.Bool("csv", false, "emit CSV (the original artifact's log format) instead of tables")
		j       = flag.Int("j", 0, "parallel simulation workers (0 = all CPUs, 1 = sequential)")
		timings = flag.Bool("timings", true, "print per-experiment timing summaries to stderr")
		engine  = flag.String("engine", "auto", "execution engine for all simulations: auto, ref, fast, or aot")
		serve   = flag.String("serve", "", "serve live telemetry (/metrics, /status, /dashboard, /debug/pprof) on this address during the sweep")

		storeDir  = flag.String("store", "", "persistent content-addressed run store directory (results survive restarts; warm re-runs execute nothing)")
		serveJobs = flag.Bool("serve-jobs", false, "coordinate: expose the campaign job API (/jobs) on the -serve address (default 127.0.0.1:0) and distribute experiments to -worker processes")
		workerURL = flag.String("worker", "", "work: lease and execute cells from the job server at this URL until it drains (share its -store directory)")

		traceCampaign = flag.String("trace-campaign", "", "write a Perfetto trace of the whole campaign (experiment/run spans) to this file")
		ledger        = flag.String("ledger", "", "append one JSON record per run to this ledger file")

		cpuprofile   = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile   = flag.String("memprofile", "", "write a heap profile to this file on exit")
		mutexprofile = flag.String("mutexprofile", "", "write a mutex-contention profile to this file on exit (diagnoses worker-pool contention)")
		blockprofile = flag.String("blockprofile", "", "write a goroutine-blocking profile to this file on exit")
	)
	flag.Parse()
	nacho.SetParallelism(*j)
	if _, err := nacho.SetDefaultEngine(*engine); err != nil {
		fmt.Fprintln(os.Stderr, "nachobench:", err)
		os.Exit(1)
	}

	profiles := profiling.Profiles{
		CPU: *cpuprofile, Mem: *memprofile, Mutex: *mutexprofile, Block: *blockprofile,
	}
	if profiles.Enabled() {
		stop, err := profiling.Start(profiles)
		if err != nil {
			fmt.Fprintln(os.Stderr, "nachobench:", err)
			os.Exit(1)
		}
		defer func() {
			if err := stop(); err != nil {
				fmt.Fprintln(os.Stderr, "nachobench:", err)
			}
		}()
	}

	if *storeDir != "" {
		rs, err := nacho.OpenRunStore(*storeDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "nachobench:", err)
			os.Exit(1)
		}
		defer func() {
			if err := rs.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "nachobench:", err)
			}
			st := rs.Stats()
			fmt.Fprintf(os.Stderr, "nachobench: store %s: %d hits, %d misses, %d puts, %d corrupt evicted\n",
				rs.Dir(), st.Hits, st.Misses, st.Puts, st.CorruptEvicted)
		}()
	}

	if *workerURL != "" {
		if *storeDir == "" {
			fmt.Fprintln(os.Stderr, "nachobench: -worker needs the coordinator's -store directory (run results travel through it)")
			os.Exit(1)
		}
		w := &jobs.Worker{BaseURL: *workerURL, Name: fmt.Sprintf("nachobench-%d", os.Getpid())}
		n, err := w.Run()
		if err != nil {
			fmt.Fprintln(os.Stderr, "nachobench:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "nachobench: worker drained: %d cells executed\n", n)
		return
	}

	var jobsvc *nacho.JobService
	if *serveJobs && *serve == "" {
		*serve = "127.0.0.1:0"
	}
	if *serve != "" {
		ts, err := nacho.ServeTelemetry(*serve)
		if err != nil {
			fmt.Fprintln(os.Stderr, "nachobench:", err)
			os.Exit(1)
		}
		defer ts.Close()
		fmt.Fprintf(os.Stderr, "nachobench: telemetry on http://%s\n", ts.Addr())
		if *serveJobs {
			jobsvc = ts.ServeJobs()
			fmt.Fprintf(os.Stderr, "nachobench: jobs on http://%s\n", ts.Addr())
		}
	}

	campaign, err := nacho.StartCampaign(nacho.CampaignConfig{
		Name: "nachobench", TracePath: *traceCampaign, LedgerPath: *ledger,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "nachobench:", err)
		os.Exit(1)
	}
	defer func() {
		if err := campaign.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "nachobench:", err)
		}
	}()

	var subset []string
	if *bench != "" {
		subset = strings.Split(*bench, ",")
	}

	names := nacho.ExperimentNames()
	switch *exp {
	case "all":
	case "none":
		if jobsvc == nil {
			fmt.Fprintln(os.Stderr, "nachobench: -exp none only makes sense with -serve-jobs")
			campaign.Close()
			os.Exit(1)
		}
		names = nil
	default:
		names = []string{*exp}
	}
	for i, name := range names {
		if i > 0 {
			fmt.Println()
		}
		if jobsvc != nil {
			// Coordinate: the fleet fills the shared store; the regeneration
			// below then renders the report without executing anything.
			id, err := jobsvc.SubmitExperiment(name, subset)
			if err != nil {
				fmt.Fprintln(os.Stderr, "nachobench:", err)
				campaign.Close()
				os.Exit(1)
			}
			executed, deduped, err := jobsvc.Wait(id)
			if err != nil {
				fmt.Fprintln(os.Stderr, "nachobench:", err)
				campaign.Close()
				os.Exit(1)
			}
			if *timings {
				fmt.Fprintf(os.Stderr, "%s: fleet executed %d cells (%d already stored)\n", name, executed, deduped)
			}
		}
		out, err := nacho.RunExperiment(name, subset)
		if err != nil {
			fmt.Fprintln(os.Stderr, "nachobench:", err)
			campaign.Close() // flush the partial trace/ledger before exiting
			os.Exit(1)
		}
		if *csv {
			fmt.Print(out.CSV)
		} else {
			fmt.Print(out.Text)
		}
		if *timings && out.Timing != "" {
			fmt.Fprintf(os.Stderr, "%s %s\n", name, out.Timing)
		}
	}
	if jobsvc != nil {
		if *exp == "none" {
			// Serve-only coordinator: keep accepting jobs (nachofuzz -submit,
			// other processes) until someone POSTs /jobs/shutdown and the
			// queue drains.
			fmt.Fprintln(os.Stderr, "nachobench: serving jobs until shutdown")
			jobsvc.AwaitShutdown()
		} else {
			jobsvc.Shutdown()
		}
		// Drain the fleet: workers are told to exit on their next poll; give
		// every idle poll loop (100ms) a chance to hear it before the
		// listener goes away with this process.
		time.Sleep(500 * time.Millisecond)
	}
}
