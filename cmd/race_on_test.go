//go:build race

package cmd_test

// raceEnabled mirrors the test binary's -race setting into the binaries the
// e2e tests build, so "determinism under -race" means the race detector is
// actually watching both sides of every cross-process run.
const raceEnabled = true
