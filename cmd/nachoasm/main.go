// Command nachoasm is a standalone RV32IM assembler and listing tool for
// the memory layout used by the NACHO simulator. It assembles a source file
// and prints an address/machine-code/disassembly listing, optionally writing
// flat binary segments and dumping the symbol table.
//
// Usage:
//
//	nachoasm prog.s                 # listing to stdout
//	nachoasm -symbols prog.s        # plus the symbol table
//	nachoasm -o prog.bin prog.s     # raw little-endian image of .text
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"nacho/internal/asm"
	"nacho/internal/isa"
)

func main() {
	var (
		out      = flag.String("o", "", "write the raw .text image to this file")
		symbols  = flag.Bool("symbols", false, "dump the symbol table")
		textBase = flag.Uint("text", 0x0001_0000, "text base address")
		dataBase = flag.Uint("data", 0x0002_0000, "data base address")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: nachoasm [flags] prog.s")
		os.Exit(2)
	}

	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	prog, err := asm.Assemble(string(src), asm.Options{
		TextBase: uint32(*textBase),
		DataBase: uint32(*dataBase),
	})
	if err != nil {
		fatal(err)
	}

	// Invert the symbol table for listing annotations.
	byAddr := map[uint32][]string{}
	for name, addr := range prog.Symbols {
		byAddr[addr] = append(byAddr[addr], name)
	}
	for _, names := range byAddr {
		sort.Strings(names)
	}

	for _, seg := range prog.Segments {
		if seg.Addr == uint32(*textBase) {
			fmt.Printf("; .text %d bytes at 0x%08x, entry 0x%08x\n", len(seg.Data), seg.Addr, prog.Entry)
			for i := 0; i+4 <= len(seg.Data); i += 4 {
				addr := seg.Addr + uint32(i)
				w := uint32(seg.Data[i]) | uint32(seg.Data[i+1])<<8 |
					uint32(seg.Data[i+2])<<16 | uint32(seg.Data[i+3])<<24
				for _, n := range byAddr[addr] {
					fmt.Printf("%s:\n", n)
				}
				in, err := isa.Decode(w)
				text := "??"
				if err == nil {
					text = in.String()
				}
				fmt.Printf("  %08x:  %08x  %s\n", addr, w, text)
			}
			if *out != "" {
				if err := os.WriteFile(*out, seg.Data, 0o644); err != nil {
					fatal(err)
				}
			}
		} else {
			fmt.Printf("; .data %d bytes at 0x%08x\n", len(seg.Data), seg.Addr)
		}
	}

	if *symbols {
		fmt.Println("; symbols")
		names := make([]string, 0, len(prog.Symbols))
		for n := range prog.Symbols {
			names = append(names, n)
		}
		sort.Slice(names, func(i, j int) bool { return prog.Symbols[names[i]] < prog.Symbols[names[j]] })
		for _, n := range names {
			fmt.Printf("  %08x  %s\n", prog.Symbols[n], n)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nachoasm:", err)
	os.Exit(1)
}
