// Command nachofuzz runs the crash-consistency fuzzing campaign: seeded
// random RV32IM programs through the differential oracle across the memory
// systems, under randomized power-failure schedules.
//
// Usage:
//
//	nachofuzz -seeds 256                      # all six systems, default oracle
//	nachofuzz -seeds 64 -systems nacho,clank  # restrict the system matrix
//	nachofuzz -duration 30s -out findings/    # time-boxed, write artifacts
//	nachofuzz -seeds 16 -exhaustive           # every crash instant, first 2 intervals
//	nachofuzz -replay findings/war-violation-nacho-seed5.json
//
// -exhaustive replaces the randomized failure schedules with exhaustive
// crash-instant enumeration via copy-on-write snapshot forking: every
// instruction-granular power-failure instant in the first -intervals
// checkpoint intervals is executed, sharing the failure-free prefix. The
// measured speedup over re-running each instant from boot goes to stderr.
//
// Without -duration the campaign is deterministic: the same flags produce
// the same findings report, byte for byte (timing goes to stderr). The
// exit status is 0 when no findings, 1 when the oracle found divergences,
// 2 on usage or infrastructure errors. -replay re-executes a finding
// artifact and exits 0 only if the finding still reproduces.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"nacho"
	"nacho/internal/emu"
	"nacho/internal/fuzzer"
	"nacho/internal/harness"
	"nacho/internal/jobs"
	"nacho/internal/snapshot"
	"nacho/internal/systems"
	"nacho/internal/telemetry"
)

func main() {
	var (
		seeds      = flag.Int("seeds", 256, "number of generated programs (seeds seed-base..seed-base+N-1)")
		seedBase   = flag.Int64("seed-base", 1, "first generator seed")
		sysList    = flag.String("systems", "all", "comma-separated systems to fuzz, or 'all'")
		schedules  = flag.Int("schedules", 3, "randomized failure schedules per (program, system)")
		cacheSize  = flag.Int("cache", 512, "data cache size in bytes")
		ways       = flag.Int("ways", 2, "cache associativity")
		engineName = flag.String("engine", "auto", "execution engine under test: auto, ref, fast, or aot")
		duration   = flag.Duration("duration", 0, "stop after this wall time (0 = run all seeds; makes the report non-deterministic)")
		minimize   = flag.Bool("minimize", true, "delta-debug findings before reporting")
		outDir     = flag.String("out", "", "write replayable finding artifacts to this directory")
		replay     = flag.String("replay", "", "replay a finding artifact instead of fuzzing")
		workers    = flag.Int("j", 0, "worker goroutines (0 = all cores)")
		serve      = flag.String("serve", "", "serve live telemetry (nacho_fuzz_*, /metrics, /status) on this address")
		exhaustive = flag.Bool("exhaustive", false, "enumerate every crash instant via snapshot forking instead of random schedules")
		intervals  = flag.Int("intervals", 2, "checkpoint intervals to enumerate per (program, system) with -exhaustive")
		stride     = flag.Uint64("stride", 1, "enumerate every stride-th crash instant with -exhaustive")

		traceCampaign = flag.String("trace-campaign", "", "write a Perfetto trace of the whole campaign (seed/run/window spans) to this file")
		ledgerPath    = flag.String("ledger", "", "append one JSON record per oracle run to this ledger file")

		submit = flag.String("submit", "", "submit the campaign to the job server at this URL (a nachobench -serve-jobs coordinator) instead of running locally; seed chunks execute on the worker fleet")
		chunk  = flag.Int("chunk", 8, "seeds per distributed work cell with -submit")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "nachofuzz: unexpected arguments: %v\n", flag.Args())
		os.Exit(2)
	}

	if *workers != 0 {
		harness.SetWorkers(*workers)
	}
	if *serve != "" {
		reg := telemetry.NewRegistry()
		harness.RegisterMetrics(reg)
		fuzzer.RegisterMetrics(reg)
		snapshot.RegisterMetrics(reg)
		srv, err := telemetry.NewServer(*serve, reg, func() any { return harness.Status() })
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "nachofuzz: telemetry on http://%s\n", srv.Addr())
	}

	if *replay != "" {
		os.Exit(runReplay(*replay))
	}

	campaign, err := nacho.StartCampaign(nacho.CampaignConfig{
		Name: "nachofuzz", TracePath: *traceCampaign, LedgerPath: *ledgerPath,
	})
	if err != nil {
		fatal(err)
	}
	exit := func(code int) {
		if err := campaign.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "nachofuzz:", err)
		}
		os.Exit(code)
	}

	if *seeds <= 0 {
		fmt.Fprintln(os.Stderr, "nachofuzz: -seeds must be positive")
		exit(2)
	}
	kinds, err := parseSystems(*sysList)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nachofuzz:", err)
		exit(2)
	}
	engine, err := emu.ParseEngine(*engineName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nachofuzz:", err)
		exit(2)
	}

	if *submit != "" {
		if *outDir != "" || *exhaustive || *duration > 0 {
			fmt.Fprintln(os.Stderr, "nachofuzz: -submit does not support -out, -exhaustive, or -duration")
			exit(2)
		}
		sysNames := make([]string, len(kinds))
		for i, k := range kinds {
			sysNames[i] = string(k)
		}
		spec := jobs.FuzzSpec{
			Seeds: *seeds, SeedBase: *seedBase, Systems: sysNames,
			CacheSize: *cacheSize, Ways: *ways, Schedules: *schedules,
			Engine: string(engine), Minimize: *minimize,
		}
		id, err := jobs.SubmitJob(nil, *submit, jobs.JobRequest{Kind: "fuzz", Fuzz: &spec, Chunk: *chunk})
		if err != nil {
			fmt.Fprintln(os.Stderr, "nachofuzz:", err)
			exit(2)
		}
		fmt.Fprintf(os.Stderr, "nachofuzz: submitted %s to %s (%d seeds in chunks of %d)\n", id, *submit, *seeds, *chunk)
		st, err := jobs.WaitJob(nil, *submit, id, 0, time.Time{})
		if err != nil {
			fmt.Fprintln(os.Stderr, "nachofuzz:", err)
			exit(2)
		}
		fmt.Print(st.Report)
		switch {
		case strings.Contains(st.Report, "\nERROR "):
			exit(2)
		case strings.Contains(st.Report, "\nFINDING "):
			exit(1)
		}
		exit(0)
	}

	cfg := fuzzer.CampaignConfig{
		Seeds:    *seeds,
		SeedBase: *seedBase,
		Kinds:    kinds,
		Oracle:   fuzzer.Config{CacheSize: *cacheSize, Ways: *ways, Schedules: *schedules, Engine: engine},
		Minimize: *minimize,
		OutDir:   *outDir,
		Progress: os.Stderr,
	}
	if *exhaustive {
		cfg.Exhaustive = true
		cfg.Intervals = *intervals
		cfg.Stride = *stride
	}
	if *duration > 0 {
		cfg.Deadline = time.Now().Add(*duration)
	}
	rep := fuzzer.RunCampaign(cfg)
	fmt.Print(rep)
	if err := campaign.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "nachofuzz:", err)
	}
	if len(rep.Errors) > 0 {
		os.Exit(2)
	}
	if len(rep.Findings) > 0 {
		os.Exit(1)
	}
}

// runReplay re-executes one artifact; 0 = reproduced, 1 = did not
// reproduce (the captured bug no longer exists), 2 = unusable artifact.
func runReplay(path string) int {
	a, err := fuzzer.LoadArtifact(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nachofuzz:", err)
		return 2
	}
	f, err := a.Replay()
	if err != nil {
		fmt.Fprintln(os.Stderr, "nachofuzz:", err)
		return 2
	}
	if f == nil {
		fmt.Printf("replay %s: finding did not reproduce (recorded: %s on %s: %s)\n",
			path, a.Kind, a.System, a.Detail)
		return 1
	}
	fmt.Printf("replay %s: reproduced\nFINDING %s\n", path, f)
	return 0
}

func parseSystems(list string) ([]systems.Kind, error) {
	if list == "" || list == "all" {
		return fuzzer.DefaultKinds(), nil
	}
	valid := make(map[systems.Kind]bool)
	for _, k := range systems.AllKinds() {
		valid[k] = true
	}
	valid[systems.KindNACHOBrokenPW] = true // test-only kind, accepted for self-checks
	var kinds []systems.Kind
	for _, s := range strings.Split(list, ",") {
		k := systems.Kind(strings.TrimSpace(s))
		if k == "" {
			continue
		}
		if !valid[k] {
			return nil, fmt.Errorf("unknown system %q", k)
		}
		if k == systems.KindVolatile {
			return nil, fmt.Errorf("volatile is the golden baseline, not a fuzz subject")
		}
		kinds = append(kinds, k)
	}
	if len(kinds) == 0 {
		return nil, fmt.Errorf("no systems selected")
	}
	return kinds, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nachofuzz:", err)
	os.Exit(2)
}
