// Package cmd_test builds the command-line binaries and exercises them end
// to end — flag parsing, file I/O and output formatting, the layers the
// library tests cannot reach.
package cmd_test

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// build compiles one command into t.TempDir and returns the binary path.
// When the test binary itself runs under -race, so do the built commands.
func build(t *testing.T, pkg string) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), filepath.Base(pkg))
	args := []string{"build"}
	if raceEnabled {
		args = append(args, "-race")
	}
	cmd := exec.Command("go", append(args, "-o", bin, "./"+pkg)...)
	cmd.Dir = ".."
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build %s: %v\n%s", pkg, err, out)
	}
	return bin
}

func run(t *testing.T, bin string, args ...string) (string, error) {
	t.Helper()
	out, err := exec.Command(bin, args...).CombinedOutput()
	return string(out), err
}

func TestNachosimEndToEnd(t *testing.T) {
	bin := build(t, "cmd/nachosim")

	out, err := run(t, bin, "-list")
	if err != nil {
		t.Fatalf("-list: %v\n%s", err, out)
	}
	for _, want := range []string{"aes", "towers", "nacho", "clank", "writethrough"} {
		if !strings.Contains(out, want) {
			t.Errorf("-list output missing %q", want)
		}
	}

	out, err = run(t, bin, "-bench", "towers", "-system", "nacho")
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out)
	}
	for _, want := range []string{"cycles", "checkpoints", "hit rate"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}

	out, err = run(t, bin, "-bench", "crc", "-onduration", "1")
	if err != nil {
		t.Fatalf("intermittent run: %v\n%s", err, out)
	}
	if !strings.Contains(out, "power failures") {
		t.Errorf("intermittent output missing failures:\n%s", out)
	}

	out, err = run(t, bin, "-bench", "crc", "-probe-stats", "-onduration", "1")
	if err != nil {
		t.Fatalf("-probe-stats: %v\n%s", err, out)
	}
	for _, want := range []string{"checkpoint intervals", "closed by", "power-failure", "verdicts"} {
		if !strings.Contains(out, want) {
			t.Errorf("-probe-stats output missing %q:\n%s", want, out)
		}
	}

	if out, err = run(t, bin, "-bench", "bogus"); err == nil {
		t.Errorf("unknown benchmark accepted:\n%s", out)
	}

	// User program from a file.
	src := filepath.Join(t.TempDir(), "p.s")
	prog := "_start:\n li a0, 7\n li t0, 0x000F0004\n sw a0, (t0)\n li t0, 0x000F0000\n sw zero, (t0)\n"
	if err := os.WriteFile(src, []byte(prog), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err = run(t, bin, "-run", src)
	if err != nil {
		t.Fatalf("-run: %v\n%s", err, out)
	}
	if !strings.Contains(out, "0x00000007") {
		t.Errorf("-run result missing:\n%s", out)
	}
}

// TestProfilingFlags runs both CLIs with the four profile flags and checks
// that non-empty pprof files come out. An unwritable profile path must fail.
func TestProfilingFlags(t *testing.T) {
	dir := t.TempDir()
	sim := build(t, "cmd/nachosim")
	cpu, mem := filepath.Join(dir, "sim.cpu.pprof"), filepath.Join(dir, "sim.mem.pprof")
	mtx, blk := filepath.Join(dir, "sim.mutex.pprof"), filepath.Join(dir, "sim.block.pprof")
	out, err := run(t, sim, "-bench", "crc", "-noverify",
		"-cpuprofile", cpu, "-memprofile", mem, "-mutexprofile", mtx, "-blockprofile", blk)
	if err != nil {
		t.Fatalf("nachosim with profiles: %v\n%s", err, out)
	}
	for _, p := range []string{cpu, mem, mtx, blk} {
		if fi, err := os.Stat(p); err != nil || fi.Size() == 0 {
			t.Errorf("profile %s missing or empty (err=%v)", p, err)
		}
	}

	bench := build(t, "cmd/nachobench")
	cpu = filepath.Join(dir, "bench.cpu.pprof")
	mtx = filepath.Join(dir, "bench.mutex.pprof")
	out, err = run(t, bench, "-exp", "table1", "-cpuprofile", cpu, "-mutexprofile", mtx)
	if err != nil {
		t.Fatalf("nachobench with profile: %v\n%s", err, out)
	}
	for _, p := range []string{cpu, mtx} {
		if fi, err := os.Stat(p); err != nil || fi.Size() == 0 {
			t.Errorf("profile %s missing or empty (err=%v)", p, err)
		}
	}

	if out, err = run(t, sim, "-bench", "crc", "-cpuprofile", filepath.Join(dir, "no/such/dir/p")); err == nil {
		t.Errorf("unwritable -cpuprofile accepted:\n%s", out)
	}
}

func TestNachobenchEndToEnd(t *testing.T) {
	bin := build(t, "cmd/nachobench")

	out, err := run(t, bin, "-exp", "table1")
	if err != nil {
		t.Fatalf("table1: %v\n%s", err, out)
	}
	if !strings.Contains(out, "feature matrix") {
		t.Errorf("table1 output wrong:\n%s", out)
	}

	out, err = run(t, bin, "-exp", "fig7", "-bench", "towers,aes", "-csv")
	if err != nil {
		t.Fatalf("fig7 csv: %v\n%s", err, out)
	}
	if !strings.HasPrefix(out, "benchmark,clank(bytes)") {
		t.Errorf("csv header wrong:\n%s", out)
	}

	if out, err = run(t, bin, "-exp", "nope"); err == nil {
		t.Errorf("unknown experiment accepted:\n%s", out)
	}
}

// TestNachobenchParallelDeterminism checks the -j contract at the process
// level: stdout is byte-identical for any worker count, and the timing
// summary stays on stderr where it cannot perturb captured reports.
func TestNachobenchParallelDeterminism(t *testing.T) {
	bin := build(t, "cmd/nachobench")

	outputs := make(map[string]string)
	for _, j := range []string{"1", "4"} {
		cmd := exec.Command(bin, "-exp", "fig6", "-bench", "sha", "-j", j)
		var stdout, stderr strings.Builder
		cmd.Stdout, cmd.Stderr = &stdout, &stderr
		if err := cmd.Run(); err != nil {
			t.Fatalf("-j %s: %v\n%s", j, err, stderr.String())
		}
		outputs[j] = stdout.String()
		if !strings.Contains(stderr.String(), "timing:") {
			t.Errorf("-j %s: timing summary missing from stderr:\n%s", j, stderr.String())
		}
		if strings.Contains(stdout.String(), "timing:") {
			t.Errorf("-j %s: timing leaked into stdout", j)
		}
	}
	if outputs["1"] != outputs["4"] {
		t.Errorf("stdout differs between -j 1 and -j 4:\n--- j1\n%s--- j4\n%s", outputs["1"], outputs["4"])
	}
}

func TestNachoasmEndToEnd(t *testing.T) {
	bin := build(t, "cmd/nachoasm")

	src := filepath.Join(t.TempDir(), "p.s")
	prog := "_start:\n li a0, 42\nloop:\n j loop\n"
	if err := os.WriteFile(src, []byte(prog), 0o644); err != nil {
		t.Fatal(err)
	}
	outBin := filepath.Join(t.TempDir(), "p.bin")
	out, err := run(t, bin, "-symbols", "-o", outBin, src)
	if err != nil {
		t.Fatalf("nachoasm: %v\n%s", err, out)
	}
	for _, want := range []string{"_start:", "loop:", "addi a0, zero, 42", "; symbols"} {
		if !strings.Contains(out, want) {
			t.Errorf("listing missing %q:\n%s", want, out)
		}
	}
	data, err := os.ReadFile(outBin)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 8 { // two instructions
		t.Errorf("binary is %d bytes, want 8", len(data))
	}

	if out, err = run(t, bin, "/nonexistent.s"); err == nil {
		t.Errorf("missing file accepted:\n%s", out)
	}
	bad := filepath.Join(t.TempDir(), "bad.s")
	os.WriteFile(bad, []byte("_start:\n bogus\n"), 0o644)
	if out, err = run(t, bin, bad); err == nil {
		t.Errorf("bad source accepted:\n%s", out)
	}
}

// TestNachosimTelemetryFlags covers -perfetto (the file must be loadable
// trace-event JSON spanning the run) and -serve (the bound address is
// announced on stderr and the endpoints answer while the process lives).
func TestNachosimTelemetryFlags(t *testing.T) {
	bin := build(t, "cmd/nachosim")

	traceFile := filepath.Join(t.TempDir(), "trace.json")
	out, err := run(t, bin, "-bench", "crc", "-onduration", "1", "-perfetto", traceFile)
	if err != nil {
		t.Fatalf("-perfetto: %v\n%s", err, out)
	}
	data, err := os.ReadFile(traceFile)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph   string `json:"ph"`
			Name string `json:"name"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("-perfetto wrote invalid JSON: %v", err)
	}
	counts := map[string]int{}
	for _, e := range doc.TraceEvents {
		counts[e.Ph]++
	}
	if counts["M"] == 0 || counts["X"] == 0 || counts["i"] == 0 {
		t.Errorf("trace phases = %v, want metadata, slices and instants", counts)
	}

	out, err = run(t, bin, "-bench", "towers", "-serve", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("-serve: %v\n%s", err, out)
	}
	if !strings.Contains(out, "telemetry on http://127.0.0.1:") {
		t.Errorf("-serve did not announce its address:\n%s", out)
	}

	if out, err = run(t, bin, "-bench", "crc", "-serve", "256.0.0.1:http"); err == nil {
		t.Errorf("bad -serve address accepted:\n%s", out)
	}
}

// exitCode extracts the exit status from run's error (-1 if the process
// never ran or was killed by a signal).
func exitCode(err error) int {
	var ee *exec.ExitError
	if errors.As(err, &ee) {
		return ee.ExitCode()
	}
	return -1
}

// TestCLIErrorPaths: every command must reject a bad invocation with a
// non-zero exit status and a diagnostic naming the command and the offending
// input — the contract shell scripts and CI depend on. Unwritable outputs
// use a nonexistent parent directory (permission bits are no barrier when
// tests run as root).
func TestCLIErrorPaths(t *testing.T) {
	sim := build(t, "cmd/nachosim")
	bench := build(t, "cmd/nachobench")
	asm := build(t, "cmd/nachoasm")
	fuzz := build(t, "cmd/nachofuzz")

	src := filepath.Join(t.TempDir(), "ok.s")
	if err := os.WriteFile(src, []byte("_start:\n li a0, 1\nloop:\n j loop\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		bin  string
		args []string
		want []string // substrings required in combined output
	}{
		{"nachosim unknown flag", sim, []string{"-definitely-not-a-flag"},
			[]string{"flag provided but not defined", "Usage"}},
		{"nachosim unknown benchmark", sim, []string{"-bench", "no-such-bench"},
			[]string{"nachosim:", "no-such-bench"}},
		{"nachosim unknown system", sim, []string{"-bench", "crc", "-system", "no-such-system"},
			[]string{"nachosim:", "no-such-system"}},
		{"nachosim missing -run file", sim, []string{"-run", "/nonexistent/prog.s"},
			[]string{"nachosim:", "/nonexistent/prog.s"}},
		{"nachosim unwritable -trace", sim, []string{"-bench", "crc", "-trace", "/nonexistent-dir/t.out"},
			[]string{"nachosim:", "/nonexistent-dir/t.out"}},
		{"nachosim unwritable -perfetto", sim, []string{"-bench", "crc", "-perfetto", "/nonexistent-dir/p.json"},
			[]string{"nachosim:", "/nonexistent-dir/p.json"}},
		{"nachobench unknown flag", bench, []string{"-definitely-not-a-flag"},
			[]string{"flag provided but not defined", "Usage"}},
		{"nachobench unknown experiment", bench, []string{"-exp", "no-such-exp"},
			[]string{"nachobench:", "no-such-exp"}},
		{"nachoasm no input", asm, nil,
			[]string{"usage: nachoasm"}},
		{"nachoasm two inputs", asm, []string{src, src},
			[]string{"usage: nachoasm"}},
		{"nachoasm missing input", asm, []string{"/nonexistent/prog.s"},
			[]string{"nachoasm:", "/nonexistent/prog.s"}},
		{"nachoasm unwritable -o", asm, []string{"-o", "/nonexistent-dir/out.bin", src},
			[]string{"nachoasm:", "/nonexistent-dir/out.bin"}},
		{"nachosim unknown engine", sim, []string{"-bench", "crc", "-engine", "bogus-engine"},
			[]string{"nachosim:", "bogus-engine", "auto, ref, fast, aot"}},
		{"nachobench unknown engine", bench, []string{"-engine", "bogus-engine"},
			[]string{"nachobench:", "bogus-engine", "auto, ref, fast, aot"}},
		{"nachofuzz unknown engine", fuzz, []string{"-engine", "bogus-engine"},
			[]string{"nachofuzz:", "bogus-engine", "auto, ref, fast, aot"}},
		{"nachofuzz unknown system", fuzz, []string{"-systems", "no-such-system"},
			[]string{"nachofuzz:", "no-such-system"}},
		{"nachofuzz volatile rejected", fuzz, []string{"-systems", "volatile"},
			[]string{"nachofuzz:", "volatile"}},
		{"nachofuzz bad seed count", fuzz, []string{"-seeds", "-3"},
			[]string{"nachofuzz:", "-seeds"}},
		{"nachofuzz missing artifact", fuzz, []string{"-replay", "/nonexistent/finding.json"},
			[]string{"nachofuzz:", "/nonexistent/finding.json"}},
		{"nachofuzz stray argument", fuzz, []string{"-seeds", "1", "stray"},
			[]string{"nachofuzz:", "stray"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			out, err := run(t, tc.bin, tc.args...)
			if err == nil {
				t.Fatalf("exit 0, want failure:\n%s", out)
			}
			if code := exitCode(err); code <= 0 {
				t.Fatalf("exit code %d, want positive: %v\n%s", code, err, out)
			}
			for _, w := range tc.want {
				if !strings.Contains(out, w) {
					t.Errorf("output missing %q:\n%s", w, out)
				}
			}
		})
	}
}

// TestNachosimEngineSelection pins the -engine flag's contract: every named
// engine produces byte-identical output (the engine is a performance knob,
// never a semantics knob), and the deprecated -no-fastpath spelling still
// works as an alias for the reference engine.
func TestNachosimEngineSelection(t *testing.T) {
	bin := build(t, "cmd/nachosim")
	args := []string{"-bench", "crc", "-system", "nacho", "-onduration", "1"}

	outputs := map[string]string{}
	for _, engine := range []string{"auto", "ref", "fast", "aot"} {
		out, err := run(t, bin, append([]string{"-engine", engine}, args...)...)
		if err != nil {
			t.Fatalf("-engine %s: %v\n%s", engine, err, out)
		}
		outputs[engine] = out
	}
	for engine, out := range outputs {
		if out != outputs["ref"] {
			t.Errorf("-engine %s output differs from -engine ref:\n%s\nvs\n%s", engine, out, outputs["ref"])
		}
	}

	out, err := run(t, bin, append([]string{"-no-fastpath"}, args...)...)
	if err != nil {
		t.Fatalf("-no-fastpath: %v\n%s", err, out)
	}
	if out != outputs["ref"] {
		t.Errorf("-no-fastpath output differs from -engine ref:\n%s\nvs\n%s", out, outputs["ref"])
	}
}

// TestNachofuzzEndToEnd drives the fuzzing CLI the way CI does: a healthy
// campaign exits 0 with a deterministic report, a campaign against the
// deliberately broken system exits 1 and leaves artifacts, and -replay on
// such an artifact exits 0 after reproducing the finding.
func TestNachofuzzEndToEnd(t *testing.T) {
	bin := build(t, "cmd/nachofuzz")

	// The report on stdout must be byte-identical across runs; timing noise
	// belongs on stderr.
	outputs := make([]string, 2)
	for i := range outputs {
		cmd := exec.Command(bin, "-seeds", "8")
		var stdout, stderr strings.Builder
		cmd.Stdout, cmd.Stderr = &stdout, &stderr
		if err := cmd.Run(); err != nil {
			t.Fatalf("healthy campaign: %v\n%s", err, stderr.String())
		}
		if strings.Contains(stdout.String(), "timing:") {
			t.Errorf("timing leaked into stdout:\n%s", stdout.String())
		}
		outputs[i] = stdout.String()
	}
	if !strings.Contains(outputs[0], "8 seeds") || !strings.Contains(outputs[0], "0 findings") {
		t.Errorf("healthy report wrong:\n%s", outputs[0])
	}
	if outputs[0] != outputs[1] {
		t.Errorf("campaign is not deterministic:\n--- first\n%s--- second\n%s", outputs[0], outputs[1])
	}

	dir := filepath.Join(t.TempDir(), "findings")
	out, err := run(t, bin, "-seeds", "10", "-systems", "nacho-broken-pw", "-out", dir)
	if code := exitCode(err); code != 1 {
		t.Fatalf("broken campaign exit = %d, want 1:\n%s", code, out)
	}
	if !strings.Contains(out, "FINDING") || !strings.Contains(out, "war-violation") {
		t.Errorf("broken campaign report missing findings:\n%s", out)
	}
	arts, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil || len(arts) == 0 {
		t.Fatalf("no artifacts written to %s (%v)", dir, err)
	}

	out, err = run(t, bin, "-replay", arts[0])
	if err != nil {
		t.Fatalf("-replay: %v\n%s", err, out)
	}
	if !strings.Contains(out, "reproduced") {
		t.Errorf("-replay output wrong:\n%s", out)
	}
}

// TestNachofuzzExhaustive drives the snapshot-fork exhaustive mode: a
// healthy campaign exits 0 with a deterministic report and prints the
// measured speedup to stderr; the broken system still yields findings.
func TestNachofuzzExhaustive(t *testing.T) {
	bin := build(t, "cmd/nachofuzz")

	outputs := make([]string, 2)
	var firstStderr string
	for i := range outputs {
		cmd := exec.Command(bin, "-seeds", "4", "-exhaustive", "-stride", "5", "-systems", "nacho,clank")
		var stdout, stderr strings.Builder
		cmd.Stdout, cmd.Stderr = &stdout, &stderr
		if err := cmd.Run(); err != nil {
			t.Fatalf("exhaustive campaign: %v\n%s", err, stderr.String())
		}
		outputs[i] = stdout.String()
		if i == 0 {
			firstStderr = stderr.String()
		}
	}
	if !strings.Contains(outputs[0], "0 findings") {
		t.Errorf("healthy exhaustive report wrong:\n%s", outputs[0])
	}
	if outputs[0] != outputs[1] {
		t.Errorf("exhaustive campaign is not deterministic:\n--- first\n%s--- second\n%s", outputs[0], outputs[1])
	}
	if !strings.Contains(firstStderr, "exhaustive:") || !strings.Contains(firstStderr, "speedup") {
		t.Errorf("stderr missing exhaustive speedup line:\n%s", firstStderr)
	}

	out, err := run(t, bin, "-seeds", "10", "-exhaustive", "-stride", "5", "-systems", "nacho-broken-pw")
	if code := exitCode(err); code != 1 {
		t.Fatalf("broken exhaustive campaign exit = %d, want 1:\n%s", code, out)
	}
	if !strings.Contains(out, "FINDING") {
		t.Errorf("broken exhaustive report missing findings:\n%s", out)
	}
}

// TestNachobenchStoreWarmRegeneration drives the persistent run store at the
// process level: a second invocation against the same -store directory
// executes zero simulations, reports its store hits on stderr, and prints a
// byte-identical report.
func TestNachobenchStoreWarmRegeneration(t *testing.T) {
	bin := build(t, "cmd/nachobench")
	storeDir := filepath.Join(t.TempDir(), "runs")

	runBench := func() (string, string) {
		t.Helper()
		cmd := exec.Command(bin, "-exp", "fig6", "-bench", "crc", "-store", storeDir)
		var stdout, stderr strings.Builder
		cmd.Stdout, cmd.Stderr = &stdout, &stderr
		if err := cmd.Run(); err != nil {
			t.Fatalf("nachobench -store: %v\n%s", err, stderr.String())
		}
		return stdout.String(), stderr.String()
	}

	coldOut, coldErr := runBench()
	if !strings.Contains(coldErr, "store "+storeDir) || !strings.Contains(coldErr, "puts") {
		t.Errorf("cold run stderr missing store summary:\n%s", coldErr)
	}
	warmOut, warmErr := runBench()
	if warmOut != coldOut {
		t.Errorf("warm report not byte-identical:\n--- cold\n%s--- warm\n%s", coldOut, warmOut)
	}
	if !strings.Contains(warmErr, "timing: 0 runs") || !strings.Contains(warmErr, "persistent-store hits") {
		t.Errorf("warm run stderr does not show a zero-run store-served sweep:\n%s", warmErr)
	}
}

// TestNachosimStoreFlag: the single-run CLI is served from the store on its
// second identical invocation.
func TestNachosimStoreFlag(t *testing.T) {
	bin := build(t, "cmd/nachosim")
	storeDir := filepath.Join(t.TempDir(), "runs")

	cold, err := run(t, bin, "-bench", "towers", "-store", storeDir)
	if err != nil {
		t.Fatalf("cold: %v\n%s", err, cold)
	}
	if !strings.Contains(cold, "0 hits, 1 misses, 1 puts") {
		t.Errorf("cold store summary wrong:\n%s", cold)
	}
	warm, err := run(t, bin, "-bench", "towers", "-store", storeDir)
	if err != nil {
		t.Fatalf("warm: %v\n%s", err, warm)
	}
	if !strings.Contains(warm, "1 hits, 0 misses, 0 puts") {
		t.Errorf("warm store summary wrong:\n%s", warm)
	}
}

// TestNachobenchDistributedDeterminism is the cross-process contract: a
// coordinator sharding an experiment across two separate worker processes
// (sharing one store directory and one job server) prints a report
// byte-identical to a plain sequential single-process run. Under -race the
// built binaries run with the race detector too.
func TestNachobenchDistributedDeterminism(t *testing.T) {
	bin := build(t, "cmd/nachobench")
	dir := t.TempDir()
	storeDir := filepath.Join(dir, "store")

	// Baseline: sequential, storeless, single process.
	seq := exec.Command(bin, "-exp", "fig6", "-bench", "crc", "-j", "1")
	var seqOut, seqErr strings.Builder
	seq.Stdout, seq.Stderr = &seqOut, &seqErr
	if err := seq.Run(); err != nil {
		t.Fatalf("sequential baseline: %v\n%s", err, seqErr.String())
	}

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()

	coord := exec.CommandContext(ctx, bin, "-exp", "fig6", "-bench", "crc", "-store", storeDir, "-serve-jobs")
	var coordOut strings.Builder
	coord.Stdout = &coordOut
	stderrPipe, err := coord.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := coord.Start(); err != nil {
		t.Fatal(err)
	}

	// The coordinator announces its (port-0-assigned) job URL on stderr
	// before it starts waiting for the fleet.
	var coordErr strings.Builder
	sc := bufio.NewScanner(stderrPipe)
	url := ""
	for sc.Scan() {
		line := sc.Text()
		coordErr.WriteString(line + "\n")
		if _, after, ok := strings.Cut(line, "jobs on "); ok {
			url = after
			break
		}
	}
	if url == "" {
		coord.Process.Kill()
		coord.Wait()
		t.Fatalf("coordinator never announced its job URL:\n%s", coordErr.String())
	}
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		for sc.Scan() {
			coordErr.WriteString(sc.Text() + "\n")
		}
	}()

	// Two worker processes share the coordinator's store directory.
	type workerRun struct {
		cmd *exec.Cmd
		out strings.Builder
	}
	workers := make([]*workerRun, 2)
	for i := range workers {
		w := &workerRun{cmd: exec.CommandContext(ctx, bin, "-worker", url, "-store", storeDir)}
		w.cmd.Stdout, w.cmd.Stderr = &w.out, &w.out
		if err := w.cmd.Start(); err != nil {
			t.Fatal(err)
		}
		workers[i] = w
	}
	for i, w := range workers {
		if err := w.cmd.Wait(); err != nil {
			t.Errorf("worker %d: %v\n%s", i, err, w.out.String())
		}
		if !strings.Contains(w.out.String(), "worker drained") {
			t.Errorf("worker %d never drained:\n%s", i, w.out.String())
		}
	}
	if err := coord.Wait(); err != nil {
		t.Fatalf("coordinator: %v\n%s", err, coordErr.String())
	}
	<-drained

	if coordOut.String() != seqOut.String() {
		t.Errorf("distributed report differs from sequential run:\n--- sequential\n%s--- distributed\n%s",
			seqOut.String(), coordOut.String())
	}
	// The fleet did the simulating: the coordinator's own regeneration was
	// pure store hits.
	if !strings.Contains(coordErr.String(), "fleet executed") {
		t.Errorf("coordinator stderr missing fleet summary:\n%s", coordErr.String())
	}
	if !strings.Contains(coordErr.String(), "timing: 0 runs") || !strings.Contains(coordErr.String(), "persistent-store hits") {
		t.Errorf("coordinator executed simulations itself:\n%s", coordErr.String())
	}
}

// TestNachofuzzSubmit: a fuzz campaign submitted to a coordinator and
// executed by a worker process prints the same report as a local run.
func TestNachofuzzSubmit(t *testing.T) {
	bench := build(t, "cmd/nachobench")
	fuzz := build(t, "cmd/nachofuzz")
	dir := t.TempDir()
	storeDir := filepath.Join(dir, "store")

	local, err := exec.Command(fuzz, "-seeds", "6", "-systems", "nacho,clank").Output()
	if err != nil {
		t.Fatalf("local campaign: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()

	// A serve-only coordinator: accepts jobs until the test posts the
	// shutdown after the submission completes.
	coord := exec.CommandContext(ctx, bench, "-exp", "none", "-store", storeDir, "-serve-jobs")
	stderrPipe, err := coord.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := coord.Start(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(stderrPipe)
	url := ""
	for sc.Scan() {
		if _, after, ok := strings.Cut(sc.Text(), "jobs on "); ok {
			url = after
			break
		}
	}
	if url == "" {
		coord.Process.Kill()
		coord.Wait()
		t.Fatal("coordinator never announced its job URL")
	}
	go func() {
		for sc.Scan() {
		}
	}()

	worker := exec.CommandContext(ctx, bench, "-worker", url, "-store", storeDir)
	var workerOut strings.Builder
	worker.Stdout, worker.Stderr = &workerOut, &workerOut
	if err := worker.Start(); err != nil {
		t.Fatal(err)
	}

	submit := exec.CommandContext(ctx, fuzz, "-seeds", "6", "-systems", "nacho,clank", "-submit", url, "-chunk", "2")
	var subOut, subErr strings.Builder
	submit.Stdout, submit.Stderr = &subOut, &subErr
	if err := submit.Run(); err != nil {
		t.Fatalf("-submit: %v\n%s", err, subErr.String())
	}
	if subOut.String() != string(local) {
		t.Errorf("distributed fuzz report differs from local:\n--- local\n%s--- distributed\n%s",
			local, subOut.String())
	}

	resp, err := http.Post(url+"/jobs/shutdown", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	resp.Body.Close()

	if err := worker.Wait(); err != nil {
		t.Errorf("worker: %v\n%s", err, workerOut.String())
	}
	if err := coord.Wait(); err != nil {
		t.Errorf("coordinator: %v", err)
	}
}

// TestNachobenchServeFlag smoke-tests the sweep-side telemetry server.
func TestNachobenchServeFlag(t *testing.T) {
	bin := build(t, "cmd/nachobench")
	out, err := run(t, bin, "-exp", "fig6", "-bench", "crc", "-serve", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("-serve: %v\n%s", err, out)
	}
	if !strings.Contains(out, "telemetry on http://127.0.0.1:") {
		t.Errorf("-serve did not announce its address:\n%s", out)
	}
}
