// Command nachosim runs one benchmark under one memory system and prints
// the paper's metrics — the reproduction's counterpart to the artifact's
// benchmark.sh (Appendix A.5).
//
// Usage:
//
//	nachosim -bench aes -system nacho -cache 512 -ways 2
//	nachosim -bench coremark -system clank -onduration 10
//	nachosim -list
//	nachosim -run program.s -system nacho
package main

import (
	"flag"
	"fmt"
	"os"

	"nacho"
	"nacho/internal/profiling"
)

func main() {
	var (
		bench        = flag.String("bench", "aes", "benchmark name (see -list)")
		system       = flag.String("system", "nacho", "memory system (see -list)")
		cacheSize    = flag.Int("cache", 512, "data cache size in bytes")
		ways         = flag.Int("ways", 2, "cache associativity")
		onDuration   = flag.Float64("onduration", 0, "power-failure on-duration in ms (0 = always on)")
		random       = flag.Bool("random", false, "use seeded-random on-durations instead of periodic")
		seed         = flag.Int64("seed", 1, "seed for -random")
		noVerify     = flag.Bool("noverify", false, "disable shadow-memory and WAR verification")
		engine       = flag.String("engine", "auto", "execution engine: auto, ref, fast, or aot")
		noFastPath   = flag.Bool("no-fastpath", false, "deprecated: equivalent to -engine ref")
		trace        = flag.String("trace", "", "write a per-instruction execution trace to this file")
		threshold    = flag.Int("dirty-threshold", 0, "adaptive checkpointing threshold (0 = off)")
		probeStats   = flag.Bool("probe-stats", false, "collect and print per-checkpoint-interval statistics")
		energyPred   = flag.Bool("energy-prediction", false, "single-buffered checkpoints under guaranteed energy")
		list         = flag.Bool("list", false, "list benchmarks and systems, then exit")
		runFile      = flag.String("run", "", "assemble and run a user RV32IM .s file instead of a benchmark")
		perfetto     = flag.String("perfetto", "", "write the run as Perfetto/Chrome trace-event JSON to this file")
		serve        = flag.String("serve", "", "serve live telemetry (/metrics, /status, /dashboard, /debug/pprof) on this address during the run")
		storeDir     = flag.String("store", "", "persistent content-addressed run store directory (a repeated run is served from it without executing; traced/probed runs bypass it)")
		traceCamp    = flag.String("trace-campaign", "", "write a campaign-level Perfetto trace (wall-clock run spans) to this file")
		ledger       = flag.String("ledger", "", "append one JSON record per run to this ledger file")
		cpuprofile   = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile   = flag.String("memprofile", "", "write a heap profile to this file on exit")
		mutexprofile = flag.String("mutexprofile", "", "write a mutex-contention profile to this file on exit")
		blockprofile = flag.String("blockprofile", "", "write a goroutine-blocking profile to this file on exit")
	)
	flag.Parse()

	profiles := profiling.Profiles{
		CPU: *cpuprofile, Mem: *memprofile, Mutex: *mutexprofile, Block: *blockprofile,
	}
	if profiles.Enabled() {
		stop, err := profiling.Start(profiles)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := stop(); err != nil {
				fmt.Fprintln(os.Stderr, "nachosim:", err)
			}
		}()
	}

	if *list {
		fmt.Println("benchmarks:")
		for _, b := range nacho.Benchmarks() {
			desc, _ := nacho.BenchmarkDescription(b)
			fmt.Printf("  %-10s %s\n", b, desc)
		}
		fmt.Println("systems:")
		for _, s := range nacho.Systems() {
			fmt.Printf("  %s\n", s)
		}
		return
	}

	cfg := nacho.Config{
		Benchmark:        *bench,
		System:           nacho.System(*system),
		CacheSize:        *cacheSize,
		Ways:             *ways,
		OnDurationMs:     *onDuration,
		RandomFailures:   *random,
		Seed:             *seed,
		DisableVerify:    *noVerify,
		Engine:           *engine,
		NoFastPath:       *noFastPath,
		DirtyThreshold:   *threshold,
		EnergyPrediction: *energyPred,
		ProbeStats:       *probeStats,
	}
	if *trace != "" {
		f, err := os.Create(*trace)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		cfg.Trace = f
	}
	if *perfetto != "" {
		f, err := os.Create(*perfetto)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		cfg.Perfetto = f
	}
	if *storeDir != "" {
		rs, err := nacho.OpenRunStore(*storeDir)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := rs.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "nachosim:", err)
			}
			st := rs.Stats()
			fmt.Fprintf(os.Stderr, "nachosim: store %s: %d hits, %d misses, %d puts\n",
				rs.Dir(), st.Hits, st.Misses, st.Puts)
		}()
	}
	if *serve != "" {
		ts, err := nacho.ServeTelemetry(*serve)
		if err != nil {
			fatal(err)
		}
		defer ts.Close()
		fmt.Fprintf(os.Stderr, "nachosim: telemetry on http://%s\n", ts.Addr())
		cfg.Telemetry = ts
	}
	campaign, err := nacho.StartCampaign(nacho.CampaignConfig{
		Name: "nachosim", TracePath: *traceCamp, LedgerPath: *ledger,
	})
	if err != nil {
		fatal(err)
	}
	defer func() {
		if err := campaign.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "nachosim:", err)
		}
	}()

	var res *nacho.Result
	if *runFile != "" {
		src, rerr := os.ReadFile(*runFile)
		if rerr != nil {
			fatal(rerr)
		}
		res, err = nacho.RunSource(*runFile, string(src), cfg)
	} else {
		res, err = nacho.Run(cfg)
	}
	if err != nil {
		campaign.Close() // flush the error record before exiting
		fatal(err)
	}

	fmt.Printf("benchmark        %s\n", *bench)
	fmt.Printf("system           %s\n", *system)
	fmt.Printf("result word      0x%08x\n", res.ResultWord)
	fmt.Printf("cycles           %d (%.3f ms at 50 MHz)\n", res.Cycles, float64(res.Cycles)/50e3)
	fmt.Printf("instructions     %d (%d loads, %d stores)\n", res.Instructions, res.Loads, res.Stores)
	fmt.Printf("checkpoints      %d (%d lines flushed", res.Checkpoints, res.CheckpointLines)
	if res.Checkpoints > 0 {
		fmt.Printf(", avg %.1f lines, max %d", float64(res.CheckpointLines)/float64(res.Checkpoints), res.MaxCheckpointLines)
	}
	fmt.Printf(")\n")
	if res.Instructions > 0 && res.Checkpoints > 0 {
		fmt.Printf("ckpt frequency   %.1f per Minstr\n", 1e6*float64(res.Checkpoints)/float64(res.Instructions))
	}
	fmt.Printf("nvm reads        %d accesses, %d bytes\n", res.NVMReads, res.NVMReadBytes)
	fmt.Printf("nvm writes       %d accesses, %d bytes\n", res.NVMWrites, res.NVMWriteBytes)
	fmt.Printf("cache            %d hits, %d misses (%.1f%% hit rate)\n",
		res.CacheHits, res.CacheMisses, 100*res.HitRate())
	fmt.Printf("evictions        %d safe, %d unsafe, %d dropped stack lines\n",
		res.SafeEvictions, res.UnsafeEvictions, res.DroppedStackLines)
	if res.Regions > 0 {
		fmt.Printf("regions          %d\n", res.Regions)
	}
	if res.PowerFailures > 0 {
		fmt.Printf("power failures   %d\n", res.PowerFailures)
	}
	if len(res.Output) > 0 {
		fmt.Printf("output           %q\n", res.Output)
	}
	if res.ProbeStats != nil {
		printProbeStats(res.ProbeStats)
	}
}

// maxIntervalRows bounds the per-interval table; longer runs keep the totals
// and note how many rows were elided.
const maxIntervalRows = 32

func printProbeStats(ps *nacho.ProbeStats) {
	fmt.Printf("\ncheckpoint intervals (%d", len(ps.Intervals))
	if ps.Dropped > 0 {
		fmt.Printf(" stored, %d more in totals only", ps.Dropped)
	}
	fmt.Printf("):\n")
	fmt.Printf("  %-5s %12s %12s %10s %10s %6s %6s %6s  %s\n",
		"#", "start", "cycles", "nvm-rd-B", "nvm-wr-B", "safe", "unsafe", "lines", "closed by")
	for i, iv := range ps.Intervals {
		if i == maxIntervalRows {
			fmt.Printf("  ... %d more intervals\n", len(ps.Intervals)-maxIntervalRows)
			break
		}
		closedBy := iv.Kind
		if iv.PowerFailure {
			closedBy = "power-failure"
		}
		fmt.Printf("  %-5d %12d %12d %10d %10d %6d %6d %6d  %s\n",
			i, iv.StartCycle, iv.EndCycle-iv.StartCycle,
			iv.NVMReadBytes, iv.NVMWriteBytes,
			iv.WriteBacks.Safe, iv.WriteBacks.Unsafe, iv.CheckpointLines, closedBy)
	}
	w := ps.TotalWriteBacks
	fmt.Printf("interval totals  %d B read, %d B written\n", ps.TotalNVMReadBytes, ps.TotalNVMWriteBytes)
	fmt.Printf("verdicts         %d safe, %d unsafe, %d dropped-stack, %d write-through, %d async\n",
		w.Safe, w.Unsafe, w.DroppedStack, w.WriteThrough, w.Async)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nachosim:", err)
	os.Exit(1)
}
