package nacho

import (
	"nacho/internal/energy"
	"nacho/internal/metrics"
)

// EnergyModel holds per-event energy coefficients in picojoules for the
// rough energy model of paper Section 8. The zero value is replaced by
// DefaultEnergyModel's coefficients.
type EnergyModel struct {
	InstructionPJ  float64 // core pipeline energy per retired instruction
	CacheAccessPJ  float64 // one SRAM/data-cache access
	NVMReadPJByte  float64 // per byte read from NVM
	NVMWritePJByte float64 // per byte written to NVM
}

// DefaultEnergyModel returns the reference coefficients: an NVM write costs
// more than an NVM read, which costs several times an SRAM access — the
// FRAM-versus-SRAM ratio band of the paper's sources. Absolute values are
// indicative; the model's purpose is comparing systems under identical
// coefficients.
func DefaultEnergyModel() EnergyModel {
	m := energy.DefaultModel()
	return EnergyModel{
		InstructionPJ:  m.InstructionPJ,
		CacheAccessPJ:  m.CacheAccessPJ,
		NVMReadPJByte:  m.NVMReadPJByte,
		NVMWritePJByte: m.NVMWritePJByte,
	}
}

// EnergyBreakdown is a per-subsystem energy estimate in picojoules.
type EnergyBreakdown struct {
	CorePJ     float64
	CachePJ    float64
	NVMReadPJ  float64
	NVMWritePJ float64
}

// TotalPJ sums the breakdown.
func (b EnergyBreakdown) TotalPJ() float64 {
	return b.CorePJ + b.CachePJ + b.NVMReadPJ + b.NVMWritePJ
}

// TotalUJ is the total in microjoules.
func (b EnergyBreakdown) TotalUJ() float64 { return b.TotalPJ() / 1e6 }

// EstimateEnergy folds a run's counters into the model. A zero model uses
// DefaultEnergyModel.
func EstimateEnergy(res *Result, m EnergyModel) EnergyBreakdown {
	if m == (EnergyModel{}) {
		m = DefaultEnergyModel()
	}
	im := energy.Model{
		InstructionPJ:  m.InstructionPJ,
		CacheAccessPJ:  m.CacheAccessPJ,
		NVMReadPJByte:  m.NVMReadPJByte,
		NVMWritePJByte: m.NVMWritePJByte,
	}
	b := im.Estimate(metrics.Counters{
		Instructions:  res.Instructions,
		CacheHits:     res.CacheHits,
		CacheMisses:   res.CacheMisses,
		NVMReadBytes:  res.NVMReadBytes,
		NVMWriteBytes: res.NVMWriteBytes,
	})
	return EnergyBreakdown{CorePJ: b.CorePJ, CachePJ: b.CachePJ, NVMReadPJ: b.NVMReadPJ, NVMWritePJ: b.NVMWritePJ}
}
