package nacho

// The benchmark harness of deliverable (d): one testing.B benchmark per
// table and figure of the paper's evaluation (Section 6.2). Each regenerates
// its experiment and reports the headline aggregate as custom metrics, so
//
//	go test -bench=. -benchmem
//
// reproduces the full evaluation. cmd/nachobench prints the complete rows.
//
// Experiment regeneration inherits the harness default parallelism (one
// worker per CPU); BenchmarkFig5Sequential pins the pool to one worker so
// the parallel speedup is measurable as the ratio of the two Fig5
// benchmarks.

import (
	"fmt"
	"strconv"
	"strings"
	"testing"

	"nacho/internal/harness"
)

// reportMeans parses ratio columns of a report and publishes their means.
func reportMeans(b *testing.B, rep *harness.Report, cols map[string]int) {
	b.Helper()
	for name, col := range cols {
		var sum float64
		var n int
		for _, row := range rep.Rows {
			v, err := strconv.ParseFloat(strings.TrimSuffix(row[col], "%"), 64)
			if err != nil {
				continue // non-numeric cell (absolute-count fallback)
			}
			sum += v
			n++
		}
		if n > 0 {
			b.ReportMetric(sum/float64(n), name)
		}
	}
}

// BenchmarkFig5ExecutionTime regenerates Figure 5 and reports the mean
// execution time of each system normalized to the fully volatile baseline.
func BenchmarkFig5ExecutionTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := harness.Fig5(harness.AllBenchmarks())
		if err != nil {
			b.Fatal(err)
		}
		reportMeans(b, rep, map[string]int{
			"clank-norm":  2,
			"prowl-norm":  3,
			"replay-norm": 4,
			"nacho-norm":  5,
			"oracle-norm": 6,
		})
	}
}

// BenchmarkFig5Sequential regenerates Figure 5 with the worker pool
// disabled: the sequential baseline for the parallel harness speedup
// (compare against BenchmarkFig5ExecutionTime).
func BenchmarkFig5Sequential(b *testing.B) {
	prev := SetParallelism(1)
	defer SetParallelism(prev)
	for i := 0; i < b.N; i++ {
		if _, err := harness.Fig5(harness.AllBenchmarks()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6Checkpoints regenerates Figure 6 and reports mean checkpoint
// counts normalized to Clank.
func BenchmarkFig6Checkpoints(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := harness.Fig6(harness.Fig6Benchmarks())
		if err != nil {
			b.Fatal(err)
		}
		reportMeans(b, rep, map[string]int{"prowl/clank": 3, "nacho/clank": 4})
	}
}

// BenchmarkFig7NVMTransfers regenerates Figure 7 and reports mean NVM byte
// traffic normalized to Clank (the paper's 82% average reduction claim
// corresponds to nacho/clank ~= 0.18).
func BenchmarkFig7NVMTransfers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := harness.Fig7(harness.Fig6Benchmarks())
		if err != nil {
			b.Fatal(err)
		}
		reportMeans(b, rep, map[string]int{
			"prowl/clank": 2, "replay/clank": 3, "nacho/clank": 4,
		})
	}
}

// BenchmarkTable2ReexecutionOverhead regenerates Table 2 and reports the
// mean re-execution overhead (%) at the shortest and longest on-durations.
func BenchmarkTable2ReexecutionOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := harness.Table2(harness.Table2Benchmarks())
		if err != nil {
			b.Fatal(err)
		}
		mean := func(row []string) float64 {
			var sum float64
			for _, cell := range row[1:] {
				v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "%"), 64)
				if err == nil {
					sum += v
				}
			}
			return sum / float64(len(row)-1)
		}
		b.ReportMetric(mean(rep.Rows[0]), "overhead-5ms-%")
		b.ReportMetric(mean(rep.Rows[len(rep.Rows)-1]), "overhead-100ms-%")
	}
}

// BenchmarkTable3Ablation regenerates Table 3 and reports the mean overhead
// reduction of each NACHO component versus Naive NACHO.
func BenchmarkTable3Ablation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := harness.Table3(harness.Table3Benchmarks())
		if err != nil {
			b.Fatal(err)
		}
		var pw, st, n float64
		var rows int
		for _, row := range rep.Rows {
			if row[1] != "overhead" {
				continue
			}
			parse := func(s string) float64 {
				v, _ := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
				return v
			}
			pw += parse(row[2])
			st += parse(row[3])
			n += parse(row[4])
			rows++
		}
		if rows > 0 {
			b.ReportMetric(pw/float64(rows), "pw-reduction-%")
			b.ReportMetric(st/float64(rows), "st-reduction-%")
			b.ReportMetric(n/float64(rows), "nacho-reduction-%")
		}
	}
}

// BenchmarkFig8DesignSpace regenerates Figure 8 and reports the mean
// normalized execution time of the smallest and largest configurations.
func BenchmarkFig8DesignSpace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := harness.Fig8(harness.AllBenchmarks())
		if err != nil {
			b.Fatal(err)
		}
		reportMeans(b, rep, map[string]int{
			"256B-2w": 1, "512B-2w": 2, "1024B-2w": 3, "512B-4w": 5,
		})
	}
}

// BenchmarkEmulatorThroughput measures raw interpreter speed (simulated
// instructions per wall second) on the volatile baseline with verification
// off — the simulator-infrastructure cost.
func BenchmarkEmulatorThroughput(b *testing.B) {
	var instructions uint64
	for i := 0; i < b.N; i++ {
		res, err := Run(Config{Benchmark: "towers", System: Volatile, DisableVerify: true})
		if err != nil {
			b.Fatal(err)
		}
		instructions += res.Instructions
	}
	b.ReportMetric(float64(instructions)/b.Elapsed().Seconds()/1e6, "sim-MIPS")
}

// memBoundBenchmarks are the memory-bound workloads of the engine-throughput
// comparison (BENCH_emu.json): load/store-dense programs where per-access
// dispatch, not ALU batching, dominates interpreter time.
var memBoundBenchmarks = []string{"towers", "dijkstra", "picojpeg"}

func benchmarkMemThroughput(b *testing.B, engine string) {
	for _, name := range memBoundBenchmarks {
		b.Run(name, func(b *testing.B) {
			var instructions uint64
			for i := 0; i < b.N; i++ {
				res, err := Run(Config{
					Benchmark: name, System: Volatile,
					DisableVerify: true, Engine: engine,
				})
				if err != nil {
					b.Fatal(err)
				}
				instructions += res.Instructions
			}
			b.ReportMetric(float64(instructions)/b.Elapsed().Seconds()/1e6, "sim-MIPS")
		})
	}
}

// BenchmarkEmulatorThroughputMem measures the default engine on the
// memory-bound suite.
func BenchmarkEmulatorThroughputMem(b *testing.B) { benchmarkMemThroughput(b, "") }

// BenchmarkEmulatorThroughputMemReference is the reference-interpreter
// baseline for the memory-bound suite; the ratio to
// BenchmarkEmulatorThroughputMemAOT is the AOT engine's speedup.
func BenchmarkEmulatorThroughputMemReference(b *testing.B) { benchmarkMemThroughput(b, "ref") }

// BenchmarkEmulatorThroughputMemAOT measures the compiled threaded-code
// engine on the memory-bound suite.
func BenchmarkEmulatorThroughputMemAOT(b *testing.B) { benchmarkMemThroughput(b, "aot") }

// aluKernelIters sizes the ALU throughput kernel: iterations of the unrolled
// mixing block, ~2.2M retired instructions per run.
const aluKernelIters = 30_000

// aluKernelSource builds an ALU-dense RV32IM kernel: iters iterations of a
// 72-instruction unrolled xorshift/multiply mixing block with no loads,
// stores, or branches inside the unroll — the workload class the batched
// fast path exists for, and the complement of the memory-bound towers
// workload measured by BenchmarkEmulatorThroughput.
func aluKernelSource(iters int) string {
	var sb strings.Builder
	sb.WriteString(`	.equ MMIO_RESULT, 0x000F0004
	.equ MMIO_EXIT,   0x000F0000
	.text
_start:
	li   a0, 0x12345678
	li   a1, 0
`)
	fmt.Fprintf(&sb, "	li   a2, %d\n", iters)
	sb.WriteString("alu_loop:\n")
	for i := 0; i < 8; i++ {
		sb.WriteString(`	slli t0, a0, 13
	xor  a0, a0, t0
	srli t1, a0, 17
	xor  a0, a0, t1
	slli t2, a0, 5
	xor  a0, a0, t2
	add  a1, a1, a0
	mul  t3, a0, a1
	xor  a1, a1, t3
`)
	}
	sb.WriteString(`	addi a2, a2, -1
	bnez a2, alu_loop
	li   t0, MMIO_RESULT
	sw   a1, 0(t0)
	li   t0, MMIO_EXIT
	sw   zero, 0(t0)
`)
	return sb.String()
}

func benchmarkALUKernel(b *testing.B, cfg Config) {
	src := aluKernelSource(aluKernelIters)
	var instructions uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := RunSource("alu-kernel", src, cfg)
		if err != nil {
			b.Fatal(err)
		}
		instructions += res.Instructions
	}
	b.ReportMetric(float64(instructions)/b.Elapsed().Seconds()/1e6, "sim-MIPS")
}

// BenchmarkEmulatorThroughputALU measures the default engine (auto, which
// resolves to the AOT threaded-code engine) on the ALU kernel, failure-free.
func BenchmarkEmulatorThroughputALU(b *testing.B) {
	benchmarkALUKernel(b, Config{System: Volatile, DisableVerify: true})
}

// BenchmarkEmulatorThroughputALUFast pins the batched fast-path engine on
// the same kernel; it remains the quickest engine on pure-ALU code (the AOT
// engine wins on memory-bound code, see the Mem benchmarks).
func BenchmarkEmulatorThroughputALUFast(b *testing.B) {
	benchmarkALUKernel(b, Config{System: Volatile, DisableVerify: true, Engine: "fast"})
}

// BenchmarkEmulatorThroughputALUReference runs the same kernel on the
// per-instruction reference engine; the ratio to BenchmarkEmulatorThroughputALU
// is the batched engine's speedup.
func BenchmarkEmulatorThroughputALUReference(b *testing.B) {
	benchmarkALUKernel(b, Config{System: Volatile, DisableVerify: true, NoFastPath: true})
}

// BenchmarkEmulatorThroughputALUIntermittent measures the batched engine on
// the ALU kernel under dense power failures (1 ms on-durations on NACHO, so
// checkpoints guarantee forward progress): the horizon clamps to each failure
// instant and the engine degrades gracefully rather than falling off a cliff.
func BenchmarkEmulatorThroughputALUIntermittent(b *testing.B) {
	benchmarkALUKernel(b, Config{System: NACHO, DisableVerify: true, OnDurationMs: 1})
}

// benchmarkCachedThroughput measures simulated-instruction throughput on a
// cache-based system over the memory-bound suite — the workload class the
// sim.FastPort cached-hit path exists for. noPort disables the port, giving
// the pre-fast-path baseline; the ratio of the paired benchmarks is the fast
// path's speedup (recorded in BENCH_emu.json under "cachedpath").
func benchmarkCachedThroughput(b *testing.B, system System, onMs float64, noPort bool) {
	for _, name := range memBoundBenchmarks {
		b.Run(name, func(b *testing.B) {
			var instructions uint64
			for i := 0; i < b.N; i++ {
				res, err := Run(Config{
					Benchmark: name, System: system, DisableVerify: true,
					OnDurationMs: onMs, NoFastPort: noPort,
				})
				if err != nil {
					b.Fatal(err)
				}
				instructions += res.Instructions
			}
			b.ReportMetric(float64(instructions)/b.Elapsed().Seconds()/1e6, "sim-MIPS")
		})
	}
}

// BenchmarkEmulatorThroughputNACHO measures the default engine on the
// memory-bound suite under NACHO, failure-free: every data access runs the
// full cache controller, so cached-hit dispatch dominates.
func BenchmarkEmulatorThroughputNACHO(b *testing.B) {
	benchmarkCachedThroughput(b, NACHO, 0, false)
}

// BenchmarkEmulatorThroughputNACHONoPort is the same workload with the
// fast port disabled — the pre-fast-path AOT baseline.
func BenchmarkEmulatorThroughputNACHONoPort(b *testing.B) {
	benchmarkCachedThroughput(b, NACHO, 0, true)
}

// BenchmarkEmulatorThroughputNACHOIntermittent measures the memory-bound
// suite under NACHO with the paper's periodic 1 ms power failures and
// forward-progress checkpoints — the acceptance workload for the fast path.
func BenchmarkEmulatorThroughputNACHOIntermittent(b *testing.B) {
	benchmarkCachedThroughput(b, NACHO, 1, false)
}

// BenchmarkEmulatorThroughputNACHOIntermittentNoPort is the intermittent
// workload with the fast port disabled.
func BenchmarkEmulatorThroughputNACHOIntermittentNoPort(b *testing.B) {
	benchmarkCachedThroughput(b, NACHO, 1, true)
}

// BenchmarkEmulatorThroughputPROWL measures the cache-baseline variant:
// PROWL's skewed-associative cache serves both port directions, so the fast
// path applies to a compared baseline too, not just NACHO.
func BenchmarkEmulatorThroughputPROWL(b *testing.B) {
	benchmarkCachedThroughput(b, PROWL, 0, false)
}

// BenchmarkEmulatorThroughputPROWLNoPort is the PROWL workload with the fast
// port disabled.
func BenchmarkEmulatorThroughputPROWLNoPort(b *testing.B) {
	benchmarkCachedThroughput(b, PROWL, 0, true)
}

// BenchmarkNACHOSimulation measures full NACHO simulation speed including
// the cache controller and verification.
func BenchmarkNACHOSimulation(b *testing.B) {
	var instructions uint64
	for i := 0; i < b.N; i++ {
		res, err := Run(Config{Benchmark: "aes"})
		if err != nil {
			b.Fatal(err)
		}
		instructions += res.Instructions
	}
	b.ReportMetric(float64(instructions)/b.Elapsed().Seconds()/1e6, "sim-MIPS")
}

// BenchmarkIntermittentSimulation measures simulation speed under dense
// power-failure injection (the Table 2 workload class).
func BenchmarkIntermittentSimulation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Run(Config{Benchmark: "crc", OnDurationMs: 1}); err != nil {
			b.Fatal(err)
		}
	}
}
