// Package nacho is the public API of the NACHO reproduction: a data cache
// for intermittent computing systems with non-volatile main memory
// (Mohapatra et al., ASPLOS 2025).
//
// The package runs RV32IM programs — the paper's benchmark suite or caller-
// supplied assembly — on a cycle-accounted emulator wired to one of the
// paper's memory systems (NACHO and its ablations, plus the Clank, PROWL,
// ReplayCache and fully volatile baselines), optionally under injected power
// failures, and reports the paper's metrics: execution cycles, checkpoints,
// and NVM traffic. Every access is cross-checked against a shadow memory and
// an exact WAR-violation detector unless verification is disabled.
//
// Quickstart:
//
//	res, err := nacho.Run(nacho.Config{Benchmark: "aes"})
//	fmt.Println(res.Cycles, res.Checkpoints, res.NVMBytes())
//
// See examples/ for complete programs and cmd/nachobench for regenerating
// the paper's tables and figures.
package nacho

import (
	"fmt"
	"io"
	"time"

	"nacho/internal/emu"
	"nacho/internal/harness"
	"nacho/internal/mem"
	"nacho/internal/power"
	"nacho/internal/program"
	"nacho/internal/sim"
	"nacho/internal/systems"
	"nacho/internal/telemetry"
)

// System selects the memory system to simulate (paper Section 6.1.2).
type System string

// The available systems. NACHO is the paper's contribution; NaiveNACHO,
// OracleNACHO, NACHOPWOnly and NACHOSTOnly are its ablations; the rest are
// the compared baselines.
const (
	Volatile    System = "volatile"
	Clank       System = "clank"
	PROWL       System = "prowl"
	ReplayCache System = "replaycache"
	NaiveNACHO  System = "naive-nacho"
	NACHO       System = "nacho"
	OracleNACHO System = "oracle-nacho"
	NACHOPWOnly System = "nacho-pw"
	NACHOSTOnly System = "nacho-st"
	// WriteThrough is the Section 8 extension: a write-through cache with an
	// exact hardware WAR tracker (see internal/systems).
	WriteThrough System = "writethrough"
)

// Systems lists every selectable system.
func Systems() []System {
	var out []System
	for _, k := range systems.AllKinds() {
		out = append(out, System(k))
	}
	return out
}

// Benchmarks lists the paper's benchmark suite (Section 6.1.1).
func Benchmarks() []string { return program.Names() }

// BenchmarkDescription returns the one-line description of a benchmark.
func BenchmarkDescription(name string) (string, bool) {
	p, ok := program.ByName(name)
	if !ok {
		return "", false
	}
	return p.Description, true
}

// Config parameterizes one simulation. Zero fields take the paper's
// defaults: system NACHO, a 2-way 512 B cache, always-on power, verification
// enabled.
type Config struct {
	// Benchmark names one of Benchmarks(). Required for Run.
	Benchmark string
	// System selects the memory system (default NACHO).
	System System
	// CacheSize in bytes (default 512). Ignored by volatile and clank.
	CacheSize int
	// Ways is the cache associativity (default 2).
	Ways int
	// OnDurationMs, when non-zero, injects a periodic power failure every
	// that many milliseconds of active time (at the model's 50 MHz clock)
	// and arms the paper's forward-progress checkpoint at half the period.
	OnDurationMs float64
	// RandomFailures replaces the periodic schedule with seeded-uniform
	// on-durations in [OnDurationMs/2, OnDurationMs].
	RandomFailures bool
	// Seed for RandomFailures (default 1).
	Seed int64
	// DisableVerify turns off shadow-memory and WAR checking (faster runs).
	DisableVerify bool
	// MaxInstructions overrides the runaway-guard instruction limit.
	MaxInstructions uint64
	// DirtyThreshold enables the adaptive checkpointing extension on
	// NACHO-family systems: checkpoint proactively once more than this many
	// cache lines are dirty (0 = off; paper Section 8).
	DirtyThreshold int
	// EnergyPrediction runs NACHO-family checkpoints single-buffered under a
	// guaranteed-energy window, halving checkpoint NVM writes (Section 8).
	EnergyPrediction bool
	// Trace, when non-nil, receives a per-instruction execution trace.
	Trace io.Writer
	// ProbeStats collects per-checkpoint-interval statistics through the
	// probe event pipeline (NVM traffic and write-back verdicts between
	// consecutive persistence points); the result carries them in
	// Result.ProbeStats. Slows the run slightly: every event is observed.
	ProbeStats bool
	// Perfetto, when non-nil, receives the run as Chrome trace-event JSON —
	// loadable in Perfetto (ui.perfetto.dev) or chrome://tracing — with
	// checkpoint intervals as duration slices, power outages and write-back
	// verdicts on their own tracks, and an NVM-traffic counter track.
	Perfetto io.Writer
	// Telemetry, when non-nil, feeds the run's event stream into the
	// server's live nacho_sim_* metrics (see ServeTelemetry).
	Telemetry *TelemetryServer
	// NoFastPath forces the emulator's per-instruction reference interpreter
	// even on un-instrumented runs.
	//
	// Deprecated: set Engine to "ref" instead. Consulted only while Engine is
	// empty or "auto".
	NoFastPath bool
	// Engine selects the execution engine: "auto" (or empty) picks the
	// fastest correct engine, "ref" the per-instruction reference
	// interpreter, "fast" the batched ALU fast path, "aot" the compiled
	// threaded-code engine. Results are identical on every engine; the knob
	// exists for the engine-equivalence suite, for measuring engine speedups,
	// and for isolating engine bugs. Unknown values fail the run with a named
	// diagnostic.
	Engine string
	// NoFastPort makes the fast and AOT engines route every data access
	// through the full memory-system interface instead of the system's
	// cached-hit fast port. Results are identical either way; the knob exists
	// for the equivalence suite and for measuring the fast port's speedup.
	NoFastPort bool
}

func (c Config) withDefaults() Config {
	if c.System == "" {
		c.System = NACHO
	}
	if c.CacheSize == 0 {
		c.CacheSize = 512
	}
	if c.Ways == 0 {
		c.Ways = 2
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

func (c Config) runConfig() (harness.RunConfig, error) {
	engine, err := emu.ParseEngine(c.Engine)
	if err != nil {
		return harness.RunConfig{}, fmt.Errorf("nacho: %w", err)
	}
	cost := mem.DefaultCostModel()
	rc := harness.RunConfig{
		CacheSize:        c.CacheSize,
		Ways:             c.Ways,
		Verify:           !c.DisableVerify,
		MaxInstructions:  c.MaxInstructions,
		Cost:             cost,
		DirtyThreshold:   c.DirtyThreshold,
		EnergyPrediction: c.EnergyPrediction,
		Trace:            c.Trace,
		NoFastPath:       c.NoFastPath,
		NoFastPort:       c.NoFastPort,
		Engine:           engine,
	}
	if c.OnDurationMs > 0 {
		period := cost.CyclesForMillis(c.OnDurationMs)
		if c.RandomFailures {
			rc.Schedule = power.NewUniform(period/2, period, c.Seed)
		} else {
			rc.Schedule = power.Periodic{Period: period}
		}
		rc.ForcedCheckpointPeriod = period / 2
	}
	return rc, nil
}

// Result reports the paper's evaluation metrics for one run
// (Section 6.1.3).
type Result struct {
	ExitCode   uint32
	ResultWord uint32 // the program's reported checksum
	Output     []byte // bytes the program printed

	Cycles       uint64
	Instructions uint64
	Loads        uint64
	Stores       uint64

	Checkpoints     uint64
	CheckpointLines uint64

	NVMReads      uint64
	NVMWrites     uint64
	NVMReadBytes  uint64
	NVMWriteBytes uint64

	CacheHits         uint64
	CacheMisses       uint64
	SafeEvictions     uint64
	UnsafeEvictions   uint64
	DroppedStackLines uint64

	Regions       uint64
	PowerFailures uint64

	AdaptiveCkpts      uint64 // checkpoints forced by the dirty-threshold policy
	MaxCheckpointLines uint64 // largest single checkpoint (capacitor sizing)

	// ProbeStats is set when Config.ProbeStats was enabled.
	ProbeStats *ProbeStats
}

// WriteBackCounts histograms write-back events by safety verdict.
type WriteBackCounts struct {
	Safe         uint64 // write-dominated dirty evictions written straight to NVM
	Unsafe       uint64 // read-dominated dirty evictions (checkpoint triggered)
	DroppedStack uint64 // dirty dead-stack lines discarded
	WriteThrough uint64 // stores written through to NVM
	Async        uint64 // evictions queued on a non-blocking write-back port
}

// Interval summarizes one checkpoint interval: the stretch of execution
// between two consecutive persistence points.
type Interval struct {
	StartCycle, EndCycle uint64
	NVMReadBytes         uint64
	NVMWriteBytes        uint64
	WriteBacks           WriteBackCounts
	CheckpointLines      int    // dirty-line payload of the closing checkpoint
	Kind                 string // "commit", "region", "jit", or "end" (end of run)
	PowerFailure         bool   // interval cut short by a power failure
}

// ProbeStats is the per-checkpoint-interval view of a run, collected through
// the probe pipeline (Config.ProbeStats).
type ProbeStats struct {
	Intervals []Interval
	Dropped   int // intervals beyond the storage cap (still in the totals)

	TotalNVMReadBytes  uint64
	TotalNVMWriteBytes uint64
	TotalWriteBacks    WriteBackCounts
}

func publicWriteBacks(w [sim.NumVerdicts]uint64) WriteBackCounts {
	return WriteBackCounts{
		Safe:         w[sim.VerdictSafe],
		Unsafe:       w[sim.VerdictUnsafe],
		DroppedStack: w[sim.VerdictDroppedStack],
		WriteThrough: w[sim.VerdictWriteThrough],
		Async:        w[sim.VerdictAsync],
	}
}

func publicProbeStats(s *sim.IntervalStats) *ProbeStats {
	out := &ProbeStats{
		Dropped:            s.Dropped,
		TotalNVMReadBytes:  s.TotalNVMReadBytes,
		TotalNVMWriteBytes: s.TotalNVMWriteBytes,
		TotalWriteBacks:    publicWriteBacks(s.TotalWriteBacks),
	}
	for _, iv := range s.Intervals {
		kind := iv.Kind.String()
		if iv.EndOfRun {
			kind = "end"
		}
		out.Intervals = append(out.Intervals, Interval{
			StartCycle:      iv.Start,
			EndCycle:        iv.End,
			NVMReadBytes:    iv.NVMReadBytes,
			NVMWriteBytes:   iv.NVMWriteBytes,
			WriteBacks:      publicWriteBacks(iv.WriteBacks),
			CheckpointLines: iv.Lines,
			Kind:            kind,
			PowerFailure:    iv.PowerFailure,
		})
	}
	return out
}

// NVMBytes is the paper's NVM-transfer metric: bytes moved in either
// direction.
func (r *Result) NVMBytes() uint64 { return r.NVMReadBytes + r.NVMWriteBytes }

// HitRate returns the data-cache hit rate in [0,1].
func (r *Result) HitRate() float64 {
	if t := r.CacheHits + r.CacheMisses; t > 0 {
		return float64(r.CacheHits) / float64(t)
	}
	return 0
}

// Duration converts cycles to wall time at the modelled 50 MHz clock.
func (r *Result) Duration() time.Duration {
	return time.Duration(float64(r.Cycles) / 50e6 * float64(time.Second))
}

// Run executes one benchmark under the configured system. With verification
// enabled (the default) it returns an error on any shadow-memory mismatch,
// exact WAR violation, or checksum mismatch against the benchmark's Go
// reference implementation.
func Run(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	p, ok := program.ByName(cfg.Benchmark)
	if !ok {
		return nil, fmt.Errorf("nacho: unknown benchmark %q (see Benchmarks())", cfg.Benchmark)
	}
	rc, err := cfg.runConfig()
	if err != nil {
		return nil, err
	}
	stats, tep := cfg.observers(&rc)
	res, err := harness.Run(p, systems.Kind(cfg.System), rc)
	if err := finishTrace(tep, res.Counters.Cycles, err); err != nil {
		return nil, err
	}
	return newResult(res, stats), nil
}

// observers assembles the run's optional probe pipeline from the config: the
// interval-statistics collector, the Perfetto trace exporter, and the live
// telemetry feed all observe the same event stream.
func (c Config) observers(rc *harness.RunConfig) (*sim.IntervalStats, *telemetry.TraceEventProbe) {
	var (
		stats  *sim.IntervalStats
		tep    *telemetry.TraceEventProbe
		probes []sim.Probe
	)
	if c.ProbeStats {
		stats = &sim.IntervalStats{}
		probes = append(probes, stats)
	}
	if c.Perfetto != nil {
		tep = telemetry.NewTraceEventProbe(c.Perfetto)
		probes = append(probes, tep)
	}
	if c.Telemetry != nil {
		probes = append(probes, c.Telemetry.probe)
	}
	rc.Probe = sim.Combine(probes...)
	return stats, tep
}

// finishTrace terminates a Perfetto export (so the document is loadable even
// after a failed run) and folds its write error into the run error.
func finishTrace(tep *telemetry.TraceEventProbe, cycles uint64, runErr error) error {
	if tep == nil {
		return runErr
	}
	if err := tep.Finish(cycles); err != nil && runErr == nil {
		return fmt.Errorf("nacho: perfetto export: %w", err)
	}
	return runErr
}

// newResult maps an internal run result (and optional interval statistics)
// into the public Result.
func newResult(res emu.Result, stats *sim.IntervalStats) *Result {
	c := res.Counters
	out := &Result{
		ExitCode:           res.ExitCode,
		ResultWord:         res.Result,
		Output:             res.Output,
		Cycles:             c.Cycles,
		Instructions:       c.Instructions,
		Loads:              c.Loads,
		Stores:             c.Stores,
		Checkpoints:        c.Checkpoints,
		CheckpointLines:    c.CheckpointLines,
		NVMReads:           c.NVMReads,
		NVMWrites:          c.NVMWrites,
		NVMReadBytes:       c.NVMReadBytes,
		NVMWriteBytes:      c.NVMWriteBytes,
		CacheHits:          c.CacheHits,
		CacheMisses:        c.CacheMisses,
		SafeEvictions:      c.SafeEvictions,
		UnsafeEvictions:    c.UnsafeEvictions,
		DroppedStackLines:  c.DroppedStackLines,
		Regions:            c.Regions,
		PowerFailures:      c.PowerFailures,
		AdaptiveCkpts:      c.AdaptiveCkpts,
		MaxCheckpointLines: c.MaxCheckpointLines,
	}
	if stats != nil {
		stats.Finish(c.Cycles)
		out.ProbeStats = publicProbeStats(stats)
	}
	return out
}
