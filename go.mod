module nacho

go 1.22
