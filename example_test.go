package nacho_test

import (
	"fmt"

	"nacho"
)

// Running a paper benchmark under NACHO and reading the paper's metrics.
func ExampleRun() {
	res, err := nacho.Run(nacho.Config{Benchmark: "towers"})
	if err != nil {
		panic(err)
	}
	fmt.Println("exit:", res.ExitCode)
	fmt.Println("checkpoints:", res.Checkpoints)
	fmt.Println("nvm bytes:", res.NVMBytes())
	// Output:
	// exit: 0
	// checkpoints: 0
	// nvm bytes: 0
}

// Running caller-supplied RV32IM assembly on the simulated machine.
func ExampleRunSource() {
	const src = `
_start:
	li   a0, 6
	li   a1, 7
	mul  a0, a0, a1
	li   t0, 0x000F0004   # MMIOResult
	sw   a0, (t0)
	li   t0, 0x000F0000   # MMIOExit
	sw   zero, (t0)
`
	res, err := nacho.RunSource("answer", src, nacho.Config{})
	if err != nil {
		panic(err)
	}
	fmt.Println(res.ResultWord)
	// Output:
	// 42
}

// Comparing two systems on the same workload.
func ExampleRun_comparison() {
	nachoRes, _ := nacho.Run(nacho.Config{Benchmark: "aes"})
	clankRes, _ := nacho.Run(nacho.Config{Benchmark: "aes", System: nacho.Clank})
	fmt.Println("nacho cheaper:", nachoRes.Cycles < clankRes.Cycles)
	// Output:
	// nacho cheaper: true
}
