package nacho

import (
	"fmt"

	"nacho/internal/emu"
	"nacho/internal/harness"
	"nacho/internal/program"
	"nacho/internal/systems"
)

// MMIO addresses available to user programs (see RunSource).
const (
	// MMIOExit halts the program; the stored value is the exit status.
	MMIOExit = 0x000F_0000
	// MMIOResult reports a result word (returned in Result.ResultWord).
	MMIOResult = 0x000F_0004
	// MMIOPutchar appends the stored low byte to Result.Output.
	MMIOPutchar = 0x000F_0008
)

// RunSource assembles and runs a caller-supplied RV32IM assembly program
// under the configured system (Config.Benchmark is ignored). The program
// uses the standard layout — .text at 0x10000, .data at 0x20000, stack
// pointer initialized to 0xA0000 growing down — must define `_start`, and
// halts by storing to MMIOExit (or executing ebreak). Shadow-memory and WAR
// verification still apply unless disabled; there is no reference checksum.
//
// Minimal example:
//
//	_start:
//	    li   t0, 41
//	    addi t0, t0, 1
//	    li   t1, 0x000F0004   # MMIOResult
//	    sw   t0, (t1)
//	    li   t1, 0x000F0000   # MMIOExit
//	    sw   zero, (t1)
func RunSource(name, source string, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	img, err := program.FromSource(name, source)
	if err != nil {
		return nil, err
	}
	rc, err := cfg.runConfig()
	if err != nil {
		return nil, err
	}
	stats, tep := cfg.observers(&rc)
	res, err := harness.RunImage(img, systems.Kind(cfg.System), rc, false)
	if err := finishTrace(tep, res.Counters.Cycles, err); err != nil {
		return nil, err
	}
	return newResult(res, stats), nil
}

// experimentReport resolves an experiment name to its regenerated report via
// the harness experiment registry (the same registry the campaign job service
// enumerates run matrices from).
func experimentReport(name string, benchmarks []string) (*harness.Report, error) {
	rep, err := harness.RunNamedExperiment(name, benchmarks)
	if err != nil {
		return nil, fmt.Errorf("nacho: %w", err)
	}
	return rep, nil
}

// ExperimentOutput is one regenerated table or figure in both render forms,
// plus the harness timing summary of the regeneration.
type ExperimentOutput struct {
	// Text is the aligned text table, CSV the comma-separated form the
	// original artifact's scripts log (Appendix A.6). Both are byte-identical
	// across repeats and parallelism settings.
	Text string
	CSV  string
	// Timing summarizes the regeneration: simulations run, cache hits,
	// summed per-run wall time across all workers, and total harness wall
	// time (their ratio is the parallel speedup). It varies run to run and is
	// never part of Text or CSV.
	Timing string
}

// RunExperiment regenerates one of the paper's tables or figures, fanning
// the run matrix across Parallelism() workers. Valid names are listed by
// ExperimentNames. benchmarks narrows the benchmark set; nil means the
// experiment's paper-default set.
func RunExperiment(name string, benchmarks []string) (*ExperimentOutput, error) {
	rep, err := experimentReport(name, benchmarks)
	if err != nil {
		return nil, err
	}
	return &ExperimentOutput{Text: rep.String(), CSV: rep.CSV(), Timing: rep.Timing}, nil
}

// SetParallelism sets the number of worker goroutines experiment
// regeneration uses and returns the previous setting. n <= 0 resets to
// runtime.NumCPU(); 1 runs fully sequentially. Every report is
// byte-identical regardless of the setting; only wall time changes.
func SetParallelism(n int) int { return harness.SetWorkers(n) }

// Parallelism reports the current experiment worker count.
func Parallelism() int { return harness.Workers() }

// SetDefaultEngine selects the execution engine experiment regeneration
// runs on ("auto", "ref", "fast", or "aot"; see Config.Engine) and returns
// the previous setting. Every report is byte-identical regardless of the
// engine — the equivalence suite enforces it — so this is purely a
// performance and debugging knob. Unknown names return a descriptive error
// and leave the setting unchanged.
func SetDefaultEngine(name string) (string, error) {
	e, err := emu.ParseEngine(name)
	if err != nil {
		return "", fmt.Errorf("nacho: %w", err)
	}
	return string(harness.SetDefaultEngine(e)), nil
}

// Experiment regenerates one of the paper's tables or figures as a text
// report. Valid names are listed by ExperimentNames. benchmarks narrows the
// benchmark set; nil means the experiment's paper-default set.
func Experiment(name string, benchmarks []string) (string, error) {
	rep, err := experimentReport(name, benchmarks)
	if err != nil {
		return "", err
	}
	return rep.String(), nil
}

// ExperimentCSV is Experiment in the comma-separated form the original
// artifact's scripts log (Appendix A.6).
func ExperimentCSV(name string, benchmarks []string) (string, error) {
	rep, err := experimentReport(name, benchmarks)
	if err != nil {
		return "", err
	}
	return rep.CSV(), nil
}

// ExperimentNames lists the regenerable tables and figures in paper order,
// followed by this reproduction's Section 8 extension experiments
// (adaptive checkpointing, the rough energy model, the write-through
// comparison).
func ExperimentNames() []string { return harness.ExperimentNames() }
