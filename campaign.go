package nacho

import (
	"fmt"
	"os"

	"nacho/internal/telemetry"
)

// CampaignConfig configures process-wide campaign observability: a span
// tracer rendering the whole campaign as one Perfetto timeline, and a
// persistent ledger with one JSON line per run. Either output may be empty to
// enable just the other.
type CampaignConfig struct {
	// Name labels the campaign's root span (default "campaign").
	Name string
	// TracePath, when non-empty, receives the Chrome trace-event/Perfetto
	// JSON timeline (campaign → cell → run → window spans) on Close. Load it
	// at ui.perfetto.dev.
	TracePath string
	// LedgerPath, when non-empty, receives the append-only JSONL run ledger:
	// one record per run with its identity, outcome, counters and timing.
	LedgerPath string
	// SpanCapacity bounds the tracer's span arena (0 = a default sized for
	// the full paper matrix). When the arena fills, further spans are counted
	// as dropped, never blocking the campaign.
	SpanCapacity int
}

// Campaign is an active observability session. Exactly one can be active per
// process: StartCampaign installs the tracer and ledger process-wide, so
// every harness run, experiment regeneration, fuzz seed, and explorer window
// between Start and Close is captured with no further plumbing.
type Campaign struct {
	cfg        CampaignConfig
	tracer     *telemetry.Tracer
	root       telemetry.SpanID
	ledger     *telemetry.Ledger
	ledgerFile *os.File
}

// StartCampaign begins recording a campaign. Returns (nil, nil) — campaign
// off, and Close on a nil Campaign is a no-op — when cfg enables no output.
func StartCampaign(cfg CampaignConfig) (*Campaign, error) {
	if cfg.TracePath == "" && cfg.LedgerPath == "" {
		return nil, nil
	}
	if cfg.Name == "" {
		cfg.Name = "campaign"
	}
	c := &Campaign{cfg: cfg}
	if cfg.TracePath != "" {
		c.tracer = telemetry.NewTracer(cfg.SpanCapacity)
		c.root = c.tracer.Begin(0, telemetry.SpanCampaign, cfg.Name, "", "")
		c.tracer.SetAmbient(c.root)
		telemetry.SetActiveTracer(c.tracer)
	}
	if cfg.LedgerPath != "" {
		f, err := os.Create(cfg.LedgerPath)
		if err != nil {
			telemetry.SetActiveTracer(nil)
			return nil, fmt.Errorf("nacho: campaign ledger: %w", err)
		}
		c.ledgerFile = f
		c.ledger = telemetry.NewLedger(f)
		telemetry.SetActiveLedger(c.ledger)
	}
	return c, nil
}

// Runs reports how many ledger records have been appended so far (0 when the
// ledger is off).
func (c *Campaign) Runs() uint64 {
	if c == nil {
		return 0
	}
	return c.ledger.Len()
}

// DroppedSpans reports spans discarded because the tracer arena filled.
func (c *Campaign) DroppedSpans() uint64 {
	if c == nil {
		return 0
	}
	return c.tracer.Dropped()
}

// Close ends the campaign: it uninstalls the tracer and ledger, closes the
// root span, writes the trace file, and flushes the ledger. Safe on a nil
// Campaign. The first error encountered is returned, but every teardown step
// always runs.
func (c *Campaign) Close() error {
	if c == nil {
		return nil
	}
	var first error
	keep := func(err error) {
		if first == nil && err != nil {
			first = err
		}
	}
	if c.tracer != nil {
		telemetry.SetActiveTracer(nil)
		c.tracer.SetAmbient(0)
		c.tracer.End(c.root, 0, 0, false)
		f, err := os.Create(c.cfg.TracePath)
		if err != nil {
			keep(fmt.Errorf("nacho: campaign trace: %w", err))
		} else {
			keep(c.tracer.WriteTrace(f))
			keep(f.Close())
		}
	}
	if c.ledger != nil {
		telemetry.SetActiveLedger(nil)
		keep(c.ledger.Flush())
		keep(c.ledgerFile.Close())
	}
	return first
}
