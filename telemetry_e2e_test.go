package nacho_test

import (
	"encoding/json"
	"io"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"nacho"
)

// promLineRe matches one sample line of the Prometheus text exposition.
var promLineRe = regexp.MustCompile(
	`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? (\+Inf|-Inf|NaN|-?[0-9.eE+-]+)$`)

// scrape fetches url and parses the body as text exposition, failing the test
// on any unparseable line.
func scrape(t *testing.T, url string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	samples := map[string]float64{}
	for _, line := range strings.Split(strings.TrimRight(string(body), "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		m := promLineRe.FindStringSubmatch(line)
		if m == nil {
			t.Errorf("unparseable exposition line: %q", line)
			continue
		}
		v, err := strconv.ParseFloat(m[4], 64)
		if err != nil {
			t.Errorf("unparseable value in %q: %v", line, err)
			continue
		}
		samples[m[1]+m[2]] = v
	}
	return samples
}

// TestServeTelemetryEndToEnd is the acceptance test for the live telemetry
// server: scrapable mid-sweep, every /metrics line valid text exposition,
// /status showing live worker-pool progress, and the nacho_sim_* series fed
// by a telemetry-attached run.
func TestServeTelemetryEndToEnd(t *testing.T) {
	ts, err := nacho.ServeTelemetry("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ts.Close()
	base := "http://" + ts.Addr()

	// A run feeding the sim-event series.
	if _, err := nacho.Run(nacho.Config{Benchmark: "crc", OnDurationMs: 1, Telemetry: ts}); err != nil {
		t.Fatal(err)
	}

	// An experiment sweep in the background; scrape concurrently until it
	// finishes, validating every line of every mid-sweep exposition.
	done := make(chan error, 1)
	go func() {
		_, err := nacho.RunExperiment("fig5", []string{"crc", "sha"})
		done <- err
	}()
	for running := true; running; {
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
			running = false
		case <-time.After(2 * time.Millisecond):
			scrape(t, base+"/metrics")
		}
	}

	samples := scrape(t, base+"/metrics")
	if samples["nacho_harness_runs_completed_total"] < 1 {
		t.Errorf("runs_completed = %g, want >= 1", samples["nacho_harness_runs_completed_total"])
	}
	if samples["nacho_harness_simulated_cycles_total"] <= 0 {
		t.Errorf("simulated_cycles = %g, want > 0", samples["nacho_harness_simulated_cycles_total"])
	}
	if samples["nacho_sim_instructions_total"] <= 0 {
		t.Errorf("sim instructions = %g, want > 0 (telemetry-attached run)", samples["nacho_sim_instructions_total"])
	}
	if samples["nacho_sim_power_failures_total"] <= 0 {
		t.Errorf("sim power failures = %g, want > 0 (1 ms on-duration run)", samples["nacho_sim_power_failures_total"])
	}

	// /status: the live pool document.
	resp, err := http.Get(base + "/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var status struct {
		Workers       int    `json:"workers"`
		RunsStarted   uint64 `json:"runs_started"`
		RunsCompleted uint64 `json:"runs_completed"`
		ActiveJobs    []any  `json:"active_jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		t.Fatalf("/status decode: %v", err)
	}
	if status.Workers < 1 || status.RunsCompleted < 1 {
		t.Errorf("/status = %+v, want workers and completed runs", status)
	}
	if status.ActiveJobs == nil {
		t.Error("/status active_jobs missing (want [] when idle)")
	}

	// /metrics.json: a decodable snapshot naming the same series.
	resp2, err := http.Get(base + "/metrics.json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var metricsJSON []struct {
		Name string `json:"name"`
	}
	if err := json.NewDecoder(resp2.Body).Decode(&metricsJSON); err != nil {
		t.Fatalf("/metrics.json decode: %v", err)
	}
	names := map[string]bool{}
	for _, s := range metricsJSON {
		names[s.Name] = true
	}
	if !names["nacho_harness_runs_completed_total"] || !names["nacho_sim_instructions_total"] {
		t.Errorf("/metrics.json missing expected series (have %d)", len(metricsJSON))
	}
}

// TestDashboardEndToEnd is the acceptance test for the live dashboard: after
// real harness work, /dashboard must serve a self-contained page whose
// bootstrap JSON island carries the live pool status, run counters, and the
// per-engine wall-time histogram — real first-paint data, no JS engine needed.
func TestDashboardEndToEnd(t *testing.T) {
	ts, err := nacho.ServeTelemetry("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ts.Close()

	if _, err := nacho.RunExperiment("fig6", []string{"crc"}); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get("http://" + ts.Addr() + "/dashboard")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /dashboard = %d, want 200", resp.StatusCode)
	}
	page := string(body)
	for _, want := range []string{"nacho campaign dashboard", "Workers", "Run wall time"} {
		if !strings.Contains(page, want) {
			t.Errorf("dashboard page missing %q", want)
		}
	}

	const openTag = `<script id="bootstrap" type="application/json">`
	i := strings.Index(page, openTag)
	if i < 0 {
		t.Fatal("dashboard has no bootstrap JSON island")
	}
	rest := page[i+len(openTag):]
	j := strings.Index(rest, "</script>")
	if j < 0 {
		t.Fatal("bootstrap island not terminated")
	}
	raw := strings.ReplaceAll(rest[:j], `<\/`, `</`)
	var boot struct {
		Metrics []struct {
			Name      string  `json:"name"`
			Value     float64 `json:"value"`
			Histogram *struct {
				Count   uint64 `json:"count"`
				Buckets []struct {
					Le    string `json:"le"`
					Count uint64 `json:"count"`
				} `json:"buckets"`
			} `json:"histogram"`
		} `json:"metrics"`
		Status struct {
			Workers       int    `json:"workers"`
			RunsCompleted uint64 `json:"runs_completed"`
		} `json:"status"`
	}
	if err := json.Unmarshal([]byte(raw), &boot); err != nil {
		t.Fatalf("bootstrap island is not valid JSON: %v", err)
	}
	if boot.Status.Workers < 1 || boot.Status.RunsCompleted < 1 {
		t.Errorf("bootstrap status = %+v, want live workers and completed runs", boot.Status)
	}
	var runsTotal float64
	var wallCount uint64
	names := map[string]bool{}
	for _, s := range boot.Metrics {
		names[s.Name] = true
		switch s.Name {
		case "nacho_harness_runs_completed_total":
			runsTotal = s.Value
		case "nacho_harness_run_wall_micros":
			if s.Histogram != nil {
				wallCount += s.Histogram.Count
				if len(s.Histogram.Buckets) == 0 {
					t.Error("run wall-time histogram has no buckets")
				}
			}
		}
	}
	if runsTotal < 1 {
		t.Errorf("bootstrap nacho_harness_runs_completed_total = %g, want >= 1", runsTotal)
	}
	if wallCount < 1 {
		t.Errorf("bootstrap run wall-time histogram count = %d, want >= 1", wallCount)
	}
	if !names["nacho_snapshot_windows_total"] {
		t.Error("bootstrap metrics missing the snapshot explorer series")
	}
}

// TestPerfettoExport is the acceptance test for Config.Perfetto: a Table 3
// benchmark under power failures must yield Perfetto-loadable trace-event
// JSON with named tracks, checkpoint-interval duration slices, and write-back
// instants.
func TestPerfettoExport(t *testing.T) {
	var buf strings.Builder
	res, err := nacho.Run(nacho.Config{Benchmark: "crc", OnDurationMs: 1, Perfetto: &buf})
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph   string         `json:"ph"`
			Name string         `json:"name"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(buf.String()), &doc); err != nil {
		t.Fatalf("perfetto output is not valid JSON: %v", err)
	}
	var slices, instants, meta int
	names := map[string]bool{}
	var maxEnd float64
	for _, e := range doc.TraceEvents {
		names[e.Name] = true
		switch e.Ph {
		case "X":
			slices++
			if end := e.Ts + e.Dur; end > maxEnd {
				maxEnd = end
			}
		case "i":
			instants++
		case "M":
			meta++
			// Track names live in the metadata event's args.
			if n, ok := e.Args["name"].(string); ok {
				names[n] = true
			}
		}
	}
	if slices == 0 || meta == 0 {
		t.Fatalf("trace has %d slices, %d metadata events; want both > 0", slices, meta)
	}
	for _, want := range []string{"checkpoint intervals", "power", "write-backs", "commit", "power-failure", "end-of-run"} {
		if !names[want] {
			t.Errorf("trace missing event/track name %q", want)
		}
	}
	// The timeline must span the whole run (ts in microseconds at 50 MHz).
	if wantEnd := float64(res.Cycles) / 50.0; maxEnd < wantEnd {
		t.Errorf("trace ends at %g us, run ended at %g us", maxEnd, wantEnd)
	}
	if res.PowerFailures > 0 && instants == 0 {
		t.Errorf("no write-back instants in an intermittent run")
	}
}
