package nacho

import (
	"fmt"
	"time"

	"nacho/internal/harness"
	"nacho/internal/jobs"
	"nacho/internal/store"
)

// RunStore is a persistent content-addressed store of run results. While one
// is open, every deterministic simulation in the process — experiment
// regeneration, Run, RunSource — is read through it and written behind it:
// results survive restarts, so a second regeneration of the same experiment
// executes zero simulations and renders a byte-identical report. Traced or
// probed runs bypass the store entirely (their instrumentation must observe a
// real execution).
//
// The directory is shared safely between processes (writes are atomic
// renames), which is how `nachobench -worker` fleets return results to their
// coordinator.
type RunStore struct {
	s    *store.Store
	prev *store.Store
}

// RunStoreStats is a snapshot of one store's accounting.
type RunStoreStats struct {
	// Hits and Misses count read-through lookups.
	Hits, Misses uint64
	// Puts counts entries written (write-behind).
	Puts uint64
	// CorruptEvicted counts checksum-failed entries deleted on read; the
	// affected runs re-executed transparently.
	CorruptEvicted uint64
	// WriteErrors counts failed write-behind attempts.
	WriteErrors uint64
}

// OpenRunStore opens (creating if needed) the store rooted at dir and
// installs it as the process's active run store. Close it when done; stores
// do not nest — open at most one at a time.
func OpenRunStore(dir string) (*RunStore, error) {
	s, err := store.Open(dir)
	if err != nil {
		return nil, fmt.Errorf("nacho: %w", err)
	}
	return &RunStore{s: s, prev: harness.SetStore(s)}, nil
}

// Dir returns the store's root directory.
func (rs *RunStore) Dir() string { return rs.s.Dir() }

// Stats snapshots the store's accounting.
func (rs *RunStore) Stats() RunStoreStats {
	st := rs.s.Stats()
	return RunStoreStats{Hits: st.Hits, Misses: st.Misses, Puts: st.Puts,
		CorruptEvicted: st.CorruptEvicted, WriteErrors: st.WriteErrors}
}

// Count walks the store and returns the number of persisted entries.
func (rs *RunStore) Count() (int, error) { return rs.s.Count() }

// Close flushes pending write-behind entries, uninstalls the store, and
// returns the first write error encountered over its lifetime, if any.
func (rs *RunStore) Close() error {
	harness.SetStore(rs.prev)
	if err := rs.s.Close(); err != nil {
		return fmt.Errorf("nacho: %w", err)
	}
	return nil
}

// JobService is the campaign job queue mounted on a TelemetryServer: POST
// /jobs accepts an experiment matrix or fuzz campaign, worker processes
// (`nachobench -worker <url>`) lease cells and push results through the
// shared RunStore, and the queue dedupes fleet-wide by content digest.
type JobService struct {
	js *jobs.Server
}

// ServeJobs mounts the campaign job API under /jobs on this telemetry server,
// backed by the process's active RunStore (open it first — submit- and
// lease-time dedupe need it, and without a shared store run results cannot
// travel back from workers).
func (t *TelemetryServer) ServeJobs() *JobService {
	js := jobs.NewServer(harness.ActiveStore(), 0)
	js.RegisterMetrics(t.reg)
	t.srv.Handle("/jobs", js)
	t.srv.Handle("/jobs/", js)
	return &JobService{js: js}
}

// SubmitExperiment enqueues one named experiment's full run matrix (see
// ExperimentNames; benchmarks narrows the set, nil means the paper default)
// and returns the job ID. Cells whose results are already in the store are
// deduplicated immediately.
func (s *JobService) SubmitExperiment(name string, benchmarks []string) (string, error) {
	id, err := s.js.Submit(jobs.JobRequest{Kind: "experiment", Experiment: name, Benchmarks: benchmarks})
	if err != nil {
		return "", fmt.Errorf("nacho: %w", err)
	}
	return id, nil
}

// Wait blocks until every cell of the job is done and reports how many cells
// workers executed and how many were served by the store without running.
func (s *JobService) Wait(id string) (executed, deduped int, err error) {
	for {
		st, ok := s.js.Status(id)
		if !ok {
			return 0, 0, fmt.Errorf("nacho: unknown job %q", id)
		}
		if st.State == "done" {
			return st.Done - st.Deduped, st.Deduped, nil
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// Shutdown flips the queue into drain mode: once nothing is pending or
// leased, workers polling for leases are told to exit.
func (s *JobService) Shutdown() { s.js.Shutdown() }

// AwaitShutdown blocks until a shutdown has been requested (via Shutdown or
// POST /jobs/shutdown) and every submitted job has drained — the serve-only
// coordinator's exit condition.
func (s *JobService) AwaitShutdown() {
	for !s.js.Drained() {
		time.Sleep(50 * time.Millisecond)
	}
}
