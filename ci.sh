#!/bin/sh
# ci.sh — the repository's full verification gate (see README §Install).
#
#   ./ci.sh
#
# Runs formatting, vet, build, the full test suite, and the race-detector
# pass over the experiment harness (the worker pool + singleflight run
# cache carry the only intentional concurrency in the repository).
set -eu
cd "$(dirname "$0")"

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi

go vet ./...
go build ./...
go test ./...
# The harness race pass includes the engine-equivalence suite
# (TestEngineEquivalence*) over the full five-variant matrix: the
# per-instruction reference interpreter, the batched fast path, and the AOT
# threaded-code engine, with the fast and AOT engines run both with and
# without the sim.FastPort cached-hit path (the /noport axis) — all must
# produce byte-identical results, including Fork/RunUntil mid-run state and
# the fuzzer-generated programs, under the race detector too. The
# snapshot/mem pass exercises the copy-on-write fork machinery (refcounted
# pages, concurrent fork workers) under the race detector; power rides along
# for its schedule property tests.
go test -race ./internal/harness/... ./internal/core/ ./internal/systems/
go test -race ./internal/snapshot/ ./internal/mem/ ./internal/power/

# Benchmark smoke: the probe hot paths must at least run. One iteration is
# enough to catch a broken benchmark; timing regressions are judged manually.
go test -bench=. -benchtime=1x ./internal/cache/ ./internal/track/ ./internal/telemetry/

# Emulator-throughput smoke: one timed pass of the ALU-kernel benchmark
# (default engine = AOT) and one of the memory-bound AOT benchmark,
# printing sim-MIPS so an engine regression is visible in the CI log
# (reference numbers live in BENCH_emu.json).
go test -run xxx -bench 'BenchmarkEmulatorThroughputALU$|BenchmarkEmulatorThroughputMemAOT' -benchtime 1x . | grep -E 'sim-MIPS|^Benchmark'

# Cached-system fast-path smoke: the memory-bound suite under NACHO with a
# 1 ms periodic power schedule, sim-MIPS in the CI log (reference numbers in
# BENCH_emu.json §cachedpath). The hit path itself must stay allocation-free:
# the ZeroAlloc gates pin AllocsPerRun == 0 for FastPort LoadHit/StoreHit and
# cache Probe/Touch (run without -race — the race allocator breaks the pin).
go test -run xxx -bench 'BenchmarkEmulatorThroughputNACHOIntermittent$' -benchtime 1x . | grep -E 'sim-MIPS|^Benchmark'
go test -run 'ZeroAlloc' ./internal/core/ ./internal/cache/

# Telemetry end-to-end: serve, sweep, scrape mid-flight, validate every
# exposition line, then check the Perfetto export loads as trace-event JSON.
go test -run 'TestServeTelemetryEndToEnd|TestPerfettoExport' .

# Campaign observability gate: the registry, span-emit and ledger-append hot
# paths must stay allocation-free (AllocsPerRun-pinned), and the campaign
# e2e — nested span tree covering every run, ledger records reproducing the
# report cells, reports byte-identical with observability on — plus the
# dashboard's live bootstrap data must hold under the race detector against
# the parallel harness and the snapshot-fork explorer.
go test -run 'TestHotPathZeroAlloc|TestSpanEmitAllocFree|TestLedgerAppendAllocFree' ./internal/telemetry/
go test -race -run 'TestCampaignEndToEnd|TestCampaignExhaustiveWindows|TestDashboardEndToEnd' .

# Campaign CLI smoke: a small sweep with -trace-campaign and -ledger must
# exit clean and leave a non-empty Perfetto trace and run ledger behind.
go build -o /tmp/nachobench.ci ./cmd/nachobench
/tmp/nachobench.ci -exp fig5 -bench crc -trace-campaign /tmp/nachobench.ci.trace -ledger /tmp/nachobench.ci.ledger >/dev/null 2>&1
test -s /tmp/nachobench.ci.trace
test -s /tmp/nachobench.ci.ledger
rm -f /tmp/nachobench.ci /tmp/nachobench.ci.trace /tmp/nachobench.ci.ledger

# Crash-consistency fuzzing smoke: a short coverage-guided run of the
# differential oracle (any reported input is a real consistency bug), then
# a fixed-seed campaign run twice — the report must be byte-identical, and
# a finding (non-zero exit) fails the gate.
go test -run Fuzz -fuzz FuzzDifferentialNACHO -fuzztime 10s ./internal/fuzzer/
go build -o /tmp/nachofuzz.ci ./cmd/nachofuzz
/tmp/nachofuzz.ci -seeds 64 2>/dev/null >/tmp/nachofuzz.ci.1
/tmp/nachofuzz.ci -seeds 64 2>/dev/null >/tmp/nachofuzz.ci.2
diff /tmp/nachofuzz.ci.1 /tmp/nachofuzz.ci.2

# Exhaustive-mode smoke: snapshot-fork enumeration of every 3rd crash
# instant in the first two checkpoint intervals. A fork/boot divergence is
# an infrastructure ERROR (exit 2) and a finding a real bug (exit 1) — both
# fail the gate. The stderr progress stream prints the measured speedup
# into the CI log.
/tmp/nachofuzz.ci -seeds 8 -exhaustive -stride 3 >/tmp/nachofuzz.ci.ex
rm -f /tmp/nachofuzz.ci /tmp/nachofuzz.ci.1 /tmp/nachofuzz.ci.2 /tmp/nachofuzz.ci.ex

# Persistent run store gate: the full fig5 matrix regenerated twice against
# one store — the warm pass must execute zero simulations, serve every cell
# from the store (hit counts land in the CI log via stderr), and print a
# byte-identical report.
go test -run 'TestStore|TestWarmStoreRegeneration|TestProbedRunsBypassStore|TestCorruptStoreEntryReexecutes' ./internal/store/ ./internal/harness/
go build -o /tmp/nachobench.ci ./cmd/nachobench
/tmp/nachobench.ci -exp fig5 -store /tmp/nacho.ci.store >/tmp/nachobench.ci.cold 2>/tmp/nachobench.ci.cold.err
/tmp/nachobench.ci -exp fig5 -store /tmp/nacho.ci.store >/tmp/nachobench.ci.warm 2>/tmp/nachobench.ci.warm.err
diff /tmp/nachobench.ci.cold /tmp/nachobench.ci.warm
grep 'timing: 0 runs' /tmp/nachobench.ci.warm.err
grep 'persistent-store hits' /tmp/nachobench.ci.warm.err
grep 'store /tmp/nacho.ci.store:' /tmp/nachobench.ci.warm.err
rm -rf /tmp/nachobench.ci /tmp/nacho.ci.store /tmp/nachobench.ci.cold /tmp/nachobench.ci.warm /tmp/nachobench.ci.cold.err /tmp/nachobench.ci.warm.err

# Distributed campaign gate, under the race detector: a coordinator sharding
# experiments across two separate worker processes over one shared store must
# print a report byte-identical to the sequential single-process run; the
# submitted fuzz campaign's merged report must match the local one.
go test -race -run 'TestNachobenchDistributedDeterminism|TestNachofuzzSubmit' ./cmd/

echo "ci.sh: all checks passed"
