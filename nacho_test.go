package nacho

import (
	"strings"
	"testing"
)

func TestRunDefaults(t *testing.T) {
	res, err := Run(Config{Benchmark: "towers"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles == 0 || res.Instructions == 0 {
		t.Errorf("empty result: %+v", res)
	}
	if res.ExitCode != 0 {
		t.Errorf("exit code %d", res.ExitCode)
	}
	if res.Duration() <= 0 {
		t.Error("duration not positive")
	}
}

func TestRunUnknownBenchmark(t *testing.T) {
	if _, err := Run(Config{Benchmark: "nope"}); err == nil || !strings.Contains(err.Error(), "unknown benchmark") {
		t.Errorf("error = %v", err)
	}
}

func TestRunAllSystemsOnOneBenchmark(t *testing.T) {
	for _, s := range Systems() {
		s := s
		t.Run(string(s), func(t *testing.T) {
			t.Parallel()
			if _, err := Run(Config{Benchmark: "crc", System: s}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestRunWithFailures(t *testing.T) {
	res, err := Run(Config{Benchmark: "crc", OnDurationMs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.PowerFailures == 0 {
		t.Error("no power failures with OnDurationMs set")
	}
	res2, err := Run(Config{Benchmark: "crc", OnDurationMs: 1, RandomFailures: true, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res2.PowerFailures == 0 {
		t.Error("no random power failures")
	}
}

func TestBenchmarksListed(t *testing.T) {
	names := Benchmarks()
	if len(names) != 9 {
		t.Fatalf("got %d benchmarks, want 9: %v", len(names), names)
	}
	for _, n := range names {
		if desc, ok := BenchmarkDescription(n); !ok || desc == "" {
			t.Errorf("benchmark %s has no description", n)
		}
	}
	if _, ok := BenchmarkDescription("bogus"); ok {
		t.Error("bogus benchmark has a description")
	}
}

func TestHitRateAndNVMBytes(t *testing.T) {
	res, err := Run(Config{Benchmark: "aes"})
	if err != nil {
		t.Fatal(err)
	}
	if hr := res.HitRate(); hr < 0.9 {
		t.Errorf("aes hit rate %f, expected >0.9 with a 512B cache", hr)
	}
	if res.NVMBytes() != res.NVMReadBytes+res.NVMWriteBytes {
		t.Error("NVMBytes inconsistent")
	}
}

func TestRunSource(t *testing.T) {
	src := `
_start:
	li   t0, 41
	addi t0, t0, 1
	li   t1, 0x000F0004
	sw   t0, (t1)
	li   t1, 0x000F0000
	sw   zero, (t1)
`
	res, err := RunSource("answer", src, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.ResultWord != 42 {
		t.Errorf("result = %d, want 42", res.ResultWord)
	}
}

func TestRunSourceAssemblyError(t *testing.T) {
	if _, err := RunSource("bad", "_start:\n bogus x, y\n", Config{}); err == nil {
		t.Error("assembly error not reported")
	}
}

func TestExperimentNamesResolve(t *testing.T) {
	for _, n := range ExperimentNames() {
		if n == "table1" {
			out, err := Experiment(n, nil)
			if err != nil || !strings.Contains(out, "feature matrix") {
				t.Errorf("table1: %v", err)
			}
		}
	}
	if _, err := Experiment("fig99", nil); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestExperimentSubset(t *testing.T) {
	out, err := Experiment("fig7", []string{"aes"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "aes") || strings.Contains(out, "coremark") {
		t.Errorf("subset not honored:\n%s", out)
	}
}
