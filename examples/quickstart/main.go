// Quickstart: run one benchmark under NACHO and print the paper's metrics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"nacho"
)

func main() {
	// Run TinyAES — the paper's headline benchmark — under NACHO with the
	// default 2-way 512 B cache and full verification (shadow memory, exact
	// WAR detection, golden checksum).
	res, err := nacho.Run(nacho.Config{Benchmark: "aes"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("aes under nacho: %d instructions in %d cycles (%v at 50 MHz)\n",
		res.Instructions, res.Cycles, res.Duration())
	fmt.Printf("cache hit rate   %.1f%%\n", 100*res.HitRate())
	fmt.Printf("checkpoints      %d\n", res.Checkpoints)
	fmt.Printf("NVM traffic      %d bytes\n", res.NVMBytes())

	// Compare with the cacheless Clank baseline: the same program, the same
	// verification, radically more NVM traffic.
	clank, err := nacho.Run(nacho.Config{Benchmark: "aes", System: nacho.Clank})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nclank reference: %d cycles, %d NVM bytes\n", clank.Cycles, clank.NVMBytes())
	fmt.Printf("NACHO reduces NVM traffic by %.1f%% (paper reports ~99%% for TinyAES)\n",
		100*(1-float64(res.NVMBytes())/float64(clank.NVMBytes())))
}
