# hello.s — prints through the PUTCHAR register and exits.
# Run:  go run ./cmd/nachosim -run examples/asm/hello.s
	.equ PUTC, 0x000F0008
	.equ EXIT, 0x000F0000
	.data
msg:	.asciz "hello, intermittent world\n"
	.text
_start:
	la   a1, msg
	li   t0, PUTC
loop:
	lbu  t1, (a1)
	beqz t1, done
	sw   t1, (t0)
	addi a1, a1, 1
	j    loop
done:
	li   t0, EXIT
	sw   zero, (t0)
