// Package asm_test verifies the shipped user-program examples execute
// correctly under NACHO, with and without power failures.
package asm_test

import (
	"os"
	"testing"

	"nacho"
)

func runFile(t *testing.T, path string, cfg nacho.Config) *nacho.Result {
	t.Helper()
	src, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	res, err := nacho.RunSource(path, string(src), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestFib(t *testing.T) {
	res := runFile(t, "fib.s", nacho.Config{})
	if res.ResultWord != 832040 { // fib(30)
		t.Errorf("fib(30) = %d", res.ResultWord)
	}
}

func TestHello(t *testing.T) {
	res := runFile(t, "hello.s", nacho.Config{})
	if string(res.Output) != "hello, intermittent world\n" {
		t.Errorf("output = %q", res.Output)
	}
}

func TestBubbleAcrossSystems(t *testing.T) {
	want := runFile(t, "bubble.s", nacho.Config{System: nacho.Volatile}).ResultWord
	for _, sys := range []nacho.System{nacho.Clank, nacho.NACHO} {
		res := runFile(t, "bubble.s", nacho.Config{System: sys})
		if res.ResultWord != want {
			t.Errorf("%s: result %d, want %d", sys, res.ResultWord, want)
		}
	}
	// Clank must checkpoint-storm on the swaps; NACHO must not.
	clank := runFile(t, "bubble.s", nacho.Config{System: nacho.Clank})
	nachoRes := runFile(t, "bubble.s", nacho.Config{})
	if clank.Checkpoints < 10*nachoRes.Checkpoints+10 {
		t.Errorf("expected Clank (%d ckpts) >> NACHO (%d ckpts)", clank.Checkpoints, nachoRes.Checkpoints)
	}
}

func TestBubbleUnderPowerFailures(t *testing.T) {
	// The on-duration must comfortably exceed a checkpoint's duration —
	// with shorter windows no forward progress is physically possible.
	want := runFile(t, "bubble.s", nacho.Config{System: nacho.Volatile}).ResultWord
	res := runFile(t, "bubble.s", nacho.Config{OnDurationMs: 0.05, RandomFailures: true})
	if res.ResultWord != want {
		t.Errorf("sorted checksum under failures = %d, want %d", res.ResultWord, want)
	}
	if res.PowerFailures == 0 {
		t.Error("no failures injected")
	}
}
