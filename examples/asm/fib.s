# fib.s — iterative Fibonacci, reporting fib(30) through the RESULT register.
# Run:  go run ./cmd/nachosim -run examples/asm/fib.s -system nacho
	.equ RESULT, 0x000F0004
	.equ EXIT,   0x000F0000
	.text
_start:
	li   a0, 0                  # fib(0)
	li   a1, 1                  # fib(1)
	li   t0, 30
loop:
	add  t1, a0, a1
	mv   a0, a1
	mv   a1, t1
	addi t0, t0, -1
	bnez t0, loop
	li   t0, RESULT
	sw   a0, (t0)
	li   t0, EXIT
	sw   zero, (t0)
