# bubble.s — in-place bubble sort of image-initialized data: every swap is a
# read-then-write, so under `-system clank` this checkpoint-storms while
# NACHO's cache absorbs it. Compare:
#   go run ./cmd/nachosim -run examples/asm/bubble.s -system clank
#   go run ./cmd/nachosim -run examples/asm/bubble.s -system nacho
	.equ RESULT, 0x000F0004
	.equ EXIT,   0x000F0000
	.equ N, 32
	.data
arr:	.word 89, 12, 71, 3, 55, 20, 98, 41, 7, 64, 33, 80, 16, 92, 48, 25
	.word 69, 10, 83, 37, 58, 1, 95, 44, 29, 76, 14, 87, 52, 23, 66, 39
	.text
_start:
	la   s0, arr
	li   s1, N-1                # passes
outer:
	li   t0, 0                  # i
inner:
	slli t1, t0, 2
	add  t1, s0, t1
	lw   t2, 0(t1)
	lw   t3, 4(t1)
	ble  t2, t3, noswap
	sw   t3, 0(t1)
	sw   t2, 4(t1)
noswap:
	addi t0, t0, 1
	li   t1, N-1
	bne  t0, t1, inner
	addi s1, s1, -1
	bnez s1, outer
	# checksum: sum of arr[i]*(i+1) proves sortedness deterministically
	li   a0, 0
	li   t0, 0
chk:
	slli t1, t0, 2
	add  t1, s0, t1
	lw   t1, (t1)
	addi t2, t0, 1
	mul  t1, t1, t2
	add  a0, a0, t1
	addi t0, t0, 1
	li   t1, N
	bne  t0, t1, chk
	li   t0, RESULT
	sw   a0, (t0)
	li   t0, EXIT
	sw   zero, (t0)
