// Designspace: sweep NACHO's cache size and associativity on one benchmark
// — a miniature of the paper's Figure 8 exploration.
//
//	go run ./examples/designspace [benchmark]
package main

import (
	"fmt"
	"log"
	"os"

	"nacho"
)

func main() {
	bench := "sha"
	if len(os.Args) > 1 {
		bench = os.Args[1]
	}

	base, err := nacho.Run(nacho.Config{Benchmark: bench, System: nacho.Volatile})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s: NACHO execution time normalized to a fully volatile system\n\n", bench)
	fmt.Printf("%-8s %6s %10s %10s %12s\n", "cache", "ways", "norm.time", "hit rate", "checkpoints")
	for _, ways := range []int{2, 4} {
		for _, size := range []int{256, 512, 1024} {
			res, err := nacho.Run(nacho.Config{Benchmark: bench, CacheSize: size, Ways: ways})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-8s %6d %10.3f %9.1f%% %12d\n",
				fmt.Sprintf("%dB", size), ways,
				float64(res.Cycles)/float64(base.Cycles),
				100*res.HitRate(), res.Checkpoints)
		}
	}
	fmt.Println("\nThe paper's conclusion (Section 6.2.6): 256B->512B is the big jump,")
	fmt.Println("512B->1024B diminishes, and 4 ways rarely beat 2.")
}
