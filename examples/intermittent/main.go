// Intermittent: execute a benchmark under periodic power failures and show
// that every system still computes the correct result, at different costs —
// the scenario of paper Section 6.2.4.
//
//	go run ./examples/intermittent
package main

import (
	"fmt"
	"log"

	"nacho"
)

func main() {
	const onDurationMs = 1 // a power failure every millisecond of compute

	fmt.Printf("crc with a power failure every %d ms (forced checkpoint at half that):\n\n", onDurationMs)
	fmt.Printf("%-13s %10s %9s %12s %8s\n", "system", "cycles", "failures", "checkpoints", "result")
	for _, sys := range []nacho.System{nacho.Clank, nacho.PROWL, nacho.ReplayCache, nacho.NACHO} {
		res, err := nacho.Run(nacho.Config{
			Benchmark:    "crc",
			System:       sys,
			OnDurationMs: onDurationMs,
		})
		if err != nil {
			log.Fatal(err) // verification failed: the system corrupted memory
		}
		fmt.Printf("%-13s %10d %9d %12d 0x%08x\n",
			sys, res.Cycles, res.PowerFailures, res.Checkpoints, res.ResultWord)
	}
	fmt.Println("\nEvery run above was checked against shadow memory and the Go")
	fmt.Println("reference checksum — the systems survive power loss mid-checkpoint.")
}
