// Warlab: run a hand-written RV32IM program through the public assembler and
// watch the WAR mechanics of paper Figure 4 in the counters. The program
// performs a read-then-write (a WAR) on one word, then forces the dirty
// line out of the tiny cache — NACHO must checkpoint; a plain write-first
// pattern must evict safely without one.
//
//	go run ./examples/warlab
package main

import (
	"fmt"
	"log"

	"nacho"
)

// warProgram reads x, writes x (read-dominated WAR), then touches two
// conflicting words so the dirty line is evicted from a 2-line cache.
const warProgram = `
	.data
x:	.word 7
	.text
_start:
	la   a1, x
	lw   a2, (a1)      # R(x): line becomes read-dominated
	addi a2, a2, 1
	sw   a2, (a1)      # W(x): read-dominated WAR, absorbed by the cache
	lw   t1, 8(a1)     # conflicting set traffic...
	lw   t1, 16(a1)    # ...evicts the dirty read-dominated line: checkpoint!
	li   t0, 0x000F0004
	sw   a2, (t0)
	li   t0, 0x000F0000
	sw   zero, (t0)
`

// safeProgram writes first (write-dominated): eviction needs no checkpoint.
const safeProgram = `
	.data
y:	.word 0
	.text
_start:
	la   a1, y
	li   a2, 9
	sw   a2, (a1)      # W(y): write-dominated
	lw   t1, 8(a1)
	lw   t1, 16(a1)    # evicts the dirty line: safe write-back
	li   t0, 0x000F0004
	sw   a2, (t0)
	li   t0, 0x000F0000
	sw   zero, (t0)
`

func main() {
	cfg := nacho.Config{CacheSize: 8, Ways: 1} // two 4-byte lines
	show := func(name, src string) {
		res, err := nacho.RunSource(name, src, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s result=%d  checkpoints=%d  safe-evictions=%d  unsafe-evictions=%d\n",
			name, res.ResultWord, res.Checkpoints, res.SafeEvictions, res.UnsafeEvictions)
	}
	fmt.Println("two 3-instruction programs on a 2-line NACHO cache:")
	show("war", warProgram)
	show("write-first", safeProgram)
	fmt.Println("\nThe read-dominated write-back forced a checkpoint (unsafe eviction);")
	fmt.Println("the write-dominated one went straight to NVM — paper Section 3.2.")
}
