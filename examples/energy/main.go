// Energy: apply the Section 8 rough energy model through the public API,
// comparing systems and the energy-prediction extension.
//
//	go run ./examples/energy [benchmark]
package main

import (
	"fmt"
	"log"
	"os"

	"nacho"
)

func main() {
	bench := "quicksort"
	if len(os.Args) > 1 {
		bench = os.Args[1]
	}
	model := nacho.DefaultEnergyModel()
	fmt.Printf("%s, estimated energy per run (model: %.0f pJ/instr, %.0f pJ/cache, %.0f/%.0f pJ per NVM byte R/W)\n\n",
		bench, model.InstructionPJ, model.CacheAccessPJ, model.NVMReadPJByte, model.NVMWritePJByte)
	fmt.Printf("%-22s %10s %10s %10s %10s %10s\n", "system", "core(uJ)", "cache(uJ)", "nvm-rd(uJ)", "nvm-wr(uJ)", "total(uJ)")

	show := func(label string, cfg nacho.Config) {
		cfg.Benchmark = bench
		res, err := nacho.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		b := nacho.EstimateEnergy(res, model)
		fmt.Printf("%-22s %10.2f %10.2f %10.2f %10.2f %10.2f\n",
			label, b.CorePJ/1e6, b.CachePJ/1e6, b.NVMReadPJ/1e6, b.NVMWritePJ/1e6, b.TotalUJ())
	}
	show("volatile", nacho.Config{System: nacho.Volatile})
	show("clank", nacho.Config{System: nacho.Clank})
	show("nacho", nacho.Config{})
	show("nacho+energy-predict", nacho.Config{EnergyPrediction: true})
	fmt.Println("\nNACHO approaches the volatile system's energy; energy prediction")
	fmt.Println("(single-buffered checkpoints) trims the checkpoint NVM writes further.")
}
