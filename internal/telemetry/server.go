package telemetry

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// StatusFunc produces the live /status document; it must be concurrency-safe.
// The returned value is marshalled as JSON on every request.
type StatusFunc func() any

// Server exposes a Registry (and an optional status snapshot) over HTTP:
//
//	/metrics        Prometheus text exposition
//	/metrics.json   JSON snapshot of the same registry
//	/status         live status JSON (per-worker and per-experiment progress)
//	/dashboard      live HTML dashboard over /metrics.json + /status
//	/debug/pprof/   the standard Go profiler endpoints
//
// It binds its own listener (so ":0" works and Addr reports the real port)
// and serves on a private mux — it never touches http.DefaultServeMux.
type Server struct {
	ln     net.Listener
	srv    *http.Server
	mux    *http.ServeMux
	done   chan struct{}
	reg    *Registry
	status StatusFunc
}

// NewServer listens on addr and starts serving immediately. status may be nil
// (the /status endpoint then serves an empty object).
func NewServer(addr string, reg *Registry, status StatusFunc) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	s := &Server{ln: ln, reg: reg, status: status, done: make(chan struct{})}

	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/metrics.json", s.handleMetricsJSON)
	mux.HandleFunc("/status", s.handleStatus)
	mux.HandleFunc("/dashboard", s.handleDashboard)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", s.handleIndex)

	s.mux = mux
	s.srv = &http.Server{Handler: mux}
	go func() {
		defer close(s.done)
		s.srv.Serve(ln) // returns http.ErrServerClosed on shutdown
	}()
	return s, nil
}

// Addr returns the bound listen address (resolving a requested ":0" port).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Handle mounts an additional handler on the server's mux — how subsystems
// that must not be imported from here (the campaign job service in
// internal/jobs) attach their endpoints. ServeMux registration is internally
// locked, so mounting while the server is live is safe.
func (s *Server) Handle(pattern string, h http.Handler) { s.mux.Handle(pattern, h) }

// Close gracefully shuts the server down: in-flight scrapes complete (within
// a short drain window), then the listener closes.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	err := s.srv.Shutdown(ctx)
	<-s.done
	return err
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", PrometheusContentType)
	s.reg.WritePrometheus(w)
}

func (s *Server) handleMetricsJSON(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	s.reg.WriteJSON(w)
}

func (s *Server) handleStatus(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	var doc any = struct{}{}
	if s.status != nil {
		doc = s.status()
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(doc)
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, `<html><head><title>nacho telemetry</title></head><body>
<h1>nacho telemetry</h1><ul>
<li><a href="/metrics">/metrics</a> — Prometheus text exposition</li>
<li><a href="/metrics.json">/metrics.json</a> — JSON metrics snapshot</li>
<li><a href="/status">/status</a> — live harness status</li>
<li><a href="/dashboard">/dashboard</a> — live campaign dashboard</li>
<li><a href="/debug/pprof/">/debug/pprof/</a> — Go profiler</li>
</ul></body></html>
`)
}
