package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

func get(t *testing.T, url string) (int, string, http.Header) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read body: %v", url, err)
	}
	return resp.StatusCode, string(body), resp.Header
}

func TestServerEndpoints(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("up_total", "Liveness.").Add(9)
	status := func() any {
		return map[string]any{"workers": 4, "experiment": "fig8"}
	}
	s, err := NewServer("127.0.0.1:0", r, status)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	base := "http://" + s.Addr()

	code, body, hdr := get(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	if ct := hdr.Get("Content-Type"); ct != PrometheusContentType {
		t.Errorf("/metrics Content-Type = %q, want %q", ct, PrometheusContentType)
	}
	if samples := checkPrometheusText(t, body); samples["up_total"] != 9 {
		t.Errorf("/metrics up_total = %g, want 9\n%s", samples["up_total"], body)
	}

	code, body, _ = get(t, base+"/metrics.json")
	var samples []Sample
	if code != http.StatusOK || json.Unmarshal([]byte(body), &samples) != nil || len(samples) != 1 {
		t.Errorf("/metrics.json bad response (%d): %s", code, body)
	}

	code, body, hdr = get(t, base+"/status")
	if code != http.StatusOK || hdr.Get("Content-Type") != "application/json" {
		t.Fatalf("/status status=%d Content-Type=%q", code, hdr.Get("Content-Type"))
	}
	var doc map[string]any
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/status not JSON: %v\n%s", err, body)
	}
	if doc["experiment"] != "fig8" || doc["workers"] != float64(4) {
		t.Errorf("/status = %v", doc)
	}

	code, body, _ = get(t, base+"/")
	if code != http.StatusOK || !strings.Contains(body, "/metrics") {
		t.Errorf("index bad response (%d): %s", code, body)
	}
	if code, _, _ = get(t, base+"/nonexistent"); code != http.StatusNotFound {
		t.Errorf("/nonexistent status = %d, want 404", code)
	}
	if code, body, _ = get(t, base+"/debug/pprof/cmdline"); code != http.StatusOK || body == "" {
		t.Errorf("/debug/pprof/cmdline status = %d", code)
	}
}

func TestServerNilStatus(t *testing.T) {
	s, err := NewServer("127.0.0.1:0", NewRegistry(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	_, body, _ := get(t, "http://"+s.Addr()+"/status")
	if strings.TrimSpace(body) != "{}" {
		t.Errorf("/status with nil StatusFunc = %q, want {}", body)
	}
}

func TestServerClose(t *testing.T) {
	s, err := NewServer("127.0.0.1:0", NewRegistry(), nil)
	if err != nil {
		t.Fatal(err)
	}
	addr := s.Addr()
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := http.Get("http://" + addr + "/metrics"); err == nil {
		t.Error("server still serving after Close")
	}
}
