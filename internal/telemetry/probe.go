package telemetry

import "nacho/internal/sim"

// Probe adapts the sim event stream to a metrics Registry: every event family
// becomes a counter (or histogram) that a scraper can watch live. All metric
// objects are resolved once at construction, so each hook is a fixed number
// of atomic adds with no lookup, no lock and no allocation — cheap enough to
// attach to a full-length simulation, and safe to share across the parallel
// harness's workers (one Probe can observe many concurrent runs; the counters
// then aggregate across them).
type Probe struct {
	loads   *Counter
	stores  *Counter
	classes [4]*Counter // indexed by sim.AccessClass

	fills *Counter

	writeBacks [sim.NumVerdicts]*Counter // indexed by sim.Verdict

	ckptBegins    *Counter
	ckptCommits   [3]*Counter // indexed by sim.CheckpointKind
	ckptForced    *Counter
	ckptAdaptive  *Counter
	ckptLines     *Histogram
	ckptIntervals *Histogram

	powerFailures *Counter
	restores      *Counter
	restoresCold  *Counter
	restoreCycles *Counter

	instructions *Counter

	nvmReads      *Counter
	nvmWrites     *Counter
	nvmReadBytes  *Counter
	nvmWriteBytes *Counter
}

// CheckpointLineBuckets are the dirty-line-payload histogram bounds (lines
// per checkpoint; capacitor-sizing resolution).
var CheckpointLineBuckets = []uint64{1, 2, 4, 8, 16, 32, 64, 128}

// CheckpointIntervalBuckets mirror metrics.Counters.IntervalHist: cycles
// between consecutive commits, bucketed <1k / <10k / <100k / >=100k.
var CheckpointIntervalBuckets = []uint64{1_000, 10_000, 100_000}

// NewProbe registers the sim event metrics in r and returns the adapter.
// Registering twice in one registry panics (duplicate series); share the one
// Probe instead.
func NewProbe(r *Registry) *Probe {
	p := &Probe{
		loads:  r.NewCounter("nacho_sim_loads_total", "Data loads retired."),
		stores: r.NewCounter("nacho_sim_stores_total", "Data stores retired."),

		fills: r.NewCounter("nacho_sim_line_fills_total", "Cache line installations after misses."),

		ckptBegins: r.NewCounter("nacho_sim_checkpoint_begins_total",
			"Checkpoint stagings started (commits plus failure-aborted attempts)."),
		ckptForced: r.NewCounter("nacho_sim_checkpoints_forced_total",
			"Periodic forward-progress checkpoints."),
		ckptAdaptive: r.NewCounter("nacho_sim_checkpoints_adaptive_total",
			"Dirty-threshold policy checkpoints."),
		ckptLines: r.NewHistogram("nacho_sim_checkpoint_lines",
			"Dirty cache lines persisted per committed checkpoint.", CheckpointLineBuckets),
		ckptIntervals: r.NewHistogram("nacho_sim_checkpoint_interval_cycles",
			"Cycles between consecutive checkpoint commits.", CheckpointIntervalBuckets),

		powerFailures: r.NewCounter("nacho_sim_power_failures_total", "Injected power failures."),
		restores: r.NewCounter("nacho_sim_restores_total",
			"Post-reboot restores from a committed checkpoint."),
		restoresCold: r.NewCounter("nacho_sim_restores_cold_total",
			"Post-reboot restarts from program entry (no checkpoint ever committed)."),
		restoreCycles: r.NewCounter("nacho_sim_restore_cycles_total",
			"Cycles spent in post-reboot restore sequences."),

		instructions: r.NewCounter("nacho_sim_instructions_total",
			"Instructions retired, including re-executed ones."),

		nvmReads:      r.NewCounter("nacho_sim_nvm_reads_total", "Charged NVM read accesses."),
		nvmWrites:     r.NewCounter("nacho_sim_nvm_writes_total", "Charged NVM write accesses."),
		nvmReadBytes:  r.NewCounter("nacho_sim_nvm_read_bytes_total", "Bytes read from NVM."),
		nvmWriteBytes: r.NewCounter("nacho_sim_nvm_write_bytes_total", "Bytes written to NVM."),
	}
	for c := sim.AccessHit; c <= sim.AccessMMIO; c++ {
		p.classes[c] = r.NewCounter("nacho_sim_accesses_total",
			"CPU data accesses by serving class.", Label{"class", c.String()})
	}
	for v := sim.VerdictSafe; int(v) < sim.NumVerdicts; v++ {
		p.writeBacks[v] = r.NewCounter("nacho_sim_writebacks_total",
			"Dirty lines (or written-through stores) leaving the volatile domain, by safety verdict.",
			Label{"verdict", v.String()})
	}
	for k := sim.CheckpointCommit; k <= sim.CheckpointJIT; k++ {
		p.ckptCommits[k] = r.NewCounter("nacho_sim_checkpoints_total",
			"Committed persistence points by kind.", Label{"kind", k.String()})
	}
	return p
}

// OnAccess implements sim.Probe.
func (p *Probe) OnAccess(e sim.AccessEvent) {
	if e.Store {
		p.stores.Inc()
	} else {
		p.loads.Inc()
	}
	if int(e.Class) < len(p.classes) {
		p.classes[e.Class].Inc()
	}
}

// OnLineFill implements sim.Probe.
func (p *Probe) OnLineFill(sim.FillEvent) { p.fills.Inc() }

// OnWriteBack implements sim.Probe.
func (p *Probe) OnWriteBack(e sim.WriteBackEvent) {
	if int(e.Verdict) < len(p.writeBacks) {
		p.writeBacks[e.Verdict].Inc()
	}
}

// OnCheckpointBegin implements sim.Probe.
func (p *Probe) OnCheckpointBegin(sim.CheckpointEvent) { p.ckptBegins.Inc() }

// OnCheckpointCommit implements sim.Probe.
func (p *Probe) OnCheckpointCommit(e sim.CheckpointEvent) {
	if int(e.Kind) < len(p.ckptCommits) {
		p.ckptCommits[e.Kind].Inc()
	}
	if e.Kind != sim.CheckpointCommit {
		return
	}
	p.ckptLines.Observe(uint64(e.Lines))
	if e.Forced {
		p.ckptForced.Inc()
	}
	if e.Adaptive {
		p.ckptAdaptive.Inc()
	}
	if e.IntervalValid {
		p.ckptIntervals.Observe(e.Interval)
	}
}

// OnPowerFailure implements sim.Probe.
func (p *Probe) OnPowerFailure(sim.PowerEvent) { p.powerFailures.Inc() }

// OnRestore implements sim.Probe.
func (p *Probe) OnRestore(e sim.RestoreEvent) {
	if e.OK {
		p.restores.Inc()
	} else {
		p.restoresCold.Inc()
	}
	p.restoreCycles.Add(e.Cycles)
}

// OnRetire implements sim.Probe.
func (p *Probe) OnRetire(sim.RetireEvent) { p.instructions.Inc() }

// OnNVM implements sim.Probe.
func (p *Probe) OnNVM(e sim.NVMEvent) {
	if e.Write {
		p.nvmWrites.Inc()
		p.nvmWriteBytes.Add(uint64(e.Bytes))
	} else {
		p.nvmReads.Inc()
		p.nvmReadBytes.Add(uint64(e.Bytes))
	}
}
