package telemetry

import (
	"encoding/json"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("c_total", "a counter")
	c.Inc()
	c.Add(41)
	if c.Value() != 42 {
		t.Errorf("counter = %d, want 42", c.Value())
	}

	g := r.NewGauge("g", "a gauge")
	g.Set(2.5)
	g.Add(-1)
	if g.Value() != 1.5 {
		t.Errorf("gauge = %g, want 1.5", g.Value())
	}

	h := r.NewHistogram("h", "a histogram", []uint64{10, 100})
	for _, v := range []uint64{1, 10, 11, 100, 101, 1000} {
		h.Observe(v)
	}
	if h.Count() != 6 || h.Sum() != 1223 {
		t.Errorf("histogram count=%d sum=%d, want 6/1223", h.Count(), h.Sum())
	}
	// Buckets are inclusive: le=10 holds {1,10}, le=100 adds {11,100},
	// +Inf adds {101,1000}.
	if got := h.counts[0].Load(); got != 2 {
		t.Errorf("bucket le=10 = %d, want 2", got)
	}
	if got := h.counts[1].Load(); got != 2 {
		t.Errorf("bucket le=100 = %d, want 2", got)
	}
	if got := h.counts[2].Load(); got != 2 {
		t.Errorf("bucket +Inf = %d, want 2", got)
	}
}

func TestRegistryFuncMetrics(t *testing.T) {
	r := NewRegistry()
	n := uint64(7)
	r.NewCounterFunc("fn_total", "func counter", func() uint64 { return n })
	r.NewGaugeFunc("fn_gauge", "func gauge", func() float64 { return 0.25 })
	var out strings.Builder
	if err := r.WritePrometheus(&out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"fn_total 7\n", "fn_gauge 0.25\n"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("exposition missing %q:\n%s", want, out.String())
		}
	}
}

func TestRegistryPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	r := NewRegistry()
	r.NewCounter("ok_total", "fine", Label{"l", "a"})
	mustPanic("bad metric name", func() { r.NewCounter("0bad", "x") })
	mustPanic("bad label name", func() { r.NewCounter("ok2_total", "x", Label{"0l", "v"}) })
	mustPanic("duplicate series", func() { r.NewCounter("ok_total", "fine", Label{"l", "a"}) })
	mustPanic("kind conflict", func() { r.NewGauge("ok_total", "fine") })
	mustPanic("help conflict", func() { r.NewCounter("ok_total", "different") })
	mustPanic("unsorted bounds", func() { r.NewHistogram("h", "x", []uint64{10, 5}) })

	// Same family, different labels: allowed.
	r.NewCounter("ok_total", "fine", Label{"l", "b"})
}

// promSampleRe matches one sample line of the text exposition format.
var promSampleRe = regexp.MustCompile(
	`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? (\+Inf|-Inf|NaN|-?[0-9.eE+-]+)$`)

// checkPrometheusText asserts every line of a text exposition parses, and
// returns the parsed samples as name{labels} -> value.
func checkPrometheusText(t *testing.T, text string) map[string]float64 {
	t.Helper()
	samples := map[string]float64{}
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		m := promSampleRe.FindStringSubmatch(line)
		if m == nil {
			t.Errorf("unparseable exposition line: %q", line)
			continue
		}
		v, err := strconv.ParseFloat(m[4], 64)
		if err != nil {
			t.Errorf("unparseable value in %q: %v", line, err)
			continue
		}
		samples[m[1]+m[2]] = v
	}
	return samples
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("runs_total", "Total runs.", Label{"kind", "nacho"})
	c.Add(3)
	g := r.NewGauge("busy", "Busy workers.")
	g.Set(2)
	h := r.NewHistogram("lines", "Checkpoint lines.", []uint64{1, 8})
	h.Observe(1)
	h.Observe(5)
	h.Observe(100)

	var out strings.Builder
	if err := r.WritePrometheus(&out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	samples := checkPrometheusText(t, text)

	want := map[string]float64{
		`runs_total{kind="nacho"}`: 3,
		`busy`:                     2,
		`lines_bucket{le="1"}`:     1,
		`lines_bucket{le="8"}`:     2,
		`lines_bucket{le="+Inf"}`:  3,
		`lines_sum`:                106,
		`lines_count`:              3,
	}
	for k, v := range want {
		if samples[k] != v {
			t.Errorf("sample %s = %g, want %g\n%s", k, samples[k], v, text)
		}
	}
	for _, hdr := range []string{
		"# TYPE runs_total counter", "# TYPE busy gauge", "# TYPE lines histogram",
		"# HELP runs_total Total runs.",
	} {
		if !strings.Contains(text, hdr+"\n") {
			t.Errorf("exposition missing %q:\n%s", hdr, text)
		}
	}
	// One HELP/TYPE block per family even with many series.
	if n := strings.Count(text, "# TYPE runs_total"); n != 1 {
		t.Errorf("TYPE emitted %d times, want 1", n)
	}
}

func TestWriteJSON(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("a_total", "A.", Label{"x", "y"}).Add(5)
	h := r.NewHistogram("h", "H.", []uint64{10})
	h.Observe(3)
	h.Observe(30)

	var out strings.Builder
	if err := r.WriteJSON(&out); err != nil {
		t.Fatal(err)
	}
	var samples []Sample
	if err := json.Unmarshal([]byte(out.String()), &samples); err != nil {
		t.Fatalf("WriteJSON output is not valid JSON: %v\n%s", err, out.String())
	}
	if len(samples) != 2 {
		t.Fatalf("got %d samples, want 2", len(samples))
	}
	if samples[0].Name != "a_total" || samples[0].Value != 5 || samples[0].Labels["x"] != "y" {
		t.Errorf("counter sample wrong: %+v", samples[0])
	}
	hs := samples[1]
	if hs.Histogram == nil || hs.Histogram.Count != 2 || hs.Histogram.Sum != 33 {
		t.Fatalf("histogram sample wrong: %+v", hs)
	}
	wantBuckets := []Bucket{{Le: "10", Count: 1}, {Le: "+Inf", Count: 2}}
	if len(hs.Histogram.Buckets) != 2 || hs.Histogram.Buckets[0] != wantBuckets[0] || hs.Histogram.Buckets[1] != wantBuckets[1] {
		t.Errorf("buckets = %+v, want %+v", hs.Histogram.Buckets, wantBuckets)
	}
}

func TestConcurrentHotPath(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("c_total", "x")
	h := r.NewHistogram("h", "x", []uint64{100})
	g := r.NewGauge("g", "x")
	done := make(chan struct{})
	for i := 0; i < 4; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for j := 0; j < 10_000; j++ {
				c.Inc()
				h.Observe(uint64(j % 200))
				g.Add(1)
			}
		}()
	}
	for i := 0; i < 4; i++ {
		<-done
	}
	if c.Value() != 40_000 || h.Count() != 40_000 || g.Value() != 40_000 {
		t.Errorf("lost updates: counter=%d hist=%d gauge=%g, want 40000 each",
			c.Value(), h.Count(), g.Value())
	}
}
