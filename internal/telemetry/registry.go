// Package telemetry is the export layer over the simulation's observability
// seams: a concurrency-safe metrics registry with Prometheus-text and JSON
// exposition, a sim.Probe adapter that feeds the registry from the event
// stream, a Chrome-trace-event/Perfetto renderer for visual timelines, and an
// HTTP server exposing all of it live (/metrics, /status, /debug/pprof).
//
// The registry hot path — Counter.Add, Gauge.Set, Histogram.Observe — is a
// handful of atomic operations and performs no allocation (pinned by the
// benchmarks in bench_test.go), so a telemetry probe can observe a simulation
// without perturbing it and one registry can be shared by every worker of a
// parallel sweep.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is usable, but
// counters are normally created registered via Registry.NewCounter.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a metric that can go up and down, stored as a float64.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add increments the gauge by d (d may be negative).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts integer observations into fixed buckets. Bounds are
// inclusive upper limits (Prometheus `le` semantics); an implicit +Inf bucket
// catches everything beyond the last bound. Observations, sum, count and max
// are all atomic; Observe is a linear scan over the (small, fixed) bound
// slice plus a handful of atomic operations — no allocation, no lock.
type Histogram struct {
	bounds []uint64        // sorted inclusive upper bounds
	counts []atomic.Uint64 // len(bounds)+1; last is the +Inf bucket
	sum    atomic.Uint64
	count  atomic.Uint64
	max    atomic.Uint64
}

// NewHistogram returns a standalone histogram with the given inclusive upper
// bounds (must be sorted ascending; the +Inf bucket is implicit). Standalone
// histograms let always-on accounting (e.g. the harness's per-engine run
// wall-time tracking) observe unconditionally and attach to a registry only
// when one exists — see Registry.RegisterHistogram.
func NewHistogram(bounds []uint64) *Histogram {
	if !sort.SliceIsSorted(bounds, func(i, j int) bool { return bounds[i] < bounds[j] }) {
		panic(fmt.Sprintf("telemetry: histogram bounds not sorted: %v", bounds))
	}
	return &Histogram{bounds: append([]uint64(nil), bounds...), counts: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
	for {
		old := h.max.Load()
		if v <= old || h.max.CompareAndSwap(old, v) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() uint64 { return h.sum.Load() }

// Max returns the largest observed value (0 before any observation).
func (h *Histogram) Max() uint64 { return h.max.Load() }

// Quantile estimates the q-th quantile (q in [0,1]) by linear interpolation
// within the bucket that contains it, the standard Prometheus estimation. The
// +Inf bucket is clamped to the exact tracked maximum, so Quantile(1) — and
// any quantile landing beyond the last finite bound — is exact rather than
// unbounded. Returns 0 when nothing has been observed.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.Count()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	cum := uint64(0)
	for i, bound := range h.bounds {
		c := h.counts[i].Load()
		if float64(cum)+float64(c) >= rank && c > 0 {
			lo := float64(0)
			if i > 0 {
				lo = float64(h.bounds[i-1])
			}
			hi := float64(bound)
			frac := (rank - float64(cum)) / float64(c)
			return lo + (hi-lo)*frac
		}
		cum += c
	}
	// The quantile lands in the +Inf bucket: the tracked max is the best
	// (and, for Quantile(1), exact) answer.
	return float64(h.Max())
}

// Label is one constant name="value" pair attached to a metric series.
type Label struct{ Name, Value string }

// kind is the exposition type of a metric family.
type kind uint8

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

// series is one labelled sample stream within a family. Exactly one of the
// value sources is set.
type series struct {
	labels    []Label
	labelsStr string // pre-rendered {k="v",...}, "" when unlabelled

	counter   *Counter
	gauge     *Gauge
	hist      *Histogram
	counterFn func() uint64
	gaugeFn   func() float64
}

// value returns the series' scalar value at scrape time (histograms are
// rendered separately).
func (s *series) value() float64 {
	switch {
	case s.counter != nil:
		return float64(s.counter.Value())
	case s.gauge != nil:
		return s.gauge.Value()
	case s.counterFn != nil:
		return float64(s.counterFn())
	case s.gaugeFn != nil:
		return s.gaugeFn()
	}
	return 0
}

// family groups every series sharing one metric name (one HELP/TYPE block in
// the Prometheus exposition).
type family struct {
	name, help string
	kind       kind
	series     []*series
}

// Registry holds an ordered set of metric families. Registration takes a
// lock; reads and writes of registered metrics are lock-free. All New*
// methods panic on an invalid name, a duplicate (name, labels) pair, or a
// help/type conflict with an existing family — registration mistakes are
// programmer errors, caught at startup.
type Registry struct {
	mu       sync.RWMutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// NewCounter registers and returns a counter.
func (r *Registry) NewCounter(name, help string, labels ...Label) *Counter {
	c := &Counter{}
	r.register(name, help, kindCounter, &series{labels: labels, counter: c})
	return c
}

// NewGauge registers and returns a gauge.
func (r *Registry) NewGauge(name, help string, labels ...Label) *Gauge {
	g := &Gauge{}
	r.register(name, help, kindGauge, &series{labels: labels, gauge: g})
	return g
}

// NewHistogram registers and returns a histogram with the given inclusive
// upper bounds (must be sorted ascending; the +Inf bucket is implicit).
func (r *Registry) NewHistogram(name, help string, bounds []uint64, labels ...Label) *Histogram {
	h := NewHistogram(bounds)
	r.register(name, help, kindHistogram, &series{labels: labels, hist: h})
	return h
}

// RegisterHistogram exposes an existing standalone histogram (see the
// package-level NewHistogram) as a registered series, so state maintained
// unconditionally elsewhere appears in the exposition without double
// bookkeeping.
func (r *Registry) RegisterHistogram(name, help string, h *Histogram, labels ...Label) {
	r.register(name, help, kindHistogram, &series{labels: labels, hist: h})
}

// NewCounterFunc registers a counter whose value is read from fn at scrape
// time (for pre-existing atomic state maintained elsewhere, e.g. the harness
// worker pool). fn must be concurrency-safe and monotonic.
func (r *Registry) NewCounterFunc(name, help string, fn func() uint64, labels ...Label) {
	r.register(name, help, kindCounter, &series{labels: labels, counterFn: fn})
}

// NewGaugeFunc registers a gauge whose value is read from fn at scrape time.
// fn must be concurrency-safe.
func (r *Registry) NewGaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.register(name, help, kindGauge, &series{labels: labels, gaugeFn: fn})
}

func (r *Registry) register(name, help string, k kind, s *series) {
	if !validMetricName(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
	for _, l := range s.labels {
		if !validLabelName(l.Name) {
			panic(fmt.Sprintf("telemetry: metric %q: invalid label name %q", name, l.Name))
		}
	}
	s.labelsStr = renderLabels(s.labels)

	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.byName[name]
	if !ok {
		f = &family{name: name, help: help, kind: k}
		r.byName[name] = f
		r.families = append(r.families, f)
	} else {
		if f.kind != k {
			panic(fmt.Sprintf("telemetry: metric %q re-registered as %s, was %s", name, k, f.kind))
		}
		if f.help != help {
			panic(fmt.Sprintf("telemetry: metric %q re-registered with different help", name))
		}
	}
	for _, prev := range f.series {
		if prev.labelsStr == s.labelsStr {
			panic(fmt.Sprintf("telemetry: duplicate series %s%s", name, s.labelsStr))
		}
	}
	f.series = append(f.series, s)
}

// renderLabels pre-renders the {k="v",...} suffix once at registration so the
// exposition path never rebuilds it.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Name, l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		alpha := (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' || c == ':'
		if !alpha && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}

func validLabelName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		alpha := (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_'
		if !alpha && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}
