package telemetry

import (
	"encoding/json"
	"strings"
	"testing"

	"nacho/internal/sim"
)

// traceDoc mirrors the Chrome trace-event JSON object format.
type traceDoc struct {
	DisplayTimeUnit string       `json:"displayTimeUnit"`
	TraceEvents     []traceEvent `json:"traceEvents"`
}

type traceEvent struct {
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Name string         `json:"name"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Args map[string]any `json:"args"`
}

func renderTrace(t *testing.T, drive func(p *TraceEventProbe), finalCycle uint64) traceDoc {
	t.Helper()
	var out strings.Builder
	p := NewTraceEventProbe(&out)
	drive(p)
	if err := p.Finish(finalCycle); err != nil {
		t.Fatalf("Finish: %v", err)
	}
	var doc traceDoc
	if err := json.Unmarshal([]byte(out.String()), &doc); err != nil {
		t.Fatalf("trace output is not valid JSON: %v\n%s", err, out.String())
	}
	return doc
}

// eventsNamed returns the events with the given phase and name.
func eventsNamed(doc traceDoc, ph, name string) []traceEvent {
	var out []traceEvent
	for _, e := range doc.TraceEvents {
		if e.Ph == ph && e.Name == name {
			out = append(out, e)
		}
	}
	return out
}

func TestTraceEventProbe(t *testing.T) {
	doc := renderTrace(t, func(p *TraceEventProbe) {
		feedOneOfEach(p)
	}, 500)

	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", doc.DisplayTimeUnit)
	}

	// Track metadata: a process name and four named threads.
	if got := eventsNamed(doc, "M", "process_name"); len(got) != 1 {
		t.Fatalf("want 1 process_name metadata event, got %d", len(got))
	}
	threads := map[string]bool{}
	for _, e := range eventsNamed(doc, "M", "thread_name") {
		threads[e.Args["name"].(string)] = true
	}
	for _, want := range []string{"checkpoint intervals", "checkpoint flush", "power", "write-backs"} {
		if !threads[want] {
			t.Errorf("missing thread_name metadata for track %q (have %v)", want, threads)
		}
	}

	// Checkpoint intervals: feedOneOfEach commits at cycle 80 (commit kind),
	// a region boundary at 90, a power failure at 100, and Finish(500) closes
	// the tail. Four interval slices on the intervals track.
	intervals := []traceEvent{}
	for _, e := range doc.TraceEvents {
		if e.Ph == "X" && e.Tid == tidIntervals {
			intervals = append(intervals, e)
		}
	}
	if len(intervals) != 4 {
		t.Fatalf("want 4 interval slices, got %d: %+v", len(intervals), intervals)
	}
	wantIntervals := []struct {
		name       string
		start, dur float64 // trace microseconds at 50 cycles/us
	}{
		{"commit", 0, 80.0 / 50},
		{"region", 80.0 / 50, 10.0 / 50},
		{"power-failure", 90.0 / 50, 10.0 / 50},
		{"end-of-run", 100.0 / 50, 400.0 / 50},
	}
	for i, w := range wantIntervals {
		e := intervals[i]
		if e.Name != w.name || e.Ts != w.start || e.Dur != w.dur {
			t.Errorf("interval %d = {%s ts=%g dur=%g}, want {%s ts=%g dur=%g}",
				i, e.Name, e.Ts, e.Dur, w.name, w.start, w.dur)
		}
	}
	if args := intervals[0].Args; args["lines"].(float64) != 3 || args["forced"].(bool) != true {
		t.Errorf("commit interval args wrong: %v", args)
	}

	// The staged checkpoint (begin 60 -> commit 80) renders as a flush slice.
	flushes := eventsNamed(doc, "X", "flush")
	if len(flushes) != 1 || flushes[0].Tid != tidFlush || flushes[0].Ts != 60.0/50 || flushes[0].Dur != 20.0/50 {
		t.Errorf("flush slices = %+v, want one at ts=1.2 dur=0.4", flushes)
	}

	// Write-back verdicts as instants.
	if got := eventsNamed(doc, "i", "safe"); len(got) != 1 || got[0].Tid != tidWriteBack {
		t.Errorf("safe write-back instants = %+v, want 1 on the write-back track", got)
	}
	if got := eventsNamed(doc, "i", "unsafe"); len(got) != 1 {
		t.Errorf("unsafe write-back instants = %+v, want 1", got)
	}

	// Power outage: failure at 100, restore completed at 160.
	outages := eventsNamed(doc, "X", "outage+restore")
	if len(outages) != 2 {
		t.Fatalf("want 2 outage slices (one OK restore, one cold), got %d", len(outages))
	}
	if outages[0].Ts != 100.0/50 || outages[0].Dur != 60.0/50 {
		t.Errorf("outage slice = ts=%g dur=%g, want ts=2 dur=1.2", outages[0].Ts, outages[0].Dur)
	}
	if outages[0].Args["restore cycles"].(float64) != 60 {
		t.Errorf("outage args = %v, want restore cycles 60", outages[0].Args)
	}

	// NVM counter track sampled at each persistence point; the final sample
	// carries the cumulative byte totals from feedOneOfEach.
	counters := eventsNamed(doc, "C", "nvm traffic")
	if len(counters) == 0 {
		t.Fatal("no nvm traffic counter samples")
	}
	last := counters[len(counters)-1]
	if last.Args["read bytes"].(float64) != 4 || last.Args["written bytes"].(float64) != 48 {
		t.Errorf("final nvm counter sample = %v, want read 4 / written 48", last.Args)
	}
}

func TestTraceEventProbeAbortedFlush(t *testing.T) {
	doc := renderTrace(t, func(p *TraceEventProbe) {
		p.OnCheckpointBegin(sim.CheckpointEvent{Cycle: 100, Lines: 5})
		p.OnPowerFailure(sim.PowerEvent{Cycle: 130})
		p.OnRestore(sim.RestoreEvent{Cycle: 150, Cycles: 20, OK: false})
	}, 200)

	aborted := eventsNamed(doc, "X", "aborted")
	if len(aborted) != 1 || aborted[0].Tid != tidFlush {
		t.Fatalf("aborted flush slices = %+v, want exactly 1 on the flush track", aborted)
	}
	if aborted[0].Ts != 100.0/50 || aborted[0].Dur != 30.0/50 {
		t.Errorf("aborted flush = ts=%g dur=%g, want ts=2 dur=0.6", aborted[0].Ts, aborted[0].Dur)
	}
	// No committed flush slice, and the power failure closed the interval.
	if got := eventsNamed(doc, "X", "flush"); len(got) != 0 {
		t.Errorf("unexpected committed flush slices: %+v", got)
	}
	if got := eventsNamed(doc, "X", "power-failure"); len(got) != 1 {
		t.Errorf("power-failure interval slices = %+v, want 1", got)
	}
}

func TestTraceEventProbeEmptyRun(t *testing.T) {
	// No events and a zero final cycle: still a valid, loadable document.
	doc := renderTrace(t, func(p *TraceEventProbe) {}, 0)
	for _, e := range doc.TraceEvents {
		if e.Ph != "M" {
			t.Errorf("unexpected non-metadata event in empty trace: %+v", e)
		}
	}
}

func TestTraceEventProbeFinishIdempotent(t *testing.T) {
	var out strings.Builder
	p := NewTraceEventProbe(&out)
	p.OnCheckpointCommit(sim.CheckpointEvent{Cycle: 50, Kind: sim.CheckpointCommit, Lines: 1})
	if err := p.Finish(100); err != nil {
		t.Fatal(err)
	}
	doc1 := out.String()
	// Late events and a second Finish must not corrupt the document.
	p.OnCheckpointCommit(sim.CheckpointEvent{Cycle: 999, Kind: sim.CheckpointCommit})
	if err := p.Finish(1000); err != nil {
		t.Fatal(err)
	}
	if out.String() != doc1 {
		t.Errorf("document changed after Finish:\n%s\nvs\n%s", doc1, out.String())
	}
	var doc traceDoc
	if err := json.Unmarshal([]byte(out.String()), &doc); err != nil {
		t.Fatalf("invalid JSON after double Finish: %v", err)
	}
}
