package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// This file renders a Registry in the two exposition formats: the Prometheus
// text format (version 0.0.4, the format every Prometheus-compatible scraper
// accepts) and a JSON snapshot for ad-hoc consumers. Both are point-in-time
// reads of the lock-free metric values; a scrape concurrent with a running
// simulation sees a consistent-enough cut (each sample individually atomic).

// PrometheusContentType is the Content-Type of WritePrometheus output.
const PrometheusContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format: one # HELP / # TYPE block per family, histograms as
// cumulative _bucket/_sum/_count series.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	families := append([]*family(nil), r.families...)
	r.mu.RUnlock()

	var b strings.Builder
	for _, f := range families {
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range f.series {
			if f.kind == kindHistogram {
				writeHistogram(&b, f.name, s)
				continue
			}
			fmt.Fprintf(&b, "%s%s %s\n", f.name, s.labelsStr, formatValue(s.value()))
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeHistogram renders one histogram series: cumulative buckets with
// inclusive le bounds, then the implicit +Inf bucket, sum and count.
func writeHistogram(b *strings.Builder, name string, s *series) {
	h := s.hist
	cum := uint64(0)
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(b, "%s_bucket%s %d\n", name, mergeLabel(s.labelsStr, "le", strconv.FormatUint(bound, 10)), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(b, "%s_bucket%s %d\n", name, mergeLabel(s.labelsStr, "le", "+Inf"), cum)
	fmt.Fprintf(b, "%s_sum%s %d\n", name, s.labelsStr, h.Sum())
	fmt.Fprintf(b, "%s_count%s %d\n", name, s.labelsStr, h.Count())
}

// mergeLabel appends one label pair to a pre-rendered label string.
func mergeLabel(labels, name, value string) string {
	pair := fmt.Sprintf("%s=%q", name, value)
	if labels == "" {
		return "{" + pair + "}"
	}
	return labels[:len(labels)-1] + "," + pair + "}"
}

// formatValue renders a sample value the way Prometheus expects: integral
// values without an exponent, everything else in shortest-float form.
func formatValue(v float64) string {
	if v == float64(uint64(v)) {
		return strconv.FormatUint(uint64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes newlines and backslashes per the text-format spec.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// Bucket is one cumulative histogram bucket in a JSON snapshot.
type Bucket struct {
	// Le is the inclusive upper bound, "+Inf" for the catch-all bucket.
	Le string `json:"le"`
	// Count is cumulative, matching the Prometheus bucket semantics.
	Count uint64 `json:"count"`
}

// HistogramValue is the JSON form of one histogram series.
type HistogramValue struct {
	Count   uint64   `json:"count"`
	Sum     uint64   `json:"sum"`
	Buckets []Bucket `json:"buckets"`
}

// Sample is one metric series in a JSON snapshot.
type Sample struct {
	Name      string            `json:"name"`
	Kind      string            `json:"kind"`
	Labels    map[string]string `json:"labels,omitempty"`
	Value     float64           `json:"value"`
	Histogram *HistogramValue   `json:"histogram,omitempty"`
}

// Snapshot returns a point-in-time copy of every registered series, in
// registration order.
func (r *Registry) Snapshot() []Sample {
	r.mu.RLock()
	families := append([]*family(nil), r.families...)
	r.mu.RUnlock()

	var out []Sample
	for _, f := range families {
		for _, s := range f.series {
			sample := Sample{Name: f.name, Kind: f.kind.String()}
			if len(s.labels) > 0 {
				sample.Labels = make(map[string]string, len(s.labels))
				for _, l := range s.labels {
					sample.Labels[l.Name] = l.Value
				}
			}
			if f.kind == kindHistogram {
				h := s.hist
				hv := &HistogramValue{Count: h.Count(), Sum: h.Sum()}
				cum := uint64(0)
				for i, bound := range h.bounds {
					cum += h.counts[i].Load()
					hv.Buckets = append(hv.Buckets, Bucket{Le: strconv.FormatUint(bound, 10), Count: cum})
				}
				cum += h.counts[len(h.bounds)].Load()
				hv.Buckets = append(hv.Buckets, Bucket{Le: "+Inf", Count: cum})
				sample.Histogram = hv
				sample.Value = float64(h.Count())
			} else {
				sample.Value = s.value()
			}
			out = append(out, sample)
		}
	}
	return out
}

// WriteJSON renders the snapshot as an indented JSON array.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}
