package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// The span-emit hot path must not allocate: Begin/End run once per harness run
// and once per explorer window — millions of times in an exhaustive campaign.
func TestSpanEmitAllocFree(t *testing.T) {
	tr := NewTracer(1 << 20)
	root := tr.Begin(0, SpanCampaign, "campaign", "", "")
	if allocs := testing.AllocsPerRun(1000, func() {
		id := tr.Begin(root, SpanRun, "crc32", "wb", "aot")
		tr.End(id, 12345, 0, false)
	}); allocs != 0 {
		t.Fatalf("Begin+End allocates %.0f times per call, want 0", allocs)
	}
	// A full arena must also stay allocation-free (drop path).
	small := NewTracer(1)
	small.Begin(0, SpanRun, "x", "", "")
	if allocs := testing.AllocsPerRun(1000, func() {
		small.Begin(0, SpanRun, "y", "", "")
	}); allocs != 0 {
		t.Fatalf("Begin on full arena allocates %.0f times per call, want 0", allocs)
	}
}

// All Tracer methods must accept a nil receiver so call sites can emit
// unconditionally whether or not tracing is installed.
func TestSpanNilTracer(t *testing.T) {
	var tr *Tracer
	id := tr.Begin(0, SpanRun, "x", "", "")
	if id != 0 {
		t.Fatalf("nil tracer Begin = %d, want 0", id)
	}
	tr.End(id, 0, 0, false)
	tr.SetAmbient(0)
	if got := tr.Spans(); got != nil {
		t.Fatalf("nil tracer Spans = %v, want nil", got)
	}
	if tr.Dropped() != 0 {
		t.Fatal("nil tracer Dropped != 0")
	}
}

func TestSpanAmbientParent(t *testing.T) {
	tr := NewTracer(16)
	root := tr.Begin(0, SpanCampaign, "c", "", "")
	prev := tr.SetAmbient(root)
	if prev != 0 {
		t.Fatalf("initial ambient = %d, want 0", prev)
	}
	cell := tr.Begin(0, SpanCell, "cell", "", "")
	tr.SetAmbient(cell)
	run := tr.Begin(0, SpanRun, "run", "wb", "ref")
	tr.End(run, 1, 0, false)
	tr.End(cell, 0, 0, false)
	tr.SetAmbient(root)

	spans := tr.Spans()
	byID := make(map[SpanID]Span)
	for _, s := range spans {
		byID[s.ID] = s
	}
	if byID[cell].Parent != root {
		t.Errorf("cell parent = %d, want %d", byID[cell].Parent, root)
	}
	if byID[run].Parent != cell {
		t.Errorf("run parent = %d, want %d", byID[run].Parent, cell)
	}
}

func TestSpanArenaOverflow(t *testing.T) {
	tr := NewTracer(4)
	ids := make([]SpanID, 0, 8)
	for i := 0; i < 8; i++ {
		ids = append(ids, tr.Begin(0, SpanRun, "r", "", ""))
	}
	for _, id := range ids[:4] {
		if id == 0 {
			t.Fatal("in-capacity Begin returned 0")
		}
	}
	for _, id := range ids[4:] {
		if id != 0 {
			t.Fatalf("over-capacity Begin returned %d, want 0", id)
		}
	}
	if got := tr.Dropped(); got != 4 {
		t.Fatalf("Dropped = %d, want 4", got)
	}
	// End on a dropped (0) span is a no-op, not a panic.
	tr.End(0, 1, 2, true)
	if got := len(tr.Spans()); got != 4 {
		t.Fatalf("Spans len = %d, want 4", got)
	}
}

// checkSpanTree asserts the structural invariants of a span forest: every
// non-zero parent exists, no span is its own ancestor, and every closed child
// interval nests inside its closed parent's interval.
func checkSpanTree(t *testing.T, spans []Span) {
	t.Helper()
	byID := make(map[SpanID]Span, len(spans))
	for _, s := range spans {
		if s.ID == 0 {
			t.Fatalf("span with zero ID: %+v", s)
		}
		if _, dup := byID[s.ID]; dup {
			t.Fatalf("duplicate span ID %d", s.ID)
		}
		byID[s.ID] = s
	}
	for _, s := range spans {
		if s.End != 0 && s.End < s.Start {
			t.Errorf("span %d ends before it starts", s.ID)
		}
		seen := make(map[SpanID]bool)
		for p := s.Parent; p != 0; {
			if seen[p] {
				t.Fatalf("span %d: parent cycle at %d", s.ID, p)
			}
			seen[p] = true
			ps, ok := byID[p]
			if !ok {
				t.Fatalf("span %d: orphan — parent %d not recorded", s.ID, p)
			}
			p = ps.Parent
		}
		if s.Parent != 0 {
			ps := byID[s.Parent]
			if s.Start < ps.Start {
				t.Errorf("span %d starts before parent %d", s.ID, s.Parent)
			}
			if s.End != 0 && ps.End != 0 && s.End > ps.End {
				t.Errorf("span %d ends after parent %d", s.ID, s.Parent)
			}
		}
	}
}

// Concurrent emitters (the parallel harness shape: one campaign, cells opened
// serially, runs emitted from many goroutines) must produce a well-formed
// tree. Run under -race in CI.
func TestSpanTreeConcurrent(t *testing.T) {
	tr := NewTracer(1 << 12)
	root := tr.Begin(0, SpanCampaign, "campaign", "", "")
	tr.SetAmbient(root)
	for cellN := 0; cellN < 4; cellN++ {
		cell := tr.Begin(0, SpanCell, "cell", "", "")
		tr.SetAmbient(cell)
		var wg sync.WaitGroup
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 20; i++ {
					id := tr.Begin(0, SpanRun, "run", "wb", "aot")
					win := tr.Begin(id, SpanWindow, "win", "", "")
					tr.End(win, 3, 7, false)
					tr.End(id, uint64(i), 0, i%7 == 0)
				}
			}()
		}
		wg.Wait()
		tr.End(cell, 0, 0, false)
		tr.SetAmbient(root)
	}
	tr.End(root, 0, 0, false)

	spans := tr.Spans()
	want := 1 + 4 + 4*8*20*2
	if len(spans) != want {
		t.Fatalf("recorded %d spans, want %d", len(spans), want)
	}
	checkSpanTree(t, spans)
	if tr.Dropped() != 0 {
		t.Fatalf("Dropped = %d, want 0", tr.Dropped())
	}
}

func TestWriteTraceValidJSON(t *testing.T) {
	tr := NewTracer(64)
	root := tr.Begin(0, SpanCampaign, "fig5", "", "")
	tr.SetAmbient(root)
	cell := tr.Begin(0, SpanCell, `cell "quoted"`, "", "")
	tr.SetAmbient(cell)
	run := tr.Begin(0, SpanRun, "crc32", "wb", "ref")
	tr.End(run, 99, 0, true)
	tr.End(cell, 0, 0, false)
	open := tr.Begin(root, SpanRun, "still-open", "jit", "fast")
	_ = open // left open: WriteTrace must close it at the trace end
	tr.End(root, 0, 0, false)

	var buf bytes.Buffer
	if err := tr.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph   string          `json:"ph"`
			Name string          `json:"name"`
			Pid  int             `json:"pid"`
			Tid  int             `json:"tid"`
			Dur  float64         `json:"dur"`
			Args json.RawMessage `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, buf.String())
	}
	var x, meta int
	names := make(map[string]bool)
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "X":
			x++
			names[ev.Name] = true
			if ev.Dur < 0 {
				t.Errorf("event %q has negative dur", ev.Name)
			}
		case "M":
			meta++
		default:
			t.Errorf("unexpected phase %q", ev.Ph)
		}
	}
	if x != 4 {
		t.Errorf("trace has %d X events, want 4", x)
	}
	if meta == 0 {
		t.Error("trace has no metadata events")
	}
	for _, want := range []string{"fig5", `cell "quoted"`, "crc32", "still-open"} {
		if !names[want] {
			t.Errorf("trace missing span %q", want)
		}
	}
	if !strings.Contains(buf.String(), `"error":true`) {
		t.Error("trace does not mark the failed run span")
	}
}

func TestActiveTracerInstall(t *testing.T) {
	if got := ActiveTracer(); got != nil {
		t.Fatalf("ActiveTracer at start = %v, want nil", got)
	}
	tr := NewTracer(8)
	if prev := SetActiveTracer(tr); prev != nil {
		t.Fatalf("SetActiveTracer returned %v, want nil", prev)
	}
	defer SetActiveTracer(nil)
	if ActiveTracer() != tr {
		t.Fatal("ActiveTracer did not return installed tracer")
	}
	if prev := SetActiveTracer(nil); prev != tr {
		t.Fatal("SetActiveTracer(nil) did not return previous tracer")
	}
}
