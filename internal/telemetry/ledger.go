package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"sync"
)

// The run ledger: one append-only JSON line per run, durable across the
// process. Where the metrics registry answers "how is the campaign doing
// right now" and the span tracer "where did the time go", the ledger answers
// "what exactly ran" — a replay-loadable record of every simulation's
// identity (the structured runKey fields), outcome, counters and timing.
// It is the stepping stone to a content-addressed run cache: the record key
// fields are exactly the fields the harness's singleflight cache keys on.
//
// Append renders into a buffer retained across calls and takes one lock, so
// the steady-state hot path performs no allocation (pinned by
// TestLedgerAppendAllocFree) and is safe from every harness worker at once.
// Serialization is canonical — fixed field order, fixed formatting, empty
// optionals omitted — so reload + re-append reproduces the input bytes
// (the round-trip property the ledger tests pin).

// LedgerVersion is the schema version stamped on every record.
const LedgerVersion = 1

// Record is one run in the ledger. The identity fields mirror the harness
// runKey; the counter fields mirror the report inputs (metrics.Counters).
type Record struct {
	V        int    `json:"v"` // schema version (LedgerVersion)
	Program  string `json:"program"`
	System   string `json:"system"`
	Engine   string `json:"engine"` // resolved engine the run executed on
	Cache    int    `json:"cache"`  // cache size in bytes
	Ways     int    `json:"ways"`
	Schedule string `json:"schedule"` // power.Schedule.Key(); "none" when always-on

	// Outcome is "ok", "error", or "cache-hit" (served from the in-process
	// run cache without executing; counters are the cached result's).
	Outcome string `json:"outcome"`
	// Error is the run error string (only when Outcome is "error").
	Error string `json:"error,omitempty"`
	// Bypass marks a probed/traced run that skipped the run cache.
	Bypass bool `json:"bypass,omitempty"`

	Cycles        uint64 `json:"cycles"`
	Instructions  uint64 `json:"instructions"`
	Checkpoints   uint64 `json:"checkpoints"`
	NVMReadBytes  uint64 `json:"nvm_read_bytes"`
	NVMWriteBytes uint64 `json:"nvm_write_bytes"`
	CacheHits     uint64 `json:"cache_hits"`
	CacheMisses   uint64 `json:"cache_misses"`
	PowerFailures uint64 `json:"power_failures"`

	// WallMicros is the run's wall-clock execution time (0 for cache hits).
	WallMicros int64 `json:"wall_micros"`
}

// Ledger appends records as JSON lines through a buffered writer.
type Ledger struct {
	mu  sync.Mutex
	w   *bufio.Writer
	buf []byte // line scratch, retained across appends
	n   uint64 // records appended
	err error  // first write error; later appends are dropped
}

// NewLedger starts a ledger writing to w.
func NewLedger(w io.Writer) *Ledger {
	return &Ledger{w: bufio.NewWriterSize(w, 1<<16), buf: make([]byte, 0, 512)}
}

// Append writes one record as a single JSON line. Safe for concurrent use;
// write errors are sticky and surfaced by Flush.
func (l *Ledger) Append(rec *Record) {
	if l == nil {
		return
	}
	l.mu.Lock()
	if l.err == nil {
		l.buf = appendRecord(l.buf[:0], rec)
		if _, err := l.w.Write(l.buf); err != nil {
			l.err = err
		}
		l.n++
	}
	l.mu.Unlock()
}

// Len reports how many records have been appended.
func (l *Ledger) Len() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.n
}

// Flush drains the buffered writer and returns the first error encountered
// anywhere in the stream.
func (l *Ledger) Flush() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.w.Flush(); l.err == nil {
		l.err = err
	}
	return l.err
}

// appendRecord renders rec canonically into buf: fixed field order matching
// the struct tags, strconv number formatting, optionals omitted at their zero
// value. ReadLedger + appendRecord round-trips byte-identically.
func appendRecord(buf []byte, rec *Record) []byte {
	buf = append(buf, `{"v":`...)
	buf = strconv.AppendInt(buf, int64(rec.V), 10)
	buf = appendField(buf, "program", rec.Program)
	buf = appendField(buf, "system", rec.System)
	buf = appendField(buf, "engine", rec.Engine)
	buf = append(buf, `,"cache":`...)
	buf = strconv.AppendInt(buf, int64(rec.Cache), 10)
	buf = append(buf, `,"ways":`...)
	buf = strconv.AppendInt(buf, int64(rec.Ways), 10)
	buf = appendField(buf, "schedule", rec.Schedule)
	buf = appendField(buf, "outcome", rec.Outcome)
	if rec.Error != "" {
		buf = appendField(buf, "error", rec.Error)
	}
	if rec.Bypass {
		buf = append(buf, `,"bypass":true`...)
	}
	buf = appendUintField(buf, "cycles", rec.Cycles)
	buf = appendUintField(buf, "instructions", rec.Instructions)
	buf = appendUintField(buf, "checkpoints", rec.Checkpoints)
	buf = appendUintField(buf, "nvm_read_bytes", rec.NVMReadBytes)
	buf = appendUintField(buf, "nvm_write_bytes", rec.NVMWriteBytes)
	buf = appendUintField(buf, "cache_hits", rec.CacheHits)
	buf = appendUintField(buf, "cache_misses", rec.CacheMisses)
	buf = appendUintField(buf, "power_failures", rec.PowerFailures)
	buf = append(buf, `,"wall_micros":`...)
	buf = strconv.AppendInt(buf, rec.WallMicros, 10)
	buf = append(buf, "}\n"...)
	return buf
}

func appendUintField(buf []byte, name string, v uint64) []byte {
	buf = append(buf, ',', '"')
	buf = append(buf, name...)
	buf = append(buf, '"', ':')
	return strconv.AppendUint(buf, v, 10)
}

func appendField(buf []byte, name, v string) []byte {
	buf = append(buf, ',', '"')
	buf = append(buf, name...)
	buf = append(buf, '"', ':')
	return appendJSONString(buf, v)
}

// appendJSONString appends v as a JSON string, escaping the characters the
// JSON grammar requires (quotes, backslash, control bytes). Everything the
// ledger stores (program names, system kinds, schedule keys, Go error
// strings) passes through unchanged on the fast path.
func appendJSONString(buf []byte, v string) []byte {
	buf = append(buf, '"')
	for i := 0; i < len(v); i++ {
		c := v[i]
		switch {
		case c == '"' || c == '\\':
			buf = append(buf, '\\', c)
		case c == '\n':
			buf = append(buf, '\\', 'n')
		case c == '\t':
			buf = append(buf, '\\', 't')
		case c == '\r':
			buf = append(buf, '\\', 'r')
		case c < 0x20:
			buf = append(buf, '\\', 'u', '0', '0', hexDigit(c>>4), hexDigit(c&0xf))
		default:
			buf = append(buf, c)
		}
	}
	return append(buf, '"')
}

func hexDigit(b byte) byte {
	if b < 10 {
		return '0' + b
	}
	return 'a' + b - 10
}

// ReadLedger loads every record from a ledger stream, in order, returning the
// records and the number of trailing lines skipped. Blank lines are ignored.
// A malformed *final* line is the signature of a crash mid-append (the process
// was killed between writing part of a record and its newline), so it is
// skipped and counted rather than failing the whole load; a malformed line
// with valid records after it cannot be crash truncation and still fails with
// its line number.
func ReadLedger(r io.Reader) ([]Record, int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	var out []Record
	line := 0
	var pendingErr error // parse failure on the most recent non-blank line
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		if pendingErr != nil {
			// The malformed line was not the last one: real corruption.
			return out, 0, pendingErr
		}
		var rec Record
		if err := json.Unmarshal(b, &rec); err != nil {
			pendingErr = fmt.Errorf("telemetry: ledger line %d: %w", line, err)
			continue
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return out, 0, fmt.Errorf("telemetry: ledger read: %w", err)
	}
	skipped := 0
	if pendingErr != nil {
		skipped = 1
	}
	return out, skipped, nil
}
