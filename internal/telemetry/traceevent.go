package telemetry

import (
	"bufio"
	"fmt"
	"io"

	"nacho/internal/sim"
)

// TraceEventProbe renders the probe stream as Chrome trace-event JSON — the
// format Perfetto (ui.perfetto.dev) and chrome://tracing open directly —
// giving the first visual timeline of an intermittent execution. One track
// (thread) per event family:
//
//   - "checkpoint intervals": each stretch between persistence points as a
//     duration slice, named by what closed it (commit/region/jit,
//     power-failure, end-of-run), with the dirty-line payload in args;
//   - "checkpoint flush": the staging window from OnCheckpointBegin to the
//     commit (or to the power failure that aborted it);
//   - "power": each outage from the failure instant to the completed restore,
//     with the restore cost in args;
//   - "write-backs": every write-back verdict as an instant event;
//   - "nvm traffic": a counter track of cumulative NVM bytes, sampled at
//     every persistence point (not per transfer, which would bloat the file).
//
// High-rate families (accesses, retires, fills) are deliberately not
// rendered: a trace viewer cannot usefully display tens of millions of
// instants, and the cycle-exact record already exists via trace.Recorder.
//
// Events stream through a buffered writer as they happen, so memory stays
// bounded on arbitrarily long runs. Call Finish once after the run to close
// the tail interval, terminate the JSON, and flush.
type TraceEventProbe struct {
	w   *bufio.Writer
	err error
	n   int // events emitted so far

	intervalStart uint64 // start cycle of the open checkpoint interval

	ckptBeginCycle uint64
	ckptInFlight   bool

	offCycle uint64 // cycle of the last power failure
	off      bool

	nvmReadBytes, nvmWriteBytes uint64

	finished bool
}

// Track (thread) ids; metadata events name them in the viewer.
const (
	tidIntervals = 1
	tidFlush     = 2
	tidPower     = 3
	tidWriteBack = 4
)

// cyclesPerMicro converts the modelled 50 MHz clock to trace microseconds
// (the trace-event ts unit), so the viewer's time axis is simulated time.
const cyclesPerMicro = 50.0

// NewTraceEventProbe starts a trace-event stream on w. The caller must call
// Finish exactly once after the run; until then the written JSON is
// incomplete.
func NewTraceEventProbe(w io.Writer) *TraceEventProbe {
	t := &TraceEventProbe{w: bufio.NewWriterSize(w, 1<<16)}
	_, t.err = t.w.WriteString("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[")
	t.event(`{"ph":"M","pid":1,"name":"process_name","args":{"name":"nacho simulation"}}`)
	for _, tr := range []struct {
		tid  int
		name string
	}{
		{tidIntervals, "checkpoint intervals"},
		{tidFlush, "checkpoint flush"},
		{tidPower, "power"},
		{tidWriteBack, "write-backs"},
	} {
		t.event(`{"ph":"M","pid":1,"tid":%d,"name":"thread_name","args":{"name":%q}}`, tr.tid, tr.name)
		t.event(`{"ph":"M","pid":1,"tid":%d,"name":"thread_sort_index","args":{"sort_index":%d}}`, tr.tid, tr.tid)
	}
	return t
}

// event appends one JSON object, comma-separating after the first.
func (t *TraceEventProbe) event(format string, args ...any) {
	if t.err != nil || t.finished {
		return
	}
	if t.n > 0 {
		t.w.WriteByte(',')
	}
	t.w.WriteByte('\n')
	if _, err := fmt.Fprintf(t.w, format, args...); err != nil {
		t.err = err
		return
	}
	t.n++
}

// ts renders a cycle count as trace microseconds.
func ts(cycle uint64) float64 { return float64(cycle) / cyclesPerMicro }

// slice emits a complete ("X") duration event.
func (t *TraceEventProbe) slice(tid int, name string, start, end uint64, args string) {
	if end < start {
		end = start
	}
	t.event(`{"ph":"X","pid":1,"tid":%d,"name":%q,"ts":%.3f,"dur":%.3f,"args":{%s}}`,
		tid, name, ts(start), ts(end-start), args)
}

// nvmCounter samples the cumulative NVM traffic counter track.
func (t *TraceEventProbe) nvmCounter(cycle uint64) {
	t.event(`{"ph":"C","pid":1,"name":"nvm traffic","ts":%.3f,"args":{"read bytes":%d,"written bytes":%d}}`,
		ts(cycle), t.nvmReadBytes, t.nvmWriteBytes)
}

// closeInterval emits the open checkpoint interval as a slice and starts the
// next one at end.
func (t *TraceEventProbe) closeInterval(name string, end uint64, args string) {
	t.slice(tidIntervals, name, t.intervalStart, end, args)
	t.intervalStart = end
	t.nvmCounter(end)
}

// OnAccess implements sim.Probe (not rendered; see type comment).
func (t *TraceEventProbe) OnAccess(sim.AccessEvent) {}

// OnLineFill implements sim.Probe (not rendered).
func (t *TraceEventProbe) OnLineFill(sim.FillEvent) {}

// OnRetire implements sim.Probe (not rendered).
func (t *TraceEventProbe) OnRetire(sim.RetireEvent) {}

// OnWriteBack implements sim.Probe.
func (t *TraceEventProbe) OnWriteBack(e sim.WriteBackEvent) {
	t.event(`{"ph":"i","pid":1,"tid":%d,"name":%q,"ts":%.3f,"s":"t","args":{"addr":"0x%08x","size":%d}}`,
		tidWriteBack, e.Verdict.String(), ts(e.Cycle), e.Addr, e.Size)
}

// OnCheckpointBegin implements sim.Probe.
func (t *TraceEventProbe) OnCheckpointBegin(e sim.CheckpointEvent) {
	t.ckptBeginCycle, t.ckptInFlight = e.Cycle, true
}

// OnCheckpointCommit implements sim.Probe.
func (t *TraceEventProbe) OnCheckpointCommit(e sim.CheckpointEvent) {
	if t.ckptInFlight {
		t.slice(tidFlush, "flush", t.ckptBeginCycle, e.Cycle, fmt.Sprintf(`"lines":%d`, e.Lines))
		t.ckptInFlight = false
	}
	args := fmt.Sprintf(`"lines":%d,"forced":%t,"adaptive":%t`, e.Lines, e.Forced, e.Adaptive)
	t.closeInterval(e.Kind.String(), e.Cycle, args)
}

// OnPowerFailure implements sim.Probe.
func (t *TraceEventProbe) OnPowerFailure(e sim.PowerEvent) {
	if t.ckptInFlight {
		t.slice(tidFlush, "aborted", t.ckptBeginCycle, e.Cycle, `"aborted":true`)
		t.ckptInFlight = false
	}
	t.closeInterval("power-failure", e.Cycle, `"lost":true`)
	t.offCycle, t.off = e.Cycle, true
}

// OnRestore implements sim.Probe.
func (t *TraceEventProbe) OnRestore(e sim.RestoreEvent) {
	start := t.offCycle
	if !t.off {
		// Restore without an observed failure (probe attached mid-run):
		// render just the restore sequence.
		start = e.Cycle - e.Cycles
	}
	t.off = false
	t.slice(tidPower, "outage+restore", start, e.Cycle,
		fmt.Sprintf(`"restore cycles":%d,"from checkpoint":%t`, e.Cycles, e.OK))
	// Execution resumes at the restore's completion; account the replayed
	// stretch to the interval that reopened at the failure instant.
}

// OnNVM implements sim.Probe.
func (t *TraceEventProbe) OnNVM(e sim.NVMEvent) {
	if e.Write {
		t.nvmWriteBytes += uint64(e.Bytes)
	} else {
		t.nvmReadBytes += uint64(e.Bytes)
	}
}

// Finish closes the tail interval at the run's final cycle, terminates the
// JSON document and flushes. It returns the first error encountered anywhere
// in the stream. Events after Finish are dropped.
func (t *TraceEventProbe) Finish(finalCycle uint64) error {
	if t.finished {
		return t.err
	}
	if finalCycle > t.intervalStart {
		t.closeInterval("end-of-run", finalCycle, `"end_of_run":true`)
	}
	t.finished = true
	if t.err == nil {
		_, t.err = t.w.WriteString("\n]}\n")
	}
	if err := t.w.Flush(); t.err == nil {
		t.err = err
	}
	return t.err
}
