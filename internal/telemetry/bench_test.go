package telemetry

import (
	"io"
	"testing"

	"nacho/internal/sim"
)

// The hot path — metric updates and probe hooks — must not allocate: these
// run once per simulated event, potentially billions of times per sweep.
func TestHotPathZeroAlloc(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("c_total", "x")
	g := r.NewGauge("g", "x")
	h := r.NewHistogram("h", "x", CheckpointLineBuckets)
	p := NewProbe(NewRegistry())
	access := sim.AccessEvent{Cycle: 1, Addr: 0x100, Size: 4, Class: sim.AccessHit}
	nvm := sim.NVMEvent{Cycle: 1, Addr: 0x100, Bytes: 4, Write: true}

	for name, fn := range map[string]func(){
		"Counter.Add":       func() { c.Add(3) },
		"Gauge.Set":         func() { g.Set(1.5) },
		"Histogram.Observe": func() { h.Observe(17) },
		"Probe.OnAccess":    func() { p.OnAccess(access) },
		"Probe.OnNVM":       func() { p.OnNVM(nvm) },
	} {
		if allocs := testing.AllocsPerRun(100, fn); allocs != 0 {
			t.Errorf("%s allocates %.0f times per call, want 0", name, allocs)
		}
	}
}

func BenchmarkCounterAdd(b *testing.B) {
	c := NewRegistry().NewCounter("c_total", "x")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkGaugeSet(b *testing.B) {
	g := NewRegistry().NewGauge("g", "x")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Set(float64(i))
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().NewHistogram("h", "x", CheckpointLineBuckets)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(uint64(i & 255))
	}
}

func BenchmarkProbeOnAccess(b *testing.B) {
	p := NewProbe(NewRegistry())
	e := sim.AccessEvent{Cycle: 1, Addr: 0x100, Size: 4, Class: sim.AccessHit}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.OnAccess(e)
	}
}

func BenchmarkProbeOnNVM(b *testing.B) {
	p := NewProbe(NewRegistry())
	e := sim.NVMEvent{Cycle: 1, Addr: 0x100, Bytes: 4, Write: true}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.OnNVM(e)
	}
}

func BenchmarkWritePrometheus(b *testing.B) {
	r := NewRegistry()
	NewProbe(r) // a realistic registry: the full sim metric set
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := r.WritePrometheus(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}
