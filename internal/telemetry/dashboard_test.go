package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

// /dashboard must serve a self-contained page whose bootstrap JSON island
// carries the live registry and status values, so the first paint is real data
// (and so e2e tests can assert rendering without a JS engine).
func TestDashboardHandler(t *testing.T) {
	reg := NewRegistry()
	reg.NewCounter("nacho_test_runs_total", "runs").Add(42)
	h := NewHistogram([]uint64{100, 1000})
	h.Observe(50)
	h.Observe(500)
	reg.RegisterHistogram("nacho_test_wall_micros", "wall", h, Label{"engine", "ref"})

	status := func() any {
		return map[string]any{"workers": 4, "busy": 2, "runs_completed": 42}
	}
	srv, err := NewServer("127.0.0.1:0", reg, status)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	resp, err := http.Get("http://" + srv.Addr() + "/dashboard")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /dashboard = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Fatalf("Content-Type = %q, want text/html", ct)
	}
	page := string(body)

	// Extract and parse the bootstrap island.
	const openTag = `<script id="bootstrap" type="application/json">`
	i := strings.Index(page, openTag)
	if i < 0 {
		t.Fatal("dashboard has no bootstrap JSON island")
	}
	rest := page[i+len(openTag):]
	j := strings.Index(rest, "</script>")
	if j < 0 {
		t.Fatal("bootstrap island not terminated")
	}
	raw := strings.ReplaceAll(rest[:j], `<\/`, `</`)
	var boot struct {
		Metrics []Sample       `json:"metrics"`
		Status  map[string]any `json:"status"`
	}
	if err := json.Unmarshal([]byte(raw), &boot); err != nil {
		t.Fatalf("bootstrap island is not valid JSON: %v\n%s", err, raw)
	}
	if got := boot.Status["runs_completed"]; got != float64(42) {
		t.Errorf("bootstrap status runs_completed = %v, want 42", got)
	}
	found := make(map[string]bool)
	for _, s := range boot.Metrics {
		found[s.Name] = true
		if s.Name == "nacho_test_wall_micros" {
			if s.Histogram == nil || s.Histogram.Count != 2 {
				t.Errorf("bootstrap histogram sample malformed: %+v", s)
			}
		}
	}
	for _, want := range []string{"nacho_test_runs_total", "nacho_test_wall_micros"} {
		if !found[want] {
			t.Errorf("bootstrap metrics missing %s", want)
		}
	}

	// The index page must link to the dashboard.
	resp, err = http.Get("http://" + srv.Addr() + "/")
	if err != nil {
		t.Fatal(err)
	}
	idx, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(idx), `href="/dashboard"`) {
		t.Error("index page does not link /dashboard")
	}
}

func TestHistogramQuantileMax(t *testing.T) {
	h := NewHistogram([]uint64{10, 100, 1000})
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty Quantile(0.5) = %v, want 0", got)
	}
	for v := uint64(1); v <= 100; v++ {
		h.Observe(v) // uniform 1..100: 10 in (0,10], 90 in (10,100]
	}
	if got := h.Max(); got != 100 {
		t.Fatalf("Max = %d, want 100", got)
	}
	if got := h.Quantile(1); got != 100 {
		t.Fatalf("Quantile(1) = %v, want 100 (exact max)", got)
	}
	p50 := h.Quantile(0.5)
	if p50 < 40 || p50 > 60 {
		t.Errorf("Quantile(0.5) = %v, want ~50", p50)
	}
	p95 := h.Quantile(0.95)
	if p95 < 85 || p95 > 100 {
		t.Errorf("Quantile(0.95) = %v, want ~95", p95)
	}
	// An observation past every bound lands in +Inf and clamps to max.
	h.Observe(5000)
	if got := h.Quantile(1); got != 5000 {
		t.Errorf("Quantile(1) after outlier = %v, want 5000", got)
	}
}
