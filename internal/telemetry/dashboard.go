package telemetry

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
)

// The live dashboard: a single dependency-free HTML+JS page served at
// /dashboard that polls the endpoints the server already exposes —
// /metrics.json for the registry, /status for the harness pool document —
// and renders campaign progress: worker occupancy, run and cache-hit rates,
// per-engine throughput (sim-MIPS), run wall-time histogram percentiles, and
// the fuzz/snapshot series when those campaigns are running. The page ships
// with a server-rendered bootstrap snapshot (a JSON island), so the first
// paint shows live values without waiting a poll interval — which is also
// what makes the dashboard e2e-testable without a browser.

func (s *Server) handleDashboard(w http.ResponseWriter, r *http.Request) {
	var boot struct {
		Metrics []Sample `json:"metrics"`
		Status  any      `json:"status"`
	}
	boot.Metrics = s.reg.Snapshot()
	if s.status != nil {
		boot.Status = s.status()
	} else {
		boot.Status = struct{}{}
	}
	bootJSON, err := json.Marshal(&boot)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	// A JSON island must not let a stray "</script" terminate the element.
	safe := strings.ReplaceAll(string(bootJSON), "</", `<\/`)
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprintf(w, dashboardHTML, safe)
}

// dashboardHTML is the page template; the single %s receives the bootstrap
// JSON island.
const dashboardHTML = `<!doctype html>
<html lang="en"><head><meta charset="utf-8">
<title>nacho campaign dashboard</title>
<style>
  :root { color-scheme: dark; }
  body { font: 14px/1.45 system-ui, sans-serif; margin: 1.5rem; background: #14171c; color: #d7dce2; }
  h1 { font-size: 1.15rem; margin: 0 0 .25rem; }
  .sub { color: #8b94a1; margin-bottom: 1.2rem; }
  .grid { display: grid; grid-template-columns: repeat(auto-fill, minmax(240px, 1fr)); gap: .8rem; }
  .card { background: #1c2128; border: 1px solid #2b323c; border-radius: 8px; padding: .8rem .95rem; }
  .card h2 { font-size: .72rem; letter-spacing: .06em; text-transform: uppercase; color: #8b94a1; margin: 0 0 .45rem; }
  .big { font-size: 1.55rem; font-variant-numeric: tabular-nums; }
  .unit { font-size: .8rem; color: #8b94a1; margin-left: .25rem; }
  table { border-collapse: collapse; width: 100%%; font-variant-numeric: tabular-nums; }
  td, th { padding: .12rem .4rem .12rem 0; text-align: right; }
  td:first-child, th:first-child { text-align: left; }
  th { color: #8b94a1; font-weight: 500; font-size: .75rem; }
  .meter { height: 8px; background: #2b323c; border-radius: 4px; overflow: hidden; margin-top: .45rem; }
  .meter > div { height: 100%%; background: #4d9fea; width: 0; transition: width .4s; }
  .bars { display: flex; align-items: flex-end; gap: 3px; height: 56px; margin-top: .45rem; }
  .bars > div { flex: 1; background: #4d9fea; min-height: 2px; border-radius: 2px 2px 0 0; }
  .bars > div.inf { background: #e0823d; }
  .lab { display: flex; justify-content: space-between; color: #8b94a1; font-size: .7rem; margin-top: .2rem; }
  .hidden { display: none; }
  #err { color: #e0823d; }
</style></head><body>
<h1>nacho campaign dashboard</h1>
<div class="sub">polling <code>/metrics.json</code> + <code>/status</code> every second
  &middot; <a href="/metrics">/metrics</a> &middot; <a href="/status">/status</a>
  <span id="err"></span></div>
<div class="grid">
  <div class="card"><h2>Workers</h2>
    <div><span class="big" id="busy">0</span><span class="unit">of <span id="workers">0</span> busy</span></div>
    <div class="meter"><div id="occ"></div></div>
    <div class="lab"><span id="experiment"></span><span id="expjobs"></span></div></div>
  <div class="card"><h2>Runs</h2>
    <div><span class="big" id="runs">0</span><span class="unit">completed</span></div>
    <div class="lab"><span id="runrate">0/s</span><span id="started">0 started</span></div></div>
  <div class="card"><h2>Run cache</h2>
    <div><span class="big" id="hits">0</span><span class="unit">hits</span></div>
    <div class="lab"><span id="hitrate">&ndash;</span><span id="bypassed">0 bypassed</span></div></div>
  <div class="card"><h2>Simulated throughput</h2>
    <div><span class="big" id="mips">0</span><span class="unit">sim-MIPS (campaign)</span></div>
    <div class="lab"><span id="simcycles">0 cycles</span><span id="cps">0 cyc/s</span></div></div>
  <div class="card"><h2>sim-MIPS by engine</h2>
    <table id="engines"><tr><th>engine</th><th>runs</th><th>sim-MIPS</th></tr></table></div>
  <div class="card"><h2>Run wall time</h2>
    <div class="bars" id="wallbars"></div>
    <div class="lab"><span id="wallp">p50 &ndash; / p95 &ndash;</span><span id="walln">0 runs</span></div></div>
  <div class="card hidden" id="fuzzcard"><h2>Fuzzing</h2>
    <table>
      <tr><td>programs</td><td id="fz_programs">0</td></tr>
      <tr><td>oracle runs</td><td id="fz_oracle">0</td></tr>
      <tr><td>findings</td><td id="fz_findings">0</td></tr>
      <tr><td>artifacts</td><td id="fz_artifacts">0</td></tr>
    </table></div>
  <div class="card hidden" id="snapcard"><h2>Exhaustive exploration</h2>
    <table>
      <tr><td>windows</td><td id="sn_windows">0</td></tr>
      <tr><td>crash instants</td><td id="sn_instants">0</td></tr>
      <tr><td>fork speedup</td><td id="sn_speedup">&ndash;</td></tr>
    </table></div>
</div>
<script id="bootstrap" type="application/json">%s</script>
<script>
"use strict";
function $(id) { return document.getElementById(id); }
function fmt(n) {
  if (!isFinite(n)) return "0";
  if (n >= 1e9) return (n / 1e9).toFixed(1) + "G";
  if (n >= 1e6) return (n / 1e6).toFixed(1) + "M";
  if (n >= 1e4) return (n / 1e3).toFixed(1) + "k";
  return Math.round(n).toString();
}
function fmtMicros(us) {
  if (us >= 1e6) return (us / 1e6).toFixed(2) + "s";
  if (us >= 1e3) return (us / 1e3).toFixed(1) + "ms";
  return Math.round(us) + "us";
}
// index metrics.json samples: value by name, {label:value} maps, histograms.
function index(samples) {
  var vals = {}, byLabel = {}, hists = {};
  (samples || []).forEach(function (s) {
    var lab = s.labels || {};
    var key = Object.keys(lab).map(function (k) { return k + "=" + lab[k]; }).join(",");
    if (s.histogram) {
      if (!hists[s.name]) hists[s.name] = {};
      hists[s.name][key] = s.histogram;
      return;
    }
    if (key === "") vals[s.name] = s.value;
    if (!byLabel[s.name]) byLabel[s.name] = {};
    byLabel[s.name][key] = s.value;
  });
  return { vals: vals, byLabel: byLabel, hists: hists };
}
// quantile from cumulative buckets (le bounds); +Inf bucket clamps to last bound.
function quantile(h, q) {
  if (!h || !h.count) return NaN;
  var rank = q * h.count, prevCum = 0, prevLe = 0;
  for (var i = 0; i < h.buckets.length; i++) {
    var b = h.buckets[i], le = b.le === "+Inf" ? prevLe : Number(b.le);
    if (b.count >= rank && b.count > prevCum) {
      var frac = (rank - prevCum) / (b.count - prevCum);
      return prevLe + (le - prevLe) * Math.min(1, frac);
    }
    prevCum = b.count; prevLe = le;
  }
  return prevLe;
}
function mergeHists(m) {
  var out = null;
  Object.keys(m || {}).forEach(function (k) {
    var h = m[k];
    if (!out) { out = { count: 0, sum: 0, buckets: h.buckets.map(function (b) { return { le: b.le, count: 0 }; }) }; }
    out.count += h.count; out.sum += h.sum;
    h.buckets.forEach(function (b, i) { if (out.buckets[i]) out.buckets[i].count += b.count; });
  });
  return out;
}
var prev = null;
function render(metrics, status) {
  var m = index(metrics), st = status || {};
  var workers = st.workers || 0, busy = st.busy || 0;
  $("busy").textContent = busy; $("workers").textContent = workers;
  $("occ").style.width = workers ? (100 * busy / workers) + "%%" : "0";
  $("experiment").textContent = st.experiment || "";
  $("expjobs").textContent = st.experiment_jobs ? (st.experiment_jobs_done || 0) + "/" + st.experiment_jobs + " jobs" : "";
  var done = st.runs_completed || 0;
  $("runs").textContent = fmt(done);
  $("started").textContent = fmt(st.runs_started || 0) + " started";
  var now = Date.now();
  if (prev && now > prev.t) {
    $("runrate").textContent = ((done - prev.done) / ((now - prev.t) / 1000)).toFixed(1) + "/s";
  }
  prev = { t: now, done: done };
  var hits = st.cache_hits || 0;
  $("hits").textContent = fmt(hits);
  $("hitrate").textContent = (hits + done) ? (100 * hits / (hits + done)).toFixed(1) + "%% of requests" : "–";
  $("bypassed").textContent = fmt(st.cache_bypassed_probed || 0) + " bypassed";
  $("simcycles").textContent = fmt(st.simulated_cycles || 0) + " cycles";
  $("cps").textContent = fmt(st.simulated_cycles_per_sec || 0) + " cyc/s";
  // per-engine sim-MIPS: instructions / wall-micros (== MIPS), from the
  // engine counters and wall-time histogram sums.
  var eruns = m.byLabel["nacho_harness_engine_runs_total"] || {};
  var einstr = m.byLabel["nacho_harness_engine_instructions_total"] || {};
  var ewall = m.hists["nacho_harness_run_wall_micros"] || {};
  var table = "<tr><th>engine</th><th>runs</th><th>sim-MIPS</th></tr>";
  var totalInstr = 0, totalWall = 0;
  Object.keys(eruns).sort().forEach(function (k) {
    var name = k.replace("engine=", "") || "?";
    var wall = ewall[k] ? ewall[k].sum : 0;
    var instr = einstr[k] || 0;
    totalInstr += instr; totalWall += wall;
    var mips = wall > 0 ? (instr / wall).toFixed(0) : "–";
    table += "<tr><td>" + name + "</td><td>" + fmt(eruns[k]) + "</td><td>" + mips + "</td></tr>";
  });
  $("engines").innerHTML = table;
  $("mips").textContent = totalWall > 0 ? (totalInstr / totalWall).toFixed(0) : "0";
  // wall-time histogram: merged across engines.
  var wh = mergeHists(ewall);
  var bars = $("wallbars");
  bars.innerHTML = "";
  if (wh && wh.count) {
    var per = [], prevC = 0, max = 1;
    wh.buckets.forEach(function (b) { per.push(b.count - prevC); prevC = b.count; });
    per.forEach(function (c) { if (c > max) max = c; });
    per.forEach(function (c, i) {
      var d = document.createElement("div");
      d.style.height = Math.max(3, 100 * c / max) + "%%";
      var bk = wh.buckets[i];
      if (bk.le === "+Inf") d.className = "inf";
      d.title = (i ? "(" + fmtMicros(Number(wh.buckets[i - 1].le)) + ", " : "[0, ") +
        (bk.le === "+Inf" ? "∞" : fmtMicros(Number(bk.le))) + "]: " + c + " runs";
      bars.appendChild(d);
    });
    $("wallp").textContent = "p50 " + fmtMicros(quantile(wh, 0.5)) + " / p95 " + fmtMicros(quantile(wh, 0.95));
    $("walln").textContent = fmt(wh.count) + " runs";
  } else {
    $("wallp").textContent = "p50 – / p95 –";
    $("walln").textContent = "0 runs";
  }
  // optional families: show the cards only when the series exist.
  if ((m.vals["nacho_fuzz_programs_total"] || 0) > 0) {
    $("fuzzcard").classList.remove("hidden");
    $("fz_programs").textContent = fmt(m.vals["nacho_fuzz_programs_total"]);
    $("fz_oracle").textContent = fmt(m.vals["nacho_fuzz_oracle_runs_total"] || 0);
    $("fz_findings").textContent = fmt(m.vals["nacho_fuzz_findings_total"] || 0);
    $("fz_artifacts").textContent = fmt(m.vals["nacho_fuzz_artifacts_total"] || 0);
  }
  if ((m.vals["nacho_snapshot_windows_total"] || 0) > 0) {
    $("snapcard").classList.remove("hidden");
    $("sn_windows").textContent = fmt(m.vals["nacho_snapshot_windows_total"]);
    $("sn_instants").textContent = fmt(m.vals["nacho_snapshot_instants_total"] || 0);
    var sp = m.vals["nacho_snapshot_speedup"] || 0;
    $("sn_speedup").textContent = sp ? sp.toFixed(1) + "×" : "–";
  }
}
var boot = JSON.parse($("bootstrap").textContent);
render(boot.metrics, boot.status);
function poll() {
  Promise.all([
    fetch("/metrics.json").then(function (r) { return r.json(); }),
    fetch("/status").then(function (r) { return r.json(); }),
  ]).then(function (rs) { $("err").textContent = ""; render(rs[0], rs[1]); })
    .catch(function (e) { $("err").textContent = " — poll failed: " + e; });
}
setInterval(poll, 1000);
</script></body></html>
`
