package telemetry

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

func sampleRecords() []Record {
	return []Record{
		{
			V: LedgerVersion, Program: "crc32", System: "wb", Engine: "aot",
			Cache: 1024, Ways: 4, Schedule: "none", Outcome: "ok",
			Cycles: 123456, Instructions: 10000, Checkpoints: 7,
			NVMReadBytes: 4096, NVMWriteBytes: 2048,
			CacheHits: 900, CacheMisses: 100, PowerFailures: 0,
			WallMicros: 1534,
		},
		{
			V: LedgerVersion, Program: "dijkstra", System: "jit", Engine: "ref",
			Cache: 2048, Ways: 8, Schedule: "fixed:5ms", Outcome: "error",
			Error: "exit code 3\twith \"tabs\" and\nnewline", Bypass: true,
			Cycles: 99, WallMicros: 12,
		},
		{
			V: LedgerVersion, Program: "crc32", System: "wb", Engine: "aot",
			Cache: 1024, Ways: 4, Schedule: "none", Outcome: "cache-hit",
			Cycles: 123456, Instructions: 10000, Checkpoints: 7,
			NVMReadBytes: 4096, NVMWriteBytes: 2048,
			CacheHits: 900, CacheMisses: 100,
		},
	}
}

// Write → reload → re-serialize must be byte-stable: the canonical renderer is
// what makes the ledger diffable and content-addressable.
func TestLedgerRoundTripByteStable(t *testing.T) {
	var first bytes.Buffer
	l := NewLedger(&first)
	recs := sampleRecords()
	for i := range recs {
		l.Append(&recs[i])
	}
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := l.Len(); got != uint64(len(recs)) {
		t.Fatalf("Len = %d, want %d", got, len(recs))
	}

	loaded, skipped, err := ReadLedger(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 {
		t.Fatalf("clean ledger reported %d skipped lines", skipped)
	}
	if len(loaded) != len(recs) {
		t.Fatalf("reloaded %d records, want %d", len(loaded), len(recs))
	}
	for i := range recs {
		if loaded[i] != recs[i] {
			t.Errorf("record %d: reloaded %+v, want %+v", i, loaded[i], recs[i])
		}
	}

	var second bytes.Buffer
	l2 := NewLedger(&second)
	for i := range loaded {
		l2.Append(&loaded[i])
	}
	if err := l2.Flush(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatalf("round trip not byte-stable:\nfirst:  %q\nsecond: %q", first.String(), second.String())
	}
}

// The append hot path runs once per harness run; it must not allocate in
// steady state (the line scratch is retained across appends).
func TestLedgerAppendAllocFree(t *testing.T) {
	l := NewLedger(io.Discard)
	rec := sampleRecords()[0]
	l.Append(&rec) // warm up the scratch buffer
	if allocs := testing.AllocsPerRun(1000, func() { l.Append(&rec) }); allocs != 0 {
		t.Fatalf("Append allocates %.0f times per call, want 0", allocs)
	}
}

func TestLedgerNilSafe(t *testing.T) {
	var l *Ledger
	l.Append(&Record{})
	if l.Len() != 0 {
		t.Fatal("nil ledger Len != 0")
	}
	if err := l.Flush(); err != nil {
		t.Fatalf("nil ledger Flush = %v", err)
	}
}

const goodLedgerLine = `{"v":1,"program":"a","system":"wb","engine":"ref","cache":1,"ways":1,"schedule":"none","outcome":"ok","cycles":1,"instructions":1,"checkpoints":0,"nvm_read_bytes":0,"nvm_write_bytes":0,"cache_hits":0,"cache_misses":0,"power_failures":0,"wall_micros":5}`

// A malformed FINAL line is crash truncation (process killed mid-append): the
// load succeeds, the line is counted as skipped, and the good prefix is kept.
func TestReadLedgerCrashTruncatedTail(t *testing.T) {
	for _, tail := range []string{
		`{"v":1, truncated`,       // cut inside a field
		goodLedgerLine[:40],       // cut mid-record
		`garbage`,                 // not JSON at all
		"{\"v\":1, truncated\n",   // truncated but newline made it out
		"{\"v\":1, truncated\n\n", // trailing blank line after the stump
	} {
		in := goodLedgerLine + "\n\n" + tail
		recs, skipped, err := ReadLedger(strings.NewReader(in))
		if err != nil {
			t.Fatalf("tail %q: crash-truncated tail failed the load: %v", tail, err)
		}
		if skipped != 1 {
			t.Errorf("tail %q: skipped = %d, want 1", tail, skipped)
		}
		if len(recs) != 1 {
			t.Errorf("tail %q: kept %d records, want 1", tail, len(recs))
		}
	}
}

// A malformed line with valid records after it is not crash truncation and
// must still fail, naming the offending line.
func TestReadLedgerMalformedMidStream(t *testing.T) {
	in := goodLedgerLine + "\n\n{\"v\":1, truncated\n" + goodLedgerLine + "\n"
	recs, _, err := ReadLedger(strings.NewReader(in))
	if err == nil {
		t.Fatal("ReadLedger accepted mid-stream malformed line")
	}
	if !strings.Contains(err.Error(), "line 3") {
		t.Errorf("error %q does not name line 3", err)
	}
	if len(recs) != 1 {
		t.Fatalf("ReadLedger returned %d good records, want 1", len(recs))
	}
}

type failWriter struct{ failed bool }

func (f *failWriter) Write(p []byte) (int, error) {
	f.failed = true
	return 0, io.ErrClosedPipe
}

func TestLedgerStickyError(t *testing.T) {
	fw := &failWriter{}
	l := NewLedger(fw)
	rec := sampleRecords()[0]
	l.Append(&rec)
	if err := l.Flush(); err == nil {
		t.Fatal("Flush did not surface write error")
	}
	before := l.Len()
	l.Append(&rec) // dropped: error is sticky
	if l.Len() != before {
		t.Fatal("Append after error still counted a record")
	}
}
