package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"sync/atomic"
	"time"
)

// Campaign span tracing: a hierarchical wall-clock timeline of a whole
// campaign — campaign → shard/matrix-cell → run → explorer-window — next to
// the existing single-run simulated-time trace (TraceEventProbe).
//
// The emit hot path mirrors the registry's design constraints: Begin and End
// on an installed tracer are a fixed number of atomic operations into a
// pre-allocated span arena, with no lock, no map, and no allocation (pinned
// by TestSpanEmitAllocFree), so span tracing can stay attached to a
// campaign's every run without perturbing the harness. When the arena fills,
// further spans are counted as dropped rather than grown — a campaign trace
// degrades, it never stalls the workers.
//
// One tracer (and one ledger) can be installed process-wide; every layer that
// emits spans — the harness run path, the experiment regenerator, the fuzz
// campaign, the snapshot explorer — reads the installed tracer through one
// atomic pointer load and treats nil as "tracing off". All Tracer methods are
// nil-receiver-safe for exactly that reason.

// SpanKind classifies one level of the campaign hierarchy.
type SpanKind uint8

const (
	// SpanCampaign is the root: one whole CLI invocation or API campaign.
	SpanCampaign SpanKind = iota
	// SpanCell is one shard of a campaign: an experiment regeneration in
	// nachobench, one fuzzed seed in nachofuzz.
	SpanCell
	// SpanRun is one simulation executed by the harness.
	SpanRun
	// SpanWindow is one checkpoint window enumerated by the snapshot
	// explorer (the fan-out unit of exhaustive mode).
	SpanWindow
	numSpanKinds
)

// String names the kind as rendered in trace exports.
func (k SpanKind) String() string {
	switch k {
	case SpanCampaign:
		return "campaign"
	case SpanCell:
		return "cell"
	case SpanRun:
		return "run"
	case SpanWindow:
		return "window"
	}
	return "span"
}

// SpanID identifies one span within its tracer. The zero value means "no
// span" and is accepted everywhere a parent is: it resolves to the tracer's
// ambient parent (see SetAmbient), so emit sites need no plumbing to attach
// to the level currently in scope.
type SpanID uint64

// span is one arena slot. start doubles as the publication barrier: it is
// stored (release) last in Begin, and any reader that observes start != 0 may
// read the plain fields written before it. end is stored atomically so End
// may be called from a goroutine other than the opener.
type span struct {
	start  atomic.Int64 // unix nanos; 0 = slot not yet published
	end    atomic.Int64 // unix nanos; 0 = still open
	parent SpanID
	kind   SpanKind
	err    bool
	name   string
	system string
	engine string
	n1, n2 uint64 // kind-specific: run = simulated cycles; window = instants, first instant
}

// Tracer records spans into a fixed-capacity arena.
type Tracer struct {
	spans   []span
	next    atomic.Uint64 // slots allocated so far
	dropped atomic.Uint64
	ambient atomic.Uint64 // SpanID used when a parent of 0 is given
}

// DefaultSpanCapacity bounds a tracer's arena when no explicit capacity is
// given: enough for the full paper matrix plus a long fuzz campaign.
const DefaultSpanCapacity = 1 << 16

// NewTracer returns a tracer with capacity arena slots (DefaultSpanCapacity
// if capacity <= 0).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultSpanCapacity
	}
	return &Tracer{spans: make([]span, capacity)}
}

// The process-wide campaign tracer and ledger, consulted by every emit site.
var (
	activeTracer atomic.Pointer[Tracer]
	activeLedger atomic.Pointer[Ledger]
)

// SetActiveTracer installs t as the process-wide campaign tracer (nil
// uninstalls) and returns the previous one. Campaigns are expected to be one
// at a time per process; installation is for CLI/campaign startup, not for
// concurrent use.
func SetActiveTracer(t *Tracer) *Tracer { return activeTracer.Swap(t) }

// ActiveTracer returns the installed campaign tracer, or nil when tracing is
// off. All Tracer methods accept a nil receiver, so emit sites can call
// ActiveTracer().Begin(...) unconditionally.
func ActiveTracer() *Tracer { return activeTracer.Load() }

// SetActiveLedger installs l as the process-wide run ledger (nil uninstalls)
// and returns the previous one.
func SetActiveLedger(l *Ledger) *Ledger { return activeLedger.Swap(l) }

// ActiveLedger returns the installed run ledger, or nil when off.
func ActiveLedger() *Ledger { return activeLedger.Load() }

// Begin opens a span and returns its ID (0 when the tracer is nil or the
// arena is full — every other method treats a 0 ID as a no-op, so emit sites
// never check). parent 0 attaches to the ambient span. name, system and
// engine are stored by reference, not formatted: callers pass strings that
// already exist (program names, systems.Kind, engine names) and the hot path
// allocates nothing.
func (t *Tracer) Begin(parent SpanID, kind SpanKind, name, system, engine string) SpanID {
	if t == nil {
		return 0
	}
	n := t.next.Add(1)
	if n > uint64(len(t.spans)) {
		t.dropped.Add(1)
		return 0
	}
	s := &t.spans[n-1]
	if parent == 0 {
		parent = SpanID(t.ambient.Load())
	}
	s.parent = parent
	s.kind = kind
	s.name = name
	s.system = system
	s.engine = engine
	s.start.Store(time.Now().UnixNano()) // publish
	return SpanID(n)
}

// End closes a span. n1/n2 carry the kind-specific numeric payload (a run's
// simulated cycles; a window's instant count and first instant), err marks
// the span failed in the export.
func (t *Tracer) End(id SpanID, n1, n2 uint64, err bool) {
	if t == nil || id == 0 {
		return
	}
	s := &t.spans[id-1]
	s.n1, s.n2 = n1, n2
	s.err = err
	s.end.Store(time.Now().UnixNano())
}

// SetName replaces a span's display name, for spans whose name is only known
// after they open (an experiment title produced by its builder). Call it
// between Begin and End, from the goroutine that owns the span; snapshots
// (Spans, WriteTrace) are taken after emitters finish.
func (t *Tracer) SetName(id SpanID, name string) {
	if t == nil || id == 0 {
		return
	}
	t.spans[id-1].name = name
}

// SetAmbient sets the span new spans attach to when their parent is 0, and
// returns the previous ambient. The experiment regenerator brackets each
// experiment with it so every run span lands under the right cell without the
// run path knowing about cells; campaigns set it to the root at start.
func (t *Tracer) SetAmbient(id SpanID) SpanID {
	if t == nil {
		return 0
	}
	return SpanID(t.ambient.Swap(uint64(id)))
}

// Dropped reports spans discarded because the arena was full.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.dropped.Load()
}

// Span is one recorded span in a Spans snapshot.
type Span struct {
	ID     SpanID
	Parent SpanID
	Kind   SpanKind
	Name   string
	System string
	Engine string
	Start  int64 // unix nanos
	End    int64 // unix nanos; 0 while still open
	N1, N2 uint64
	Err    bool
}

// Spans snapshots every published span in ID order. Spans still open have
// End 0; their numeric payload is not yet meaningful. Intended for after a
// campaign completes (trace export, the well-formedness tests) — a snapshot
// concurrent with emitters simply misses spans not yet published.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	n := t.next.Load()
	if n > uint64(len(t.spans)) {
		n = uint64(len(t.spans))
	}
	out := make([]Span, 0, n)
	for i := uint64(0); i < n; i++ {
		s := &t.spans[i]
		start := s.start.Load()
		if start == 0 {
			continue // allocated but not yet published
		}
		out = append(out, Span{
			ID:     SpanID(i + 1),
			Parent: s.parent,
			Kind:   s.kind,
			Name:   s.name,
			System: s.system,
			Engine: s.engine,
			Start:  start,
			End:    s.end.Load(),
			N1:     s.n1,
			N2:     s.n2,
			Err:    s.err,
		})
	}
	return out
}

// Track (tid) bases per kind in the campaign trace export. Within one kind,
// overlapping spans (concurrent workers) are spread across lanes so Perfetto
// renders them side by side instead of stacking unrelated slices.
var spanKindTidBase = [numSpanKinds]int{
	SpanCampaign: 1,
	SpanCell:     10,
	SpanRun:      100,
	SpanWindow:   600,
}

// WriteTrace renders the recorded spans as Chrome trace-event JSON — the
// same format as the single-run TraceEventProbe, loadable at ui.perfetto.dev
// — with one process, per-kind track groups, and each span's hierarchy
// (id/parent), system, engine, and numeric payload in args. Timestamps are
// wall-clock microseconds relative to the earliest span. Spans still open
// are closed at the latest observed timestamp so a partial campaign still
// loads. Call it after the campaign completes.
func (t *Tracer) WriteTrace(w io.Writer) error {
	spans := t.Spans()
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.WriteString(`{"displayTimeUnit":"ms","traceEvents":[` + "\n"); err != nil {
		return err
	}
	var base, last int64
	for _, s := range spans {
		if base == 0 || s.Start < base {
			base = s.Start
		}
		if s.Start > last {
			last = s.Start
		}
		if s.End > last {
			last = s.End
		}
	}

	// Assign each span a lane within its kind so concurrent spans never
	// overlap on one track: greedy first-fit over lane end-times, in start
	// order. Deterministic for a given span set.
	order := make([]int, len(spans))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		sa, sb := spans[order[a]], spans[order[b]]
		if sa.Start != sb.Start {
			return sa.Start < sb.Start
		}
		return sa.ID < sb.ID
	})
	laneEnds := make(map[SpanKind][]int64)
	tids := make([]int, len(spans))
	maxLane := make(map[SpanKind]int)
	for _, i := range order {
		s := spans[i]
		end := s.End
		if end == 0 {
			end = last
		}
		lanes := laneEnds[s.Kind]
		lane := -1
		for li, le := range lanes {
			if le <= s.Start {
				lane = li
				break
			}
		}
		if lane < 0 {
			lane = len(lanes)
			lanes = append(lanes, 0)
		}
		lanes[lane] = end
		laneEnds[s.Kind] = lanes
		tids[i] = spanKindTidBase[s.Kind] + lane
		if lane > maxLane[s.Kind] {
			maxLane[s.Kind] = lane
		}
	}

	n := 0
	event := func(format string, args ...any) {
		if n > 0 {
			bw.WriteString(",\n")
		}
		fmt.Fprintf(bw, format, args...)
		n++
	}
	event(`{"ph":"M","pid":1,"name":"process_name","args":{"name":"nacho campaign"}}`)
	for kind := SpanKind(0); kind < numSpanKinds; kind++ {
		for lane := 0; lane <= maxLane[kind]; lane++ {
			if _, ok := laneEnds[kind]; !ok {
				continue
			}
			if lane >= len(laneEnds[kind]) {
				continue
			}
			tid := spanKindTidBase[kind] + lane
			name := kind.String()
			if len(laneEnds[kind]) > 1 {
				name = fmt.Sprintf("%s %d", kind, lane)
			}
			event(`{"ph":"M","pid":1,"tid":%d,"name":"thread_name","args":{"name":%q}}`, tid, name)
			event(`{"ph":"M","pid":1,"tid":%d,"name":"thread_sort_index","args":{"sort_index":%d}}`, tid, tid)
		}
	}
	for i, s := range spans {
		end := s.End
		if end == 0 {
			end = last
		}
		ts := float64(s.Start-base) / 1e3
		dur := float64(end-s.Start) / 1e3
		if dur < 0 {
			dur = 0
		}
		name := s.Name
		if name == "" {
			name = s.Kind.String()
		}
		event(`{"ph":"X","pid":1,"tid":%d,"name":%q,"cat":%q,"ts":%.3f,"dur":%.3f,"args":{"id":%d,"parent":%d,"system":%q,"engine":%q,"n1":%d,"n2":%d,"error":%t}}`,
			tids[i], name, s.Kind, ts, dur, s.ID, s.Parent, s.System, s.Engine, s.N1, s.N2, s.Err)
	}
	if _, err := bw.WriteString("\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}
