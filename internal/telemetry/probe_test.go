package telemetry

import (
	"strings"
	"testing"

	"nacho/internal/sim"
)

// feedOneOfEach drives every probe hook once with distinguishable payloads.
func feedOneOfEach(p sim.Probe) {
	p.OnAccess(sim.AccessEvent{Cycle: 10, Addr: 0x100, Size: 4, Store: false, Class: sim.AccessHit})
	p.OnAccess(sim.AccessEvent{Cycle: 20, Addr: 0x104, Size: 4, Store: true, Class: sim.AccessMiss})
	p.OnAccess(sim.AccessEvent{Cycle: 30, Addr: 0x108, Size: 1, Store: false, Class: sim.AccessNVM})
	p.OnAccess(sim.AccessEvent{Cycle: 40, Addr: 0xfff0, Size: 4, Store: true, Class: sim.AccessMMIO})
	p.OnLineFill(sim.FillEvent{Addr: 0x100})
	p.OnWriteBack(sim.WriteBackEvent{Cycle: 50, Addr: 0x200, Size: 16, Verdict: sim.VerdictSafe})
	p.OnWriteBack(sim.WriteBackEvent{Cycle: 55, Addr: 0x210, Size: 16, Verdict: sim.VerdictUnsafe})
	p.OnCheckpointBegin(sim.CheckpointEvent{Cycle: 60, Lines: 3})
	p.OnCheckpointCommit(sim.CheckpointEvent{
		Cycle: 80, Kind: sim.CheckpointCommit, Lines: 3, Forced: true,
		Interval: 80, IntervalValid: true,
	})
	p.OnCheckpointCommit(sim.CheckpointEvent{Cycle: 90, Kind: sim.CheckpointRegion})
	p.OnPowerFailure(sim.PowerEvent{Cycle: 100})
	p.OnRestore(sim.RestoreEvent{Cycle: 160, Cycles: 60, OK: true})
	p.OnRestore(sim.RestoreEvent{Cycle: 170, Cycles: 5, OK: false})
	p.OnRetire(sim.RetireEvent{Cycle: 10, PC: 0x40})
	p.OnNVM(sim.NVMEvent{Cycle: 30, Addr: 0x108, Bytes: 4, Write: false})
	p.OnNVM(sim.NVMEvent{Cycle: 80, Addr: 0x200, Bytes: 48, Write: true})
}

func TestProbeFeedsRegistry(t *testing.T) {
	r := NewRegistry()
	p := NewProbe(r)
	feedOneOfEach(p)

	want := map[string]uint64{
		"nacho_sim_loads_total":                        2,
		"nacho_sim_stores_total":                       2,
		`nacho_sim_accesses_total{class="hit"}`:        1,
		`nacho_sim_accesses_total{class="miss"}`:       1,
		`nacho_sim_accesses_total{class="nvm"}`:        1,
		`nacho_sim_accesses_total{class="mmio"}`:       1,
		"nacho_sim_line_fills_total":                   1,
		`nacho_sim_writebacks_total{verdict="safe"}`:   1,
		`nacho_sim_writebacks_total{verdict="unsafe"}`: 1,
		`nacho_sim_writebacks_total{verdict="async"}`:  0,
		"nacho_sim_checkpoint_begins_total":            1,
		`nacho_sim_checkpoints_total{kind="commit"}`:   1,
		`nacho_sim_checkpoints_total{kind="region"}`:   1,
		`nacho_sim_checkpoints_total{kind="jit"}`:      0,
		"nacho_sim_checkpoints_forced_total":           1,
		"nacho_sim_checkpoints_adaptive_total":         0,
		"nacho_sim_power_failures_total":               1,
		"nacho_sim_restores_total":                     1,
		"nacho_sim_restores_cold_total":                1,
		"nacho_sim_restore_cycles_total":               65,
		"nacho_sim_instructions_total":                 1,
		"nacho_sim_nvm_reads_total":                    1,
		"nacho_sim_nvm_writes_total":                   1,
		"nacho_sim_nvm_read_bytes_total":               4,
		"nacho_sim_nvm_write_bytes_total":              48,
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	samples := checkPrometheusText(t, sb.String())
	for k, v := range want {
		if samples[k] != float64(v) {
			t.Errorf("%s = %g, want %d", k, samples[k], v)
		}
	}
	if p.ckptLines.Count() != 1 || p.ckptLines.Sum() != 3 {
		t.Errorf("checkpoint lines histogram count=%d sum=%d, want 1/3",
			p.ckptLines.Count(), p.ckptLines.Sum())
	}
	// The region commit must not pollute the commit-interval histogram.
	if p.ckptIntervals.Count() != 1 || p.ckptIntervals.Sum() != 80 {
		t.Errorf("interval histogram count=%d sum=%d, want 1/80",
			p.ckptIntervals.Count(), p.ckptIntervals.Sum())
	}
}
