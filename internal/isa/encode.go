package isa

import "fmt"

// EncodeError describes an instruction that cannot be represented in RV32IM
// machine code, e.g. an out-of-range immediate.
type EncodeError struct {
	In     Instr
	Reason string
}

// Error implements the error interface.
func (e *EncodeError) Error() string {
	return fmt.Sprintf("isa: cannot encode %v: %s", e.In, e.Reason)
}

func fitsSigned(v int32, bits uint) bool {
	min := -(int32(1) << (bits - 1))
	max := int32(1)<<(bits-1) - 1
	return v >= min && v <= max
}

func encR(opc, funct3, funct7 uint32, rd, rs1, rs2 Reg) uint32 {
	return opc | uint32(rd)<<7 | funct3<<12 | uint32(rs1)<<15 | uint32(rs2)<<20 | funct7<<25
}

func encI(opc, funct3 uint32, rd, rs1 Reg, imm int32) uint32 {
	return opc | uint32(rd)<<7 | funct3<<12 | uint32(rs1)<<15 | uint32(imm)&0xFFF<<20
}

func encS(opc, funct3 uint32, rs1, rs2 Reg, imm int32) uint32 {
	u := uint32(imm)
	return opc | u&0x1F<<7 | funct3<<12 | uint32(rs1)<<15 | uint32(rs2)<<20 | u>>5&0x7F<<25
}

func encB(opc, funct3 uint32, rs1, rs2 Reg, imm int32) uint32 {
	u := uint32(imm)
	return opc | u>>11&1<<7 | u>>1&0xF<<8 | funct3<<12 | uint32(rs1)<<15 |
		uint32(rs2)<<20 | u>>5&0x3F<<25 | u>>12&1<<31
}

func encU(opc uint32, rd Reg, imm int32) uint32 {
	return opc | uint32(rd)<<7 | uint32(imm)&0xFFFFF000
}

func encJ(opc uint32, rd Reg, imm int32) uint32 {
	u := uint32(imm)
	return opc | uint32(rd)<<7 | u>>12&0xFF<<12 | u>>11&1<<20 | u>>1&0x3FF<<21 | u>>20&1<<31
}

var branchFunct3 = map[Op]uint32{BEQ: 0, BNE: 1, BLT: 4, BGE: 5, BLTU: 6, BGEU: 7}
var loadFunct3 = map[Op]uint32{LB: 0, LH: 1, LW: 2, LBU: 4, LHU: 5}
var storeFunct3 = map[Op]uint32{SB: 0, SH: 1, SW: 2}
var opImmFunct3 = map[Op]uint32{ADDI: 0, SLTI: 2, SLTIU: 3, XORI: 4, ORI: 6, ANDI: 7}
var opRegFunct = map[Op][2]uint32{ // funct3, funct7
	ADD: {0, 0}, SUB: {0, 0x20}, SLL: {1, 0}, SLT: {2, 0}, SLTU: {3, 0},
	XOR: {4, 0}, SRL: {5, 0}, SRA: {5, 0x20}, OR: {6, 0}, AND: {7, 0},
	MUL: {0, 1}, MULH: {1, 1}, MULHSU: {2, 1}, MULHU: {3, 1},
	DIV: {4, 1}, DIVU: {5, 1}, REM: {6, 1}, REMU: {7, 1},
}

// Encode translates a decoded instruction back into its 32-bit machine word.
func Encode(in Instr) (uint32, error) {
	switch {
	case in.Op == LUI:
		return encU(opcLUI, in.Rd, in.Imm), nil
	case in.Op == AUIPC:
		return encU(opcAUIPC, in.Rd, in.Imm), nil
	case in.Op == JAL:
		if !fitsSigned(in.Imm, 21) || in.Imm&1 != 0 {
			return 0, &EncodeError{in, "jump offset out of range or misaligned"}
		}
		return encJ(opcJAL, in.Rd, in.Imm), nil
	case in.Op == JALR:
		if !fitsSigned(in.Imm, 12) {
			return 0, &EncodeError{in, "immediate out of range"}
		}
		return encI(opcJALR, 0, in.Rd, in.Rs1, in.Imm), nil
	case in.Op.IsBranch():
		if !fitsSigned(in.Imm, 13) || in.Imm&1 != 0 {
			return 0, &EncodeError{in, "branch offset out of range or misaligned"}
		}
		return encB(opcBranch, branchFunct3[in.Op], in.Rs1, in.Rs2, in.Imm), nil
	case in.Op.IsLoad():
		if !fitsSigned(in.Imm, 12) {
			return 0, &EncodeError{in, "immediate out of range"}
		}
		return encI(opcLoad, loadFunct3[in.Op], in.Rd, in.Rs1, in.Imm), nil
	case in.Op.IsStore():
		if !fitsSigned(in.Imm, 12) {
			return 0, &EncodeError{in, "immediate out of range"}
		}
		return encS(opcStore, storeFunct3[in.Op], in.Rs1, in.Rs2, in.Imm), nil
	case in.Op >= ADDI && in.Op <= ANDI:
		if !fitsSigned(in.Imm, 12) {
			return 0, &EncodeError{in, "immediate out of range"}
		}
		return encI(opcOpImm, opImmFunct3[in.Op], in.Rd, in.Rs1, in.Imm), nil
	case in.Op == SLLI, in.Op == SRLI, in.Op == SRAI:
		if in.Imm < 0 || in.Imm > 31 {
			return 0, &EncodeError{in, "shift amount out of range"}
		}
		funct3 := uint32(1)
		funct7 := uint32(0)
		if in.Op != SLLI {
			funct3 = 5
		}
		if in.Op == SRAI {
			funct7 = 0x20
		}
		return encR(opcOpImm, funct3, funct7, in.Rd, in.Rs1, Reg(in.Imm)), nil
	case in.Op >= ADD && in.Op <= AND || in.Op >= MUL && in.Op <= REMU:
		f := opRegFunct[in.Op]
		return encR(opcOp, f[0], f[1], in.Rd, in.Rs1, in.Rs2), nil
	case in.Op == FENCE:
		return opcFence, nil
	case in.Op == ECALL:
		return opcSystem, nil
	case in.Op == EBREAK:
		return opcSystem | 1<<20, nil
	}
	return 0, &EncodeError{in, "unknown operation"}
}
