package isa

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// Known machine-code vectors cross-checked against the RISC-V spec and
// standard assembler output.
var knownVectors = []struct {
	word uint32
	asm  string
	in   Instr
}{
	{0x00000013, "nop", Instr{Op: ADDI, Rd: Zero, Rs1: Zero, Imm: 0}},
	{0x00310093, "addi ra, sp, 3", Instr{Op: ADDI, Rd: RA, Rs1: SP, Imm: 3}},
	{0x00008067, "ret", Instr{Op: JALR, Rd: Zero, Rs1: RA, Imm: 0}},
	{0x00000073, "ecall", Instr{Op: ECALL}},
	{0x00100073, "ebreak", Instr{Op: EBREAK}},
	{0x12345537, "lui a0, 0x12345", Instr{Op: LUI, Rd: A0, Imm: 0x12345 << 12}},
	{0x00C58533, "add a0, a1, a2", Instr{Op: ADD, Rd: A0, Rs1: A1, Rs2: A2}},
	{0xFE000EE3, "beq zero, zero, -4", Instr{Op: BEQ, Rs1: Zero, Rs2: Zero, Imm: -4}},
	{0x0000A503, "lw a0, 0(ra)", Instr{Op: LW, Rd: A0, Rs1: RA, Imm: 0}},
	{0xFEA12E23, "sw a0, -4(sp)", Instr{Op: SW, Rs1: SP, Rs2: A0, Imm: -4}},
	{0x02C5D533, "divu a0, a1, a2", Instr{Op: DIVU, Rd: A0, Rs1: A1, Rs2: A2}},
	{0x0045D493, "srli s1, a1, 4", Instr{Op: SRLI, Rd: S1, Rs1: A1, Imm: 4}},
	{0x4045D493, "srai s1, a1, 4", Instr{Op: SRAI, Rd: S1, Rs1: A1, Imm: 4}},
	{0x008000EF, "jal ra, 8", Instr{Op: JAL, Rd: RA, Imm: 8}},
	{0x00001517, "auipc a0, 1", Instr{Op: AUIPC, Rd: A0, Imm: 1 << 12}},
}

func TestDecodeKnownVectors(t *testing.T) {
	for _, v := range knownVectors {
		got, err := Decode(v.word)
		if err != nil {
			t.Errorf("%s: decode(0x%08x): %v", v.asm, v.word, err)
			continue
		}
		if got != v.in {
			t.Errorf("%s: decode(0x%08x) = %+v, want %+v", v.asm, v.word, got, v.in)
		}
	}
}

func TestEncodeKnownVectors(t *testing.T) {
	for _, v := range knownVectors {
		got, err := Encode(v.in)
		if err != nil {
			t.Errorf("%s: encode(%+v): %v", v.asm, v.in, err)
			continue
		}
		if got != v.word {
			t.Errorf("%s: encode(%+v) = 0x%08x, want 0x%08x", v.asm, v.in, got, v.word)
		}
	}
}

func TestDecodeInvalid(t *testing.T) {
	bad := []uint32{0x00000000, 0xFFFFFFFF, 0x0000707F, 0x0000_1073}
	for _, w := range bad {
		if in, err := Decode(w); err == nil {
			t.Errorf("decode(0x%08x) = %v, want error", w, in)
		}
	}
}

// randomInstr generates a structurally valid RV32IM instruction: only the
// fields meaningful for the op are populated, immediates stay in range.
func randomInstr(r *rand.Rand) Instr {
	ops := []Op{
		LUI, AUIPC, JAL, JALR, BEQ, BNE, BLT, BGE, BLTU, BGEU,
		LB, LH, LW, LBU, LHU, SB, SH, SW,
		ADDI, SLTI, SLTIU, XORI, ORI, ANDI, SLLI, SRLI, SRAI,
		ADD, SUB, SLL, SLT, SLTU, XOR, SRL, SRA, OR, AND,
		ECALL, EBREAK,
		MUL, MULH, MULHSU, MULHU, DIV, DIVU, REM, REMU,
	}
	op := ops[r.Intn(len(ops))]
	reg := func() Reg { return Reg(r.Intn(NumRegs)) }
	imm12 := func() int32 { return int32(r.Intn(1<<12)) - (1 << 11) }
	in := Instr{Op: op}
	switch {
	case op == LUI || op == AUIPC:
		in.Rd = reg()
		in.Imm = int32(uint32(r.Intn(1<<20)) << 12)
	case op == JAL:
		in.Rd = reg()
		in.Imm = (int32(r.Intn(1<<20)) - (1 << 19)) &^ 1
	case op == JALR:
		in.Rd, in.Rs1, in.Imm = reg(), reg(), imm12()
	case op.IsBranch():
		in.Rs1, in.Rs2 = reg(), reg()
		in.Imm = (int32(r.Intn(1<<12)) - (1 << 11)) &^ 1
	case op.IsLoad():
		in.Rd, in.Rs1, in.Imm = reg(), reg(), imm12()
	case op.IsStore():
		in.Rs1, in.Rs2, in.Imm = reg(), reg(), imm12()
	case op >= ADDI && op <= ANDI:
		in.Rd, in.Rs1, in.Imm = reg(), reg(), imm12()
	case op == SLLI || op == SRLI || op == SRAI:
		in.Rd, in.Rs1, in.Imm = reg(), reg(), int32(r.Intn(32))
	case op >= ADD && op <= AND || op >= MUL && op <= REMU:
		in.Rd, in.Rs1, in.Rs2 = reg(), reg(), reg()
	}
	return in
}

// Property: Encode and Decode are inverses over all valid instructions.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 20000,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			vals[0] = reflect.ValueOf(randomInstr(r))
		},
	}
	f := func(in Instr) bool {
		w, err := Encode(in)
		if err != nil {
			t.Fatalf("encode(%+v): %v", in, err)
		}
		back, err := Decode(w)
		if err != nil {
			t.Fatalf("decode(encode(%+v)=0x%08x): %v", in, w, err)
		}
		return back == in
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: any word that decodes successfully (except FENCE, whose fm/pred/
// succ fields are intentionally ignored) re-encodes to the identical word.
func TestDecodeEncodeRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	hits := 0
	for i := 0; i < 400000; i++ {
		w := r.Uint32()
		in, err := Decode(w)
		if err != nil || in.Op == FENCE {
			continue
		}
		hits++
		back, err := Encode(in)
		if err != nil {
			t.Fatalf("re-encode of decoded 0x%08x (%v): %v", w, in, err)
		}
		if back != w {
			t.Fatalf("0x%08x decoded to %v but re-encoded to 0x%08x", w, in, back)
		}
	}
	if hits < 1000 {
		t.Fatalf("only %d random words decoded; generator too weak", hits)
	}
}

func TestRegByName(t *testing.T) {
	cases := []struct {
		name string
		reg  Reg
		ok   bool
	}{
		{"zero", Zero, true}, {"sp", SP, true}, {"fp", S0, true},
		{"a0", A0, true}, {"t6", T6, true}, {"x0", Zero, true},
		{"x31", T6, true}, {"x32", 0, false}, {"bogus", 0, false}, {"", 0, false},
	}
	for _, c := range cases {
		got, ok := RegByName(c.name)
		if ok != c.ok || (ok && got != c.reg) {
			t.Errorf("RegByName(%q) = %v, %v; want %v, %v", c.name, got, ok, c.reg, c.ok)
		}
	}
}

func TestAccessSize(t *testing.T) {
	cases := map[Op]int{LB: 1, LBU: 1, SB: 1, LH: 2, LHU: 2, SH: 2, LW: 4, SW: 4, ADD: 0, JAL: 0}
	for op, want := range cases {
		if got := op.AccessSize(); got != want {
			t.Errorf("%v.AccessSize() = %d, want %d", op, got, want)
		}
	}
}

func TestDisassemblyStrings(t *testing.T) {
	cases := []struct {
		in   Instr
		want string
	}{
		{Instr{Op: ADDI, Rd: A0, Rs1: SP, Imm: -16}, "addi a0, sp, -16"},
		{Instr{Op: LW, Rd: A0, Rs1: SP, Imm: 8}, "lw a0, 8(sp)"},
		{Instr{Op: SW, Rs1: SP, Rs2: A1, Imm: 4}, "sw a1, 4(sp)"},
		{Instr{Op: BEQ, Rs1: A0, Rs2: A1, Imm: -8}, "beq a0, a1, -8"},
		{Instr{Op: MUL, Rd: T0, Rs1: T1, Rs2: T2}, "mul t0, t1, t2"},
		{Instr{Op: EBREAK}, "ebreak"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String(%+v) = %q, want %q", c.in, got, c.want)
		}
	}
}
