// Package isa implements the RV32IM instruction set architecture: register
// naming, instruction representation, machine-code decoding and encoding, and
// disassembly.
//
// The package is the lowest substrate of the NACHO reproduction. The paper
// (Section 5) targets 32-bit RISC-V because of its configurability and open
// nature; this package models the same base ISA (RV32I) plus the M extension
// used by the benchmark programs.
package isa

import "fmt"

// Reg identifies one of the 32 general-purpose RISC-V integer registers.
type Reg uint8

// Architectural registers by ABI name. X0 is hardwired to zero.
const (
	Zero Reg = iota // x0: hardwired zero
	RA              // x1: return address
	SP              // x2: stack pointer
	GP              // x3: global pointer
	TP              // x4: thread pointer
	T0              // x5
	T1              // x6
	T2              // x7
	S0              // x8 / fp
	S1              // x9
	A0              // x10
	A1              // x11
	A2              // x12
	A3              // x13
	A4              // x14
	A5              // x15
	A6              // x16
	A7              // x17
	S2              // x18
	S3              // x19
	S4              // x20
	S5              // x21
	S6              // x22
	S7              // x23
	S8              // x24
	S9              // x25
	S10             // x26
	S11             // x27
	T3              // x28
	T4              // x29
	T5              // x30
	T6              // x31
)

// NumRegs is the number of general-purpose registers in RV32I.
const NumRegs = 32

var regNames = [NumRegs]string{
	"zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2",
	"s0", "s1", "a0", "a1", "a2", "a3", "a4", "a5",
	"a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7",
	"s8", "s9", "s10", "s11", "t3", "t4", "t5", "t6",
}

// String returns the ABI name of the register (e.g. "sp" for x2).
func (r Reg) String() string {
	if int(r) < len(regNames) {
		return regNames[r]
	}
	return fmt.Sprintf("x?%d", uint8(r))
}

// RegByName resolves both ABI names ("sp", "a0", "fp") and numeric names
// ("x2") to a register. The second result reports whether the name was known.
func RegByName(name string) (Reg, bool) {
	if name == "fp" {
		return S0, true
	}
	for i, n := range regNames {
		if n == name {
			return Reg(i), true
		}
	}
	if len(name) >= 2 && name[0] == 'x' {
		var n int
		if _, err := fmt.Sscanf(name[1:], "%d", &n); err == nil && n >= 0 && n < NumRegs {
			return Reg(n), true
		}
	}
	return 0, false
}

// Op enumerates every RV32IM operation the emulator executes. Pseudo
// operations used only by the assembler are not represented here; the
// assembler lowers them to these.
type Op uint8

// RV32I base integer instructions followed by the RV32M extension.
const (
	OpInvalid Op = iota

	// Upper-immediate and jumps.
	LUI
	AUIPC
	JAL
	JALR

	// Conditional branches.
	BEQ
	BNE
	BLT
	BGE
	BLTU
	BGEU

	// Loads.
	LB
	LH
	LW
	LBU
	LHU

	// Stores.
	SB
	SH
	SW

	// Integer register-immediate.
	ADDI
	SLTI
	SLTIU
	XORI
	ORI
	ANDI
	SLLI
	SRLI
	SRAI

	// Integer register-register.
	ADD
	SUB
	SLL
	SLT
	SLTU
	XOR
	SRL
	SRA
	OR
	AND

	// System.
	FENCE
	ECALL
	EBREAK

	// RV32M multiply/divide.
	MUL
	MULH
	MULHSU
	MULHU
	DIV
	DIVU
	REM
	REMU

	numOps
)

var opNames = [...]string{
	OpInvalid: "invalid",
	LUI:       "lui", AUIPC: "auipc", JAL: "jal", JALR: "jalr",
	BEQ: "beq", BNE: "bne", BLT: "blt", BGE: "bge", BLTU: "bltu", BGEU: "bgeu",
	LB: "lb", LH: "lh", LW: "lw", LBU: "lbu", LHU: "lhu",
	SB: "sb", SH: "sh", SW: "sw",
	ADDI: "addi", SLTI: "slti", SLTIU: "sltiu", XORI: "xori", ORI: "ori", ANDI: "andi",
	SLLI: "slli", SRLI: "srli", SRAI: "srai",
	ADD: "add", SUB: "sub", SLL: "sll", SLT: "slt", SLTU: "sltu",
	XOR: "xor", SRL: "srl", SRA: "sra", OR: "or", AND: "and",
	FENCE: "fence", ECALL: "ecall", EBREAK: "ebreak",
	MUL: "mul", MULH: "mulh", MULHSU: "mulhsu", MULHU: "mulhu",
	DIV: "div", DIVU: "divu", REM: "rem", REMU: "remu",
}

// String returns the assembler mnemonic for the operation.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op?%d", uint8(o))
}

// IsLoad reports whether the operation reads data memory.
func (o Op) IsLoad() bool { return o >= LB && o <= LHU }

// IsStore reports whether the operation writes data memory.
func (o Op) IsStore() bool { return o >= SB && o <= SW }

// IsBranch reports whether the operation is a conditional branch.
func (o Op) IsBranch() bool { return o >= BEQ && o <= BGEU }

// IsMem reports whether the operation accesses data memory (load or store).
// Whether a particular access targets NVM, cache, or MMIO is dynamic — it
// depends on the computed address — so memory operations are never eligible
// for statically batched execution.
func (o Op) IsMem() bool { return o.IsLoad() || o.IsStore() }

// IsControl reports whether the operation can divert the program counter or
// end execution: jumps, conditional branches, EBREAK (halt), and ECALL
// (unsupported trap). Control operations terminate basic blocks.
func (o Op) IsControl() bool {
	return o == JAL || o == JALR || o.IsBranch() || o == EBREAK || o == ECALL
}

// IsALU reports whether the operation is straight-line register-only compute:
// it touches neither memory nor control flow, writes at most one register,
// and retires in exactly one base cycle. These are the operations the batched
// fast path may execute without consulting the memory system or the failure
// schedule (FENCE is excluded: it is a system operation, albeit a no-op
// here).
func (o Op) IsALU() bool {
	return o == LUI || o == AUIPC || (o >= ADDI && o <= AND) || (o >= MUL && o <= REMU)
}

// AccessSize returns the number of bytes a load or store transfers
// (1, 2 or 4), and 0 for non-memory operations.
func (o Op) AccessSize() int {
	switch o {
	case LB, LBU, SB:
		return 1
	case LH, LHU, SH:
		return 2
	case LW, SW:
		return 4
	}
	return 0
}

// Instr is a decoded RV32IM instruction. Imm carries the sign-extended
// immediate for I/S/B/U/J formats (for U-format it holds the already-shifted
// upper immediate, i.e. imm<<12).
type Instr struct {
	Op  Op
	Rd  Reg
	Rs1 Reg
	Rs2 Reg
	Imm int32
}

// String disassembles the instruction into conventional assembler syntax.
func (in Instr) String() string {
	switch {
	case in.Op == LUI, in.Op == AUIPC:
		return fmt.Sprintf("%s %s, 0x%x", in.Op, in.Rd, uint32(in.Imm)>>12)
	case in.Op == JAL:
		return fmt.Sprintf("%s %s, %d", in.Op, in.Rd, in.Imm)
	case in.Op == JALR:
		return fmt.Sprintf("%s %s, %d(%s)", in.Op, in.Rd, in.Imm, in.Rs1)
	case in.Op.IsBranch():
		return fmt.Sprintf("%s %s, %s, %d", in.Op, in.Rs1, in.Rs2, in.Imm)
	case in.Op.IsLoad():
		return fmt.Sprintf("%s %s, %d(%s)", in.Op, in.Rd, in.Imm, in.Rs1)
	case in.Op.IsStore():
		return fmt.Sprintf("%s %s, %d(%s)", in.Op, in.Rs2, in.Imm, in.Rs1)
	case in.Op >= ADDI && in.Op <= SRAI:
		return fmt.Sprintf("%s %s, %s, %d", in.Op, in.Rd, in.Rs1, in.Imm)
	case in.Op >= ADD && in.Op <= AND || in.Op >= MUL && in.Op <= REMU:
		return fmt.Sprintf("%s %s, %s, %s", in.Op, in.Rd, in.Rs1, in.Rs2)
	default:
		return in.Op.String()
	}
}
