package isa

import (
	"fmt"
	"sync/atomic"
)

// Major opcodes of the RV32 base encoding (bits 6:0).
const (
	opcLUI    = 0x37
	opcAUIPC  = 0x17
	opcJAL    = 0x6F
	opcJALR   = 0x67
	opcBranch = 0x63
	opcLoad   = 0x03
	opcStore  = 0x23
	opcOpImm  = 0x13
	opcOp     = 0x33
	opcFence  = 0x0F
	opcSystem = 0x73
)

// DecodeError describes a machine word that is not a valid RV32IM instruction.
type DecodeError struct {
	Word uint32
}

// Error implements the error interface.
func (e *DecodeError) Error() string {
	return fmt.Sprintf("isa: cannot decode instruction word 0x%08x", e.Word)
}

func signExtend(v uint32, bits uint) int32 {
	shift := 32 - bits
	return int32(v<<shift) >> shift
}

func immI(w uint32) int32 { return signExtend(w>>20, 12) }

func immS(w uint32) int32 {
	v := (w>>7)&0x1F | (w>>25)<<5
	return signExtend(v, 12)
}

func immB(w uint32) int32 {
	v := (w>>8)&0xF<<1 | (w>>25)&0x3F<<5 | (w>>7)&1<<11 | (w>>31)<<12
	return signExtend(v, 13)
}

func immU(w uint32) int32 { return int32(w & 0xFFFFF000) }

func immJ(w uint32) int32 {
	v := (w>>21)&0x3FF<<1 | (w>>20)&1<<11 | (w>>12)&0xFF<<12 | (w>>31)<<20
	return signExtend(v, 21)
}

// decodeCalls counts Decode invocations process-wide. Decoding is meant to
// happen exactly once per image (emu.DecodeText); the emulator's regression
// test reads DecodeCalls around a run to prove the execution hot loops never
// decode.
var decodeCalls atomic.Uint64

// DecodeCalls reports the cumulative number of Decode invocations in this
// process. Test instrumentation for the zero-decode-in-hot-loop guarantee;
// not meant for production use.
func DecodeCalls() uint64 { return decodeCalls.Load() }

// Decode translates a 32-bit machine word into a decoded instruction.
// It returns a *DecodeError for encodings outside RV32IM.
func Decode(w uint32) (Instr, error) {
	decodeCalls.Add(1)
	rd := Reg(w >> 7 & 0x1F)
	rs1 := Reg(w >> 15 & 0x1F)
	rs2 := Reg(w >> 20 & 0x1F)
	funct3 := w >> 12 & 7
	funct7 := w >> 25

	switch w & 0x7F {
	case opcLUI:
		return Instr{Op: LUI, Rd: rd, Imm: immU(w)}, nil
	case opcAUIPC:
		return Instr{Op: AUIPC, Rd: rd, Imm: immU(w)}, nil
	case opcJAL:
		return Instr{Op: JAL, Rd: rd, Imm: immJ(w)}, nil
	case opcJALR:
		if funct3 != 0 {
			return Instr{}, &DecodeError{w}
		}
		return Instr{Op: JALR, Rd: rd, Rs1: rs1, Imm: immI(w)}, nil
	case opcBranch:
		ops := map[uint32]Op{0: BEQ, 1: BNE, 4: BLT, 5: BGE, 6: BLTU, 7: BGEU}
		op, ok := ops[funct3]
		if !ok {
			return Instr{}, &DecodeError{w}
		}
		return Instr{Op: op, Rs1: rs1, Rs2: rs2, Imm: immB(w)}, nil
	case opcLoad:
		ops := map[uint32]Op{0: LB, 1: LH, 2: LW, 4: LBU, 5: LHU}
		op, ok := ops[funct3]
		if !ok {
			return Instr{}, &DecodeError{w}
		}
		return Instr{Op: op, Rd: rd, Rs1: rs1, Imm: immI(w)}, nil
	case opcStore:
		ops := map[uint32]Op{0: SB, 1: SH, 2: SW}
		op, ok := ops[funct3]
		if !ok {
			return Instr{}, &DecodeError{w}
		}
		return Instr{Op: op, Rs1: rs1, Rs2: rs2, Imm: immS(w)}, nil
	case opcOpImm:
		switch funct3 {
		case 0:
			return Instr{Op: ADDI, Rd: rd, Rs1: rs1, Imm: immI(w)}, nil
		case 2:
			return Instr{Op: SLTI, Rd: rd, Rs1: rs1, Imm: immI(w)}, nil
		case 3:
			return Instr{Op: SLTIU, Rd: rd, Rs1: rs1, Imm: immI(w)}, nil
		case 4:
			return Instr{Op: XORI, Rd: rd, Rs1: rs1, Imm: immI(w)}, nil
		case 6:
			return Instr{Op: ORI, Rd: rd, Rs1: rs1, Imm: immI(w)}, nil
		case 7:
			return Instr{Op: ANDI, Rd: rd, Rs1: rs1, Imm: immI(w)}, nil
		case 1:
			if funct7 != 0 {
				return Instr{}, &DecodeError{w}
			}
			return Instr{Op: SLLI, Rd: rd, Rs1: rs1, Imm: int32(rs2)}, nil
		case 5:
			switch funct7 {
			case 0:
				return Instr{Op: SRLI, Rd: rd, Rs1: rs1, Imm: int32(rs2)}, nil
			case 0x20:
				return Instr{Op: SRAI, Rd: rd, Rs1: rs1, Imm: int32(rs2)}, nil
			}
			return Instr{}, &DecodeError{w}
		}
		return Instr{}, &DecodeError{w}
	case opcOp:
		switch funct7 {
		case 0:
			ops := map[uint32]Op{0: ADD, 1: SLL, 2: SLT, 3: SLTU, 4: XOR, 5: SRL, 6: OR, 7: AND}
			return Instr{Op: ops[funct3], Rd: rd, Rs1: rs1, Rs2: rs2}, nil
		case 0x20:
			switch funct3 {
			case 0:
				return Instr{Op: SUB, Rd: rd, Rs1: rs1, Rs2: rs2}, nil
			case 5:
				return Instr{Op: SRA, Rd: rd, Rs1: rs1, Rs2: rs2}, nil
			}
			return Instr{}, &DecodeError{w}
		case 1:
			ops := map[uint32]Op{0: MUL, 1: MULH, 2: MULHSU, 3: MULHU, 4: DIV, 5: DIVU, 6: REM, 7: REMU}
			return Instr{Op: ops[funct3], Rd: rd, Rs1: rs1, Rs2: rs2}, nil
		}
		return Instr{}, &DecodeError{w}
	case opcFence:
		return Instr{Op: FENCE}, nil
	case opcSystem:
		switch w >> 7 {
		case 0:
			return Instr{Op: ECALL}, nil
		case 1 << 13: // imm=1 in bits 31:20
			return Instr{Op: EBREAK}, nil
		}
		return Instr{}, &DecodeError{w}
	}
	return Instr{}, &DecodeError{w}
}
