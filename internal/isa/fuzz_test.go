package isa

import "testing"

// FuzzDecode checks decode never panics and that every successfully decoded
// word (except FENCE's ignored hint fields) re-encodes to itself.
func FuzzDecode(f *testing.F) {
	for _, v := range knownVectors {
		f.Add(v.word)
	}
	f.Add(uint32(0))
	f.Add(^uint32(0))
	f.Fuzz(func(t *testing.T, w uint32) {
		in, err := Decode(w)
		if err != nil {
			return
		}
		_ = in.String()
		if in.Op == FENCE {
			return
		}
		back, err := Encode(in)
		if err != nil {
			t.Fatalf("re-encode of decoded 0x%08x (%v): %v", w, in, err)
		}
		if back != w {
			t.Fatalf("0x%08x decoded to %v, re-encoded to 0x%08x", w, in, back)
		}
	})
}
