package program

import (
	"fmt"
	"math/bits"
	"strings"
)

// SHA: the MiBench sha workload, upgraded to a full SHA-256 compression
// function over 64 PRNG-generated 16-word blocks (4 KiB of input). The hash
// state H[8] lives in initialized .data (like the C original's context
// struct), so every block performs eight read-modify-writes on it; the
// message schedule W[64] is a 256-byte stack local inside sha_transform, as
// in the C original — the workload the paper's stack tracking benefits most.

var shaK = [64]uint32{
	0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
	0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
	0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
	0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
	0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
	0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
	0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
	0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
}

var shaIV = [8]uint32{
	0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
	0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
}

const shaSeed = 0x5EED0123

// wordTable renders a uint32 slice as assembler .word lines, guaranteeing
// the emulated program and the Go reference share identical constants.
func wordTable(words []uint32) string {
	var b strings.Builder
	for i := 0; i < len(words); i += 8 {
		b.WriteString("\t.word ")
		end := i + 8
		if end > len(words) {
			end = len(words)
		}
		for j := i; j < end; j++ {
			if j > i {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "0x%08x", words[j])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// SHA and SHALong are the sha benchmark and its scaled variant.
var (
	SHA     = register(makeSHA("sha", 64, false))
	SHALong = register(makeSHA("sha-long", 640, true))
)

func makeSHA(name string, shaBlocks int, long bool) *Program {
	return &Program{
		Name:        name,
		Long:        long,
		Description: fmt.Sprintf("SHA-256 compression over %d generated blocks (MiBench sha)", shaBlocks),
		Reference: func() uint32 {
			H := shaIV
			x := uint32(shaSeed)
			for b := 0; b < shaBlocks; b++ {
				var W [64]uint32
				for i := 0; i < 16; i++ {
					x = XorShift32(x)
					W[i] = x
				}
				for t := 16; t < 64; t++ {
					w15, w2 := W[t-15], W[t-2]
					s0 := bits.RotateLeft32(w15, -7) ^ bits.RotateLeft32(w15, -18) ^ (w15 >> 3)
					s1 := bits.RotateLeft32(w2, -17) ^ bits.RotateLeft32(w2, -19) ^ (w2 >> 10)
					W[t] = s0 + W[t-16] + s1 + W[t-7]
				}
				a, bb, c, d, e, f, g, h := H[0], H[1], H[2], H[3], H[4], H[5], H[6], H[7]
				for t := 0; t < 64; t++ {
					S1 := bits.RotateLeft32(e, -6) ^ bits.RotateLeft32(e, -11) ^ bits.RotateLeft32(e, -25)
					ch := (e & f) ^ (^e & g)
					T1 := h + S1 + ch + shaK[t] + W[t]
					S0 := bits.RotateLeft32(a, -2) ^ bits.RotateLeft32(a, -13) ^ bits.RotateLeft32(a, -22)
					maj := (a & bb) ^ (a & c) ^ (bb & c)
					T2 := S0 + maj
					h, g, f, e, d, c, bb, a = g, f, e, d+T1, c, bb, a, T1+T2
				}
				H[0] += a
				H[1] += bb
				H[2] += c
				H[3] += d
				H[4] += e
				H[5] += f
				H[6] += g
				H[7] += h
			}
			return H[0] ^ H[1] ^ H[2] ^ H[3] ^ H[4] ^ H[5] ^ H[6] ^ H[7]
		},
		source: subst(`
	.data
	.balign 4
sha_k:
`+wordTable(shaK[:])+`
sha_h:
`+wordTable(shaIV[:])+`
sha_buf:	.space 64

	.text
_start:
	la   s0, sha_k
	la   s11, sha_h
	la   a2, sha_buf
	li   a0, 0x5EED0123         # rng state
	li   s10, {{BLOCKS}}        # block count
sha_block:
	# "sha_update" phase: stage 16 message words into the context buffer at
	# shallow call depth — the previous transform's W frame is dead here, so
	# stack tracking can discard its dirty lines.
	li   t5, 0
sha_gen:
	call rng_next
	slli t1, t5, 2
	add  t1, a2, t1
	sw   a0, (t1)
	addi t5, t5, 1
	li   t1, 16
	bne  t5, t1, sha_gen
	call sha_transform
	addi s10, s10, -1
	bnez s10, sha_block
	j    sha_done

# sha_transform: compress the 64-byte context buffer into H. The message
# schedule W[64] is a 256-byte stack local, as in the C original.
sha_transform:
	addi sp, sp, -272
	sw   ra, 268(sp)
	mv   s9, sp                 # W base
	# W[0..15] = buf
	li   t5, 0
sha_copy:
	slli t1, t5, 2
	add  t2, a2, t1
	lw   t2, (t2)
	add  t1, s9, t1
	sw   t2, (t1)
	addi t5, t5, 1
	li   t1, 16
	bne  t5, t1, sha_copy

	# Extend W[16..63].
	li   t5, 16
sha_ext:
	slli t1, t5, 2
	add  t1, s9, t1             # &W[t]
	lw   t2, -60(t1)            # W[t-15]
	srli t3, t2, 7
	slli t4, t2, 25
	or   t3, t3, t4
	srli t4, t2, 18
	slli t6, t2, 14
	or   t4, t4, t6
	xor  t3, t3, t4
	srli t4, t2, 3
	xor  t3, t3, t4             # sigma0
	lw   t2, -8(t1)             # W[t-2]
	srli t4, t2, 17
	slli t6, t2, 15
	or   t4, t4, t6
	srli t6, t2, 19
	slli t0, t2, 13
	or   t6, t6, t0
	xor  t4, t4, t6
	srli t6, t2, 10
	xor  t4, t4, t6             # sigma1
	lw   t2, -64(t1)            # W[t-16]
	add  t3, t3, t2
	lw   t2, -28(t1)            # W[t-7]
	add  t3, t3, t2
	add  t3, t3, t4
	sw   t3, (t1)
	addi t5, t5, 1
	li   t1, 64
	bne  t5, t1, sha_ext

	# Load working variables a..h from H.
	lw   s1, 0(s11)
	lw   s2, 4(s11)
	lw   s3, 8(s11)
	lw   s4, 12(s11)
	lw   s5, 16(s11)
	lw   s6, 20(s11)
	lw   s7, 24(s11)
	lw   s8, 28(s11)

	li   t5, 0
sha_round:
	# Sigma1(e)
	srli t1, s5, 6
	slli t2, s5, 26
	or   t1, t1, t2
	srli t2, s5, 11
	slli t3, s5, 21
	or   t2, t2, t3
	xor  t1, t1, t2
	srli t2, s5, 25
	slli t3, s5, 7
	or   t2, t2, t3
	xor  t1, t1, t2
	# Ch(e,f,g)
	and  t2, s5, s6
	not  t3, s5
	and  t3, t3, s7
	xor  t2, t2, t3
	add  t1, t1, t2
	add  t1, t1, s8             # + h
	slli t2, t5, 2
	add  t3, s0, t2
	lw   t4, (t3)               # K[t]
	add  t1, t1, t4
	add  t3, s9, t2
	lw   t4, (t3)               # W[t]
	add  t1, t1, t4             # T1
	# Sigma0(a)
	srli t2, s1, 2
	slli t3, s1, 30
	or   t2, t2, t3
	srli t3, s1, 13
	slli t4, s1, 19
	or   t3, t3, t4
	xor  t2, t2, t3
	srli t3, s1, 22
	slli t4, s1, 10
	or   t3, t3, t4
	xor  t2, t2, t3
	# Maj(a,b,c)
	and  t3, s1, s2
	and  t4, s1, s3
	xor  t3, t3, t4
	and  t4, s2, s3
	xor  t3, t3, t4
	add  t2, t2, t3             # T2
	# Rotate the working variables.
	mv   s8, s7
	mv   s7, s6
	mv   s6, s5
	add  s5, s4, t1
	mv   s4, s3
	mv   s3, s2
	mv   s2, s1
	add  s1, t1, t2
	addi t5, t5, 1
	li   t1, 64
	bne  t5, t1, sha_round

	# H[i] += working variable (eight read-modify-writes).
	lw   t1, 0(s11)
	add  t1, t1, s1
	sw   t1, 0(s11)
	lw   t1, 4(s11)
	add  t1, t1, s2
	sw   t1, 4(s11)
	lw   t1, 8(s11)
	add  t1, t1, s3
	sw   t1, 8(s11)
	lw   t1, 12(s11)
	add  t1, t1, s4
	sw   t1, 12(s11)
	lw   t1, 16(s11)
	add  t1, t1, s5
	sw   t1, 16(s11)
	lw   t1, 20(s11)
	add  t1, t1, s6
	sw   t1, 20(s11)
	lw   t1, 24(s11)
	add  t1, t1, s7
	sw   t1, 24(s11)
	lw   t1, 28(s11)
	add  t1, t1, s8
	sw   t1, 28(s11)
	lw   ra, 268(sp)
	addi sp, sp, 272
	ret

sha_done:
	# Result: xor of the final H words.
	lw   a0, 0(s11)
	lw   t1, 4(s11)
	xor  a0, a0, t1
	lw   t1, 8(s11)
	xor  a0, a0, t1
	lw   t1, 12(s11)
	xor  a0, a0, t1
	lw   t1, 16(s11)
	xor  a0, a0, t1
	lw   t1, 20(s11)
	xor  a0, a0, t1
	lw   t1, 24(s11)
	xor  a0, a0, t1
	lw   t1, 28(s11)
	xor  a0, a0, t1
	li   t0, MMIO_RESULT
	sw   a0, (t0)
	li   t0, MMIO_EXIT
	sw   zero, (t0)
	ebreak
`, map[string]int{"BLOCKS": shaBlocks}),
	}
}
