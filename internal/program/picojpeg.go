package program

import (
	"fmt"
	"math"
)

// Picojpeg: the baseline JPEG decode pipeline — canonical Huffman decoding
// of an entropy-coded coefficient bitstream (DC differences + run-length
// coded AC, JPEG's MINCODE/MAXCODE/VALPTR decode procedure), dezigzag,
// in-place dequantization, an 8x8 integer inverse DCT (basis-matrix
// fixed-point form), and level-shift/clamp. The bitstream and Huffman
// tables are image-initialized data built by the Go encoder in huffman.go;
// the bit-reader state and DC predictor live in a memory context struct
// round-tripped per symbol, like the C original's static globals — the
// read-modify-write pattern that drives WAR trackers.

const jpegSeed = 0x1DC7C0DE

// jpegBasis computes the 8-point IDCT basis matrix in 6-bit fixed point:
// M[n][k] = round(64 * c(k) * cos((2n+1)k*pi/16)), c(0)=1/sqrt2.
func jpegBasis() [64]uint32 {
	var m [64]uint32
	for n := 0; n < 8; n++ {
		for k := 0; k < 8; k++ {
			ck := 1.0
			if k == 0 {
				ck = 1 / math.Sqrt2
			}
			v := math.Round(64 * ck * math.Cos(float64(2*n+1)*float64(k)*math.Pi/16))
			m[n*8+k] = uint32(int32(v))
		}
	}
	return m
}

// jpegZigzag computes the standard JPEG zigzag scan order.
func jpegZigzag() [64]uint32 {
	var out [64]uint32
	idx := 0
	for s := 0; s < 15; s++ {
		lo := 0
		if s > 7 {
			lo = s - 7
		}
		hi := s - lo
		if s%2 == 1 {
			for r := lo; r <= hi && r <= 7; r++ {
				out[idx] = uint32(r*8 + (s - r))
				idx++
			}
		} else {
			for r := hi; r >= lo; r-- {
				if r > 7 {
					continue
				}
				out[idx] = uint32(r*8 + (s - r))
				idx++
			}
		}
	}
	return out
}

// jpegQuant is a synthetic monotone quantization table (the C original reads
// it from the file header).
func jpegQuant() [64]uint32 {
	var q [64]uint32
	for p := 0; p < 64; p++ {
		q[p] = uint32(8 + p&7 + p>>3)
	}
	return q
}

// jpegCoefs generates the image-initialized coefficient buffer in natural
// (dezigzagged) order for all blocks.
func jpegCoefs(jpegBlocks int) []uint32 {
	zz := jpegZigzag()
	out := make([]uint32, 64*jpegBlocks)
	x := uint32(jpegSeed)
	for b := 0; b < jpegBlocks; b++ {
		for i := 0; i < 64; i++ {
			x = XorShift32(x)
			var coef int32
			if i == 0 {
				coef = int32(x&0x3FF) - 512
			} else {
				coef = int32(x&0x7F) - 64
			}
			out[b*64+int(zz[i])] = uint32(coef)
		}
	}
	return out
}

// Picojpeg and PicojpegLong are the picojpeg benchmark and its scaled
// variant.
var (
	Picojpeg     = register(makePicojpeg("picojpeg", 48, false))
	PicojpegLong = register(makePicojpeg("picojpeg-long", 384, true))
)

func makePicojpeg(name string, jpegBlocks int, long bool) *Program {
	basis := jpegBasis()
	quant := jpegQuant()
	table, stream, err := jpegEncode(jpegCoefs(jpegBlocks), jpegBlocks)
	if err != nil {
		panic("picojpeg: " + err.Error())
	}
	zzNat := jpegZigzag()
	zzWords := zzNat[:]
	toWords := func(v []int32) []uint32 {
		out := make([]uint32, len(v))
		for i, x := range v {
			out[i] = uint32(x)
		}
		return out
	}
	maxcode := toWords(table.maxcode[1:])
	mincode := toWords(table.mincode[1:])
	valptr := toWords(table.valptr[1:])
	return &Program{
		Name:        name,
		Long:        long,
		Description: fmt.Sprintf("JPEG block decode kernel: in-place dequant + 8x8 IDCT + clamp, %d blocks", jpegBlocks),
		Reference: func() uint32 {
			var chk uint32
			all := jpegCoefs(jpegBlocks)
			for b := 0; b < jpegBlocks; b++ {
				var blk [64]int32
				for p := 0; p < 64; p++ {
					blk[p] = int32(all[b*64+p]) * int32(quant[p])
				}
				pass := func(base, stride int) {
					var tmp [8]int32
					for n := 0; n < 8; n++ {
						var acc int32
						for k := 0; k < 8; k++ {
							acc += blk[base+k*stride] * int32(basis[n*8+k])
						}
						tmp[n] = acc >> 6
					}
					for n := 0; n < 8; n++ {
						blk[base+n*stride] = tmp[n]
					}
				}
				for r := 0; r < 8; r++ {
					pass(r*8, 1)
				}
				for c := 0; c < 8; c++ {
					pass(c, 8)
				}
				for p := 0; p < 64; p++ {
					v := blk[p]>>3 + 128
					if v < 0 {
						v = 0
					} else if v > 255 {
						v = 255
					}
					chk += uint32(v) * uint32(p+1)
				}
			}
			return chk
		},
		source: subst(`
	.data
	.balign 4
jpeg_basis:
`+wordTable(basis[:])+`
jpeg_quant:
`+wordTable(quant[:])+`
jpeg_zz:
`+wordTable(zzWords[:])+`
jpeg_maxcode:
`+wordTable(maxcode)+`
jpeg_mincode:
`+wordTable(mincode)+`
jpeg_valptr:
`+wordTable(valptr)+`
jpeg_huffval:
`+byteTable(table.huffval)+`
	.balign 4
jpeg_stream:
`+byteTable(stream)+`
	.balign 4
# Decoder context: bytepos, bitbuf, bitcnt, DC predictor — image-initialized
# statics round-tripped per symbol (read-first seed for the WAR cascade).
jpeg_ctx:	.word 0, 0, 0, 0
jpeg_blk:	.space 256

	.text
# jpeg_getsym: decode one Huffman symbol and, when its size nibble is
# non-zero, the JPEG-extended value that follows. Returns a0 = symbol,
# a1 = extended value. Bit-reader state loads from jpeg_ctx at entry and
# stores at exit.
jpeg_getsym:
	addi sp, sp, -8
	sw   ra, 4(sp)
	lw   t1, 0(s7)              # bytepos
	lw   t2, 4(s7)              # bitbuf
	lw   t3, 8(s7)              # bitcnt
	li   t4, 0                  # code
	li   t5, 0                  # len
jgs_loop:
	bnez t3, jgs_have
	add  t6, s9, t1
	lbu  t2, (t6)
	addi t1, t1, 1
	li   t3, 8
jgs_have:
	addi t3, t3, -1
	srl  t6, t2, t3
	andi t6, t6, 1
	slli t4, t4, 1
	or   t4, t4, t6
	addi t5, t5, 1
	la   a2, jpeg_maxcode
	slli a3, t5, 2
	add  a2, a2, a3
	lw   a2, -4(a2)             # maxcode[len-1]
	bltz a2, jgs_loop
	blt  a2, t4, jgs_loop       # code > maxcode: keep reading
	la   a2, jpeg_mincode
	add  a2, a2, a3
	lw   a2, -4(a2)
	sub  a4, t4, a2             # code - mincode
	la   a2, jpeg_valptr
	add  a2, a2, a3
	lw   a2, -4(a2)
	add  a4, a4, a2
	la   a2, jpeg_huffval
	add  a2, a2, a4
	lbu  a0, (a2)               # symbol
	andi a5, a0, 0xF            # size nibble
	li   a1, 0
	beqz a5, jgs_store
	mv   a4, a5
jgs_bits:
	bnez t3, jgs_bhave
	add  t6, s9, t1
	lbu  t2, (t6)
	addi t1, t1, 1
	li   t3, 8
jgs_bhave:
	addi t3, t3, -1
	srl  t6, t2, t3
	andi t6, t6, 1
	slli a1, a1, 1
	or   a1, a1, t6
	addi a4, a4, -1
	bnez a4, jgs_bits
	# JPEG extend: raw < 2^(size-1) means a negative value.
	addi a4, a5, -1
	li   t6, 1
	sll  t6, t6, a4
	bge  a1, t6, jgs_store
	slli t6, t6, 1
	addi t6, t6, -1
	sub  a1, a1, t6
jgs_store:
	sw   t1, 0(s7)
	sw   t2, 4(s7)
	sw   t3, 8(s7)
	lw   ra, 4(sp)
	addi sp, sp, 8
	ret

# One 1-D pass: a1 = element pointer, a2 = byte stride. Uses a stack
# temporary vector like the C original. s8 = basis matrix.
jpeg_1d:
	addi sp, sp, -36
	sw   ra, 32(sp)
	li   t5, 0                  # n
jpeg1d_n:
	li   t6, 0                  # k
	li   a4, 0                  # acc
	mv   a5, a1
jpeg1d_k:
	lw   t1, (a5)
	slli t2, t5, 5
	slli t3, t6, 2
	add  t2, t2, t3
	add  t2, s8, t2
	lw   t2, (t2)               # M[n][k]
	mul  t1, t1, t2
	add  a4, a4, t1
	add  a5, a5, a2
	addi t6, t6, 1
	li   t1, 8
	bne  t6, t1, jpeg1d_k
	srai a4, a4, 6
	slli t1, t5, 2
	add  t1, sp, t1
	sw   a4, (t1)               # tmp[n]
	addi t5, t5, 1
	li   t1, 8
	bne  t5, t1, jpeg1d_n
	li   t5, 0
	mv   a5, a1
jpeg1d_copy:
	slli t1, t5, 2
	add  t1, sp, t1
	lw   t2, (t1)
	sw   t2, (a5)               # write back in place
	add  a5, a5, a2
	addi t5, t5, 1
	li   t1, 8
	bne  t5, t1, jpeg1d_copy
	lw   ra, 32(sp)
	addi sp, sp, 36
	ret

_start:
	la   s8, jpeg_basis
	la   s0, jpeg_zz
	la   s1, jpeg_quant
	la   s2, jpeg_blk
	la   s7, jpeg_ctx
	la   s9, jpeg_stream
	li   s3, {{BLOCKS}}         # blocks
	li   s4, 0                  # checksum
jpeg_block:
	# Clear the block buffer (write-first scratch).
	li   s5, 0
jpeg_zero:
	slli t1, s5, 2
	add  t1, s2, t1
	sw   zero, (t1)
	addi s5, s5, 1
	li   t1, 64
	bne  s5, t1, jpeg_zero

	# DC: predictor accumulates in the context struct.
	call jpeg_getsym
	lw   t1, 12(s7)
	add  t1, t1, a1
	sw   t1, 12(s7)
	sw   t1, (s2)               # zz[0] = position 0

	# AC: run-length decoded into zigzag positions.
	li   s5, 1                  # k
jpeg_ac:
	li   t1, 64
	bge  s5, t1, jpeg_ac_done
	call jpeg_getsym
	beqz a0, jpeg_ac_done       # EOB
	li   t1, 0xF0
	bne  a0, t1, jpeg_ac_val
	addi s5, s5, 16             # ZRL: sixteen zeros
	j    jpeg_ac
jpeg_ac_val:
	srli t1, a0, 4              # run
	add  s5, s5, t1
	slli t1, s5, 2
	add  t1, s0, t1
	lw   t1, (t1)               # p = zz[k]
	slli t1, t1, 2
	add  t1, s2, t1
	sw   a1, (t1)               # blk[p] = value
	addi s5, s5, 1
	j    jpeg_ac
jpeg_ac_done:

	# Dequantize in place.
	li   s5, 0
jpeg_dq:
	slli t3, s5, 2
	add  t4, s1, t3
	lw   t4, (t4)               # quant[p]
	add  t2, s2, t3
	lw   t1, (t2)
	mul  t1, t1, t4
	sw   t1, (t2)               # in place
	addi s5, s5, 1
	li   t1, 64
	bne  s5, t1, jpeg_dq

	# Row passes.
	li   s6, 0
jpeg_rows:
	slli a1, s6, 5
	add  a1, s2, a1
	li   a2, 4
	call jpeg_1d
	addi s6, s6, 1
	li   t1, 8
	bne  s6, t1, jpeg_rows
	# Column passes.
	li   s6, 0
jpeg_cols:
	slli a1, s6, 2
	add  a1, s2, a1
	li   a2, 32
	call jpeg_1d
	addi s6, s6, 1
	li   t1, 8
	bne  s6, t1, jpeg_cols

	# Level shift, clamp, checksum.
	li   s5, 0
jpeg_out:
	slli t1, s5, 2
	add  t1, s2, t1
	lw   t2, (t1)
	srai t2, t2, 3
	addi t2, t2, 128
	bgez t2, jpeg_clo
	li   t2, 0
jpeg_clo:
	li   t1, 255
	ble  t2, t1, jpeg_chi
	mv   t2, t1
jpeg_chi:
	addi t3, s5, 1
	mul  t2, t2, t3
	add  s4, s4, t2
	addi s5, s5, 1
	li   t1, 64
	bne  s5, t1, jpeg_out

	addi s3, s3, -1
	bnez s3, jpeg_block

	mv   a0, s4
	li   t0, MMIO_RESULT
	sw   a0, (t0)
	li   t0, MMIO_EXIT
	sw   zero, (t0)
	ebreak
`, map[string]int{"BLOCKS": jpegBlocks}),
	}
}
