package program

import "fmt"

// Towers: the towers-of-Hanoi workload from riscv-benchmarks. The solver is
// purely recursive with all mutable state in registers and on the stack —
// the paper notes that Clank and Oracle NACHO create no checkpoints on this
// benchmark (Section 6.2), because every stack slot is written before it is
// read. The deep call tree makes towers the stack-tracking showcase: most
// dirty lines belong to dead frames by the time they would be evicted.

const towersSeed = 0x70E45000

// Towers and TowersLong are the towers benchmark and its scaled variant.
var (
	Towers     = register(makeTowers("towers", 14, false))
	TowersLong = register(makeTowers("towers-long", 17, true))
)

func makeTowers(name string, towersDiscs uint32, long bool) *Program {
	return &Program{
		Name:        name,
		Long:        long,
		Description: fmt.Sprintf("recursive towers of Hanoi, %d discs (riscv-benchmarks towers)", towersDiscs),
		Reference: func() uint32 {
			chk := uint32(towersSeed)
			var moves uint32
			var hanoi func(n, from, to, via uint32)
			hanoi = func(n, from, to, via uint32) {
				if n == 0 {
					return
				}
				hanoi(n-1, from, via, to)
				moves++
				chk = XorShift32(chk ^ (n<<16 | from<<8 | to))
				hanoi(n-1, via, to, from)
			}
			hanoi(towersDiscs, 1, 3, 2)
			return chk + moves
		},
		source: subst(`
	.text
# hanoi(a1=n, a2=from, a3=to, a4=via); s4 = checksum, s5 = move count.
hanoi:
	beqz a1, hanoi_ret
	addi sp, sp, -20
	sw   ra, 16(sp)
	sw   a1, 12(sp)
	sw   a2, 8(sp)
	sw   a3, 4(sp)
	sw   a4, 0(sp)
	# hanoi(n-1, from, via, to)
	addi a1, a1, -1
	mv   t1, a3
	mv   a3, a4
	mv   a4, t1
	call hanoi
	# record the move: chk = xorshift32(chk ^ (n<<16|from<<8|to))
	lw   a1, 12(sp)
	lw   a2, 8(sp)
	lw   a3, 4(sp)
	lw   a4, 0(sp)
	addi s5, s5, 1
	slli t1, a1, 16
	slli t2, a2, 8
	or   t1, t1, t2
	or   t1, t1, a3
	xor  s4, s4, t1
	slli t1, s4, 13
	xor  s4, s4, t1
	srli t1, s4, 17
	xor  s4, s4, t1
	slli t1, s4, 5
	xor  s4, s4, t1
	# hanoi(n-1, via, to, from)
	addi a1, a1, -1
	mv   t1, a2
	mv   a2, a4
	mv   a4, t1
	call hanoi
	lw   ra, 16(sp)
	addi sp, sp, 20
hanoi_ret:
	ret

_start:
	li   s4, 0x70E45000         # checksum seed
	li   s5, 0                  # move count
	li   a1, {{DISCS}}
	li   a2, 1
	li   a3, 3
	li   a4, 2
	call hanoi
	add  a0, s4, s5
	li   t0, MMIO_RESULT
	sw   a0, (t0)
	li   t0, MMIO_EXIT
	sw   zero, (t0)
	ebreak
`, map[string]int{"DISCS": int(towersDiscs)}),
	}
}
