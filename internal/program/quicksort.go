package program

import "fmt"

// Quicksort: the paper's quicksort workload — recursive quicksort (Lomuto
// partition) over a 2048-word array. The input array is image-initialized
// data (the MiBench-style "input file"), so the very first swap reads data
// that was never written at runtime — the natural WAR seed — and every swap
// thereafter is a read-then-write. The recursion gives stack tracking
// (Section 4.2.4) dead frames to discard.

const qsSeed = 0x50127AB3

// qsInput generates the image-initialized input array.
func qsInput(qsElems int) []uint32 {
	x := uint32(qsSeed)
	vals := make([]uint32, qsElems)
	for i := range vals {
		x = XorShift32(x)
		vals[i] = x
	}
	return vals
}

// Quicksort and QuicksortLong are the quicksort benchmark and its scaled
// variant.
var (
	Quicksort     = register(makeQuicksort("quicksort", 2048, false))
	QuicksortLong = register(makeQuicksort("quicksort-long", 8192, true))
)

func makeQuicksort(name string, qsElems int, long bool) *Program {
	input := qsInput(qsElems)
	return &Program{
		Name:        name,
		Long:        long,
		Description: fmt.Sprintf("recursive quicksort of %d words of image-initialized data", qsElems),
		Reference: func() uint32 {
			arr := make([]uint32, qsElems)
			copy(arr, qsInput(qsElems))
			var sort func(lo, hi int32)
			sort = func(lo, hi int32) {
				if lo >= hi {
					return
				}
				pivot := arr[hi]
				i := lo - 1
				for j := lo; j < hi; j++ {
					if int32(arr[j]) <= int32(pivot) {
						i++
						arr[i], arr[j] = arr[j], arr[i]
					}
				}
				i++
				arr[i], arr[hi] = arr[hi], arr[i]
				sort(lo, i-1)
				sort(i+1, hi)
			}
			sort(0, int32(qsElems)-1)
			var chk uint32
			for _, v := range arr {
				chk = XorShift32(chk ^ v)
			}
			return chk
		},
		source: subst(`
	.equ QS_N, {{N}}

	.data
	.balign 4
qs_arr:
`+wordTable(input)+`

	.text
# quicksort(a1 = lo index, a2 = hi index), array base in s0.
# Signed compares, Lomuto partition.
qs_sort:
	bge  a1, a2, qs_ret
	addi sp, sp, -16
	sw   ra, 12(sp)
	sw   a1, 8(sp)
	sw   a2, 4(sp)
	slli t1, a2, 2
	add  t1, s0, t1
	lw   t2, (t1)               # pivot = arr[hi]
	addi t3, a1, -1             # i
	mv   t4, a1                 # j
qs_part:
	bge  t4, a2, qs_part_done
	slli t5, t4, 2
	add  t5, s0, t5
	lw   t6, (t5)               # arr[j]
	bgt  t6, t2, qs_noswap
	addi t3, t3, 1
	slli a3, t3, 2
	add  a3, s0, a3
	lw   a4, (a3)               # arr[i]
	sw   t6, (a3)
	sw   a4, (t5)
qs_noswap:
	addi t4, t4, 1
	j    qs_part
qs_part_done:
	addi t3, t3, 1              # p
	slli t5, t3, 2
	add  t5, s0, t5
	lw   t6, (t5)
	lw   a4, (t1)
	sw   a4, (t5)
	sw   t6, (t1)
	sw   t3, 0(sp)              # save p
	lw   a1, 8(sp)              # recurse left: (lo, p-1)
	addi a2, t3, -1
	call qs_sort
	lw   t3, 0(sp)              # recurse right: (p+1, hi)
	addi a1, t3, 1
	lw   a2, 4(sp)
	call qs_sort
	lw   ra, 12(sp)
	addi sp, sp, 16
qs_ret:
	ret

_start:
	la   s0, qs_arr
	li   a1, 0
	li   a2, QS_N-1
	call qs_sort

	# Order-sensitive checksum: chk = xorshift32(chk ^ arr[i]).
	li   s4, 0
	li   t5, 0
qs_chk:
	slli t1, t5, 2
	add  t1, s0, t1
	lw   t1, (t1)
	xor  s4, s4, t1
	slli t1, s4, 13
	xor  s4, s4, t1
	srli t1, s4, 17
	xor  s4, s4, t1
	slli t1, s4, 5
	xor  s4, s4, t1
	addi t5, t5, 1
	li   t1, QS_N
	bne  t5, t1, qs_chk

	mv   a0, s4
	li   t0, MMIO_RESULT
	sw   a0, (t0)
	li   t0, MMIO_EXIT
	sw   zero, (t0)
	ebreak
`, map[string]int{"N": qsElems}),
	}
}
