package program

import (
	"fmt"
	"strings"
)

// AES: the TinyAES workload — AES-128 ECB encryption of a 96-block
// image-initialized input buffer, in place, byte-level like
// kokke/tiny-AES-c's test harness (which encrypts a static array). In-place
// encryption of pre-initialized data makes every SubBytes/AddRoundKey a
// read-then-write of image data — the WAR pattern that keeps address-based
// trackers like Clank checkpointing continuously. The round-key schedule
// lives in memory; the S-box is read-only data.

const aesSeed = 0xAE5CAFE1

// aesSbox computes the AES S-box from first principles (GF(2^8) inverse plus
// the affine transform), so the table cannot be mistyped: the assembly
// source embeds exactly these bytes.
func aesSbox() [256]byte {
	gmul := func(a, b byte) byte {
		var p byte
		for b > 0 {
			if b&1 != 0 {
				p ^= a
			}
			hi := a & 0x80
			a <<= 1
			if hi != 0 {
				a ^= 0x1b
			}
			b >>= 1
		}
		return p
	}
	var box [256]byte
	box[0] = 0x63
	for x := 1; x < 256; x++ {
		// Multiplicative inverse by brute force (build-time only).
		var inv byte
		for y := 1; y < 256; y++ {
			if gmul(byte(x), byte(y)) == 1 {
				inv = byte(y)
				break
			}
		}
		rotl := func(v byte, n uint) byte { return v<<n | v>>(8-n) }
		box[x] = inv ^ rotl(inv, 1) ^ rotl(inv, 2) ^ rotl(inv, 3) ^ rotl(inv, 4) ^ 0x63
	}
	return box
}

var aesRcon = [10]byte{0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36}

// byteTable renders bytes as assembler .byte lines.
func byteTable(bs []byte) string {
	var b strings.Builder
	for i := 0; i < len(bs); i += 16 {
		b.WriteString("\t.byte ")
		end := i + 16
		if end > len(bs) {
			end = len(bs)
		}
		for j := i; j < end; j++ {
			if j > i {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "0x%02x", bs[j])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// aesInput generates the image-initialized plaintext buffer.
func aesInput(aesBlocks int) []byte {
	x := uint32(aesSeed ^ 0x5A5A5A5A)
	buf := make([]byte, 16*aesBlocks)
	for i := range buf {
		x = XorShift32(x)
		buf[i] = byte(x)
	}
	return buf
}

func aesReference(aesBlocks int) uint32 {
	sbox := aesSbox()
	xtime := func(x byte) byte {
		if x&0x80 != 0 {
			return x<<1 ^ 0x1b
		}
		return x << 1
	}
	input := aesInput(aesBlocks)
	var rk [176]byte
	x := uint32(aesSeed)
	for i := 0; i < 16; i++ {
		x = XorShift32(x)
		rk[i] = byte(x)
	}
	for i := 4; i < 44; i++ {
		var t [4]byte
		copy(t[:], rk[(i-1)*4:i*4])
		if i%4 == 0 {
			t[0], t[1], t[2], t[3] = sbox[t[1]], sbox[t[2]], sbox[t[3]], sbox[t[0]]
			t[0] ^= aesRcon[i/4-1]
		}
		for j := 0; j < 4; j++ {
			rk[i*4+j] = rk[(i-4)*4+j] ^ t[j]
		}
	}
	var sum, stats uint32
	for b := 0; b < aesBlocks; b++ {
		stats++
		var st [16]byte
		copy(st[:], input[b*16:])
		addRK := func(off int) {
			for i := 0; i < 16; i++ {
				st[i] ^= rk[off+i]
			}
		}
		subBytes := func() {
			for i := range st {
				st[i] = sbox[st[i]]
			}
		}
		shiftRows := func() {
			st[1], st[5], st[9], st[13] = st[5], st[9], st[13], st[1]
			st[2], st[10] = st[10], st[2]
			st[6], st[14] = st[14], st[6]
			st[3], st[7], st[11], st[15] = st[15], st[3], st[7], st[11]
		}
		mixCols := func() {
			for c := 0; c < 16; c += 4 {
				a0, a1, a2, a3 := st[c], st[c+1], st[c+2], st[c+3]
				t := a0 ^ a1 ^ a2 ^ a3
				st[c] = a0 ^ t ^ xtime(a0^a1)
				st[c+1] = a1 ^ t ^ xtime(a1^a2)
				st[c+2] = a2 ^ t ^ xtime(a2^a3)
				st[c+3] = a3 ^ t ^ xtime(a3^a0)
			}
		}
		addRK(0)
		for r := 1; r <= 9; r++ {
			subBytes()
			shiftRows()
			mixCols()
			addRK(r * 16)
		}
		subBytes()
		shiftRows()
		addRK(160)
		for i := 0; i < 16; i += 4 {
			w := uint32(st[i]) | uint32(st[i+1])<<8 | uint32(st[i+2])<<16 | uint32(st[i+3])<<24
			sum += w
		}
	}
	return sum + stats
}

// AES and AESLong are the aes benchmark and its scaled variant.
var (
	AES     = register(makeAES("aes", 96, false))
	AESLong = register(makeAES("aes-long", 768, true))
)

func makeAES(name string, aesBlocks int, long bool) *Program {
	box := aesSbox()
	return &Program{
		Name:        name,
		Long:        long,
		Description: fmt.Sprintf("AES-128 ECB in place over a %d-block static buffer (TinyAES)", aesBlocks),
		Reference:   func() uint32 { return aesReference(aesBlocks) },
		source: subst(`
	.data
	.balign 4
aes_sbox:
`+byteTable(box[:])+`
aes_rcon:
`+byteTable(aesRcon[:])+`
	.balign 4
aes_input:
`+byteTable(aesInput(aesBlocks))+`
	.balign 4
aes_rk:		.space 176
aes_stats:	.word 0

	.text
# SubBytes: state[i] = sbox[state[i]]
aes_subbytes:
	addi sp, sp, -12
	sw   ra, 8(sp)
	sw   a5, 4(sp)
	sw   a1, 0(sp)
	li   a5, 0
aes_sb_loop:
	add  a1, s2, a5
	lbu  t1, (a1)
	add  t1, s0, t1
	lbu  t1, (t1)
	sb   t1, (a1)
	addi a5, a5, 1
	li   t1, 16
	bne  a5, t1, aes_sb_loop
	lw   ra, 8(sp)
	lw   a5, 4(sp)
	lw   a1, 0(sp)
	addi sp, sp, 12
	ret

# ShiftRows, column-major state layout.
aes_shiftrows:
	addi sp, sp, -12
	sw   ra, 8(sp)
	sw   t5, 4(sp)
	sw   t6, 0(sp)
	lbu  t1, 1(s2)
	lbu  t2, 5(s2)
	sb   t2, 1(s2)
	lbu  t2, 9(s2)
	sb   t2, 5(s2)
	lbu  t2, 13(s2)
	sb   t2, 9(s2)
	sb   t1, 13(s2)
	lbu  t1, 2(s2)
	lbu  t2, 10(s2)
	sb   t2, 2(s2)
	sb   t1, 10(s2)
	lbu  t1, 6(s2)
	lbu  t2, 14(s2)
	sb   t2, 6(s2)
	sb   t1, 14(s2)
	lbu  t1, 3(s2)
	lbu  t2, 15(s2)
	sb   t2, 3(s2)
	lbu  t2, 11(s2)
	sb   t2, 15(s2)
	lbu  t2, 7(s2)
	sb   t2, 11(s2)
	sb   t1, 7(s2)
	lw   ra, 8(sp)
	lw   t5, 4(sp)
	lw   t6, 0(sp)
	addi sp, sp, 12
	ret

# MixColumns, xtime folded in via the 9-bit 0x11b trick.
aes_mixcols:
	addi sp, sp, -12
	sw   ra, 8(sp)
	sw   a3, 4(sp)
	sw   a4, 0(sp)
	li   a5, 0
aes_mc_col:
	add  a1, s2, a5
	lbu  t1, 0(a1)
	lbu  t2, 1(a1)
	lbu  t3, 2(a1)
	lbu  t4, 3(a1)
	xor  t5, t1, t2
	xor  t6, t3, t4
	xor  t5, t5, t6             # t = a0^a1^a2^a3
	xor  t6, t1, t2
	slli t6, t6, 1
	andi a2, t6, 0x100
	beqz a2, aes_mc0
	xori t6, t6, 0x11b
aes_mc0:
	xor  t6, t6, t1
	xor  t6, t6, t5
	sb   t6, 0(a1)
	xor  t6, t2, t3
	slli t6, t6, 1
	andi a2, t6, 0x100
	beqz a2, aes_mc1
	xori t6, t6, 0x11b
aes_mc1:
	xor  t6, t6, t2
	xor  t6, t6, t5
	sb   t6, 1(a1)
	xor  t6, t3, t4
	slli t6, t6, 1
	andi a2, t6, 0x100
	beqz a2, aes_mc2
	xori t6, t6, 0x11b
aes_mc2:
	xor  t6, t6, t3
	xor  t6, t6, t5
	sb   t6, 2(a1)
	xor  t6, t4, t1
	slli t6, t6, 1
	andi a2, t6, 0x100
	beqz a2, aes_mc3
	xori t6, t6, 0x11b
aes_mc3:
	xor  t6, t6, t4
	xor  t6, t6, t5
	sb   t6, 3(a1)
	addi a5, a5, 4
	li   a2, 16
	bne  a5, a2, aes_mc_col
	lw   ra, 8(sp)
	lw   a3, 4(sp)
	lw   a4, 0(sp)
	addi sp, sp, 12
	ret

# AddRoundKey: a1 = byte offset of the round key.
aes_addrk:
	addi sp, sp, -12
	sw   ra, 8(sp)
	sw   a1, 4(sp)
	sw   a2, 0(sp)
	add  a2, s1, a1
	li   a5, 0
aes_ark_loop:
	add  a3, s2, a5
	lbu  t1, (a3)
	add  a4, a2, a5
	lbu  t2, (a4)
	xor  t1, t1, t2
	sb   t1, (a3)
	addi a5, a5, 1
	li   t1, 16
	bne  a5, t1, aes_ark_loop
	lw   ra, 8(sp)
	lw   a1, 4(sp)
	lw   a2, 0(sp)
	addi sp, sp, 12
	ret

_start:
	la   s0, aes_sbox
	la   s1, aes_rk
	la   s2, aes_input          # s2 = current block (encrypted in place)
	li   a0, 0xAE5CAFE1

	# Generate the 16-byte key directly into the schedule.
	li   s5, 0
aes_keygen:
	call rng_next
	add  t1, s1, s5
	sb   a0, (t1)
	addi s5, s5, 1
	li   t1, 16
	bne  s5, t1, aes_keygen

	# Key expansion: words 4..43.
	li   s5, 4
aes_keyexp:
	slli t1, s5, 2
	add  t2, s1, t1             # &rk[i*4]
	lbu  t3, -4(t2)
	lbu  t4, -3(t2)
	lbu  t5, -2(t2)
	lbu  t6, -1(t2)
	andi t0, s5, 3
	bnez t0, aes_ke_nosub
	mv   a1, t3                 # rotate left one byte
	mv   t3, t4
	mv   t4, t5
	mv   t5, t6
	mv   t6, a1
	add  a1, s0, t3
	lbu  t3, (a1)
	add  a1, s0, t4
	lbu  t4, (a1)
	add  a1, s0, t5
	lbu  t5, (a1)
	add  a1, s0, t6
	lbu  t6, (a1)
	srli a1, s5, 2
	la   a2, aes_rcon
	add  a2, a2, a1
	lbu  a2, -1(a2)             # rcon[i/4 - 1]
	xor  t3, t3, a2
aes_ke_nosub:
	lbu  a1, -16(t2)
	xor  a1, a1, t3
	sb   a1, 0(t2)
	lbu  a1, -15(t2)
	xor  a1, a1, t4
	sb   a1, 1(t2)
	lbu  a1, -14(t2)
	xor  a1, a1, t5
	sb   a1, 2(t2)
	lbu  a1, -13(t2)
	xor  a1, a1, t6
	sb   a1, 3(t2)
	addi s5, s5, 1
	li   t1, 44
	bne  s5, t1, aes_keyexp

	la   s7, aes_stats
	li   s3, {{BLOCKS}}         # block count
	li   s4, 0                  # checksum
aes_block:
	lw   t1, (s7)               # stats++ (seed RMW on .data)
	addi t1, t1, 1
	sw   t1, (s7)
	li   a1, 0
	call aes_addrk
	li   s6, 1
aes_round:
	call aes_subbytes
	call aes_shiftrows
	call aes_mixcols
	slli a1, s6, 4
	call aes_addrk
	addi s6, s6, 1
	li   t1, 10
	bne  s6, t1, aes_round
	call aes_subbytes
	call aes_shiftrows
	li   a1, 160
	call aes_addrk
	lw   t1, 0(s2)
	add  s4, s4, t1
	lw   t1, 4(s2)
	add  s4, s4, t1
	lw   t1, 8(s2)
	add  s4, s4, t1
	lw   t1, 12(s2)
	add  s4, s4, t1
	addi s2, s2, 16             # next block, in place
	addi s3, s3, -1
	bnez s3, aes_block

	lw   t1, (s7)
	add  a0, s4, t1
	li   t0, MMIO_RESULT
	sw   a0, (t0)
	li   t0, MMIO_EXIT
	sw   zero, (t0)
	ebreak
`, map[string]int{"BLOCKS": aesBlocks}),
	}
}
