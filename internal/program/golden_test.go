package program

import "testing"

// goldenChecksums pins each benchmark's reference result. A change here
// means the workload itself changed — deliberate workload edits must update
// this table (regenerate with `go test -run TestPrintGoldenValues -v`), and
// accidental drift (PRNG, table, or algorithm changes) fails loudly.
var goldenChecksums = map[string]uint32{
	"adpcm":     0xfc1c779d,
	"aes":       0x05e8f8f0,
	"coremark":  0xce7a2220,
	"crc":       0xa49ffcbf,
	"dijkstra":  0x000020cb,
	"picojpeg":  0x00c4741b,
	"quicksort": 0x84e6e907,
	"sha":       0x656c881d,
	"towers":    0x131a83b3,
}

func TestGoldenChecksumsPinned(t *testing.T) {
	if len(goldenChecksums) != len(All()) {
		t.Fatalf("golden table has %d entries, registry %d", len(goldenChecksums), len(All()))
	}
	for _, p := range All() {
		want, ok := goldenChecksums[p.Name]
		if !ok {
			t.Errorf("no golden value for %s", p.Name)
			continue
		}
		if got := p.Reference(); got != want {
			t.Errorf("%s reference drifted: 0x%08x, pinned 0x%08x", p.Name, got, want)
		}
	}
}
