package program

import "fmt"

// ADPCM: the MiBench adpcm workload — an IMA ADPCM encoder and decoder
// (rawcaudio + rawdaudio) over generated 16-bit samples. The encoder packs
// 4-bit deltas into an output buffer with read-modify-write byte packing
// (the C original's outputbuffer static); the decoder then reconstructs the
// waveform from that stream. Each codec's predictor state (valpred, index)
// lives in an image-initialized context struct re-loaded and stored once per
// 64-sample frame; its first access is a read, which seeds the WAR cascade.

var adpcmStepTable = []uint32{
	7, 8, 9, 10, 11, 12, 13, 14, 16, 17,
	19, 21, 23, 25, 28, 31, 34, 37, 41, 45,
	50, 55, 60, 66, 73, 80, 88, 97, 107, 118,
	130, 143, 157, 173, 190, 209, 230, 253, 279, 307,
	337, 371, 408, 449, 494, 544, 598, 658, 724, 796,
	876, 963, 1060, 1166, 1282, 1411, 1552, 1707, 1878, 2066,
	2272, 2499, 2749, 3024, 3327, 3660, 4026, 4428, 4871, 5358,
	5894, 6484, 7132, 7845, 8630, 9493, 10442, 11487, 12635, 13899,
	15289, 16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767,
}

// adpcmIndexTable is indexed by the 4-bit delta (sign included).
var adpcmIndexTable = []uint32{
	^uint32(0), ^uint32(0), ^uint32(0), ^uint32(0), 2, 4, 6, 8,
	^uint32(0), ^uint32(0), ^uint32(0), ^uint32(0), 2, 4, 6, 8,
}

const (
	adpcmFrame = 64
	adpcmSeed  = 0xADCB1234
)

// ADPCM and ADPCMLong are the adpcm benchmark and its scaled variant.
var (
	ADPCM     = register(makeADPCM("adpcm", 128, false))
	ADPCMLong = register(makeADPCM("adpcm-long", 1536, true))
)

func makeADPCM(name string, adpcmFrames int, long bool) *Program {
	adpcmSamples := adpcmFrames * adpcmFrame
	return &Program{
		Name:        name,
		Long:        long,
		Description: fmt.Sprintf("IMA ADPCM encoder over %d samples in 64-sample frames (MiBench adpcm)", adpcmSamples),
		Reference: func() uint32 {
			var valpred int32
			var index int32
			var chk uint32
			out := make([]byte, adpcmSamples/2)
			sampleIdx := 0
			x := uint32(adpcmSeed)
			for f := 0; f < adpcmSamples/adpcmFrame; f++ {
				vp, idx := valpred, index // frame-local registers
				for i := 0; i < adpcmFrame; i++ {
					x = XorShift32(x)
					val := int32(int16(x))
					step := int32(adpcmStepTable[idx])
					diff := val - vp
					var sign int32
					if diff < 0 {
						sign = 8
						diff = -diff
					}
					var delta int32
					vpdiff := step >> 3
					if diff >= step {
						delta = 4
						diff -= step
						vpdiff += step
					}
					step >>= 1
					if diff >= step {
						delta |= 2
						diff -= step
						vpdiff += step
					}
					step >>= 1
					if diff >= step {
						delta |= 1
						vpdiff += step
					}
					if sign != 0 {
						vp -= vpdiff
					} else {
						vp += vpdiff
					}
					if vp > 32767 {
						vp = 32767
					} else if vp < -32768 {
						vp = -32768
					}
					delta |= sign
					idx += int32(adpcmIndexTable[delta&0xF])
					if idx < 0 {
						idx = 0
					} else if idx > 88 {
						idx = 88
					}
					if sampleIdx%2 == 0 {
						out[sampleIdx/2] = byte(delta << 4)
					} else {
						out[sampleIdx/2] |= byte(delta)
					}
					sampleIdx++
					chk = XorShift32(chk ^ uint32(delta))
				}
				valpred, index = vp, idx // frame-end state store
			}
			// Decode pass (rawdaudio): reconstruct the waveform from the
			// packed deltas with a fresh predictor.
			var dvp, didx int32
			var dchk uint32
			for i := 0; i < adpcmSamples; i++ {
				nib := out[i/2]
				if i%2 == 0 {
					nib >>= 4
				}
				delta := int32(nib & 0xF)
				step := int32(adpcmStepTable[didx])
				vpdiff := step >> 3
				if delta&4 != 0 {
					vpdiff += step
				}
				if delta&2 != 0 {
					vpdiff += step >> 1
				}
				if delta&1 != 0 {
					vpdiff += step >> 2
				}
				if delta&8 != 0 {
					dvp -= vpdiff
				} else {
					dvp += vpdiff
				}
				if dvp > 32767 {
					dvp = 32767
				} else if dvp < -32768 {
					dvp = -32768
				}
				didx += int32(adpcmIndexTable[delta])
				if didx < 0 {
					didx = 0
				} else if didx > 88 {
					didx = 88
				}
				dchk = XorShift32(dchk ^ (uint32(dvp) & 0xFFFF))
			}
			return chk + uint32(valpred) + uint32(index) + dchk
		},
		source: subst(`
	.equ ADPCM_FRAMES, {{FRAMES}}
	.equ ADPCM_FRAME_LEN, 64

	.data
	.balign 4
adpcm_steps:
`+wordTable(adpcmStepTable)+`
adpcm_idxtab:
`+wordTable(adpcmIndexTable)+`
# Codec contexts: valpred, index (image-initialized; read-first seeds).
adpcm_ctx:	.word 0, 0
adpcm_ctx2:	.word 0, 0
adpcm_out:	.space {{OUTBYTES}}

	.text
_start:
	la   s0, adpcm_steps
	la   s1, adpcm_idxtab
	la   s2, adpcm_ctx
	la   s9, adpcm_out
	li   s8, 0                  # packed-sample index
	li   a0, 0xADCB1234
	li   s3, ADPCM_FRAMES
	li   s4, 0                  # checksum
adpcm_frame:
	lw   s5, 0(s2)              # vp
	lw   s6, 4(s2)              # idx
	li   s7, ADPCM_FRAME_LEN
adpcm_sample:
	call rng_next
	slli t1, a0, 16
	srai t1, t1, 16             # val = int16(x)
	slli t2, s6, 2
	add  t2, s0, t2
	lw   t2, (t2)               # step
	sub  t3, t1, s5             # diff = val - vp
	li   t4, 0                  # sign
	bgez t3, adpcm_pos
	li   t4, 8
	neg  t3, t3
adpcm_pos:
	li   t5, 0                  # delta
	srai t6, t2, 3              # vpdiff = step>>3
	blt  t3, t2, adpcm_b2
	li   t5, 4
	sub  t3, t3, t2
	add  t6, t6, t2
adpcm_b2:
	srai t2, t2, 1
	blt  t3, t2, adpcm_b1
	ori  t5, t5, 2
	sub  t3, t3, t2
	add  t6, t6, t2
adpcm_b1:
	srai t2, t2, 1
	blt  t3, t2, adpcm_vp
	ori  t5, t5, 1
	add  t6, t6, t2
adpcm_vp:
	beqz t4, adpcm_add
	sub  s5, s5, t6
	j    adpcm_clamp
adpcm_add:
	add  s5, s5, t6
adpcm_clamp:
	li   t1, 32767
	ble  s5, t1, adpcm_clo
	mv   s5, t1
adpcm_clo:
	li   t1, -32768
	bge  s5, t1, adpcm_idx
	mv   s5, t1
adpcm_idx:
	or   t5, t5, t4             # delta |= sign
	andi t1, t5, 0xF
	slli t1, t1, 2
	add  t1, s1, t1
	lw   t1, (t1)
	add  s6, s6, t1
	bgez s6, adpcm_ihi
	li   s6, 0
adpcm_ihi:
	li   t1, 88
	ble  s6, t1, adpcm_pack
	mv   s6, t1
adpcm_pack:
	# Pack the 4-bit delta (read-modify-write on the output byte, like the
	# C original's outputbuffer/bufferstep statics).
	srli t1, s8, 1
	add  t1, s9, t1
	andi t3, s8, 1
	bnez t3, adpcm_packlo
	slli t4, t5, 4
	sb   t4, (t1)               # high nibble first
	j    adpcm_packed
adpcm_packlo:
	lbu  t2, (t1)
	or   t2, t2, t5
	sb   t2, (t1)
adpcm_packed:
	addi s8, s8, 1
adpcm_chk:
	xor  s4, s4, t5
	slli t1, s4, 13
	xor  s4, s4, t1
	srli t1, s4, 17
	xor  s4, s4, t1
	slli t1, s4, 5
	xor  s4, s4, t1
	addi s7, s7, -1
	bnez s7, adpcm_sample
	sw   s5, 0(s2)              # frame-end state store (WAR)
	sw   s6, 4(s2)
	addi s3, s3, -1
	bnez s3, adpcm_frame

	# ---- decode pass (rawdaudio): reconstruct the waveform ----
	la   s10, adpcm_ctx2
	li   s3, ADPCM_FRAMES
	li   s8, 0                  # sample index
	li   s11, 0                 # decode checksum
adpcm_dframe:
	lw   s5, 0(s10)             # vp (image-initialized; read-first seed)
	lw   s6, 4(s10)             # idx
	li   s7, ADPCM_FRAME_LEN
adpcm_dsample:
	srli t1, s8, 1
	add  t1, s9, t1
	lbu  t1, (t1)
	andi t2, s8, 1
	bnez t2, adpcm_dlow
	srli t1, t1, 4
adpcm_dlow:
	andi t5, t1, 0xF            # delta
	slli t2, s6, 2
	add  t2, s0, t2
	lw   t2, (t2)               # step
	srai t6, t2, 3              # vpdiff = step>>3
	andi t3, t5, 4
	beqz t3, adpcm_d2
	add  t6, t6, t2
adpcm_d2:
	srai t3, t2, 1
	andi t4, t5, 2
	beqz t4, adpcm_d1
	add  t6, t6, t3
adpcm_d1:
	srai t3, t2, 2
	andi t4, t5, 1
	beqz t4, adpcm_dsign
	add  t6, t6, t3
adpcm_dsign:
	andi t4, t5, 8
	beqz t4, adpcm_dadd
	sub  s5, s5, t6
	j    adpcm_dclamp
adpcm_dadd:
	add  s5, s5, t6
adpcm_dclamp:
	li   t1, 32767
	ble  s5, t1, adpcm_dclo
	mv   s5, t1
adpcm_dclo:
	li   t1, -32768
	bge  s5, t1, adpcm_didx
	mv   s5, t1
adpcm_didx:
	slli t1, t5, 2
	add  t1, s1, t1
	lw   t1, (t1)
	add  s6, s6, t1
	bgez s6, adpcm_dihi
	li   s6, 0
adpcm_dihi:
	li   t1, 88
	ble  s6, t1, adpcm_dchk
	mv   s6, t1
adpcm_dchk:
	slli t1, s5, 16
	srli t1, t1, 16             # low 16 bits of the sample
	xor  s11, s11, t1
	slli t1, s11, 13
	xor  s11, s11, t1
	srli t1, s11, 17
	xor  s11, s11, t1
	slli t1, s11, 5
	xor  s11, s11, t1
	addi s8, s8, 1
	addi s7, s7, -1
	bnez s7, adpcm_dsample
	sw   s5, 0(s10)             # frame-end decoder state store (WAR)
	sw   s6, 4(s10)
	addi s3, s3, -1
	bnez s3, adpcm_dframe

	lw   t1, 0(s2)
	lw   t2, 4(s2)
	add  a0, s4, t1
	add  a0, a0, t2
	add  a0, a0, s11
	li   t0, MMIO_RESULT
	sw   a0, (t0)
	li   t0, MMIO_EXIT
	sw   zero, (t0)
	ebreak
`, map[string]int{"FRAMES": adpcmFrames, "OUTBYTES": adpcmSamples / 2}),
	}
}
