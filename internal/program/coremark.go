package program

import "fmt"

// Coremark: the three CoreMark kernels at embedded scale — linked-list
// manipulation (find/reverse/mutate), a 12x12 integer matrix multiply with an
// accumulating result matrix, and a character-driven state machine — iterated
// 16 times with checksums chained across kernels. The list head and the
// state-machine input string are image-initialized data, seeding the WAR
// cascade; list reversal and the counter updates are dense read-modify-write
// traffic.

const (
	cmListNodes = 64
	cmMatN      = 12
)

// cmInput builds the state machine's 256-char input string.
func cmInput() []byte {
	const alphabet = "0123456789+-*. ,;xk"
	x := uint32(0xC0DE1357)
	buf := make([]byte, 256)
	for i := range buf {
		x = XorShift32(x)
		buf[i] = alphabet[x%uint32(len(alphabet))]
	}
	return buf
}

// cmMatInput builds the image-initialized A and B matrices (values -128..127).
func cmMatInput() []uint32 {
	x := uint32(0x3A7B00F5)
	vals := make([]uint32, 2*cmMatN*cmMatN)
	for i := range vals {
		x = XorShift32(x)
		vals[i] = uint32(int32(x&0xFF) - 128)
	}
	return vals
}

// cmClassify maps a character to a state-machine input class 0..4.
func cmClassify(c byte) uint32 {
	switch {
	case c >= '0' && c <= '9':
		return 0
	case c == '+' || c == '-':
		return 1
	case c == '.':
		return 2
	case c == ' ':
		return 3
	default:
		return 4
	}
}

// Coremark and CoremarkLong are the coremark benchmark and its scaled
// variant.
var (
	Coremark     = register(makeCoremark("coremark", 16, false))
	CoremarkLong = register(makeCoremark("coremark-long", 160, true))
)

func makeCoremark(name string, cmIterations int, long bool) *Program {
	input := cmInput()
	mats := cmMatInput()
	return &Program{
		Name:        name,
		Long:        long,
		Description: fmt.Sprintf("CoreMark kernels: list ops + 12x12 matmul + state machine, %d iterations", cmIterations),
		Reference: func() uint32 {
			// Node i: next index (-1 terminates), data.
			next := make([]int32, cmListNodes)
			data := make([]uint32, cmListNodes)
			x := uint32(0x11E77EAD)
			for i := range next {
				next[i] = int32(i) + 1
				x = XorShift32(x)
				data[i] = x & 0xFFFF
			}
			next[cmListNodes-1] = -1
			head := int32(0)

			A := mats[:cmMatN*cmMatN]
			B := mats[cmMatN*cmMatN:]
			C := make([]uint32, cmMatN*cmMatN)

			counts := make([]uint32, 8)
			state := uint32(0)

			var chk uint32
			for it := 0; it < cmIterations; it++ {
				// Kernel 1: reverse the list, then walk it mutating data.
				prev := int32(-1)
				cur := head
				for cur != -1 {
					nxt := next[cur]
					next[cur] = prev
					prev = cur
					cur = nxt
				}
				head = prev
				cur = head
				idx := uint32(0)
				var sum uint32
				for cur != -1 {
					sum += data[cur]
					if idx%7 == 0 {
						data[cur]++
					}
					idx++
					cur = next[cur]
				}
				chk = XorShift32(chk ^ sum)

				// Kernel 1b (every 4th iteration): insertion-sort the list
				// by data value, CoreMark's list-sort operation.
				if (cmIterations-it)&3 == 0 {
					sorted := int32(-1)
					cur = head
					for cur != -1 {
						nxt := next[cur]
						if sorted == -1 || int32(data[cur]) <= int32(data[sorted]) {
							next[cur] = sorted
							sorted = cur
						} else {
							p := sorted
							for next[p] != -1 && int32(data[next[p]]) < int32(data[cur]) {
								p = next[p]
							}
							next[cur] = next[p]
							next[p] = cur
						}
						cur = nxt
					}
					head = sorted
					chk = XorShift32(chk ^ uint32(head))
				}

				// Kernel 2: C += A*B, checksum the diagonal.
				for i := 0; i < cmMatN; i++ {
					for j := 0; j < cmMatN; j++ {
						var acc uint32
						for k := 0; k < cmMatN; k++ {
							acc += A[i*cmMatN+k] * B[k*cmMatN+j]
						}
						C[i*cmMatN+j] += acc
					}
				}
				for d := 0; d < cmMatN; d++ {
					chk = XorShift32(chk ^ C[d*cmMatN+d])
				}
				// Kernel 2b: CoreMark's bit-extract pass — a read-modify-
				// write sweep over the whole result matrix.
				for i := range C {
					C[i] += C[i] >> 3 & 0x7F
				}

				// Kernel 3: state machine over the input string.
				for _, c := range input {
					cls := cmClassify(c)
					counts[cls]++
					state = (state*5 + cls) & 7
				}
				chk = XorShift32(chk ^ state)
			}
			for _, c := range counts {
				chk += c
			}
			return chk
		},
		source: subst(`
	.equ CM_ITER, {{ITER}}
	.equ CM_NODES, 64
	.equ CM_N, 12

	.data
	.balign 4
cm_input:
`+byteTable(input)+`
	.balign 4
cm_mats:
`+wordTable(mats)+`
cm_head:	.word 0
cm_state:	.word 0
cm_next:	.space 256
cm_data:	.space 256
cm_c:		.space 576
cm_counts:	.space 32

	.text
_start:
	la   s0, cm_next
	la   s1, cm_data
	la   s2, cm_mats            # A, then B at +576
	la   s3, cm_c
	la   s5, cm_counts
	la   s6, cm_input
	la   s7, cm_head
	la   s8, cm_state

	# Build the list: next[i] = i+1 (last -1), data[i] = rng & 0xFFFF.
	li   a0, 0x11E77EAD
	li   t5, 0
cm_build:
	slli t1, t5, 2
	add  t2, s0, t1
	addi t3, t5, 1
	sw   t3, (t2)
	call rng_next
	slli t2, a0, 16
	srli t2, t2, 16
	add  t3, s1, t1
	sw   t2, (t3)
	addi t5, t5, 1
	li   t1, CM_NODES
	bne  t5, t1, cm_build
	li   t1, -1
	sw   t1, 252(s0)            # next[63] = -1

	li   s4, 0                  # checksum
	li   s9, CM_ITER
cm_iter:
	# ---- Kernel 1: list reverse + walk (own frame) ----
	addi sp, sp, -16
	sw   ra, 12(sp)
	sw   s9, 8(sp)
	li   t3, -1                 # prev
	lw   t4, (s7)               # cur = head (image-initialized read)
cm_rev:
	li   t1, -1
	beq  t4, t1, cm_rev_done
	slli t1, t4, 2
	add  t1, s0, t1
	lw   t2, (t1)               # nxt = next[cur]
	sw   t3, (t1)               # next[cur] = prev (RMW)
	mv   t3, t4
	mv   t4, t2
	j    cm_rev
cm_rev_done:
	sw   t3, (s7)               # head = prev
	mv   t4, t3
	li   t5, 0                  # idx
	li   t6, 0                  # sum
cm_walk:
	li   t1, -1
	beq  t4, t1, cm_walk_done
	slli t1, t4, 2
	add  t2, s1, t1
	lw   a1, (t2)
	add  t6, t6, a1
	# every 7th node: data++
	li   a2, 7
	remu a3, t5, a2
	bnez a3, cm_walk_next
	addi a1, a1, 1
	sw   a1, (t2)
cm_walk_next:
	add  t1, s0, t1
	lw   t4, (t1)
	addi t5, t5, 1
	j    cm_walk
cm_walk_done:
	xor  s4, s4, t6
	slli t1, s4, 13
	xor  s4, s4, t1
	srli t1, s4, 17
	xor  s4, s4, t1
	slli t1, s4, 5
	xor  s4, s4, t1

	# ---- Kernel 1b: insertion-sort the list by data (every 4th iter) ----
	andi t1, s9, 3
	bnez t1, cm_sort_done
	li   t3, -1                 # sorted
	lw   t4, (s7)               # cur = head
cm_sort_loop:
	li   t1, -1
	beq  t4, t1, cm_sort_fin
	slli t1, t4, 2
	add  t1, s0, t1
	lw   t5, (t1)               # nxt = next[cur]
	slli a1, t4, 2
	add  a1, s1, a1
	lw   a1, (a1)               # data[cur]
	li   t1, -1
	beq  t3, t1, cm_ins_head
	slli a2, t3, 2
	add  a2, s1, a2
	lw   a2, (a2)               # data[sorted]
	ble  a1, a2, cm_ins_head
	mv   t6, t3                 # p = sorted
cm_scan:
	slli a3, t6, 2
	add  a3, s0, a3
	lw   a4, (a3)               # next[p]
	li   t1, -1
	beq  a4, t1, cm_ins_after
	slli a2, a4, 2
	add  a2, s1, a2
	lw   a2, (a2)               # data[next[p]]
	bge  a2, a1, cm_ins_after
	mv   t6, a4
	j    cm_scan
cm_ins_after:
	slli a3, t6, 2
	add  a3, s0, a3
	lw   a4, (a3)
	slli t1, t4, 2
	add  t1, s0, t1
	sw   a4, (t1)               # next[cur] = next[p]
	sw   t4, (a3)               # next[p] = cur
	j    cm_ins_next
cm_ins_head:
	slli t1, t4, 2
	add  t1, s0, t1
	sw   t3, (t1)               # next[cur] = sorted
	mv   t3, t4                 # sorted = cur
cm_ins_next:
	mv   t4, t5
	j    cm_sort_loop
cm_sort_fin:
	sw   t3, (s7)               # head = sorted
	lw   t1, (s7)
	xor  s4, s4, t1
	slli t1, s4, 13
	xor  s4, s4, t1
	srli t1, s4, 17
	xor  s4, s4, t1
	slli t1, s4, 5
	xor  s4, s4, t1
cm_sort_done:
	lw   s9, 8(sp)
	lw   ra, 12(sp)
	addi sp, sp, 16

	# ---- Kernel 2: C += A*B (own frame) ----
	addi sp, sp, -16
	sw   ra, 12(sp)
	sw   s9, 8(sp)
	li   t3, 0                  # i
cm_mm_i:
	li   t4, 0                  # j
cm_mm_j:
	li   t6, 0                  # acc
	li   t5, 0                  # k
cm_mm_k:
	# A[i*12+k]
	li   a1, CM_N
	mul  a2, t3, a1
	add  a2, a2, t5
	slli a2, a2, 2
	add  a2, s2, a2
	lw   a2, (a2)
	# B[k*12+j]
	mul  a3, t5, a1
	add  a3, a3, t4
	slli a3, a3, 2
	add  a3, s2, a3
	lw   a3, 576(a3)
	mul  a2, a2, a3
	add  t6, t6, a2
	addi t5, t5, 1
	bne  t5, a1, cm_mm_k
	# C[i*12+j] += acc
	mul  a2, t3, a1
	add  a2, a2, t4
	slli a2, a2, 2
	add  a2, s3, a2
	lw   a3, (a2)
	add  a3, a3, t6
	sw   a3, (a2)
	addi t4, t4, 1
	bne  t4, a1, cm_mm_j
	addi t3, t3, 1
	bne  t3, a1, cm_mm_i
	# checksum the diagonal
	li   t5, 0
cm_mm_diag:
	li   a1, CM_N
	mul  t1, t5, a1
	add  t1, t1, t5
	slli t1, t1, 2
	add  t1, s3, t1
	lw   t1, (t1)
	xor  s4, s4, t1
	slli t1, s4, 13
	xor  s4, s4, t1
	srli t1, s4, 17
	xor  s4, s4, t1
	slli t1, s4, 5
	xor  s4, s4, t1
	addi t5, t5, 1
	bne  t5, a1, cm_mm_diag
	# ---- Kernel 2b: bit-extract sweep over C (read-modify-write) ----
	li   t5, 0
	li   a1, 144                # 12*12 cells
cm_mm_bx:
	slli t1, t5, 2
	add  t1, s3, t1
	lw   t2, (t1)
	srli t3, t2, 3
	andi t3, t3, 0x7F
	add  t2, t2, t3
	sw   t2, (t1)
	addi t5, t5, 1
	bne  t5, a1, cm_mm_bx
	lw   s9, 8(sp)
	lw   ra, 12(sp)
	addi sp, sp, 16

	# ---- Kernel 3: state machine (own frame) ----
	addi sp, sp, -16
	sw   ra, 12(sp)
	sw   s9, 8(sp)
	li   t5, 0                  # char index
cm_sm:
	add  t1, s6, t5
	lbu  t2, (t1)               # c
	# classify into t3
	li   t3, 0
	li   t1, '0'
	blt  t2, t1, cm_sm_nondigit
	li   t1, '9'
	ble  t2, t1, cm_sm_counted
cm_sm_nondigit:
	li   t3, 1
	li   t1, '+'
	beq  t2, t1, cm_sm_counted
	li   t1, '-'
	beq  t2, t1, cm_sm_counted
	li   t3, 2
	li   t1, '.'
	beq  t2, t1, cm_sm_counted
	li   t3, 3
	li   t1, ' '
	beq  t2, t1, cm_sm_counted
	li   t3, 4
cm_sm_counted:
	slli t1, t3, 2
	add  t1, s5, t1
	lw   t2, (t1)               # counts[cls]++ (RMW)
	addi t2, t2, 1
	sw   t2, (t1)
	lw   t2, (s8)               # state = (state*5 + cls) & 7 (RMW)
	slli t1, t2, 2
	add  t2, t2, t1
	add  t2, t2, t3
	andi t2, t2, 7
	sw   t2, (s8)
	addi t5, t5, 1
	li   t1, 256
	bne  t5, t1, cm_sm
	lw   t1, (s8)
	xor  s4, s4, t1
	slli t1, s4, 13
	xor  s4, s4, t1
	srli t1, s4, 17
	xor  s4, s4, t1
	slli t1, s4, 5
	xor  s4, s4, t1
	lw   s9, 8(sp)
	lw   ra, 12(sp)
	addi sp, sp, 16

	addi s9, s9, -1
	bnez s9, cm_iter

	# chk += counts
	li   t5, 0
cm_fin:
	slli t1, t5, 2
	add  t1, s5, t1
	lw   t1, (t1)
	add  s4, s4, t1
	addi t5, t5, 1
	li   t1, 8
	bne  t5, t1, cm_fin

	mv   a0, s4
	li   t0, MMIO_RESULT
	sw   a0, (t0)
	li   t0, MMIO_EXIT
	sw   zero, (t0)
	ebreak
`, map[string]int{"ITER": cmIterations}),
	}
}
