package program

import (
	"testing"
)

// TestPrintGoldenValues regenerates the golden table (run with -v when a
// benchmark's workload intentionally changes, and update golden_test.go).
func TestPrintGoldenValues(t *testing.T) {
	for _, p := range All() {
		t.Logf("%q: 0x%08x,", p.Name, p.Reference())
	}
}
