// Package program contains the benchmark suite of paper Section 6.1.1,
// re-created for this reproduction: CoreMark's three kernels, the MiBench
// CRC/SHA/Dijkstra/adpcm workloads, towers, quicksort, TinyAES, and a
// picojpeg-style IDCT kernel. Each benchmark is a hand-written RV32IM
// assembly source paired with a pure-Go reference implementation of exactly
// the same computation; the emulated program must report the reference's
// checksum through the RESULT MMIO register (see DESIGN.md's substitution
// table for why hand-written assembly replaces clang -O3).
//
// All benchmarks share one runtime convention:
//
//	RESULT (0x000F0004)  - store the final checksum here
//	EXIT   (0x000F0000)  - store 0 here to halt
//
// Input data is generated in place by an xorshift32 PRNG implemented
// identically in assembly and in the reference, so sources stay compact and
// the workloads are deterministic.
package program

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"nacho/internal/asm"
	"nacho/internal/emu"
)

// Memory layout shared by all benchmarks (see DESIGN.md).
const (
	TextBase       = 0x0001_0000
	DataBase       = 0x0002_0000
	StackTop       = 0x000A_0000
	CheckpointBase = 0x000E_0000
)

// header is prepended to every benchmark source: MMIO addresses and the
// xorshift32 PRNG step used for input generation.
//
// rng_next: a0 = new state (callers keep the state in a saved register).
const header = `
	.equ MMIO_RESULT, 0x000F0004
	.equ MMIO_EXIT,   0x000F0000
	.equ MMIO_PUTC,   0x000F0008
	.text
	j _start

# xorshift32 step: a0 = next(a0). Clobbers t0 only.
rng_next:
	slli t0, a0, 13
	xor  a0, a0, t0
	srli t0, a0, 17
	xor  a0, a0, t0
	slli t0, a0, 5
	xor  a0, a0, t0
	ret
`

// headerWords is the number of instructions the header emits before _start's
// code (the leading jump plus the six-instruction rng_next body).
//
// Kept as documentation; the assembler resolves _start regardless.
const headerWords = 8

// XorShift32 is the reference PRNG matching rng_next.
func XorShift32(x uint32) uint32 {
	x ^= x << 13
	x ^= x >> 17
	x ^= x << 5
	return x
}

// Program is one benchmark: assembly source plus its reference model.
type Program struct {
	Name        string
	Description string
	source      string // body following the common header
	// Reference computes the expected RESULT checksum in pure Go.
	Reference func() uint32
	// Long marks the scaled-up variant (roughly 10x the work) used for
	// long-on-duration intermittent experiments; Names/All exclude it.
	Long bool
}

// Source returns the complete assembly source.
func (p *Program) Source() string { return header + p.source }

// Image is an assembled, decoded, and pre-analyzed benchmark ready to load
// into a machine. Text carries the batched-execution analysis alongside the
// instructions; it is computed once here and shared by every run of the
// image.
type Image struct {
	Program  *Program
	Segments []asm.Segment
	Text     *emu.Text
	Entry    uint32
	Expected uint32
}

var (
	buildMu    sync.Mutex
	buildCache = map[string]*Image{}
)

// Build assembles (with caching — images are immutable) and decodes the
// benchmark.
func (p *Program) Build() (*Image, error) {
	buildMu.Lock()
	defer buildMu.Unlock()
	if img, ok := buildCache[p.Name]; ok {
		return img, nil
	}
	prog, err := asm.Assemble(p.Source(), asm.Options{TextBase: TextBase, DataBase: DataBase})
	if err != nil {
		return nil, fmt.Errorf("program %s: %w", p.Name, err)
	}
	var text *emu.Text
	for _, seg := range prog.Segments {
		if seg.Addr == TextBase {
			text, err = emu.DecodeText(seg.Data)
			if err != nil {
				return nil, fmt.Errorf("program %s: %w", p.Name, err)
			}
		}
	}
	if text == nil {
		return nil, fmt.Errorf("program %s: no text segment", p.Name)
	}
	img := &Image{
		Program:  p,
		Segments: prog.Segments,
		Text:     text,
		Entry:    prog.Entry,
		Expected: p.Reference(),
	}
	buildCache[p.Name] = img
	return img, nil
}

var registry = map[string]*Program{}

func register(p *Program) *Program {
	if _, dup := registry[p.Name]; dup {
		panic("program: duplicate benchmark " + p.Name)
	}
	registry[p.Name] = p
	return p
}

// ByName looks a benchmark up (standard and -long variants).
func ByName(name string) (*Program, bool) {
	p, ok := registry[name]
	return p, ok
}

// Names returns the standard benchmark names (the paper's suite), sorted.
func Names() []string {
	names := make([]string, 0, len(registry))
	for n, p := range registry {
		if !p.Long {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names
}

// LongNames returns the scaled-up variants, sorted.
func LongNames() []string {
	var names []string
	for n, p := range registry {
		if p.Long {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names
}

// All returns the standard benchmarks in name order.
func All() []*Program {
	var out []*Program
	for _, n := range Names() {
		out = append(out, registry[n])
	}
	return out
}

// FromSource assembles a caller-supplied RV32IM program against the standard
// memory layout (text 0x10000, data 0x20000, stack top 0xA0000, MMIO exit at
// 0xF0000 — see package emu). The source must define its own _start; the
// benchmark header (PRNG, MMIO symbols) is not prepended. The returned
// image has no reference checksum.
func FromSource(name, source string) (*Image, error) {
	prog, err := asm.Assemble(source, asm.Options{TextBase: TextBase, DataBase: DataBase})
	if err != nil {
		return nil, fmt.Errorf("program %s: %w", name, err)
	}
	var text *emu.Text
	for _, seg := range prog.Segments {
		if seg.Addr == TextBase {
			text, err = emu.DecodeText(seg.Data)
			if err != nil {
				return nil, fmt.Errorf("program %s: %w", name, err)
			}
		}
	}
	if text == nil {
		return nil, fmt.Errorf("program %s: no text segment", name)
	}
	return &Image{
		Program:  &Program{Name: name, Description: "user program"},
		Segments: prog.Segments,
		Text:     text,
		Entry:    prog.Entry,
	}, nil
}

// subst expands {{KEY}} placeholders in assembly templates with integer
// values — how the standard and -long benchmark variants share one source.
func subst(src string, kv map[string]int) string {
	for k, v := range kv {
		src = strings.ReplaceAll(src, "{{"+k+"}}", strconv.Itoa(v))
	}
	if i := strings.Index(src, "{{"); i >= 0 {
		panic("program: unexpanded placeholder near: " + src[i:min(i+24, len(src))])
	}
	return src
}
