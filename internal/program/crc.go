package program

import "fmt"

// CRC: the MiBench CRC-32 workload — a nibble-table reflected CRC-32
// (polynomial 0xEDB88320, 16-entry table as embedded implementations use)
// over a PRNG-filled 4 KiB buffer, eight passes.
//
// Two pieces of memory-resident state mirror the C original: the running CRC
// round-trips through a global once per 64-byte chunk, and a pass counter in
// initialized .data is incremented per pass. The counter's first access is a
// read of image-initialized data, which seeds the WAR cascade exactly the
// way compiled C's statics do (see DESIGN.md).

const crcBufSize = 4096
const crcSeed = 0x12345678

// CRC and CRCLong are the crc benchmark and its scaled variant.
var (
	CRC     = register(makeCRC("crc", 8, false))
	CRCLong = register(makeCRC("crc-long", 96, true))
)

func makeCRC(name string, crcPasses int, long bool) *Program {
	return &Program{
		Name:        name,
		Long:        long,
		Description: fmt.Sprintf("nibble-table CRC-32 over a 4 KiB buffer, %d passes (MiBench crc32)", crcPasses),
		Reference: func() uint32 {
			var table [16]uint32
			for i := range table {
				c := uint32(i)
				for k := 0; k < 4; k++ {
					if c&1 != 0 {
						c = c>>1 ^ 0xEDB88320
					} else {
						c >>= 1
					}
				}
				table[i] = c
			}
			x := uint32(crcSeed)
			buf := make([]byte, crcBufSize)
			for i := range buf {
				x = XorShift32(x)
				buf[i] = byte(x)
			}
			crc := ^uint32(0)
			runs := uint32(0)
			for pass := 0; pass < crcPasses; pass++ {
				runs++
				for _, b := range buf {
					crc = crc>>4 ^ table[(crc^uint32(b))&0xF]
					crc = crc>>4 ^ table[(crc^uint32(b)>>4)&0xF]
				}
			}
			return ^crc + runs
		},
		source: subst(`
	.equ CRC_BUF_SIZE, 4096
	.equ CRC_PASSES, {{PASSES}}

	.data
	.balign 4
crc_table:	.space 64
crc_buf:	.space 4096
crc_state:	.word 0
crc_runs:	.word 0

	.text
_start:
	# Build the 16-entry nibble CRC table.
	la   s0, crc_table
	li   s1, 0                  # i
crc_build:
	mv   t1, s1                 # c = i
	li   t2, 4                  # k
crc_bit:
	andi t3, t1, 1
	srli t1, t1, 1
	beqz t3, crc_noxor
	li   t4, 0xEDB88320
	xor  t1, t1, t4
crc_noxor:
	addi t2, t2, -1
	bnez t2, crc_bit
	slli t3, s1, 2
	add  t3, s0, t3
	sw   t1, (t3)
	addi s1, s1, 1
	li   t3, 16
	bne  s1, t3, crc_build

	# Fill the input buffer from the PRNG.
	la   s2, crc_buf
	li   a0, 0x12345678
	li   s1, 0
crc_gen:
	call rng_next
	add  t1, s2, s1
	sb   a0, (t1)
	addi s1, s1, 1
	li   t1, CRC_BUF_SIZE
	bne  s1, t1, crc_gen

	# CRC passes, state round-tripping through memory per 64-byte chunk.
	la   s5, crc_state
	la   s6, crc_runs
	li   t1, -1                 # crc = 0xFFFFFFFF
	sw   t1, (s5)
	li   s4, CRC_PASSES
crc_pass:
	lw   t1, (s6)               # runs++ (read of .data-initialized word)
	addi t1, t1, 1
	sw   t1, (s6)
	li   s1, 0
crc_pass_chunks:
	call crc_do_chunk
	li   t1, CRC_BUF_SIZE
	bne  s1, t1, crc_pass_chunks
	addi s4, s4, -1
	bnez s4, crc_pass
	j    crc_done

# crc_do_chunk: process 64 bytes at buf[s1], advancing s1, round-tripping
# the running CRC through the global state — called per chunk with a small
# frame, like the C original's per-buffer crc32 routine.
crc_do_chunk:
	addi sp, sp, -16
	sw   ra, 12(sp)
	sw   s4, 8(sp)              # callee-saved spill
	lw   s3, (s5)               # read the global state
	li   t5, 64                 # chunk length
crc_byte:
	add  t1, s2, s1
	lbu  t1, (t1)
	# low nibble
	xor  t2, s3, t1
	andi t2, t2, 0xF
	slli t2, t2, 2
	add  t2, s0, t2
	lw   t2, (t2)
	srli s3, s3, 4
	xor  s3, s3, t2
	# high nibble
	srli t1, t1, 4
	xor  t2, s3, t1
	andi t2, t2, 0xF
	slli t2, t2, 2
	add  t2, s0, t2
	lw   t2, (t2)
	srli s3, s3, 4
	xor  s3, s3, t2
	addi s1, s1, 1
	addi t5, t5, -1
	bnez t5, crc_byte
	sw   s3, (s5)               # write the global state back (WAR)
	lw   s4, 8(sp)
	lw   ra, 12(sp)
	addi sp, sp, 16
	ret

crc_done:
	lw   a0, (s5)
	not  a0, a0
	lw   t1, (s6)
	add  a0, a0, t1
	li   t0, MMIO_RESULT
	sw   a0, (t0)
	li   t0, MMIO_EXIT
	sw   zero, (t0)
	ebreak
`, map[string]int{"PASSES": crcPasses}),
	}
}
