package program

// Canonical Huffman coding for the picojpeg benchmark's entropy-coded
// coefficient stream, JPEG-style: symbols are (run<<4 | size) bytes with EOB
// (0x00) and ZRL (0xF0), values follow as JPEG magnitude-coded raw bits, and
// the code is canonical with lengths limited to 16 bits (the spec's
// Adjust_BITS procedure). The Go side builds the tables and ENCODES the
// stream at image-build time; the only decoder is the benchmark's RISC-V
// assembly, whose correctness the golden checksum proves end to end.

import (
	"fmt"
	"sort"
)

// jpegSymEOB and jpegSymZRL are the special AC symbols.
const (
	jpegSymEOB = 0x00
	jpegSymZRL = 0xF0
)

// huffCode is one canonical code assignment.
type huffCode struct {
	code uint32
	bits int
}

// huffTable is a canonical Huffman code plus the decoder-side tables
// (JPEG's MINCODE/MAXCODE/VALPTR form).
type huffTable struct {
	codes   map[byte]huffCode
	mincode [17]int32 // per code length 1..16
	maxcode [17]int32 // -1 where no codes of that length exist
	valptr  [17]int32
	huffval []byte // symbols in canonical order
}

// buildHuffman constructs a length-limited (<=16) canonical Huffman code for
// the given symbol frequencies.
func buildHuffman(freq map[byte]int) (*huffTable, error) {
	if len(freq) == 0 {
		return nil, fmt.Errorf("huffman: empty alphabet")
	}
	if len(freq) == 1 {
		// Degenerate single-symbol alphabet: pad so the code has two leaves.
		var only byte
		for sym := range freq {
			only = sym
		}
		freq[only+1] = 0
	}

	// Huffman tree via repeated merging of the two lightest subtrees.
	type node struct {
		weight      int
		sym         byte
		leaf        bool
		left, right *node
	}
	var heap []*node
	for sym, f := range freq {
		heap = append(heap, &node{weight: f + 1, sym: sym, leaf: true})
	}
	sort.Slice(heap, func(i, j int) bool {
		if heap[i].weight != heap[j].weight {
			return heap[i].weight < heap[j].weight
		}
		return heap[i].sym < heap[j].sym
	})
	pop := func() *node {
		n := heap[0]
		heap = heap[1:]
		return n
	}
	push := func(n *node) {
		i := sort.Search(len(heap), func(i int) bool {
			return heap[i].weight > n.weight
		})
		heap = append(heap, nil)
		copy(heap[i+1:], heap[i:])
		heap[i] = n
	}
	for len(heap) > 1 {
		a, b := pop(), pop()
		push(&node{weight: a.weight + b.weight, left: a, right: b})
	}

	// Collect code lengths.
	lengths := map[byte]int{}
	maxLen := 0
	var walk func(n *node, depth int)
	walk = func(n *node, depth int) {
		if n.leaf {
			if depth == 0 {
				depth = 1
			}
			lengths[n.sym] = depth
			if depth > maxLen {
				maxLen = depth
			}
			return
		}
		walk(n.left, depth+1)
		walk(n.right, depth+1)
	}
	walk(heap[0], 0)

	// Length-limit to 16 bits (JPEG Annex K Adjust_BITS): repeatedly move a
	// too-deep pair under the deepest available shorter code.
	var bits [64]int
	for _, l := range lengths {
		bits[l]++
	}
	for i := len(bits) - 1; i > 16; i-- {
		for bits[i] > 0 {
			j := i - 2
			for j > 0 && bits[j] == 0 {
				j--
			}
			if j == 0 {
				return nil, fmt.Errorf("huffman: cannot length-limit")
			}
			bits[i] -= 2
			bits[i-1]++
			bits[j+1] += 2
			bits[j]--
		}
	}

	// Reassign lengths canonically: symbols sorted by (old length, symbol)
	// take the adjusted length counts in order.
	type symLen struct {
		sym byte
		l   int
	}
	var syms []symLen
	for sym, l := range lengths {
		syms = append(syms, symLen{sym, l})
	}
	sort.Slice(syms, func(i, j int) bool {
		if syms[i].l != syms[j].l {
			return syms[i].l < syms[j].l
		}
		return syms[i].sym < syms[j].sym
	})
	idx := 0
	for l := 1; l <= 16; l++ {
		for n := 0; n < bits[l]; n++ {
			syms[idx].l = l
			idx++
		}
	}

	// Canonical code assignment and decoder tables.
	t := &huffTable{codes: map[byte]huffCode{}}
	code := uint32(0)
	pos := int32(0)
	for l := 1; l <= 16; l++ {
		t.maxcode[l] = -1
		first := true
		for _, s := range syms {
			if s.l != l {
				continue
			}
			if first {
				t.mincode[l] = int32(code)
				t.valptr[l] = pos
				first = false
			}
			t.codes[s.sym] = huffCode{code: code, bits: l}
			t.huffval = append(t.huffval, s.sym)
			t.maxcode[l] = int32(code)
			code++
			pos++
		}
		code <<= 1
	}
	return t, nil
}

// bitWriter packs codes MSB-first.
type bitWriter struct {
	out   []byte
	cur   byte
	nfill int
}

func (w *bitWriter) write(code uint32, bits int) {
	for i := bits - 1; i >= 0; i-- {
		w.cur = w.cur<<1 | byte(code>>uint(i)&1)
		w.nfill++
		if w.nfill == 8 {
			w.out = append(w.out, w.cur)
			w.cur, w.nfill = 0, 0
		}
	}
}

func (w *bitWriter) flush() []byte {
	if w.nfill > 0 {
		w.out = append(w.out, w.cur<<(8-w.nfill))
	}
	return w.out
}

// jpegMagnitude returns the JPEG size category and raw bits for a value.
func jpegMagnitude(v int32) (size int, raw uint32) {
	a := v
	if a < 0 {
		a = -a
	}
	for a > 0 {
		size++
		a >>= 1
	}
	if v < 0 {
		raw = uint32(v + (1 << size) - 1)
	} else {
		raw = uint32(v)
	}
	return size, raw
}

// jpegSymbols converts the natural-order coefficient blocks into the
// (symbol, value-size) stream: per block a DC difference then run-length
// coded AC coefficients in zigzag order.
func jpegSymbols(coefs []uint32, blocks int) []struct {
	sym  byte
	raw  uint32
	bits int
} {
	zz := jpegZigzag()
	var out []struct {
		sym  byte
		raw  uint32
		bits int
	}
	emit := func(sym byte, raw uint32, bits int) {
		out = append(out, struct {
			sym  byte
			raw  uint32
			bits int
		}{sym, raw, bits})
	}
	pred := int32(0)
	for b := 0; b < blocks; b++ {
		blk := coefs[b*64 : b*64+64]
		// DC.
		dc := int32(blk[zz[0]])
		diff := dc - pred
		pred = dc
		size, raw := jpegMagnitude(diff)
		emit(byte(size), raw, size)
		// AC.
		run := 0
		for k := 1; k < 64; k++ {
			v := int32(blk[zz[k]])
			if v == 0 {
				run++
				continue
			}
			for run >= 16 {
				emit(jpegSymZRL, 0, 0)
				run -= 16
			}
			size, raw := jpegMagnitude(v)
			emit(byte(run<<4|size), raw, size)
			run = 0
		}
		if run > 0 {
			emit(jpegSymEOB, 0, 0)
		}
	}
	return out
}

// jpegEncode Huffman-codes the coefficient blocks, returning the table and
// the packed bitstream.
func jpegEncode(coefs []uint32, blocks int) (*huffTable, []byte, error) {
	stream := jpegSymbols(coefs, blocks)
	freq := map[byte]int{}
	for _, s := range stream {
		freq[s.sym]++
	}
	table, err := buildHuffman(freq)
	if err != nil {
		return nil, nil, err
	}
	var w bitWriter
	for _, s := range stream {
		c, ok := table.codes[s.sym]
		if !ok {
			return nil, nil, fmt.Errorf("huffman: no code for symbol %#x", s.sym)
		}
		w.write(c.code, c.bits)
		if s.bits > 0 {
			w.write(s.raw, s.bits)
		}
	}
	return table, w.flush(), nil
}
