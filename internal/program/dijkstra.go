package program

import "fmt"

// Dijkstra: the MiBench dijkstra workload — single-source shortest paths on
// a dense 32-node graph with a linear-scan priority queue, run from eight
// sources. dist[] relaxations are read-modify-writes, and the visited flags
// are scanned and then written, giving the irregular WAR pattern the paper's
// Figure 7 calls out for this benchmark.

const (
	dijNodes = 32
	dijSeed  = 0xD1785EED
	dijInf   = 0x7FFFFFFF
)

// Dijkstra and DijkstraLong are the dijkstra benchmark and its scaled
// variant (more sources over the same graph, like MiBench's large input).
var (
	Dijkstra     = register(makeDijkstra("dijkstra", 8, false))
	DijkstraLong = register(makeDijkstra("dijkstra-long", 96, true))
)

func makeDijkstra(name string, dijSources int, long bool) *Program {
	return &Program{
		Name:        name,
		Long:        long,
		Description: fmt.Sprintf("shortest paths on a dense 32-node graph from %d sources (MiBench dijkstra)", dijSources),
		Reference: func() uint32 {
			adj := make([]uint32, dijNodes*dijNodes)
			x := uint32(dijSeed)
			for i := 0; i < dijNodes; i++ {
				for j := 0; j < dijNodes; j++ {
					x = XorShift32(x)
					w := x & 0xFF
					if i == j {
						w = 0
					}
					adj[i*dijNodes+j] = w
				}
			}
			var sum uint32
			dist := make([]uint32, dijNodes)
			visited := make([]uint32, dijNodes)
			for src := 0; src < dijSources; src++ {
				for v := range dist {
					dist[v] = dijInf
					visited[v] = 0
				}
				dist[src%dijNodes] = 0
				for iter := 0; iter < dijNodes; iter++ {
					u := -1
					best := uint32(dijInf)
					for v := 0; v < dijNodes; v++ {
						if visited[v] == 0 && int32(dist[v]) < int32(best) {
							best = dist[v]
							u = v
						}
					}
					if u < 0 || best == dijInf {
						break
					}
					visited[u] = 1
					for v := 0; v < dijNodes; v++ {
						w := adj[u*dijNodes+v]
						if w == 0 {
							continue
						}
						if nd := best + w; int32(nd) < int32(dist[v]) {
							dist[v] = nd
						}
					}
				}
				for v := 0; v < dijNodes; v++ {
					sum += dist[v]
				}
			}
			return sum
		},
		source: subst(`
	.equ DIJ_N, 32
	.equ DIJ_SRCS, {{SRCS}}

	.data
	.balign 4
dij_adj:	.space 4096
dij_dist:	.space 128
dij_vis:	.space 128
dij_stats:	.word 0

	.text
_start:
	la   s0, dij_adj
	la   s1, dij_dist
	la   s2, dij_vis
	li   a0, 0xD1785EED

	# Generate the adjacency matrix.
	li   s5, 0                  # i
dij_gen_i:
	li   s6, 0                  # j
dij_gen_j:
	call rng_next
	andi t1, a0, 0xFF
	bne  s5, s6, dij_gen_keep
	li   t1, 0
dij_gen_keep:
	slli t2, s5, 5
	add  t2, t2, s6
	slli t2, t2, 2
	add  t2, s0, t2
	sw   t1, (t2)
	addi s6, s6, 1
	li   t2, DIJ_N
	bne  s6, t2, dij_gen_j
	addi s5, s5, 1
	bne  s5, t2, dij_gen_i

	la   s8, dij_stats
	li   s3, 0                  # source
	li   s4, 0                  # checksum
dij_src:
	# Initialize dist/visited.
	li   t5, 0
	li   t2, 0x7FFFFFFF
dij_init:
	slli t1, t5, 2
	add  t3, s1, t1
	sw   t2, (t3)
	add  t3, s2, t1
	sw   zero, (t3)
	addi t5, t5, 1
	li   t1, DIJ_N
	bne  t5, t1, dij_init
	andi t1, s3, 31             # source wraps over the 32 nodes
	slli t1, t1, 2
	add  t1, s1, t1
	sw   zero, (t1)             # dist[src mod nodes] = 0
	lw   t1, (s8)               # per-source stats++ after init (the C
	addi t1, t1, 1              # original's first post-init queue update)
	sw   t1, (s8)

	li   s7, 0                  # iteration
dij_iter:
	# Linear-scan minimum over unvisited nodes.
	li   s5, -1                 # u
	li   s6, 0x7FFFFFFF         # best
	li   t5, 0
dij_scan:
	slli t1, t5, 2
	add  t2, s2, t1
	lw   t2, (t2)
	bnez t2, dij_scan_next
	add  t3, s1, t1
	lw   t3, (t3)
	bge  t3, s6, dij_scan_next
	mv   s6, t3
	mv   s5, t5
dij_scan_next:
	addi t5, t5, 1
	li   t1, DIJ_N
	bne  t5, t1, dij_scan
	li   t1, -1
	beq  s5, t1, dij_src_done
	li   t1, 0x7FFFFFFF
	beq  s6, t1, dij_src_done

	# visited[u] = 1
	slli t1, s5, 2
	add  t2, s2, t1
	li   t3, 1
	sw   t3, (t2)

	# Relax u's neighbours.
	slli t1, s5, 7              # u * 32 nodes * 4 bytes
	add  t6, s0, t1
	li   t5, 0
dij_relax:
	slli t1, t5, 2
	add  t2, t6, t1
	lw   t2, (t2)               # w
	beqz t2, dij_relax_next
	add  t3, s6, t2             # dist[u] + w
	add  t4, s1, t1
	lw   a1, (t4)
	bge  t3, a1, dij_relax_next
	sw   t3, (t4)
dij_relax_next:
	addi t5, t5, 1
	li   t1, DIJ_N
	bne  t5, t1, dij_relax

	addi s7, s7, 1
	li   t1, DIJ_N
	bne  s7, t1, dij_iter
dij_src_done:
	# Accumulate distances.
	li   t5, 0
dij_sum:
	slli t1, t5, 2
	add  t2, s1, t1
	lw   t2, (t2)
	add  s4, s4, t2
	addi t5, t5, 1
	li   t1, DIJ_N
	bne  t5, t1, dij_sum

	addi s3, s3, 1
	li   t1, DIJ_SRCS
	bne  s3, t1, dij_src

	mv   a0, s4
	li   t0, MMIO_RESULT
	sw   a0, (t0)
	li   t0, MMIO_EXIT
	sw   zero, (t0)
	ebreak
`, map[string]int{"SRCS": dijSources}),
	}
}
