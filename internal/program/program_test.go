package program

import (
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	// The paper's nine benchmarks (Section 6.1.1).
	want := []string{"adpcm", "aes", "coremark", "crc", "dijkstra", "picojpeg", "quicksort", "sha", "towers"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("benchmarks = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("benchmark %d = %s, want %s", i, got[i], want[i])
		}
	}
	for _, p := range All() {
		if p.Description == "" {
			t.Errorf("%s has no description", p.Name)
		}
		if !strings.Contains(p.Source(), "_start") {
			t.Errorf("%s source lacks _start", p.Name)
		}
	}
}

func TestByName(t *testing.T) {
	if p, ok := ByName("aes"); !ok || p.Name != "aes" {
		t.Error("ByName(aes) failed")
	}
	if _, ok := ByName("nope"); ok {
		t.Error("ByName(nope) succeeded")
	}
}

func TestBuildCachesImages(t *testing.T) {
	p, _ := ByName("crc")
	a, err := p.Build()
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Build()
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("Build did not cache the image")
	}
	if a.Entry == 0 || a.Text.Len() == 0 || len(a.Segments) == 0 {
		t.Errorf("incomplete image: %+v", a)
	}
}

func TestReferencesDeterministic(t *testing.T) {
	for _, p := range All() {
		if p.Reference() != p.Reference() {
			t.Errorf("%s reference is nondeterministic", p.Name)
		}
	}
}

func TestXorShift32MatchesHeader(t *testing.T) {
	// The first few values of the PRNG from the documented seed; these pin
	// the generator so asm and Go can never drift silently.
	x := uint32(1)
	want := []uint32{270369, 67634689, 2647435461, 307599695}
	for i, w := range want {
		x = XorShift32(x)
		if x != w {
			t.Fatalf("step %d: %d, want %d", i, x, w)
		}
	}
}

func TestFromSource(t *testing.T) {
	img, err := FromSource("mini", "_start:\n ebreak\n")
	if err != nil {
		t.Fatal(err)
	}
	if img.Entry != TextBase || img.Text.Len() != 1 {
		t.Errorf("image: entry=%#x text=%d", img.Entry, img.Text.Len())
	}
	if _, err := FromSource("bad", "_start:\n bogus\n"); err == nil {
		t.Error("bad source accepted")
	}
	if _, err := FromSource("empty", ".data\nx: .word 1\n"); err == nil {
		t.Error("source without text accepted")
	}
}

func TestAesSboxKnownValues(t *testing.T) {
	box := aesSbox()
	// Canonical spot values from FIPS-197.
	cases := map[int]byte{0x00: 0x63, 0x01: 0x7c, 0x10: 0xca, 0x53: 0xed, 0xff: 0x16}
	for in, want := range cases {
		if box[in] != want {
			t.Errorf("sbox[%#x] = %#x, want %#x", in, box[in], want)
		}
	}
}

func TestJpegZigzagIsPermutation(t *testing.T) {
	zz := jpegZigzag()
	seen := map[uint32]bool{}
	for _, v := range zz {
		if v > 63 || seen[v] {
			t.Fatalf("zigzag invalid at %d", v)
		}
		seen[v] = true
	}
	// Canonical prefix of the JPEG zigzag order.
	want := []uint32{0, 1, 8, 16, 9, 2, 3, 10, 17, 24}
	for i, w := range want {
		if zz[i] != w {
			t.Errorf("zigzag[%d] = %d, want %d", i, zz[i], w)
		}
	}
}

func TestSegmentsWithinMemoryMap(t *testing.T) {
	for _, p := range All() {
		img, err := p.Build()
		if err != nil {
			t.Fatal(err)
		}
		for _, seg := range img.Segments {
			end := seg.Addr + uint32(len(seg.Data))
			if seg.Addr == TextBase && end > DataBase {
				t.Errorf("%s: text overflows into data (%#x)", p.Name, end)
			}
			if seg.Addr == DataBase && end > StackTop-0x10000 {
				t.Errorf("%s: data too close to the stack (%#x)", p.Name, end)
			}
		}
	}
}

func TestLongVariantsRegistered(t *testing.T) {
	long := LongNames()
	if len(long) != len(Names()) {
		t.Fatalf("long variants = %v, want one per standard benchmark", long)
	}
	for _, n := range long {
		p, ok := ByName(n)
		if !ok || !p.Long {
			t.Errorf("long variant %s not registered properly", n)
		}
	}
	// Standard lists must not leak long variants.
	for _, n := range Names() {
		if p, _ := ByName(n); p.Long {
			t.Errorf("Names() leaked long variant %s", n)
		}
	}
}
