package program

import (
	"math/rand"
	"testing"
)

// goDecode is an independent reference decoder used only by tests: the
// benchmark's RISC-V assembly is the production decoder.
func goDecode(t *huffTable, stream []byte, blocks int) []uint32 {
	zz := jpegZigzag()
	out := make([]uint32, 64*blocks)
	bytepos, bitcnt := 0, 0
	var bitbuf byte
	nextBit := func() uint32 {
		if bitcnt == 0 {
			bitbuf = stream[bytepos]
			bytepos++
			bitcnt = 8
		}
		bitcnt--
		return uint32(bitbuf>>uint(bitcnt)) & 1
	}
	getSym := func() byte {
		code := int32(0)
		for l := 1; l <= 16; l++ {
			code = code<<1 | int32(nextBit())
			if t.maxcode[l] >= 0 && code <= t.maxcode[l] {
				return t.huffval[t.valptr[l]+code-t.mincode[l]]
			}
		}
		panic("bad code")
	}
	getBits := func(n int) uint32 {
		var v uint32
		for i := 0; i < n; i++ {
			v = v<<1 | nextBit()
		}
		return v
	}
	extend := func(raw uint32, size int) int32 {
		if size == 0 {
			return 0
		}
		if raw < 1<<uint(size-1) {
			return int32(raw) - (1 << uint(size)) + 1
		}
		return int32(raw)
	}
	pred := int32(0)
	for b := 0; b < blocks; b++ {
		blk := out[b*64 : b*64+64]
		size := int(getSym())
		pred += extend(getBits(size), size)
		blk[zz[0]] = uint32(pred)
		for k := 1; k < 64; {
			sym := getSym()
			if sym == jpegSymEOB {
				break
			}
			if sym == jpegSymZRL {
				k += 16
				continue
			}
			run, s := int(sym>>4), int(sym&0xF)
			k += run
			blk[zz[k]] = uint32(extend(getBits(s), s))
			k++
		}
	}
	return out
}

func TestHuffmanRoundTripBenchmarkStream(t *testing.T) {
	for _, blocks := range []int{1, 4, 48} {
		coefs := jpegCoefs(blocks)
		table, stream, err := jpegEncode(coefs, blocks)
		if err != nil {
			t.Fatal(err)
		}
		got := goDecode(table, stream, blocks)
		for i := range coefs {
			if got[i] != coefs[i] {
				t.Fatalf("blocks=%d: coef %d decoded %#x, want %#x", blocks, i, got[i], coefs[i])
			}
		}
	}
}

// Property: random coefficient blocks round-trip through encode/decode.
func TestHuffmanRoundTripRandom(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for trial := 0; trial < 30; trial++ {
		blocks := 1 + r.Intn(6)
		coefs := make([]uint32, 64*blocks)
		for i := range coefs {
			switch r.Intn(4) {
			case 0:
				coefs[i] = uint32(int32(r.Intn(2047) - 1023))
			case 1:
				coefs[i] = uint32(int32(r.Intn(15) - 7))
			default:
				// zeros dominate, as in real DCT blocks
			}
		}
		table, stream, err := jpegEncode(coefs, blocks)
		if err != nil {
			t.Fatal(err)
		}
		got := goDecode(table, stream, blocks)
		for i := range coefs {
			if got[i] != coefs[i] {
				t.Fatalf("trial %d: coef %d decoded %#x, want %#x", trial, i, got[i], coefs[i])
			}
		}
	}
}

func TestHuffmanCanonicalProperties(t *testing.T) {
	coefs := jpegCoefs(8)
	table, _, err := jpegEncode(coefs, 8)
	if err != nil {
		t.Fatal(err)
	}
	// All code lengths within 1..16 and codes prefix-free by construction;
	// spot-check: no code is a prefix of another.
	type cl struct {
		code uint32
		bits int
	}
	var all []cl
	for _, c := range table.codes {
		if c.bits < 1 || c.bits > 16 {
			t.Fatalf("code length %d out of range", c.bits)
		}
		all = append(all, cl{c.code, c.bits})
	}
	for i := range all {
		for j := range all {
			if i == j {
				continue
			}
			a, b := all[i], all[j]
			if a.bits <= b.bits && b.code>>uint(b.bits-a.bits) == a.code {
				t.Fatalf("code %b/%d is a prefix of %b/%d", a.code, a.bits, b.code, b.bits)
			}
		}
	}
}
