package program_test

import (
	"testing"

	"nacho/internal/harness"
	"nacho/internal/program"
	"nacho/internal/systems"
)

// TestQuickAllVolatile runs every registered benchmark on the volatile
// baseline and checks the reported checksum against the Go reference.
func TestQuickAllVolatile(t *testing.T) {
	for _, p := range program.All() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			res, err := harness.Run(p, systems.KindVolatile, harness.DefaultRunConfig())
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("instr=%d cycles=%d", res.Counters.Instructions, res.Counters.Cycles)
		})
	}
}

// TestQuickAllNACHO does the same under NACHO with full verification.
func TestQuickAllNACHO(t *testing.T) {
	for _, p := range program.All() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			res, err := harness.Run(p, systems.KindNACHO, harness.DefaultRunConfig())
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("instr=%d cycles=%d ckpts=%d nvmB=%d hit%%=%.1f",
				res.Counters.Instructions, res.Counters.Cycles, res.Counters.Checkpoints,
				res.Counters.NVMBytes(), 100*res.Counters.HitRate())
		})
	}
}
