package verify

import (
	"strings"
	"testing"

	"nacho/internal/mem"
)

func newVerifier(cfg Config) *Verifier {
	initial := mem.NewSpace()
	initial.Write(0x100, 4, 0xCAFE)
	return New(initial, cfg)
}

func TestShadowMatchesInitialImage(t *testing.T) {
	v := newVerifier(Config{})
	v.CPURead(0x100, 4, 0xCAFE)
	if err := v.Err(); err != nil {
		t.Errorf("correct read flagged: %v", err)
	}
}

func TestShadowMismatchDetected(t *testing.T) {
	v := newVerifier(Config{})
	v.CPUWrite(0x200, 4, 7)
	v.CPURead(0x200, 4, 8)
	err := v.Err()
	if err == nil {
		t.Fatal("mismatch not detected")
	}
	if !strings.Contains(err.Error(), "shadow-mismatch") {
		t.Errorf("error = %v", err)
	}
	viols := v.Violations()
	if len(viols) != 1 || viols[0].Got != 8 || viols[0].Want != 7 {
		t.Errorf("violation details: %+v", viols)
	}
}

func TestSubWordShadow(t *testing.T) {
	v := newVerifier(Config{})
	v.CPUWrite(0x300, 4, 0xAABBCCDD)
	v.CPUWrite(0x301, 1, 0x11)
	v.CPURead(0x300, 4, 0xAABB11DD)
	v.CPURead(0x302, 2, 0xAABB)
	if err := v.Err(); err != nil {
		t.Error(err)
	}
}

func TestWARDetection(t *testing.T) {
	v := newVerifier(Config{CheckWAR: true})
	v.CPURead(0x400, 4, 0)
	v.NVMWriteBack(0x400, 4)
	if err := v.Err(); err == nil || !strings.Contains(err.Error(), "war-violation") {
		t.Errorf("WAR not detected: %v", err)
	}
	// Write-dominated write-back is fine.
	v2 := newVerifier(Config{CheckWAR: true})
	v2.CPUWrite(0x500, 4, 1)
	v2.NVMWriteBack(0x500, 4)
	if err := v2.Err(); err != nil {
		t.Errorf("safe write-back flagged: %v", err)
	}
	// With CheckWAR disabled nothing is recorded.
	v3 := newVerifier(Config{CheckWAR: false})
	v3.CPURead(0x400, 4, 0)
	v3.NVMWriteBack(0x400, 4)
	if err := v3.Err(); err != nil {
		t.Errorf("disabled WAR check flagged: %v", err)
	}
}

func TestIntervalBoundaryResets(t *testing.T) {
	v := newVerifier(Config{CheckWAR: true})
	v.CPURead(0x600, 4, 0)
	v.IntervalBoundary()
	v.NVMWriteBack(0x600, 4) // read was in the previous interval
	if err := v.Err(); err != nil {
		t.Errorf("cross-interval write-back flagged: %v", err)
	}
}

func TestRollbackOnFailure(t *testing.T) {
	v := newVerifier(Config{RollbackOnFailure: true})
	v.CPUWrite(0x100, 4, 1) // overwrite the initial 0xCAFE
	v.PowerFailure()        // rollback to the last boundary (the start)
	v.CPURead(0x100, 4, 0xCAFE)
	if err := v.Err(); err != nil {
		t.Errorf("rollback failed: %v", err)
	}
	// After a boundary the rollback point moves.
	v.CPUWrite(0x100, 4, 2)
	v.IntervalBoundary()
	v.CPUWrite(0x100, 4, 3)
	v.PowerFailure()
	v.CPURead(0x100, 4, 2)
	if err := v.Err(); err != nil {
		t.Errorf("post-boundary rollback failed: %v", err)
	}
}

func TestNoRollbackForJITSystems(t *testing.T) {
	v := newVerifier(Config{RollbackOnFailure: false})
	v.CPUWrite(0x100, 4, 1)
	v.PowerFailure() // resume-in-place semantics: shadow keeps the write
	v.CPURead(0x100, 4, 1)
	if err := v.Err(); err != nil {
		t.Errorf("JIT shadow semantics broken: %v", err)
	}
}

func TestJournalKeepsFirstPreimage(t *testing.T) {
	v := newVerifier(Config{RollbackOnFailure: true})
	v.CPUWrite(0x100, 4, 1)
	v.CPUWrite(0x100, 4, 2)
	v.CPUWrite(0x100, 4, 3)
	v.PowerFailure()
	v.CPURead(0x100, 4, 0xCAFE) // rolls all the way back to the pre-image
	if err := v.Err(); err != nil {
		t.Error(err)
	}
}

func TestMaxViolationsCap(t *testing.T) {
	v := New(mem.NewSpace(), Config{MaxViolations: 3})
	for i := uint32(0); i < 10; i++ {
		v.CPURead(i*4, 4, 999) // shadow has zeros
	}
	if len(v.Violations()) != 3 {
		t.Errorf("recorded %d violations, want 3", len(v.Violations()))
	}
	if err := v.Err(); err == nil || !strings.Contains(err.Error(), "dropped") {
		t.Errorf("Err should mention dropped count: %v", err)
	}
}

func TestNilVerifierSafe(t *testing.T) {
	var v *Verifier
	v.CPURead(0, 4, 0)
	v.CPUWrite(0, 4, 0)
	v.NVMWriteBack(0, 4)
	v.IntervalBoundary()
	v.PowerFailure()
	if v.Err() != nil || v.Violations() != nil {
		t.Error("nil verifier misbehaved")
	}
}

func TestViolationStrings(t *testing.T) {
	s := Violation{Kind: ShadowMismatch, Addr: 0x10, Size: 4, Got: 1, Want: 2}.String()
	if !strings.Contains(s, "shadow-mismatch") || !strings.Contains(s, "0x00000010") {
		t.Errorf("string: %s", s)
	}
	w := Violation{Kind: WARViolation, Addr: 0x20, Size: 1}.String()
	if !strings.Contains(w, "war-violation") {
		t.Errorf("string: %s", w)
	}
	if Kind(42).String() != "unknown" {
		t.Error("unknown kind string")
	}
}
