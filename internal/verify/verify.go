// Package verify implements the emulator's two safety measures from paper
// Section 5.1:
//
//  1. Shadow memory: every CPU data access is duplicated into an ideal flat
//     memory; a load served by the system under test must return the shadow's
//     value. The shadow keeps a byte-granular undo journal since the last
//     checkpoint so that it can be rolled back when a power failure rewinds
//     the machine to the last committed checkpoint — re-execution then
//     replays against the same shadow state.
//
//  2. WAR detection: an exact byte-granular dominance tracker observes the
//     CPU access stream; any physical NVM write-back to a read-dominated
//     location (outside a checkpoint) is an idempotency violation, because a
//     power failure after it would make re-execution read the new value.
//
// The package reports problems as recorded Violations rather than panicking,
// so tests can assert exact failure modes.
package verify

import (
	"fmt"

	"nacho/internal/mem"
	"nacho/internal/sim"
	"nacho/internal/track"
)

// Kind classifies a detected violation.
type Kind int

// Violation kinds.
const (
	ShadowMismatch Kind = iota // load returned a value different from shadow
	WARViolation               // NVM write-back to a read-dominated address
)

// String names the violation kind.
func (k Kind) String() string {
	switch k {
	case ShadowMismatch:
		return "shadow-mismatch"
	case WARViolation:
		return "war-violation"
	}
	return "unknown"
}

// Violation is one detected correctness failure.
type Violation struct {
	Kind Kind
	Addr uint32
	Size int
	Got  uint32 // value the system returned (shadow mismatches)
	Want uint32 // value the shadow holds
}

// String renders the violation with its address and values.
func (v Violation) String() string {
	if v.Kind == ShadowMismatch {
		return fmt.Sprintf("%v at 0x%08x size %d: got 0x%x, want 0x%x", v.Kind, v.Addr, v.Size, v.Got, v.Want)
	}
	return fmt.Sprintf("%v: write-back to read-dominated 0x%08x size %d", v.Kind, v.Addr, v.Size)
}

// Config selects per-system verification behaviour.
type Config struct {
	// RollbackOnFailure rolls the shadow back to the last interval boundary
	// when power fails — the behaviour of checkpoint/rollback systems (NACHO,
	// Clank, PROWL). JIT-flush systems (ReplayCache) resume at the failure
	// point, so their shadow must not rewind.
	RollbackOnFailure bool
	// CheckWAR enables the exact write-back dominance check. It applies to
	// rollback systems; ReplayCache's region semantics make mid-region
	// write-backs legal, so it runs with CheckWAR disabled and relies on the
	// shadow check.
	CheckWAR bool
	// MaxViolations caps recorded violations to bound memory; 0 means 64.
	MaxViolations int
}

// Verifier implements the safety checks as a sim.Probe: attach it to the
// system under test (and the emulator) through AttachProbe and it consumes
// the event stream — CPU accesses feed the shadow memory, write-back events
// feed the WAR check, checkpoint commits move the rollback point. A nil
// *Verifier is valid and disables all checking.
type Verifier struct {
	sim.NopProbe
	cfg     Config
	shadow  *mem.Space
	journal map[uint32]byte // first pre-image of each byte since last boundary
	tracker *track.Tracker
	viols   []Violation
	dropped int
}

// New builds a verifier whose shadow starts as a copy of the loaded program
// image (the same initial state the system's NVM holds).
func New(initial *mem.Space, cfg Config) *Verifier {
	if cfg.MaxViolations == 0 {
		cfg.MaxViolations = 64
	}
	return &Verifier{
		cfg:     cfg,
		shadow:  initial.Clone(),
		journal: make(map[uint32]byte),
		tracker: track.New(),
	}
}

func (v *Verifier) record(viol Violation) {
	if len(v.viols) >= v.cfg.MaxViolations {
		v.dropped++
		return
	}
	v.viols = append(v.viols, viol)
}

// CPURead checks a load's result against the shadow and feeds the dominance
// tracker.
func (v *Verifier) CPURead(addr uint32, size int, got uint32) {
	if v == nil {
		return
	}
	v.tracker.ObserveRead(addr, size)
	want := v.shadow.Read(addr, size)
	if got != want {
		v.record(Violation{Kind: ShadowMismatch, Addr: addr, Size: size, Got: got, Want: want})
	}
}

// CPUWrite duplicates a store into the shadow, journalling pre-images.
func (v *Verifier) CPUWrite(addr uint32, size int, val uint32) {
	if v == nil {
		return
	}
	v.tracker.ObserveWrite(addr, size)
	for i := 0; i < size; i++ {
		a := addr + uint32(i)
		if _, seen := v.journal[a]; !seen {
			v.journal[a] = v.shadow.ByteAt(a)
		}
	}
	v.shadow.Write(addr, size, val)
}

// NVMWriteBack checks a physical write-back (eviction) for the exact WAR
// condition. Checkpoint-internal writes must not be reported through here.
func (v *Verifier) NVMWriteBack(addr uint32, size int) {
	if v == nil || !v.cfg.CheckWAR {
		return
	}
	if v.tracker.ReadDominated(addr, size) {
		v.record(Violation{Kind: WARViolation, Addr: addr, Size: size})
	}
}

// IntervalBoundary marks a committed checkpoint (or, for ReplayCache, a
// completed idempotent region): the rollback point moves here.
func (v *Verifier) IntervalBoundary() {
	if v == nil {
		return
	}
	clear(v.journal)
	v.tracker.Reset()
}

// PowerFailure rewinds the shadow to the last boundary for rollback systems.
func (v *Verifier) PowerFailure() {
	if v == nil {
		return
	}
	if v.cfg.RollbackOnFailure {
		for a, old := range v.journal {
			v.shadow.SetByte(a, old)
		}
		clear(v.journal)
		v.tracker.Reset()
	}
}

// OnAccess implements sim.Probe: loads check against the shadow, stores
// update it. MMIO accesses bypass the memory system and are not part of the
// data image, so they are ignored.
func (v *Verifier) OnAccess(e sim.AccessEvent) {
	if v == nil || e.Class == sim.AccessMMIO {
		return
	}
	if e.Store {
		v.CPUWrite(e.Addr, e.Size, e.Value)
	} else {
		v.CPURead(e.Addr, e.Size, e.Value)
	}
}

// OnWriteBack implements sim.Probe: physical write-backs (safe evictions,
// write-through stores, asynchronous queue writes) run the WAR check.
// Unsafe and dropped-stack verdicts never reach NVM directly — the former is
// flushed inside a checkpoint, the latter discarded — so they are not
// write-backs to check.
func (v *Verifier) OnWriteBack(e sim.WriteBackEvent) {
	if v == nil {
		return
	}
	switch e.Verdict {
	case sim.VerdictSafe, sim.VerdictWriteThrough, sim.VerdictAsync:
		v.NVMWriteBack(e.Addr, e.Size)
	}
}

// OnCheckpointCommit implements sim.Probe: committed checkpoints and
// completed regions are interval boundaries; ReplayCache's JIT save is not
// (its shadow must survive the failure unrewound).
func (v *Verifier) OnCheckpointCommit(e sim.CheckpointEvent) {
	if v == nil {
		return
	}
	switch e.Kind {
	case sim.CheckpointCommit, sim.CheckpointRegion:
		v.IntervalBoundary()
	}
}

// OnPowerFailure implements sim.Probe.
func (v *Verifier) OnPowerFailure(sim.PowerEvent) { v.PowerFailure() }

// Violations returns everything recorded so far.
func (v *Verifier) Violations() []Violation {
	if v == nil {
		return nil
	}
	return v.viols
}

// Err returns a summarizing error if any violation was recorded.
func (v *Verifier) Err() error {
	if v == nil || len(v.viols) == 0 {
		return nil
	}
	return fmt.Errorf("verify: %d violation(s) (%d dropped), first: %v",
		len(v.viols)+v.dropped, v.dropped, v.viols[0])
}

// Shadow exposes the shadow space for final-state comparison in tests.
func (v *Verifier) Shadow() *mem.Space { return v.shadow }
