package snapshot_test

// The headline measurement: exhaustive crash-instant enumeration via
// snapshot forking against the naive re-run-from-boot loop over the same
// instants. Both benchmarks execute the identical instant set, so ns/op is
// directly comparable; the forked side additionally reports its
// deterministic simulated-cycle speedup (Stats.Speedup). Reference numbers
// live in BENCH_emu.json.
//
// The regime is the last two checkpoint intervals of towers on NACHO under
// the paper's intermittent configuration (forced checkpoints): deep
// windows, where a from-boot run pays the whole prefix for every instant
// and the forked run pays it exactly once. That is the regime exhaustive
// crash testing lives in — shallow instants are cheap either way.

import (
	"testing"

	"nacho/internal/emu"
	"nacho/internal/harness"
	"nacho/internal/power"
	"nacho/internal/program"
	"nacho/internal/sim"
	"nacho/internal/snapshot"
	"nacho/internal/systems"
)

func benchImage(tb testing.TB) *program.Image {
	tb.Helper()
	p, ok := program.ByName("towers")
	if !ok {
		tb.Skip("towers benchmark not registered")
	}
	img, err := p.Build()
	if err != nil {
		tb.Fatal(err)
	}
	return img
}

// benchFactory runs the paper's headline 512 B 2-way configuration with
// forced checkpoints every 50k cycles and no cycle budget: every enumerated
// run executes to its natural halt.
func benchFactory(img *program.Image) snapshot.NewMachine {
	return func(sched power.Schedule, probe sim.Probe) (*emu.Machine, error) {
		m, _, err := harness.BuildMachine(img, systems.KindNACHO, harness.RunConfig{
			CacheSize: 512, Ways: 2, Schedule: sched, Probe: probe,
			ForcedCheckpointPeriod: 50_000,
			FinalFlush:             true, MaxInstructions: 1 << 40,
		})
		return m, err
	}
}

// benchSetup counts the run's checkpoint windows (one untimed scouting
// exploration) and targets the deepest two at stride 250.
func benchSetup(b *testing.B) (snapshot.NewMachine, snapshot.Options) {
	b.Helper()
	img := benchImage(b)
	nm := benchFactory(img)
	st, err := snapshot.Explore(nm, snapshot.Options{Stride: 1 << 40},
		func(snapshot.Outcome) bool { return true })
	if err != nil {
		b.Fatal(err)
	}
	if st.Windows < 3 {
		b.Fatalf("only %d checkpoint windows; cannot pick deep ones", st.Windows)
	}
	return nm, snapshot.Options{SkipWindows: st.Windows - 2, Windows: 2, Stride: 250, Workers: 1}
}

func BenchmarkExhaustiveForked(b *testing.B) {
	nm, opts := benchSetup(b)
	b.ResetTimer()
	var last snapshot.Stats
	for i := 0; i < b.N; i++ {
		st, err := snapshot.Explore(nm, opts, func(snapshot.Outcome) bool { return true })
		if err != nil {
			b.Fatal(err)
		}
		if st.Instants == 0 {
			b.Fatal("explored zero instants")
		}
		last = st
	}
	b.ReportMetric(last.Speedup(), "sim-cycle-speedup")
	b.ReportMetric(float64(last.Instants), "instants")
}

func BenchmarkExhaustiveFromBoot(b *testing.B) {
	nm, opts := benchSetup(b)
	// Collect the instant set once, untimed, with the forked explorer.
	var instants []uint64
	if _, err := snapshot.Explore(nm, opts, func(o snapshot.Outcome) bool {
		instants = append(instants, o.Instant)
		return true
	}); err != nil {
		b.Fatal(err)
	}
	if len(instants) == 0 {
		b.Fatal("no instants to enumerate")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, t := range instants {
			m, err := nm(power.NewAt(t), nil)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := m.Run(); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(len(instants)), "instants")
}
