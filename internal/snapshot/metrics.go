package snapshot

import (
	"sync/atomic"

	"nacho/internal/telemetry"
)

// Live exploration accounting: Explore folds every finished exploration's
// Stats into these process-wide atomics, which RegisterMetrics exposes as
// nacho_snapshot_* series — so a long `nachofuzz -exhaustive` fleet's
// progress (and the measured fork-vs-boot advantage) is scrapeable instead of
// stderr-only. Always on; the cost is a handful of atomic adds per
// exploration, nothing per fork.
var global struct {
	explorations atomic.Uint64
	windows      atomic.Uint64
	instants     atomic.Uint64
	scoutCycles  atomic.Uint64
	prefixCycles atomic.Uint64
	forkCycles   atomic.Uint64
	bootCycles   atomic.Uint64
}

// WindowInstantBuckets are the inclusive upper bounds of the per-window
// crash-instant fan-out histogram: a 1-3-10 ladder covering everything from a
// near-empty tail window to a 10k-instant monster.
var WindowInstantBuckets = []uint64{1, 3, 10, 30, 100, 300, 1000, 3000, 10000}

// windowInstants observes the fan-out (instants executed) of each enumerated
// window.
var windowInstants = telemetry.NewHistogram(WindowInstantBuckets)

// recordExploration folds one exploration's final Stats into the globals.
func recordExploration(s Stats) {
	global.explorations.Add(1)
	global.windows.Add(uint64(s.Windows))
	global.instants.Add(uint64(s.Instants))
	global.scoutCycles.Add(s.ScoutCycles)
	global.prefixCycles.Add(s.PrefixCycles)
	global.forkCycles.Add(s.ForkCycles)
	global.bootCycles.Add(s.BootCycles)
}

// RegisterMetrics exposes the exploration accounting in r as nacho_snapshot_*
// series. The Func variants read the live atomics at scrape time.
func RegisterMetrics(r *telemetry.Registry) {
	r.NewCounterFunc("nacho_snapshot_explorations_total",
		"Exhaustive explorations completed (with or without error).", global.explorations.Load)
	r.NewCounterFunc("nacho_snapshot_windows_total",
		"Checkpoint windows enumerated.", global.windows.Load)
	r.NewCounterFunc("nacho_snapshot_instants_total",
		"Crash instants forked and executed.", global.instants.Load)
	r.NewCounterFunc("nacho_snapshot_scout_cycles_total",
		"Simulated cycles spent in boundary-scouting passes.", global.scoutCycles.Load)
	r.NewCounterFunc("nacho_snapshot_prefix_cycles_total",
		"Simulated cycles spent advancing shared prefix machines.", global.prefixCycles.Load)
	r.NewCounterFunc("nacho_snapshot_fork_cycles_total",
		"Simulated cycles spent in fork suffixes.", global.forkCycles.Load)
	r.NewCounterFunc("nacho_snapshot_boot_cycles_total",
		"Simulated cycles the same instants would have cost from boot.", global.bootCycles.Load)
	r.NewGaugeFunc("nacho_snapshot_speedup",
		"Measured fork-vs-boot advantage: boot cycles / actually simulated cycles.",
		func() float64 {
			paid := global.scoutCycles.Load() + global.prefixCycles.Load() + global.forkCycles.Load()
			if paid == 0 {
				return 0
			}
			return float64(global.bootCycles.Load()) / float64(paid)
		})
	r.RegisterHistogram("nacho_snapshot_window_instants",
		"Crash instants executed per enumerated window.", windowInstants)
}
