package snapshot_test

// Fork-vs-boot equivalence: the whole point of the snapshot package is that
// a forked run is indistinguishable from a from-boot run under the same
// failure schedule. This suite enforces that across every benchmark × every
// system × a strided set of crash instants in the first checkpoint windows,
// comparing the full result struct, the error string, and the final NVM
// data-segment bytes. The fuzzer's exhaustive-mode tests add full-density
// (Stride=1) coverage on small generated programs.

import (
	"reflect"
	"testing"

	"nacho/internal/emu"
	"nacho/internal/harness"
	"nacho/internal/power"
	"nacho/internal/program"
	"nacho/internal/sim"
	"nacho/internal/snapshot"
	"nacho/internal/systems"
)

// matrixMaxCycles caps every matrix run. Both sides of the comparison share
// the cap, so a long post-failure tail truncates at the identical cycle with
// the identical budget error — equivalence is still fully checked at the
// truncation point, and the matrix stays fast.
const matrixMaxCycles = 60_000

func matrixConfig(sched power.Schedule, probe sim.Probe) harness.RunConfig {
	return harness.RunConfig{
		CacheSize:       64, // small cache: frequent evictions and commits
		Ways:            2,
		Schedule:        sched,
		Probe:           probe,
		FinalFlush:      true,
		MaxCycles:       matrixMaxCycles,
		MaxInstructions: 8_000_000,
	}
}

func factory(img *program.Image, kind systems.Kind) snapshot.NewMachine {
	return func(sched power.Schedule, probe sim.Probe) (*emu.Machine, error) {
		m, _, err := harness.BuildMachine(img, kind, matrixConfig(sched, probe))
		return m, err
	}
}

// nvmDiff compares the final bytes of every non-text segment.
func nvmDiff(t *testing.T, img *program.Image, got, want sim.System, instant uint64) {
	t.Helper()
	gm, wm := got.Mem(), want.Mem()
	for _, seg := range img.Segments {
		if seg.Addr == program.TextBase {
			continue
		}
		for i := range seg.Data {
			a := seg.Addr + uint32(i)
			if g, w := byte(gm.ReadRaw(a, 1)), byte(wm.ReadRaw(a, 1)); g != w {
				t.Fatalf("instant %d: NVM byte %#08x fork=%#02x boot=%#02x", instant, a, g, w)
			}
		}
	}
}

func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

func TestForkVsBootMatrix(t *testing.T) {
	stride, maxInstants := uint64(61), 64
	if testing.Short() {
		stride, maxInstants = 211, 12
	}
	for _, p := range program.All() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			img, err := p.Build()
			if err != nil {
				t.Fatal(err)
			}
			for _, kind := range systems.AllKinds() {
				kind := kind
				t.Run(string(kind), func(t *testing.T) {
					nm := factory(img, kind)
					n := 0
					stats, err := snapshot.Explore(nm, snapshot.Options{
						Windows: 2,
						Stride:  stride,
						Workers: 2,
					}, func(o snapshot.Outcome) bool {
						n++
						// The referee: a fresh machine booted under the same
						// one-instant schedule the fork ran.
						bm, err := nm(power.NewAt(o.Instant), nil)
						if err != nil {
							t.Fatalf("instant %d: boot machine: %v", o.Instant, err)
						}
						bres, berr := bm.Run()
						if es, bs := errString(o.Err), errString(berr); es != bs {
							t.Fatalf("instant %d: error diverged: fork=%q boot=%q", o.Instant, es, bs)
						}
						if !reflect.DeepEqual(o.Res, bres) {
							t.Fatalf("instant %d: result diverged:\nfork %+v\nboot %+v", o.Instant, o.Res, bres)
						}
						nvmDiff(t, img, o.Sys, bm.System(), o.Instant)
						return n < maxInstants
					})
					if err != nil {
						t.Fatalf("explore: %v", err)
					}
					if stats.Instants == 0 {
						t.Fatal("explored zero crash instants")
					}
				})
			}
		})
	}
}

// TestExploreSharesPrefix pins the headline property: the measured
// simulation work is below the from-boot enumeration cost.
func TestExploreSharesPrefix(t *testing.T) {
	p, ok := program.ByName("towers")
	if !ok {
		t.Skip("towers benchmark not registered")
	}
	img, err := p.Build()
	if err != nil {
		t.Fatal(err)
	}
	stats, err := snapshot.Explore(factory(img, systems.KindNACHO), snapshot.Options{
		Windows:     2,
		SkipWindows: 4,
		Stride:      17,
		Workers:     4,
	}, func(snapshot.Outcome) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	if stats.Instants == 0 {
		t.Fatal("explored zero instants")
	}
	if s := stats.Speedup(); s <= 1 {
		t.Fatalf("speedup %.2f, want > 1 (stats %+v)", s, stats)
	}
}

// TestDeepWindowSpeedupGate holds the issue's performance gate: in the
// deep-window regime (the last two checkpoint intervals of towers on NACHO
// under forced checkpoints — the regime BENCH_emu.json records), the
// measured simulated-cycle speedup over re-run-from-boot is at least 5x.
// The ratio is deterministic: it counts simulated cycles, not wall time.
func TestDeepWindowSpeedupGate(t *testing.T) {
	if testing.Short() {
		t.Skip("deep-window exploration is a second-scale test")
	}
	img := benchImage(t)
	nm := benchFactory(img)
	st, err := snapshot.Explore(nm, snapshot.Options{Stride: 1 << 40},
		func(snapshot.Outcome) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	if st.Windows < 3 {
		t.Fatalf("only %d checkpoint windows", st.Windows)
	}
	deep, err := snapshot.Explore(nm, snapshot.Options{
		SkipWindows: st.Windows - 2, Windows: 2, Stride: 500, Workers: 4,
	}, func(snapshot.Outcome) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	if deep.Instants == 0 {
		t.Fatal("explored zero instants")
	}
	if s := deep.Speedup(); s < 5 {
		t.Fatalf("deep-window speedup %.2fx, gate requires >= 5x (stats %+v)", s, deep)
	}
}

// TestExploreEarlyStop: visit returning false stops the exploration without
// an error and with partial stats.
func TestExploreEarlyStop(t *testing.T) {
	p, _ := program.ByName("crc32")
	if p == nil {
		p = program.All()[0]
	}
	img, err := p.Build()
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	stats, err := snapshot.Explore(factory(img, systems.KindClank), snapshot.Options{Stride: 7},
		func(snapshot.Outcome) bool { n++; return n < 3 })
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 || stats.Instants != 3 {
		t.Fatalf("visited %d outcomes, stats %d, want 3", n, stats.Instants)
	}
}
