// Package snapshot implements exhaustive crash-instant exploration via
// copy-on-write machine forking.
//
// The re-run-from-boot way to test every power-failure instant of an E-cycle
// program costs O(E) per instant — O(E²) total. This package exploits a
// simple identity instead: a failure-free run's machine state at cycle c is
// byte-identical to the state of a from-boot run under power.At(t) at cycle
// c, for every t > c, because the failure has not fired yet and schedules are
// only consulted for the *next* instant. So one shared prefix machine runs
// failure-free from boot, pausing at every checkpoint/commit boundary; for
// each crash instant t inside the window that follows, a copy-on-write fork
// of the paused machine is driven to completion under power.At(t). Every
// fork pays only its own suffix, the prefix is simulated once, and NVM pages
// are shared copy-on-write (internal/mem), so a fork's footprint is the
// pages it actually touches.
//
// Equivalence with from-boot runs is not an approximation. The fork copies
// the register file, cycle counter, run outputs, and metrics by value; the
// memory system replicates itself behind sim.Forkable (deep-copied cache,
// trackers and checkpoint position over the forked NVM space); and the
// fork's next-failure instant is recomputed from its own schedule. The
// harness test suite compares fork-vs-boot results, error strings, and final
// NVM bytes across every benchmark and system.
package snapshot

import (
	"fmt"
	"sync"

	"nacho/internal/emu"
	"nacho/internal/power"
	"nacho/internal/sim"
	"nacho/internal/telemetry"
)

// NewMachine builds a fresh from-boot machine executing the workload under
// the given failure schedule with the given probe (nil for none). Explore
// calls it twice — once for the boundary-scouting pass, once for the shared
// prefix machine — and requires the returned machines to be deterministic:
// two machines from the same factory must replay identically.
type NewMachine func(sched power.Schedule, probe sim.Probe) (*emu.Machine, error)

// Options tunes one exploration.
type Options struct {
	// Windows caps how many checkpoint windows are enumerated; 0 enumerates
	// every window up to program halt.
	Windows int
	// SkipWindows fast-forwards the shared prefix past this many windows
	// before enumeration starts. The skipped prefix is still simulated only
	// once — deep windows are exactly where forking beats from-boot hardest.
	SkipWindows int
	// Stride enumerates every Stride-th crash instant within a window
	// (default 1: every instruction-granular instant).
	Stride uint64
	// Workers is the fork-execution parallelism (default 1). Exploration is
	// deterministic regardless: outcomes are visited in instant order.
	Workers int
	// Span, when non-zero, parents the SpanWindow spans this exploration
	// emits on the campaign tracer (one per enumerated window); zero attaches
	// them to the tracer's ambient span.
	Span telemetry.SpanID
}

// Outcome is the completed run of one forked crash instant.
type Outcome struct {
	// Instant is the cycle at which the injected power failure fires.
	Instant uint64
	// Res is the fork's run result (exit code, results, output, counters,
	// final registers).
	Res emu.Result
	// Err is the fork's run error (nil for a clean halt). Compare with
	// errors.Is / error strings exactly as for a from-boot run.
	Err error
	// Sys is the fork's memory system, for final-NVM inspection.
	Sys sim.System
}

// Stats reports the work an exploration did, in simulated cycles, and the
// measured advantage over re-running every instant from boot.
type Stats struct {
	Windows  int // checkpoint windows enumerated
	Instants int // crash instants executed

	ScoutCycles  uint64 // boundary-scouting pass (one failure-free run)
	PrefixCycles uint64 // shared prefix machine's total advance
	ForkCycles   uint64 // sum over forks of (final cycle - fork cycle)
	BootCycles   uint64 // sum over forks of final cycle = from-boot cost
}

// SimCycles is the total simulation work the exploration actually paid.
func (s Stats) SimCycles() uint64 { return s.ScoutCycles + s.PrefixCycles + s.ForkCycles }

// Speedup is the ratio of from-boot enumeration cost to actual cost.
func (s Stats) Speedup() float64 {
	if s.SimCycles() == 0 {
		return 0
	}
	return float64(s.BootCycles) / float64(s.SimCycles())
}

// scoutProbe records checkpoint-interval boundaries and the halt cycle
// during the scouting pass. JIT saves (ReplayCache's failure-time state
// dump) are not interval boundaries and cannot occur failure-free anyway;
// region ends and commits (forced or not) are.
type scoutProbe struct {
	sim.NopProbe
	commits []uint64
	halt    uint64
	halted  bool
}

func (s *scoutProbe) OnCheckpointCommit(ev sim.CheckpointEvent) {
	if ev.Kind == sim.CheckpointJIT {
		return
	}
	s.commits = append(s.commits, ev.Cycle)
}

func (s *scoutProbe) OnAccess(ev sim.AccessEvent) {
	if ev.Class == sim.AccessMMIO && ev.Store && ev.Addr == emu.ExitAddr {
		s.halt = ev.Cycle
		s.halted = true
	}
}

// Explore enumerates crash instants window by window, calling visit with
// each fork's outcome in strictly increasing instant order. visit returning
// false stops the exploration early (the partial Stats are still returned).
//
// A window is the half-open instant range (b1, b2] between consecutive
// checkpoint/commit boundaries (with boot and the halt instant as the outer
// boundaries): a failure at instant t in that range always rolls back to the
// checkpoint at or before b1, so the prefix machine paused at b1 is the
// deepest shareable state for the whole window.
func Explore(newMachine NewMachine, opts Options, visit func(Outcome) bool) (Stats, error) {
	var stats Stats
	defer func() { recordExploration(stats) }()
	if opts.Stride == 0 {
		opts.Stride = 1
	}
	if opts.Workers <= 0 {
		opts.Workers = 1
	}

	// Scout: one failure-free probed run finds every boundary and the halt
	// instant. Instants past the halting store cannot fire (the final flush
	// runs failure-deferred), so the halt cycle closes the last window.
	sc := &scoutProbe{}
	sm, err := newMachine(power.None{}, sc)
	if err != nil {
		return stats, fmt.Errorf("snapshot: scout machine: %w", err)
	}
	sres, serr := sm.Run()
	stats.ScoutCycles = sres.Counters.Cycles
	end := sres.Counters.Cycles
	if serr == nil && sc.halted {
		end = sc.halt
	}
	if end == 0 {
		return stats, nil
	}

	pm, err := newMachine(power.None{}, nil)
	if err != nil {
		return stats, fmt.Errorf("snapshot: prefix machine: %w", err)
	}

	targets := make([]uint64, 0, len(sc.commits)+1)
	for _, k := range sc.commits {
		if k < end {
			targets = append(targets, k)
		}
	}
	targets = append(targets, end)

	skipped := 0
	cur := uint64(0)
	for _, target := range targets {
		if pm.Halted() || cur >= end {
			break
		}
		if opts.Windows > 0 && stats.Windows >= opts.Windows {
			break
		}
		if target <= cur {
			continue // two boundaries inside one instruction
		}
		var base *emu.Machine
		if skipped >= opts.SkipWindows {
			// Freeze the window's fork base before advancing the prefix.
			if base, err = pm.Fork(power.None{}); err != nil {
				return stats, fmt.Errorf("snapshot: fork base: %w", err)
			}
		}
		if _, err := pm.RunUntil(target); err != nil {
			return stats, fmt.Errorf("snapshot: prefix run to %d: %w", target, err)
		}
		stop := pm.Now()
		if stop > end {
			stop = end
		}
		stats.PrefixCycles = pm.Now()
		if base == nil {
			skipped++
			cur = stop
			continue
		}

		before := stats.Instants
		ws := telemetry.ActiveTracer().Begin(opts.Span, telemetry.SpanWindow, "", "", "")
		more, err := exploreWindow(base, cur, stop, opts, &stats, visit)
		fanOut := uint64(stats.Instants - before)
		windowInstants.Observe(fanOut)
		telemetry.ActiveTracer().End(ws, fanOut, cur+1, err != nil)
		if err != nil || !more {
			return stats, err
		}
		stats.Windows++
		cur = stop
	}
	return stats, nil
}

// exploreWindow forks and runs every Stride-th instant in (from, to] off
// base, visiting outcomes in instant order. Forks execute on opts.Workers
// goroutines in bounded chunks so a large window does not hold every
// outcome's memory system live at once.
func exploreWindow(base *emu.Machine, from, to uint64, opts Options, stats *Stats, visit func(Outcome) bool) (bool, error) {
	var instants []uint64
	for t := from + 1; t <= to; t += opts.Stride {
		instants = append(instants, t)
	}
	chunk := opts.Workers * 16
	if chunk < 64 {
		chunk = 64
	}
	for start := 0; start < len(instants); start += chunk {
		endIdx := start + chunk
		if endIdx > len(instants) {
			endIdx = len(instants)
		}
		batch := instants[start:endIdx]
		outs := make([]Outcome, len(batch))
		errs := make([]error, len(batch))

		idxCh := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < opts.Workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idxCh {
					t := batch[i]
					f, err := base.Fork(power.NewAt(t))
					if err != nil {
						errs[i] = err
						continue
					}
					res, rerr := f.Run()
					outs[i] = Outcome{Instant: t, Res: res, Err: rerr, Sys: f.System()}
				}
			}()
		}
		for i := range batch {
			idxCh <- i
		}
		close(idxCh)
		wg.Wait()

		for i := range batch {
			if errs[i] != nil {
				return false, fmt.Errorf("snapshot: fork at %d: %w", batch[i], errs[i])
			}
			stats.Instants++
			stats.BootCycles += outs[i].Res.Counters.Cycles
			stats.ForkCycles += outs[i].Res.Counters.Cycles - from
			if !visit(outs[i]) {
				return false, nil
			}
		}
	}
	return true, nil
}
