// Package energy implements the rough per-run energy model the paper's
// Section 8 sketches ("our evaluation ... can be further extended to these
// additional metrics to construct a rough energy model"). It folds the
// run counters into picojoule estimates using per-event coefficients.
//
// The default coefficients encode the *relative* costs the paper relies on
// — an NVM (FRAM/MRAM) access costs several times an SRAM access, and
// writes cost more than reads (paper Section 1 and the TI FRAM application
// note it cites) — at magnitudes representative of published ~130 nm
// low-power MCU figures. Absolute numbers are indicative only; the model's
// value is comparing systems under identical coefficients.
package energy

import (
	"nacho/internal/metrics"
	"nacho/internal/sim"
)

// Model holds per-event energy coefficients in picojoules.
type Model struct {
	InstructionPJ  float64 // core pipeline energy per retired instruction
	CacheAccessPJ  float64 // one SRAM/data-cache access
	NVMReadPJByte  float64 // per byte read from NVM
	NVMWritePJByte float64 // per byte written to NVM
}

// DefaultModel returns the reference coefficients: SRAM access ~0.5x the
// core's per-instruction energy; NVM reads ~4x and writes ~6x an SRAM
// access per byte — the FRAM-versus-SRAM ratio band of the paper's sources.
func DefaultModel() Model {
	return Model{
		InstructionPJ:  10,
		CacheAccessPJ:  5,
		NVMReadPJByte:  20,
		NVMWritePJByte: 30,
	}
}

// Breakdown is an energy estimate split by subsystem, in picojoules.
type Breakdown struct {
	CorePJ     float64
	CachePJ    float64
	NVMReadPJ  float64
	NVMWritePJ float64
}

// TotalPJ sums the breakdown.
func (b Breakdown) TotalPJ() float64 {
	return b.CorePJ + b.CachePJ + b.NVMReadPJ + b.NVMWritePJ
}

// TotalUJ is the total in microjoules.
func (b Breakdown) TotalUJ() float64 { return b.TotalPJ() / 1e6 }

// Estimate folds one run's counters into the model. Cache accesses are the
// hit+miss probe count (the volatile baseline reports its SRAM accesses as
// hits).
func (m Model) Estimate(c metrics.Counters) Breakdown {
	return Breakdown{
		CorePJ:     m.InstructionPJ * float64(c.Instructions),
		CachePJ:    m.CacheAccessPJ * float64(c.CacheHits+c.CacheMisses),
		NVMReadPJ:  m.NVMReadPJByte * float64(c.NVMReadBytes),
		NVMWritePJ: m.NVMWritePJByte * float64(c.NVMWriteBytes),
	}
}

// Meter is the live counterpart of Estimate: a sim.Probe that accumulates
// the same energy breakdown directly from the event stream, with no counters
// in between. On a failure-free run Meter and Estimate agree exactly (the
// coefficients and event counts are integer-valued in float64).
type Meter struct {
	sim.NopProbe
	m Model
	b Breakdown
}

// NewMeter builds a meter with the given coefficients (zero Model fields are
// NOT defaulted; pass DefaultModel() for the reference coefficients).
func NewMeter(m Model) *Meter { return &Meter{m: m} }

// OnRetire implements sim.Probe.
func (e *Meter) OnRetire(sim.RetireEvent) { e.b.CorePJ += e.m.InstructionPJ }

// OnAccess implements sim.Probe: hit- and miss-class accesses touched the
// cache SRAM; direct-NVM and MMIO accesses did not.
func (e *Meter) OnAccess(ev sim.AccessEvent) {
	switch ev.Class {
	case sim.AccessHit, sim.AccessMiss:
		e.b.CachePJ += e.m.CacheAccessPJ
	}
}

// OnNVM implements sim.Probe.
func (e *Meter) OnNVM(ev sim.NVMEvent) {
	if ev.Write {
		e.b.NVMWritePJ += e.m.NVMWritePJByte * float64(ev.Bytes)
	} else {
		e.b.NVMReadPJ += e.m.NVMReadPJByte * float64(ev.Bytes)
	}
}

// Breakdown returns the energy accumulated so far.
func (e *Meter) Breakdown() Breakdown { return e.b }
