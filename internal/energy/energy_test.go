package energy

import (
	"testing"

	"nacho/internal/metrics"
)

func TestEstimateBreakdown(t *testing.T) {
	m := Model{InstructionPJ: 1, CacheAccessPJ: 2, NVMReadPJByte: 3, NVMWritePJByte: 4}
	c := metrics.Counters{Instructions: 10, CacheHits: 3, CacheMisses: 2, NVMReadBytes: 5, NVMWriteBytes: 7}
	b := m.Estimate(c)
	if b.CorePJ != 10 || b.CachePJ != 10 || b.NVMReadPJ != 15 || b.NVMWritePJ != 28 {
		t.Errorf("breakdown = %+v", b)
	}
	if b.TotalPJ() != 63 {
		t.Errorf("total = %f", b.TotalPJ())
	}
	if b.TotalUJ() != 63e-6 {
		t.Errorf("uJ = %g", b.TotalUJ())
	}
}

func TestDefaultModelOrdering(t *testing.T) {
	m := DefaultModel()
	if !(m.NVMWritePJByte > m.NVMReadPJByte && m.NVMReadPJByte > m.CacheAccessPJ) {
		t.Errorf("NVM/SRAM cost ordering violated: %+v", m)
	}
}
