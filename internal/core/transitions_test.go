package core

import "testing"

// TestAlgorithm1TransitionTable is an exhaustive specification test of
// Algorithm 1: for every reachable pw/rd/dirty configuration of Figure 4 and
// every access event (hit/miss × read/full-word write/sub-word write), it
// checks the resulting bit configuration and the write-back action
// (none / safe eviction / checkpoint) against a transition table derived
// independently from the paper's pseudocode.
//
// States are Figure 4's numbering: pw*4 + rd*2 + dirty. Configuration 4
// (pw only) is invalid and has no row — TestInvalidState4Unreachable shows
// it cannot occur.
func TestAlgorithm1TransitionTable(t *testing.T) {
	const a, b = 0x1000, 0x1004 // same set of a single-line cache

	// setup drives a fresh controller so that the one cache line holds the
	// returned address in the given Figure 4 state.
	setups := map[int]func(r *rig) uint32{
		0: func(r *rig) uint32 { r.k.Store(a, 4, 1); r.k.ForceCheckpoint(); return a },
		1: func(r *rig) uint32 { r.k.Store(a, 4, 1); return a },
		2: func(r *rig) uint32 { r.k.Load(a, 4); return a },
		3: func(r *rig) uint32 { r.k.Load(a, 4); r.k.Store(a, 4, 1); return a },
		5: func(r *rig) uint32 { r.k.Load(a, 4); r.k.Store(b, 4, 1); return b },
		6: func(r *rig) uint32 { r.k.Load(a, 4); r.k.Load(b, 4); return b },
		7: func(r *rig) uint32 { r.k.Load(a, 4); r.k.Load(b, 4); r.k.Store(b, 1, 1); return b },
	}

	type event int
	const (
		hitRead event = iota
		hitWrite
		hitWriteSub
		missRead
		missWrite
		missWriteSub
	)
	eventNames := map[event]string{
		hitRead: "hit-read", hitWrite: "hit-write4", hitWriteSub: "hit-writeb",
		missRead: "miss-read", missWrite: "miss-write4", missWriteSub: "miss-writeb",
	}

	type action int
	const (
		none action = iota
		evict
		checkpoint
	)

	type expect struct {
		state  int
		action action
	}

	// The transition table, row-by-row from Algorithm 1's pseudocode.
	table := map[int]map[event]expect{
		0: { // all clear after a checkpoint: first hit re-classifies
			hitRead:      {2, none},
			hitWrite:     {1, none},
			hitWriteSub:  {3, none},
			missRead:     {2, none}, // clean replacement, wasRD=false
			missWrite:    {1, none},
			missWriteSub: {3, none},
		},
		1: { // write-dominated dirty
			hitRead:      {1, none}, // first access was a write: stays safe
			hitWrite:     {1, none},
			hitWriteSub:  {1, none},
			missRead:     {2, evict}, // safe write-back, then read classifies
			missWrite:    {1, evict},
			missWriteSub: {3, evict},
		},
		2: { // read-dominated clean
			hitRead:      {2, none},
			hitWrite:     {3, none}, // dirty; rd stays: read-dominated WAR pending
			hitWriteSub:  {3, none},
			missRead:     {6, none}, // replaced rd entry: pw set (one-bit history)
			missWrite:    {5, none}, // pw checked before being set: write-dominated
			missWriteSub: {7, none},
		},
		3: { // read-dominated dirty: any eviction is unsafe
			hitRead:      {3, none},
			hitWrite:     {3, none},
			hitWriteSub:  {3, none},
			missRead:     {2, checkpoint},
			missWrite:    {1, checkpoint}, // pw cleared by the checkpoint
			missWriteSub: {3, checkpoint},
		},
		5: { // pw & write-dominated dirty
			hitRead:      {5, none},
			hitWrite:     {5, none},
			hitWriteSub:  {5, none},
			missRead:     {6, evict},
			missWrite:    {7, evict}, // pw forces read-dominated (Section 4.2.2)
			missWriteSub: {7, evict},
		},
		6: { // pw & read-dominated clean
			hitRead:      {6, none},
			hitWrite:     {7, none},
			hitWriteSub:  {7, none},
			missRead:     {6, none},
			missWrite:    {7, none},
			missWriteSub: {7, none},
		},
		7: { // pw & read-dominated dirty
			hitRead:      {7, none},
			hitWrite:     {7, none},
			hitWriteSub:  {7, none},
			missRead:     {2, checkpoint},
			missWrite:    {1, checkpoint},
			missWriteSub: {3, checkpoint},
		},
	}

	for state, rows := range table {
		for ev, want := range rows {
			state, ev, want := state, ev, want
			t.Run(eventNames[ev]+"/from-state", func(t *testing.T) {
				r := newRig(t, 4, 1, WARCacheBits, false)
				cur := setups[state](r)
				if got := r.bits(cur); got != state {
					t.Fatalf("setup for state %d produced %d", state, got)
				}
				ckptsBefore := r.c.Checkpoints
				evictsBefore := r.c.SafeEvictions

				target := cur
				if ev >= missRead {
					target = a + b - cur // the other same-set address
				}
				switch ev {
				case hitRead, missRead:
					r.k.Load(target, 4)
				case hitWrite, missWrite:
					r.k.Store(target, 4, 0x42)
				case hitWriteSub, missWriteSub:
					r.k.Store(target, 1, 0x42)
				}

				if got := r.bits(target); got != want.state {
					t.Errorf("state %d + %s: reached state %d, want %d",
						state, eventNames[ev], got, want.state)
				}
				gotCkpt := r.c.Checkpoints - ckptsBefore
				gotEvict := r.c.SafeEvictions - evictsBefore
				switch want.action {
				case none:
					if gotCkpt != 0 || gotEvict != 0 {
						t.Errorf("state %d + %s: unexpected action (ckpt=%d evict=%d)",
							state, eventNames[ev], gotCkpt, gotEvict)
					}
				case evict:
					if gotCkpt != 0 || gotEvict != 1 {
						t.Errorf("state %d + %s: want safe eviction, got ckpt=%d evict=%d",
							state, eventNames[ev], gotCkpt, gotEvict)
					}
				case checkpoint:
					if gotCkpt != 1 {
						t.Errorf("state %d + %s: want checkpoint, got %d", state, eventNames[ev], gotCkpt)
					}
				}
			})
		}
	}
}
