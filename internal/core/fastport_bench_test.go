package core

import (
	"testing"

	"nacho/internal/mem"
	"nacho/internal/metrics"
	"nacho/internal/sim"
)

// benchPort builds a warmed controller and returns its fast port: n distinct
// word lines resident and dirty, so every LoadHit/StoreHit serves.
func benchPort(b *testing.B, war WARMode) (sim.FastPort, *metrics.Counters) {
	b.Helper()
	nvm := mem.NewNVM(mem.NewSpace(), mem.DefaultCostModel())
	k, err := New("bench", nvm, Options{
		CacheSize: 512, Ways: 2, WARMode: war,
		StackTop: 0x000A_0000, CheckpointBase: 0x000E_0000, Cost: mem.DefaultCostModel(),
	})
	if err != nil {
		b.Fatal(err)
	}
	var c metrics.Counters
	k.Attach(&sim.TestClock{}, &fakeRegs{sp: 0x000A_0000}, &c)
	for a := uint32(0x1000); a < 0x1000+512; a += 4 {
		k.Store(a, 4, a)
	}
	port, ok := k.FastPort()
	if !ok {
		b.Fatal("fast port refused")
	}
	return port, &c
}

// BenchmarkFastPortLoadHit measures the served-hit cost of the port's read
// direction — the innermost operation of the AOT engine on cached systems.
func BenchmarkFastPortLoadHit(b *testing.B) {
	port, _ := benchPort(b, WARCacheBits)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := port.LoadHit(0x1000+uint32(i*4)&255, 4); !ok {
			b.Fatal("declined")
		}
	}
}

// BenchmarkFastPortLoadHitRepeat measures the memoized repeat-hit path: the
// same line served back to back, as in a tight simulated loop.
func BenchmarkFastPortLoadHitRepeat(b *testing.B) {
	port, _ := benchPort(b, WARCacheBits)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := port.LoadHit(0x1000, 4); !ok {
			b.Fatal("declined")
		}
	}
}

// BenchmarkFastPortStoreHit measures the served-hit cost of the write
// direction.
func BenchmarkFastPortStoreHit(b *testing.B) {
	port, _ := benchPort(b, WARCacheBits)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !port.StoreHit(0x1000+uint32(i*4)&255, 4, uint32(i)) {
			b.Fatal("declined")
		}
	}
}

// BenchmarkFullLoadHit is the sim.System interface hit path the port
// replaces, for comparison.
func BenchmarkFullLoadHit(b *testing.B) {
	nvm := mem.NewNVM(mem.NewSpace(), mem.DefaultCostModel())
	k, err := New("bench", nvm, Options{
		CacheSize: 512, Ways: 2, WARMode: WARCacheBits,
		StackTop: 0x000A_0000, CheckpointBase: 0x000E_0000, Cost: mem.DefaultCostModel(),
	})
	if err != nil {
		b.Fatal(err)
	}
	var c metrics.Counters
	k.Attach(&sim.TestClock{}, &fakeRegs{sp: 0x000A_0000}, &c)
	var sys sim.System = k
	for a := uint32(0x1000); a < 0x1000+512; a += 4 {
		sys.Store(a, 4, a)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Load(0x1000+uint32(i*4)&255, 4)
	}
}
