package core

import (
	"testing"

	"nacho/internal/cache"
	"nacho/internal/mem"
	"nacho/internal/sim"
)

func newRigOpts(t *testing.T, opts Options) *rig {
	t.Helper()
	r := &rig{clk: &sim.TestClock{}, regs: fakeRegs{sp: testStackTop}}
	r.nvm = mem.NewNVM(mem.NewSpace(), mem.DefaultCostModel())
	opts.StackTop = testStackTop
	opts.CheckpointBase = testCkptBase
	opts.Cost = mem.DefaultCostModel()
	k, err := New("test", r.nvm, opts)
	if err != nil {
		t.Fatal(err)
	}
	k.Attach(r.clk, &r.regs, &r.c)
	r.k = k
	return r
}

func TestAdaptiveThresholdBoundsCheckpointSize(t *testing.T) {
	r := newRigOpts(t, Options{CacheSize: 64, Ways: 2, WARMode: WARCacheBits, DirtyThreshold: 4})
	// Dirty many distinct lines: the policy must checkpoint before more than
	// 4 (+ the in-flight line) are dirty at once.
	for i := uint32(0); i < 16; i++ {
		r.k.Store(0x1000+4*i, 4, i)
	}
	if r.c.AdaptiveCkpts == 0 {
		t.Fatal("adaptive policy never fired")
	}
	if r.c.MaxCheckpointLines > 5 {
		t.Errorf("max checkpoint lines = %d, want <= threshold+1", r.c.MaxCheckpointLines)
	}
}

func TestAdaptiveCountTracksCleaning(t *testing.T) {
	// Safe evictions clean lines; the dirty count must follow, so a working
	// set cycled through one set never trips a generous threshold.
	r := newRigOpts(t, Options{CacheSize: 8, Ways: 1, WARMode: WARCacheBits, DirtyThreshold: 6})
	for i := uint32(0); i < 40; i++ {
		r.k.Store(0x1000+8*i, 4, i) // same set, evicts (safe) each time
	}
	if r.c.AdaptiveCkpts != 0 {
		t.Errorf("adaptive fired %d times despite evictions cleaning lines", r.c.AdaptiveCkpts)
	}
}

func TestEnergyPredictionReducesCheckpointWrites(t *testing.T) {
	dirty := func(ep bool) uint64 {
		r := newRigOpts(t, Options{CacheSize: 64, Ways: 2, WARMode: WARCacheBits, EnergyPrediction: ep})
		for i := uint32(0); i < 8; i++ {
			r.k.Store(0x1000+4*i, 4, i)
		}
		r.k.ForceCheckpoint()
		return r.c.NVMWrites
	}
	db, sb := dirty(false), dirty(true)
	if sb >= db {
		t.Errorf("single-buffered checkpoint wrote %d words, double-buffered %d", sb, db)
	}
	// The double-buffered flow stages every line (2 words) then applies it
	// (1 word); single-buffered writes each line once: expect a substantial
	// cut, approaching the paper's "halving".
	if float64(sb) > 0.75*float64(db) {
		t.Errorf("saving too small: %d vs %d", sb, db)
	}
}

func TestEnergyPredictionDefersFailureAcrossCheckpoint(t *testing.T) {
	r := newRigOpts(t, Options{CacheSize: 16, Ways: 2, WARMode: WARCacheBits, EnergyPrediction: true})
	for i := uint32(0); i < 4; i++ {
		r.k.Store(0x1000+4*i, 4, 0xA0+i)
	}
	// Schedule the failure for the middle of the upcoming checkpoint.
	r.clk.FailAt = r.clk.Cycle + 30
	failed := false
	func() {
		defer func() {
			if rec := recover(); rec != nil {
				if _, ok := rec.(sim.PowerFail); !ok {
					panic(rec)
				}
				failed = true
			}
		}()
		r.k.ForceCheckpoint()
	}()
	if !failed {
		t.Fatal("deferred failure never fired")
	}
	// The checkpoint must have completed in full before the failure: all
	// four lines are home in NVM and the snapshot is restorable.
	for i := uint32(0); i < 4; i++ {
		if got := r.nvm.ReadRaw(0x1000+4*i, 4); got != 0xA0+i {
			t.Errorf("line %d not persisted before deferred failure: %#x", i, got)
		}
	}
	r.k.PowerFailure()
	if _, ok := r.k.Restore(); !ok {
		t.Error("no restorable checkpoint after deferred failure")
	}
}

func TestEnergyPredictionCacheStateConsistent(t *testing.T) {
	r := newRigOpts(t, Options{CacheSize: 16, Ways: 2, WARMode: WARCacheBits, EnergyPrediction: true})
	r.k.Store(0x1000, 4, 7)
	r.k.ForceCheckpoint()
	l := r.k.Cache().Probe(0x1000)
	if l == nil || l.Dirty {
		t.Error("cache state wrong after single-buffered checkpoint")
	}
	if r.nvm.ReadRaw(0x1000, 4) != 7 {
		t.Error("line not persisted")
	}
	_ = cache.LineSize
}
