//go:build !race

// Allocation gates are meaningless under the race detector's instrumented
// allocator, so this file is excluded from -race runs; ci.sh runs it
// explicitly without -race as the fast-path allocation gate.

package core

import "testing"

// TestFastPortHitPathZeroAlloc gates the execution engines' inner loop: a
// served fast-port hit — probe, WAR observation, LRU touch, data access —
// must not allocate, or every cached load in the AOT engine would churn the
// garbage collector.
func TestFastPortHitPathZeroAlloc(t *testing.T) {
	r := newRig(t, 512, 2, WARCacheBits, false)
	port, ok := r.k.FastPort()
	if !ok {
		t.Fatal("fast port refused")
	}
	const addr = 0x1000
	r.k.Store(addr, 4, 0xABCD) // warm: valid and dirty, so both directions serve
	served := true
	if n := testing.AllocsPerRun(200, func() {
		_, okL := port.LoadHit(addr, 4)
		okS := port.StoreHit(addr, 4, 0x1234)
		_ = port.Epoch()
		served = served && okL && okS
	}); n != 0 {
		t.Fatalf("fast-port hit path allocates: %v allocs/op", n)
	}
	if !served {
		t.Fatal("warm hit declined; the gate measured the decline path")
	}
}
