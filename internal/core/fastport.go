// FastPort: the devirtualized hit path of the NACHO controller.
//
// The paper's argument (Section 4) is that hits in the volatile data cache
// are the common, cheap case and only WAR/eviction/checkpoint events need the
// expensive machinery. The execution engines exploit the same structure in
// the simulator: a plain hit — valid line, no rd/pw first-touch transition,
// no eviction, no adaptive-checkpoint bookkeeping — is served here without a
// dynamic sim.System call, probe emission, or clock virtual dispatch.
// Everything else declines and falls back to Load/Store, which reproduces the
// full Algorithm 1 behavior (including the panic-at-failure-instant clock
// semantics) byte for byte.
package core

import "nacho/internal/sim"

// FastPort implements sim.FastMemory. The port is withheld while a probe is
// attached: probed runs keep the reference path as the sole event emitter.
func (k *Controller) FastPort() (sim.FastPort, bool) {
	return sim.FastPort{
		LoadHit:   k.loadHit,
		StoreHit:  k.storeHit,
		Epoch:     func() uint64 { return k.epoch },
		HitCycles: k.opts.Cost.HitCycles,
	}, k.probe == nil
}

// loadHit serves a read that hits a line with settled WAR metadata. A
// first-touch line in cache-bits mode (pw=rd=dirty=0) declines: the full path
// runs updateLine's RD transition there (Algorithm 1's UpdateLine).
func (k *Controller) loadHit(addr uint32, size int) (uint32, bool) {
	// Serve straight from the memoized line when the access repeats: the
	// memo survives exactly one epoch, within which tags cannot change.
	line := k.portLoadLine
	if line == nil || line.Tag != addr>>2 {
		if line = k.cache.Probe(addr); line == nil {
			return 0, false
		}
		k.portLoadLine = line
	}
	if k.opts.WARMode == WARCacheBits && !line.PW && !line.RD && !line.Dirty {
		return 0, false
	}
	k.c.CacheHits++
	k.cache.Touch(line)
	if k.tracker != nil {
		k.tracker.ObserveRead(addr, size)
	}
	return line.ReadData(addr, size), true
}

// storeHit serves a write that hits an already-dirty (or metadata-settled)
// line. It declines on the first-touch transition (cache-bits updateLine) and
// whenever the adaptive dirty-threshold policy would have to count a newly
// dirtied line — the full path owns dirtyCount and the possible adaptive
// checkpoint.
func (k *Controller) storeHit(addr uint32, size int, val uint32) bool {
	line := k.portStoreLine
	if line == nil || line.Tag != addr>>2 {
		if line = k.cache.Probe(addr); line == nil {
			return false
		}
		k.portStoreLine = line
	}
	if k.opts.WARMode == WARCacheBits && !line.PW && !line.RD && !line.Dirty {
		return false
	}
	if k.opts.DirtyThreshold > 0 && !line.Dirty {
		return false
	}
	k.c.CacheHits++
	k.cache.Touch(line)
	if k.tracker != nil {
		k.tracker.ObserveWrite(addr, size)
	}
	line.WriteData(addr, size, val)
	line.Dirty = true
	return true
}
