// Package core implements the paper's primary contribution: the NACHO data
// cache controller (Sections 3 and 4). The controller is a volatile
// write-back data cache in front of non-volatile main memory that doubles as
// the WAR detector: two extra bits per cache line — read-dominated (rd) and
// possible-WAR (pw) — classify every dirty write-back as *safe*
// (write-dominated, written straight to NVM) or *unsafe* (possibly
// read-dominated, requiring a checkpoint first). Stack tracking
// (Section 4.2.4) additionally drops dirty lines belonging to deallocated
// stack frames instead of writing them back.
//
// The same controller also realizes the paper's two NACHO ablation systems
// (Section 6.1.2): Naive NACHO (no WAR detector: every dirty eviction
// checkpoints; no stack tracking) and Oracle NACHO (a perfect exact-address
// WAR detector in place of the cache bits). Table 3's component breakdown
// (PW-only / ST-only) falls out of the same two switches.
package core

import (
	"nacho/internal/cache"
	"nacho/internal/checkpoint"
	"nacho/internal/mem"
	"nacho/internal/metrics"
	"nacho/internal/sim"
	"nacho/internal/track"
)

// WARMode selects how the controller decides whether a dirty write-back is
// safe.
type WARMode int

// WAR detection modes.
const (
	// WARNone is Naive NACHO: every dirty eviction is treated as unsafe.
	WARNone WARMode = iota
	// WARCacheBits is NACHO: the pw/rd cache-line bits of Algorithm 1.
	WARCacheBits
	// WARExact is Oracle NACHO: a perfect exact-address dominance tracker.
	WARExact
)

// String names the WAR detection mode.
func (m WARMode) String() string {
	switch m {
	case WARNone:
		return "none"
	case WARCacheBits:
		return "cache-bits"
	case WARExact:
		return "exact"
	}
	return "unknown"
}

// Options configures a controller instance.
type Options struct {
	CacheSize     int // data capacity in bytes
	Ways          int // associativity
	WARMode       WARMode
	StackTracking bool
	// StackTop is the initial stack pointer (stack grows down from here).
	StackTop uint32
	// CheckpointBase is the NVM address of the double-buffered checkpoint
	// area; it must not overlap program text, data, or stack.
	CheckpointBase uint32
	Cost           mem.CostModel

	// DirtyThreshold, when non-zero, enables the adaptive checkpointing
	// policy sketched in paper Section 8: the controller proactively
	// checkpoints as soon as more than DirtyThreshold lines are dirty,
	// bounding the energy any single future checkpoint can need.
	DirtyThreshold int

	// EnergyPrediction models a platform that can guarantee enough banked
	// energy to finish a checkpoint (Section 8, "Energy Prediction"):
	// checkpoints run single-buffered, halving their NVM writes. The
	// emulator defers power failures across such checkpoints, the same
	// guarantee the paper's hardware assumption provides.
	EnergyPrediction bool

	// TestInvertPW deliberately inverts the cache-bits write-back safety
	// check (a read-dominated line is treated as safe to evict and vice
	// versa). It exists only so the crash-consistency fuzzer can prove its
	// oracle catches a broken WAR protocol; no production Kind sets it.
	TestInvertPW bool
}

type accessType int

const (
	accessRead accessType = iota
	accessWrite
)

// Controller is the NACHO memory system; it implements sim.System.
type Controller struct {
	name  string
	opts  Options
	cache *cache.Cache
	nvm   *mem.NVM
	ckpt  *checkpoint.Store

	clk   sim.Clock
	regs  sim.RegSource
	c     *metrics.Counters
	probe sim.Probe

	tracker    *track.Tracker // exact mode only
	sp         uint32
	spMin      uint32
	dirtyCount int    // maintained only when DirtyThreshold > 0
	lastCommit uint64 // cycle of the previous checkpoint commit
	epoch      uint64 // sim.FastPort invalidation epoch (see fastport.go)

	// portLoadLine/portStoreLine memoize the line of the last port-served hit
	// in each direction (see fastport.go); bumpEpoch clears them. A memo is
	// valid exactly while the epoch stands: Install (the only Tag mutation)
	// and InvalidateAll are reachable only through epoch-bumping paths.
	portLoadLine  *cache.Line
	portStoreLine *cache.Line
}

// bumpEpoch records a fast-port invalidation event: previously returned port
// answers no longer bind, and the memoized hit lines may have been replaced,
// cleared, or metadata-reset.
func (k *Controller) bumpEpoch() {
	k.epoch++
	k.portLoadLine = nil
	k.portStoreLine = nil
}

// New builds a controller over the given NVM space. name is the system label
// used in experiment output.
func New(name string, nvm *mem.NVM, opts Options) (*Controller, error) {
	ch, err := cache.New(opts.CacheSize, opts.Ways)
	if err != nil {
		return nil, err
	}
	k := &Controller{
		name:  name,
		opts:  opts,
		cache: ch,
		nvm:   nvm,
		ckpt:  checkpoint.NewStore(nvm, opts.CheckpointBase, ch.NumLines()),
		sp:    opts.StackTop,
		spMin: opts.StackTop,
	}
	if opts.WARMode == WARExact {
		k.tracker = track.New()
	}
	return k, nil
}

// Name implements sim.System.
func (k *Controller) Name() string { return k.name }

// Mem implements sim.System.
func (k *Controller) Mem() sim.MemReaderWriter { return k.nvm }

// Attach implements sim.System; it also seeds the boot checkpoint.
func (k *Controller) Attach(clk sim.Clock, regs sim.RegSource, c *metrics.Counters) {
	k.clk, k.regs, k.c = clk, regs, c
	k.nvm.Attach(clk, c)
	k.ckpt.Init(regs.RegSnapshot())
}

// Fork implements sim.Forkable: an independent controller over a
// copy-on-write fork of the NVM space, with the cache, WAR tracker, stack
// bounds, and checkpoint-store position deep-copied and the replica wired to
// the forked machine's clock, registers, and counters. Probe-free by design.
func (k *Controller) Fork(clk sim.Clock, regs sim.RegSource, c *metrics.Counters) sim.System {
	nvm := k.nvm.Fork()
	nvm.Attach(clk, c)
	f := &Controller{
		name:       k.name,
		opts:       k.opts,
		cache:      k.cache.Clone(),
		nvm:        nvm,
		ckpt:       k.ckpt.Fork(nvm),
		clk:        clk,
		regs:       regs,
		c:          c,
		sp:         k.sp,
		spMin:      k.spMin,
		dirtyCount: k.dirtyCount,
		lastCommit: k.lastCommit,
		epoch:      k.epoch,
	}
	if k.tracker != nil {
		f.tracker = k.tracker.Clone()
	}
	return f
}

// AttachProbe implements sim.System: the observer sees the controller's
// access, write-back, and checkpoint events plus the events of the components
// it owns (cache fills, NVM traffic, checkpoint staging). nil detaches.
func (k *Controller) AttachProbe(p sim.Probe) {
	k.bumpEpoch()
	k.probe = p
	k.cache.AttachProbe(p)
	k.nvm.AttachProbe(p)
	k.ckpt.AttachProbe(p)
}

// Cache exposes the underlying cache for white-box tests.
func (k *Controller) Cache() *cache.Cache { return k.cache }

// Load implements sim.System.
func (k *Controller) Load(addr uint32, size int) uint32 {
	line, hit := k.access(addr, accessRead, size)
	// Exact-mode tracking observes the access *after* the cache handled it:
	// if the miss checkpointed, the interval reset and the in-flight read
	// belongs to the new interval (it re-executes after a rollback to that
	// checkpoint).
	if k.tracker != nil {
		k.tracker.ObserveRead(addr, size)
	}
	k.clk.Advance(k.opts.Cost.HitCycles)
	v := line.ReadData(addr, size)
	if k.probe != nil {
		k.probe.OnAccess(sim.AccessEvent{Cycle: k.clk.Now(), Addr: addr, Size: size, Value: v, Class: classOf(hit)})
	}
	return v
}

// Store implements sim.System.
func (k *Controller) Store(addr uint32, size int, val uint32) {
	line, hit := k.access(addr, accessWrite, size)
	if k.tracker != nil {
		k.tracker.ObserveWrite(addr, size)
	}
	k.clk.Advance(k.opts.Cost.HitCycles)
	adaptive := false
	if k.opts.DirtyThreshold > 0 && !line.Dirty {
		k.dirtyCount++
		adaptive = k.dirtyCount > k.opts.DirtyThreshold
	}
	line.WriteData(addr, size, val)
	line.Dirty = true
	if adaptive {
		// Adaptive policy: flush before the dirty set grows beyond the
		// configured energy budget. The dirty set (including this line)
		// persists with the checkpoint and the new interval starts clean.
		k.checkpoint(ckptAdaptive)
		k.c.AdaptiveCkpts++
	}
	if k.probe != nil {
		k.probe.OnAccess(sim.AccessEvent{Cycle: k.clk.Now(), Addr: addr, Size: size, Value: val, Store: true, Class: classOf(hit)})
	}
}

// classOf maps a cache probe outcome to the access event class.
func classOf(hit bool) sim.AccessClass {
	if hit {
		return sim.AccessHit
	}
	return sim.AccessMiss
}

// access is Algorithm 1's MemoryAccess procedure.
func (k *Controller) access(addr uint32, t accessType, size int) (*cache.Line, bool) {
	line := k.cache.Probe(addr)
	if line == nil {
		k.c.CacheMisses++
		return k.miss(addr, t, size), false
	}
	k.c.CacheHits++
	if k.opts.WARMode == WARCacheBits && !line.PW && !line.RD && !line.Dirty {
		// First touch of this line since the last checkpoint.
		k.updateLine(line, addr, t, size)
	}
	k.cache.Touch(line)
	return line, true
}

// miss is Algorithm 1's CacheMiss procedure.
func (k *Controller) miss(addr uint32, t accessType, size int) *cache.Line {
	// Every miss replaces a line (and may evict or checkpoint): whatever the
	// fast port would have answered before is no longer guaranteed.
	k.bumpEpoch()
	line := k.cache.Victim(addr)
	if line.Valid && line.Dirty {
		victimAddr := line.Addr()
		switch {
		case k.inUnusedStack(victimAddr):
			// Dead stack frame: discard without write-back. Only the dirty
			// bit clears — the line's rd must survive into updateLine's
			// was-read-dominated so the set's possible-WAR history is
			// preserved (dropping it would let a later write-miss to a
			// previously-read address in this set be misclassified as
			// write-dominated: a false negative).
			k.c.DroppedStackLines++
			line.Dirty = false
			k.noteClean()
			k.emitWriteBack(victimAddr, sim.VerdictDroppedStack)
		case k.unsafeWriteBack(line):
			// Read-dominated write-back: checkpoint flushes every dirty
			// line (including this one) and clears all WAR bits.
			k.c.UnsafeEvictions++
			k.emitWriteBack(victimAddr, sim.VerdictUnsafe)
			k.checkpoint(ckptEvict)
		default:
			// Write-dominated: safe to evict straight to NVM.
			k.c.SafeEvictions++
			k.c.Evictions++
			k.nvm.Write(victimAddr, 4, line.Data)
			line.Dirty = false
			k.noteClean()
			k.emitWriteBack(victimAddr, sim.VerdictSafe)
		}
	}
	if k.opts.WARMode == WARCacheBits {
		// Uses the victim's *old* rd as was-read-dominated, setting pw if a
		// read-dominated entry is being replaced (Section 4.2.2).
		k.updateLine(line, addr, t, size)
	}
	k.cache.Install(line, addr)
	line.Dirty = false
	// A read miss, or a write narrower than the line, fetches the line from
	// NVM (the fill the paper's size-4 rule in UpdateLine accounts for).
	if t == accessRead || size < cache.LineSize {
		line.Data = k.nvm.Read(addr&^3, 4)
	} else {
		line.Data = 0
	}
	return line
}

// updateLine is Algorithm 1's UpdateLine procedure (cache-bits mode only).
func (k *Controller) updateLine(line *cache.Line, addr uint32, t accessType, size int) {
	wasRD := line.RD
	if t == accessRead {
		line.RD = true
	} else {
		// Consider the pw bits of every line in the *destination* set
		// (Section 4.2.3: with n ways the read history may live in any of
		// the n lines).
		possibleWAR := false
		set := k.cache.Set(addr)
		for i := range set {
			if set[i].PW {
				possibleWAR = true
				break
			}
		}
		if !possibleWAR && size == cache.LineSize {
			line.RD = false // write-dominated
		} else {
			line.RD = true // conservative: sub-line write fills from NVM
		}
	}
	if wasRD {
		// Set last, so the current transition does not observe it.
		line.PW = true
	}
}

// unsafeWriteBack decides whether writing the dirty line back to NVM could be
// a WAR violation, per the configured detection mode.
func (k *Controller) unsafeWriteBack(line *cache.Line) bool {
	switch k.opts.WARMode {
	case WARCacheBits:
		if k.opts.TestInvertPW {
			return !line.RD
		}
		return line.RD
	case WARExact:
		return k.tracker.ReadDominated(line.Addr(), 4)
	default: // WARNone — Naive NACHO
		return true
	}
}

// emitWriteBack reports one dirty-victim verdict to the probe.
func (k *Controller) emitWriteBack(addr uint32, v sim.Verdict) {
	if k.probe != nil {
		k.probe.OnWriteBack(sim.WriteBackEvent{Cycle: k.clk.Now(), Addr: addr, Size: 4, Verdict: v})
	}
}

// noteClean maintains the adaptive policy's dirty-line count when a line
// becomes clean outside a checkpoint.
func (k *Controller) noteClean() {
	if k.opts.DirtyThreshold > 0 && k.dirtyCount > 0 {
		k.dirtyCount--
	}
}

// inUnusedStack is Algorithm 1's InUnusedStack: the address lies in stack
// memory deallocated since the last checkpoint (between sp_min and the
// current sp; the stack grows downward).
func (k *Controller) inUnusedStack(addr uint32) bool {
	return k.opts.StackTracking && addr >= k.spMin && addr < k.sp
}

// ckptCause records why a checkpoint was taken; it shapes the commit event.
type ckptCause int

const (
	ckptEvict    ckptCause = iota // unsafe dirty eviction (Algorithm 1)
	ckptForced                    // periodic forward-progress checkpoint
	ckptAdaptive                  // dirty-threshold adaptive policy (Section 8)
)

// checkpoint is Algorithm 1's Checkpoint procedure: double-buffered flush of
// all live dirty lines plus the register file, then clear every WAR bit.
func (k *Controller) checkpoint(cause ckptCause) {
	k.bumpEpoch()
	var lines []checkpoint.Line
	k.cache.ForEach(func(l *cache.Line) {
		if l.Valid && l.Dirty {
			if k.inUnusedStack(l.Addr()) {
				k.c.DroppedStackLines++
				k.emitWriteBack(l.Addr(), sim.VerdictDroppedStack)
				return
			}
			lines = append(lines, checkpoint.Line{Addr: l.Addr(), Data: l.Data})
		}
	})
	commit := k.ckpt.Checkpoint
	if k.opts.EnergyPrediction {
		commit = k.ckpt.CheckpointSingleBuffered
		if er, ok := k.clk.(sim.EnergyReserve); ok {
			// The platform guarantees energy for the whole sequence; a
			// failure instant inside it fires right after completion.
			defer er.DeferFailures()()
		}
	}
	commit(k.regs.RegSnapshot(), lines, func() {
		// At the commit instant this checkpoint becomes the reboot target:
		// account it and notify observers (the verifier moves its rollback
		// point here), even if the redo phase is cut short by a power
		// failure.
		now := k.clk.Now()
		interval := now - k.lastCommit
		k.c.RecordInterval(interval)
		k.lastCommit = now
		k.c.Checkpoints++
		k.c.CheckpointLines += uint64(len(lines))
		if n := uint64(len(lines)); n > k.c.MaxCheckpointLines {
			k.c.MaxCheckpointLines = n
		}
		if cause == ckptForced {
			k.c.ForcedCkpts++
		}
		if k.probe != nil {
			k.probe.OnCheckpointCommit(sim.CheckpointEvent{
				Cycle:         now,
				Kind:          sim.CheckpointCommit,
				Lines:         len(lines),
				Forced:        cause == ckptForced,
				Adaptive:      cause == ckptAdaptive,
				Interval:      interval,
				IntervalValid: true,
			})
		}
	})
	k.cache.ForEach(func(l *cache.Line) {
		l.Dirty, l.RD, l.PW = false, false, false
	})
	if k.tracker != nil {
		k.tracker.Reset()
	}
	k.spMin = k.sp
	k.dirtyCount = 0
}

// ForceCheckpoint implements sim.System (periodic forward-progress
// checkpoints during intermittent runs).
func (k *Controller) ForceCheckpoint() { k.checkpoint(ckptForced) }

// NotifySP implements sim.System: stack tracking keeps the minimum stack
// pointer seen since the last checkpoint.
func (k *Controller) NotifySP(sp uint32) {
	k.sp = sp
	if sp < k.spMin {
		k.spMin = sp
	}
}

// PowerFailure implements sim.System: all volatile state evaporates.
func (k *Controller) PowerFailure() {
	k.bumpEpoch()
	k.cache.InvalidateAll()
	if k.tracker != nil {
		k.tracker.Reset()
	}
	k.sp, k.spMin = k.opts.StackTop, k.opts.StackTop
	k.dirtyCount = 0
}

// Restore implements sim.System: recover the newest committed checkpoint.
func (k *Controller) Restore() (sim.Snapshot, bool) {
	k.bumpEpoch()
	snap, ok := k.ckpt.Restore()
	if !ok {
		return snap, false
	}
	// x2 (sp) is Regs[1] in the snapshot (Regs[0] is x1).
	k.sp = snap.Regs[1]
	k.spMin = k.sp
	return snap, true
}
