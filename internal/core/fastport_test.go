package core

import (
	"math/rand"
	"testing"

	"nacho/internal/mem"
	"nacho/internal/sim"
	"nacho/internal/verify"
)

// newRigThreshold is newRig with the adaptive dirty-threshold policy armed.
func newRigThreshold(t *testing.T, cacheSize, ways, threshold int) *rig {
	t.Helper()
	r := &rig{clk: &sim.TestClock{}, regs: fakeRegs{sp: testStackTop}}
	r.nvm = mem.NewNVM(mem.NewSpace(), mem.DefaultCostModel())
	k, err := New("test", r.nvm, Options{
		CacheSize: cacheSize, Ways: ways, WARMode: WARCacheBits,
		StackTop: testStackTop, CheckpointBase: testCkptBase,
		Cost: mem.DefaultCostModel(), DirtyThreshold: threshold,
	})
	if err != nil {
		t.Fatal(err)
	}
	k.Attach(r.clk, &r.regs, &r.c)
	r.k = k
	return r
}

func TestFastPortGatedByProbe(t *testing.T) {
	r := newRig(t, 32, 2, WARCacheBits, false)
	if _, ok := r.k.FastPort(); !ok {
		t.Fatal("unprobed controller refused its fast port")
	}
	before := r.k.epoch
	ver := verify.New(r.nvm.Space(), verify.Config{})
	r.k.AttachProbe(ver)
	if _, ok := r.k.FastPort(); ok {
		t.Fatal("probed controller offered a fast port; the probe stream would miss events")
	}
	if r.k.epoch <= before {
		t.Fatal("AttachProbe did not bump the port epoch")
	}
	r.k.AttachProbe(nil)
	if _, ok := r.k.FastPort(); !ok {
		t.Fatal("detaching the probe did not restore the fast port")
	}
}

// TestFastPortEpochInvalidation is the property test behind the sim.FastPort
// contract: across random interleavings of full-path accesses, port-served
// hits, checkpoints, and power cycles, (1) the epoch strictly increases over
// every invalidating event — miss/replacement, checkpoint, power failure,
// restore — and (2) a served hit is never stale: its value always agrees
// with a byte-granular shadow of the architectural memory state.
func TestFastPortEpochInvalidation(t *testing.T) {
	for _, war := range []WARMode{WARNone, WARCacheBits, WARExact} {
		for seed := int64(0); seed < 6; seed++ {
			r := newRig(t, 32, 2, war, false)
			port, ok := r.k.FastPort()
			if !ok {
				t.Fatal("fast port refused")
			}
			rng := rand.New(rand.NewSource(seed))
			shadow := map[uint32]byte{}
			readShadow := func(addr uint32, size int) uint32 {
				var v uint32
				for j := 0; j < size; j++ {
					v |= uint32(shadow[addr+uint32(j)]) << (8 * j)
				}
				return v
			}
			writeShadow := func(addr uint32, size int, v uint32) {
				for j := 0; j < size; j++ {
					shadow[addr+uint32(j)] = byte(v >> (8 * j))
				}
			}
			for i := 0; i < 30000; i++ {
				size := []int{1, 2, 4}[rng.Intn(3)]
				addr := (0x1000 + uint32(rng.Intn(64))) &^ uint32(size-1)
				isRead := rng.Intn(2) == 0
				val := rng.Uint32()
				switch size {
				case 1:
					val &= 0xFF
				case 2:
					val &= 0xFFFF
				}
				switch rng.Intn(12) {
				case 0:
					before := port.Epoch()
					r.k.ForceCheckpoint()
					if port.Epoch() <= before {
						t.Fatalf("%s seed %d step %d: checkpoint did not bump epoch", war, seed, i)
					}
				case 1:
					// Flush first so the power cycle loses no dirty data and
					// the shadow stays the architectural truth.
					r.k.ForceCheckpoint()
					before := port.Epoch()
					r.k.PowerFailure()
					if port.Epoch() <= before {
						t.Fatalf("%s seed %d step %d: power failure did not bump epoch", war, seed, i)
					}
					if _, hit := port.LoadHit(addr&^3, 4); hit {
						t.Fatalf("%s seed %d step %d: port served a hit from an invalidated cache", war, seed, i)
					}
					before = port.Epoch()
					if _, ok := r.k.Restore(); !ok {
						t.Fatalf("%s seed %d step %d: no checkpoint to restore", war, seed, i)
					}
					if port.Epoch() <= before {
						t.Fatalf("%s seed %d step %d: restore did not bump epoch", war, seed, i)
					}
				case 2, 3, 4, 5, 6:
					// Full-path access; a miss (which may evict or checkpoint)
					// must bump the epoch.
					before, misses := port.Epoch(), r.c.CacheMisses
					if isRead {
						if got, want := r.k.Load(addr, size), readShadow(addr, size); got != want {
							t.Fatalf("%s seed %d step %d: Load(%#x,%d) = %#x, shadow %#x", war, seed, i, addr, size, got, want)
						}
					} else {
						r.k.Store(addr, size, val)
						writeShadow(addr, size, val)
					}
					if r.c.CacheMisses > misses && port.Epoch() <= before {
						t.Fatalf("%s seed %d step %d: miss did not bump epoch", war, seed, i)
					}
				default:
					// Port access: served hits must agree with the shadow.
					if isRead {
						if got, hit := port.LoadHit(addr, size); hit {
							if want := readShadow(addr, size); got != want {
								t.Fatalf("%s seed %d step %d: stale LoadHit(%#x,%d) = %#x, shadow %#x", war, seed, i, addr, size, got, want)
							}
						}
					} else if port.StoreHit != nil && port.StoreHit(addr, size, val) {
						writeShadow(addr, size, val)
					}
				}
			}
			// Drain through the full path: every word the stream touched must
			// read back as the shadow's value.
			for addr := uint32(0x1000); addr < 0x1040; addr += 4 {
				if got, want := r.k.Load(addr, 4), readShadow(addr, 4); got != want {
					t.Fatalf("%s seed %d: final Load(%#x) = %#x, shadow %#x", war, seed, addr, got, want)
				}
			}
		}
	}
}

// TestFastPortDirtyThresholdStores pins the adaptive-checkpointing
// interaction: with a dirty threshold armed, StoreHit must decline any store
// that would newly dirty a line (the full path owns the threshold check),
// and serving an already-dirty line must never trigger a checkpoint.
func TestFastPortDirtyThresholdStores(t *testing.T) {
	rr := newRigThreshold(t, 32, 2, 3)
	port, ok := rr.k.FastPort()
	if !ok {
		t.Fatal("fast port refused")
	}
	const addr = 0x1000
	rr.k.Load(addr, 4) // clean line in cache
	if port.StoreHit(addr, 4, 7) {
		t.Fatal("StoreHit dirtied a clean line under an armed dirty threshold")
	}
	rr.k.Store(addr, 4, 7) // full path dirties it (and counts the threshold)
	ckpts := rr.c.Checkpoints
	if !port.StoreHit(addr, 4, 9) {
		t.Fatal("StoreHit declined an already-dirty line")
	}
	if rr.c.Checkpoints != ckpts {
		t.Fatal("StoreHit on a dirty line changed the checkpoint count")
	}
	if got := rr.k.Load(addr, 4); got != 9 {
		t.Fatalf("value after port store = %#x, want 9", got)
	}
}
