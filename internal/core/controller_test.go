package core

import (
	"math/rand"
	"testing"

	"nacho/internal/cache"
	"nacho/internal/mem"
	"nacho/internal/metrics"
	"nacho/internal/sim"
	"nacho/internal/verify"
)

const (
	testStackTop = 0x000A_0000
	testCkptBase = 0x000E_0000
)

type fakeRegs struct{ sp uint32 }

func (f *fakeRegs) RegSnapshot() sim.Snapshot {
	var s sim.Snapshot
	s.Regs[1] = f.sp // x2
	return s
}

// rig builds a controller over fresh NVM with a test clock.
type rig struct {
	k    *Controller
	clk  *sim.TestClock
	nvm  *mem.NVM
	c    metrics.Counters
	regs fakeRegs
}

func newRig(t *testing.T, cacheSize, ways int, war WARMode, stack bool) *rig {
	t.Helper()
	r := &rig{clk: &sim.TestClock{}, regs: fakeRegs{sp: testStackTop}}
	r.nvm = mem.NewNVM(mem.NewSpace(), mem.DefaultCostModel())
	k, err := New("test", r.nvm, Options{
		CacheSize: cacheSize, Ways: ways, WARMode: war, StackTracking: stack,
		StackTop: testStackTop, CheckpointBase: testCkptBase, Cost: mem.DefaultCostModel(),
	})
	if err != nil {
		t.Fatal(err)
	}
	k.Attach(r.clk, &r.regs, &r.c)
	r.k = k
	return r
}

// line returns the cache line currently holding addr, or nil.
func (r *rig) line(addr uint32) *cache.Line { return r.k.Cache().Probe(addr) }

// bits returns the Figure 4 state number pw*4 + rd*2 + d of addr's line.
func (r *rig) bits(addr uint32) int {
	l := r.line(addr)
	if l == nil {
		return -1
	}
	n := 0
	if l.PW {
		n += 4
	}
	if l.RD {
		n += 2
	}
	if l.Dirty {
		n++
	}
	return n
}

// TestFigure4BitProtocol walks the paper's Figure 4 sequences on a
// direct-mapped single-set cache and checks each resulting pw/rd/d pattern.
func TestFigure4BitProtocol(t *testing.T) {
	// Two addresses mapping to the same (only) line of a 1-way 4 B cache.
	const a, b = 0x1000, 0x1004

	t.Run("read-dominated (2)", func(t *testing.T) {
		r := newRig(t, 4, 1, WARCacheBits, false)
		r.k.Load(a, 4)
		if got := r.bits(a); got != 2 {
			t.Errorf("after R(a): state %d, want 2", got)
		}
	})
	t.Run("write-dominated (1)", func(t *testing.T) {
		r := newRig(t, 4, 1, WARCacheBits, false)
		r.k.Store(a, 4, 1)
		if got := r.bits(a); got != 1 {
			t.Errorf("after W(a): state %d, want 1", got)
		}
	})
	t.Run("read-dominated with WAR (3)", func(t *testing.T) {
		r := newRig(t, 4, 1, WARCacheBits, false)
		r.k.Load(a, 4)
		r.k.Store(a, 4, 1)
		if got := r.bits(a); got != 3 {
			t.Errorf("after R(a) W(a): state %d, want 3", got)
		}
	})
	t.Run("pw & write-dominated (5)", func(t *testing.T) {
		r := newRig(t, 4, 1, WARCacheBits, false)
		r.k.Load(a, 4)     // line read-dominated
		r.k.Store(b, 4, 1) // replaces it: write-dominated, pw set last
		if got := r.bits(b); got != 5 {
			t.Errorf("after R(a) W(b): state %d, want 5", got)
		}
	})
	t.Run("pw & read-dominated clean (6)", func(t *testing.T) {
		r := newRig(t, 4, 1, WARCacheBits, false)
		r.k.Load(a, 4)
		r.k.Load(b, 4) // replaces read-dominated entry with a read
		if got := r.bits(b); got != 6 {
			t.Errorf("after R(a) R(b): state %d, want 6", got)
		}
	})
	t.Run("pw & read-dominated with WAR (7)", func(t *testing.T) {
		// The hash-collision scenario of Section 4.2.2: m read, evicted by a
		// write to another address, then m written — pw forces the write to
		// be marked read-dominated, catching the true WAR.
		r := newRig(t, 4, 1, WARCacheBits, false)
		r.k.Load(a, 4)     // m read
		r.k.Store(b, 4, 1) // evicts m; line pw=1, write-dominated
		r.k.Store(a, 4, 2) // write to m: pw forces rd
		if got := r.bits(a); got != 7 {
			t.Errorf("after R(a) W(b) W(a): state %d, want 7", got)
		}
	})
}

// TestInvalidState4Unreachable checks Figure 4's note that configuration 4
// (pw set, rd and dirty clear) can never occur, by exploring random access
// streams over a tiny cache.
func TestInvalidState4Unreachable(t *testing.T) {
	r := newRig(t, 8, 2, WARCacheBits, false)
	rng := rand.New(rand.NewSource(99))
	seen := map[int]bool{}
	for i := 0; i < 100000; i++ {
		addr := uint32(0x1000 + 4*rng.Intn(8))
		size := []int{1, 2, 4}[rng.Intn(3)]
		addr &^= uint32(size - 1)
		if rng.Intn(2) == 0 {
			r.k.Load(addr, size)
		} else {
			r.k.Store(addr, size, rng.Uint32())
		}
		r.k.Cache().ForEach(func(l *cache.Line) {
			if !l.Valid {
				return
			}
			n := 0
			if l.PW {
				n += 4
			}
			if l.RD {
				n += 2
			}
			if l.Dirty {
				n++
			}
			seen[n] = true
			if n == 4 {
				t.Fatalf("step %d: reached invalid state 4 (pw only)", i)
			}
		})
	}
	for _, want := range []int{0, 1, 2, 3, 5, 6, 7} {
		if !seen[want] && want != 0 {
			t.Logf("note: state %d not reached by this stream", want)
		}
	}
}

func TestSubWordWriteMarksReadDominated(t *testing.T) {
	r := newRig(t, 4, 1, WARCacheBits, false)
	r.k.Store(0x1000, 1, 0xAB) // byte write fills from NVM -> read-dominated
	if got := r.bits(0x1000); got != 3 {
		t.Errorf("after byte write miss: state %d, want 3 (rd+dirty)", got)
	}
	if r.c.NVMReads != 1 {
		t.Errorf("sub-word write miss did not fill from NVM: reads=%d", r.c.NVMReads)
	}
}

func TestSafeEvictionNoCheckpoint(t *testing.T) {
	r := newRig(t, 4, 1, WARCacheBits, false)
	r.k.Store(0x1000, 4, 7) // write-dominated dirty
	r.k.Store(0x1004, 4, 8) // evicts it — safe
	if r.c.Checkpoints != 0 {
		t.Errorf("safe eviction created %d checkpoints", r.c.Checkpoints)
	}
	if r.c.SafeEvictions != 1 {
		t.Errorf("SafeEvictions = %d, want 1", r.c.SafeEvictions)
	}
	if got := r.nvm.ReadRaw(0x1000, 4); got != 7 {
		t.Errorf("evicted value not in NVM: %#x", got)
	}
}

func TestUnsafeEvictionCheckpointsAndFlushes(t *testing.T) {
	r := newRig(t, 8, 1, WARCacheBits, false) // 2 sets, direct mapped
	r.k.Load(0x1000, 4)
	r.k.Store(0x1000, 4, 7) // read-dominated dirty (set 0)
	r.k.Store(0x1004, 4, 9) // write-dominated dirty (set 1)
	r.k.Store(0x1008, 4, 5) // set 0 again: evicts the rd line -> checkpoint
	if r.c.Checkpoints != 1 || r.c.UnsafeEvictions != 1 {
		t.Fatalf("checkpoints=%d unsafe=%d, want 1/1", r.c.Checkpoints, r.c.UnsafeEvictions)
	}
	// The checkpoint flushed BOTH dirty lines to their home addresses.
	if r.nvm.ReadRaw(0x1000, 4) != 7 || r.nvm.ReadRaw(0x1004, 4) != 9 {
		t.Error("checkpoint did not flush all dirty lines")
	}
	// All WAR bits cleared; data retained in cache.
	l := r.line(0x1004)
	if l == nil || l.Dirty || l.RD || l.PW {
		t.Errorf("bits not cleared after checkpoint: %+v", l)
	}
	if l.Data != 9 {
		t.Error("cache data lost at checkpoint")
	}
}

func TestFirstHitAfterCheckpointReclassifies(t *testing.T) {
	r := newRig(t, 4, 1, WARCacheBits, false)
	r.k.Store(0x1000, 4, 7)
	r.k.ForceCheckpoint()
	if got := r.bits(0x1000); got != 0 {
		t.Fatalf("after checkpoint: state %d, want 0", got)
	}
	// First hit is a read: line must become read-dominated again.
	r.k.Load(0x1000, 4)
	if got := r.bits(0x1000); got != 2 {
		t.Errorf("first hit after checkpoint: state %d, want 2", got)
	}
}

func TestNaiveModeCheckpointsEveryDirtyEviction(t *testing.T) {
	r := newRig(t, 4, 1, WARNone, false)
	r.k.Store(0x1000, 4, 7)
	r.k.Store(0x1004, 4, 8) // dirty eviction -> checkpoint even though safe
	if r.c.Checkpoints != 1 {
		t.Errorf("naive mode checkpoints = %d, want 1", r.c.Checkpoints)
	}
}

func TestStackTrackingDropsDeadFrames(t *testing.T) {
	r := newRig(t, 4, 1, WARCacheBits, true)
	frame := uint32(testStackTop - 16)
	r.k.NotifySP(frame)         // enter function
	r.k.Store(frame, 4, 0xDEAD) // dirty stack line
	r.k.NotifySP(testStackTop)  // return: frame dead
	r.k.Store(0x2000&^3, 4, 1)  // conflicting store evicts the stack line
	if r.c.DroppedStackLines != 1 {
		t.Fatalf("DroppedStackLines = %d, want 1", r.c.DroppedStackLines)
	}
	if r.c.Checkpoints != 0 || r.c.SafeEvictions != 0 {
		t.Error("dead stack line should be dropped, not evicted or checkpointed")
	}
	if r.nvm.ReadRaw(frame, 4) == 0xDEAD {
		t.Error("dead stack line written to NVM")
	}
}

func TestStackTrackingSpMinResetsAtCheckpoint(t *testing.T) {
	r := newRig(t, 8, 1, WARCacheBits, true)
	deep := uint32(testStackTop - 64)
	r.k.NotifySP(deep)
	r.k.NotifySP(testStackTop) // spMin stays at deep
	r.k.ForceCheckpoint()      // spMin resets to current sp
	// A dirty line in the previously-dead region must now be preserved on
	// eviction (it predates... it belongs to the new interval).
	r.k.NotifySP(deep)
	r.k.Store(deep, 4, 0xFEED)
	r.k.NotifySP(testStackTop)
	// Dead again within THIS interval: spMin == deep, so it still drops.
	r.k.Store(deep+4, 4, 1) // same set? force eviction via conflict:
	r.k.Store(deep+32, 4, 2)
	_ = r
}

func TestLiveStackLineNotDropped(t *testing.T) {
	r := newRig(t, 4, 1, WARCacheBits, true)
	frame := uint32(testStackTop - 16)
	r.k.NotifySP(frame)
	r.k.Store(frame, 4, 0xBEEF) // live frame slot
	r.k.Store(0x2000&^3, 4, 1)  // evicts it while still live
	if r.c.DroppedStackLines != 0 {
		t.Fatal("live stack line dropped")
	}
	if r.nvm.ReadRaw(frame, 4) != 0xBEEF {
		t.Error("live stack line not written back")
	}
}

func TestPowerFailureInvalidatesCache(t *testing.T) {
	r := newRig(t, 8, 2, WARCacheBits, true)
	r.k.Store(0x1000, 4, 7)
	r.k.ForceCheckpoint()
	r.k.PowerFailure()
	if r.line(0x1000) != nil {
		t.Error("cache contents survived power failure")
	}
	snap, ok := r.k.Restore()
	if !ok {
		t.Fatal("no checkpoint to restore")
	}
	if snap.Regs[1] != testStackTop {
		t.Errorf("restored sp = %#x", snap.Regs[1])
	}
	if r.nvm.ReadRaw(0x1000, 4) != 7 {
		t.Error("checkpointed data lost")
	}
}

func TestHitCostAndMissCost(t *testing.T) {
	r := newRig(t, 4, 1, WARCacheBits, false)
	r.k.Load(0x1000, 4) // miss: 6 (fill) + 2 (hit path)
	if r.clk.Cycle != 8 {
		t.Errorf("read miss cost %d cycles, want 8", r.clk.Cycle)
	}
	r.k.Load(0x1000, 4) // hit: 2
	if r.clk.Cycle != 10 {
		t.Errorf("hit cost wrong: total %d, want 10", r.clk.Cycle)
	}
	r.k.Store(0x1000, 4, 1) // hit: 2
	if r.clk.Cycle != 12 {
		t.Errorf("store hit cost wrong: total %d, want 12", r.clk.Cycle)
	}
}

// TestNoFalseNegativesRandomStreams is the paper's core safety claim
// (Section 3.2): NACHO's cache-bit detection "can never contain false
// negatives". Random access streams (with interleaved checkpoints and stack
// movement) must never produce a physical write-back of read-dominated data
// — checked by the exact byte-granular verifier.
func TestNoFalseNegativesRandomStreams(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		cacheSize := []int{8, 16, 32, 64}[rng.Intn(4)]
		ways := []int{1, 2, 4}[rng.Intn(3)]
		if cacheSize/4 < ways {
			ways = 1
		}
		r := newRig(t, cacheSize, ways, WARCacheBits, rng.Intn(2) == 0)
		ver := verify.New(r.nvm.Space(), verify.Config{RollbackOnFailure: true, CheckWAR: true})
		// The verifier is now a probe: the controller's access and write-back
		// events feed it directly, no manual mirroring needed.
		r.k.AttachProbe(ver)

		// Stack discipline: the paper's stack-tracking optimization assumes a
		// freshly (re)allocated slot is always written before it is read
		// (Section 3.3); conforming programs obey it, so the random stream
		// does too via the initialized-slot set.
		sp := uint32(testStackTop)
		stackInit := map[uint32]bool{}
		for i := 0; i < 30000; i++ {
			switch rng.Intn(20) {
			case 0: // checkpoint
				r.k.ForceCheckpoint()
			case 1: // push a frame
				if sp > testStackTop-256 {
					sp -= 16
					for a := sp; a < sp+16; a += 4 {
						delete(stackInit, a)
					}
					r.k.NotifySP(sp)
				}
			case 2: // pop a frame
				if sp < testStackTop {
					sp += 16
					r.k.NotifySP(sp)
				}
			default:
				size := []int{1, 2, 4}[rng.Intn(3)]
				isRead := rng.Intn(2) == 0
				var addr uint32
				if rng.Intn(3) == 0 && sp < testStackTop {
					// Live stack access: word-granular, write-before-read.
					size = 4
					addr = sp + 4*uint32(rng.Intn(4))
					if isRead && !stackInit[addr] {
						isRead = false
					}
					if !isRead {
						stackInit[addr] = true
					}
				} else {
					addr = 0x1000 + uint32(rng.Intn(64))
					addr &^= uint32(size - 1)
				}
				if isRead {
					r.k.Load(addr, size)
				} else {
					v := rng.Uint32()
					switch size {
					case 1:
						v &= 0xFF
					case 2:
						v &= 0xFFFF
					}
					r.k.Store(addr, size, v)
				}
			}
		}
		if err := ver.Err(); err != nil {
			t.Fatalf("seed %d (%dB/%d-way): %v", seed, cacheSize, ways, err)
		}
	}
}

func TestWARModeStrings(t *testing.T) {
	if WARNone.String() != "none" || WARCacheBits.String() != "cache-bits" || WARExact.String() != "exact" {
		t.Error("WARMode strings wrong")
	}
	if WARMode(99).String() != "unknown" {
		t.Error("unknown mode string wrong")
	}
}

func TestBadGeometryRejected(t *testing.T) {
	nvm := mem.NewNVM(mem.NewSpace(), mem.DefaultCostModel())
	if _, err := New("bad", nvm, Options{CacheSize: 100, Ways: 3}); err == nil {
		t.Error("invalid geometry accepted")
	}
}
