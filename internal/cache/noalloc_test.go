//go:build !race

// Allocation gates are meaningless under the race detector's instrumented
// allocator, so this file is excluded from -race runs.

package cache

import "testing"

// TestProbeTouchZeroAlloc gates the flat layout's hit scan: Probe plus Touch
// is the innermost operation of every cached access and must not allocate.
func TestProbeTouchZeroAlloc(t *testing.T) {
	c := MustNew(512, 2)
	for a := uint32(0); a < 512; a += 4 {
		c.Install(c.Victim(a), a)
	}
	hit := true
	if n := testing.AllocsPerRun(200, func() {
		l := c.Probe(0x100)
		if l == nil {
			hit = false
			return
		}
		c.Touch(l)
	}); n != 0 {
		t.Fatalf("Probe/Touch allocates: %v allocs/op", n)
	}
	if !hit {
		t.Fatal("probe missed a resident line")
	}
}
