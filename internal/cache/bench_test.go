package cache

import "testing"

func BenchmarkProbeHit(b *testing.B) {
	c := MustNew(512, 2)
	for a := uint32(0); a < 512; a += 4 {
		c.Install(c.Victim(a), a)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l := c.Probe(uint32(i*4) & 511)
		if l != nil {
			c.Touch(l)
		}
	}
}

func BenchmarkMissReplace(b *testing.B) {
	c := MustNew(512, 2)
	for i := 0; i < b.N; i++ {
		addr := uint32(i * 4)
		if l := c.Probe(addr); l == nil {
			v := c.Victim(addr)
			c.Install(v, addr)
		}
	}
}
