package cache

import (
	"math/rand"
	"testing"
)

func TestGeometryValidation(t *testing.T) {
	valid := []struct{ size, ways int }{
		{256, 2}, {512, 2}, {1024, 2}, {256, 4}, {512, 4}, {1024, 4}, {8, 2}, {4, 1},
	}
	for _, g := range valid {
		c, err := New(g.size, g.ways)
		if err != nil {
			t.Errorf("New(%d, %d): %v", g.size, g.ways, err)
			continue
		}
		if c.SizeBytes() != g.size || c.Ways() != g.ways {
			t.Errorf("geometry mismatch: %d/%d", c.SizeBytes(), c.Ways())
		}
		if c.NumLines() != g.size/LineSize {
			t.Errorf("NumLines = %d, want %d", c.NumLines(), g.size/LineSize)
		}
	}
	invalid := []struct{ size, ways int }{
		{0, 2}, {512, 0}, {-8, 2}, {512, 3}, {100, 2}, {24, 2}, {6, 2},
	}
	for _, g := range invalid {
		if _, err := New(g.size, g.ways); err == nil {
			t.Errorf("New(%d, %d) succeeded, want error", g.size, g.ways)
		}
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew with bad geometry did not panic")
		}
	}()
	MustNew(100, 3)
}

func TestSetIndexMapping(t *testing.T) {
	c := MustNew(64, 2) // 8 sets
	if c.NumSets() != 8 {
		t.Fatalf("NumSets = %d, want 8", c.NumSets())
	}
	// Same word -> same set regardless of byte offset within the word.
	if c.SetIndex(0x100) != c.SetIndex(0x103) {
		t.Error("byte offsets within a word map to different sets")
	}
	// Consecutive words -> consecutive sets (modulo).
	if c.SetIndex(0x100)+1 != c.SetIndex(0x104) {
		t.Error("consecutive words not in consecutive sets")
	}
	// Stride of numSets words wraps to the same set.
	if c.SetIndex(0x100) != c.SetIndex(0x100+8*4) {
		t.Error("stride of numSets*4 bytes should map to the same set")
	}
}

func TestProbeInstallVictimLRU(t *testing.T) {
	c := MustNew(8, 2) // one set, 2 ways
	if c.Probe(0x10) != nil {
		t.Fatal("probe hit in empty cache")
	}
	l1 := c.Victim(0x10)
	c.Install(l1, 0x10)
	l2 := c.Victim(0x20)
	if l2 == l1 {
		t.Fatal("victim chose a valid line while an invalid one exists")
	}
	c.Install(l2, 0x20)

	if got := c.Probe(0x10); got != l1 {
		t.Error("probe missed installed line 0x10")
	}
	if got := c.Probe(0x12); got != l1 {
		t.Error("probe with byte offset missed the line")
	}

	// Touch 0x10 so 0x20 is LRU.
	c.Touch(l1)
	if v := c.Victim(0x30); v != l2 {
		t.Error("victim is not the least recently used line")
	}
	c.Touch(l2)
	if v := c.Victim(0x30); v != l1 {
		t.Error("victim did not follow LRU update")
	}
}

func TestInvalidateAll(t *testing.T) {
	c := MustNew(32, 2)
	for a := uint32(0); a < 32; a += 4 {
		l := c.Victim(a)
		c.Install(l, a)
		l.Dirty, l.RD, l.PW = true, true, true
	}
	c.InvalidateAll()
	c.ForEach(func(l *Line) {
		if l.Valid || l.Dirty || l.RD || l.PW || l.lru != 0 {
			t.Fatalf("line not cleared: %+v", *l)
		}
	})
}

func TestLineDataMerge(t *testing.T) {
	var l Line
	l.WriteData(0x100, 4, 0xAABBCCDD)
	if l.ReadData(0x100, 4) != 0xAABBCCDD {
		t.Fatal("word round trip failed")
	}
	l.WriteData(0x101, 1, 0x42)
	if l.Data != 0xAABB42DD {
		t.Errorf("byte merge = %#x, want 0xAABB42DD", l.Data)
	}
	l.WriteData(0x102, 2, 0x1234)
	if l.Data != 0x123442DD {
		t.Errorf("half merge = %#x, want 0x123442DD", l.Data)
	}
	if l.ReadData(0x101, 1) != 0x42 || l.ReadData(0x102, 2) != 0x1234 || l.ReadData(0x103, 1) != 0x12 {
		t.Error("sub-word reads wrong")
	}
}

// Property: the line's ReadData/WriteData behave like a 4-byte array.
func TestLineDataVersusBytes(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	var l Line
	var ref [4]byte
	for i := 0; i < 20000; i++ {
		size := []int{1, 2, 4}[r.Intn(3)]
		off := uint32(r.Intn(4)) &^ uint32(size-1)
		if r.Intn(2) == 0 {
			v := r.Uint32()
			l.WriteData(off, size, v)
			for j := 0; j < size; j++ {
				ref[off+uint32(j)] = byte(v >> (8 * j))
			}
		} else {
			var want uint32
			for j := 0; j < size; j++ {
				want |= uint32(ref[off+uint32(j)]) << (8 * j)
			}
			if got := l.ReadData(off, size); got != want {
				t.Fatalf("step %d: ReadData(%d,%d) = %#x, want %#x", i, off, size, got, want)
			}
		}
	}
}

// Property: a write-back cache over a backing store always returns the same
// values as a flat reference memory, for random access streams.
func TestCacheVersusFlatModel(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	c := MustNew(64, 2)
	backing := map[uint32]uint32{} // word-addressed
	ref := map[uint32]uint32{}

	readThrough := func(addr uint32) *Line {
		if l := c.Probe(addr); l != nil {
			c.Touch(l)
			return l
		}
		l := c.Victim(addr)
		if l.Valid && l.Dirty {
			backing[l.Addr()>>2] = l.Data
		}
		c.Install(l, addr)
		l.Dirty = false
		l.Data = backing[addr>>2]
		return l
	}

	for i := 0; i < 100000; i++ {
		addr := uint32(r.Intn(256)) &^ 3
		if r.Intn(2) == 0 {
			v := r.Uint32()
			l := readThrough(addr)
			l.WriteData(addr, 4, v)
			l.Dirty = true
			ref[addr>>2] = v
		} else {
			l := readThrough(addr)
			if got := l.ReadData(addr, 4); got != ref[addr>>2] {
				t.Fatalf("step %d: read %#x = %#x, want %#x", i, addr, got, ref[addr>>2])
			}
		}
	}
}

func TestAddrRoundTrip(t *testing.T) {
	var l Line
	for _, a := range []uint32{0, 4, 0x1234_5678 &^ 3, 0xFFFF_FFFC} {
		l.Tag = a >> 2
		if l.Addr() != a {
			t.Errorf("Addr() = %#x, want %#x", l.Addr(), a)
		}
	}
}
