// Package cache implements the set-associative write-back data cache
// structure shared by NACHO and the cache-based baselines.
//
// Following the paper's implementation (Section 5.3) a cache line holds four
// bytes of data, uses an LRU replacement policy, and carries — besides the
// standard valid and dirty bits — the two bits NACHO adds: read-dominated
// (RD) and possible-WAR (PW). Size and associativity are configurable; the
// index function is the address hash the paper refers to ("the cache stores
// data based on a hash of the memory address").
package cache

import (
	"fmt"

	"nacho/internal/sim"
)

// LineSize is the cache line size in bytes (fixed at four, paper Section 5.3).
const LineSize = 4

// Line is one cache line: a 4-byte data word plus metadata bits.
type Line struct {
	Valid bool
	Dirty bool
	RD    bool   // read-dominated (NACHO bit, paper Section 4.2.1)
	PW    bool   // possible-WAR  (NACHO bit, paper Section 4.2.2)
	Tag   uint32 // full line address >> 2; with 4-byte lines the tag identifies the word
	Data  uint32
	lru   uint64 // last-touch stamp; larger is more recent
}

// Addr returns the byte address of the line's word.
func (l *Line) Addr() uint32 { return l.Tag << 2 }

// Cache is a set-associative cache of 4-byte lines.
type Cache struct {
	sets    [][]Line
	ways    int
	numSets int
	stamp   uint64
	probe   sim.Probe
}

// New creates a cache of sizeBytes capacity and the given associativity.
// sizeBytes must be a positive multiple of ways*LineSize and the resulting
// set count must be a power of two (hardware-indexable).
func New(sizeBytes, ways int) (*Cache, error) {
	if sizeBytes <= 0 || ways <= 0 {
		return nil, fmt.Errorf("cache: invalid geometry %dB/%d-way", sizeBytes, ways)
	}
	lines := sizeBytes / LineSize
	if lines*LineSize != sizeBytes || lines%ways != 0 {
		return nil, fmt.Errorf("cache: size %dB not divisible into %d-way sets of %dB lines", sizeBytes, ways, LineSize)
	}
	numSets := lines / ways
	if numSets&(numSets-1) != 0 {
		return nil, fmt.Errorf("cache: set count %d is not a power of two", numSets)
	}
	c := &Cache{ways: ways, numSets: numSets, sets: make([][]Line, numSets)}
	backing := make([]Line, lines)
	for i := range c.sets {
		c.sets[i] = backing[i*ways : (i+1)*ways : (i+1)*ways]
	}
	return c, nil
}

// MustNew is New for statically valid geometries; it panics on error.
func MustNew(sizeBytes, ways int) *Cache {
	c, err := New(sizeBytes, ways)
	if err != nil {
		panic(err)
	}
	return c
}

// Clone returns an independent deep copy of the cache — every line and the
// LRU stamp — with no probe attached (forked machines run emission-free).
func (c *Cache) Clone() *Cache {
	n := &Cache{ways: c.ways, numSets: c.numSets, stamp: c.stamp, sets: make([][]Line, c.numSets)}
	backing := make([]Line, c.numSets*c.ways)
	for i := range c.sets {
		copy(backing[i*c.ways:(i+1)*c.ways], c.sets[i])
		n.sets[i] = backing[i*c.ways : (i+1)*c.ways : (i+1)*c.ways]
	}
	return n
}

// SizeBytes returns the data capacity.
func (c *Cache) SizeBytes() int { return c.numSets * c.ways * LineSize }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// NumSets returns the number of sets.
func (c *Cache) NumSets() int { return c.numSets }

// NumLines returns the total line count (the checkpoint capacity bound).
func (c *Cache) NumLines() int { return c.numSets * c.ways }

// SetIndex is the address hash: the line address modulo the set count.
func (c *Cache) SetIndex(addr uint32) int {
	return int(addr>>2) & (c.numSets - 1)
}

// Set returns the lines of the set addr maps to. The returned slice aliases
// cache storage; callers mutate lines through it.
func (c *Cache) Set(addr uint32) []Line {
	return c.sets[c.SetIndex(addr)]
}

// Probe looks addr up and returns its line on a hit, or nil on a miss.
// It does not touch LRU state; callers decide when an access counts.
func (c *Cache) Probe(addr uint32) *Line {
	set := c.Set(addr)
	tag := addr >> 2
	for i := range set {
		if set[i].Valid && set[i].Tag == tag {
			return &set[i]
		}
	}
	return nil
}

// Victim selects the replacement victim in addr's set: an invalid line if one
// exists, otherwise the least recently used line.
func (c *Cache) Victim(addr uint32) *Line {
	set := c.Set(addr)
	var victim *Line
	for i := range set {
		l := &set[i]
		if !l.Valid {
			return l
		}
		if victim == nil || l.lru < victim.lru {
			victim = l
		}
	}
	return victim
}

// Touch marks the line as most recently used.
func (c *Cache) Touch(l *Line) {
	c.stamp++
	l.lru = c.stamp
}

// AttachProbe wires an observer for line fills (nil detaches).
func (c *Cache) AttachProbe(p sim.Probe) { c.probe = p }

// Install points the line at addr's word. Metadata bits are left for the
// controller to manage; the line becomes valid and most recently used.
func (c *Cache) Install(l *Line, addr uint32) {
	l.Valid = true
	l.Tag = addr >> 2
	c.Touch(l)
	if c.probe != nil {
		c.probe.OnLineFill(sim.FillEvent{Addr: addr &^ 3})
	}
}

// ForEach visits every line (checkpoint flush walks).
func (c *Cache) ForEach(f func(*Line)) {
	for i := range c.sets {
		for j := range c.sets[i] {
			f(&c.sets[i][j])
		}
	}
}

// InvalidateAll destroys all volatile contents (power failure).
func (c *Cache) InvalidateAll() {
	for i := range c.sets {
		for j := range c.sets[i] {
			c.sets[i][j] = Line{}
		}
	}
	c.stamp = 0
}

// ReadData returns size bytes at addr from the line's word, little-endian.
// addr must fall inside the line.
func (l *Line) ReadData(addr uint32, size int) uint32 {
	shift := (addr & 3) * 8
	v := l.Data >> shift
	switch size {
	case 1:
		return v & 0xFF
	case 2:
		return v & 0xFFFF
	default:
		return v
	}
}

// WriteData merges size bytes of val into the line's word at addr.
func (l *Line) WriteData(addr uint32, size int, val uint32) {
	shift := (addr & 3) * 8
	switch size {
	case 1:
		l.Data = l.Data&^(0xFF<<shift) | (val&0xFF)<<shift
	case 2:
		l.Data = l.Data&^(0xFFFF<<shift) | (val&0xFFFF)<<shift
	default:
		l.Data = val
	}
}

// LRU returns the line's last-touch stamp (exposed for controllers that keep
// cache.Line storage outside a Cache, like the PROWL baseline).
func (l *Line) LRU() uint64 { return l.lru }

// SetLRU sets the line's last-touch stamp.
func (l *Line) SetLRU(v uint64) { l.lru = v }
