// Package cache implements the set-associative write-back data cache
// structure shared by NACHO and the cache-based baselines.
//
// Following the paper's implementation (Section 5.3) a cache line holds four
// bytes of data, uses an LRU replacement policy, and carries — besides the
// standard valid and dirty bits — the two bits NACHO adds: read-dominated
// (RD) and possible-WAR (PW). Size and associativity are configurable; the
// index function is the address hash the paper refers to ("the cache stores
// data based on a hash of the memory address").
//
// Storage is a single flat backing array indexed by (set<<waysShift)+way,
// with a parallel array of packed lookup keys (tag<<1 | valid) so the hit
// scan — the overwhelmingly common operation on the execution fast path — is
// one tight, allocation-free loop of word compares over adjacent memory.
package cache

import (
	"fmt"

	"nacho/internal/sim"
)

// LineSize is the cache line size in bytes (fixed at four, paper Section 5.3).
const LineSize = 4

// Line is one cache line: a 4-byte data word plus metadata bits.
type Line struct {
	Valid bool
	Dirty bool
	RD    bool   // read-dominated (NACHO bit, paper Section 4.2.1)
	PW    bool   // possible-WAR  (NACHO bit, paper Section 4.2.2)
	Tag   uint32 // full line address >> 2; with 4-byte lines the tag identifies the word
	Data  uint32
	lru   uint64 // last-touch stamp; larger is more recent
}

// Addr returns the byte address of the line's word.
func (l *Line) Addr() uint32 { return l.Tag << 2 }

// key packs a line's lookup identity into one word: tag<<1 | valid. The tag
// is addr>>2 (at most 30 significant bits), so the packed form fits 31 bits
// and a valid line's key is always odd — a zero key can never match.
func key(addr uint32) uint32 { return (addr>>2)<<1 | 1 }

// Cache is a set-associative cache of 4-byte lines.
//
// Invariant: keys[i] mirrors (lines[i].Tag, lines[i].Valid) at all times.
// Valid and Tag are mutated only by Install and InvalidateAll, which maintain
// the mirror; callers that reach lines through Set() mutate data and the
// Dirty/RD/PW metadata bits only.
type Cache struct {
	lines     []Line   // numSets << waysShift entries; padding ways stay zero
	keys      []uint32 // packed tag|valid mirror of lines, same indexing
	ways      int
	numSets   int
	waysShift uint
	stamp     uint64
	probe     sim.Probe
}

// New creates a cache of sizeBytes capacity and the given associativity.
// sizeBytes must be a positive multiple of ways*LineSize and the resulting
// set count must be a power of two (hardware-indexable).
func New(sizeBytes, ways int) (*Cache, error) {
	if sizeBytes <= 0 || ways <= 0 {
		return nil, fmt.Errorf("cache: invalid geometry %dB/%d-way", sizeBytes, ways)
	}
	lines := sizeBytes / LineSize
	if lines*LineSize != sizeBytes || lines%ways != 0 {
		return nil, fmt.Errorf("cache: size %dB not divisible into %d-way sets of %dB lines", sizeBytes, ways, LineSize)
	}
	numSets := lines / ways
	if numSets&(numSets-1) != 0 {
		return nil, fmt.Errorf("cache: set count %d is not a power of two", numSets)
	}
	var shift uint
	for 1<<shift < ways {
		shift++
	}
	c := &Cache{ways: ways, numSets: numSets, waysShift: shift}
	c.lines = make([]Line, numSets<<shift)
	c.keys = make([]uint32, numSets<<shift)
	return c, nil
}

// MustNew is New for statically valid geometries; it panics on error.
func MustNew(sizeBytes, ways int) *Cache {
	c, err := New(sizeBytes, ways)
	if err != nil {
		panic(err)
	}
	return c
}

// Clone returns an independent deep copy of the cache — every line and the
// LRU stamp — with no probe attached (forked machines run emission-free).
func (c *Cache) Clone() *Cache {
	n := &Cache{ways: c.ways, numSets: c.numSets, waysShift: c.waysShift, stamp: c.stamp}
	n.lines = make([]Line, len(c.lines))
	n.keys = make([]uint32, len(c.keys))
	copy(n.lines, c.lines)
	copy(n.keys, c.keys)
	return n
}

// SizeBytes returns the data capacity.
func (c *Cache) SizeBytes() int { return c.numSets * c.ways * LineSize }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// NumSets returns the number of sets.
func (c *Cache) NumSets() int { return c.numSets }

// NumLines returns the total line count (the checkpoint capacity bound).
func (c *Cache) NumLines() int { return c.numSets * c.ways }

// SetIndex is the address hash: the line address modulo the set count.
func (c *Cache) SetIndex(addr uint32) int {
	return int(addr>>2) & (c.numSets - 1)
}

// Set returns the lines of the set addr maps to. The returned slice aliases
// cache storage; callers mutate lines through it (data and Dirty/RD/PW only —
// see the Cache invariant).
func (c *Cache) Set(addr uint32) []Line {
	base := c.SetIndex(addr) << c.waysShift
	return c.lines[base : base+c.ways : base+c.ways]
}

// Probe looks addr up and returns its line on a hit, or nil on a miss.
// It does not touch LRU state; callers decide when an access counts.
func (c *Cache) Probe(addr uint32) *Line {
	base := c.SetIndex(addr) << c.waysShift
	k := key(addr)
	// One bounds check for the whole scan; the per-way compares then run
	// check-free.
	ks := c.keys[base : base+c.ways]
	for w := range ks {
		if ks[w] == k {
			return &c.lines[base+w]
		}
	}
	return nil
}

// Victim selects the replacement victim in addr's set: an invalid line if one
// exists, otherwise the least recently used line.
func (c *Cache) Victim(addr uint32) *Line {
	base := c.SetIndex(addr) << c.waysShift
	victim := -1
	for i := base; i < base+c.ways; i++ {
		if c.keys[i]&1 == 0 {
			return &c.lines[i]
		}
		if victim < 0 || c.lines[i].lru < c.lines[victim].lru {
			victim = i
		}
	}
	return &c.lines[victim]
}

// Touch marks the line as most recently used.
func (c *Cache) Touch(l *Line) {
	c.stamp++
	l.lru = c.stamp
}

// AttachProbe wires an observer for line fills (nil detaches).
func (c *Cache) AttachProbe(p sim.Probe) { c.probe = p }

// Install points the line at addr's word. Metadata bits are left for the
// controller to manage; the line becomes valid and most recently used.
// l must belong to addr's set (it came from Victim or Set for this address).
func (c *Cache) Install(l *Line, addr uint32) {
	l.Valid = true
	l.Tag = addr >> 2
	base := c.SetIndex(addr) << c.waysShift
	mirrored := false
	for i := base; i < base+c.ways; i++ {
		if &c.lines[i] == l {
			c.keys[i] = key(addr)
			mirrored = true
			break
		}
	}
	if !mirrored {
		panic(fmt.Sprintf("cache: Install of line outside set for addr %#x", addr))
	}
	c.Touch(l)
	if c.probe != nil {
		c.probe.OnLineFill(sim.FillEvent{Addr: addr &^ 3})
	}
}

// ForEach visits every line (checkpoint flush walks).
func (c *Cache) ForEach(f func(*Line)) {
	for s := 0; s < c.numSets; s++ {
		base := s << c.waysShift
		for w := 0; w < c.ways; w++ {
			f(&c.lines[base+w])
		}
	}
}

// InvalidateAll destroys all volatile contents (power failure).
func (c *Cache) InvalidateAll() {
	for i := range c.lines {
		c.lines[i] = Line{}
		c.keys[i] = 0
	}
	c.stamp = 0
}

// ReadData returns size bytes at addr from the line's word, little-endian.
// addr must fall inside the line.
func (l *Line) ReadData(addr uint32, size int) uint32 {
	shift := (addr & 3) * 8
	v := l.Data >> shift
	switch size {
	case 1:
		return v & 0xFF
	case 2:
		return v & 0xFFFF
	default:
		return v
	}
}

// WriteData merges size bytes of val into the line's word at addr.
func (l *Line) WriteData(addr uint32, size int, val uint32) {
	shift := (addr & 3) * 8
	switch size {
	case 1:
		l.Data = l.Data&^(0xFF<<shift) | (val&0xFF)<<shift
	case 2:
		l.Data = l.Data&^(0xFFFF<<shift) | (val&0xFFFF)<<shift
	default:
		l.Data = val
	}
}

// LRU returns the line's last-touch stamp (exposed for controllers that keep
// cache.Line storage outside a Cache, like the PROWL baseline).
func (l *Line) LRU() uint64 { return l.lru }

// SetLRU sets the line's last-touch stamp.
func (l *Line) SetLRU(v uint64) { l.lru = v }
