package cache

import (
	"math/rand"
	"testing"
)

// nestedCache reimplements the original per-set [][]Line storage that the
// flat single-array layout replaced, and serves as its behavioral reference:
// probe compares Valid && Tag way by way in way order, the victim is the
// first invalid way or else the first way holding the minimal LRU stamp, and
// a single monotonic stamp orders touches.
type nestedCache struct {
	sets  [][]nline
	stamp uint64
}

type nline struct {
	valid bool
	tag   uint32
	lru   uint64
}

func newNested(sizeBytes, ways int) *nestedCache {
	numSets := sizeBytes / LineSize / ways
	n := &nestedCache{sets: make([][]nline, numSets)}
	for i := range n.sets {
		n.sets[i] = make([]nline, ways)
	}
	return n
}

func (n *nestedCache) set(addr uint32) []nline {
	return n.sets[int(addr>>2)&(len(n.sets)-1)]
}

func (n *nestedCache) probe(addr uint32) int {
	s := n.set(addr)
	for w := range s {
		if s[w].valid && s[w].tag == addr>>2 {
			return w
		}
	}
	return -1
}

func (n *nestedCache) victim(addr uint32) int {
	s := n.set(addr)
	v := -1
	for w := range s {
		if !s[w].valid {
			return w
		}
		if v < 0 || s[w].lru < s[v].lru {
			v = w
		}
	}
	return v
}

func (n *nestedCache) touch(l *nline) {
	n.stamp++
	l.lru = n.stamp
}

func (n *nestedCache) install(addr uint32, w int) {
	s := n.set(addr)
	s[w] = nline{valid: true, tag: addr >> 2}
	n.touch(&s[w])
}

func (n *nestedCache) invalidateAll() {
	for _, s := range n.sets {
		for w := range s {
			s[w] = nline{}
		}
	}
	n.stamp = 0
}

// wayOf locates a line returned by Probe/Victim within its set.
func wayOf(c *Cache, addr uint32, l *Line) int {
	set := c.Set(addr)
	for w := range set {
		if &set[w] == l {
			return w
		}
	}
	return -1
}

// TestFlatLayoutMatchesNestedReference pins the flattening refactor: the
// single backing array with packed lookup keys must make exactly the
// decisions of the original nested storage — same hits, same victim way,
// same LRU order — under long random probe/install/touch/invalidate streams.
// The 24B/3-way geometry exercises the padding rows a non-power-of-two
// associativity leaves in the flat array.
func TestFlatLayoutMatchesNestedReference(t *testing.T) {
	for _, g := range []struct{ size, ways int }{
		{32, 1}, {64, 2}, {24, 3}, {64, 4}, {512, 2},
	} {
		c := MustNew(g.size, g.ways)
		n := newNested(g.size, g.ways)
		rng := rand.New(rand.NewSource(int64(g.size*8 + g.ways)))
		words := 4 * g.size / LineSize // ~4x capacity: plenty of conflicts
		for i := 0; i < 50000; i++ {
			addr := uint32(rng.Intn(words)) * 4
			if rng.Intn(64) == 0 {
				c.InvalidateAll()
				n.invalidateAll()
				continue
			}
			l := c.Probe(addr)
			w := n.probe(addr)
			if (l == nil) != (w < 0) {
				t.Fatalf("%dB/%d-way step %d addr %#x: flat hit=%v, nested hit=%v",
					g.size, g.ways, i, addr, l != nil, w >= 0)
			}
			if l != nil {
				if got := wayOf(c, addr, l); got != w {
					t.Fatalf("%dB/%d-way step %d addr %#x: hit way %d, nested %d",
						g.size, g.ways, i, addr, got, w)
				}
				c.Touch(l)
				n.touch(&n.set(addr)[w])
				continue
			}
			v := c.Victim(addr)
			wv := n.victim(addr)
			if got := wayOf(c, addr, v); got != wv {
				t.Fatalf("%dB/%d-way step %d addr %#x: victim way %d, nested %d",
					g.size, g.ways, i, addr, got, wv)
			}
			c.Install(v, addr)
			n.install(addr, wv)
		}
	}
}
