package harness_test

import (
	"testing"

	"nacho/internal/harness"
	"nacho/internal/power"
	"nacho/internal/program"
	"nacho/internal/systems"
)

// TestAllBenchmarksAllSystems is the core integration matrix: every
// benchmark under every system, failure-free, with shadow memory, exact WAR
// checking, and the reference checksum all enforced.
func TestAllBenchmarksAllSystems(t *testing.T) {
	for _, p := range program.All() {
		for _, kind := range systems.AllKinds() {
			p, kind := p, kind
			t.Run(p.Name+"/"+string(kind), func(t *testing.T) {
				t.Parallel()
				if _, err := harness.Run(p, kind, harness.DefaultRunConfig()); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestSmallCacheAllSystems re-runs the matrix with the paper's small 256 B
// configuration, where evictions (and therefore WAR decisions) are frequent.
func TestSmallCacheAllSystems(t *testing.T) {
	for _, p := range program.All() {
		for _, kind := range systems.AllKinds() {
			p, kind := p, kind
			t.Run(p.Name+"/"+string(kind), func(t *testing.T) {
				t.Parallel()
				cfg := harness.DefaultRunConfig()
				cfg.CacheSize = 256
				if _, err := harness.Run(p, kind, cfg); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestIntermittentExecution injects periodic power failures (with the
// paper's n/2 forward-progress checkpoint rule) and checks that every
// system still computes the reference result. The volatile baseline is
// excluded — it cannot survive power failures by design.
func TestIntermittentExecution(t *testing.T) {
	kinds := []systems.Kind{
		systems.KindClank, systems.KindPROWL, systems.KindReplayCache,
		systems.KindNaiveNACHO, systems.KindNACHO, systems.KindOracleNACHO,
		systems.KindWriteThrough,
	}
	for _, p := range program.All() {
		for _, kind := range kinds {
			p, kind := p, kind
			t.Run(p.Name+"/"+string(kind), func(t *testing.T) {
				t.Parallel()
				cfg := harness.DefaultRunConfig()
				const onDuration = 50_000 // 1 ms at 50 MHz
				cfg.Schedule = power.Periodic{Period: onDuration}
				cfg.ForcedCheckpointPeriod = onDuration / 2
				res, err := harness.Run(p, kind, cfg)
				if err != nil {
					t.Fatal(err)
				}
				if res.Counters.PowerFailures == 0 {
					t.Fatal("expected at least one power failure")
				}
			})
		}
	}
}

// TestExtensionsUnderFailures runs the Section 8 extension configurations
// (adaptive checkpointing, energy prediction) under periodic power failures:
// correctness must be preserved — energy prediction in particular relies on
// the deferred-failure guarantee window.
func TestExtensionsUnderFailures(t *testing.T) {
	for _, p := range program.All() {
		p := p
		t.Run(p.Name+"/adaptive", func(t *testing.T) {
			t.Parallel()
			cfg := harness.DefaultRunConfig()
			cfg.DirtyThreshold = 16
			cfg.Schedule = power.Periodic{Period: 50_000}
			cfg.ForcedCheckpointPeriod = 25_000
			if _, err := harness.Run(p, systems.KindNACHO, cfg); err != nil {
				t.Fatal(err)
			}
		})
		t.Run(p.Name+"/energy-prediction", func(t *testing.T) {
			t.Parallel()
			cfg := harness.DefaultRunConfig()
			cfg.EnergyPrediction = true
			cfg.Schedule = power.NewUniform(5_000, 80_000, 7)
			cfg.ForcedCheckpointPeriod = 2_500
			res, err := harness.Run(p, systems.KindNACHO, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.Counters.PowerFailures == 0 {
				t.Fatal("expected power failures")
			}
		})
	}
}

// TestRandomFailures stresses recovery with seeded random on-durations so
// failures land at arbitrary points, including inside checkpoints.
func TestRandomFailures(t *testing.T) {
	kinds := []systems.Kind{systems.KindNACHO, systems.KindClank, systems.KindReplayCache}
	for _, p := range program.All() {
		for _, kind := range kinds {
			p, kind := p, kind
			t.Run(p.Name+"/"+string(kind), func(t *testing.T) {
				t.Parallel()
				cfg := harness.DefaultRunConfig()
				cfg.Schedule = power.NewUniform(5_000, 80_000, 42)
				cfg.ForcedCheckpointPeriod = 2_500
				if _, err := harness.Run(p, kind, cfg); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}
