package harness_test

import (
	"testing"

	"nacho/internal/harness"
	"nacho/internal/power"
	"nacho/internal/program"
	"nacho/internal/systems"
)

// TestDeterminism checks the simulator's reproducibility guarantee: the same
// configuration produces bit-identical counters, with and without power
// failures. Every schedule is seeded and the emulator has no hidden
// nondeterminism, so experiments are exactly repeatable.
func TestDeterminism(t *testing.T) {
	cfgs := []harness.RunConfig{
		harness.DefaultRunConfig(),
		func() harness.RunConfig {
			c := harness.DefaultRunConfig()
			c.CacheSize = 256
			c.Schedule = power.NewUniform(10_000, 90_000, 99)
			c.ForcedCheckpointPeriod = 5_000
			return c
		}(),
	}
	for _, kind := range []systems.Kind{systems.KindNACHO, systems.KindReplayCache, systems.KindClank} {
		for i, cfg := range cfgs {
			p, _ := program.ByName("crc")
			a, err := harness.Run(p, kind, cfg)
			if err != nil {
				t.Fatal(err)
			}
			b, err := harness.Run(p, kind, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if a.Counters != b.Counters {
				t.Errorf("%s cfg %d: counters differ between identical runs:\n%+v\n%+v", kind, i, a.Counters, b.Counters)
			}
		}
	}
}
