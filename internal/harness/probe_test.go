package harness_test

import (
	"os"
	"path/filepath"
	"testing"

	"nacho/internal/energy"
	"nacho/internal/harness"
	"nacho/internal/power"
	"nacho/internal/program"
	"nacho/internal/sim"
	"nacho/internal/systems"
)

// goldenBytes loads a pre-refactor report snapshot from testdata.
func goldenBytes(t *testing.T, name string) string {
	t.Helper()
	b, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestReportsMatchPreRefactorGoldens is the probe refactor's byte-identity
// regression gate: Figure 5 and Table 3 must render exactly the bytes the
// pre-probe wiring produced (goldens generated at commit time with one
// worker). The experiment runs execute with the verifier attached — as a
// probe now, as a hardwired observer then — so any drift in event routing,
// emission order, or cycle accounting shows up here.
func TestReportsMatchPreRefactorGoldens(t *testing.T) {
	prev := harness.SetWorkers(1)
	defer harness.SetWorkers(prev)

	fig5, err := harness.Fig5([]string{"crc", "sha", "towers"})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := fig5.String(), goldenBytes(t, "fig5_golden.txt"); got != want {
		t.Errorf("Fig5 output drifted from pre-refactor golden:\ngot:\n%s\nwant:\n%s", got, want)
	}

	table3, err := harness.Table3([]string{"crc", "towers", "quicksort"})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := table3.String(), goldenBytes(t, "table3_golden.txt"); got != want {
		t.Errorf("Table3 output drifted from pre-refactor golden:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestProbeAttachmentDoesNotPerturbRuns asserts attaching an observer leaves
// the simulation bit-for-bit unchanged: counters (cycles included) and the
// result word must match between a probed and an unprobed run.
func TestProbeAttachmentDoesNotPerturbRuns(t *testing.T) {
	for _, kind := range systems.AllKinds() {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			t.Parallel()
			p, ok := program.ByName("crc")
			if !ok {
				t.Fatal("crc benchmark missing")
			}
			cfg := harness.DefaultRunConfig()
			plain, err := harness.Run(p, kind, cfg)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Probe = &sim.IntervalStats{}
			probed, err := harness.Run(p, kind, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if plain.Result != probed.Result {
				t.Errorf("result word changed under probing: %08x vs %08x", plain.Result, probed.Result)
			}
			if diff := plain.Counters.Diff(probed.Counters); len(diff) != 0 {
				t.Errorf("counters changed under probing: %v", diff)
			}
		})
	}
}

// TestCounterProbeMatchesDirectCounters is the stream-completeness property:
// on a failure-free run, a metrics.Counters derived purely from probe events
// must equal the directly-maintained production counters, for every
// benchmark under every system. Cycles is the one intentional exception —
// the emulator stamps it from its clock at end of run, not from an event.
//
// (Under power failures the two can legitimately diverge: events are emitted
// for *completed* actions, so an action cut down mid-flight by a failure has
// charged cycles but emitted nothing.)
func TestCounterProbeMatchesDirectCounters(t *testing.T) {
	for _, p := range program.All() {
		for _, kind := range systems.AllKinds() {
			p, kind := p, kind
			t.Run(p.Name+"/"+string(kind), func(t *testing.T) {
				t.Parallel()
				cfg := harness.DefaultRunConfig()
				cp := sim.NewCounterProbe()
				cfg.Probe = cp
				res, err := harness.Run(p, kind, cfg)
				if err != nil {
					t.Fatal(err)
				}
				derived := cp.Counters()
				derived.Cycles = res.Counters.Cycles
				if diff := derived.Diff(res.Counters); len(diff) != 0 {
					t.Errorf("probe-derived counters diverge from direct counters:\n  %v", diff)
				}
			})
		}
	}
}

// TestEnergyMeterMatchesEstimate checks the event-driven energy meter against
// the counter-folding estimate: on a failure-free run they must agree exactly
// (same integer event counts scaled by the same coefficients).
func TestEnergyMeterMatchesEstimate(t *testing.T) {
	model := energy.DefaultModel()
	for _, kind := range []systems.Kind{
		systems.KindVolatile, systems.KindClank, systems.KindPROWL,
		systems.KindReplayCache, systems.KindNACHO, systems.KindWriteThrough,
	} {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			t.Parallel()
			p, ok := program.ByName("towers")
			if !ok {
				t.Fatal("towers benchmark missing")
			}
			cfg := harness.DefaultRunConfig()
			meter := energy.NewMeter(model)
			cfg.Probe = meter
			res, err := harness.Run(p, kind, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if got, want := meter.Breakdown(), model.Estimate(res.Counters); got != want {
				t.Errorf("meter breakdown %+v != counter estimate %+v", got, want)
			}
		})
	}
}

// TestVerifierAsProbeUnderFailures is the refactor's end-to-end safety net:
// the verifier now sees the run purely through the probe pipeline, sharing
// it with other observers. Every benchmark on every recovering system, with
// periodic power failures injected, must still finish with shadow-memory
// equality, zero unrepaired WAR violations, and the reference checksum
// (harness.Run enforces all three), with a second probe attached alongside.
func TestVerifierAsProbeUnderFailures(t *testing.T) {
	kinds := []systems.Kind{
		systems.KindClank, systems.KindPROWL, systems.KindReplayCache,
		systems.KindNaiveNACHO, systems.KindNACHO, systems.KindOracleNACHO,
		systems.KindNACHOPW, systems.KindNACHOST, systems.KindWriteThrough,
	}
	for _, p := range program.All() {
		for _, kind := range kinds {
			p, kind := p, kind
			t.Run(p.Name+"/"+string(kind), func(t *testing.T) {
				t.Parallel()
				cfg := harness.DefaultRunConfig()
				const onDuration = 60_000
				cfg.Schedule = power.Periodic{Period: onDuration}
				cfg.ForcedCheckpointPeriod = onDuration / 2
				cfg.Probe = &sim.IntervalStats{}
				res, err := harness.Run(p, kind, cfg)
				if err != nil {
					t.Fatal(err)
				}
				if res.Counters.PowerFailures == 0 {
					t.Fatal("expected at least one power failure")
				}
			})
		}
	}
}
