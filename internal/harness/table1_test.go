package harness_test

import (
	"testing"

	"nacho/internal/harness"
	"nacho/internal/program"
	"nacho/internal/systems"
)

// TestTable1FeatureBitsBehavioural ties the paper's Table 1 feature matrix
// to observable behaviour: each testable feature bit is checked against the
// corresponding system's counters on a common workload.
func TestTable1FeatureBitsBehavioural(t *testing.T) {
	p, _ := program.ByName("coremark")
	run := func(kind systems.Kind) (c struct {
		hits, ckpts, nvmBytes uint64
	}) {
		res, err := harness.Run(p, kind, harness.DefaultRunConfig())
		if err != nil {
			t.Fatal(err)
		}
		c.hits = res.Counters.CacheHits
		c.ckpts = res.Counters.Checkpoints
		c.nvmBytes = res.Counters.NVMBytes()
		return c
	}

	clank := run(systems.KindClank)
	prowl := run(systems.KindPROWL)
	rc := run(systems.KindReplayCache)
	nacho := run(systems.KindNACHO)

	// "supports data cache": everyone but Clank serves hits from a cache.
	if clank.hits != 0 {
		t.Error("clank reported cache hits (it is cacheless)")
	}
	for name, c := range map[string]uint64{"prowl": prowl.hits, "replaycache": rc.hits, "nacho": nacho.hits} {
		if c == 0 {
			t.Errorf("%s reported no cache hits", name)
		}
	}

	// "low checkpoint count": the cache-based systems need far fewer
	// checkpoints than Clank; ReplayCache none at all without failures.
	if prowl.ckpts*2 > clank.ckpts || nacho.ckpts*2 > clank.ckpts {
		t.Errorf("checkpoint counts not clearly below Clank: clank=%d prowl=%d nacho=%d",
			clank.ckpts, prowl.ckpts, nacho.ckpts)
	}
	if rc.ckpts != 0 {
		t.Errorf("replaycache created %d checkpoints without power failures", rc.ckpts)
	}

	// "low NVM reads/writes": every cache-based system moves far fewer NVM
	// bytes than Clank on this workload.
	for name, b := range map[string]uint64{"prowl": prowl.nvmBytes, "replaycache": rc.nvmBytes, "nacho": nacho.nvmBytes} {
		if b*2 > clank.nvmBytes {
			t.Errorf("%s NVM bytes (%d) not clearly below clank (%d)", name, b, clank.nvmBytes)
		}
	}
}
