package harness

import (
	"fmt"

	"nacho/internal/emu"
	"nacho/internal/mem"
	"nacho/internal/power"
	"nacho/internal/program"
	"nacho/internal/systems"
)

// The serializable run plane: every experiment is, underneath, a matrix of
// RunSpec cells, and a RunSpec is the wire form of one cell — complete enough
// that a worker process on another machine can rebuild the exact RunConfig
// and execute it, landing the result in the shared persistent store under the
// same digest the coordinator computed. ExperimentSpecs enumerates an
// experiment's matrix without running anything (the run cache's collect
// mode); ExecuteSpec is the worker side.

// RunSpec is the serializable identity of one run. The schedule travels as
// its Key() string (power.ParseKey is the inverse); the engine as its
// resolved name. Zero-valued optional fields are omitted on the wire.
type RunSpec struct {
	Program  string `json:"program"`
	System   string `json:"system"`
	Engine   string `json:"engine,omitempty"`
	Cache    int    `json:"cache"`
	Ways     int    `json:"ways"`
	Schedule string `json:"schedule"`

	ForcedCheckpointPeriod uint64 `json:"forced_period,omitempty"`
	ForcedCheckpointMargin uint64 `json:"forced_margin,omitempty"`
	MaxInstructions        uint64 `json:"max_instructions,omitempty"`
	MaxCycles              uint64 `json:"max_cycles,omitempty"`
	FinalFlush             bool   `json:"final_flush,omitempty"`
	Verify                 bool   `json:"verify"`

	ClockHz   uint64 `json:"clock_hz"`
	HitCycles uint64 `json:"hit_cycles"`
	NVMCycles uint64 `json:"nvm_cycles"`

	DirtyThreshold   int  `json:"dirty_threshold,omitempty"`
	EnergyPrediction bool `json:"energy_prediction,omitempty"`
}

// SpecFor renders one run request into its serializable spec. cfg's cost
// model is defaulted and its engine resolved, so the spec round-trips to an
// identical store digest on any process.
func SpecFor(p *program.Program, kind systems.Kind, cfg RunConfig) RunSpec {
	if cfg.Cost == (mem.CostModel{}) {
		cfg.Cost = mem.DefaultCostModel()
	}
	return RunSpec{
		Program:                p.Name,
		System:                 string(kind),
		Engine:                 string(emu.Config{Engine: cfg.Engine, NoFastPath: cfg.NoFastPath}.ResolveEngine()),
		Cache:                  cfg.CacheSize,
		Ways:                   cfg.Ways,
		Schedule:               scheduleKey(cfg),
		ForcedCheckpointPeriod: cfg.ForcedCheckpointPeriod,
		ForcedCheckpointMargin: cfg.ForcedCheckpointMargin,
		MaxInstructions:        cfg.MaxInstructions,
		MaxCycles:              cfg.MaxCycles,
		FinalFlush:             cfg.FinalFlush,
		Verify:                 cfg.Verify,
		ClockHz:                cfg.Cost.ClockHz,
		HitCycles:              cfg.Cost.HitCycles,
		NVMCycles:              cfg.Cost.NVMCycles,
		DirtyThreshold:         cfg.DirtyThreshold,
		EnergyPrediction:       cfg.EnergyPrediction,
	}
}

// Resolve validates a spec received off the wire and rebuilds the concrete
// run request: the registered program, system kind, and RunConfig (schedule
// reconstructed via power.ParseKey, engine via emu.ParseEngine).
func (sp RunSpec) Resolve() (*program.Program, systems.Kind, RunConfig, error) {
	p, ok := program.ByName(sp.Program)
	if !ok {
		return nil, "", RunConfig{}, fmt.Errorf("harness: spec names unknown benchmark %q", sp.Program)
	}
	kind := systems.Kind(sp.System)
	valid := false
	for _, k := range systems.AllKinds() {
		if k == kind {
			valid = true
			break
		}
	}
	if !valid {
		return nil, "", RunConfig{}, fmt.Errorf("harness: spec names unknown system %q", sp.System)
	}
	sched, err := power.ParseKey(sp.Schedule)
	if err != nil {
		return nil, "", RunConfig{}, fmt.Errorf("harness: spec schedule: %w", err)
	}
	engine, err := emu.ParseEngine(sp.Engine)
	if err != nil {
		return nil, "", RunConfig{}, fmt.Errorf("harness: spec engine: %w", err)
	}
	cfg := RunConfig{
		CacheSize:              sp.Cache,
		Ways:                   sp.Ways,
		ForcedCheckpointPeriod: sp.ForcedCheckpointPeriod,
		ForcedCheckpointMargin: sp.ForcedCheckpointMargin,
		MaxInstructions:        sp.MaxInstructions,
		MaxCycles:              sp.MaxCycles,
		FinalFlush:             sp.FinalFlush,
		Verify:                 sp.Verify,
		Cost:                   mem.CostModel{ClockHz: sp.ClockHz, HitCycles: sp.HitCycles, NVMCycles: sp.NVMCycles},
		DirtyThreshold:         sp.DirtyThreshold,
		EnergyPrediction:       sp.EnergyPrediction,
		Engine:                 engine,
	}
	if _, isNone := sched.(power.None); !isNone {
		cfg.Schedule = sched
	}
	if cfg.Cost == (mem.CostModel{}) {
		cfg.Cost = mem.DefaultCostModel()
	}
	return p, kind, cfg, nil
}

// Digest returns the spec's persistent-store digest — the content address its
// result will occupy once executed. It builds the program image, so the first
// call per benchmark assembles it.
func (sp RunSpec) Digest() (string, error) {
	p, kind, cfg, err := sp.Resolve()
	if err != nil {
		return "", err
	}
	img, err := p.Build()
	if err != nil {
		return "", err
	}
	key := storeKeyFor(img, kind, cfg, true)
	return key.Digest(), nil
}

// ExecuteSpec resolves and executes one spec through the full store-aware run
// path (persistent-store read-through and write-behind included) and returns
// the digest its result is stored under. A spec whose simulation fails still
// succeeds here — the error outcome is a result like any other, recorded in
// the store; only an invalid spec (unknown program/system, malformed
// schedule or engine) returns an error.
func ExecuteSpec(sp RunSpec) (string, error) {
	p, kind, cfg, err := sp.Resolve()
	if err != nil {
		return "", err
	}
	img, err := p.Build()
	if err != nil {
		return "", err
	}
	key := storeKeyFor(img, kind, cfg, true)
	runImageStored(img, kind, cfg, true)
	return key.Digest(), nil
}

// experimentDef is one registered experiment: its matrix-and-report builder
// plus its paper-default benchmark set (nil for experiments with a fixed
// internal set).
type experimentDef struct {
	build    func(rc *runCache, benchmarks []string) (*Report, error)
	defaults func() []string
}

// experimentRegistry maps every regenerable table and figure to its builder.
// experimentOrder keeps the paper's presentation order for listings.
var (
	experimentOrder = []string{
		"table1", "fig5", "fig6", "fig7", "table2", "table3", "fig8",
		"ext-adaptive", "ext-energy", "ext-wt", "ext-table2-long", "ext-fp",
		"ext-seeds",
	}
	experimentRegistry = map[string]experimentDef{
		"table1": {
			build:    func(*runCache, []string) (*Report, error) { return Table1(), nil },
			defaults: func() []string { return nil },
		},
		"fig5":   {build: fig5, defaults: AllBenchmarks},
		"fig6":   {build: fig6, defaults: Fig6Benchmarks},
		"fig7":   {build: fig7, defaults: Fig6Benchmarks},
		"table2": {build: table2, defaults: Table2Benchmarks},
		"table3": {build: table3, defaults: Table3Benchmarks},
		"fig8":   {build: fig8, defaults: AllBenchmarks},
		"ext-adaptive": {
			build:    extAdaptive,
			defaults: func() []string { return []string{"coremark", "quicksort", "picojpeg", "dijkstra"} },
		},
		"ext-energy": {build: extEnergy, defaults: AllBenchmarks},
		"ext-wt":     {build: extWriteThrough, defaults: AllBenchmarks},
		"ext-table2-long": {
			build:    func(rc *runCache, _ []string) (*Report, error) { return extTable2Long(rc) },
			defaults: func() []string { return nil },
		},
		"ext-fp":    {build: extFalsePositives, defaults: AllBenchmarks},
		"ext-seeds": {build: extSeedVariance, defaults: Table2Benchmarks},
	}
)

// ExperimentNames lists the regenerable experiments in paper order.
func ExperimentNames() []string {
	out := make([]string, len(experimentOrder))
	copy(out, experimentOrder)
	return out
}

// resolveExperiment looks a named experiment up and settles its benchmark
// set (nil or empty means the experiment's default).
func resolveExperiment(name string, benchmarks []string) (experimentDef, []string, error) {
	def, ok := experimentRegistry[name]
	if !ok {
		return experimentDef{}, nil, fmt.Errorf("harness: unknown experiment %q", name)
	}
	if len(benchmarks) == 0 {
		benchmarks = def.defaults()
	}
	return def, benchmarks, nil
}

// RunNamedExperiment regenerates one experiment by name, with benchmarks
// narrowing the set (nil means the paper default).
func RunNamedExperiment(name string, benchmarks []string) (*Report, error) {
	def, benchmarks, err := resolveExperiment(name, benchmarks)
	if err != nil {
		return nil, err
	}
	return regenerate(func(rc *runCache) (*Report, error) { return def.build(rc, benchmarks) })
}

// ExperimentSpecs enumerates the run matrix of a named experiment without
// executing anything: the builder runs once against a collect-mode run cache
// and each unique requested cell becomes a RunSpec, in deterministic request
// order. Probed or traced cells (none of the registered experiments have any)
// would bypass collection the same way they bypass caching.
func ExperimentSpecs(name string, benchmarks []string) ([]RunSpec, error) {
	def, benchmarks, err := resolveExperiment(name, benchmarks)
	if err != nil {
		return nil, err
	}
	dry := newRunCache()
	dry.collect = true
	if _, err := def.build(dry, benchmarks); err != nil {
		return nil, err
	}
	specs := make([]RunSpec, len(dry.jobs))
	for i, j := range dry.jobs {
		specs[i] = SpecFor(j.p, j.kind, j.cfg)
	}
	return specs, nil
}
