package harness_test

import (
	"strconv"
	"strings"
	"testing"

	"nacho/internal/harness"
)

func TestReportRendering(t *testing.T) {
	rep := &harness.Report{
		Title:  "T",
		Note:   "N",
		Header: []string{"a", "longer"},
		Rows:   [][]string{{"x", "y"}, {"wiiiide", "z"}},
	}
	s := rep.String()
	for _, want := range []string{"T\n", "N\n", "a", "longer", "wiiiide", "---"} {
		if !strings.Contains(s, want) {
			t.Errorf("render missing %q:\n%s", want, s)
		}
	}
}

// TestReportRaggedRows is the regression test for the ragged-row panic: the
// width pass used to guard i < len(widths) but the render loop indexed
// widths[i] unguarded, so any row wider than the header panicked String.
func TestReportRaggedRows(t *testing.T) {
	rep := &harness.Report{
		Title:  "ragged",
		Header: []string{"only"},
		Rows:   [][]string{{"a", "beyond", "the-header"}, {}, {"b"}},
	}
	s := rep.String()
	for _, want := range []string{"only", "beyond", "the-header"} {
		if !strings.Contains(s, want) {
			t.Errorf("String dropped cell %q:\n%s", want, s)
		}
	}
	csv := rep.CSV()
	if !strings.Contains(csv, "a,beyond,the-header") {
		t.Errorf("CSV dropped wide row: %q", csv)
	}
	if len(strings.Split(strings.TrimSuffix(csv, "\n"), "\n")) != 4 {
		t.Errorf("CSV row count wrong: %q", csv)
	}
}

func TestFig5ShapeProperties(t *testing.T) {
	// One benchmark keeps the test fast; the shape assertions are the
	// paper's headline claims.
	rep, err := harness.Fig5([]string{"aes"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 2 {
		t.Fatalf("rows = %d, want 2 (256B and 512B)", len(rep.Rows))
	}
	parse := func(s string) float64 {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			t.Fatalf("bad cell %q", s)
		}
		return v
	}
	for _, row := range rep.Rows {
		clank, nacho, oracle := parse(row[2]), parse(row[5]), parse(row[6])
		if nacho < 1 || clank < 1 {
			t.Errorf("%v: normalized times below the volatile baseline", row)
		}
		if nacho >= clank {
			t.Errorf("%v: NACHO (%f) not faster than Clank (%f)", row[1], nacho, clank)
		}
		if oracle > nacho+1e-9 {
			t.Errorf("%v: Oracle (%f) slower than NACHO (%f)", row[1], oracle, nacho)
		}
	}
}

func TestFig7Shape(t *testing.T) {
	rep, err := harness.Fig7([]string{"aes"})
	if err != nil {
		t.Fatal(err)
	}
	nacho, err := strconv.ParseFloat(rep.Rows[0][4], 64)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's headline: TinyAES NVM traffic drops by ~99% vs Clank.
	if nacho > 0.05 {
		t.Errorf("aes NVM ratio %f, expected < 0.05", nacho)
	}
}

func TestTable2OverheadDecreasesWithOnDuration(t *testing.T) {
	rep, err := harness.Table2([]string{"crc"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 on-durations", len(rep.Rows))
	}
	parsePct := func(s string) float64 {
		v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
		if err != nil {
			t.Fatalf("bad cell %q", s)
		}
		return v
	}
	first := parsePct(rep.Rows[0][1])
	last := parsePct(rep.Rows[len(rep.Rows)-1][1])
	if first < last {
		t.Errorf("overhead grew with on-duration: 5ms=%f%%, 100ms=%f%%", first, last)
	}
	if first < 0 {
		t.Errorf("negative overhead %f%%", first)
	}
}

func TestTable3Runs(t *testing.T) {
	rep, err := harness.Table3([]string{"quicksort"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 metrics", len(rep.Rows))
	}
}

func TestFig6AndFig8Run(t *testing.T) {
	if _, err := harness.Fig6([]string{"sha"}); err != nil {
		t.Fatal(err)
	}
	rep, err := harness.Fig8([]string{"sha"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows[0]) != 7 {
		t.Fatalf("fig8 columns = %d, want 7", len(rep.Rows[0]))
	}
}

func TestTable1Static(t *testing.T) {
	rep := harness.Table1()
	if len(rep.Rows) != 9 {
		t.Errorf("feature rows = %d, want 9", len(rep.Rows))
	}
}

func TestUnknownBenchmarkErrors(t *testing.T) {
	if _, err := harness.Fig5([]string{"nope"}); err == nil {
		t.Error("fig5 accepted unknown benchmark")
	}
	if _, err := harness.Table2([]string{"nope"}); err == nil {
		t.Error("table2 accepted unknown benchmark")
	}
}

func TestExtensionExperimentsRun(t *testing.T) {
	rep, err := harness.ExtAdaptive([]string{"quicksort"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 5 { // 5 thresholds
		t.Errorf("ext-adaptive rows = %d, want 5", len(rep.Rows))
	}
	if _, err := harness.ExtEnergy([]string{"aes"}); err != nil {
		t.Fatal(err)
	}
	wt, err := harness.ExtWriteThrough([]string{"aes"})
	if err != nil {
		t.Fatal(err)
	}
	if len(wt.Rows) != 2 {
		t.Errorf("ext-wt rows = %d, want 2", len(wt.Rows))
	}
}

func TestReportCSV(t *testing.T) {
	rep := &harness.Report{
		Header: []string{"a", "b"},
		Rows:   [][]string{{"1", "x,y"}, {"2", `quo"te`}},
	}
	got := rep.CSV()
	want := "a,b\n1,\"x,y\"\n2,\"quo\"\"te\"\n"
	if got != want {
		t.Errorf("CSV = %q, want %q", got, want)
	}
}
