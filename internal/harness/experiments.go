package harness

import (
	"fmt"
	"sort"
	"strings"

	"nacho/internal/emu"
	"nacho/internal/power"
	"nacho/internal/program"
	"nacho/internal/systems"
)

// Report is one regenerated table or figure, rendered as text rows that
// mirror the paper's series.
type Report struct {
	Title  string
	Note   string
	Header []string
	Rows   [][]string
	// Timing is the harness timing summary of the regeneration (run count,
	// cache hits, summed per-run wall time, total harness wall time). It
	// varies run to run, so String and CSV deliberately exclude it: report
	// output stays byte-identical across repeats and worker counts.
	Timing string
}

// CSV renders the report in the comma-separated form the original
// artifact's benchmark scripts emit into benchmarks/logs (Appendix A.6).
func (r *Report) CSV() string {
	var b strings.Builder
	quote := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			b.WriteString(c)
		}
		b.WriteByte('\n')
	}
	quote(r.Header)
	for _, row := range r.Rows {
		quote(row)
	}
	return b.String()
}

// String renders the report as an aligned text table. Rows may be ragged:
// cells beyond the header get their own columns, short rows end early.
func (r *Report) String() string {
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, cell := range row {
			if i == len(widths) {
				widths = append(widths, 0)
			}
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", r.Title)
	if r.Note != "" {
		fmt.Fprintf(&b, "%s\n", r.Note)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(r.Header)
	sep := make([]string, len(r.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range r.Rows {
		line(row)
	}
	return b.String()
}

func fmtRatio(v float64) string { return fmt.Sprintf("%.3f", v) }

func fmtPct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }

// fig5Systems are the systems Figure 5 plots, in the paper's order.
var fig5Systems = []systems.Kind{
	systems.KindClank, systems.KindPROWL, systems.KindReplayCache,
	systems.KindNACHO, systems.KindOracleNACHO,
}

// Fig5 regenerates Figure 5: execution time for every benchmark and system,
// 2-way caches of 256 B and 512 B, normalized to the fully volatile system.
func Fig5(benchmarks []string) (*Report, error) {
	return regenerate(func(rc *runCache) (*Report, error) { return fig5(rc, benchmarks) })
}

func fig5(rc *runCache, benchmarks []string) (*Report, error) {
	rep := &Report{
		Title:  "Figure 5: execution time normalized to a fully volatile system",
		Note:   "2-way set-associative caches; Clank is cacheless and size-independent",
		Header: []string{"benchmark", "cache", "clank", "prowl", "replaycache", "nacho", "oracle"},
	}
	for _, name := range benchmarks {
		p, ok := program.ByName(name)
		if !ok {
			return nil, fmt.Errorf("unknown benchmark %q", name)
		}
		base, err := rc.get(p, systems.KindVolatile, DefaultRunConfig())
		if err != nil {
			return nil, err
		}
		for _, size := range []int{256, 512} {
			row := []string{name, fmt.Sprintf("%dB", size)}
			for _, kind := range fig5Systems {
				cfg := DefaultRunConfig()
				cfg.CacheSize = size
				res, err := rc.get(p, kind, cfg)
				if err != nil {
					return nil, err
				}
				row = append(row, fmtRatio(float64(res.Counters.Cycles)/float64(base.Counters.Cycles)))
			}
			rep.Rows = append(rep.Rows, row)
		}
	}
	return rep, nil
}

// Fig6Benchmarks is the paper's Figure 6 benchmark set: adpcm and quicksort
// are dropped as near-duplicates of SHA and CRC, towers because Clank and
// Oracle NACHO create no checkpoints there (Section 6.2).
func Fig6Benchmarks() []string {
	return []string{"coremark", "crc", "sha", "dijkstra", "aes", "picojpeg"}
}

// Fig6 regenerates Figure 6: number of checkpoints normalized to Clank for
// PROWL and NACHO at 256 B and 512 B (ReplayCache creates none without power
// failures and is excluded, as in the paper).
func Fig6(benchmarks []string) (*Report, error) {
	return regenerate(func(rc *runCache) (*Report, error) { return fig6(rc, benchmarks) })
}

func fig6(rc *runCache, benchmarks []string) (*Report, error) {
	rep := &Report{
		Title:  "Figure 6: checkpoints created, normalized to Clank",
		Note:   "ReplayCache excluded (no checkpoints without power failures)",
		Header: []string{"benchmark", "cache", "clank(abs)", "prowl", "nacho"},
	}
	for _, name := range benchmarks {
		p, ok := program.ByName(name)
		if !ok {
			return nil, fmt.Errorf("unknown benchmark %q", name)
		}
		clank, err := rc.get(p, systems.KindClank, DefaultRunConfig())
		if err != nil {
			return nil, err
		}
		for _, size := range []int{256, 512} {
			row := []string{name, fmt.Sprintf("%dB", size), fmt.Sprintf("%d", clank.Counters.Checkpoints)}
			for _, kind := range []systems.Kind{systems.KindPROWL, systems.KindNACHO} {
				cfg := DefaultRunConfig()
				cfg.CacheSize = size
				res, err := rc.get(p, kind, cfg)
				if err != nil {
					return nil, err
				}
				if clank.Counters.Checkpoints == 0 {
					row = append(row, fmt.Sprintf("%d(abs)", res.Counters.Checkpoints))
				} else {
					row = append(row, fmtRatio(float64(res.Counters.Checkpoints)/float64(clank.Counters.Checkpoints)))
				}
			}
			rep.Rows = append(rep.Rows, row)
		}
	}
	return rep, nil
}

// Fig7 regenerates Figure 7: NVM byte transfers (reads+writes) normalized to
// Clank; PROWL, ReplayCache and NACHO use a 512 B data cache.
func Fig7(benchmarks []string) (*Report, error) {
	return regenerate(func(rc *runCache) (*Report, error) { return fig7(rc, benchmarks) })
}

func fig7(rc *runCache, benchmarks []string) (*Report, error) {
	rep := &Report{
		Title:  "Figure 7: NVM byte transfers normalized to Clank (512 B caches)",
		Header: []string{"benchmark", "clank(bytes)", "prowl", "replaycache", "nacho"},
	}
	for _, name := range benchmarks {
		p, ok := program.ByName(name)
		if !ok {
			return nil, fmt.Errorf("unknown benchmark %q", name)
		}
		clank, err := rc.get(p, systems.KindClank, DefaultRunConfig())
		if err != nil {
			return nil, err
		}
		row := []string{name, fmt.Sprintf("%d", clank.Counters.NVMBytes())}
		for _, kind := range []systems.Kind{systems.KindPROWL, systems.KindReplayCache, systems.KindNACHO} {
			res, err := rc.get(p, kind, DefaultRunConfig())
			if err != nil {
				return nil, err
			}
			row = append(row, fmtRatio(float64(res.Counters.NVMBytes())/float64(clank.Counters.NVMBytes())))
		}
		rep.Rows = append(rep.Rows, row)
	}
	return rep, nil
}

// Table2Benchmarks is the paper's Table 2 set.
func Table2Benchmarks() []string {
	return []string{"coremark", "picojpeg", "aes", "sha", "adpcm"}
}

// Table2OnDurationsMs are the paper's power-failure on-durations.
var Table2OnDurationsMs = []float64{5, 10, 50, 100}

// Table2 regenerates Table 2: NACHO's re-execution overhead under periodic
// power failures, relative to failure-free NACHO, with a forward-progress
// checkpoint at half the on-duration.
func Table2(benchmarks []string) (*Report, error) {
	return regenerate(func(rc *runCache) (*Report, error) { return table2(rc, benchmarks) })
}

func table2(rc *runCache, benchmarks []string) (*Report, error) {
	rep := &Report{
		Title:  "Table 2: NACHO re-execution overhead vs failure-free NACHO (512 B, 2-way, 50 MHz)",
		Note:   "periodic power failures; forced checkpoint every on-duration/2",
		Header: append([]string{"on-duration"}, benchmarks...),
	}
	cost := DefaultRunConfig().Cost
	for _, ms := range Table2OnDurationsMs {
		row := []string{fmt.Sprintf("%g ms", ms)}
		for _, name := range benchmarks {
			p, ok := program.ByName(name)
			if !ok {
				return nil, fmt.Errorf("unknown benchmark %q", name)
			}
			base, err := rc.get(p, systems.KindNACHO, DefaultRunConfig())
			if err != nil {
				return nil, err
			}
			cfg := DefaultRunConfig()
			period := cost.CyclesForMillis(ms)
			cfg.Schedule = power.Periodic{Period: period}
			cfg.ForcedCheckpointPeriod = period / 2
			res, err := rc.get(p, systems.KindNACHO, cfg)
			if err != nil {
				return nil, err
			}
			over := float64(res.Counters.Cycles)/float64(base.Counters.Cycles) - 1
			row = append(row, fmtPct(over))
		}
		rep.Rows = append(rep.Rows, row)
	}
	return rep, nil
}

// Table3Benchmarks is the paper's Table 3 set plus the two recursive
// workloads (towers, quicksort) where stack tracking has the most dead
// frames to harvest in this reproduction (EXPERIMENTS.md discusses the
// difference from the paper's compiled binaries).
func Table3Benchmarks() []string {
	return []string{"coremark", "picojpeg", "aes", "crc", "dijkstra", "sha", "towers", "quicksort"}
}

// Table3 regenerates Table 3: percent reduction, relative to Naive NACHO, of
// intermittent-computing overhead, checkpoints, NVM reads and NVM writes for
// the possible-WAR detector alone (PW), stack tracking alone (ST), and the
// complete system (N).
func Table3(benchmarks []string) (*Report, error) {
	return regenerate(func(rc *runCache) (*Report, error) { return table3(rc, benchmarks) })
}

func table3(rc *runCache, benchmarks []string) (*Report, error) {
	rep := &Report{
		Title:  "Table 3: reduction vs Naive NACHO (512 B, 2-way)",
		Note:   "PW = possible-WAR detection only, ST = stack tracking only, N = NACHO",
		Header: []string{"benchmark", "metric", "PW", "ST", "N"},
	}
	variants := []systems.Kind{systems.KindNACHOPW, systems.KindNACHOST, systems.KindNACHO}
	for _, name := range benchmarks {
		p, ok := program.ByName(name)
		if !ok {
			return nil, fmt.Errorf("unknown benchmark %q", name)
		}
		volatileRes, err := rc.get(p, systems.KindVolatile, DefaultRunConfig())
		if err != nil {
			return nil, err
		}
		naive, err := rc.get(p, systems.KindNaiveNACHO, DefaultRunConfig())
		if err != nil {
			return nil, err
		}
		var results []emu.Result
		for _, kind := range variants {
			res, err := rc.get(p, kind, DefaultRunConfig())
			if err != nil {
				return nil, err
			}
			results = append(results, res)
		}
		metricRows := []struct {
			metric string
			value  func(emu.Result) float64
		}{
			// Overhead is the extra cycles over the volatile system — the
			// paper's "intermittent computing overhead".
			{"overhead", func(r emu.Result) float64 {
				return float64(r.Counters.Cycles) - float64(volatileRes.Counters.Cycles)
			}},
			{"checkpoints", func(r emu.Result) float64 { return float64(r.Counters.Checkpoints) }},
			{"nvm reads", func(r emu.Result) float64 { return float64(r.Counters.NVMReadBytes) }},
			{"nvm writes", func(r emu.Result) float64 { return float64(r.Counters.NVMWriteBytes) }},
		}
		for _, mr := range metricRows {
			row := []string{name, mr.metric}
			baseVal := mr.value(naive)
			for _, res := range results {
				if baseVal == 0 {
					row = append(row, "n/a")
					continue
				}
				row = append(row, fmtPct(1-mr.value(res)/baseVal))
			}
			rep.Rows = append(rep.Rows, row)
		}
	}
	return rep, nil
}

// Fig8 regenerates Figure 8: NACHO's design space — cache sizes 256/512/1024
// bytes and 2/4 ways — normalized to the volatile system.
func Fig8(benchmarks []string) (*Report, error) {
	return regenerate(func(rc *runCache) (*Report, error) { return fig8(rc, benchmarks) })
}

func fig8(rc *runCache, benchmarks []string) (*Report, error) {
	rep := &Report{
		Title:  "Figure 8: NACHO cache design space, normalized to a fully volatile system",
		Header: []string{"benchmark", "256B/2w", "512B/2w", "1024B/2w", "256B/4w", "512B/4w", "1024B/4w"},
	}
	for _, name := range benchmarks {
		p, ok := program.ByName(name)
		if !ok {
			return nil, fmt.Errorf("unknown benchmark %q", name)
		}
		base, err := rc.get(p, systems.KindVolatile, DefaultRunConfig())
		if err != nil {
			return nil, err
		}
		row := []string{name}
		for _, ways := range []int{2, 4} {
			for _, size := range []int{256, 512, 1024} {
				cfg := DefaultRunConfig()
				cfg.CacheSize = size
				cfg.Ways = ways
				res, err := rc.get(p, systems.KindNACHO, cfg)
				if err != nil {
					return nil, err
				}
				row = append(row, fmtRatio(float64(res.Counters.Cycles)/float64(base.Counters.Cycles)))
			}
		}
		rep.Rows = append(rep.Rows, row)
	}
	return rep, nil
}

// Table1 renders the paper's qualitative feature matrix (Table 1) for the
// systems implemented in this repository.
func Table1() *Report {
	yes, no := "yes", "no"
	return &Report{
		Title:  "Table 1: feature matrix of the implemented systems",
		Header: []string{"feature", "clank", "prowl", "replaycache", "nacho"},
		Rows: [][]string{
			{"supports data cache", no, yes, yes, yes},
			{"low checkpoint count", no, yes, yes, yes},
			{"low NVM reads/writes", no, yes, yes, yes},
			{"incorruptible", yes, yes, "partially", yes},
			{"no compiler transformations", yes, yes, no, yes},
			{"cache architecture-agnostic", "n/a", no, yes, yes},
			{"no extra hardware required", "n/a", yes, no, yes},
			{"tight data cache integration", "n/a", no, no, yes},
			{"considers program execution flow", "n/a", no, no, yes},
		},
	}
}

// AllBenchmarks returns the full benchmark list in registry order.
func AllBenchmarks() []string {
	names := program.Names()
	sort.Strings(names)
	return names
}
