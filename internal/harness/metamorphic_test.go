package harness_test

import (
	"testing"

	"nacho/internal/harness"
	"nacho/internal/power"
	"nacho/internal/program"
	"nacho/internal/systems"
)

// dataSections runs an image and returns the final NVM bytes of every
// non-text segment, read back through the system's memory hierarchy after
// the post-halt flush.
func dataSections(t *testing.T, img *program.Image, kind systems.Kind, cfg harness.RunConfig) map[uint32][]byte {
	t.Helper()
	cfg.FinalFlush = true
	res, sys, err := harness.RunImageSys(img, kind, cfg, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.ExitCode != 0 {
		t.Fatalf("%s on %s: exit code %d", img.Program.Name, kind, res.ExitCode)
	}
	out := make(map[uint32][]byte)
	m := sys.Mem()
	for _, seg := range img.Segments {
		if seg.Addr == program.TextBase {
			continue
		}
		b := make([]byte, len(seg.Data))
		for i := range b {
			b[i] = byte(m.ReadRaw(seg.Addr+uint32(i), 1))
		}
		out[seg.Addr] = b
	}
	return out
}

// TestMetamorphicFinalNVMState is the cross-system metamorphic property:
// intermittent execution must be invisible in memory. For every benchmark
// and every recovery system, the data-section NVM bytes after a run under
// periodic power failures must equal the failure-free Volatile baseline
// byte for byte. (Checkpoint area and stack are excluded — each recovery
// model legitimately leaves different state there.)
func TestMetamorphicFinalNVMState(t *testing.T) {
	kinds := []systems.Kind{
		systems.KindNaiveNACHO, systems.KindNACHO, systems.KindOracleNACHO,
		systems.KindClank, systems.KindPROWL, systems.KindReplayCache,
	}
	progs := program.All()
	if testing.Short() {
		progs = progs[:3]
	}
	for _, p := range progs {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			img, err := p.Build()
			if err != nil {
				t.Fatal(err)
			}
			golden := dataSections(t, img, systems.KindVolatile, harness.DefaultRunConfig())

			for _, kind := range kinds {
				cfg := harness.DefaultRunConfig()
				const onDuration = 50_000 // 1 ms at 50 MHz
				cfg.Schedule = power.Periodic{Period: onDuration}
				cfg.ForcedCheckpointPeriod = onDuration / 2
				got := dataSections(t, img, kind, cfg)

				for addr, want := range golden {
					b := got[addr]
					for i := range want {
						if b[i] != want[i] {
							t.Errorf("%s: NVM byte 0x%08x = %#02x, failure-free baseline %#02x",
								kind, addr+uint32(i), b[i], want[i])
							break
						}
					}
				}
			}
		})
	}
}
