package harness

import (
	"fmt"

	"nacho/internal/energy"
	"nacho/internal/power"
	"nacho/internal/program"
	"nacho/internal/systems"
)

// The experiments in this file go beyond the paper's evaluation: they
// realize the future-work directions of Section 8 (adaptive checkpointing,
// energy prediction, a rough energy model, and the write-through cache the
// paper scopes out) and measure them with the same harness.

// extThresholds is the adaptive-policy sweep (0 = policy off).
var extThresholds = []int{0, 8, 16, 32, 64}

// ExtAdaptive sweeps the Section 8 adaptive checkpointing policy: NACHO
// checkpoints proactively once more than N lines are dirty, trading extra
// checkpoints for a bound on any single checkpoint's size (capacitor
// sizing).
func ExtAdaptive(benchmarks []string) (*Report, error) {
	return regenerate(func(rc *runCache) (*Report, error) { return extAdaptive(rc, benchmarks) })
}

func extAdaptive(rc *runCache, benchmarks []string) (*Report, error) {
	rep := &Report{
		Title:  "Extension (Section 8): adaptive checkpointing — dirty-line threshold sweep (NACHO, 512 B, 2-way)",
		Note:   "threshold 0 = policy off; max-ckpt bounds the energy any one checkpoint needs",
		Header: []string{"benchmark", "threshold", "cycles", "checkpoints", "max-ckpt(lines)", "nvm-writes(B)"},
	}
	for _, name := range benchmarks {
		p, ok := program.ByName(name)
		if !ok {
			return nil, fmt.Errorf("unknown benchmark %q", name)
		}
		for _, th := range extThresholds {
			cfg := DefaultRunConfig()
			cfg.DirtyThreshold = th
			res, err := rc.get(p, systems.KindNACHO, cfg)
			if err != nil {
				return nil, err
			}
			rep.Rows = append(rep.Rows, []string{
				name, fmt.Sprintf("%d", th),
				fmt.Sprintf("%d", res.Counters.Cycles),
				fmt.Sprintf("%d", res.Counters.Checkpoints),
				fmt.Sprintf("%d", res.Counters.MaxCheckpointLines),
				fmt.Sprintf("%d", res.Counters.NVMWriteBytes),
			})
		}
	}
	return rep, nil
}

// ExtEnergy applies the Section 8 rough energy model to every system,
// including NACHO under energy prediction (single-buffered checkpoints,
// halving checkpoint NVM writes).
func ExtEnergy(benchmarks []string) (*Report, error) {
	return regenerate(func(rc *runCache) (*Report, error) { return extEnergy(rc, benchmarks) })
}

func extEnergy(rc *runCache, benchmarks []string) (*Report, error) {
	model := energy.DefaultModel()
	rep := &Report{
		Title: "Extension (Section 8): rough energy model (uJ per run; normalized to volatile)",
		Note: fmt.Sprintf("coefficients: %g pJ/instr, %g pJ/cache access, %g/%g pJ per NVM byte read/written",
			model.InstructionPJ, model.CacheAccessPJ, model.NVMReadPJByte, model.NVMWritePJByte),
		Header: []string{"benchmark", "volatile(uJ)", "clank", "prowl", "replaycache", "nacho", "nacho+ep"},
	}
	kinds := []systems.Kind{systems.KindClank, systems.KindPROWL, systems.KindReplayCache, systems.KindNACHO}
	for _, name := range benchmarks {
		p, ok := program.ByName(name)
		if !ok {
			return nil, fmt.Errorf("unknown benchmark %q", name)
		}
		base, err := rc.get(p, systems.KindVolatile, DefaultRunConfig())
		if err != nil {
			return nil, err
		}
		baseUJ := model.Estimate(base.Counters).TotalUJ()
		row := []string{name, fmt.Sprintf("%.1f", baseUJ)}
		for _, kind := range kinds {
			res, err := rc.get(p, kind, DefaultRunConfig())
			if err != nil {
				return nil, err
			}
			row = append(row, fmtRatio(model.Estimate(res.Counters).TotalUJ()/baseUJ))
		}
		cfg := DefaultRunConfig()
		cfg.EnergyPrediction = true
		res, err := rc.get(p, systems.KindNACHO, cfg)
		if err != nil {
			return nil, err
		}
		row = append(row, fmtRatio(model.Estimate(res.Counters).TotalUJ()/baseUJ))
		rep.Rows = append(rep.Rows, row)
	}
	return rep, nil
}

// ExtWriteThrough compares NACHO's write-back design against the
// write-through cache model of Section 8's limitations discussion.
func ExtWriteThrough(benchmarks []string) (*Report, error) {
	return regenerate(func(rc *runCache) (*Report, error) { return extWriteThrough(rc, benchmarks) })
}

func extWriteThrough(rc *runCache, benchmarks []string) (*Report, error) {
	rep := &Report{
		Title:  "Extension (Section 8): write-back NACHO vs a write-through cache with exact WAR tracking (512 B, 2-way)",
		Header: []string{"benchmark", "system", "cycles", "checkpoints", "nvm-writes(B)", "hit-rate"},
	}
	for _, name := range benchmarks {
		p, ok := program.ByName(name)
		if !ok {
			return nil, fmt.Errorf("unknown benchmark %q", name)
		}
		for _, kind := range []systems.Kind{systems.KindNACHO, systems.KindWriteThrough} {
			res, err := rc.get(p, kind, DefaultRunConfig())
			if err != nil {
				return nil, err
			}
			rep.Rows = append(rep.Rows, []string{
				name, string(kind),
				fmt.Sprintf("%d", res.Counters.Cycles),
				fmt.Sprintf("%d", res.Counters.Checkpoints),
				fmt.Sprintf("%d", res.Counters.NVMWriteBytes),
				fmt.Sprintf("%.1f%%", 100*res.Counters.HitRate()),
			})
		}
	}
	return rep, nil
}

// ExtTable2Long re-runs the Table 2 re-execution-overhead experiment on the
// scaled-up (-long) benchmark variants, whose 100-400 ms runtimes give the
// paper's 50 ms and 100 ms on-durations a meaningful number of failures (the
// standard benchmarks finish in 10-40 ms — see EXPERIMENTS.md).
func ExtTable2Long() (*Report, error) {
	return regenerate(extTable2Long)
}

func extTable2Long(rc *runCache) (*Report, error) {
	benchmarks := []string{"coremark-long", "picojpeg-long", "aes-long", "sha-long", "adpcm-long"}
	rep := &Report{
		Title:  "Extension: Table 2 on the scaled -long benchmarks (NACHO, 512 B, 2-way)",
		Note:   "periodic power failures; forced checkpoint every on-duration/2",
		Header: append([]string{"on-duration"}, benchmarks...),
	}
	cost := DefaultRunConfig().Cost
	base := map[string]float64{}
	for _, name := range benchmarks {
		p, ok := program.ByName(name)
		if !ok {
			return nil, fmt.Errorf("unknown benchmark %q", name)
		}
		res, err := rc.get(p, systems.KindNACHO, DefaultRunConfig())
		if err != nil {
			return nil, err
		}
		base[name] = float64(res.Counters.Cycles)
	}
	for _, ms := range Table2OnDurationsMs {
		row := []string{fmt.Sprintf("%g ms", ms)}
		for _, name := range benchmarks {
			p, _ := program.ByName(name)
			cfg := DefaultRunConfig()
			period := cost.CyclesForMillis(ms)
			cfg.Schedule = power.Periodic{Period: period}
			cfg.ForcedCheckpointPeriod = period / 2
			res, err := rc.get(p, systems.KindNACHO, cfg)
			if err != nil {
				return nil, err
			}
			row = append(row, fmtPct(float64(res.Counters.Cycles)/base[name]-1))
		}
		rep.Rows = append(rep.Rows, row)
	}
	return rep, nil
}

// ExtFalsePositives quantifies Section 3.2's claim that hashing-induced
// false positives in NACHO's WAR detection are "mostly negligible": it
// compares NACHO's unsafe-eviction count against Oracle NACHO's (a perfect
// exact-address detector — every extra unsafe eviction is a false positive)
// and reports the execution-time cost of the difference.
func ExtFalsePositives(benchmarks []string) (*Report, error) {
	return regenerate(func(rc *runCache) (*Report, error) { return extFalsePositives(rc, benchmarks) })
}

func extFalsePositives(rc *runCache, benchmarks []string) (*Report, error) {
	rep := &Report{
		Title:  "Extension: WAR-detection false positives — NACHO vs Oracle NACHO (2-way)",
		Note:   "false positives = NACHO's unsafe evictions beyond the perfect detector's",
		Header: []string{"benchmark", "cache", "oracle-unsafe", "nacho-unsafe", "false-pos", "time-cost"},
	}
	for _, name := range benchmarks {
		p, ok := program.ByName(name)
		if !ok {
			return nil, fmt.Errorf("unknown benchmark %q", name)
		}
		for _, size := range []int{256, 512} {
			cfg := DefaultRunConfig()
			cfg.CacheSize = size
			oracle, err := rc.get(p, systems.KindOracleNACHO, cfg)
			if err != nil {
				return nil, err
			}
			nacho, err := rc.get(p, systems.KindNACHO, cfg)
			if err != nil {
				return nil, err
			}
			fp := int64(nacho.Counters.UnsafeEvictions) - int64(oracle.Counters.UnsafeEvictions)
			rep.Rows = append(rep.Rows, []string{
				name, fmt.Sprintf("%dB", size),
				fmt.Sprintf("%d", oracle.Counters.UnsafeEvictions),
				fmt.Sprintf("%d", nacho.Counters.UnsafeEvictions),
				fmt.Sprintf("%d", fp),
				fmtPct(float64(nacho.Counters.Cycles)/float64(oracle.Counters.Cycles) - 1),
			})
		}
	}
	return rep, nil
}

// ExtSeedVariance measures run-to-run variability of the re-execution
// overhead under *random* (seeded-uniform) power schedules — the statistics
// the paper's single periodic run cannot show. For each benchmark it runs
// nSeeds schedules with mean on-duration 5 ms and reports min/mean/max
// overhead versus the failure-free run.
func ExtSeedVariance(benchmarks []string) (*Report, error) {
	return regenerate(func(rc *runCache) (*Report, error) { return extSeedVariance(rc, benchmarks) })
}

func extSeedVariance(rc *runCache, benchmarks []string) (*Report, error) {
	const nSeeds = 8
	rep := &Report{
		Title:  "Extension: overhead variability over random power schedules (NACHO, 512 B, mean 5 ms on-duration)",
		Note:   fmt.Sprintf("%d seeded-uniform schedules per benchmark; forced checkpoint every 2.5 ms", nSeeds),
		Header: []string{"benchmark", "min", "mean", "max"},
	}
	cost := DefaultRunConfig().Cost
	period := cost.CyclesForMillis(5)
	for _, name := range benchmarks {
		p, ok := program.ByName(name)
		if !ok {
			return nil, fmt.Errorf("unknown benchmark %q", name)
		}
		base, err := rc.get(p, systems.KindNACHO, DefaultRunConfig())
		if err != nil {
			return nil, err
		}
		min, max, sum := 1e18, -1e18, 0.0
		for seed := int64(1); seed <= nSeeds; seed++ {
			cfg := DefaultRunConfig()
			cfg.Schedule = power.NewUniform(period/2, period*3/2, seed)
			cfg.ForcedCheckpointPeriod = period / 2
			res, err := rc.get(p, systems.KindNACHO, cfg)
			if err != nil {
				return nil, err
			}
			over := float64(res.Counters.Cycles)/float64(base.Counters.Cycles) - 1
			if over < min {
				min = over
			}
			if over > max {
				max = over
			}
			sum += over
		}
		rep.Rows = append(rep.Rows, []string{name, fmtPct(min), fmtPct(sum / nSeeds), fmtPct(max)})
	}
	return rep, nil
}
