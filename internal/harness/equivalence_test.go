package harness_test

import (
	"fmt"
	"reflect"
	"testing"

	"nacho/internal/emu"
	"nacho/internal/fuzzer"
	"nacho/internal/harness"
	"nacho/internal/power"
	"nacho/internal/program"
	"nacho/internal/sim"
	"nacho/internal/systems"
)

// The engine-equivalence suite is the enforcement behind the execution
// engines' correctness claim: for every program, system, and failure
// schedule, all three engines — the per-instruction reference interpreter,
// the batched fast path, and the AOT threaded-code engine — and, on the two
// non-reference engines, both settings of the sim.FastPort cached-hit axis,
// must produce byte-identical results: exit code, result words, output,
// every counter including the cycle count, and the final register file.
// Errors (cycle-budget aborts, stack faults) must also be identical, message
// and all, because they encode the instant and pc at which the run died.

// equivalenceBudget bounds the failure-free runs. Intermittent runs, which
// can livelock (e.g. a periodic schedule shorter than a system's
// re-execution window), get the tighter scheduledBudget derived from the
// failure-free length. Hitting a budget is fine — both engines must then
// fail identically, message and all.
const equivalenceBudget = 24_000_000

// scheduledBudget is a generous multiple of the failure-free run length:
// ample for every terminating intermittent run, small enough that livelocked
// ones abort quickly.
func scheduledBudget(freeCycles uint64) uint64 {
	return freeCycles*8 + 200_000
}

// engineVariant is one cell of the engine × fast-port equivalence matrix.
type engineVariant struct {
	engine emu.Engine
	noPort bool // disable the sim.FastPort cached-hit path
}

func (v engineVariant) String() string {
	if v.noPort {
		return string(v.engine) + "/noport"
	}
	return string(v.engine)
}

// equivalenceVariants is the full engine × fast-port matrix; the reference
// interpreter comes first so every other variant diffs against the
// specification. The fast and AOT engines run both with and without the
// system's sim.FastPort cached-hit path, making NoFastPort a fourth
// equivalence axis alongside program, system, and schedule.
var equivalenceVariants = []engineVariant{
	{engine: emu.EngineRef},
	{engine: emu.EngineFast},
	{engine: emu.EngineFast, noPort: true},
	{engine: emu.EngineAOT},
	{engine: emu.EngineAOT, noPort: true},
}

// runBoth executes the image under every engine variant and fails the test on
// any observable difference from the reference interpreter. It returns the
// reference result for callers that derive schedules from it.
func runBoth(t *testing.T, label string, img *program.Image, kind systems.Kind, cfg harness.RunConfig) emu.Result {
	t.Helper()
	cfg.Verify = false // a verifier probe would force the reference engine
	cfg.NoFastPath = false
	var ref emu.Result
	var refErr error
	for i, v := range equivalenceVariants {
		cfg.Engine = v.engine
		cfg.NoFastPort = v.noPort
		res, err := harness.RunImage(img, kind, cfg, false)
		if i == 0 {
			ref, refErr = res, err
			continue
		}
		if (err == nil) != (refErr == nil) || (err != nil && err.Error() != refErr.Error()) {
			t.Fatalf("%s: %s diverges from ref on error:\n  %s: %v\n  ref: %v", label, v, v, err, refErr)
		}
		if !reflect.DeepEqual(res, ref) {
			t.Fatalf("%s: %s diverges from ref:\n  %s: %+v\n  ref: %+v", label, v, v, res, ref)
		}
	}
	return ref
}

// schedulesFor derives a spread of failure schedules from a failure-free run
// length: a finite burst of instants, a periodic schedule, and a seeded
// irregular one. All are deterministic.
func schedulesFor(cycles uint64) []power.Schedule {
	if cycles < 16 {
		cycles = 16
	}
	return []power.Schedule{
		nil,
		power.NewAt(cycles/7, cycles/3, cycles/2, cycles-cycles/5),
		power.Periodic{Period: cycles/5 + 13},
		power.NewUniform(cycles/9+1, cycles/4+2, 42),
	}
}

func TestEngineEquivalenceFuzzed(t *testing.T) {
	kinds := systems.AllKinds()
	seeds := 24
	if testing.Short() {
		seeds = 6
	}
	for seed := int64(1); seed <= int64(seeds); seed++ {
		p := fuzzer.Generate(seed)
		img, err := p.Render()
		if err != nil {
			t.Fatalf("seed %d: render: %v", seed, err)
		}
		// Rotate through the system list so the suite covers every system
		// without running the full cross product on every seed.
		kind := kinds[int(seed)%len(kinds)]
		cfg := harness.RunConfig{CacheSize: 512, Ways: 2, MaxCycles: equivalenceBudget}
		free := runBoth(t, fmt.Sprintf("seed %d %s failure-free", seed, kind), img, kind, cfg)
		for i, sched := range schedulesFor(free.Counters.Cycles) {
			if sched == nil {
				continue
			}
			c := cfg
			c.Schedule = sched
			c.MaxCycles = scheduledBudget(free.Counters.Cycles)
			c.FinalFlush = true
			if i%2 == 1 {
				c.ForcedCheckpointPeriod = free.Counters.Cycles/11 + 97
			}
			runBoth(t, fmt.Sprintf("seed %d %s sched %s", seed, kind, sched.Key()), img, kind, c)
		}
	}
}

func TestEngineEquivalenceBenchmarks(t *testing.T) {
	if testing.Short() {
		t.Skip("full benchmark sweep")
	}
	kinds := []systems.Kind{systems.KindVolatile, systems.KindClank, systems.KindNACHO, systems.KindReplayCache}
	for _, name := range program.Names() {
		p, ok := program.ByName(name)
		if !ok {
			t.Fatalf("unknown benchmark %q", name)
		}
		img, err := p.Build()
		if err != nil {
			t.Fatalf("%s: build: %v", name, err)
		}
		for _, kind := range kinds {
			cfg := harness.RunConfig{CacheSize: 512, Ways: 2, MaxCycles: equivalenceBudget}
			free := runBoth(t, name+" on "+string(kind)+" failure-free", img, kind, cfg)
			cfg.Schedule = power.Periodic{Period: free.Counters.Cycles/4 + 1021}
			cfg.ForcedCheckpointPeriod = free.Counters.Cycles/8 + 509
			cfg.MaxCycles = scheduledBudget(free.Counters.Cycles)
			runBoth(t, name+" on "+string(kind)+" intermittent", img, kind, cfg)
		}
	}
}

// eventLog records the full probe event stream as rendered strings, so two
// streams can be compared event for event.
type eventLog struct {
	events []string
}

func (l *eventLog) add(kind string, e any) {
	l.events = append(l.events, fmt.Sprintf("%s%+v", kind, e))
}
func (l *eventLog) OnAccess(e sim.AccessEvent)       { l.add("access", e) }
func (l *eventLog) OnLineFill(e sim.FillEvent)       { l.add("fill", e) }
func (l *eventLog) OnWriteBack(e sim.WriteBackEvent) { l.add("writeback", e) }
func (l *eventLog) OnCheckpointBegin(e sim.CheckpointEvent) {
	l.add("ckpt-begin", e)
}
func (l *eventLog) OnCheckpointCommit(e sim.CheckpointEvent) {
	l.add("ckpt-commit", e)
}
func (l *eventLog) OnPowerFailure(e sim.PowerEvent) { l.add("powerfail", e) }
func (l *eventLog) OnRestore(e sim.RestoreEvent)    { l.add("restore", e) }
func (l *eventLog) OnRetire(e sim.RetireEvent)      { l.add("retire", e) }
func (l *eventLog) OnNVM(e sim.NVMEvent)            { l.add("nvm", e) }

// TestEngineEquivalenceProbeStream pins two guarantees around instrumented
// runs. First, attaching a probe always selects the reference engine, so the
// event stream is identical whatever NoFastPath says — the historical trace
// and probe formats cannot change under the fast path. Second, the fast
// engine's un-instrumented result is identical to the instrumented reference
// run's result: instrumentation observes the simulation without perturbing
// it, and the fast path reproduces it exactly.
func TestEngineEquivalenceProbeStream(t *testing.T) {
	p, ok := program.ByName("crc")
	if !ok {
		t.Fatal("crc benchmark missing")
	}
	img, err := p.Build()
	if err != nil {
		t.Fatal(err)
	}
	base := harness.RunConfig{
		CacheSize: 512,
		Ways:      2,
		MaxCycles: equivalenceBudget,
		Schedule:  power.Periodic{Period: 300_000},
	}
	for _, kind := range []systems.Kind{systems.KindNACHO, systems.KindClank} {
		var logs [2]*eventLog
		var probed [2]emu.Result
		for i, noFast := range []bool{false, true} {
			logs[i] = &eventLog{}
			cfg := base
			cfg.Probe = logs[i]
			cfg.NoFastPath = noFast
			probed[i], err = harness.RunImage(img, kind, cfg, false)
			if err != nil {
				t.Fatalf("%s probed (NoFastPath=%v): %v", kind, noFast, err)
			}
		}
		if !reflect.DeepEqual(probed[0], probed[1]) {
			t.Fatalf("%s: probed results differ across NoFastPath", kind)
		}
		if len(logs[0].events) == 0 {
			t.Fatalf("%s: probe recorded no events", kind)
		}
		if !reflect.DeepEqual(logs[0].events, logs[1].events) {
			for i := range logs[0].events {
				if i >= len(logs[1].events) || logs[0].events[i] != logs[1].events[i] {
					t.Fatalf("%s: probe streams diverge at event %d:\n  %s\n  %s",
						kind, i, logs[0].events[i], logs[1].events[min(i, len(logs[1].events)-1)])
				}
			}
			t.Fatalf("%s: probe streams differ in length: %d vs %d", kind, len(logs[0].events), len(logs[1].events))
		}

		for _, engine := range []emu.Engine{emu.EngineFast, emu.EngineAOT} {
			cfg := base
			cfg.Engine = engine
			res, err := harness.RunImage(img, kind, cfg, false)
			if err != nil {
				t.Fatalf("%s %s: %v", kind, engine, err)
			}
			if !reflect.DeepEqual(res, probed[0]) {
				t.Fatalf("%s: %s un-instrumented result differs from instrumented reference:\n  %s:     %+v\n  probed: %+v", kind, engine, engine, res, probed[0])
			}
		}
	}
}

// TestEngineEquivalenceForkRunUntil pins the mid-run surface the snapshot
// explorer depends on, across all engines: RunUntil must stop at the same
// instruction boundary (same cycle, same halt state), a Fork taken at that
// boundary must run to the same result under a failure schedule, and the
// parent must resume to the same end state after forking — whatever engine
// drives the prefix and the forks.
func TestEngineEquivalenceForkRunUntil(t *testing.T) {
	p, ok := program.ByName("crc")
	if !ok {
		t.Fatal("crc benchmark missing")
	}
	img, err := p.Build()
	if err != nil {
		t.Fatal(err)
	}
	cfg := harness.RunConfig{CacheSize: 512, Ways: 2, MaxCycles: equivalenceBudget, Verify: false}
	refCfg := cfg
	refCfg.Engine = emu.EngineRef
	free, err := harness.RunImage(img, systems.KindNACHO, refCfg, false)
	if err != nil {
		t.Fatal(err)
	}
	// The second target probes the stop-at-boundary edge: one cycle past the
	// first, so an engine that overshoots or undershoots the instruction
	// boundary by even a cycle diverges.
	targets := []uint64{free.Counters.Cycles / 3, free.Counters.Cycles/3 + 1}
	type snap struct {
		cycle  uint64
		halted bool
		regs   any
		fork   emu.Result
		final  emu.Result
	}
	var refSnaps []snap
	for i, v := range equivalenceVariants {
		c := cfg
		c.Engine = v.engine
		c.NoFastPort = v.noPort
		var snaps []snap
		for _, target := range targets {
			m, _, err := harness.BuildMachine(img, systems.KindNACHO, c)
			if err != nil {
				t.Fatalf("%s: build: %v", v, err)
			}
			halted, err := m.RunUntil(target)
			if err != nil {
				t.Fatalf("%s: RunUntil(%d): %v", v, target, err)
			}
			s := snap{cycle: m.Now(), halted: halted, regs: m.RegSnapshot()}
			f, err := m.Fork(power.Periodic{Period: free.Counters.Cycles/5 + 211})
			if err != nil {
				t.Fatalf("%s: fork: %v", v, err)
			}
			if s.fork, err = f.Run(); err != nil {
				t.Fatalf("%s: fork run: %v", v, err)
			}
			if s.final, err = m.Run(); err != nil {
				t.Fatalf("%s: parent resume: %v", v, err)
			}
			snaps = append(snaps, s)
		}
		if i == 0 {
			refSnaps = snaps
			continue
		}
		for j := range snaps {
			if !reflect.DeepEqual(snaps[j], refSnaps[j]) {
				t.Fatalf("%s diverges from ref at target %d:\n  %s: %+v\n  ref: %+v",
					v, targets[j], v, snaps[j], refSnaps[j])
			}
		}
	}
}
