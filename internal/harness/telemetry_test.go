package harness

import (
	"strings"
	"testing"

	"nacho/internal/program"
	"nacho/internal/sim"
	"nacho/internal/systems"
	"nacho/internal/telemetry"
)

func mustProgram(t testing.TB, name string) *program.Program {
	t.Helper()
	p, ok := program.ByName(name)
	if !ok {
		t.Fatalf("%s benchmark missing", name)
	}
	return p
}

// TestPoolAccounting asserts every run — cached-path or not — lands in the
// process-wide pool counters that /metrics and /status read.
func TestPoolAccounting(t *testing.T) {
	before := Status()
	res, err := Run(mustProgram(t, "crc"), systems.KindNACHO, DefaultRunConfig())
	if err != nil {
		t.Fatal(err)
	}
	after := Status()
	if got := after.RunsStarted - before.RunsStarted; got != 1 {
		t.Errorf("runs started delta = %d, want 1", got)
	}
	if got := after.RunsCompleted - before.RunsCompleted; got != 1 {
		t.Errorf("runs completed delta = %d, want 1", got)
	}
	if got := after.SimulatedCycles - before.SimulatedCycles; got != res.Counters.Cycles {
		t.Errorf("simulated cycles delta = %d, want %d", got, res.Counters.Cycles)
	}
	if after.SimulatedCyclesPerSec <= 0 {
		t.Errorf("cycles/sec = %g, want > 0 after a run", after.SimulatedCyclesPerSec)
	}
}

// TestRunCacheCountsBypassAndHits pins the cache-path accounting: probed runs
// bypass (and are counted as such), repeated unprobed runs hit.
func TestRunCacheCountsBypassAndHits(t *testing.T) {
	p := mustProgram(t, "crc")
	cfg := DefaultRunConfig()
	beforeBypass := pool.cacheBypassed.Load()
	beforeHits := pool.cacheHits.Load()

	rc := newRunCache()
	probed := cfg
	probed.Probe = sim.NewCounterProbe()
	if _, err := rc.get(p, systems.KindNACHO, probed); err != nil {
		t.Fatal(err)
	}
	if rc.bypassed != 1 {
		t.Errorf("rc.bypassed = %d, want 1", rc.bypassed)
	}
	if got := pool.cacheBypassed.Load() - beforeBypass; got != 1 {
		t.Errorf("pool bypass delta = %d, want 1", got)
	}

	if _, err := rc.get(p, systems.KindNACHO, cfg); err != nil {
		t.Fatal(err)
	}
	if _, err := rc.get(p, systems.KindNACHO, cfg); err != nil {
		t.Fatal(err)
	}
	if rc.runs != 1 || rc.hits != 1 {
		t.Errorf("runs=%d hits=%d, want 1/1", rc.runs, rc.hits)
	}
	if got := pool.cacheHits.Load() - beforeHits; got != 1 {
		t.Errorf("pool hit delta = %d, want 1", got)
	}
}

// TestTimingReportsBypassedRuns asserts the previously silent cache bypass
// for probed runs is surfaced in the Timing line.
func TestTimingReportsBypassedRuns(t *testing.T) {
	prev := SetWorkers(1)
	defer SetWorkers(prev)
	p := mustProgram(t, "crc")
	probed := DefaultRunConfig()
	probed.Probe = sim.NewCounterProbe()
	rep, err := regenerate(func(rc *runCache) (*Report, error) {
		if _, err := rc.get(p, systems.KindNACHO, probed); err != nil {
			return nil, err
		}
		if _, err := rc.get(p, systems.KindNACHO, DefaultRunConfig()); err != nil {
			return nil, err
		}
		return &Report{Title: "bypass probe"}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep.Timing, "1 probed runs bypassed the run cache") {
		t.Errorf("Timing does not surface the bypass: %q", rep.Timing)
	}

	plain, err := regenerate(func(rc *runCache) (*Report, error) {
		if _, err := rc.get(p, systems.KindNACHO, DefaultRunConfig()); err != nil {
			return nil, err
		}
		return &Report{Title: "no bypass"}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plain.Timing, "bypassed") {
		t.Errorf("Timing mentions a bypass without probed runs: %q", plain.Timing)
	}
}

// TestRegisterMetrics asserts the harness series land in a registry and carry
// the live pool values.
func TestRegisterMetrics(t *testing.T) {
	if _, err := Run(mustProgram(t, "crc"), systems.KindVolatile, DefaultRunConfig()); err != nil {
		t.Fatal(err)
	}
	r := telemetry.NewRegistry()
	RegisterMetrics(r)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, name := range []string{
		"nacho_harness_runs_started_total",
		"nacho_harness_runs_completed_total",
		"nacho_harness_cache_hits_total",
		"nacho_harness_cache_bypassed_probed_total",
		"nacho_harness_simulated_cycles_total",
		"nacho_harness_workers",
		"nacho_harness_workers_busy",
		"nacho_harness_experiment_jobs",
		"nacho_harness_experiment_jobs_done",
		"nacho_harness_simulated_cycles_per_sec",
	} {
		if !strings.Contains(text, "\n"+name+" ") {
			t.Errorf("exposition missing %s:\n%s", name, text)
		}
	}
	st := Status()
	if st.RunsCompleted == 0 || st.SimulatedCycles == 0 {
		t.Errorf("status after a run: %+v", st)
	}
}
