package harness_test

import (
	"testing"

	"nacho/internal/harness"
	"nacho/internal/program"
	"nacho/internal/systems"
)

// TestCycleAccountingIdentities pins the cost model exactly: for the
// cacheless systems every cycle is attributable, so the counters must
// satisfy closed-form identities. Any double-charging or missed charge in
// the memory systems breaks these.
func TestCycleAccountingIdentities(t *testing.T) {
	p, _ := program.ByName("crc")
	img, err := p.Build()
	if err != nil {
		t.Fatal(err)
	}
	_ = img

	// Volatile: cycles = instructions + 2 per SRAM access + 1 per MMIO op.
	res, err := harness.Run(p, systems.KindVolatile, harness.DefaultRunConfig())
	if err != nil {
		t.Fatal(err)
	}
	mmio := uint64(len(res.Results)) + 1 + uint64(len(res.Output))
	want := res.Counters.Instructions + 2*res.Counters.CacheHits + mmio
	if res.Counters.Cycles != want {
		t.Errorf("volatile: cycles=%d, identity gives %d", res.Counters.Cycles, want)
	}

	// Clank: cycles = instructions + 6 per NVM access + 1 per MMIO op
	// (checkpoint traffic is NVM accesses too, so it is already included).
	res, err = harness.Run(p, systems.KindClank, harness.DefaultRunConfig())
	if err != nil {
		t.Fatal(err)
	}
	mmio = uint64(len(res.Results)) + 1 + uint64(len(res.Output))
	want = res.Counters.Instructions + 6*(res.Counters.NVMReads+res.Counters.NVMWrites) + mmio
	if res.Counters.Cycles != want {
		t.Errorf("clank: cycles=%d, identity gives %d", res.Counters.Cycles, want)
	}

	// NACHO: cycles = instructions + 2 per cache access + 6 per NVM access
	// + 1 per MMIO op (every fill, write-back and checkpoint word is an NVM
	// access).
	res, err = harness.Run(p, systems.KindNACHO, harness.DefaultRunConfig())
	if err != nil {
		t.Fatal(err)
	}
	mmio = uint64(len(res.Results)) + 1 + uint64(len(res.Output))
	want = res.Counters.Instructions +
		2*(res.Counters.CacheHits+res.Counters.CacheMisses) +
		6*(res.Counters.NVMReads+res.Counters.NVMWrites) + mmio
	if res.Counters.Cycles != want {
		t.Errorf("nacho: cycles=%d, identity gives %d", res.Counters.Cycles, want)
	}
}
