package harness

import (
	"errors"
	"sync"
	"sync/atomic"

	"nacho/internal/emu"
	"nacho/internal/mem"
	"nacho/internal/program"
	"nacho/internal/sim"
	"nacho/internal/store"
	"nacho/internal/systems"
)

// The persistent run store: the in-process singleflight cache promoted to an
// on-disk, process- and machine-shareable tier. The integration is
// read-through/write-behind at the single choke point every cacheable run
// funnels through (runImageStored): a verified store entry short-circuits the
// simulation entirely, a miss executes and queues the result for write-behind
// persistence. Probed and traced runs bypass the store on BOTH read and write
// — their results are perturbed by instrumentation side effects (and forced
// onto the reference engine), so a probe-perturbed record must never be
// served to, or recorded for, an unprobed request (see
// TestProbedRunsBypassStore).

// activeStore is the installed persistent store, nil when disabled.
var activeStore atomic.Pointer[store.Store]

// SetStore installs (or, with nil, removes) the persistent run store every
// subsequent cacheable run reads and writes through, returning the previous
// one. The caller keeps ownership: closing or flushing the store remains its
// job.
func SetStore(s *store.Store) *store.Store {
	prev := activeStore.Swap(s)
	return prev
}

// ActiveStore returns the installed persistent run store, or nil.
func ActiveStore() *store.Store { return activeStore.Load() }

// imageHashes memoizes the content hash per built image. Images are immutable
// and cached per benchmark name (see program.Build), so the pointer is a
// stable identity and each image is hashed once per process.
var imageHashes sync.Map // *program.Image -> string

// imageHash returns the content hash of an assembled image.
func imageHash(img *program.Image) string {
	if h, ok := imageHashes.Load(img); ok {
		return h.(string)
	}
	segs := make([]store.Segment, len(img.Segments))
	for i, s := range img.Segments {
		segs[i] = store.Segment{Addr: s.Addr, Data: s.Data}
	}
	h := store.HashImage(img.Entry, img.Expected, segs)
	imageHashes.Store(img, h)
	return h
}

// storeBypass reports whether a run must bypass the persistent store: tracing
// and probing are side effects a stored result would swallow, and their
// presence changes what actually executes.
func storeBypass(cfg RunConfig) bool { return cfg.Trace != nil || cfg.Probe != nil }

// storeKeyFor renders the complete persistent identity of one run. It is the
// runKey widened with everything a shared, cross-process store additionally
// needs: the image content hash (two builds of the repo with different
// benchmark source must not alias) and the checkGolden flag (it changes the
// error outcome). cfg.Cost must already be defaulted.
func storeKeyFor(img *program.Image, kind systems.Kind, cfg RunConfig, checkGolden bool) store.Key {
	return store.Key{
		Program:                img.Program.Name,
		ImageHash:              imageHash(img),
		System:                 string(kind),
		Engine:                 string(emu.Config{Engine: cfg.Engine, NoFastPath: cfg.NoFastPath}.ResolveEngine()),
		CacheSize:              cfg.CacheSize,
		Ways:                   cfg.Ways,
		Schedule:               scheduleKey(cfg),
		ForcedCheckpointPeriod: cfg.ForcedCheckpointPeriod,
		ForcedCheckpointMargin: cfg.ForcedCheckpointMargin,
		MaxInstructions:        cfg.MaxInstructions,
		MaxCycles:              cfg.MaxCycles,
		FinalFlush:             cfg.FinalFlush,
		Verify:                 cfg.Verify,
		CheckGolden:            checkGolden,
		ClockHz:                cfg.Cost.ClockHz,
		HitCycles:              cfg.Cost.HitCycles,
		NVMCycles:              cfg.Cost.NVMCycles,
		DirtyThreshold:         cfg.DirtyThreshold,
		EnergyPrediction:       cfg.EnergyPrediction,
	}
}

// entryFor renders an executed run into its store entry.
func entryFor(key store.Key, res emu.Result, err error) *store.Entry {
	e := &store.Entry{
		Key:        key,
		Outcome:    store.OutcomeOK,
		ExitCode:   res.ExitCode,
		ResultWord: res.Result,
		Results:    res.Results,
		Output:     res.Output,
		Regs:       res.FinalRegs.Words(),
		Counters:   res.Counters,
	}
	if err != nil {
		e.Outcome = store.OutcomeError
		e.Error = err.Error()
	}
	return e
}

// entryResult reconstructs a run's outcome from a verified store entry.
func entryResult(e *store.Entry) (emu.Result, error) {
	res := emu.Result{
		ExitCode:  e.ExitCode,
		Result:    e.ResultWord,
		Results:   e.Results,
		Output:    e.Output,
		Counters:  e.Counters,
		FinalRegs: sim.SnapshotFromWords(e.Regs),
	}
	var err error
	if e.Outcome == store.OutcomeError {
		err = errors.New(e.Error)
	}
	return res, err
}

// runImageStored is the store-aware run path: RunImage plus a persistent-store
// read-through and write-behind, reporting whether the result was served from
// the store without executing. Every cacheable caller — the public Run and
// RunImage, and the run-cache owner path — funnels through here;
// RunImageSys stays store-free because its callers read post-run memory
// state a stored record cannot reconstruct.
func runImageStored(img *program.Image, kind systems.Kind, cfg RunConfig, checkGolden bool) (emu.Result, error, bool) {
	s := ActiveStore()
	if s == nil || storeBypass(cfg) {
		res, _, err := RunImageSys(img, kind, cfg, checkGolden)
		return res, err, false
	}
	if cfg.Cost == (mem.CostModel{}) {
		cfg.Cost = mem.DefaultCostModel()
	}
	key := storeKeyFor(img, kind, cfg, checkGolden)
	if e, ok := s.Get(key); ok {
		res, err := entryResult(e)
		pool.storeHits.Add(1)
		appendLedger(img.Program.Name, kind, cfg, executedEngine(cfg), res, err, 0, outcomeStoreHit)
		return res, err, true
	}
	res, _, err := RunImageSys(img, kind, cfg, checkGolden)
	s.PutAsync(entryFor(key, res, err))
	return res, err, false
}

// runStored is Run with the served-from-store bit exposed (the run cache's
// accounting needs it).
func runStored(p *program.Program, kind systems.Kind, cfg RunConfig) (emu.Result, error, bool) {
	img, err := p.Build()
	if err != nil {
		return emu.Result{}, err, false
	}
	return runImageStored(img, kind, cfg, true)
}
