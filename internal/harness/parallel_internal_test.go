package harness

import (
	"sync"
	"testing"

	"nacho/internal/power"
	"nacho/internal/program"
	"nacho/internal/systems"
)

// TestRunKeyCoversAllResultAffectingFields is the regression net for the old
// fmt.Sprintf cache key, which silently omitted half of RunConfig: every
// field that can change a simulation result must change the key.
func TestRunKeyCoversAllResultAffectingFields(t *testing.T) {
	p, ok := program.ByName("crc")
	if !ok {
		t.Fatal("crc benchmark missing")
	}
	base := keyFor(p, systems.KindNACHO, DefaultRunConfig())
	muts := []struct {
		name string
		f    func(*RunConfig)
	}{
		{"CacheSize", func(c *RunConfig) { c.CacheSize = 1024 }},
		{"Ways", func(c *RunConfig) { c.Ways = 4 }},
		{"Schedule", func(c *RunConfig) { c.Schedule = power.Periodic{Period: 1000} }},
		{"ForcedCheckpointPeriod", func(c *RunConfig) { c.ForcedCheckpointPeriod = 500 }},
		{"ForcedCheckpointMargin", func(c *RunConfig) { c.ForcedCheckpointMargin = 64 }},
		{"MaxInstructions", func(c *RunConfig) { c.MaxInstructions = 1 << 20 }},
		{"Verify", func(c *RunConfig) { c.Verify = false }},
		{"Cost", func(c *RunConfig) { c.Cost.NVMCycles = 9 }},
		{"DirtyThreshold", func(c *RunConfig) { c.DirtyThreshold = 8 }},
		{"EnergyPrediction", func(c *RunConfig) { c.EnergyPrediction = true }},
	}
	for _, m := range muts {
		cfg := DefaultRunConfig()
		m.f(&cfg)
		if keyFor(p, systems.KindNACHO, cfg) == base {
			t.Errorf("RunConfig.%s does not contribute to the cache key", m.name)
		}
	}
	if keyFor(p, systems.KindClank, DefaultRunConfig()) == base {
		t.Error("system kind does not contribute to the cache key")
	}
	if q, ok := program.ByName("sha"); ok {
		if keyFor(q, systems.KindNACHO, DefaultRunConfig()) == base {
			t.Error("benchmark does not contribute to the cache key")
		}
	}
}

// TestRunKeyScheduleIdentity checks the Schedule.Key contract end to end:
// pointer schedules with equal parameters share a key (the old %v key never
// matched them, defeating the cache), while any parameter difference —
// notably the seed, which the X6 variance experiment sweeps — splits it.
func TestRunKeyScheduleIdentity(t *testing.T) {
	p, _ := program.ByName("crc")
	withSched := func(s power.Schedule) runKey {
		cfg := DefaultRunConfig()
		cfg.Schedule = s
		return keyFor(p, systems.KindNACHO, cfg)
	}
	if withSched(power.NewUniform(10, 50, 1)) != withSched(power.NewUniform(10, 50, 1)) {
		t.Error("equal-parameter Uniform schedules got distinct keys (pointer identity leaked)")
	}
	if withSched(power.NewUniform(10, 50, 1)) == withSched(power.NewUniform(10, 50, 2)) {
		t.Error("seed does not contribute to the cache key")
	}
	if withSched(power.Periodic{Period: 100}) == withSched(power.Periodic{Period: 200}) {
		t.Error("period does not contribute to the cache key")
	}
	if withSched(power.Periodic{Period: 100}) == withSched(power.NewAt(100)) {
		t.Error("schedule type does not contribute to the cache key")
	}
}

// TestRunCacheDirtyThresholdRegression reproduces the original bug: two
// configs differing only in DirtyThreshold used to share one cache entry, so
// the X1 threshold sweep could read a stale result. They must run
// separately, and identical configs must still hit.
func TestRunCacheDirtyThresholdRegression(t *testing.T) {
	rc := newRunCache()
	p, ok := program.ByName("quicksort")
	if !ok {
		t.Fatal("quicksort benchmark missing")
	}
	plain, err := rc.get(p, systems.KindNACHO, DefaultRunConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultRunConfig()
	cfg.DirtyThreshold = 8
	adaptive, err := rc.get(p, systems.KindNACHO, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rc.runs != 2 {
		t.Fatalf("configs differing only in DirtyThreshold aliased to %d cache entries", rc.runs)
	}
	if adaptive.Counters == plain.Counters {
		t.Error("adaptive run returned the plain run's counters (stale cache result)")
	}
	if _, err := rc.get(p, systems.KindNACHO, cfg); err != nil {
		t.Fatal(err)
	}
	if rc.runs != 2 || rc.hits != 1 {
		t.Errorf("identical config re-ran: %d runs, %d hits", rc.runs, rc.hits)
	}
}

// TestRunCacheSingleflight issues the same run from many goroutines at once;
// exactly one simulation may execute, with every other caller blocking on
// and sharing its result.
func TestRunCacheSingleflight(t *testing.T) {
	rc := newRunCache()
	p, _ := program.ByName("crc")
	const callers = 8
	results := make([]uint64, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := rc.get(p, systems.KindVolatile, DefaultRunConfig())
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = res.Counters.Cycles
		}()
	}
	wg.Wait()
	if rc.runs != 1 {
		t.Errorf("singleflight executed %d simulations for one key", rc.runs)
	}
	if rc.hits != callers-1 {
		t.Errorf("hits = %d, want %d", rc.hits, callers-1)
	}
	for i := 1; i < callers; i++ {
		if results[i] != results[0] {
			t.Fatalf("caller %d saw %d cycles, caller 0 saw %d", i, results[i], results[0])
		}
	}
}
