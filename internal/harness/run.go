// Package harness runs benchmarks under systems and regenerates the paper's
// tables and figures (Section 6.2). It is the engine behind cmd/nachobench,
// the integration tests, and the root bench_test.go.
package harness

import (
	"fmt"
	"io"
	"time"

	"nacho/internal/emu"
	"nacho/internal/mem"
	"nacho/internal/power"
	"nacho/internal/program"
	"nacho/internal/sim"
	"nacho/internal/systems"
	"nacho/internal/telemetry"
	"nacho/internal/trace"
	"nacho/internal/verify"
)

// RunConfig parameterizes one benchmark execution.
type RunConfig struct {
	CacheSize int // bytes; ignored by cacheless systems
	Ways      int
	Schedule  power.Schedule // nil = always-on
	// ForcedCheckpointPeriod in cycles (0 = none); the paper uses half the
	// power-failure on-duration.
	ForcedCheckpointPeriod uint64
	// Verify enables shadow memory + exact WAR checking, and asserts the
	// program reports its reference checksum.
	Verify bool
	// MaxInstructions overrides the emulator's runaway guard (0 = default).
	MaxInstructions uint64
	Cost            mem.CostModel

	// DirtyThreshold and EnergyPrediction enable the Section 8 extension
	// policies on NACHO-family systems (see systems.Config).
	DirtyThreshold   int
	EnergyPrediction bool

	// Trace receives a per-instruction execution trace when non-nil
	// (rendered through the buffered trace.Recorder probe).
	Trace io.Writer
	// Probe, when non-nil, observes the run's full event stream alongside
	// the verifier and trace recorder (see sim.Probe). Probed runs bypass
	// the parallel harness's run cache.
	Probe sim.Probe
	// ForcedCheckpointMargin is passed to the emulator (see emu.Config).
	ForcedCheckpointMargin uint64
	// MaxCycles is a hard cycle budget passed to the emulator (see
	// emu.Config.MaxCycles); 0 means no budget. The crash-consistency fuzzer
	// uses it as its non-termination oracle.
	MaxCycles uint64
	// FinalFlush asks the emulator for one failure-free ForceCheckpoint after
	// a clean halt (see emu.Config.FinalFlush), so every surviving store is
	// visible in NVM for post-run state comparison.
	FinalFlush bool
	// NoFastPath forces the emulator's per-instruction reference
	// interpreter.
	//
	// Deprecated: set Engine to emu.EngineRef instead. Consulted only while
	// Engine is emu.EngineAuto (see emu.Config).
	NoFastPath bool
	// Engine selects the execution engine (see emu.Engine). The zero value
	// picks the fastest correct engine; the equivalence suite sets concrete
	// engines to obtain each side of its comparison. Validate external input
	// with emu.ParseEngine before setting it here.
	Engine emu.Engine
	// NoFastPort disables the engines' sim.FastPort cached-hit path (see
	// emu.Config.NoFastPort). Result-invariant — the equivalence suite runs
	// both sides of this axis — so, like Probe and Trace, it is not part of
	// the run-cache identity.
	NoFastPort bool
	// Span, when non-zero, parents the run span this run emits on the
	// campaign tracer; zero attaches it to the tracer's ambient span. Purely
	// observational: it is not part of the run-cache identity.
	Span telemetry.SpanID
}

// defaultEngine is the engine DefaultRunConfig selects. EngineAuto (the
// zero value) picks the fastest correct engine; SetDefaultEngine pins the
// whole experiment harness to a specific one (a performance/debugging knob
// — results are engine-invariant by the equivalence suite).
var defaultEngine emu.Engine

// SetDefaultEngine sets the engine experiment regeneration runs on and
// returns the previous setting. Not safe to call concurrently with running
// experiments; intended for CLI startup.
func SetDefaultEngine(e emu.Engine) emu.Engine {
	old := defaultEngine
	defaultEngine = e
	return old
}

// DefaultRunConfig is the paper's headline configuration: a 2-way 512 B
// cache with the Section 5.2 cost model, verification on.
func DefaultRunConfig() RunConfig {
	return RunConfig{CacheSize: 512, Ways: 2, Verify: true, Cost: mem.DefaultCostModel(), Engine: defaultEngine}
}

// Run executes one benchmark under one system and returns the emulator
// result. With cfg.Verify set it fails on any shadow/WAR violation or on a
// checksum mismatch against the Go reference implementation. When a
// persistent run store is installed (SetStore), the result may be served from
// it without executing.
func Run(p *program.Program, kind systems.Kind, cfg RunConfig) (emu.Result, error) {
	res, err, _ := runStored(p, kind, cfg)
	return res, err
}

// RunImage executes an assembled image (a built-in benchmark or a caller-
// supplied program) under one system. checkGolden additionally compares the
// program's reported result word against the image's expected checksum. Like
// Run, it reads and writes through the installed persistent run store.
func RunImage(img *program.Image, kind systems.Kind, cfg RunConfig, checkGolden bool) (emu.Result, error) {
	res, err, _ := runImageStored(img, kind, cfg, checkGolden)
	return res, err
}

// RunImageSys is RunImage, additionally returning the memory system the run
// executed on. Callers that compare post-run NVM state (the differential
// fuzzer, the metamorphic tests) read it through sys.Mem(); everyone else
// should use RunImage, which discards it.
func RunImageSys(img *program.Image, kind systems.Kind, cfg RunConfig, checkGolden bool) (emu.Result, sim.System, error) {
	if cfg.Cost == (mem.CostModel{}) {
		cfg.Cost = mem.DefaultCostModel()
	}

	space, err := buildSpace(img)
	if err != nil {
		return emu.Result{}, nil, err
	}

	// Instrumentation is one probe pipeline: verifier, trace recorder, and
	// caller probe all observe the same event stream. Combine keeps the
	// no-instrumentation fast path emission-free (a nil probe everywhere).
	var ver *verify.Verifier
	if cfg.Verify {
		ver = verify.New(space, systems.VerifyConfigFor(kind))
	}
	var rec *trace.Recorder
	if cfg.Trace != nil {
		rec = trace.NewRecorder(cfg.Trace)
	}
	var observers []sim.Probe
	if ver != nil {
		observers = append(observers, ver)
	}
	if rec != nil {
		observers = append(observers, rec)
	}
	observers = append(observers, cfg.Probe)
	probe := sim.Combine(observers...)

	machine, sys, err := newMachineOn(space, img, kind, cfg, probe)
	if err != nil {
		return emu.Result{}, nil, err
	}

	// Campaign observability brackets the run: a span on the installed tracer
	// (no-ops when tracing is off), per-engine wall-time accounting, and — at
	// the single exit below, once the final verdict is known — one ledger
	// record. engine is the engine that actually executes, which for any
	// probed run (probe != nil) is the reference interpreter.
	engine := executedEngine(cfg)
	name := img.Program.Name
	tr := telemetry.ActiveTracer()
	span := tr.Begin(cfg.Span, telemetry.SpanRun, name, string(kind), string(engine))
	runStarted()
	startWall := time.Now()
	res, err := machine.Run()
	wallMicros := time.Since(startWall).Microseconds()
	runCompleted(res.Counters.Cycles)
	runObserved(engine, wallMicros, res.Counters.Instructions)
	if rec != nil {
		// Flush errors mirror the old unbuffered Fprintf path, whose write
		// errors were likewise not fatal to the run.
		rec.Flush()
	}
	if err != nil {
		err = fmt.Errorf("%s on %s: %w", name, kind, err)
	} else if verr := ver.Err(); verr != nil {
		err = fmt.Errorf("%s on %s: %w", name, kind, verr)
	} else if cfg.Verify && checkGolden {
		if res.ExitCode != 0 {
			err = fmt.Errorf("%s on %s: exit code %d", name, kind, res.ExitCode)
		} else if res.Result != img.Expected {
			err = fmt.Errorf("%s on %s: result 0x%08x, reference 0x%08x",
				name, kind, res.Result, img.Expected)
		}
	}
	tr.End(span, res.Counters.Cycles, res.Counters.Instructions, err != nil)
	appendLedger(name, kind, cfg, engine, res, err, wallMicros, outcomeExecuted)
	return res, sys, err
}

// buildSpace loads an image's segments into a fresh address space, checking
// them against the program memory map.
func buildSpace(img *program.Image) (*mem.Space, error) {
	space := mem.NewSpace()
	for _, seg := range img.Segments {
		end := seg.Addr + uint32(len(seg.Data))
		// The image must stay clear of the stack guard band and the
		// checkpoint area (see program's memory map).
		if seg.Addr < program.StackTop && end > program.StackTop-0x8000 {
			return nil, fmt.Errorf("%s: segment [%#x,%#x) overlaps the stack region", img.Program.Name, seg.Addr, end)
		}
		if end > program.CheckpointBase && seg.Addr < program.CheckpointBase+0x10000 {
			return nil, fmt.Errorf("%s: segment [%#x,%#x) overlaps the checkpoint area", img.Program.Name, seg.Addr, end)
		}
		space.LoadBytes(seg.Addr, seg.Data)
	}
	return space, nil
}

// newMachineOn assembles the memory system and emulator over an
// already-loaded space. probe (nil for none) is attached to both the system
// and the machine; the emulator clones cfg.Schedule itself, so one RunConfig
// value can be shared freely across machines and goroutines.
func newMachineOn(space *mem.Space, img *program.Image, kind systems.Kind, cfg RunConfig, probe sim.Probe) (*emu.Machine, sim.System, error) {
	sys, err := systems.Build(kind, space, systems.Config{
		CacheSize:        cfg.CacheSize,
		Ways:             cfg.Ways,
		StackTop:         program.StackTop,
		CheckpointBase:   program.CheckpointBase,
		Cost:             cfg.Cost,
		DirtyThreshold:   cfg.DirtyThreshold,
		EnergyPrediction: cfg.EnergyPrediction,
	})
	if err != nil {
		return nil, nil, err
	}
	if probe != nil {
		sys.AttachProbe(probe)
	}
	machine := emu.New(sys, img.Text, program.TextBase, img.Entry, program.StackTop, emu.Config{
		Schedule:               cfg.Schedule,
		ForcedCheckpointPeriod: cfg.ForcedCheckpointPeriod,
		ForcedCheckpointMargin: cfg.ForcedCheckpointMargin,
		MaxInstructions:        cfg.MaxInstructions,
		MaxCycles:              cfg.MaxCycles,
		FinalFlush:             cfg.FinalFlush,
		Probe:                  probe,
		NoFastPath:             cfg.NoFastPath,
		NoFastPort:             cfg.NoFastPort,
		Engine:                 cfg.Engine,
	})
	return machine, sys, nil
}

// BuildMachine assembles the memory image, system, and emulator for one run
// without executing it. cfg.Probe (when non-nil) observes the run;
// cfg.Verify and cfg.Trace are RunImageSys concerns and are ignored here.
// The snapshot-fork explorer uses BuildMachine as its machine factory,
// owning the run loop itself.
func BuildMachine(img *program.Image, kind systems.Kind, cfg RunConfig) (*emu.Machine, sim.System, error) {
	if cfg.Cost == (mem.CostModel{}) {
		cfg.Cost = mem.DefaultCostModel()
	}
	space, err := buildSpace(img)
	if err != nil {
		return nil, nil, err
	}
	return newMachineOn(space, img, kind, cfg, cfg.Probe)
}
