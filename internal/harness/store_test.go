package harness

import (
	"os"
	"reflect"
	"testing"

	"nacho/internal/sim"
	"nacho/internal/store"
	"nacho/internal/systems"
)

// withStore installs a fresh persistent store for one test, restoring the
// previous (normally nil) one afterwards.
func withStore(t *testing.T) *store.Store {
	t.Helper()
	s, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	prev := SetStore(s)
	t.Cleanup(func() {
		SetStore(prev)
		s.Close()
	})
	return s
}

// TestStoreRoundTripResult pins result fidelity through the store: a
// store-served result is identical — counters, registers, output, words — to
// the executed one it replays.
func TestStoreRoundTripResult(t *testing.T) {
	s := withStore(t)
	p := mustProgram(t, "crc")
	cfg := DefaultRunConfig()

	cold, err := Run(p, systems.KindNACHO, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	before := Status()
	warm, err := Run(p, systems.KindNACHO, cfg)
	if err != nil {
		t.Fatal(err)
	}
	after := Status()
	if got := after.RunsStarted - before.RunsStarted; got != 0 {
		t.Errorf("store-served run executed %d simulations, want 0", got)
	}
	if got := after.StoreHits - before.StoreHits; got != 1 {
		t.Errorf("store hit delta = %d, want 1", got)
	}
	if !reflect.DeepEqual(cold, warm) {
		t.Errorf("store-served result differs:\ncold %+v\nwarm %+v", cold, warm)
	}
}

// TestStoreCachesErrorOutcome: deterministic simulations fail
// deterministically, so an error outcome is served from the store with the
// same message and no re-execution.
func TestStoreCachesErrorOutcome(t *testing.T) {
	s := withStore(t)
	p := mustProgram(t, "crc")
	cfg := DefaultRunConfig()
	cfg.MaxInstructions = 10 // far below the benchmark's length: guaranteed budget error

	_, coldErr := Run(p, systems.KindNACHO, cfg)
	if coldErr == nil {
		t.Fatal("10-instruction budget did not fail")
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	before := Status()
	_, warmErr := Run(p, systems.KindNACHO, cfg)
	if warmErr == nil || warmErr.Error() != coldErr.Error() {
		t.Errorf("stored error %q, executed error %q", warmErr, coldErr)
	}
	if got := Status().RunsStarted - before.RunsStarted; got != 0 {
		t.Errorf("stored error still executed %d simulations", got)
	}
}

// TestWarmStoreRegeneration is the tentpole property: regenerating fig5
// against a populated store executes zero simulations and renders a report
// byte-identical to the cold one.
func TestWarmStoreRegeneration(t *testing.T) {
	s := withStore(t)
	benchmarks := []string{"crc", "aes"}

	cold, err := Fig5(benchmarks)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	before := Status()
	warm, err := Fig5(benchmarks)
	if err != nil {
		t.Fatal(err)
	}
	after := Status()
	if got := after.RunsStarted - before.RunsStarted; got != 0 {
		t.Errorf("warm regeneration executed %d simulations, want 0", got)
	}
	if after.StoreHits == before.StoreHits {
		t.Error("warm regeneration recorded no store hits")
	}
	if cold.String() != warm.String() {
		t.Errorf("warm report not byte-identical:\ncold:\n%s\nwarm:\n%s", cold.String(), warm.String())
	}
	if cold.CSV() != warm.CSV() {
		t.Error("warm CSV not byte-identical")
	}
}

// TestProbedRunsBypassStore is the satellite regression test: a probed run
// must bypass the persistent store on BOTH sides — never write its
// instrumentation-perturbed record, and never be served a stored one.
func TestProbedRunsBypassStore(t *testing.T) {
	s := withStore(t)
	p := mustProgram(t, "crc")
	probed := DefaultRunConfig()
	probe := sim.NewCounterProbe()
	probed.Probe = probe

	// Write side: a probed run against an empty store must leave it empty.
	if _, err := Run(p, systems.KindNACHO, probed); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if n, err := s.Count(); err != nil || n != 0 {
		t.Fatalf("probed run wrote %d store entries (err %v), want 0", n, err)
	}
	if probe.Counters().Instructions == 0 {
		t.Fatal("probe observed no events: the probed run did not execute")
	}

	// Populate the store with the unprobed twin of the same configuration.
	if _, err := Run(p, systems.KindNACHO, DefaultRunConfig()); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if n, _ := s.Count(); n != 1 {
		t.Fatalf("unprobed run stored %d entries, want 1", n)
	}

	// Read side: the probed run must execute (the probe must fire) even
	// though an entry for the unprobed configuration exists.
	probe2 := sim.NewCounterProbe()
	probed.Probe = probe2
	storeHitsBefore := Status().StoreHits
	if _, err := Run(p, systems.KindNACHO, probed); err != nil {
		t.Fatal(err)
	}
	if probe2.Counters().Instructions == 0 {
		t.Fatal("probed run was served from the store: probe observed nothing")
	}
	if got := Status().StoreHits - storeHitsBefore; got != 0 {
		t.Errorf("probed run counted %d store hits, want 0", got)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if n, _ := s.Count(); n != 1 {
		t.Error("probed run added a store entry")
	}
}

// TestCorruptStoreEntryReexecutes closes the corruption loop at the harness
// level: a bit-flipped entry is evicted, the run transparently re-executes
// with an identical result, and the slot heals.
func TestCorruptStoreEntryReexecutes(t *testing.T) {
	s := withStore(t)
	p := mustProgram(t, "crc")
	cfg := DefaultRunConfig()

	cold, err := Run(p, systems.KindNACHO, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}

	// Corrupt the single stored entry in place.
	img, err := p.Build()
	if err != nil {
		t.Fatal(err)
	}
	key := storeKeyFor(img, systems.KindNACHO, cfg, true)
	path := s.Dir() + "/objects/" + key.Digest()[:2] + "/" + key.Digest()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x01
	if err := os.WriteFile(path, raw, 0o666); err != nil {
		t.Fatal(err)
	}

	before := Status()
	again, err := Run(p, systems.KindNACHO, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := Status().RunsStarted - before.RunsStarted; got != 1 {
		t.Errorf("corrupt entry triggered %d executions, want exactly 1 (re-execution)", got)
	}
	if !reflect.DeepEqual(cold, again) {
		t.Error("re-executed result differs from the original")
	}
	if s.Stats().CorruptEvicted != 1 {
		t.Errorf("CorruptEvicted = %d, want 1", s.Stats().CorruptEvicted)
	}

	// The re-execution re-stored the entry: next request is a hit again.
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	before = Status()
	if _, err := Run(p, systems.KindNACHO, cfg); err != nil {
		t.Fatal(err)
	}
	if got := Status().RunsStarted - before.RunsStarted; got != 0 {
		t.Error("healed entry was not served from the store")
	}
}
