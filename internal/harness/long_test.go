package harness_test

import (
	"testing"

	"nacho/internal/harness"
	"nacho/internal/power"
	"nacho/internal/program"
	"nacho/internal/systems"
)

// TestLongVariants verifies every scaled-up benchmark end to end under NACHO
// (golden checksum, shadow memory, WAR detection), including one intermittent
// run. Skipped with -short: the long variants simulate 50-200 ms each.
func TestLongVariants(t *testing.T) {
	if testing.Short() {
		t.Skip("long variants skipped with -short")
	}
	for _, name := range program.LongNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			p, _ := program.ByName(name)
			if _, err := harness.Run(p, systems.KindNACHO, harness.DefaultRunConfig()); err != nil {
				t.Fatal(err)
			}
		})
	}
	t.Run("crc-long/intermittent", func(t *testing.T) {
		t.Parallel()
		p, _ := program.ByName("crc-long")
		cfg := harness.DefaultRunConfig()
		cfg.Schedule = power.Periodic{Period: 2_500_000} // 50 ms on-duration
		cfg.ForcedCheckpointPeriod = 1_250_000
		res, err := harness.Run(p, systems.KindNACHO, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Counters.PowerFailures == 0 {
			t.Error("expected failures over a 200 ms run at 50 ms on-duration")
		}
	})
}
