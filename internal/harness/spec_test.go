package harness

import (
	"encoding/json"
	"testing"

	"nacho/internal/power"
	"nacho/internal/systems"
)

// TestSpecRoundTrip: SpecFor → JSON → Resolve → SpecFor reproduces the same
// spec and the same store digest — the property the distributed job service
// rests on (coordinator and worker must agree on every cell's address).
func TestSpecRoundTrip(t *testing.T) {
	p := mustProgram(t, "crc")
	cfg := DefaultRunConfig()
	cfg.Schedule = power.NewUniform(1000, 5000, -42)
	cfg.ForcedCheckpointPeriod = 12345
	cfg.DirtyThreshold = 16

	spec := SpecFor(p, systems.KindNACHO, cfg)
	wire, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	var back RunSpec
	if err := json.Unmarshal(wire, &back); err != nil {
		t.Fatal(err)
	}
	rp, rkind, rcfg, err := back.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if rp != p || rkind != systems.KindNACHO {
		t.Fatalf("resolved to %s on %s", rp.Name, rkind)
	}
	if again := SpecFor(rp, rkind, rcfg); again != back {
		t.Fatalf("spec not a fixed point:\n sent %+v\n back %+v", back, again)
	}

	want, err := spec.Digest()
	if err != nil {
		t.Fatal(err)
	}
	got, err := back.Digest()
	if err != nil {
		t.Fatal(err)
	}
	if want != got {
		t.Fatalf("digest changed across the wire: %s vs %s", want, got)
	}
}

func TestSpecResolveRejectsGarbage(t *testing.T) {
	good := SpecFor(mustProgram(t, "crc"), systems.KindNACHO, DefaultRunConfig())
	for name, mutate := range map[string]func(*RunSpec){
		"program":  func(sp *RunSpec) { sp.Program = "no-such-benchmark" },
		"system":   func(sp *RunSpec) { sp.System = "no-such-system" },
		"schedule": func(sp *RunSpec) { sp.Schedule = "warp(9)" },
		"engine":   func(sp *RunSpec) { sp.Engine = "turbo" },
	} {
		sp := good
		mutate(&sp)
		if _, _, _, err := sp.Resolve(); err == nil {
			t.Errorf("bad %s accepted: %+v", name, sp)
		}
	}
}

// TestExperimentSpecsEnumerates: the collect-mode dry pass yields the same
// matrix, in the same order, on every call — and executing a spec satisfies
// a warm-store regeneration of the experiment.
func TestExperimentSpecsEnumerates(t *testing.T) {
	first, err := ExperimentSpecs("fig6", []string{"crc"})
	if err != nil {
		t.Fatal(err)
	}
	if len(first) == 0 {
		t.Fatal("fig6 enumerated no cells")
	}
	second, err := ExperimentSpecs("fig6", []string{"crc"})
	if err != nil {
		t.Fatal(err)
	}
	if len(first) != len(second) {
		t.Fatalf("enumeration not stable: %d vs %d cells", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("cell %d differs across enumerations", i)
		}
	}
	if _, err := ExperimentSpecs("no-such-exp", nil); err == nil {
		t.Fatal("unknown experiment enumerated")
	}
	// table1 is static: no cells.
	if specs, err := ExperimentSpecs("table1", nil); err != nil || len(specs) != 0 {
		t.Fatalf("table1 specs = %d, %v; want 0, nil", len(specs), err)
	}
}

// TestExecuteSpecFillsStore: executing every enumerated cell populates the
// persistent store so the coordinator's regeneration runs nothing.
func TestExecuteSpecFillsStore(t *testing.T) {
	s := withStore(t)
	specs, err := ExperimentSpecs("fig6", []string{"crc"})
	if err != nil {
		t.Fatal(err)
	}
	for _, sp := range specs {
		digest, err := ExecuteSpec(sp)
		if err != nil {
			t.Fatal(err)
		}
		want, err := sp.Digest()
		if err != nil {
			t.Fatal(err)
		}
		if digest != want {
			t.Fatalf("ExecuteSpec stored under %s, spec digest %s", digest, want)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if n, _ := s.Count(); n != len(specs) {
		t.Fatalf("store holds %d entries after %d cells", n, len(specs))
	}

	before := Status()
	rep, err := RunNamedExperiment("fig6", []string{"crc"})
	if err != nil {
		t.Fatal(err)
	}
	if got := Status().RunsStarted - before.RunsStarted; got != 0 {
		t.Errorf("regeneration after spec execution ran %d simulations, want 0", got)
	}
	if len(rep.Rows) == 0 {
		t.Error("regenerated report is empty")
	}
}
