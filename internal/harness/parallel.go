package harness

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"nacho/internal/emu"
	"nacho/internal/mem"
	"nacho/internal/program"
	"nacho/internal/systems"
	"nacho/internal/telemetry"
)

// The experiment matrix is embarrassingly parallel: every run is an
// independent deterministic simulation. This file fans a matrix out across a
// bounded worker pool and funnels the results through a singleflight run
// cache, so regenerating the paper's evaluation scales with the core count
// while every report stays byte-identical to the sequential path.

// workerCount is the pool size used by regenerate; 0 is replaced lazily by
// runtime.NumCPU.
var workerCount atomic.Int64

// SetWorkers sets the number of worker goroutines used to regenerate
// experiments and returns the previous setting. n <= 0 resets to
// runtime.NumCPU(). 1 disables the pool entirely (fully sequential
// execution). Reports are identical for every setting; only wall time
// changes.
func SetWorkers(n int) int {
	if n <= 0 {
		n = runtime.NumCPU()
	}
	prev := workerCount.Swap(int64(n))
	if prev == 0 {
		return runtime.NumCPU()
	}
	return int(prev)
}

// Workers reports the current worker-pool size.
func Workers() int {
	if n := workerCount.Load(); n > 0 {
		return int(n)
	}
	return runtime.NumCPU()
}

// runKey is the structured cache identity of one run. It must cover every
// RunConfig field that can influence the simulation result: the previous
// fmt.Sprintf key formatted the Schedule interface with %v (lossy for
// pointer schedules) and omitted DirtyThreshold, EnergyPrediction, Cost,
// ForcedCheckpointMargin and MaxInstructions, so e.g. the dirty-threshold
// sweep could alias every threshold to one stale cached result.
type runKey struct {
	prog                   string
	kind                   systems.Kind
	cacheSize              int
	ways                   int
	schedule               string // Schedule.Key(); "none" when nil
	forcedCheckpointPeriod uint64
	forcedCheckpointMargin uint64
	maxInstructions        uint64
	maxCycles              uint64
	finalFlush             bool
	verify                 bool
	cost                   mem.CostModel
	dirtyThreshold         int
	energyPrediction       bool
	engine                 emu.Engine // resolved, never Auto
}

func keyFor(p *program.Program, kind systems.Kind, cfg RunConfig) runKey {
	sched := scheduleKey(cfg)
	return runKey{
		prog:                   p.Name,
		kind:                   kind,
		cacheSize:              cfg.CacheSize,
		ways:                   cfg.Ways,
		schedule:               sched,
		forcedCheckpointPeriod: cfg.ForcedCheckpointPeriod,
		forcedCheckpointMargin: cfg.ForcedCheckpointMargin,
		maxInstructions:        cfg.MaxInstructions,
		maxCycles:              cfg.MaxCycles,
		finalFlush:             cfg.FinalFlush,
		verify:                 cfg.Verify,
		cost:                   cfg.Cost,
		dirtyThreshold:         cfg.DirtyThreshold,
		energyPrediction:       cfg.EnergyPrediction,
		engine:                 emu.Config{Engine: cfg.Engine, NoFastPath: cfg.NoFastPath}.ResolveEngine(),
	}
}

// job is one cell of an experiment matrix.
type job struct {
	p    *program.Program
	kind systems.Kind
	cfg  RunConfig
}

// cacheEntry is a singleflight slot: the first getter runs the simulation,
// later getters block on done and read the stored result.
type cacheEntry struct {
	done chan struct{}
	res  emu.Result
	err  error
}

// runCache deduplicates runs within one experiment so configurations shared
// across rows (e.g. the Volatile normalizer) execute exactly once, even when
// many workers request them concurrently. In collect mode it records the
// requested jobs instead of running them (see regenerate).
type runCache struct {
	mu      sync.Mutex
	entries map[runKey]*cacheEntry

	collect bool
	seen    map[runKey]bool
	jobs    []job

	runs      int           // simulations executed
	hits      int           // cache hits, including singleflight waits
	storeHits int           // owner slots served from the persistent store
	bypassed  int           // probed/traced runs that skipped the cache
	runTime   time.Duration // summed per-run wall time across all workers

	// Per-regeneration wall-time distribution and per-engine run counts over
	// the simulations this cache executed (not hits or bypasses), feeding the
	// report's Timing line. The process-wide engineStats keep accumulating
	// across experiments for the metrics endpoint; these reset per report.
	wallHist   *telemetry.Histogram // microseconds, RunWallBuckets
	engineRuns map[emu.Engine]int
}

func newRunCache() *runCache {
	return &runCache{
		entries:    make(map[runKey]*cacheEntry),
		seen:       make(map[runKey]bool),
		wallHist:   telemetry.NewHistogram(RunWallBuckets),
		engineRuns: make(map[emu.Engine]int),
	}
}

func (rc *runCache) get(p *program.Program, kind systems.Kind, cfg RunConfig) (emu.Result, error) {
	if cfg.Trace != nil || cfg.Probe != nil {
		// Tracing and probing are side effects a cached result would swallow.
		rc.mu.Lock()
		rc.bypassed++
		rc.mu.Unlock()
		pool.cacheBypassed.Add(1)
		return Run(p, kind, cfg)
	}
	key := keyFor(p, kind, cfg)
	if rc.collect {
		rc.mu.Lock()
		if !rc.seen[key] {
			rc.seen[key] = true
			rc.jobs = append(rc.jobs, job{p, kind, cfg})
		}
		rc.mu.Unlock()
		return emu.Result{}, nil
	}
	rc.mu.Lock()
	if e, ok := rc.entries[key]; ok {
		rc.hits++
		pool.cacheHits.Add(1)
		rc.mu.Unlock()
		<-e.done
		// A served hit still appends a ledger record — the ledger's invariant
		// is one record per run *request*, so a replayed campaign can see
		// which report cells shared a simulation.
		appendLedger(p.Name, kind, cfg, executedEngine(cfg), e.res, e.err, 0, outcomeCacheHit)
		return e.res, e.err
	}
	e := &cacheEntry{done: make(chan struct{})}
	rc.entries[key] = e
	rc.mu.Unlock()

	start := time.Now()
	var fromStore bool
	e.res, e.err, fromStore = runStored(p, kind, cfg)
	dur := time.Since(start)
	close(e.done)

	rc.mu.Lock()
	if fromStore {
		// Served from the persistent store without executing: not a
		// simulation, so it stays out of the runs count, the wall-time
		// distribution and the per-engine accounting.
		rc.storeHits++
	} else {
		rc.runs++
		rc.runTime += dur
		rc.engineRuns[executedEngine(cfg)]++
	}
	rc.mu.Unlock()
	if !fromStore {
		rc.wallHist.Observe(uint64(dur.Microseconds()))
	}
	return e.res, e.err
}

// prewarm executes jobs across nWorkers goroutines. Run errors are not
// returned here: they stay in the cache and resurface — on the same run, in
// deterministic order — during the sequential assembly pass.
func (rc *runCache) prewarm(jobs []job, nWorkers int) {
	if nWorkers > len(jobs) {
		nWorkers = len(jobs)
	}
	if nWorkers < 1 {
		return
	}
	ch := make(chan job)
	var wg sync.WaitGroup
	for i := 0; i < nWorkers; i++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for j := range ch {
				workerStarted(worker, j)
				rc.get(j.p, j.kind, j.cfg)
				workerDone(worker)
			}
		}(i)
	}
	for _, j := range jobs {
		ch <- j
	}
	close(ch)
	wg.Wait()
}

// regenerate runs one experiment builder against a fresh run cache. With
// more than one worker configured it first invokes the builder in collect
// mode to enumerate the run matrix, fans the matrix out across the pool, and
// then replays the builder against the warm cache — so row assembly (and
// therefore the report) is always in deterministic sequential order, no
// matter in which order the workers finish. The builder must request the
// same runs on both passes; every builder in this package does, because the
// matrix depends only on the benchmark list, never on run results.
func regenerate(build func(rc *runCache) (*Report, error)) (*Report, error) {
	start := time.Now()
	nWorkers := Workers()
	rc := newRunCache()

	// One experiment regeneration is one cell span on the campaign tracer,
	// and the ambient parent for every run span emitted under it — the run
	// path attaches to the right cell with no plumbing. The title is only
	// known once a builder pass has run; SetName patches it in.
	tr := telemetry.ActiveTracer()
	cell := tr.Begin(0, telemetry.SpanCell, "", "", "")
	prevAmbient := tr.SetAmbient(cell)

	if nWorkers > 1 {
		dry := newRunCache()
		dry.collect = true
		if dryRep, err := build(dry); err == nil {
			// The dry pass already assembled the report skeleton, so the
			// experiment title and matrix size are known before any
			// simulation starts — /status can show sweep progress live.
			tr.SetName(cell, dryRep.Title)
			beginExperiment(dryRep.Title, len(dry.jobs))
			rc.prewarm(dry.jobs, nWorkers)
			defer endExperiment()
		}
		// On a dry-pass error (e.g. an unknown benchmark) nothing is
		// prewarmed; the sequential pass reports the error at the same
		// deterministic point as a single-worker run.
	}
	rep, err := build(rc)
	if err != nil {
		tr.SetAmbient(prevAmbient)
		tr.End(cell, uint64(rc.runs), uint64(rc.hits), true)
		return nil, err
	}
	tr.SetName(cell, rep.Title)
	rc.mu.Lock()
	rep.Timing = fmt.Sprintf("timing: %d runs (%d cache hits), %v simulated across %d workers, %v harness wall time",
		rc.runs, rc.hits, rc.runTime.Round(time.Millisecond), nWorkers, time.Since(start).Round(time.Millisecond))
	if rc.storeHits > 0 {
		rep.Timing += fmt.Sprintf("; %d persistent-store hits", rc.storeHits)
	}
	if rc.bypassed > 0 {
		rep.Timing += fmt.Sprintf("; %d probed runs bypassed the run cache", rc.bypassed)
	}
	rep.Timing += rc.timingDetail()
	rc.mu.Unlock()
	tr.SetAmbient(prevAmbient)
	tr.End(cell, uint64(rc.runs), uint64(rc.hits), false)
	return rep, nil
}

// timingDetail renders the per-regeneration wall-time distribution (p50, p95
// and exact max from the run-cache histogram) and the per-engine run counts.
// Empty when the experiment executed no simulations. Caller holds rc.mu.
func (rc *runCache) timingDetail() string {
	if rc.wallHist.Count() == 0 {
		return ""
	}
	q := func(p float64) time.Duration {
		return (time.Duration(rc.wallHist.Quantile(p)*1e3) * time.Nanosecond).Round(time.Microsecond)
	}
	s := fmt.Sprintf("; run wall p50 %v / p95 %v / max %v",
		q(0.5), q(0.95), time.Duration(rc.wallHist.Max())*time.Microsecond)
	engines := make([]string, 0, len(rc.engineRuns))
	for e := range rc.engineRuns {
		engines = append(engines, string(e))
	}
	sort.Strings(engines)
	s += "; engine runs:"
	for i, e := range engines {
		if i > 0 {
			s += ","
		}
		s += fmt.Sprintf(" %s=%d", e, rc.engineRuns[emu.Engine(e)])
	}
	return s
}
