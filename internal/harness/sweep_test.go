package harness_test

import (
	"fmt"
	"testing"

	"nacho/internal/harness"
	"nacho/internal/power"
	"nacho/internal/program"
	"nacho/internal/systems"
)

// sweepProgram is a compact workload mixing every consistency hazard: WARs on
// a .data word, image-initialized data updated in place, recursion with dead
// stack frames, and sub-word accesses. It reports an order-sensitive
// checksum.
const sweepProgram = `
	.data
	.balign 4
vals:	.word 5, 3, 9, 1, 7, 2, 8, 4
acc:	.word 0
bytes:	.byte 1, 2, 3, 4
	.text
# sum(a1 = index): recursive sum of vals[0..a1], with a frame per level.
sum:
	addi sp, sp, -8
	sw   ra, 4(sp)
	sw   a1, 0(sp)
	beqz a1, sum_base
	addi a1, a1, -1
	call sum
	lw   a1, 0(sp)
	slli t0, a1, 2
	la   t1, vals
	add  t1, t1, t0
	lw   t1, (t1)
	add  a0, a0, t1
	j    sum_ret
sum_base:
	la   t1, vals
	lw   t1, (t1)
	add  a0, a0, t1
sum_ret:
	lw   ra, 4(sp)
	addi sp, sp, 8
	ret

_start:
	li   s4, 0
	li   s5, 6                  # outer iterations
outer:
	# In-place update of image-initialized data (WARs).
	la   a2, vals
	li   t2, 0
bump:
	slli t0, t2, 2
	add  t0, a2, t0
	lw   t1, (t0)
	addi t1, t1, 1
	sw   t1, (t0)
	addi t2, t2, 1
	li   t0, 8
	bne  t2, t0, bump
	# Recursive sum into a register, accumulated through a .data word.
	li   a0, 0
	li   a1, 7
	call sum
	la   t0, acc
	lw   t1, (t0)
	add  t1, t1, a0
	sw   t1, (t0)
	# Sub-word traffic on image-initialized bytes.
	la   t0, bytes
	lbu  t1, 1(t0)
	addi t1, t1, 1
	sb   t1, 1(t0)
	# Fold into the running checksum.
	la   t0, acc
	lw   t1, (t0)
	xor  s4, s4, t1
	slli t1, s4, 13
	xor  s4, s4, t1
	srli t1, s4, 17
	xor  s4, s4, t1
	slli t1, s4, 5
	xor  s4, s4, t1
	addi s5, s5, -1
	bnez s5, outer

	mv   a0, s4
	li   t0, 0x000F0004
	sw   a0, (t0)
	li   t0, 0x000F0000
	sw   zero, (t0)
`

// TestIncorruptibilitySweep is the total-incorruptibility property (paper
// Section 4.1): for every recovery-capable system, inject a power failure at
// EVERY individual cycle of the sweep program — including inside
// checkpoints, evictions and restores — and require the correct final
// checksum plus clean shadow/WAR verification every time.
func TestIncorruptibilitySweep(t *testing.T) {
	img, err := program.FromSource("sweep", sweepProgram)
	if err != nil {
		t.Fatal(err)
	}

	// Reference result and cycle count per system, failure-free.
	kinds := []systems.Kind{
		systems.KindClank, systems.KindPROWL, systems.KindNaiveNACHO,
		systems.KindNACHO, systems.KindOracleNACHO, systems.KindWriteThrough,
	}
	cfgFor := func(sched power.Schedule) harness.RunConfig {
		cfg := harness.DefaultRunConfig()
		cfg.CacheSize = 64 // small cache: evictions and checkpoints galore
		cfg.Schedule = sched
		return cfg
	}
	for _, kind := range kinds {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			t.Parallel()
			base, err := harness.RunImage(img, kind, cfgFor(nil), false)
			if err != nil {
				t.Fatal(err)
			}
			want := base.Result
			total := base.Counters.Cycles
			if total < 500 {
				t.Fatalf("sweep program too short: %d cycles", total)
			}
			// Stride 1 would be ~20k runs; stride 3 still lands inside every
			// checkpoint (they are hundreds of cycles long).
			for k := uint64(1); k < total; k += 3 {
				res, err := harness.RunImage(img, kind, cfgFor(power.NewAt(k)), false)
				if err != nil {
					t.Fatalf("failure@%d: %v", k, err)
				}
				if res.Result != want {
					t.Fatalf("failure@%d: result %#x, want %#x", k, res.Result, want)
				}
				if res.Counters.PowerFailures != 1 {
					t.Fatalf("failure@%d: %d failures recorded", k, res.Counters.PowerFailures)
				}
			}
		})
	}
}

// TestDoubleFailureSweep places failure PAIRS so the second failure lands
// during recovery-adjacent execution shortly after the first.
func TestDoubleFailureSweep(t *testing.T) {
	img, err := program.FromSource("sweep", sweepProgram)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []systems.Kind{systems.KindNACHO, systems.KindClank} {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			t.Parallel()
			cfg := harness.DefaultRunConfig()
			cfg.CacheSize = 64
			base, err := harness.RunImage(img, kind, cfg, false)
			if err != nil {
				t.Fatal(err)
			}
			want := base.Result
			total := base.Counters.Cycles
			for k := uint64(10); k < total; k += 29 {
				for _, gap := range []uint64{7, 211} {
					cfg := harness.DefaultRunConfig()
					cfg.CacheSize = 64
					cfg.Schedule = power.NewAt(k, k+gap)
					res, err := harness.RunImage(img, kind, cfg, false)
					if err != nil {
						t.Fatalf("failures@%d,%d: %v", k, k+gap, err)
					}
					if res.Result != want {
						t.Fatalf("failures@%d,%d: result %#x, want %#x (%s)",
							k, k+gap, res.Result, want, fmt.Sprint(kind))
					}
				}
			}
		})
	}
}
