package harness_test

import (
	"testing"

	"nacho/internal/harness"
	"nacho/internal/power"
	"nacho/internal/program"
	"nacho/internal/sim"
	"nacho/internal/systems"
)

// TestIntervalTotalsMatchCounterProbe runs real benchmarks — failure-free and
// under injected failures — with the interval collector and the counter-
// deriving probe observing the same event stream, and asserts the two
// independent aggregations agree: NVM byte totals, write-back verdict totals,
// and the interval count against commit/failure boundaries.
func TestIntervalTotalsMatchCounterProbe(t *testing.T) {
	cases := []struct {
		name     string
		schedule power.Schedule
		forced   uint64
	}{
		{name: "failure-free"},
		{name: "intermittent", schedule: power.Periodic{Period: 50_000}, forced: 25_000},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			p, ok := program.ByName("crc")
			if !ok {
				t.Fatal("crc benchmark missing")
			}
			stats := &sim.IntervalStats{}
			cp := sim.NewCounterProbe()
			cfg := harness.DefaultRunConfig()
			cfg.Schedule = tc.schedule
			cfg.ForcedCheckpointPeriod = tc.forced
			cfg.Probe = sim.Combine(stats, cp)
			res, err := harness.Run(p, systems.KindNACHO, cfg)
			if err != nil {
				t.Fatal(err)
			}
			stats.Finish(res.Counters.Cycles)

			c := cp.Counters()
			if stats.TotalNVMReadBytes != c.NVMReadBytes || stats.TotalNVMWriteBytes != c.NVMWriteBytes {
				t.Errorf("interval NVM totals (%d read / %d written) disagree with counter probe (%d/%d)",
					stats.TotalNVMReadBytes, stats.TotalNVMWriteBytes, c.NVMReadBytes, c.NVMWriteBytes)
			}
			wbTotal := uint64(0)
			for _, n := range stats.TotalWriteBacks {
				wbTotal += n
			}
			// Every verdict the counter probe tallies is one write-back event.
			counterWB := c.SafeEvictions + c.UnsafeEvictions + c.DroppedStackLines
			if asyncAndWT := stats.TotalWriteBacks[sim.VerdictAsync] + stats.TotalWriteBacks[sim.VerdictWriteThrough]; asyncAndWT > 0 {
				counterWB += asyncAndWT // kinds NACHO never emits; keep the identity explicit
			}
			if wbTotal != counterWB {
				t.Errorf("write-back totals %d disagree with counter probe %d", wbTotal, counterWB)
			}
			// Intervals are closed by committed persistence points and power
			// failures, plus the end-of-run tail when present.
			want := int(c.Checkpoints + c.Regions + c.PowerFailures)
			if n := len(stats.Intervals); n > 0 && stats.Intervals[n-1].EndOfRun {
				want++
			}
			if stats.Count() != want {
				t.Errorf("interval count %d, want commits+regions+failures(+tail) = %d", stats.Count(), want)
			}
			if tc.schedule != nil && c.PowerFailures == 0 {
				t.Error("intermittent case injected no failures; schedule too long for this benchmark")
			}
		})
	}
}
