package harness_test

import (
	"testing"

	"nacho/internal/harness"
	"nacho/internal/program"
	"nacho/internal/sim"
	"nacho/internal/systems"
	"nacho/internal/telemetry"
)

// These benchmarks bound the observability cost on a whole simulation:
// BenchmarkRunNoProbe is the detached fast path (a nil-check branch per event
// site plus three per-run atomics), BenchmarkRunTelemetryProbe adds the full
// metrics adapter. Compare them to see what a live /metrics feed costs; the
// no-probe number is the one that must stay flat release to release.
func benchmarkRun(b *testing.B, probe sim.Probe) {
	p, ok := program.ByName("crc")
	if !ok {
		b.Fatal("crc benchmark missing")
	}
	img, err := p.Build()
	if err != nil {
		b.Fatal(err)
	}
	cfg := harness.DefaultRunConfig()
	cfg.Verify = false
	cfg.Probe = probe
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := harness.RunImage(img, systems.KindNACHO, cfg, false); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunNoProbe(b *testing.B) { benchmarkRun(b, nil) }

func BenchmarkRunTelemetryProbe(b *testing.B) {
	benchmarkRun(b, telemetry.NewProbe(telemetry.NewRegistry()))
}
