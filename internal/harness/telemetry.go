package harness

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"nacho/internal/telemetry"
)

// Live observability of the harness: every run and the worker pool update a
// process-wide set of atomics, which RegisterMetrics exposes as Prometheus
// series and Status snapshots as the /status JSON document. The accounting is
// per-run (three atomic adds around a whole simulation), so it costs nothing
// measurable against the per-event hot path and stays on unconditionally.
var pool struct {
	runsStarted     atomic.Uint64
	runsCompleted   atomic.Uint64
	cacheHits       atomic.Uint64
	cacheBypassed   atomic.Uint64 // probed/traced runs that skipped the run cache
	simulatedCycles atomic.Uint64
	workersBusy     atomic.Int64
	firstRunNano    atomic.Int64 // wall clock of the first run, for cycles/sec

	mu         sync.Mutex
	experiment string
	jobsTotal  int
	jobsDone   uint64
	activeJobs map[int]WorkerJob // worker id -> current job
}

// runStarted accounts the start of one simulation.
func runStarted() {
	pool.runsStarted.Add(1)
	pool.firstRunNano.CompareAndSwap(0, time.Now().UnixNano())
}

// runCompleted accounts one finished simulation and its simulated cycles.
func runCompleted(cycles uint64) {
	pool.runsCompleted.Add(1)
	pool.simulatedCycles.Add(cycles)
}

// beginExperiment publishes the experiment an upcoming prewarm fan-out
// belongs to; endExperiment clears it.
func beginExperiment(title string, jobs int) {
	pool.mu.Lock()
	pool.experiment = title
	pool.jobsTotal = jobs
	pool.jobsDone = 0
	pool.mu.Unlock()
}

func endExperiment() {
	pool.mu.Lock()
	pool.experiment = ""
	pool.jobsTotal = 0
	pool.jobsDone = 0
	pool.mu.Unlock()
}

// workerStarted/workerDone bracket one prewarm job on one worker.
func workerStarted(worker int, j job) {
	pool.workersBusy.Add(1)
	pool.mu.Lock()
	if pool.activeJobs == nil {
		pool.activeJobs = make(map[int]WorkerJob)
	}
	pool.activeJobs[worker] = WorkerJob{Worker: worker, Program: j.p.Name, System: string(j.kind)}
	pool.mu.Unlock()
}

func workerDone(worker int) {
	pool.workersBusy.Add(-1)
	pool.mu.Lock()
	delete(pool.activeJobs, worker)
	pool.jobsDone++
	pool.mu.Unlock()
}

// WorkerJob is one in-flight worker-pool job in a Status snapshot.
type WorkerJob struct {
	Worker  int    `json:"worker"`
	Program string `json:"program"`
	System  string `json:"system"`
}

// PoolStatus is the live harness progress document served at /status.
type PoolStatus struct {
	Workers               int         `json:"workers"`
	Busy                  int         `json:"busy"`
	RunsStarted           uint64      `json:"runs_started"`
	RunsCompleted         uint64      `json:"runs_completed"`
	CacheHits             uint64      `json:"cache_hits"`
	CacheBypassedProbed   uint64      `json:"cache_bypassed_probed"`
	SimulatedCycles       uint64      `json:"simulated_cycles"`
	SimulatedCyclesPerSec float64     `json:"simulated_cycles_per_sec"`
	Experiment            string      `json:"experiment,omitempty"`
	ExperimentJobs        int         `json:"experiment_jobs"`
	ExperimentJobsDone    uint64      `json:"experiment_jobs_done"`
	ActiveJobs            []WorkerJob `json:"active_jobs"`
}

// Status snapshots the harness's live progress. It is safe to call from any
// goroutine at any time, including mid-sweep.
func Status() PoolStatus {
	st := PoolStatus{
		Workers:             Workers(),
		Busy:                int(pool.workersBusy.Load()),
		RunsStarted:         pool.runsStarted.Load(),
		RunsCompleted:       pool.runsCompleted.Load(),
		CacheHits:           pool.cacheHits.Load(),
		CacheBypassedProbed: pool.cacheBypassed.Load(),
		SimulatedCycles:     pool.simulatedCycles.Load(),
		ActiveJobs:          []WorkerJob{},
	}
	if first := pool.firstRunNano.Load(); first != 0 {
		if secs := time.Since(time.Unix(0, first)).Seconds(); secs > 0 {
			st.SimulatedCyclesPerSec = float64(st.SimulatedCycles) / secs
		}
	}
	pool.mu.Lock()
	st.Experiment = pool.experiment
	st.ExperimentJobs = pool.jobsTotal
	st.ExperimentJobsDone = pool.jobsDone
	for _, j := range pool.activeJobs {
		st.ActiveJobs = append(st.ActiveJobs, j)
	}
	pool.mu.Unlock()
	sort.Slice(st.ActiveJobs, func(i, k int) bool { return st.ActiveJobs[i].Worker < st.ActiveJobs[k].Worker })
	return st
}

// RegisterMetrics exposes the harness accounting in r as nacho_harness_*
// series. The Func variants read the live atomics at scrape time, so the
// series track a running sweep with no extra work on the run path.
func RegisterMetrics(r *telemetry.Registry) {
	r.NewCounterFunc("nacho_harness_runs_started_total",
		"Simulations started.", pool.runsStarted.Load)
	r.NewCounterFunc("nacho_harness_runs_completed_total",
		"Simulations completed (with or without error).", pool.runsCompleted.Load)
	r.NewCounterFunc("nacho_harness_cache_hits_total",
		"Run-cache hits, including singleflight waits.", pool.cacheHits.Load)
	r.NewCounterFunc("nacho_harness_cache_bypassed_probed_total",
		"Probed or traced runs that bypassed the run cache.", pool.cacheBypassed.Load)
	r.NewCounterFunc("nacho_harness_simulated_cycles_total",
		"Simulated cycles summed across completed runs.", pool.simulatedCycles.Load)
	r.NewGaugeFunc("nacho_harness_workers",
		"Configured worker-pool size.", func() float64 { return float64(Workers()) })
	r.NewGaugeFunc("nacho_harness_workers_busy",
		"Workers currently executing a run.", func() float64 { return float64(pool.workersBusy.Load()) })
	r.NewGaugeFunc("nacho_harness_experiment_jobs",
		"Unique runs in the experiment currently regenerating.",
		func() float64 { pool.mu.Lock(); defer pool.mu.Unlock(); return float64(pool.jobsTotal) })
	r.NewGaugeFunc("nacho_harness_experiment_jobs_done",
		"Prewarm jobs finished in the experiment currently regenerating.",
		func() float64 { pool.mu.Lock(); defer pool.mu.Unlock(); return float64(pool.jobsDone) })
	r.NewGaugeFunc("nacho_harness_simulated_cycles_per_sec",
		"Aggregate simulation throughput since the first run.",
		func() float64 { return Status().SimulatedCyclesPerSec })
}
