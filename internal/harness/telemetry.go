package harness

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"nacho/internal/emu"
	"nacho/internal/systems"
	"nacho/internal/telemetry"
)

// Live observability of the harness: every run and the worker pool update a
// process-wide set of atomics, which RegisterMetrics exposes as Prometheus
// series and Status snapshots as the /status JSON document. The accounting is
// per-run (three atomic adds around a whole simulation), so it costs nothing
// measurable against the per-event hot path and stays on unconditionally.
var pool struct {
	runsStarted     atomic.Uint64
	runsCompleted   atomic.Uint64
	cacheHits       atomic.Uint64
	cacheBypassed   atomic.Uint64 // probed/traced runs that skipped the run cache
	storeHits       atomic.Uint64 // runs served from the persistent store without executing
	simulatedCycles atomic.Uint64
	workersBusy     atomic.Int64
	firstRunNano    atomic.Int64 // wall clock of the first run, for cycles/sec

	mu         sync.Mutex
	experiment string
	jobsTotal  int
	jobsDone   uint64
	activeJobs map[int]WorkerJob // worker id -> current job
}

// runStarted accounts the start of one simulation.
func runStarted() {
	pool.runsStarted.Add(1)
	pool.firstRunNano.CompareAndSwap(0, time.Now().UnixNano())
}

// runCompleted accounts one finished simulation and its simulated cycles.
func runCompleted(cycles uint64) {
	pool.runsCompleted.Add(1)
	pool.simulatedCycles.Add(cycles)
}

// beginExperiment publishes the experiment an upcoming prewarm fan-out
// belongs to; endExperiment clears it.
func beginExperiment(title string, jobs int) {
	pool.mu.Lock()
	pool.experiment = title
	pool.jobsTotal = jobs
	pool.jobsDone = 0
	pool.mu.Unlock()
}

func endExperiment() {
	pool.mu.Lock()
	pool.experiment = ""
	pool.jobsTotal = 0
	pool.jobsDone = 0
	pool.mu.Unlock()
}

// workerStarted/workerDone bracket one prewarm job on one worker.
func workerStarted(worker int, j job) {
	pool.workersBusy.Add(1)
	pool.mu.Lock()
	if pool.activeJobs == nil {
		pool.activeJobs = make(map[int]WorkerJob)
	}
	pool.activeJobs[worker] = WorkerJob{Worker: worker, Program: j.p.Name, System: string(j.kind)}
	pool.mu.Unlock()
}

func workerDone(worker int) {
	pool.workersBusy.Add(-1)
	pool.mu.Lock()
	delete(pool.activeJobs, worker)
	pool.jobsDone++
	pool.mu.Unlock()
}

// RunWallBuckets are the inclusive upper bounds, in microseconds, of the run
// wall-time histograms: a 1-3-10 ladder from 100 µs (a short cached-size run)
// to 10 s (a long verified schedule sweep cell).
var RunWallBuckets = []uint64{100, 300, 1000, 3000, 10000, 30000, 100000, 300000, 1000000, 3000000, 10000000}

// engineStats is the always-on per-engine accounting behind the
// nacho_harness_engine_* series and the dashboard's sim-MIPS table: run and
// retired-instruction counts plus a wall-time histogram per concrete engine.
// The map is built once and never mutated, so lookups are lock-free.
type engineStat struct {
	runs  atomic.Uint64
	instr atomic.Uint64
	wall  *telemetry.Histogram // run wall time in microseconds
}

var engineStats = func() map[emu.Engine]*engineStat {
	m := make(map[emu.Engine]*engineStat, 3)
	for _, e := range []emu.Engine{emu.EngineRef, emu.EngineFast, emu.EngineAOT} {
		m[e] = &engineStat{wall: telemetry.NewHistogram(RunWallBuckets)}
	}
	return m
}()

// executedEngine reports the engine a run actually executes on. Any attached
// probe — the verifier, the trace recorder, a caller probe — forces the
// per-instruction reference interpreter (the sole emitter of per-instruction
// events; see emu.Machine); otherwise the resolved configured engine runs.
func executedEngine(cfg RunConfig) emu.Engine {
	if cfg.Verify || cfg.Trace != nil || cfg.Probe != nil {
		return emu.EngineRef
	}
	return emu.Config{Engine: cfg.Engine, NoFastPath: cfg.NoFastPath}.ResolveEngine()
}

// runObserved accounts one executed simulation against its engine's stats.
func runObserved(engine emu.Engine, wallMicros int64, instructions uint64) {
	st := engineStats[engine]
	if st == nil {
		st = engineStats[emu.EngineRef]
	}
	st.runs.Add(1)
	st.instr.Add(instructions)
	st.wall.Observe(uint64(wallMicros))
}

// scheduleKey renders a RunConfig's power schedule identity ("none" when
// always-on); it is the schedule component of both the run-cache key and the
// ledger record.
func scheduleKey(cfg RunConfig) string {
	if cfg.Schedule != nil {
		return cfg.Schedule.Key()
	}
	return "none"
}

// Served-outcome labels for appendLedger: a run record is either an actual
// execution (outcomeExecuted), a result served from the in-process run cache
// (outcomeCacheHit), or one served from the persistent store
// (outcomeStoreHit).
const (
	outcomeExecuted = ""
	outcomeCacheHit = "cache-hit"
	outcomeStoreHit = "store-hit"
)

// appendLedger writes one run record to the installed campaign ledger; a
// no-op when none is installed. served marks a result that was not executed:
// outcomeCacheHit (in-process run cache) or outcomeStoreHit (persistent
// store); counters are the original run's, wall time 0. A run error takes
// precedence over the served outcome so failures are always greppable as
// "error".
func appendLedger(name string, kind systems.Kind, cfg RunConfig, engine emu.Engine,
	res emu.Result, err error, wallMicros int64, served string) {
	l := telemetry.ActiveLedger()
	if l == nil {
		return
	}
	rec := telemetry.Record{
		V:             telemetry.LedgerVersion,
		Program:       name,
		System:        string(kind),
		Engine:        string(engine),
		Cache:         cfg.CacheSize,
		Ways:          cfg.Ways,
		Schedule:      scheduleKey(cfg),
		Outcome:       "ok",
		Bypass:        served == outcomeExecuted && (cfg.Trace != nil || cfg.Probe != nil),
		Cycles:        res.Counters.Cycles,
		Instructions:  res.Counters.Instructions,
		Checkpoints:   res.Counters.Checkpoints,
		NVMReadBytes:  res.Counters.NVMReadBytes,
		NVMWriteBytes: res.Counters.NVMWriteBytes,
		CacheHits:     res.Counters.CacheHits,
		CacheMisses:   res.Counters.CacheMisses,
		PowerFailures: res.Counters.PowerFailures,
		WallMicros:    wallMicros,
	}
	if served != outcomeExecuted {
		rec.Outcome = served
	}
	if err != nil {
		rec.Outcome = "error"
		rec.Error = err.Error()
	}
	l.Append(&rec)
}

// WorkerJob is one in-flight worker-pool job in a Status snapshot.
type WorkerJob struct {
	Worker  int    `json:"worker"`
	Program string `json:"program"`
	System  string `json:"system"`
}

// PoolStatus is the live harness progress document served at /status.
type PoolStatus struct {
	Workers               int         `json:"workers"`
	Busy                  int         `json:"busy"`
	RunsStarted           uint64      `json:"runs_started"`
	RunsCompleted         uint64      `json:"runs_completed"`
	CacheHits             uint64      `json:"cache_hits"`
	StoreHits             uint64      `json:"store_hits"`
	CacheBypassedProbed   uint64      `json:"cache_bypassed_probed"`
	SimulatedCycles       uint64      `json:"simulated_cycles"`
	SimulatedCyclesPerSec float64     `json:"simulated_cycles_per_sec"`
	Experiment            string      `json:"experiment,omitempty"`
	ExperimentJobs        int         `json:"experiment_jobs"`
	ExperimentJobsDone    uint64      `json:"experiment_jobs_done"`
	ActiveJobs            []WorkerJob `json:"active_jobs"`
}

// Status snapshots the harness's live progress. It is safe to call from any
// goroutine at any time, including mid-sweep.
func Status() PoolStatus {
	st := PoolStatus{
		Workers:             Workers(),
		Busy:                int(pool.workersBusy.Load()),
		RunsStarted:         pool.runsStarted.Load(),
		RunsCompleted:       pool.runsCompleted.Load(),
		CacheHits:           pool.cacheHits.Load(),
		StoreHits:           pool.storeHits.Load(),
		CacheBypassedProbed: pool.cacheBypassed.Load(),
		SimulatedCycles:     pool.simulatedCycles.Load(),
		ActiveJobs:          []WorkerJob{},
	}
	if first := pool.firstRunNano.Load(); first != 0 {
		if secs := time.Since(time.Unix(0, first)).Seconds(); secs > 0 {
			st.SimulatedCyclesPerSec = float64(st.SimulatedCycles) / secs
		}
	}
	pool.mu.Lock()
	st.Experiment = pool.experiment
	st.ExperimentJobs = pool.jobsTotal
	st.ExperimentJobsDone = pool.jobsDone
	for _, j := range pool.activeJobs {
		st.ActiveJobs = append(st.ActiveJobs, j)
	}
	pool.mu.Unlock()
	sort.Slice(st.ActiveJobs, func(i, k int) bool { return st.ActiveJobs[i].Worker < st.ActiveJobs[k].Worker })
	return st
}

// RegisterMetrics exposes the harness accounting in r as nacho_harness_*
// series. The Func variants read the live atomics at scrape time, so the
// series track a running sweep with no extra work on the run path.
func RegisterMetrics(r *telemetry.Registry) {
	r.NewCounterFunc("nacho_harness_runs_started_total",
		"Simulations started.", pool.runsStarted.Load)
	r.NewCounterFunc("nacho_harness_runs_completed_total",
		"Simulations completed (with or without error).", pool.runsCompleted.Load)
	r.NewCounterFunc("nacho_harness_cache_hits_total",
		"Run-cache hits, including singleflight waits.", pool.cacheHits.Load)
	r.NewCounterFunc("nacho_harness_store_hits_total",
		"Runs served from the persistent run store without executing.", pool.storeHits.Load)
	r.NewCounterFunc("nacho_harness_cache_bypassed_probed_total",
		"Probed or traced runs that bypassed the run cache.", pool.cacheBypassed.Load)
	r.NewCounterFunc("nacho_harness_simulated_cycles_total",
		"Simulated cycles summed across completed runs.", pool.simulatedCycles.Load)
	r.NewGaugeFunc("nacho_harness_workers",
		"Configured worker-pool size.", func() float64 { return float64(Workers()) })
	r.NewGaugeFunc("nacho_harness_workers_busy",
		"Workers currently executing a run.", func() float64 { return float64(pool.workersBusy.Load()) })
	r.NewGaugeFunc("nacho_harness_experiment_jobs",
		"Unique runs in the experiment currently regenerating.",
		func() float64 { pool.mu.Lock(); defer pool.mu.Unlock(); return float64(pool.jobsTotal) })
	r.NewGaugeFunc("nacho_harness_experiment_jobs_done",
		"Prewarm jobs finished in the experiment currently regenerating.",
		func() float64 { pool.mu.Lock(); defer pool.mu.Unlock(); return float64(pool.jobsDone) })
	r.NewGaugeFunc("nacho_harness_simulated_cycles_per_sec",
		"Aggregate simulation throughput since the first run.",
		func() float64 { return Status().SimulatedCyclesPerSec })
	for _, e := range []emu.Engine{emu.EngineRef, emu.EngineFast, emu.EngineAOT} {
		st := engineStats[e]
		lbl := telemetry.Label{Name: "engine", Value: string(e)}
		r.NewCounterFunc("nacho_harness_engine_runs_total",
			"Simulations executed, by the engine that actually ran them.", st.runs.Load, lbl)
		r.NewCounterFunc("nacho_harness_engine_instructions_total",
			"Instructions retired, by engine.", st.instr.Load, lbl)
		r.RegisterHistogram("nacho_harness_run_wall_micros",
			"Run wall time in microseconds, by engine.", st.wall, lbl)
	}
}
