package harness_test

import (
	"testing"

	"nacho/internal/harness"
	"nacho/internal/power"
	"nacho/internal/program"
	"nacho/internal/systems"
)

// TestParallelMatchesSequential is the harness determinism contract: a
// Figure 5 + Table 3 regeneration fanned across eight workers must be
// byte-identical — text and CSV — to the single-worker run. ci.sh runs this
// package under -race, which additionally exercises the worker pool and the
// singleflight cache for data races.
func TestParallelMatchesSequential(t *testing.T) {
	benches := []string{"crc", "sha"}
	regen := func(workers int) (fig5, table3 *harness.Report) {
		prev := harness.SetWorkers(workers)
		defer harness.SetWorkers(prev)
		fig5, err := harness.Fig5(benches)
		if err != nil {
			t.Fatal(err)
		}
		table3, err = harness.Table3(benches)
		if err != nil {
			t.Fatal(err)
		}
		return fig5, table3
	}
	seq5, seq3 := regen(1)
	par5, par3 := regen(8)

	for _, c := range []struct {
		name     string
		seq, par *harness.Report
	}{{"fig5", seq5, par5}, {"table3", seq3, par3}} {
		if got, want := c.par.String(), c.seq.String(); got != want {
			t.Errorf("%s: parallel text differs from sequential:\n--- sequential\n%s--- parallel\n%s", c.name, want, got)
		}
		if got, want := c.par.CSV(), c.seq.CSV(); got != want {
			t.Errorf("%s: parallel CSV differs from sequential", c.name)
		}
		if c.par.Timing == "" || c.seq.Timing == "" {
			t.Errorf("%s: timing summary missing", c.name)
		}
	}
}

// TestSharedScheduleDeterminism is the Schedule reuse property the X6
// variance experiment depends on: running twice with the *same* stateful
// schedule value must give bit-identical counters (the harness clones the
// schedule per run), and must leave the caller's schedule value unconsumed.
func TestSharedScheduleDeterminism(t *testing.T) {
	p, ok := program.ByName("crc")
	if !ok {
		t.Fatal("crc benchmark missing")
	}
	for _, seed := range []int64{1, 7, 42} {
		sched := power.NewUniform(5_000, 80_000, seed)
		cfg := harness.DefaultRunConfig()
		cfg.Schedule = sched
		cfg.ForcedCheckpointPeriod = 2_500
		a, err := harness.Run(p, systems.KindNACHO, cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := harness.Run(p, systems.KindNACHO, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if a.Counters != b.Counters {
			t.Errorf("seed %d: two runs with one schedule value diverged:\n%+v\n%+v", seed, a.Counters, b.Counters)
		}
		// The runs used clones; the caller's schedule must still sit at the
		// start of its sequence.
		if got, want := sched.NextFailureAfter(0), power.NewUniform(5_000, 80_000, seed).NextFailureAfter(0); got != want {
			t.Errorf("seed %d: harness consumed the caller's schedule state (first failure %d, want %d)", seed, got, want)
		}
	}
}
