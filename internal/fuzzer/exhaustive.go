package fuzzer

import (
	"fmt"

	"nacho/internal/emu"
	"nacho/internal/harness"
	"nacho/internal/power"
	"nacho/internal/program"
	"nacho/internal/sim"
	"nacho/internal/snapshot"
	"nacho/internal/systems"
	"nacho/internal/telemetry"
)

// Exhaustive mode replaces the randomized failure schedules with exhaustive
// crash-instant enumeration: every instruction-granular power-failure
// instant in the first Intervals checkpoint intervals is executed, via
// copy-on-write snapshot forks (internal/snapshot) so the shared prefix is
// simulated once instead of once per instant. Any divergent fork is
// confirmed by a from-boot run under the same one-instant schedule — with
// the verifier attached — before it is reported, so every exhaustive
// finding carries a replayable schedule and the usual WAR/shadow
// classification.

// ExhaustiveConfig parameterizes exhaustive crash-instant exploration.
type ExhaustiveConfig struct {
	Oracle Config
	// Intervals is how many checkpoint intervals to enumerate per
	// (program, system) pair (default 2).
	Intervals int
	// Stride enumerates every Stride-th crash instant (default 1: all of
	// them).
	Stride uint64
	// Workers is the fork parallelism within one exploration (default 1;
	// the campaign already fans seeds across the harness pool).
	Workers int
	// Span, when non-zero, parents the exploration's window spans on the
	// campaign tracer (the campaign sets it to the seed's cell span).
	Span telemetry.SpanID
}

func (c ExhaustiveConfig) normalized() ExhaustiveConfig {
	c.Oracle = c.Oracle.normalized()
	if c.Intervals == 0 {
		c.Intervals = 2
	}
	if c.Stride == 0 {
		c.Stride = 1
	}
	if c.Workers == 0 {
		c.Workers = 1
	}
	return c
}

// ExhaustiveStats aggregates the exploration work across systems, in
// simulated cycles. BootCycles is what re-running every enumerated instant
// from boot would have cost; SimCycles is what the forked enumeration
// actually paid.
type ExhaustiveStats struct {
	Systems    int
	Windows    int
	Instants   int
	SimCycles  uint64
	BootCycles uint64
}

func (s *ExhaustiveStats) add(st snapshot.Stats) {
	s.Systems++
	s.Windows += st.Windows
	s.Instants += st.Instants
	s.SimCycles += st.SimCycles()
	s.BootCycles += st.BootCycles
}

// Speedup is the measured advantage over re-run-from-boot enumeration.
func (s ExhaustiveStats) Speedup() float64 {
	if s.SimCycles == 0 {
		return 0
	}
	return float64(s.BootCycles) / float64(s.SimCycles)
}

// CheckExhaustive runs the exhaustive oracle for one generated program
// across the given systems: the failure-free differential first (also
// measuring the runtime that sets the budget), then every Stride-th crash
// instant in the first Intervals checkpoint intervals. At most one finding
// per system is reported — the earliest divergent instant.
func CheckExhaustive(prog *Prog, kinds []systems.Kind, cfg ExhaustiveConfig) ([]Finding, ExhaustiveStats, error) {
	cfg = cfg.normalized()
	var stats ExhaustiveStats
	img, err := prog.Render()
	if err != nil {
		return nil, stats, err
	}
	g, err := golden(img, cfg.Oracle)
	if err != nil {
		return nil, stats, fmt.Errorf("fuzzer: seed %d golden run: %w", prog.Seed, err)
	}
	var out []Finding
	for _, kind := range kinds {
		f, err := checkSystemExhaustive(img, g, prog, kind, cfg, &stats)
		if err != nil {
			return out, stats, err
		}
		if f != nil {
			findingsTotal.Add(1)
			out = append(out, *f)
		}
	}
	return out, stats, nil
}

// checkSystemExhaustive enumerates one system's crash instants off a shared
// snapshot-forked prefix, stopping at the first confirmed divergence.
func checkSystemExhaustive(img *program.Image, g *goldenRun, prog *Prog, kind systems.Kind, cfg ExhaustiveConfig, stats *ExhaustiveStats) (*Finding, error) {
	fc, sysCycles := checkOne(img, g, kind, nil, failFreeMaxCycles, cfg.Oracle)
	if fc != nil {
		return &Finding{Seed: prog.Seed, System: kind, Kind: fc.kind, Detail: fc.detail, Prog: prog}, nil
	}
	budget := failureBudget(sysCycles, 1)
	rcBase := baseConfig(cfg.Oracle)
	rcBase.MaxCycles = budget
	newMachine := func(sched power.Schedule, probe sim.Probe) (*emu.Machine, error) {
		rc := rcBase
		rc.Schedule = sched
		rc.Probe = probe
		m, _, err := harness.BuildMachine(img, kind, rc)
		return m, err
	}

	var (
		finding *Finding
		vErr    error
	)
	st, err := snapshot.Explore(newMachine, snapshot.Options{
		Windows: cfg.Intervals,
		Stride:  cfg.Stride,
		Workers: cfg.Workers,
		Span:    cfg.Span,
	}, func(o snapshot.Outcome) bool {
		if diffAgainstGolden(o.Res, o.Err, o.Sys.Mem(), g, budget) == nil {
			return true
		}
		// Confirm from boot under the same one-instant schedule, verifier
		// attached: the replayable ground truth, plus the WAR/shadow
		// classification a probe-free fork cannot see.
		cfc, _ := checkOne(img, g, kind, power.NewAt(o.Instant), budget, cfg.Oracle)
		if cfc == nil {
			vErr = fmt.Errorf("fuzzer: seed %d on %s: forked run at instant %d diverged but its from-boot replay did not — snapshot-fork equivalence violated", prog.Seed, kind, o.Instant)
			return false
		}
		finding = &Finding{Seed: prog.Seed, System: kind, Kind: cfc.kind, Detail: cfc.detail, Prog: prog, Schedule: []uint64{o.Instant}}
		return false
	})
	oracleRuns.Add(uint64(st.Instants))
	stats.add(st)
	if err != nil {
		return nil, fmt.Errorf("fuzzer: seed %d on %s: %w", prog.Seed, kind, err)
	}
	if vErr != nil {
		return nil, vErr
	}
	return finding, nil
}
