package fuzzer

import (
	"sync/atomic"

	"nacho/internal/telemetry"
)

// Campaign-wide accounting, exposed through RegisterMetrics as the
// nacho_fuzz_* series (mirroring the harness's nacho_harness_* pattern:
// process-wide atomics read at scrape time).
var (
	programsTotal  atomic.Uint64 // generated programs checked
	oracleRuns     atomic.Uint64 // individual oracle simulations (golden + differential)
	findingsTotal  atomic.Uint64 // divergences detected
	minimizedTotal atomic.Uint64 // findings that completed minimization
	artifactsTotal atomic.Uint64 // artifacts written to disk
)

// RegisterMetrics exposes the fuzzer's accounting in r as nacho_fuzz_*
// series. The Func variants read the live atomics at scrape time, so a
// telemetry server attached to a running campaign tracks it with no extra
// work on the oracle path.
func RegisterMetrics(r *telemetry.Registry) {
	r.NewCounterFunc("nacho_fuzz_programs_total",
		"Generated programs run through the differential oracle.", programsTotal.Load)
	r.NewCounterFunc("nacho_fuzz_oracle_runs_total",
		"Oracle simulations (golden, failure-free and scheduled runs).", oracleRuns.Load)
	r.NewCounterFunc("nacho_fuzz_findings_total",
		"Divergences detected by the oracle.", findingsTotal.Load)
	r.NewCounterFunc("nacho_fuzz_minimized_total",
		"Findings that completed delta-debug minimization.", minimizedTotal.Load)
	r.NewCounterFunc("nacho_fuzz_artifacts_total",
		"Replayable finding artifacts written to disk.", artifactsTotal.Load)
}
