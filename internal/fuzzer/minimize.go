package fuzzer

import (
	"nacho/internal/power"
	"nacho/internal/systems"
)

// The minimizer is a greedy delta-debugger over the structured program
// (the op tree, not raw instructions — every candidate renders to a
// well-formed program) and the failure schedule. A candidate is accepted
// when it still produces a finding of the same kind on the same system.
// The search is deterministic: a fixed pass order under a fixed candidate
// budget, so minimizing the same finding twice yields the same artifact.

// minimizeBudget caps oracle invocations per Minimize call. Each candidate
// costs two runs (a failure-free run to re-measure the budget plus the
// scheduled run), so this bounds minimization at ~800 simulations.
const minimizeBudget = 400

type minimizer struct {
	system  systems.Kind
	want    FindingKind
	cfg     Config
	seed    int64
	params  Params
	remain  int
	checked uint64
}

// reproduces reports whether the candidate (ops, sched) still triggers a
// finding of the wanted kind. Candidates that fail to render or to run on
// the Volatile baseline are rejected — minimization must preserve
// well-formedness, not trade one failure for another.
func (m *minimizer) reproduces(ops []Op, sched []uint64) bool {
	if m.remain <= 0 {
		return false
	}
	m.remain--
	m.checked++
	p := &Prog{Seed: m.seed, Params: m.params, Ops: ops}
	img, err := p.Render()
	if err != nil {
		return false
	}
	g, err := golden(img, m.cfg)
	if err != nil {
		return false
	}
	fc, sysCycles := checkOne(img, g, m.system, nil, failFreeMaxCycles, m.cfg)
	if fc != nil {
		// The candidate diverges with no failures at all; that counts when
		// it is the same bug (schedule minimization will then drop to nil).
		return fc.kind == m.want
	}
	if len(sched) == 0 {
		return false
	}
	budget := failureBudget(sysCycles, len(sched))
	fc, _ = checkOne(img, g, m.system, power.NewAt(sched...), budget, m.cfg)
	return fc != nil && fc.kind == m.want
}

func cloneOps(ops []Op) []Op {
	out := make([]Op, len(ops))
	copy(out, ops)
	for i := range out {
		if out[i].Body != nil {
			out[i].Body = cloneOps(out[i].Body)
		}
	}
	return out
}

// without returns ops with [i, i+n) removed.
func without(ops []Op, i, n int) []Op {
	out := make([]Op, 0, len(ops)-n)
	out = append(out, ops[:i]...)
	return append(out, ops[i+n:]...)
}

// minimizeList ddmin-shrinks one op slice: first remove chunks of halving
// size, then per-element structural simplifications (unwrap loop/call
// bodies, shrink bodies recursively, collapse loop counts to 1). test must
// treat its argument as immutable.
func (m *minimizer) minimizeList(ops []Op, test func([]Op) bool) []Op {
	for chunk := (len(ops) + 1) / 2; chunk >= 1; chunk /= 2 {
		for i := 0; i+chunk <= len(ops); {
			cand := without(ops, i, chunk)
			if test(cand) {
				ops = cand
			} else {
				i += chunk
			}
		}
	}
	for i := 0; i < len(ops); i++ {
		if len(ops[i].Body) == 0 {
			continue
		}
		// Unwrap: replace the loop/call with its body inline.
		cand := make([]Op, 0, len(ops)+len(ops[i].Body)-1)
		cand = append(cand, ops[:i]...)
		cand = append(cand, ops[i].Body...)
		cand = append(cand, ops[i+1:]...)
		if test(cand) {
			ops = cand
			i--
			continue
		}
		if ops[i].Kind == OpLoop && ops[i].V > 1 {
			c := cloneOps(ops)
			c[i].V = 1
			if test(c) {
				ops = c
			}
		}
		idx := i
		body := m.minimizeList(cloneOps(ops[idx].Body), func(b []Op) bool {
			c := cloneOps(ops)
			c[idx].Body = b
			return test(c)
		})
		c := cloneOps(ops)
		c[idx].Body = body
		ops = c
	}
	return ops
}

// minimizeSchedule drops failure instants while the finding reproduces,
// trying the empty schedule first (many findings — WAR violations above
// all — reproduce failure-free).
func (m *minimizer) minimizeSchedule(ops []Op, sched []uint64) []uint64 {
	if len(sched) == 0 {
		return nil
	}
	if m.reproduces(ops, nil) {
		return nil
	}
	for i := 0; i < len(sched); {
		cand := make([]uint64, 0, len(sched)-1)
		cand = append(cand, sched[:i]...)
		cand = append(cand, sched[i+1:]...)
		if len(cand) > 0 && m.reproduces(ops, cand) {
			sched = cand
		} else {
			i++
		}
	}
	return sched
}

// Minimize delta-debugs a finding's program and failure schedule down to a
// smaller reproducer of the same kind on the same system. The result has
// Minimized set and Instructions filled with the rendered text length; the
// detail is re-derived from the minimized reproduction. Findings without a
// program (raw artifact replays) are returned unchanged.
func Minimize(f Finding, cfg Config) Finding {
	if f.Prog == nil {
		return f
	}
	cfg = cfg.normalized()
	m := &minimizer{
		system: f.System,
		want:   f.Kind,
		cfg:    cfg,
		seed:   f.Prog.Seed,
		params: f.Prog.Params,
		remain: minimizeBudget,
	}

	ops := cloneOps(f.Prog.Ops)
	sched := append([]uint64(nil), f.Schedule...)
	if !m.reproduces(ops, sched) {
		// Not deterministic under this oracle configuration (or budget
		// exhausted immediately); keep the original finding.
		return f
	}
	ops = m.minimizeList(ops, func(c []Op) bool { return m.reproduces(c, sched) })
	sched = m.minimizeSchedule(ops, sched)
	ops = m.minimizeList(ops, func(c []Op) bool { return m.reproduces(c, sched) })

	out := f
	out.Prog = &Prog{Seed: f.Prog.Seed, Params: f.Prog.Params, Ops: ops}
	out.Schedule = sched
	out.Minimized = true
	minimizedTotal.Add(1)

	// Re-derive the detail (and instruction count) from the minimized
	// program so the artifact describes what it actually contains.
	if img, err := out.Prog.Render(); err == nil {
		out.Instructions = img.Text.Len()
		if g, err := golden(img, cfg); err == nil {
			fc, sysCycles := checkOne(img, g, f.System, nil, failFreeMaxCycles, cfg)
			if fc == nil && len(sched) > 0 {
				fc, _ = checkOne(img, g, f.System, power.NewAt(sched...), failureBudget(sysCycles, len(sched)), cfg)
			}
			if fc != nil {
				out.Kind = fc.kind
				out.Detail = fc.detail
			}
		}
	}
	return out
}
