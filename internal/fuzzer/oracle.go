package fuzzer

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"

	"nacho/internal/emu"
	"nacho/internal/harness"
	"nacho/internal/mem"
	"nacho/internal/power"
	"nacho/internal/program"
	"nacho/internal/sim"
	"nacho/internal/systems"
	"nacho/internal/telemetry"
	"nacho/internal/verify"
)

// Config parameterizes the differential oracle.
type Config struct {
	// CacheSize/Ways configure the systems under test (defaults: the
	// paper's headline 512 B, 2-way).
	CacheSize int
	Ways      int
	// Schedules is the number of randomized finite failure schedules tried
	// per (program, system) pair, on top of the always-run failure-free
	// differential (default 3).
	Schedules int
	// Engine pins every oracle run to one execution engine (the zero value
	// picks the fastest correct one). The oracle's comparisons are
	// engine-invariant; this knob exists to fuzz a specific engine against
	// the golden run. Callers validate external input with emu.ParseEngine.
	Engine emu.Engine
	// Span, when non-zero, parents every oracle run's span on the campaign
	// tracer (the fuzz campaign sets it to the seed's cell span). Purely
	// observational.
	Span telemetry.SpanID
}

func (c Config) normalized() Config {
	if c.CacheSize == 0 {
		c.CacheSize = 512
	}
	if c.Ways == 0 {
		c.Ways = 2
	}
	if c.Schedules == 0 {
		c.Schedules = 3
	}
	return c
}

// DefaultKinds is the oracle's standard system matrix: every evaluated
// system with crash-consistency machinery (the Volatile baseline is the
// golden reference, not a subject).
func DefaultKinds() []systems.Kind {
	return []systems.Kind{
		systems.KindNACHO, systems.KindNaiveNACHO, systems.KindOracleNACHO,
		systems.KindClank, systems.KindPROWL, systems.KindReplayCache,
	}
}

// FindingKind classifies a divergence.
type FindingKind string

// The oracle's finding taxonomy.
const (
	// FindingRunError: the run aborted (trap, stack-guard hit, verifier
	// error surfaced by the harness, ...).
	FindingRunError FindingKind = "run-error"
	// FindingBudget: the run exceeded its cycle budget — forward progress
	// lost under a finite failure schedule.
	FindingBudget FindingKind = "cycle-budget"
	// FindingShadow: a load returned a value diverging from the exact
	// shadow memory.
	FindingShadow FindingKind = "shadow-mismatch"
	// FindingWAR: a physical NVM write-back hit a read-dominated location.
	FindingWAR FindingKind = "war-violation"
	// FindingResult: exit code, reported result word, or final registers
	// diverged from the golden run.
	FindingResult FindingKind = "result-divergence"
	// FindingNVM: final NVM data-segment bytes diverged from the golden run.
	FindingNVM FindingKind = "nvm-divergence"
)

// Finding is one confirmed divergence: the program, the system it diverged
// on, the failure schedule that provoked it, and what diverged.
type Finding struct {
	Seed     int64        `json:"seed"`
	System   systems.Kind `json:"system"`
	Kind     FindingKind  `json:"kind"`
	Detail   string       `json:"detail"`
	Prog     *Prog        `json:"prog,omitempty"`
	Schedule []uint64     `json:"schedule,omitempty"` // failure instants; nil = failure-free

	// Minimized marks a finding that went through Minimize; Instructions is
	// the rendered text length of the (possibly minimized) program.
	Minimized    bool `json:"minimized,omitempty"`
	Instructions int  `json:"instructions,omitempty"`
}

// String renders the finding as one deterministic report line.
func (f Finding) String() string {
	s := fmt.Sprintf("seed=%d system=%s kind=%s detail=%q", f.Seed, f.System, f.Kind, f.Detail)
	if len(f.Schedule) > 0 {
		s += fmt.Sprintf(" schedule=%v", f.Schedule)
	}
	if f.Minimized {
		s += fmt.Sprintf(" minimized=%d-instructions", f.Instructions)
	}
	return s
}

// Budgets. Failure-free runs get a flat generous ceiling (generated
// programs are structurally terminating, so hitting it means an emulator or
// renderer bug). Failure-injected runs get a budget derived from the
// system's own failure-free runtime: with n finite failure instants the
// worst case re-executes the whole program once per failure, so anything
// beyond (runtime + slack) * (n + 2) has lost forward progress.
const (
	failFreeMaxCycles   = 400_000_000
	fuzzMaxInstructions = 8_000_000
	budgetSlackCycles   = 50_000
)

func failureBudget(sysCycles uint64, nFailures int) uint64 {
	return (sysCycles + budgetSlackCycles) * uint64(nFailures+2)
}

// goldenRun is the reference outcome: the Volatile baseline's failure-free
// result plus the final bytes of every non-text segment.
type goldenRun struct {
	res  emu.Result
	data []segBytes
}

type segBytes struct {
	addr  uint32
	bytes []byte
}

func baseConfig(cfg Config) harness.RunConfig {
	return harness.RunConfig{
		CacheSize:       cfg.CacheSize,
		Ways:            cfg.Ways,
		Engine:          cfg.Engine,
		FinalFlush:      true,
		MaxInstructions: fuzzMaxInstructions,
		MaxCycles:       failFreeMaxCycles,
		Span:            cfg.Span,
	}
}

// imageSpace reconstructs the initial memory image, the starting point for
// the verifier's shadow.
func imageSpace(img *program.Image) *mem.Space {
	s := mem.NewSpace()
	for _, seg := range img.Segments {
		s.LoadBytes(seg.Addr, seg.Data)
	}
	return s
}

// finalSegments reads the post-run bytes of every non-text segment out of
// the system's memory. Only data segments are compared: the checkpoint area
// and stack region legitimately differ between recovery models.
func finalSegments(img *program.Image, m sim.MemReaderWriter) []segBytes {
	var out []segBytes
	for _, seg := range img.Segments {
		if seg.Addr == program.TextBase {
			continue
		}
		b := make([]byte, len(seg.Data))
		for i := range b {
			b[i] = byte(m.ReadRaw(seg.Addr+uint32(i), 1))
		}
		out = append(out, segBytes{addr: seg.Addr, bytes: b})
	}
	return out
}

// golden runs the program failure-free on the Volatile baseline.
func golden(img *program.Image, cfg Config) (*goldenRun, error) {
	oracleRuns.Add(1)
	res, sys, err := harness.RunImageSys(img, systems.KindVolatile, baseConfig(cfg), false)
	if err != nil {
		return nil, err
	}
	return &goldenRun{res: res, data: finalSegments(img, sys.Mem())}, nil
}

// findingCore is the classification of one divergent run.
type findingCore struct {
	kind   FindingKind
	detail string
}

// checkOne runs img on kind under sched (nil = failure-free) with the given
// cycle budget, comparing the outcome against the golden run. It returns
// the first divergence (nil if none) and the run's cycle count.
func checkOne(img *program.Image, g *goldenRun, kind systems.Kind, sched power.Schedule, budget uint64, cfg Config) (*findingCore, uint64) {
	oracleRuns.Add(1)
	rc := baseConfig(cfg)
	rc.Schedule = sched
	rc.MaxCycles = budget
	ver := verify.New(imageSpace(img), systems.VerifyConfigFor(kind))
	rc.Probe = ver

	res, sys, err := harness.RunImageSys(img, kind, rc, false)
	if err == nil {
		if v := ver.Violations(); len(v) > 0 {
			k := FindingShadow
			if v[0].Kind == verify.WARViolation {
				k = FindingWAR
			}
			return &findingCore{k, v[0].String()}, res.Counters.Cycles
		}
	}
	var m sim.MemReaderWriter
	if sys != nil {
		m = sys.Mem()
	}
	return diffAgainstGolden(res, err, m, g, budget), res.Counters.Cycles
}

// diffAgainstGolden classifies one completed run against the golden run:
// run errors (budget exhaustion separated out), then exit code, result word,
// final registers, and final NVM data-segment bytes. Shadow/WAR violations
// are the caller's concern — probe-free forked runs have no verifier, while
// from-boot confirmation runs classify through theirs first.
func diffAgainstGolden(res emu.Result, err error, m sim.MemReaderWriter, g *goldenRun, budget uint64) *findingCore {
	if err != nil {
		if errors.Is(err, emu.ErrCycleBudget) {
			return &findingCore{FindingBudget, fmt.Sprintf("no termination within %d cycles", budget)}
		}
		return &findingCore{FindingRunError, err.Error()}
	}
	if res.ExitCode != g.res.ExitCode {
		return &findingCore{FindingResult, fmt.Sprintf("exit code %d, golden %d", res.ExitCode, g.res.ExitCode)}
	}
	if res.Result != g.res.Result {
		return &findingCore{FindingResult, fmt.Sprintf("result 0x%08x, golden 0x%08x", res.Result, g.res.Result)}
	}
	if res.FinalRegs != g.res.FinalRegs {
		return &findingCore{FindingResult, regDiff(res.FinalRegs, g.res.FinalRegs)}
	}
	for _, seg := range g.data {
		for i, want := range seg.bytes {
			if got := byte(m.ReadRaw(seg.addr+uint32(i), 1)); got != want {
				return &findingCore{FindingNVM, fmt.Sprintf("NVM byte 0x%08x = 0x%02x, golden 0x%02x", seg.addr+uint32(i), got, want)}
			}
		}
	}
	return nil
}

func regDiff(got, want sim.Snapshot) string {
	if got.PC != want.PC {
		return fmt.Sprintf("final pc 0x%08x, golden 0x%08x", got.PC, want.PC)
	}
	for i := range got.Regs {
		if got.Regs[i] != want.Regs[i] {
			return fmt.Sprintf("final x%d = 0x%08x, golden 0x%08x", i+1, got.Regs[i], want.Regs[i])
		}
	}
	return "final registers diverged"
}

// kindSalt folds a system name into the schedule RNG seed so each system
// sees different failure instants for the same program.
func kindSalt(kind systems.Kind) int64 {
	h := fnv.New64a()
	h.Write([]byte(kind))
	return int64(h.Sum64())
}

// randomSchedule draws 1-6 failure instants inside the system's measured
// failure-free runtime (plus a 25% tail so late failures — during the halt
// sequence and final flush — are exercised too). Finite instants guarantee
// termination: after the last one the run is failure-free.
func randomSchedule(rng *rand.Rand, sysCycles uint64) power.At {
	span := sysCycles + sysCycles/4
	if span < 16 {
		span = 16
	}
	n := 1 + rng.Intn(6)
	instants := make([]uint64, n)
	for i := range instants {
		instants[i] = 1 + uint64(rng.Int63n(int64(span)))
	}
	return power.NewAt(instants...)
}

// checkSystem runs the full per-system oracle: the failure-free
// differential first (which also measures the runtime that scales the
// schedules and budgets), then cfg.Schedules randomized failure schedules.
// At most one finding per system is reported — the first divergence.
func checkSystem(img *program.Image, g *goldenRun, prog *Prog, kind systems.Kind, cfg Config) *Finding {
	fc, sysCycles := checkOne(img, g, kind, nil, failFreeMaxCycles, cfg)
	if fc != nil {
		return &Finding{Seed: prog.Seed, System: kind, Kind: fc.kind, Detail: fc.detail, Prog: prog}
	}
	rng := rand.New(rand.NewSource(prog.Seed ^ kindSalt(kind)))
	for i := 0; i < cfg.Schedules; i++ {
		sched := randomSchedule(rng, sysCycles)
		budget := failureBudget(sysCycles, len(sched.Instants()))
		if fc, _ := checkOne(img, g, kind, sched, budget, cfg); fc != nil {
			return &Finding{Seed: prog.Seed, System: kind, Kind: fc.kind, Detail: fc.detail, Prog: prog, Schedule: sched.Instants()}
		}
	}
	return nil
}

// Check runs the differential oracle for one generated program across the
// given systems. The returned error reports infrastructure problems (the
// program failed to render or to run on the Volatile baseline); findings
// report genuine divergences, at most one per system.
func Check(prog *Prog, kinds []systems.Kind, cfg Config) ([]Finding, error) {
	cfg = cfg.normalized()
	img, err := prog.Render()
	if err != nil {
		return nil, err
	}
	g, err := golden(img, cfg)
	if err != nil {
		return nil, fmt.Errorf("fuzzer: seed %d golden run: %w", prog.Seed, err)
	}
	var out []Finding
	for _, kind := range kinds {
		if f := checkSystem(img, g, prog, kind, cfg); f != nil {
			findingsTotal.Add(1)
			out = append(out, *f)
		}
	}
	return out, nil
}

// CheckRawSchedule runs the oracle for one program on one system under a
// failure schedule decoded from raw fuzz-engine bytes (power.FromBytes),
// with each instant folded into the system's measured runtime window. The
// native fuzz harnesses use it so the engine controls both the program
// shape and the failure instants.
func CheckRawSchedule(prog *Prog, kind systems.Kind, cfg Config, raw []byte) (*Finding, error) {
	cfg = cfg.normalized()
	img, err := prog.Render()
	if err != nil {
		return nil, err
	}
	g, err := golden(img, cfg)
	if err != nil {
		return nil, fmt.Errorf("fuzzer: seed %d golden run: %w", prog.Seed, err)
	}
	fc, sysCycles := checkOne(img, g, kind, nil, failFreeMaxCycles, cfg)
	if fc != nil {
		findingsTotal.Add(1)
		return &Finding{Seed: prog.Seed, System: kind, Kind: fc.kind, Detail: fc.detail, Prog: prog}, nil
	}
	span := sysCycles + sysCycles/4
	if span < 16 {
		span = 16
	}
	var instants []uint64
	for _, inst := range power.FromBytes(raw).Instants() {
		instants = append(instants, 1+inst%span)
	}
	if len(instants) == 0 {
		return nil, nil
	}
	sched := power.NewAt(instants...)
	budget := failureBudget(sysCycles, len(sched.Instants()))
	if fc, _ := checkOne(img, g, kind, sched, budget, cfg); fc != nil {
		findingsTotal.Add(1)
		return &Finding{Seed: prog.Seed, System: kind, Kind: fc.kind, Detail: fc.detail, Prog: prog, Schedule: sched.Instants()}, nil
	}
	return nil, nil
}
