package fuzzer

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"nacho/internal/systems"
)

// matrixSeeds returns the seed count for the deterministic property-test
// matrix, trimmed under -short.
func matrixSeeds(t *testing.T) int {
	if testing.Short() {
		return 8
	}
	return 24
}

func TestGenerateDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		a, b := Generate(seed), Generate(seed)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: Generate is not deterministic", seed)
		}
		ia, err := a.Render()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		ib, err := b.Render()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !reflect.DeepEqual(ia.Segments, ib.Segments) {
			t.Fatalf("seed %d: Render is not deterministic", seed)
		}
	}
}

// TestRenderedProgramsWellFormed: every generated program must run to a
// clean exit on the Volatile baseline — that is the precondition the whole
// differential oracle rests on.
func TestRenderedProgramsWellFormed(t *testing.T) {
	for seed := int64(1); seed <= int64(2*matrixSeeds(t)); seed++ {
		prog := Generate(seed)
		img, err := prog.Render()
		if err != nil {
			t.Fatalf("seed %d render: %v", seed, err)
		}
		g, err := golden(img, Config{}.normalized())
		if err != nil {
			t.Fatalf("seed %d golden: %v", seed, err)
		}
		if g.res.ExitCode != 0 {
			t.Errorf("seed %d: exit code %d, want 0", seed, g.res.ExitCode)
		}
	}
}

// TestDifferentialMatrix is the deterministic property-test matrix of the
// issue: N seeds x all systems x (failure-free + randomized schedules).
// Any finding is a real crash-consistency bug in the system under test.
func TestDifferentialMatrix(t *testing.T) {
	kinds := DefaultKinds()
	for seed := int64(1); seed <= int64(matrixSeeds(t)); seed++ {
		fs, err := Check(Generate(seed), kinds, Config{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, f := range fs {
			t.Errorf("seed %d: %s", seed, f)
		}
	}
}

// findBrokenPW scans seeds until the deliberately broken NACHO produces a
// finding; the generator is tuned so this happens within a few seeds.
func findBrokenPW(t *testing.T) Finding {
	t.Helper()
	for seed := int64(1); seed <= 60; seed++ {
		fs, err := Check(Generate(seed), []systems.Kind{systems.KindNACHOBrokenPW}, Config{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(fs) > 0 {
			return fs[0]
		}
	}
	t.Fatal("broken-pw NACHO produced no finding in 60 seeds; the oracle cannot detect a broken WAR protocol")
	panic("unreachable")
}

// TestBrokenPWDetectedMinimizedReplayed is the issue's acceptance
// criterion: a deliberately broken NACHO (inverted pw-bit check) yields a
// finding that minimizes to at most 20 instructions and replays
// deterministically from its artifact.
func TestBrokenPWDetectedMinimizedReplayed(t *testing.T) {
	f := findBrokenPW(t)
	min := Minimize(f, Config{})
	if !min.Minimized {
		t.Fatal("Minimize did not mark the finding as minimized")
	}
	if min.Kind != f.Kind {
		t.Fatalf("minimization changed the finding kind: %s -> %s", f.Kind, min.Kind)
	}
	if min.Instructions == 0 || min.Instructions > 20 {
		t.Fatalf("minimized to %d instructions, want 1..20", min.Instructions)
	}

	dir := t.TempDir()
	a, err := NewArtifact(min, Config{})
	if err != nil {
		t.Fatal(err)
	}
	path, err := a.Write(dir)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadArtifact(path)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := loaded.Replay()
	if err != nil {
		t.Fatal(err)
	}
	if r1 == nil {
		t.Fatal("artifact did not reproduce the finding")
	}
	if r1.Kind != min.Kind || r1.System != min.System {
		t.Fatalf("replay reproduced %s on %s, want %s on %s", r1.Kind, r1.System, min.Kind, min.System)
	}
	r2, err := loaded.Replay()
	if err != nil {
		t.Fatal(err)
	}
	if r2 == nil || r1.String() != r2.String() {
		t.Fatalf("replay is not deterministic:\n  %v\n  %v", r1, r2)
	}
}

func TestMinimizeDeterministic(t *testing.T) {
	f := findBrokenPW(t)
	a := Minimize(f, Config{})
	b := Minimize(f, Config{})
	if a.String() != b.String() {
		t.Fatalf("Minimize is not deterministic:\n  %s\n  %s", a, b)
	}
	if !reflect.DeepEqual(a.Prog.Ops, b.Prog.Ops) {
		t.Fatal("Minimize produced different op trees for the same finding")
	}
}

// TestHealthyNACHOSurvivesMinimalWARIdiom pins the canonical WAR eviction
// pattern directly: read-modify-write a line, then evict it through two
// same-set fills. Correct NACHO must checkpoint the unsafe eviction; the
// broken variant must write it straight back and trip the exact tracker.
func TestHealthyNACHOSurvivesMinimalWARIdiom(t *testing.T) {
	prog := &Prog{
		Seed:   1,
		Params: Params{Ops: 4, BufWords: 140, MaxLoop: 1, MaxDepth: 0},
		Ops: []Op{
			{Kind: OpRMW, R: 0, V: 0},
			{Kind: OpLoad, R: 1, S: 2, V: 256},
			{Kind: OpLoad, R: 2, S: 2, V: 512},
		},
	}
	fs, err := Check(prog, []systems.Kind{systems.KindNACHO, systems.KindNACHOBrokenPW}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	var healthy, broken []Finding
	for _, f := range fs {
		if f.System == systems.KindNACHO {
			healthy = append(healthy, f)
		} else {
			broken = append(broken, f)
		}
	}
	if len(healthy) != 0 {
		t.Errorf("correct NACHO diverged on the minimal WAR idiom: %v", healthy[0])
	}
	if len(broken) == 0 {
		t.Error("broken-pw NACHO survived the minimal WAR idiom")
	} else if broken[0].Kind != FindingWAR {
		t.Errorf("broken-pw finding kind = %s, want %s", broken[0].Kind, FindingWAR)
	}
}

func TestCheckRawScheduleHealthy(t *testing.T) {
	raws := [][]byte{
		{0x10, 0x00},
		{0x01, 0x00, 0x02, 0x00, 0x03, 0x00},
		{0xff, 0xff, 0x7f},
	}
	for seed := int64(1); seed <= 4; seed++ {
		for _, raw := range raws {
			f, err := CheckRawSchedule(Generate(seed), systems.KindNACHO, Config{}, raw)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			if f != nil {
				t.Errorf("seed %d raw %x: %s", seed, raw, f)
			}
		}
	}
}

func TestCampaignDeterministic(t *testing.T) {
	cfg := CampaignConfig{
		Seeds:    8,
		SeedBase: 100,
		Kinds:    []systems.Kind{systems.KindNACHO, systems.KindClank},
	}
	a := RunCampaign(cfg)
	b := RunCampaign(cfg)
	if a.String() != b.String() {
		t.Fatalf("campaign reports differ:\n%s\n---\n%s", a, b)
	}
	if a.Programs != cfg.Seeds {
		t.Errorf("campaign checked %d programs, want %d", a.Programs, cfg.Seeds)
	}
}

// TestCampaignWritesArtifacts: a campaign over the broken system must
// produce findings, minimize them, and leave replayable artifacts behind.
func TestCampaignWritesArtifacts(t *testing.T) {
	dir := t.TempDir()
	rep := RunCampaign(CampaignConfig{
		Seeds:    10,
		SeedBase: 1,
		Kinds:    []systems.Kind{systems.KindNACHOBrokenPW},
		Minimize: true,
		OutDir:   dir,
	})
	if len(rep.Findings) == 0 {
		t.Fatal("no findings from the broken system in 10 seeds")
	}
	if len(rep.Artifact) != len(rep.Findings) {
		t.Fatalf("%d artifacts for %d findings", len(rep.Artifact), len(rep.Findings))
	}
	for _, p := range rep.Artifact {
		a, err := LoadArtifact(p)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		f, err := a.Replay()
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if f == nil {
			t.Errorf("%s did not reproduce", filepath.Base(p))
		}
	}
}

func TestArtifactTextAuthoritative(t *testing.T) {
	f := findBrokenPW(t)
	a, err := NewArtifact(f, Config{})
	if err != nil {
		t.Fatal(err)
	}
	img1, err := f.Prog.Render()
	if err != nil {
		t.Fatal(err)
	}
	img2, err := a.Image()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(img1.Text, img2.Text) {
		t.Fatal("artifact image text differs from the rendered program")
	}
	if !reflect.DeepEqual(img1.Segments, img2.Segments) {
		t.Fatal("artifact image segments differ from the rendered program")
	}
}

func TestLoadArtifactRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadArtifact(bad); err == nil {
		t.Error("LoadArtifact accepted malformed JSON")
	}
	if _, err := LoadArtifact(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("LoadArtifact accepted a missing file")
	}
	vers := filepath.Join(dir, "vers.json")
	if err := os.WriteFile(vers, []byte(`{"version": 99}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadArtifact(vers); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("LoadArtifact on wrong version: %v", err)
	}
}
