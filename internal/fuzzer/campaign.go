package fuzzer

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"nacho/internal/harness"
	"nacho/internal/systems"
	"nacho/internal/telemetry"
)

// CampaignConfig parameterizes one fuzzing campaign.
type CampaignConfig struct {
	// Seeds is the number of programs to generate, with seeds
	// SeedBase .. SeedBase+Seeds-1. With no Deadline the campaign is a pure
	// function of this configuration: same seeds, same findings report.
	Seeds    int
	SeedBase int64
	// Kinds are the systems under test (default: DefaultKinds).
	Kinds  []systems.Kind
	Oracle Config
	// Minimize delta-debugs every finding before reporting.
	Minimize bool
	// Exhaustive switches the per-seed oracle from randomized failure
	// schedules to exhaustive crash-instant enumeration over the first
	// Intervals checkpoint intervals, powered by snapshot forking
	// (CheckExhaustive).
	Exhaustive bool
	// Intervals bounds exhaustive enumeration (default 2; ignored unless
	// Exhaustive is set).
	Intervals int
	// Stride enumerates every Stride-th crash instant in exhaustive mode
	// (default 1: every instruction-granular instant).
	Stride uint64
	// OutDir, when non-empty, receives one replayable JSON artifact per
	// finding.
	OutDir string
	// Deadline, when non-zero, stops the campaign early: seeds not started
	// by then are skipped (the report counts how many actually ran, and is
	// no longer deterministic — use a pure seed count for that).
	Deadline time.Time
	// Progress, when non-nil, receives wall-clock timing (kept out of the
	// report itself so reports stay byte-comparable across runs).
	Progress io.Writer
}

// CampaignReport summarizes a campaign deterministically: findings are
// sorted by (seed, system) and contain no timing or host state.
type CampaignReport struct {
	Seeds    int
	SeedBase int64
	Programs int // programs actually checked (== Seeds unless a deadline cut it short)
	Kinds    []systems.Kind
	Findings []Finding
	Errors   []string // infrastructure errors (render/golden failures), sorted
	Artifact []string // artifact paths written, sorted
}

// String renders the deterministic findings report.
func (r *CampaignReport) String() string {
	var b strings.Builder
	kinds := make([]string, len(r.Kinds))
	for i, k := range r.Kinds {
		kinds[i] = string(k)
	}
	fmt.Fprintf(&b, "nachofuzz: %d seeds (base %d) x systems [%s]: %d programs checked, %d findings\n",
		r.Seeds, r.SeedBase, strings.Join(kinds, " "), r.Programs, len(r.Findings))
	for _, f := range r.Findings {
		fmt.Fprintf(&b, "FINDING %s\n", f)
	}
	for _, e := range r.Errors {
		fmt.Fprintf(&b, "ERROR %s\n", e)
	}
	for _, p := range r.Artifact {
		fmt.Fprintf(&b, "artifact %s\n", p)
	}
	return b.String()
}

// RunCampaign fans the seed range out across the harness worker pool and
// funnels every divergence through (optional) minimization and artifact
// writing. Every step is deterministic given the configuration; only the
// order of execution varies with the pool, and the report is sorted.
func RunCampaign(cfg CampaignConfig) *CampaignReport {
	start := time.Now()
	if len(cfg.Kinds) == 0 {
		cfg.Kinds = DefaultKinds()
	}
	cfg.Oracle = cfg.Oracle.normalized()
	rep := &CampaignReport{Seeds: cfg.Seeds, SeedBase: cfg.SeedBase, Kinds: cfg.Kinds}

	nw := harness.Workers()
	if nw > cfg.Seeds {
		nw = cfg.Seeds
	}
	if nw < 1 {
		nw = 1
	}
	var (
		mu       sync.Mutex
		wg       sync.WaitGroup
		seedCh   = make(chan int64)
		findings []Finding
		errs     []string
		programs int
		exStats  ExhaustiveStats
	)
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for seed := range seedCh {
				if !cfg.Deadline.IsZero() && time.Now().After(cfg.Deadline) {
					continue
				}
				programsTotal.Add(1)
				prog := Generate(seed)
				// One seed is one cell span on the campaign tracer; the
				// seed's oracle runs (and exhaustive windows) parent to it.
				tr := telemetry.ActiveTracer()
				var cell telemetry.SpanID
				if tr != nil {
					cell = tr.Begin(0, telemetry.SpanCell, fmt.Sprintf("seed %d", seed), "", "")
				}
				oracle := cfg.Oracle
				oracle.Span = cell
				var (
					fs  []Finding
					st  ExhaustiveStats
					err error
				)
				if cfg.Exhaustive {
					fs, st, err = CheckExhaustive(prog, cfg.Kinds, ExhaustiveConfig{
						Oracle: oracle, Intervals: cfg.Intervals, Stride: cfg.Stride, Span: cell,
					})
				} else {
					fs, err = Check(prog, cfg.Kinds, oracle)
				}
				tr.End(cell, uint64(len(fs)), uint64(seed), err != nil)
				mu.Lock()
				programs++
				findings = append(findings, fs...)
				exStats.Systems += st.Systems
				exStats.Windows += st.Windows
				exStats.Instants += st.Instants
				exStats.SimCycles += st.SimCycles
				exStats.BootCycles += st.BootCycles
				if err != nil {
					errs = append(errs, err.Error())
				}
				mu.Unlock()
			}
		}()
	}
	for i := 0; i < cfg.Seeds; i++ {
		seedCh <- cfg.SeedBase + int64(i)
	}
	close(seedCh)
	wg.Wait()

	sort.Slice(findings, func(i, j int) bool {
		if findings[i].Seed != findings[j].Seed {
			return findings[i].Seed < findings[j].Seed
		}
		return findings[i].System < findings[j].System
	})
	sort.Strings(errs)
	rep.Programs = programs
	rep.Errors = errs

	if cfg.Minimize {
		for i := range findings {
			findings[i] = Minimize(findings[i], cfg.Oracle)
		}
	}
	if cfg.OutDir != "" {
		for _, f := range findings {
			a, err := NewArtifact(f, cfg.Oracle)
			if err != nil {
				rep.Errors = append(rep.Errors, fmt.Sprintf("artifact for seed %d on %s: %v", f.Seed, f.System, err))
				continue
			}
			path, err := a.Write(cfg.OutDir)
			if err != nil {
				rep.Errors = append(rep.Errors, fmt.Sprintf("artifact for seed %d on %s: %v", f.Seed, f.System, err))
				continue
			}
			rep.Artifact = append(rep.Artifact, path)
		}
		sort.Strings(rep.Artifact)
	}
	rep.Findings = findings

	if cfg.Progress != nil {
		fmt.Fprintf(cfg.Progress, "timing: %d programs, %d oracle runs, %v wall time across %d workers\n",
			programs, oracleRuns.Load(), time.Since(start).Round(time.Millisecond), nw)
		if cfg.Exhaustive {
			fmt.Fprintf(cfg.Progress, "exhaustive: %d crash instants across %d windows, %.1fx speedup vs re-run-from-boot\n",
				exStats.Instants, exStats.Windows, exStats.Speedup())
		}
	}
	return rep
}
