package fuzzer

import (
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"nacho/internal/asm"
	"nacho/internal/emu"
	"nacho/internal/power"
	"nacho/internal/program"
	"nacho/internal/systems"
)

// Artifact is the on-disk, replayable form of a finding. The encoded text
// and data are authoritative — replay executes exactly these bytes, so an
// artifact keeps reproducing even if the generator's rendering conventions
// change. The op tree and listing ride along for human consumption and
// for re-minimization.
type Artifact struct {
	Version      int      `json:"version"`
	Seed         int64    `json:"seed"`
	System       string   `json:"system"`
	Kind         string   `json:"kind"`
	Detail       string   `json:"detail"`
	Schedule     []uint64 `json:"schedule,omitempty"`
	CacheSize    int      `json:"cache_size"`
	Ways         int      `json:"ways"`
	Instructions int      `json:"instructions"`
	Params       Params   `json:"params"`
	Ops          []Op     `json:"ops,omitempty"`
	Text         string   `json:"text"` // hex-encoded instruction words (authoritative)
	Data         string   `json:"data"` // hex-encoded initial data buffer
	Asm          []string `json:"asm,omitempty"`
}

// ArtifactVersion is written into new artifacts.
const ArtifactVersion = 1

// NewArtifact renders a finding into its replayable form.
func NewArtifact(f Finding, cfg Config) (*Artifact, error) {
	if f.Prog == nil {
		return nil, fmt.Errorf("fuzzer: finding has no program to render")
	}
	cfg = cfg.normalized()
	img, err := f.Prog.Render()
	if err != nil {
		return nil, err
	}
	var text, data []byte
	for _, seg := range img.Segments {
		if seg.Addr == program.TextBase {
			text = seg.Data
		} else if seg.Addr == program.DataBase {
			data = seg.Data
		}
	}
	listing, err := f.Prog.Listing()
	if err != nil {
		return nil, err
	}
	return &Artifact{
		Version:      ArtifactVersion,
		Seed:         f.Seed,
		System:       string(f.System),
		Kind:         string(f.Kind),
		Detail:       f.Detail,
		Schedule:     append([]uint64(nil), f.Schedule...),
		CacheSize:    cfg.CacheSize,
		Ways:         cfg.Ways,
		Instructions: img.Text.Len(),
		Params:       f.Prog.Params,
		Ops:          f.Prog.Ops,
		Text:         hex.EncodeToString(text),
		Data:         hex.EncodeToString(data),
		Asm:          listing,
	}, nil
}

// Image reassembles the artifact's executable image from the authoritative
// text and data bytes.
func (a *Artifact) Image() (*program.Image, error) {
	text, err := hex.DecodeString(a.Text)
	if err != nil {
		return nil, fmt.Errorf("fuzzer: artifact text: %w", err)
	}
	data, err := hex.DecodeString(a.Data)
	if err != nil {
		return nil, fmt.Errorf("fuzzer: artifact data: %w", err)
	}
	if len(text) == 0 || len(text)%4 != 0 {
		return nil, fmt.Errorf("fuzzer: artifact text length %d is not a positive word multiple", len(text))
	}
	decoded, err := emu.DecodeText(text)
	if err != nil {
		return nil, fmt.Errorf("fuzzer: artifact text: %w", err)
	}
	return &program.Image{
		Program:  &program.Program{Name: fmt.Sprintf("artifact-seed%d", a.Seed), Description: "fuzz finding replay"},
		Segments: []asm.Segment{{Addr: program.TextBase, Data: text}, {Addr: program.DataBase, Data: data}},
		Text:     decoded,
		Entry:    program.TextBase,
	}, nil
}

// Replay re-executes the artifact: golden run on Volatile, then the
// recorded system under the recorded schedule. It returns the reproduced
// finding, or nil if the artifact no longer diverges (i.e. the bug it
// captured is fixed). Replay is fully deterministic.
func (a *Artifact) Replay() (*Finding, error) {
	img, err := a.Image()
	if err != nil {
		return nil, err
	}
	cfg := Config{CacheSize: a.CacheSize, Ways: a.Ways}.normalized()
	g, err := golden(img, cfg)
	if err != nil {
		return nil, fmt.Errorf("fuzzer: artifact golden run: %w", err)
	}
	kind := systems.Kind(a.System)
	fc, sysCycles := checkOne(img, g, kind, nil, failFreeMaxCycles, cfg)
	sched := append([]uint64(nil), a.Schedule...)
	if fc == nil && len(sched) > 0 {
		fc, _ = checkOne(img, g, kind, power.NewAt(sched...), failureBudget(sysCycles, len(sched)), cfg)
	}
	if fc == nil {
		return nil, nil
	}
	return &Finding{
		Seed:         a.Seed,
		System:       kind,
		Kind:         fc.kind,
		Detail:       fc.detail,
		Schedule:     sched,
		Minimized:    true,
		Instructions: a.Instructions,
	}, nil
}

// Filename is the artifact's canonical file name.
func (a *Artifact) Filename() string {
	return fmt.Sprintf("%s-%s-seed%d.json", a.Kind, a.System, a.Seed)
}

// Write stores the artifact under dir (created if needed) and returns the
// full path.
func (a *Artifact) Write(dir string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	b, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return "", err
	}
	path := filepath.Join(dir, a.Filename())
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		return "", err
	}
	artifactsTotal.Add(1)
	return path, nil
}

// LoadArtifact reads an artifact written by Write.
func LoadArtifact(path string) (*Artifact, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var a Artifact
	if err := json.Unmarshal(b, &a); err != nil {
		return nil, fmt.Errorf("fuzzer: %s: %w", path, err)
	}
	if a.Version != ArtifactVersion {
		return nil, fmt.Errorf("fuzzer: %s: unsupported artifact version %d", path, a.Version)
	}
	return &a, nil
}

// DecodeFuzzInput derives a generated program and a raw failure-schedule
// byte string from fuzz-engine bytes. The first 8 bytes seed the generator,
// the next two bound the op count and buffer size (so the engine can steer
// the program shape without round-tripping through the seed), and the rest
// become failure instants via power.FromBytes. Inputs shorter than 8 bytes
// are padded with zeros.
func DecodeFuzzInput(b []byte) (*Prog, []byte) {
	var buf [8]byte
	copy(buf[:], b)
	seed := int64(binary.LittleEndian.Uint64(buf[:]))
	rest := b[min(len(b), 8):]
	p := Params{Ops: 12, BufWords: 140, MaxLoop: 4, MaxDepth: 2}
	if len(rest) > 0 {
		p.Ops = 1 + int(rest[0])%24
		rest = rest[1:]
	}
	if len(rest) > 0 {
		p.BufWords = 16 + int(rest[0])%240
		rest = rest[1:]
	}
	rng := newSeedRNG(seed)
	return GenerateWith(seed, p, rng), rest
}
