package fuzzer

import (
	"reflect"
	"strings"
	"testing"

	"nacho/internal/emu"
	"nacho/internal/harness"
	"nacho/internal/power"
	"nacho/internal/sim"
	"nacho/internal/snapshot"
	"nacho/internal/systems"
)

// tinyProg generates a deliberately small program so full-density (Stride=1)
// enumeration stays tractable.
func tinyProg(seed int64) *Prog {
	return GenerateWith(seed, Params{Ops: 6, BufWords: 64, MaxLoop: 2, MaxDepth: 1}, newSeedRNG(seed))
}

// TestExhaustiveFullDensityForkBootEquivalence is the exhaustive-mode half
// of the acceptance criterion: every instruction-granular crash instant in
// the first two checkpoint intervals of small generated programs produces a
// forked outcome byte-identical (result, error string, final NVM data) to
// a from-boot run under the same one-instant schedule.
func TestExhaustiveFullDensityForkBootEquivalence(t *testing.T) {
	cfg := Config{CacheSize: 64, Ways: 2}.normalized()
	kinds := []systems.Kind{systems.KindNACHO, systems.KindClank, systems.KindReplayCache}
	seeds := []int64{1, 2, 3}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		prog := tinyProg(seed)
		img, err := prog.Render()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		g, err := golden(img, cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, kind := range kinds {
			_, sysCycles := checkOne(img, g, kind, nil, failFreeMaxCycles, cfg)
			budget := failureBudget(sysCycles, 1)
			rcBase := baseConfig(cfg)
			rcBase.MaxCycles = budget
			nm := func(sched power.Schedule, probe sim.Probe) (*emu.Machine, error) {
				rc := rcBase
				rc.Schedule = sched
				rc.Probe = probe
				m, _, err := harness.BuildMachine(img, kind, rc)
				return m, err
			}
			n := 0
			stats, err := snapshot.Explore(nm, snapshot.Options{Windows: 2, Stride: 1, Workers: 4},
				func(o snapshot.Outcome) bool {
					n++
					bm, err := nm(power.NewAt(o.Instant), nil)
					if err != nil {
						t.Fatalf("seed %d %s instant %d: %v", seed, kind, o.Instant, err)
					}
					bres, berr := bm.Run()
					if (o.Err == nil) != (berr == nil) || (o.Err != nil && o.Err.Error() != berr.Error()) {
						t.Fatalf("seed %d %s instant %d: error diverged: fork=%v boot=%v", seed, kind, o.Instant, o.Err, berr)
					}
					if !reflect.DeepEqual(o.Res, bres) {
						t.Fatalf("seed %d %s instant %d: result diverged:\nfork %+v\nboot %+v", seed, kind, o.Instant, o.Res, bres)
					}
					fd := finalSegments(img, o.Sys.Mem())
					bd := finalSegments(img, bm.System().Mem())
					if !reflect.DeepEqual(fd, bd) {
						t.Fatalf("seed %d %s instant %d: final NVM diverged", seed, kind, o.Instant)
					}
					return n < 3000 // runaway guard; tiny programs stay well under
				})
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, kind, err)
			}
			if stats.Instants == 0 {
				t.Fatalf("seed %d %s: explored zero instants", seed, kind)
			}
		}
	}
}

// findBrokenPWByEnumeration scans seeds until pure crash-instant
// enumeration — probe-free forks compared differentially against the golden
// run, no verifier involved — catches the deliberately broken NACHO. The
// verifier would flag the unsafe write-back failure-free (the random
// oracle's test covers that); this drives the sweep itself to prove
// enumeration finds the post-crash state corruption, then confirms the
// instant from boot exactly as CheckExhaustive does.
func findBrokenPWByEnumeration(t *testing.T, cfg Config, intervals int) Finding {
	t.Helper()
	kind := systems.KindNACHOBrokenPW
	for seed := int64(1); seed <= 60; seed++ {
		prog := Generate(seed)
		img, err := prog.Render()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		g, err := golden(img, cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		_, sysCycles := checkOne(img, g, kind, nil, failFreeMaxCycles, cfg)
		budget := failureBudget(sysCycles, 1)
		rcBase := baseConfig(cfg)
		rcBase.MaxCycles = budget
		nm := func(sched power.Schedule, probe sim.Probe) (*emu.Machine, error) {
			rc := rcBase
			rc.Schedule = sched
			rc.Probe = probe
			m, _, err := harness.BuildMachine(img, kind, rc)
			return m, err
		}
		var finding *Finding
		_, err = snapshot.Explore(nm, snapshot.Options{Windows: intervals, Workers: 4},
			func(o snapshot.Outcome) bool {
				if diffAgainstGolden(o.Res, o.Err, o.Sys.Mem(), g, budget) == nil {
					return true
				}
				cfc, _ := checkOne(img, g, kind, power.NewAt(o.Instant), budget, cfg)
				if cfc == nil {
					t.Fatalf("seed %d instant %d: fork diverged but from-boot replay did not", seed, o.Instant)
				}
				finding = &Finding{Seed: seed, System: kind, Kind: cfc.kind, Detail: cfc.detail, Prog: prog, Schedule: []uint64{o.Instant}}
				return false
			})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if finding != nil {
			return *finding
		}
	}
	t.Fatal("crash-instant enumeration produced no broken-pw finding in 60 seeds")
	panic("unreachable")
}

// TestExhaustiveDetectsBrokenPW is the acceptance criterion: exhaustive
// crash-instant enumeration catches the planted WAR bug (inverted pw-bit
// check) and the finding carries a one-instant schedule that minimizes and
// replays from its artifact.
func TestExhaustiveDetectsBrokenPW(t *testing.T) {
	cfg := ExhaustiveConfig{Oracle: Config{CacheSize: 64}, Intervals: 4}.normalized()
	f := findBrokenPWByEnumeration(t, cfg.Oracle, cfg.Intervals)
	if len(f.Schedule) != 1 {
		t.Fatalf("finding schedule %v, want exactly one instant", f.Schedule)
	}

	min := Minimize(f, cfg.Oracle)
	if !min.Minimized {
		t.Fatal("Minimize did not mark the finding as minimized")
	}
	a, err := NewArtifact(min, cfg.Oracle)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path, err := a.Write(dir)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadArtifact(path)
	if err != nil {
		t.Fatal(err)
	}
	r, err := loaded.Replay()
	if err != nil {
		t.Fatal(err)
	}
	if r == nil {
		t.Fatal("exhaustive finding's artifact did not reproduce")
	}
}

// TestCheckExhaustiveFlagsBrokenPW: the full CheckExhaustive pipeline also
// reports the planted bug (here via its failure-free differential, which
// runs before enumeration and carries the verifier).
func TestCheckExhaustiveFlagsBrokenPW(t *testing.T) {
	cfg := ExhaustiveConfig{Oracle: Config{CacheSize: 64}}
	for seed := int64(1); seed <= 60; seed++ {
		fs, _, err := CheckExhaustive(Generate(seed), []systems.Kind{systems.KindNACHOBrokenPW}, cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(fs) > 0 {
			return
		}
	}
	t.Fatal("CheckExhaustive produced no broken-pw finding in 60 seeds")
}

// TestCampaignExhaustiveDeterministic: the exhaustive campaign's findings
// report is a pure function of its configuration, and the progress stream
// reports the measured speedup.
func TestCampaignExhaustiveDeterministic(t *testing.T) {
	run := func() (*CampaignReport, string) {
		var progress strings.Builder
		rep := RunCampaign(CampaignConfig{
			Seeds:      2,
			SeedBase:   1,
			Kinds:      []systems.Kind{systems.KindNACHO},
			Oracle:     Config{CacheSize: 64},
			Exhaustive: true,
			Intervals:  1,
			Stride:     3,
			Progress:   &progress,
		})
		return rep, progress.String()
	}
	r1, p1 := run()
	r2, _ := run()
	if r1.String() != r2.String() {
		t.Fatalf("exhaustive campaign is not deterministic:\n%s\n%s", r1, r2)
	}
	if !strings.Contains(p1, "exhaustive:") || !strings.Contains(p1, "speedup") {
		t.Fatalf("progress stream missing exhaustive speedup line:\n%s", p1)
	}
}

// exhaustiveMustNotFind asserts a healthy system survives full enumeration
// of its first intervals — the oracle's false-positive guard.
func TestExhaustiveHealthySystemsClean(t *testing.T) {
	prog := tinyProg(7)
	fs, stats, err := CheckExhaustive(prog, []systems.Kind{systems.KindNACHO, systems.KindWriteThrough},
		ExhaustiveConfig{Oracle: Config{CacheSize: 64}})
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 0 {
		t.Fatalf("healthy systems produced findings: %v", fs)
	}
	if stats.Instants == 0 || stats.Systems != 2 {
		t.Fatalf("implausible stats: %+v", stats)
	}
}
