package fuzzer

import (
	"testing"

	"nacho/internal/systems"
)

// The native fuzz harnesses decode the engine's byte string into generator
// parameters plus a failure schedule (see DecodeFuzzInput): the first 8
// bytes seed the program generator, the next two steer its shape, and the
// tail becomes failure instants via power.FromBytes. Coverage-guided
// mutation therefore explores program structure and failure timing
// together. Any reported finding is a real crash-consistency bug.

// fuzzOne runs the byte-decoded differential oracle against one system.
func fuzzOne(t *testing.T, b []byte, kind systems.Kind) {
	prog, raw := DecodeFuzzInput(b)
	f, err := CheckRawSchedule(prog, kind, Config{}, raw)
	if err != nil {
		// Infrastructure failure (the program did not survive the Volatile
		// baseline) — a generator bug, not a crash-consistency finding.
		t.Fatalf("seed %d: %v", prog.Seed, err)
	}
	if f != nil {
		t.Errorf("crash-consistency finding: %s", f)
	}
}

// FuzzDifferentialNACHO fuzzes the paper's headline system.
func FuzzDifferentialNACHO(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x05, 0, 0, 0, 0, 0, 0, 0, 0x0c, 0x8c, 0x40, 0x00, 0x80, 0x01})
	f.Add([]byte{0x24, 0, 0, 0, 0, 0, 0, 0, 0x18, 0x40, 0x10, 0x00, 0x20, 0x00, 0x30, 0x00})
	f.Fuzz(func(t *testing.T, b []byte) {
		fuzzOne(t, b, systems.KindNACHO)
	})
}

// FuzzAllSystems fuzzes the full comparison matrix.
func FuzzAllSystems(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x07, 0, 0, 0, 0, 0, 0, 0, 0x10, 0x8c, 0x08, 0x00, 0x40, 0x00})
	f.Fuzz(func(t *testing.T, b []byte) {
		for _, kind := range DefaultKinds() {
			fuzzOne(t, b, kind)
		}
	})
}
