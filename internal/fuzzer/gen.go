// Package fuzzer implements the crash-consistency fuzzing subsystem: a
// seeded random RV32IM program generator plus a differential oracle that
// runs every generated program on the Volatile baseline (failure-free) and
// on each memory system under randomized power-failure schedules, comparing
// final NVM state, architectural registers, the reported result, and the
// shadow-memory/WAR verdicts of the exact verifier. Divergences are
// findings; findings are delta-debugged down to replayable JSON artifacts.
//
// The paper's safety claim — that NACHO's two-bit WAR protocol and stack
// tracking preserve memory consistency under arbitrary power failures —
// is only as strong as the access patterns that exercise it. The generator
// is deliberately biased toward the idioms that break intermittent systems:
// read-modify-write on the same address (WAR hazards), buffers revisited
// across loop iterations (eviction pressure on few cache sets), and
// call/return with dead frames (stack-tracking coverage).
package fuzzer

import (
	"encoding/binary"
	"fmt"
	"math/rand"

	"nacho/internal/asm"
	"nacho/internal/emu"
	"nacho/internal/isa"
	"nacho/internal/program"
)

// Params bound the shape of one generated program.
type Params struct {
	// Ops is the number of top-level operations in the program body.
	Ops int `json:"ops"`
	// BufWords is the size of the in-NVM data buffer, in 32-bit words. Small
	// buffers concentrate accesses onto few cache sets, maximizing eviction
	// and WAR pressure.
	BufWords int `json:"buf_words"`
	// MaxLoop caps loop iteration counts, bounding total work (generated
	// programs terminate by construction: loops count down, calls don't
	// recurse).
	MaxLoop int `json:"max_loop"`
	// MaxDepth caps loop nesting (at most 3: one saved register per level).
	MaxDepth int `json:"max_depth"`
}

func (p Params) normalized() Params {
	clamp := func(v, lo, hi int) int {
		if v < lo {
			return lo
		}
		if v > hi {
			return hi
		}
		return v
	}
	p.Ops = clamp(p.Ops, 1, 64)
	p.BufWords = clamp(p.BufWords, 4, 256)
	p.MaxLoop = clamp(p.MaxLoop, 1, 16)
	p.MaxDepth = clamp(p.MaxDepth, 0, len(loopRegs))
	return p
}

// OpKind enumerates the generator's operation alphabet. Programs are trees
// of Ops rather than flat instruction lists so the minimizer can delete or
// unwrap whole structured regions and every candidate still renders to a
// well-formed program (no dangling branch targets).
type OpKind int

// The operation alphabet.
const (
	OpSetReg OpKind = iota // load a constant into a scratch register
	OpALU                  // three-register ALU/mul/div operation
	OpLoad                 // load from the data buffer
	OpStore                // store to the data buffer
	OpRMW                  // in-place read-modify-write of one buffer word
	OpLoop                 // bounded counted loop around Body
	OpCall                 // call a function containing Body
)

// Op is one node of a generated program. R, S, T index the scratch-register
// pool; V carries the operation's value (constant, buffer offset, ALU
// selector, or loop count); Body holds nested operations for loops/calls.
type Op struct {
	Kind OpKind `json:"k"`
	R    int    `json:"r,omitempty"`
	S    int    `json:"s,omitempty"`
	T    int    `json:"t,omitempty"`
	V    int64  `json:"v,omitempty"`
	Body []Op   `json:"body,omitempty"`
}

// Prog is one generated program: the seed and parameters that produced it
// plus its operation tree. Rendering is a pure function of this value.
type Prog struct {
	Seed   int64  `json:"seed"`
	Params Params `json:"params"`
	Ops    []Op   `json:"ops"`
}

// Register conventions of rendered programs:
//
//	s0          buffer base (program.DataBase)
//	s1, s2, s3  loop counters, by nesting depth
//	t0-t6, a0-a7  scratch pool (Op.R/S/T index into this)
//
// Functions save ra and the loop counters, so call bodies may loop freely.
var (
	scratchRegs = []isa.Reg{
		isa.T0, isa.T1, isa.T2, isa.T3, isa.T4, isa.T5, isa.T6,
		isa.A0, isa.A1, isa.A2, isa.A3, isa.A4, isa.A5, isa.A6, isa.A7,
	}
	loopRegs = []isa.Reg{isa.S1, isa.S2, isa.S3}
	aluOps   = []isa.Op{
		isa.ADD, isa.SUB, isa.XOR, isa.OR, isa.AND, isa.SLT, isa.SLTU,
		isa.MUL, isa.SLL, isa.SRL, isa.SRA, isa.DIV, isa.REM,
	}
)

func newSeedRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// RandomParams draws program-shape parameters from rng.
func RandomParams(rng *rand.Rand) Params {
	return Params{
		Ops: 6 + rng.Intn(24),
		// 256 B - 1 KiB: buffers up to twice the default 512 B cache, so
		// conflict misses (and therefore dirty evictions, the WAR protocol's
		// decision point) actually occur.
		BufWords: 64 + rng.Intn(193),
		MaxLoop:  1 + rng.Intn(5),
		MaxDepth: 1 + rng.Intn(3),
	}
}

// Generate builds the program for one seed: parameters and operation tree
// both derive from the seed, so equal seeds yield identical programs.
func Generate(seed int64) *Prog {
	rng := rand.New(rand.NewSource(seed))
	return GenerateWith(seed, RandomParams(rng), rng)
}

// GenerateWith builds a program with explicit parameters, drawing the
// operation tree from rng. The native fuzz harnesses use it to let the
// fuzz engine steer the shape independently of the tree.
func GenerateWith(seed int64, p Params, rng *rand.Rand) *Prog {
	p = p.normalized()
	return &Prog{Seed: seed, Params: p, Ops: genOps(rng, p, p.Ops, 0, false)}
}

// offsetV draws a buffer offset clustered on a 64-byte grid (with a small
// byte jitter for sub-word accesses). With 64 cache sets of 4-byte lines,
// uniformly random offsets almost never put three accesses in one set
// between two checkpoints; the grid folds a kilobyte buffer onto a handful
// of sets, so evictions — the WAR protocol's decision point — are routine.
func offsetV(rng *rand.Rand) int64 {
	return int64(rng.Intn(16))*64 + int64(rng.Intn(4))
}

// genOps draws n operations at the given loop depth. inCall suppresses
// nested calls (rendered functions must not recurse — termination is
// structural, not checked).
func genOps(rng *rand.Rand, p Params, n, depth int, inCall bool) []Op {
	ops := make([]Op, 0, n)
	for i := 0; i < n; i++ {
		roll := rng.Intn(100)
		switch {
		case roll < 12:
			ops = append(ops, Op{Kind: OpSetReg, R: rng.Intn(len(scratchRegs)), V: int64(int32(rng.Uint32()))})
		case roll < 26:
			ops = append(ops, Op{
				Kind: OpALU,
				R:    rng.Intn(len(scratchRegs)), S: rng.Intn(len(scratchRegs)), T: rng.Intn(len(scratchRegs)),
				V: int64(rng.Intn(len(aluOps))),
			})
		case roll < 46:
			ops = append(ops, Op{Kind: OpLoad, R: rng.Intn(len(scratchRegs)), S: rng.Intn(3), V: offsetV(rng)})
		case roll < 66:
			ops = append(ops, Op{Kind: OpStore, R: rng.Intn(len(scratchRegs)), S: rng.Intn(3), V: offsetV(rng)})
		case roll < 80:
			ops = append(ops, Op{Kind: OpRMW, R: rng.Intn(len(scratchRegs)), V: offsetV(rng)})
		case roll < 93 && depth < p.MaxDepth:
			ops = append(ops, Op{
				Kind: OpLoop,
				V:    int64(1 + rng.Intn(p.MaxLoop)),
				Body: genOps(rng, p, 1+rng.Intn(5), depth+1, inCall),
			})
		case !inCall:
			ops = append(ops, Op{Kind: OpCall, Body: genOps(rng, p, 1+rng.Intn(6), 0, true)})
		default:
			ops = append(ops, Op{Kind: OpRMW, R: rng.Intn(len(scratchRegs)), V: rng.Int63()})
		}
	}
	return ops
}

// renderer lowers an op tree to a flat instruction list. Calls are emitted
// as JAL placeholders and their bodies collected; after the main body's
// halt sequence the functions are appended and the JALs patched.
type renderer struct {
	bufBytes int
	maxLoop  int64
	instrs   []isa.Instr
	calls    []callSite
	funcs    [][]Op
}

type callSite struct{ at, fn int }

func (r *renderer) emit(in isa.Instr) { r.instrs = append(r.instrs, in) }

// li loads a 32-bit constant via the standard lui/addi split.
func (r *renderer) li(rd isa.Reg, v int32) {
	lo := v << 20 >> 20 // sign-extended low 12 bits
	hi := uint32(v) - uint32(lo)
	if hi != 0 {
		r.emit(isa.Instr{Op: isa.LUI, Rd: rd, Imm: int32(hi)})
		if lo != 0 {
			r.emit(isa.Instr{Op: isa.ADDI, Rd: rd, Rs1: rd, Imm: lo})
		}
		return
	}
	r.emit(isa.Instr{Op: isa.ADDI, Rd: rd, Rs1: isa.Zero, Imm: lo})
}

// bufOffset folds an arbitrary V into an in-bounds, size-aligned buffer
// offset, so every rendered access stays inside the data segment no matter
// what the minimizer or fuzz engine put in V.
func (r *renderer) bufOffset(v int64, size int) int32 {
	off := int(v % int64(r.bufBytes))
	if off < 0 {
		off = -off
	}
	off &^= size - 1
	if off+size > r.bufBytes {
		off = 0
	}
	return int32(off)
}

func (r *renderer) renderOps(ops []Op, depth int, inFunc bool) {
	for _, op := range ops {
		r.renderOp(op, depth, inFunc)
	}
}

func (r *renderer) renderOp(op Op, depth int, inFunc bool) {
	nScratch := len(scratchRegs)
	reg := func(i int) isa.Reg {
		if i < 0 {
			i = -i
		}
		return scratchRegs[i%nScratch]
	}
	switch op.Kind {
	case OpSetReg:
		r.li(reg(op.R), int32(op.V))
	case OpALU:
		sel := op.V
		if sel < 0 {
			sel = -sel
		}
		r.emit(isa.Instr{Op: aluOps[sel%int64(len(aluOps))], Rd: reg(op.R), Rs1: reg(op.S), Rs2: reg(op.T)})
	case OpLoad:
		sizes := [3]int{1, 2, 4}
		loads := [3]isa.Op{isa.LBU, isa.LHU, isa.LW}
		i := op.S
		if i < 0 {
			i = -i
		}
		i %= 3
		r.emit(isa.Instr{Op: loads[i], Rd: reg(op.R), Rs1: isa.S0, Imm: r.bufOffset(op.V, sizes[i])})
	case OpStore:
		sizes := [3]int{1, 2, 4}
		stores := [3]isa.Op{isa.SB, isa.SH, isa.SW}
		i := op.S
		if i < 0 {
			i = -i
		}
		i %= 3
		r.emit(isa.Instr{Op: stores[i], Rs1: isa.S0, Rs2: reg(op.R), Imm: r.bufOffset(op.V, sizes[i])})
	case OpRMW:
		// The canonical WAR idiom: load a word, mutate it, store it back.
		off := r.bufOffset(op.V, 4)
		t := reg(op.R)
		r.emit(isa.Instr{Op: isa.LW, Rd: t, Rs1: isa.S0, Imm: off})
		delta := int32(1 + (op.V>>3)&0x3ff)
		r.emit(isa.Instr{Op: isa.ADDI, Rd: t, Rs1: t, Imm: delta})
		r.emit(isa.Instr{Op: isa.SW, Rs1: isa.S0, Rs2: t, Imm: off})
	case OpLoop:
		if depth >= len(loopRegs) {
			// No counter register left: render the body once, unlooped.
			r.renderOps(op.Body, depth, inFunc)
			return
		}
		cnt := op.V
		if cnt < 1 {
			cnt = 1
		}
		if cnt > r.maxLoop {
			cnt = r.maxLoop
		}
		lr := loopRegs[depth]
		r.emit(isa.Instr{Op: isa.ADDI, Rd: lr, Rs1: isa.Zero, Imm: int32(cnt)})
		head := len(r.instrs)
		r.renderOps(op.Body, depth+1, inFunc)
		r.emit(isa.Instr{Op: isa.ADDI, Rd: lr, Rs1: lr, Imm: -1})
		r.emit(isa.Instr{Op: isa.BNE, Rs1: lr, Rs2: isa.Zero, Imm: int32(head-len(r.instrs)) * 4})
	case OpCall:
		if inFunc {
			// Functions never call: inline the body instead.
			r.renderOps(op.Body, depth, inFunc)
			return
		}
		r.calls = append(r.calls, callSite{at: len(r.instrs), fn: len(r.funcs)})
		r.funcs = append(r.funcs, op.Body)
		r.emit(isa.Instr{Op: isa.JAL, Rd: isa.RA}) // Imm patched in pass 2
	}
}

// renderFunc emits one called function. The prologue spills ra and the loop
// counters plus two dead scratch values — the dead stores give NACHO's
// stack tracking real frames to drop — and the body restarts loop depth at
// zero against the saved counters.
func (r *renderer) renderFunc(body []Op) int {
	entry := len(r.instrs)
	r.emit(isa.Instr{Op: isa.ADDI, Rd: isa.SP, Rs1: isa.SP, Imm: -32})
	saves := []struct {
		reg isa.Reg
		off int32
	}{{isa.RA, 28}, {isa.S1, 24}, {isa.S2, 20}, {isa.S3, 16}, {isa.T0, 12}, {isa.T1, 8}}
	for _, s := range saves {
		r.emit(isa.Instr{Op: isa.SW, Rs1: isa.SP, Rs2: s.reg, Imm: s.off})
	}
	r.renderOps(body, 0, true)
	for _, s := range saves[:4] { // t0/t1 stay dead: frame dies unread
		r.emit(isa.Instr{Op: isa.LW, Rd: s.reg, Rs1: isa.SP, Imm: s.off})
	}
	r.emit(isa.Instr{Op: isa.ADDI, Rd: isa.SP, Rs1: isa.SP, Imm: 32})
	r.emit(isa.Instr{Op: isa.JALR, Rd: isa.Zero, Rs1: isa.RA})
	return entry
}

// Render lowers the program to an executable image against the standard
// memory layout: text at program.TextBase, the data buffer at
// program.DataBase (deterministically initialized from the seed), entry at
// the first text word. The halt sequence reports the current a0 through the
// RESULT MMIO word and exits with status 0.
func (p *Prog) Render() (*program.Image, error) {
	params := p.Params.normalized()
	r := &renderer{bufBytes: params.BufWords * 4, maxLoop: int64(params.MaxLoop)}

	r.li(isa.S0, int32(program.DataBase))
	r.renderOps(p.Ops, 0, false)
	r.emit(isa.Instr{Op: isa.LUI, Rd: isa.T0, Imm: int32(emu.MMIOBase)})
	r.emit(isa.Instr{Op: isa.SW, Rs1: isa.T0, Rs2: isa.A0, Imm: emu.ResultAddr - emu.MMIOBase})
	r.emit(isa.Instr{Op: isa.SW, Rs1: isa.T0, Rs2: isa.Zero, Imm: emu.ExitAddr - emu.MMIOBase})

	entries := make([]int, len(r.funcs))
	for i, body := range r.funcs {
		entries[i] = r.renderFunc(body)
	}
	for _, c := range r.calls {
		r.instrs[c.at].Imm = int32(entries[c.fn]-c.at) * 4
	}

	text := make([]byte, 4*len(r.instrs))
	for i, in := range r.instrs {
		w, err := isa.Encode(in)
		if err != nil {
			return nil, fmt.Errorf("fuzzer: seed %d instr %d (%v): %w", p.Seed, i, in, err)
		}
		binary.LittleEndian.PutUint32(text[4*i:], w)
	}
	// Round-trip through the real decoder so img.Text is exactly what a
	// loader would execute (sign conventions and all).
	decoded, err := emu.DecodeText(text)
	if err != nil {
		return nil, fmt.Errorf("fuzzer: seed %d: %w", p.Seed, err)
	}

	data := make([]byte, r.bufBytes)
	x := uint32(p.Seed)
	if x == 0 {
		x = 0x9E3779B9
	}
	for i := 0; i < len(data); i += 4 {
		x = program.XorShift32(x)
		binary.LittleEndian.PutUint32(data[i:], x)
	}

	return &program.Image{
		Program:  &program.Program{Name: fmt.Sprintf("fuzz-seed%d", p.Seed), Description: "fuzzer-generated"},
		Segments: []asm.Segment{{Addr: program.TextBase, Data: text}, {Addr: program.DataBase, Data: data}},
		Text:     decoded,
		Entry:    program.TextBase,
	}, nil
}

// Listing disassembles the rendered program, one line per instruction.
func (p *Prog) Listing() ([]string, error) {
	img, err := p.Render()
	if err != nil {
		return nil, err
	}
	out := make([]string, img.Text.Len())
	for i, in := range img.Text.Instrs {
		out[i] = fmt.Sprintf("%08x: %s", program.TextBase+uint32(4*i), in)
	}
	return out, nil
}
