// Package profiling wires the standard -cpuprofile/-memprofile (and
// -mutexprofile/-blockprofile) flags into the command-line tools, so
// simulator hot spots (the execution engine above all) and worker-pool
// contention can be inspected with `go tool pprof` without a test harness.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Profiles names the output file for each supported profile kind; an empty
// path skips that profile.
type Profiles struct {
	CPU   string // pprof CPU samples over the whole run
	Mem   string // live-heap profile written at exit
	Mutex string // mutex-contention profile (SetMutexProfileFraction(1))
	Block string // blocking profile (SetBlockProfileRate(1))
}

// Enabled reports whether any profile was requested; callers skip Start (and
// the deferred stop) entirely when it is false.
func (p Profiles) Enabled() bool {
	return p.CPU != "" || p.Mem != "" || p.Mutex != "" || p.Block != ""
}

// Start begins the requested profiles. The returned stop function flushes
// and closes them and must be called exactly once before the process exits
// (deferring it in main is the intended use). The mutex and block profiles
// sample at full rate for the duration of the run — the right setting for
// diagnosing worker-pool contention in finite benchmark campaigns, where the
// sampling overhead is irrelevant next to simulation time.
func Start(p Profiles) (stop func() error, err error) {
	var cpuFile *os.File
	if p.CPU != "" {
		cpuFile, err = os.Create(p.CPU)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
	}
	if p.Mutex != "" {
		runtime.SetMutexProfileFraction(1)
	}
	if p.Block != "" {
		runtime.SetBlockProfileRate(1)
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
		}
		if p.Mutex != "" {
			runtime.SetMutexProfileFraction(0)
			if err := writeLookup("mutex", p.Mutex); err != nil {
				return err
			}
		}
		if p.Block != "" {
			runtime.SetBlockProfileRate(0)
			if err := writeLookup("block", p.Block); err != nil {
				return err
			}
		}
		if p.Mem != "" {
			f, err := os.Create(p.Mem)
			if err != nil {
				return err
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("mem profile: %w", err)
			}
		}
		return nil
	}, nil
}

// writeLookup dumps a named runtime profile to path.
func writeLookup(name, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := pprof.Lookup(name).WriteTo(f, 0); err != nil {
		f.Close()
		return fmt.Errorf("%s profile: %w", name, err)
	}
	return f.Close()
}
