// Package profiling wires the standard -cpuprofile/-memprofile flags into
// the command-line tools, so simulator hot spots (the execution engine above
// all) can be inspected with `go tool pprof` without a test harness.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling to cpuPath and arranges for a heap profile at
// memPath; either path may be empty to skip that profile. The returned stop
// function flushes and closes the profiles and must be called exactly once
// before the process exits (deferring it in main is the intended use).
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return err
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("mem profile: %w", err)
			}
		}
		return nil
	}, nil
}
