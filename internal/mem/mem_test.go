package mem

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"nacho/internal/metrics"
	"nacho/internal/sim"
)

func TestSpaceReadWriteSizes(t *testing.T) {
	s := NewSpace()
	s.Write(0x100, 4, 0xAABBCCDD)
	cases := []struct {
		addr uint32
		size int
		want uint32
	}{
		{0x100, 4, 0xAABBCCDD},
		{0x100, 1, 0xDD}, // little-endian
		{0x101, 1, 0xCC},
		{0x102, 1, 0xBB},
		{0x103, 1, 0xAA},
		{0x100, 2, 0xCCDD},
		{0x102, 2, 0xAABB},
	}
	for _, c := range cases {
		if got := s.Read(c.addr, c.size); got != c.want {
			t.Errorf("Read(%#x, %d) = %#x, want %#x", c.addr, c.size, got, c.want)
		}
	}
	// Sub-word write merges.
	s.Write(0x101, 1, 0x11)
	if got := s.Read(0x100, 4); got != 0xAABB11DD {
		t.Errorf("after byte write, word = %#x, want 0xAABB11DD", got)
	}
	s.Write(0x102, 2, 0x2233)
	if got := s.Read(0x100, 4); got != 0x223311DD {
		t.Errorf("after half write, word = %#x, want 0x223311DD", got)
	}
}

func TestSpaceZeroFill(t *testing.T) {
	s := NewSpace()
	if got := s.Read(0xFFFF_F000, 4); got != 0 {
		t.Errorf("untouched memory = %#x, want 0", got)
	}
}

func TestSpacePageBoundary(t *testing.T) {
	s := NewSpace()
	addr := uint32(pageSize - 2)
	s.Write(addr, 4, 0x11223344) // crosses page 0 -> 1
	if got := s.Read(addr, 4); got != 0x11223344 {
		t.Errorf("cross-page read = %#x, want 0x11223344", got)
	}
}

// Property: Space behaves like a flat map of bytes under random accesses.
func TestSpaceVersusMapModel(t *testing.T) {
	s := NewSpace()
	model := map[uint32]byte{}
	r := rand.New(rand.NewSource(7))
	sizes := []int{1, 2, 4}
	for i := 0; i < 50000; i++ {
		size := sizes[r.Intn(3)]
		addr := uint32(r.Intn(1 << 16))
		addr &^= uint32(size - 1)
		if r.Intn(2) == 0 {
			v := r.Uint32()
			s.Write(addr, size, v)
			for j := 0; j < size; j++ {
				model[addr+uint32(j)] = byte(v >> (8 * j))
			}
		} else {
			var want uint32
			for j := 0; j < size; j++ {
				want |= uint32(model[addr+uint32(j)]) << (8 * j)
			}
			if got := s.Read(addr, size); got != want {
				t.Fatalf("step %d: Read(%#x, %d) = %#x, want %#x", i, addr, size, got, want)
			}
		}
	}
}

func TestCloneAndEqual(t *testing.T) {
	s := NewSpace()
	s.Write(0x200, 4, 0xDEADBEEF)
	c := s.Clone()
	if addr, ok := s.Equal(c); !ok {
		t.Fatalf("clone differs at %#x", addr)
	}
	c.Write(0x204, 1, 1)
	addr, ok := s.Equal(c)
	if ok {
		t.Fatal("mutated clone reported equal")
	}
	if addr != 0x204 {
		t.Errorf("difference reported at %#x, want 0x204", addr)
	}
	// Asymmetric pages: write in one space only.
	d := NewSpace()
	d.Write(0x9000_0000, 1, 5)
	if _, ok := NewSpace().Equal(d); ok {
		t.Error("spaces with differing pages reported equal")
	}
	// A touched-but-zero page still equals an untouched space.
	e := NewSpace()
	e.Write(0x9000_0000, 1, 0)
	if _, ok := NewSpace().Equal(e); !ok {
		t.Error("zero-filled page should equal untouched space")
	}
}

func TestNVMAccountingAndLatency(t *testing.T) {
	clk := &sim.TestClock{}
	var c metrics.Counters
	n := NewNVM(NewSpace(), DefaultCostModel())
	n.Attach(clk, &c)

	n.Write(0x40, 4, 123)
	if clk.Cycle != 6 {
		t.Errorf("write latency = %d cycles, want 6", clk.Cycle)
	}
	if got := n.Read(0x40, 4); got != 123 {
		t.Errorf("read back %d, want 123", got)
	}
	if clk.Cycle != 12 {
		t.Errorf("after read, clock = %d, want 12", clk.Cycle)
	}
	n.Write(0x50, 1, 0xFF)
	if c.NVMWrites != 2 || c.NVMWriteBytes != 5 || c.NVMReads != 1 || c.NVMReadBytes != 4 {
		t.Errorf("counters = %+v", c)
	}
}

func TestNVMAsyncWriteUncharged(t *testing.T) {
	clk := &sim.TestClock{}
	var c metrics.Counters
	n := NewNVM(NewSpace(), DefaultCostModel())
	n.Attach(clk, &c)
	n.WriteAsync(0x80, 4, 7)
	if clk.Cycle != 0 {
		t.Errorf("async write charged %d cycles, want 0", clk.Cycle)
	}
	if c.NVMWrites != 1 || c.NVMWriteBytes != 4 {
		t.Errorf("async write not counted: %+v", c)
	}
	if n.ReadRaw(0x80, 4) != 7 {
		t.Error("async write value not visible")
	}
}

func TestNVMRawUncounted(t *testing.T) {
	clk := &sim.TestClock{}
	var c metrics.Counters
	n := NewNVM(NewSpace(), DefaultCostModel())
	n.Attach(clk, &c)
	n.WriteRaw(0x10, 4, 9)
	if n.ReadRaw(0x10, 4) != 9 {
		t.Error("raw round-trip failed")
	}
	if clk.Cycle != 0 || c.NVMWrites != 0 || c.NVMReads != 0 {
		t.Error("raw access charged or counted")
	}
}

func TestCheckAligned(t *testing.T) {
	cases := []struct {
		addr uint32
		size int
		ok   bool
	}{
		{0, 1, true}, {1, 1, true}, {3, 1, true},
		{0, 2, true}, {1, 2, false}, {2, 2, true},
		{0, 4, true}, {2, 4, false}, {4, 4, true},
		{0, 3, false}, {0, 8, false},
	}
	for _, c := range cases {
		err := CheckAligned(c.addr, c.size)
		if (err == nil) != c.ok {
			t.Errorf("CheckAligned(%#x, %d) err=%v, want ok=%v", c.addr, c.size, err, c.ok)
		}
	}
	var ae *AlignmentError
	if err := CheckAligned(2, 4); err != nil {
		ae = err.(*AlignmentError)
		if ae.Addr != 2 || ae.Size != 4 {
			t.Errorf("alignment error fields: %+v", ae)
		}
		if ae.Error() == "" {
			t.Error("empty error string")
		}
	}
}

func TestCostModelCycles(t *testing.T) {
	m := DefaultCostModel()
	if m.ClockHz != 50_000_000 || m.HitCycles != 2 || m.NVMCycles != 6 {
		t.Errorf("unexpected default cost model: %+v", m)
	}
	if got := m.CyclesForMillis(5); got != 250_000 {
		t.Errorf("CyclesForMillis(5) = %d, want 250000", got)
	}
	if got := m.CyclesForMillis(0.5); got != 25_000 {
		t.Errorf("CyclesForMillis(0.5) = %d, want 25000", got)
	}
}

// Property: Clone is always equal to its source.
func TestCloneEqualQuick(t *testing.T) {
	f := func(writes []uint32) bool {
		s := NewSpace()
		for _, w := range writes {
			s.Write(w&0xFFFF, 1, w>>16)
		}
		_, ok := s.Equal(s.Clone())
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestForkCopyOnWrite pins the COW discipline: forks see the parent's
// contents, writes on either side are invisible to the other, and page
// refcounts return to sole ownership once every sharer has diverged.
func TestForkCopyOnWrite(t *testing.T) {
	s := NewSpace()
	s.Write(0x1000, 4, 0xAABBCCDD)
	s.Write(0x5000, 4, 0x11223344)

	f := s.Fork()
	if v := f.Read(0x1000, 4); v != 0xAABBCCDD {
		t.Fatalf("fork read 0x%08x, want parent contents", v)
	}

	// Parent writes after the fork must not leak into the fork, and vice
	// versa — in both orders, on both shared and fresh pages.
	s.Write(0x1000, 4, 0xDEADBEEF)
	if v := f.Read(0x1000, 4); v != 0xAABBCCDD {
		t.Fatalf("parent write leaked into fork: 0x%08x", v)
	}
	f.Write(0x5000, 4, 0x99999999)
	if v := s.Read(0x5000, 4); v != 0x11223344 {
		t.Fatalf("fork write leaked into parent: 0x%08x", v)
	}
	f.Write(0x9000, 1, 0x42)
	if v := s.Read(0x9000, 1); v != 0 {
		t.Fatalf("fork write to fresh page leaked into parent: 0x%02x", v)
	}

	// Untouched pages remain shared; every touched page is exclusively owned
	// again by whoever kept it.
	for _, sp := range []*Space{s, f} {
		for k, p := range sp.pages {
			if refs := p.refs.Load(); refs < 1 {
				t.Fatalf("page %#x refcount %d < 1", k, refs)
			}
		}
	}
	if s.pages[0x1000>>pageBits] == f.pages[0x1000>>pageBits] {
		t.Fatal("diverged page still shared")
	}
}

// TestForkChainAndAbandon covers grandchild forks and abandoned forks: a
// chain of forks all alias one page, and dropping intermediate forks must
// not disturb survivors (no explicit release — GC reclaims).
func TestForkChainAndAbandon(t *testing.T) {
	a := NewSpace()
	a.Write(0x2000, 4, 7)
	b := a.Fork()
	c := b.Fork()
	b = nil // abandon the middle fork
	_ = b
	c.Write(0x2000, 4, 8)
	if v := a.Read(0x2000, 4); v != 7 {
		t.Fatalf("grandchild write reached root: %d", v)
	}
	if v := c.Read(0x2000, 4); v != 8 {
		t.Fatalf("grandchild lost its own write: %d", v)
	}
}

// TestForkConcurrentWriters drives many forks of one parent on separate
// goroutines, all writing the same shared pages, and checks isolation. Run
// under -race this also validates the refcount ordering argument in the page
// doc comment.
func TestForkConcurrentWriters(t *testing.T) {
	s := NewSpace()
	for a := uint32(0); a < 4*pageSize; a += 4 {
		s.Write(a, 4, a)
	}
	const n = 8
	var wg sync.WaitGroup
	forks := make([]*Space, n)
	for i := range forks {
		forks[i] = s.Fork()
	}
	for i, f := range forks {
		wg.Add(1)
		go func(i int, f *Space) {
			defer wg.Done()
			for a := uint32(0); a < 4*pageSize; a += 4 {
				f.Write(a, 4, uint32(i)+1000)
			}
		}(i, f)
	}
	wg.Wait()
	for a := uint32(0); a < 4*pageSize; a += 4 {
		if v := s.Read(a, 4); v != a {
			t.Fatalf("parent corrupted at 0x%x: %d", a, v)
		}
	}
	for i, f := range forks {
		if v := f.Read(0, 4); v != uint32(i)+1000 {
			t.Fatalf("fork %d lost its write: %d", i, v)
		}
	}
}

// TestForkConcurrentForkers takes many forks of one quiescent parent from
// separate goroutines at once — the snapshot explorer's fan-out pattern.
// Under -race this pins Fork as read-only on the parent (beyond the atomic
// refcounts). The parent writes first so its one-entry write cache is warm
// at fork time, then writes again after the forks: the stale cached page is
// shared now, and the post-fork write must copy it rather than leak through
// (the pageW refcount re-check).
func TestForkConcurrentForkers(t *testing.T) {
	s := NewSpace()
	for a := uint32(0); a < 2*pageSize; a += 4 {
		s.Write(a, 4, a^5)
	}
	const n = 8
	var wg sync.WaitGroup
	forks := make([]*Space, n)
	for i := range forks {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			f := s.Fork()
			f.Write(0, 4, uint32(i)+77)
			forks[i] = f
		}(i)
	}
	wg.Wait()
	s.Write(0, 4, 999) // write-cache entry from before the forks is stale
	for i, f := range forks {
		if v := f.Read(0, 4); v != uint32(i)+77 {
			t.Fatalf("fork %d lost its write: %d", i, v)
		}
		if v := f.Read(4, 4); v != 4^5 {
			t.Fatalf("fork %d shared page corrupted: %d", i, v)
		}
	}
	if v := s.Read(0, 4); v != 999 {
		t.Fatalf("parent lost its post-fork write: %d", v)
	}
}

// Property: a fork equals its parent until either writes.
func TestForkEqualQuick(t *testing.T) {
	f := func(writes []uint32) bool {
		s := NewSpace()
		for _, w := range writes {
			s.Write(w&0xFFFF, 1, w>>16)
		}
		_, ok := s.Equal(s.Fork())
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
