// Package mem implements the physical memory substrate: a sparse 32-bit byte-
// addressable space, the non-volatile main-memory model with access counting,
// and the access cost model of paper Section 5.2.
package mem

import (
	"fmt"
	"sync/atomic"

	"nacho/internal/metrics"
	"nacho/internal/sim"
)

// CostModel holds the latency parameters from paper Section 5.2: a 50 MHz
// core, a 2-cycle data-cache (SRAM) access, and a 6-cycle NVM access
// (125 ns rounded down).
type CostModel struct {
	ClockHz   uint64 // processor frequency
	HitCycles uint64 // data-cache hit / SRAM access latency
	NVMCycles uint64 // NVM word access latency
}

// DefaultCostModel returns the paper's evaluation parameters.
func DefaultCostModel() CostModel {
	return CostModel{ClockHz: 50_000_000, HitCycles: 2, NVMCycles: 6}
}

// CyclesForMillis converts milliseconds of on-time to cycles at the model's
// clock (used for power-failure schedules, Section 6.1.4).
func (m CostModel) CyclesForMillis(ms float64) uint64 {
	return uint64(ms * float64(m.ClockHz) / 1000)
}

const pageBits = 12 // 4 KiB pages
const pageSize = 1 << pageBits

// page is one refcounted 4 KiB block. refs counts how many Spaces reference
// the block; a Space may write a page in place only while it is the sole
// owner (refs == 1) and must copy-on-write otherwise. The count is atomic
// because forked Spaces run on separate goroutines: their only shared state
// is pages with refs > 1, which are immutable until the release/acquire pair
// of the copier's refs.Add(-1) and the next writer's refs.Load() hands
// exclusive ownership over.
type page struct {
	refs atomic.Int32
	data [pageSize]byte
}

func newPage() *page {
	p := new(page)
	p.refs.Store(1)
	return p
}

// Space is a sparse 32-bit byte-addressable memory. The zero value is an
// empty space; pages materialize zero-filled on first touch. Fork creates
// copy-on-write descendants that share page storage until written.
type Space struct {
	pages map[uint32]*page

	// One-entry page caches for the aligned unit accessors (LoadWord and
	// friends): emulated data accesses are overwhelmingly same-page, so one
	// key compare replaces the map lookup on the hot path. rPg is valid for
	// reading whenever non-nil; wPg additionally implies exclusive ownership
	// (refs == 1), so Fork must clear it. The per-byte ByteAt/SetByte path
	// deliberately bypasses the caches — it is the reference substrate —
	// but its copy-on-write must refresh any cached pointer it replaces
	// (see writablePage).
	rKey uint32
	rPg  *page
	wKey uint32
	wPg  *page
}

// NewSpace returns an empty memory space.
func NewSpace() *Space { return &Space{pages: make(map[uint32]*page)} }

// readPage returns the page holding addr for reading, materializing a
// zero-filled page on first touch.
func (s *Space) readPage(addr uint32) *page {
	key := addr >> pageBits
	p, ok := s.pages[key]
	if !ok {
		p = newPage()
		s.pages[key] = p
	}
	return p
}

// writablePage returns an exclusively owned page holding addr, copying a
// shared one first. The copy completes before the shared page's refcount is
// released, so a sibling that subsequently observes refs == 1 may write the
// original in place without racing the copy.
func (s *Space) writablePage(addr uint32) *page {
	key := addr >> pageBits
	p, ok := s.pages[key]
	if !ok {
		p = newPage()
		s.pages[key] = p
		return p
	}
	if p.refs.Load() > 1 {
		np := newPage()
		np.data = p.data
		p.refs.Add(-1)
		s.pages[key] = np
		// The mapping changed: any unit-accessor cache entry for this page
		// must follow it, or subsequent cached reads would observe the old
		// page after the fork that still references it starts writing.
		if s.rPg != nil && s.rKey == key {
			s.rPg = np
		}
		if s.wPg != nil && s.wKey == key {
			s.wPg = np
		}
		return np
	}
	return p
}

// pageR returns the page holding addr for reading through the one-entry
// read cache (the unit-accessor fast path).
func (s *Space) pageR(addr uint32) *page {
	key := addr >> pageBits
	if p := s.rPg; p != nil && s.rKey == key {
		return p
	}
	p := s.readPage(addr)
	s.rKey, s.rPg = key, p
	return p
}

// pageW returns an exclusively owned page holding addr through the one-entry
// write cache. A hit must re-check the refcount: a Fork since the last miss
// shares the cached page, and writing it in place would leak into the fork.
// (Fork itself must stay read-only on the parent — sibling forks are taken
// concurrently — so the staleness check lives here, on the owner's side.)
func (s *Space) pageW(addr uint32) *page {
	key := addr >> pageBits
	if p := s.wPg; p != nil && s.wKey == key && p.refs.Load() == 1 {
		return p
	}
	p := s.writablePage(addr)
	s.wKey, s.wPg = key, p
	if s.rKey == key {
		s.rPg = p
	}
	return p
}

// Fork returns a copy-on-write descendant sharing every current page with
// the parent. Either side's next write to a shared page copies it first, so
// the two spaces diverge independently; an abandoned fork needs no explicit
// release (unreferenced pages are garbage-collected, and the surviving side
// simply pays one copy for pages whose count never dropped back to 1).
func (s *Space) Fork() *Space {
	// Fork must not write the parent (beyond the atomic refcounts): the
	// snapshot explorer forks one frozen parent from many workers at once.
	// The parent's write cache goes stale here — every page becomes shared —
	// but pageW re-checks the refcount on hit, and the read cache stays
	// valid because shared pages are immutable until writablePage hands
	// ownership back (refreshing both caches).
	f := &Space{pages: make(map[uint32]*page, len(s.pages))}
	for k, p := range s.pages {
		p.refs.Add(1)
		f.pages[k] = p
	}
	return f
}

// ByteAt returns the byte at addr.
func (s *Space) ByteAt(addr uint32) byte {
	return s.readPage(addr).data[addr&(pageSize-1)]
}

// SetByte sets the byte at addr.
func (s *Space) SetByte(addr uint32, v byte) {
	s.writablePage(addr).data[addr&(pageSize-1)] = v
}

// Read returns size bytes (1, 2 or 4) at addr, little-endian, zero-extended.
// Accesses must be naturally aligned; crossing a page boundary is therefore
// impossible for aligned accesses but handled correctly anyway.
func (s *Space) Read(addr uint32, size int) uint32 {
	var v uint32
	for i := 0; i < size; i++ {
		v |= uint32(s.ByteAt(addr+uint32(i))) << (8 * i)
	}
	return v
}

// Write stores the low size bytes (1, 2 or 4) of val at addr, little-endian.
func (s *Space) Write(addr uint32, size int, val uint32) {
	for i := 0; i < size; i++ {
		s.SetByte(addr+uint32(i), byte(val>>(8*i)))
	}
}

// The page-exposure API below is the direct-port fast path: the AOT
// interpreter fetches a page's raw storage once through the cached
// pageR/pageW lookup and then reads and writes it directly, with no call per
// access (the Space-level accessors cannot inline — the miss-path call alone
// busts the inliner budget — so the interpreter keeps its own one-entry
// cache in loop-local state instead).

// PageBits is the page-size exponent (pages are 1<<PageBits bytes); PageMask
// masks an address down to its in-page offset.
const (
	PageBits = pageBits
	PageMask = pageSize - 1
)

// PageData is the raw backing storage of one page, in address order.
type PageData = [pageSize]byte

// ReadPage returns the storage of the page holding addr for reading,
// materializing a zero-filled page on first touch. The pointer is
// invalidated by the next copy-on-write of the page (any write through a
// forked sibling or through WritePage after a Fork): callers caching it must
// drop the cache whenever code they do not control may write or fork the
// space.
func (s *Space) ReadPage(addr uint32) *PageData { return &s.pageR(addr).data }

// WritePage returns exclusively owned storage of the page holding addr,
// copying a shared page first. Writing through the pointer is sound under
// the same regime as Space.Write until the next Fork; the caching caveat of
// ReadPage applies, and a cached ReadPage pointer to the same page must be
// re-fetched after WritePage (the copy-on-write may have replaced the
// storage).
func (s *Space) WritePage(addr uint32) *PageData { return &s.pageW(addr).data }

// LoadBytes copies data into the space starting at addr (program loading).
func (s *Space) LoadBytes(addr uint32, data []byte) {
	for i, b := range data {
		s.SetByte(addr+uint32(i), b)
	}
}

// Clone returns an independent copy of the space (used by the shadow-memory
// verifier to capture pristine initial state). It is a copy-on-write Fork:
// contents are identical and divergence is isolated, the storage is just
// shared until written.
func (s *Space) Clone() *Space { return s.Fork() }

// Equal reports whether two spaces hold identical contents, treating missing
// pages as zero-filled, and returns the first differing address if not.
func (s *Space) Equal(o *Space) (uint32, bool) {
	check := func(a, b *Space) (uint32, bool) {
		for k, p := range a.pages {
			q := b.pages[k]
			if q == p {
				continue // COW-shared page, trivially equal
			}
			for i := range p.data {
				var bv byte
				if q != nil {
					bv = q.data[i]
				}
				if p.data[i] != bv {
					return k<<pageBits | uint32(i), false
				}
			}
		}
		return 0, true
	}
	if addr, ok := check(s, o); !ok {
		return addr, false
	}
	return check(o, s)
}

// NVM models the non-volatile main memory: a Space whose every access is
// charged on the simulation clock and tallied in the run counters. Contents
// survive power failures by construction (nothing clears them).
type NVM struct {
	space *Space
	cost  CostModel
	clk   sim.Clock
	c     *metrics.Counters
	probe sim.Probe
}

// NewNVM wraps a space with the paper's NVM latency and accounting. The
// clock and counters are attached later via Attach (systems are constructed
// before the emulator exists).
func NewNVM(space *Space, cost CostModel) *NVM {
	return &NVM{space: space, cost: cost}
}

// Attach binds the NVM to a simulation clock and counter set.
func (n *NVM) Attach(clk sim.Clock, c *metrics.Counters) {
	n.clk = clk
	n.c = c
}

// AttachProbe wires an observer for charged NVM traffic (nil detaches).
func (n *NVM) AttachProbe(p sim.Probe) { n.probe = p }

// Now is the current simulation cycle, or 0 before Attach (used by owners
// that need a timestamp but hold no clock of their own).
func (n *NVM) Now() uint64 {
	if n.clk == nil {
		return 0
	}
	return n.clk.Now()
}

// Read performs a charged NVM read of size bytes.
func (n *NVM) Read(addr uint32, size int) uint32 {
	n.c.NVMReads++
	n.c.NVMReadBytes += uint64(size)
	n.clk.Advance(n.cost.NVMCycles)
	if n.probe != nil {
		n.probe.OnNVM(sim.NVMEvent{Cycle: n.clk.Now(), Addr: addr, Bytes: size})
	}
	return n.space.Read(addr, size)
}

// Write performs a charged NVM write of size bytes.
func (n *NVM) Write(addr uint32, size int, val uint32) {
	n.c.NVMWrites++
	n.c.NVMWriteBytes += uint64(size)
	n.clk.Advance(n.cost.NVMCycles)
	if n.probe != nil {
		n.probe.OnNVM(sim.NVMEvent{Cycle: n.clk.Now(), Addr: addr, Bytes: size, Write: true})
	}
	n.space.Write(addr, size, val)
}

// Fork returns an NVM over a copy-on-write fork of the space, with the same
// cost model but no clock, counters, or probe: the forking system attaches
// it to the forked machine's clock and counter set.
func (n *NVM) Fork() *NVM {
	return &NVM{space: n.space.Fork(), cost: n.cost}
}

// ReadRaw reads without charging cycles or counters (loader/debug path).
func (n *NVM) ReadRaw(addr uint32, size int) uint32 { return n.space.Read(addr, size) }

// WriteRaw writes without charging cycles or counters (loader/debug path).
func (n *NVM) WriteRaw(addr uint32, size int, val uint32) { n.space.Write(addr, size, val) }

// Space exposes the underlying space (verifier comparisons).
func (n *NVM) Space() *Space { return n.space }

// Cost returns the NVM's cost model.
func (n *NVM) Cost() CostModel { return n.cost }

// DirectPort is a devirtualized fast path into a system's data memory: the
// AOT execution engine uses it to serve loads and stores with a fixed cycle
// charge and a direct Space access, skipping the sim.System interface
// dispatch. A system may only expose a port when the port-served access is
// observably identical to its Load/Store — fixed latency, hit-counter-only
// accounting, and no probe to notify — so today only the volatile baseline
// qualifies (and only while unprobed). The caller still owns alignment
// checking, MMIO routing, clock advancement (Advance(HitCycles), which may
// raise the power failure), and the CacheHits counter.
type DirectPort struct {
	Space     *Space
	HitCycles uint64
}

// DirectMemory is the capability interface systems implement to offer a
// DirectPort. The second result gates it dynamically: a probed system must
// return false so every access flows through Load/Store and emits events.
type DirectMemory interface {
	DirectPort() (DirectPort, bool)
}

// AlignmentError reports a misaligned or invalid-size access; the emulator
// treats it as a program bug and aborts the run.
type AlignmentError struct {
	Addr uint32
	Size int
}

// Error implements the error interface.
func (e *AlignmentError) Error() string {
	return fmt.Sprintf("mem: misaligned %d-byte access at 0x%08x", e.Size, e.Addr)
}

// CheckAligned validates natural alignment for a 1/2/4-byte access.
func CheckAligned(addr uint32, size int) error {
	switch size {
	case 1:
		return nil
	case 2, 4:
		if addr%uint32(size) == 0 {
			return nil
		}
	}
	return &AlignmentError{Addr: addr, Size: size}
}

// ReadRaw makes Space satisfy sim.MemReaderWriter (volatile baseline).
func (s *Space) ReadRaw(addr uint32, size int) uint32 { return s.Read(addr, size) }

// WriteRaw makes Space satisfy sim.MemReaderWriter (volatile baseline).
func (s *Space) WriteRaw(addr uint32, size int, val uint32) { s.Write(addr, size, val) }

// WriteAsync performs an NVM write that is counted but not charged on the
// clock: ReplayCache's non-blocking cache issues write-backs through a
// background queue whose timing (port occupancy, stalls) the caller models
// explicitly (paper Section 6.1.2: "asynchronously write cache lines back to
// NVM").
func (n *NVM) WriteAsync(addr uint32, size int, val uint32) {
	n.c.NVMWrites++
	n.c.NVMWriteBytes += uint64(size)
	if n.probe != nil {
		n.probe.OnNVM(sim.NVMEvent{Cycle: n.Now(), Addr: addr, Bytes: size, Write: true})
	}
	n.space.Write(addr, size, val)
}
