package sim

// TestClock is a deterministic Clock for unit tests: it accumulates cycles
// and, when FailAt is non-zero, raises PowerFail the first time an Advance
// reaches or crosses that cycle — letting tests place a power failure at any
// exact cycle of an operation.
type TestClock struct {
	Cycle  uint64
	FailAt uint64
	failed bool
}

// Now implements Clock.
func (c *TestClock) Now() uint64 { return c.Cycle }

// Advance implements Clock.
func (c *TestClock) Advance(n uint64) {
	target := c.Cycle + n
	if c.FailAt != 0 && !c.failed && target >= c.FailAt {
		c.Cycle = c.FailAt
		c.failed = true
		panic(PowerFail{})
	}
	c.Cycle = target
}

// Failed reports whether the scheduled failure fired.
func (c *TestClock) Failed() bool { return c.failed }

// DeferFailures implements EnergyReserve for tests.
func (c *TestClock) DeferFailures() func() {
	saved := c.FailAt
	c.FailAt = 0
	return func() {
		c.FailAt = saved
		if saved != 0 && !c.failed && c.Cycle >= saved {
			c.failed = true
			panic(PowerFail{})
		}
	}
}
