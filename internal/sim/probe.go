package sim

import "nacho/internal/isa"

// This file defines the instrumentation seam of the simulator: a typed
// observer interface (Probe) that every event producer — the emulator, the
// generic cache, the NACHO controller, the checkpoint store, and each
// comparison system — emits through. The correctness verifier, the execution
// trace recorder, the energy meter, and the per-interval statistics collector
// are all Probe implementations; production counters stay directly updated
// for the no-probe fast path.
//
// Emission contract: every producer holds a Probe field that is nil when no
// observer is attached, and guards each emission with a plain nil check
// (`if p != nil { p.OnX(...) }`). Event types are flat value structs, so an
// emission performs no allocation; a detached run costs one predictable
// branch per event site and no interface call.

// AccessClass says how a CPU data access was served.
type AccessClass uint8

// Access classes.
const (
	// AccessHit was served by the data cache (or, for the volatile
	// baseline, its SRAM main memory).
	AccessHit AccessClass = iota
	// AccessMiss went through a cache miss (fill and possible eviction
	// happened before the event was emitted).
	AccessMiss
	// AccessNVM went straight to NVM without cache involvement (Clank's
	// every access; a write-through store miss).
	AccessNVM
	// AccessMMIO hit the emulator's memory-mapped I/O window and bypassed
	// the memory system entirely.
	AccessMMIO
)

// String names the access class.
func (c AccessClass) String() string {
	switch c {
	case AccessHit:
		return "hit"
	case AccessMiss:
		return "miss"
	case AccessNVM:
		return "nvm"
	case AccessMMIO:
		return "mmio"
	}
	return "unknown"
}

// AccessEvent is one CPU data access, emitted by the serving system after
// all side effects (miss handling, evictions, checkpoints) completed —
// so an observer sees any checkpoint commit *before* the access that
// triggered it, matching rollback semantics: the in-flight access re-executes
// after a rollback to that checkpoint.
type AccessEvent struct {
	Cycle uint64
	Addr  uint32
	Size  int
	// Value is the loaded value (zero-extended) or the stored value (masked
	// to Size bytes).
	Value uint32
	Store bool
	Class AccessClass
}

// FillEvent is a cache line installation (a fill after a miss).
type FillEvent struct {
	Addr uint32 // line-aligned word address
}

// Verdict classifies a dirty line leaving the cache (or, for cacheless
// write-through paths, a store reaching NVM).
type Verdict uint8

// Write-back verdicts.
const (
	// VerdictSafe: write-dominated dirty eviction, written straight to NVM.
	VerdictSafe Verdict = iota
	// VerdictUnsafe: possibly read-dominated dirty eviction; a checkpoint
	// flushes it instead of a direct write-back.
	VerdictUnsafe
	// VerdictDroppedStack: dirty line in a dead stack frame, discarded.
	VerdictDroppedStack
	// VerdictWriteThrough: a store written through to NVM (Clank,
	// write-through cache).
	VerdictWriteThrough
	// VerdictAsync: dirty eviction queued on a non-blocking write-back port
	// (ReplayCache).
	VerdictAsync

	// NumVerdicts sizes verdict histograms.
	NumVerdicts = int(VerdictAsync) + 1
)

// String names the verdict.
func (v Verdict) String() string {
	switch v {
	case VerdictSafe:
		return "safe"
	case VerdictUnsafe:
		return "unsafe"
	case VerdictDroppedStack:
		return "dropped-stack"
	case VerdictWriteThrough:
		return "write-through"
	case VerdictAsync:
		return "async"
	}
	return "unknown"
}

// WriteBackEvent is a dirty line (or written-through store) leaving the
// volatile domain, with the system's safety verdict.
type WriteBackEvent struct {
	Cycle   uint64
	Addr    uint32
	Size    int
	Verdict Verdict
}

// CheckpointKind says what kind of persistence point a checkpoint event
// marks.
type CheckpointKind uint8

// Checkpoint kinds.
const (
	// CheckpointCommit is a committed register+dirty-line checkpoint — the
	// rollback target of the checkpoint/rollback systems.
	CheckpointCommit CheckpointKind = iota
	// CheckpointRegion is a completed ReplayCache idempotent region (all its
	// stores persisted; execution resumes here after a failure).
	CheckpointRegion
	// CheckpointJIT is ReplayCache's just-in-time state save on the
	// power-failure interrupt; it is not an interval boundary.
	CheckpointJIT
)

// String names the checkpoint kind.
func (k CheckpointKind) String() string {
	switch k {
	case CheckpointCommit:
		return "commit"
	case CheckpointRegion:
		return "region"
	case CheckpointJIT:
		return "jit"
	}
	return "unknown"
}

// CheckpointEvent describes a checkpoint. Begin events (OnCheckpointBegin,
// emitted by the checkpoint store when staging starts) carry only Cycle and
// Lines; commit events (OnCheckpointCommit, emitted at the instant the
// checkpoint becomes the reboot target) carry the full semantics.
type CheckpointEvent struct {
	Cycle uint64
	Kind  CheckpointKind
	Lines int // dirty cache lines persisted
	// Forced marks a periodic forward-progress checkpoint; Adaptive marks a
	// dirty-threshold policy checkpoint (Section 8 extension).
	Forced   bool
	Adaptive bool
	// Interval is the cycle distance to the previous commit, when the system
	// tracks it (IntervalValid; the NACHO controller does).
	Interval      uint64
	IntervalValid bool
}

// PowerEvent is an injected power failure, emitted before the system's
// volatile state is destroyed.
type PowerEvent struct {
	Cycle uint64
}

// RestoreEvent is a completed post-reboot restore. OK is false when no
// checkpoint was ever committed and execution restarted from program entry.
type RestoreEvent struct {
	Cycle  uint64 // cycle the restore completed
	Cycles uint64 // cycles the restore sequence took
	OK     bool
}

// RetireEvent is one retired instruction. Cycle is the cycle the instruction
// issued at (before its base cycle was charged), so a trace renders it at
// the same timestamp the instruction began.
type RetireEvent struct {
	Cycle uint64
	PC    uint32
	Instr isa.Instr
}

// NVMEvent is one charged (or asynchronously counted) NVM transfer. Raw
// loader/debug accesses do not emit.
type NVMEvent struct {
	Cycle uint64
	Addr  uint32
	Bytes int
	Write bool
}

// Probe observes the simulation event stream. Implementations must be cheap:
// hooks run synchronously on the simulation's hot path. Embed NopProbe to
// implement only the hooks of interest.
type Probe interface {
	OnAccess(AccessEvent)
	OnLineFill(FillEvent)
	OnWriteBack(WriteBackEvent)
	OnCheckpointBegin(CheckpointEvent)
	OnCheckpointCommit(CheckpointEvent)
	OnPowerFailure(PowerEvent)
	OnRestore(RestoreEvent)
	OnRetire(RetireEvent)
	OnNVM(NVMEvent)
}

// NopProbe implements every Probe hook as a no-op; embed it to write partial
// observers.
type NopProbe struct{}

// OnAccess implements Probe.
func (NopProbe) OnAccess(AccessEvent) {}

// OnLineFill implements Probe.
func (NopProbe) OnLineFill(FillEvent) {}

// OnWriteBack implements Probe.
func (NopProbe) OnWriteBack(WriteBackEvent) {}

// OnCheckpointBegin implements Probe.
func (NopProbe) OnCheckpointBegin(CheckpointEvent) {}

// OnCheckpointCommit implements Probe.
func (NopProbe) OnCheckpointCommit(CheckpointEvent) {}

// OnPowerFailure implements Probe.
func (NopProbe) OnPowerFailure(PowerEvent) {}

// OnRestore implements Probe.
func (NopProbe) OnRestore(RestoreEvent) {}

// OnRetire implements Probe.
func (NopProbe) OnRetire(RetireEvent) {}

// OnNVM implements Probe.
func (NopProbe) OnNVM(NVMEvent) {}

// Probes fans every event out to each member in order.
type Probes []Probe

// Add appends a probe, ignoring nil.
func (ps *Probes) Add(p Probe) {
	if p != nil {
		*ps = append(*ps, p)
	}
}

// OnAccess implements Probe.
func (ps Probes) OnAccess(e AccessEvent) {
	for _, p := range ps {
		p.OnAccess(e)
	}
}

// OnLineFill implements Probe.
func (ps Probes) OnLineFill(e FillEvent) {
	for _, p := range ps {
		p.OnLineFill(e)
	}
}

// OnWriteBack implements Probe.
func (ps Probes) OnWriteBack(e WriteBackEvent) {
	for _, p := range ps {
		p.OnWriteBack(e)
	}
}

// OnCheckpointBegin implements Probe.
func (ps Probes) OnCheckpointBegin(e CheckpointEvent) {
	for _, p := range ps {
		p.OnCheckpointBegin(e)
	}
}

// OnCheckpointCommit implements Probe.
func (ps Probes) OnCheckpointCommit(e CheckpointEvent) {
	for _, p := range ps {
		p.OnCheckpointCommit(e)
	}
}

// OnPowerFailure implements Probe.
func (ps Probes) OnPowerFailure(e PowerEvent) {
	for _, p := range ps {
		p.OnPowerFailure(e)
	}
}

// OnRestore implements Probe.
func (ps Probes) OnRestore(e RestoreEvent) {
	for _, p := range ps {
		p.OnRestore(e)
	}
}

// OnRetire implements Probe.
func (ps Probes) OnRetire(e RetireEvent) {
	for _, p := range ps {
		p.OnRetire(e)
	}
}

// OnNVM implements Probe.
func (ps Probes) OnNVM(e NVMEvent) {
	for _, p := range ps {
		p.OnNVM(e)
	}
}

// Combine builds the cheapest probe observing all non-nil arguments: nil for
// none (the fast path stays fully detached), the probe itself for one, a
// Probes fan-out otherwise.
func Combine(list ...Probe) Probe {
	var ps Probes
	for _, p := range list {
		ps.Add(p)
	}
	switch len(ps) {
	case 0:
		return nil
	case 1:
		return ps[0]
	}
	return ps
}
