package sim

import (
	"reflect"
	"testing"
)

// eventCounter records how many times each hook fired.
type eventCounter struct {
	access, fill, writeBack, begin, commit, power, restore, retire, nvm int
}

func (c *eventCounter) OnAccess(AccessEvent)               { c.access++ }
func (c *eventCounter) OnLineFill(FillEvent)               { c.fill++ }
func (c *eventCounter) OnWriteBack(WriteBackEvent)         { c.writeBack++ }
func (c *eventCounter) OnCheckpointBegin(CheckpointEvent)  { c.begin++ }
func (c *eventCounter) OnCheckpointCommit(CheckpointEvent) { c.commit++ }
func (c *eventCounter) OnPowerFailure(PowerEvent)          { c.power++ }
func (c *eventCounter) OnRestore(RestoreEvent)             { c.restore++ }
func (c *eventCounter) OnRetire(RetireEvent)               { c.retire++ }
func (c *eventCounter) OnNVM(NVMEvent)                     { c.nvm++ }

// emitOneOfEach fires every hook exactly once.
func emitOneOfEach(p Probe) {
	p.OnAccess(AccessEvent{})
	p.OnLineFill(FillEvent{})
	p.OnWriteBack(WriteBackEvent{})
	p.OnCheckpointBegin(CheckpointEvent{})
	p.OnCheckpointCommit(CheckpointEvent{})
	p.OnPowerFailure(PowerEvent{})
	p.OnRestore(RestoreEvent{})
	p.OnRetire(RetireEvent{})
	p.OnNVM(NVMEvent{})
}

func TestCombine(t *testing.T) {
	if got := Combine(); got != nil {
		t.Errorf("Combine() = %v, want nil", got)
	}
	if got := Combine(nil, nil); got != nil {
		t.Errorf("Combine(nil, nil) = %v, want nil", got)
	}
	single := &eventCounter{}
	if got := Combine(nil, single, nil); got != Probe(single) {
		t.Errorf("Combine with one non-nil probe should return it directly, got %T", got)
	}
	a, b := &eventCounter{}, &eventCounter{}
	combined := Combine(a, nil, b)
	ps, ok := combined.(Probes)
	if !ok || len(ps) != 2 {
		t.Fatalf("Combine(a, nil, b) = %T of len %d, want Probes of len 2", combined, len(ps))
	}
}

func TestProbesFanOut(t *testing.T) {
	a, b := &eventCounter{}, &eventCounter{}
	var ps Probes
	ps.Add(a)
	ps.Add(nil) // ignored
	ps.Add(b)
	if len(ps) != 2 {
		t.Fatalf("Add kept %d probes, want 2 (nil must be dropped)", len(ps))
	}
	emitOneOfEach(ps)
	want := eventCounter{1, 1, 1, 1, 1, 1, 1, 1, 1}
	if *a != want || *b != want {
		t.Errorf("fan-out mismatch: a=%+v b=%+v, want every hook fired once", *a, *b)
	}
}

// TestNopProbeIsProbe pins the interface contract: NopProbe must satisfy the
// full Probe interface so partial observers can embed it.
func TestNopProbeIsProbe(t *testing.T) {
	var p Probe = NopProbe{}
	emitOneOfEach(p) // must not panic
}

func TestCounterProbeDerivations(t *testing.T) {
	cp := NewCounterProbe()

	cp.OnAccess(AccessEvent{Store: false, Class: AccessHit})
	cp.OnAccess(AccessEvent{Store: true, Class: AccessMiss})
	cp.OnAccess(AccessEvent{Store: true, Class: AccessNVM})
	cp.OnAccess(AccessEvent{Store: false, Class: AccessMMIO})

	cp.OnWriteBack(WriteBackEvent{Verdict: VerdictSafe})
	cp.OnWriteBack(WriteBackEvent{Verdict: VerdictUnsafe})
	cp.OnWriteBack(WriteBackEvent{Verdict: VerdictDroppedStack})
	cp.OnWriteBack(WriteBackEvent{Verdict: VerdictWriteThrough})
	cp.OnWriteBack(WriteBackEvent{Verdict: VerdictAsync})

	cp.OnCheckpointCommit(CheckpointEvent{Kind: CheckpointCommit, Lines: 3, Forced: true, Interval: 500, IntervalValid: true})
	cp.OnCheckpointCommit(CheckpointEvent{Kind: CheckpointCommit, Lines: 7, Adaptive: true})
	cp.OnCheckpointCommit(CheckpointEvent{Kind: CheckpointRegion})
	cp.OnCheckpointCommit(CheckpointEvent{Kind: CheckpointJIT})

	cp.OnPowerFailure(PowerEvent{})
	cp.OnRestore(RestoreEvent{Cycles: 42})
	cp.OnRetire(RetireEvent{})
	cp.OnNVM(NVMEvent{Bytes: 16, Write: false})
	cp.OnNVM(NVMEvent{Bytes: 8, Write: true})

	c := cp.Counters()
	checks := []struct {
		name string
		got  uint64
		want uint64
	}{
		{"Loads", c.Loads, 2},
		{"Stores", c.Stores, 2},
		{"CacheHits", c.CacheHits, 1},
		{"CacheMisses", c.CacheMisses, 1},
		{"SafeEvictions", c.SafeEvictions, 1},
		{"UnsafeEvictions", c.UnsafeEvictions, 1},
		{"DroppedStackLines", c.DroppedStackLines, 1},
		{"Evictions", c.Evictions, 2},     // safe + async
		{"Checkpoints", c.Checkpoints, 3}, // 2 commits + 1 JIT save
		{"CheckpointLines", c.CheckpointLines, 10},
		{"MaxCheckpointLines", c.MaxCheckpointLines, 7},
		{"ForcedCkpts", c.ForcedCkpts, 1},
		{"AdaptiveCkpts", c.AdaptiveCkpts, 1},
		{"Regions", c.Regions, 1},
		{"PowerFailures", c.PowerFailures, 1},
		{"RestoreCycles", c.RestoreCycles, 42},
		{"Instructions", c.Instructions, 1},
		{"NVMReads", c.NVMReads, 1},
		{"NVMReadBytes", c.NVMReadBytes, 16},
		{"NVMWrites", c.NVMWrites, 1},
		{"NVMWriteBytes", c.NVMWriteBytes, 8},
		{"IntervalHist[0]", c.IntervalHist[0], 1}, // 500 < 1k
	}
	for _, ck := range checks {
		if ck.got != ck.want {
			t.Errorf("%s = %d, want %d", ck.name, ck.got, ck.want)
		}
	}
}

func TestIntervalStats(t *testing.T) {
	var s IntervalStats

	// Interval 0: some traffic, closed by a commit.
	s.OnNVM(NVMEvent{Cycle: 10, Bytes: 4, Write: false})
	s.OnNVM(NVMEvent{Cycle: 20, Bytes: 8, Write: true})
	s.OnWriteBack(WriteBackEvent{Cycle: 30, Verdict: VerdictSafe})
	s.OnCheckpointCommit(CheckpointEvent{Cycle: 100, Kind: CheckpointCommit, Lines: 2})

	// Interval 1: cut short by a power failure.
	s.OnNVM(NVMEvent{Cycle: 150, Bytes: 16, Write: true})
	s.OnPowerFailure(PowerEvent{Cycle: 200})

	// Interval 2: tail, closed by Finish.
	s.OnWriteBack(WriteBackEvent{Cycle: 250, Verdict: VerdictUnsafe})
	s.Finish(300)

	if s.Count() != 3 || len(s.Intervals) != 3 {
		t.Fatalf("Count = %d, len(Intervals) = %d, want 3", s.Count(), len(s.Intervals))
	}
	want := []IntervalStat{
		{Start: 0, End: 100, NVMReadBytes: 4, NVMWriteBytes: 8, Lines: 2, Kind: CheckpointCommit},
		{Start: 100, End: 200, NVMWriteBytes: 16, PowerFailure: true},
		{Start: 200, End: 300, EndOfRun: true},
	}
	want[0].WriteBacks[VerdictSafe] = 1
	want[2].WriteBacks[VerdictUnsafe] = 1
	for i, w := range want {
		if !reflect.DeepEqual(s.Intervals[i], w) {
			t.Errorf("interval %d = %+v, want %+v", i, s.Intervals[i], w)
		}
	}
	if s.TotalNVMReadBytes != 4 || s.TotalNVMWriteBytes != 24 {
		t.Errorf("totals = %d read, %d written, want 4/24", s.TotalNVMReadBytes, s.TotalNVMWriteBytes)
	}
	if s.TotalWriteBacks[VerdictSafe] != 1 || s.TotalWriteBacks[VerdictUnsafe] != 1 {
		t.Errorf("total write-backs = %v, want one safe and one unsafe", s.TotalWriteBacks)
	}
}

// TestIntervalStatsFinishIdleTail checks Finish does not fabricate an empty
// interval when the run ended exactly at the last persistence point.
func TestIntervalStatsFinishIdleTail(t *testing.T) {
	var s IntervalStats
	s.OnCheckpointCommit(CheckpointEvent{Cycle: 100, Kind: CheckpointCommit})
	s.Finish(100)
	if len(s.Intervals) != 1 {
		t.Fatalf("got %d intervals, want 1 (no empty tail)", len(s.Intervals))
	}
}

func TestIntervalStatsOverflow(t *testing.T) {
	s := IntervalStats{Max: 2}
	for i := uint64(1); i <= 5; i++ {
		s.OnNVM(NVMEvent{Bytes: 1, Write: true})
		s.OnCheckpointCommit(CheckpointEvent{Cycle: i * 100, Kind: CheckpointCommit})
	}
	if len(s.Intervals) != 2 || s.Dropped != 3 {
		t.Errorf("stored %d, dropped %d, want 2 stored and 3 dropped", len(s.Intervals), s.Dropped)
	}
	if s.Count() != 5 {
		t.Errorf("Count = %d, want 5", s.Count())
	}
	if s.TotalNVMWriteBytes != 5 {
		t.Errorf("TotalNVMWriteBytes = %d, want 5 (totals must keep counting past Max)", s.TotalNVMWriteBytes)
	}
}

func TestEnumStrings(t *testing.T) {
	cases := []struct{ got, want string }{
		{AccessHit.String(), "hit"},
		{AccessMiss.String(), "miss"},
		{AccessNVM.String(), "nvm"},
		{AccessMMIO.String(), "mmio"},
		{VerdictSafe.String(), "safe"},
		{VerdictUnsafe.String(), "unsafe"},
		{VerdictDroppedStack.String(), "dropped-stack"},
		{VerdictWriteThrough.String(), "write-through"},
		{VerdictAsync.String(), "async"},
		{CheckpointCommit.String(), "commit"},
		{CheckpointRegion.String(), "region"},
		{CheckpointJIT.String(), "jit"},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("String() = %q, want %q", c.got, c.want)
		}
	}
}
