package sim

import "testing"

// Edge cases of the interval accounting: runs that never commit a
// checkpoint, failures aborting an in-flight checkpoint, and the final
// partial interval. In each case the interval totals must agree with the
// event-derived counters — both observe the same completed-action stream, so
// they can never disagree, failures or not.

// TestIntervalStatsNoCheckpointEver: a run with NVM traffic and write-backs
// but no persistence point at all collapses into one EndOfRun interval
// holding every total.
func TestIntervalStatsNoCheckpointEver(t *testing.T) {
	s := &IntervalStats{}
	cp := NewCounterProbe()
	p := Combine(s, cp)
	p.OnNVM(NVMEvent{Cycle: 10, Bytes: 8, Write: false})
	p.OnNVM(NVMEvent{Cycle: 20, Bytes: 16, Write: true})
	p.OnWriteBack(WriteBackEvent{Cycle: 30, Verdict: VerdictSafe})
	s.Finish(500)

	if s.Count() != 1 {
		t.Fatalf("Count = %d, want 1", s.Count())
	}
	iv := s.Intervals[0]
	if !iv.EndOfRun || iv.PowerFailure || iv.Start != 0 || iv.End != 500 {
		t.Errorf("tail interval wrong: %+v", iv)
	}
	if iv.NVMReadBytes != 8 || iv.NVMWriteBytes != 16 || iv.WriteBacks[VerdictSafe] != 1 {
		t.Errorf("tail interval traffic wrong: %+v", iv)
	}
	c := cp.Counters()
	if s.TotalNVMReadBytes != c.NVMReadBytes || s.TotalNVMWriteBytes != c.NVMWriteBytes {
		t.Errorf("interval NVM totals (%d/%d) disagree with counter probe (%d/%d)",
			s.TotalNVMReadBytes, s.TotalNVMWriteBytes, c.NVMReadBytes, c.NVMWriteBytes)
	}
	if c.Checkpoints != 0 {
		t.Errorf("counter probe saw %d checkpoints, want 0", c.Checkpoints)
	}
}

// TestIntervalStatsEmptyRun: no events and Finish(0) is zero intervals — an
// idle tail must not be fabricated.
func TestIntervalStatsEmptyRun(t *testing.T) {
	s := &IntervalStats{}
	s.Finish(0)
	if s.Count() != 0 {
		t.Errorf("Count = %d, want 0 for an empty run", s.Count())
	}
}

// TestIntervalStatsFailureAbortsInFlightCheckpoint: a power failure between
// OnCheckpointBegin and the commit that never came closes the interval as
// PowerFailure (a begin is not a persistence point), and the counter-probe
// view agrees: no checkpoint, one failure.
func TestIntervalStatsFailureAbortsInFlightCheckpoint(t *testing.T) {
	s := &IntervalStats{}
	cp := NewCounterProbe()
	p := Combine(s, cp)
	p.OnNVM(NVMEvent{Cycle: 40, Bytes: 4, Write: true})
	p.OnCheckpointBegin(CheckpointEvent{Cycle: 90, Lines: 7})
	// Staging writes charged before the failure hit.
	p.OnNVM(NVMEvent{Cycle: 95, Bytes: 32, Write: true})
	p.OnPowerFailure(PowerEvent{Cycle: 100})
	p.OnRestore(RestoreEvent{Cycle: 150, Cycles: 50, OK: false})
	p.OnCheckpointCommit(CheckpointEvent{Cycle: 300, Kind: CheckpointCommit, Lines: 2})
	s.Finish(400)

	if s.Count() != 3 {
		t.Fatalf("Count = %d, want 3 (failure-cut, commit-closed, tail)", s.Count())
	}
	first := s.Intervals[0]
	if !first.PowerFailure || first.End != 100 || first.NVMWriteBytes != 36 {
		t.Errorf("failure-cut interval wrong: %+v", first)
	}
	if first.Lines != 0 {
		t.Errorf("aborted staging leaked its line count into the interval: %+v", first)
	}
	second := s.Intervals[1]
	if second.PowerFailure || second.Kind != CheckpointCommit || second.Start != 100 || second.End != 300 || second.Lines != 2 {
		t.Errorf("commit-closed interval wrong: %+v", second)
	}
	c := cp.Counters()
	if c.Checkpoints != 1 || c.PowerFailures != 1 || c.RestoreCycles != 50 {
		t.Errorf("counter probe: %d checkpoints, %d failures, %d restore cycles; want 1/1/50",
			c.Checkpoints, c.PowerFailures, c.RestoreCycles)
	}
	// Interval boundaries and direct counters agree: commits + failures,
	// plus the end-of-run tail.
	if want := int(c.Checkpoints+c.PowerFailures) + 1; s.Count() != want {
		t.Errorf("Count = %d, want checkpoints+failures+tail = %d", s.Count(), want)
	}
}

// TestIntervalStatsFinalPartialInterval: work after the last commit lands in
// the EndOfRun tail with its own traffic, and the totals still match the
// event-derived counters.
func TestIntervalStatsFinalPartialInterval(t *testing.T) {
	s := &IntervalStats{}
	cp := NewCounterProbe()
	p := Combine(s, cp)
	p.OnNVM(NVMEvent{Cycle: 10, Bytes: 8, Write: true})
	p.OnCheckpointCommit(CheckpointEvent{Cycle: 100, Kind: CheckpointCommit, Lines: 1})
	p.OnNVM(NVMEvent{Cycle: 150, Bytes: 24, Write: false})
	p.OnWriteBack(WriteBackEvent{Cycle: 160, Verdict: VerdictUnsafe})
	s.Finish(200)

	if s.Count() != 2 {
		t.Fatalf("Count = %d, want 2", s.Count())
	}
	tail := s.Intervals[1]
	if !tail.EndOfRun || tail.Start != 100 || tail.End != 200 {
		t.Errorf("tail interval wrong: %+v", tail)
	}
	if tail.NVMReadBytes != 24 || tail.WriteBacks[VerdictUnsafe] != 1 {
		t.Errorf("tail interval traffic wrong: %+v", tail)
	}
	c := cp.Counters()
	if s.TotalNVMReadBytes != c.NVMReadBytes || s.TotalNVMWriteBytes != c.NVMWriteBytes {
		t.Errorf("interval NVM totals (%d/%d) disagree with counter probe (%d/%d)",
			s.TotalNVMReadBytes, s.TotalNVMWriteBytes, c.NVMReadBytes, c.NVMWriteBytes)
	}
	wbTotal := uint64(0)
	for _, n := range s.TotalWriteBacks {
		wbTotal += n
	}
	if wbTotal != c.UnsafeEvictions+c.SafeEvictions {
		t.Errorf("write-back totals %d disagree with counters", wbTotal)
	}
}
