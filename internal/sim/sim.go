// Package sim defines the contracts that tie the CPU emulator to the memory
// systems under evaluation: the simulation clock (which is also the power-
// failure authority), the register-snapshot source used by checkpointing, and
// the System interface implemented by NACHO and every baseline.
package sim

import "nacho/internal/metrics"

// Snapshot is the volatile processor state persisted by a checkpoint:
// the 31 writable general-purpose registers (x1..x31) and the program
// counter. Together with non-volatile main memory this is the complete
// architectural state of the machine (paper Section 1: NVM main memory
// reduces the volatile state "only to the registers").
type Snapshot struct {
	Regs [31]uint32 // x1..x31; x0 is hardwired zero
	PC   uint32
}

// SnapshotWords is the number of 32-bit words in a serialized Snapshot.
const SnapshotWords = 32

// Words serializes the snapshot for NVM storage.
func (s Snapshot) Words() [SnapshotWords]uint32 {
	var w [SnapshotWords]uint32
	copy(w[:31], s.Regs[:])
	w[31] = s.PC
	return w
}

// SnapshotFromWords deserializes a snapshot read back from NVM.
func SnapshotFromWords(w [SnapshotWords]uint32) Snapshot {
	var s Snapshot
	copy(s.Regs[:], w[:31])
	s.PC = w[31]
	return s
}

// Clock is the simulation time authority. All cycle costs — instruction
// retirement, cache hits, NVM transfers, checkpoint writes — are charged by
// calling Advance. When the configured power schedule places a failure inside
// the advanced interval, Advance accounts time up to the failure instant and
// panics with PowerFail; the emulator recovers it at its top level and runs
// the reboot path. This models a power failure striking at any cycle,
// including mid-checkpoint, which is what the incorruptibility property tests
// exercise.
type Clock interface {
	// Now returns the current cycle.
	Now() uint64
	// Advance charges n cycles and panics with PowerFail if a failure occurs
	// within them.
	Advance(n uint64)
}

// PowerFail is the panic sentinel raised by Clock.Advance at the instant of a
// power failure. Only the emulator's run loop recovers it.
type PowerFail struct{}

// EnergyReserve is implemented by clocks that can model the paper's
// Section 8 energy-prediction hardware: a platform that guarantees enough
// banked energy to finish a critical sequence. DeferFailures opens the
// guarantee window; the returned release closes it and, if the scheduled
// failure instant passed inside the window, raises PowerFail immediately —
// the reserve is spent the moment the sequence completes.
type EnergyReserve interface {
	DeferFailures() (release func())
}

// RegSource provides the live register state for checkpoint creation. A
// checkpoint can be demanded in the middle of a load or store (an unsafe
// eviction); at that point the destination register of the in-flight
// instruction has not yet been written, so a live snapshot plus the current
// instruction's PC is exactly the state to resume from.
type RegSource interface {
	RegSnapshot() Snapshot
}

// System is a complete memory system supporting intermittent execution: the
// CPU issues every data access through it, and the emulator drives its
// checkpoint/restore lifecycle. Implementations charge their own cycle costs
// on the attached Clock.
type System interface {
	// Name identifies the system in experiment output ("nacho", "clank", ...).
	Name() string

	// Attach wires the system to the CPU's clock and register source and to
	// the run's counters. It must be called once before execution.
	Attach(clk Clock, regs RegSource, c *metrics.Counters)

	// AttachProbe wires an event observer into the system and every
	// component it owns (cache, NVM, checkpoint store); nil detaches. Call
	// it before execution; the no-probe path must stay emission-free.
	AttachProbe(p Probe)

	// Load performs a data read of size bytes (1, 2 or 4, naturally aligned).
	Load(addr uint32, size int) uint32
	// Store performs a data write of size bytes (1, 2 or 4, naturally aligned).
	Store(addr uint32, size int, val uint32)

	// NotifySP reports stack-pointer updates for stack tracking
	// (paper Section 4.2.4). Systems without stack tracking ignore it.
	NotifySP(sp uint32)

	// ForceCheckpoint creates a checkpoint now (used for the periodic
	// forward-progress checkpoints of intermittent runs, Section 6.2.4).
	ForceCheckpoint()

	// PowerFailure destroys all volatile state (cache contents, trackers).
	// Non-volatile state — main memory and committed checkpoints — survives.
	PowerFailure()

	// Restore recovers the newest committed checkpoint after a reboot,
	// charging the NVM read cost, and returns the processor snapshot to
	// resume from. ok is false when no checkpoint was ever committed (the
	// caller then restarts from the program entry).
	Restore() (s Snapshot, ok bool)

	// Mem returns the backing non-volatile (or, for the volatile baseline,
	// SRAM) data space for program loading and final-state inspection.
	Mem() MemReaderWriter
}

// MemReaderWriter is the raw, cost-free debug/loader view of a memory space.
type MemReaderWriter interface {
	ReadRaw(addr uint32, size int) uint32
	WriteRaw(addr uint32, size int, val uint32)
}

// FastPort is the devirtualized cached-memory fast path: the hit-path
// analogue of the paper's own argument (Section 4: hits in the volatile data
// cache are the common, cheap case) applied to the simulator itself. A system
// that can serve *plain* cache hits — valid line, no RD/PW metadata
// transition, no eviction, no checkpoint pressure, no clock read — without
// touching the simulation clock exposes one, and the execution engines call
// the hit functions directly instead of the sim.System interface.
//
// Contract, enforced by the engine-equivalence suite:
//
//   - LoadHit/StoreHit must either decline (ok=false) with NO observable side
//     effects, or perform exactly the state mutations of the corresponding
//     Load/Store hit path (hit counter, LRU touch, WAR-tracker observation,
//     line data) except advancing the clock. The caller charges HitCycles
//     itself — every servable hit costs the same fixed latency, which is also
//     what lets the caller pre-check the power-failure horizon and decline
//     near it (the full call then raises PowerFail at the byte-identical
//     instant with byte-identical state).
//   - Any event that invalidates previously returned hits or changes what the
//     port would serve — a checkpoint, commit, restore, eviction,
//     dirty-threshold crossing, power failure, or probe attach — must bump
//     Epoch. Consumers that cache anything derived from port answers must
//     revalidate against Epoch; the engines cache nothing and re-acquire the
//     port each execution slice, but the epoch property test holds every
//     implementation to the protocol.
//   - A nil LoadHit or StoreHit means that direction has no fast path (e.g. a
//     write-through store always pays NVM latency).
type FastPort struct {
	// LoadHit serves a plain read hit of size bytes at addr, or declines.
	LoadHit func(addr uint32, size int) (val uint32, ok bool)
	// StoreHit serves a plain write hit, or declines. Callers mask val to
	// size first, exactly as the reference path does before System.Store.
	StoreHit func(addr uint32, size int, val uint32) (ok bool)
	// Epoch returns the port's invalidation epoch (see contract above).
	Epoch func() uint64
	// HitCycles is the fixed clock charge for every served hit.
	HitCycles uint64
}

// FastMemory is the capability interface systems implement to offer a
// FastPort. The second result gates it dynamically: a probed system must
// return false so every access flows through the event-emitting path.
type FastMemory interface {
	FastPort() (FastPort, bool)
}

// Forkable is implemented by systems that support copy-on-write machine
// forking (the snapshot-fork exploration mode). Fork returns an independent
// replica of the system's complete state — volatile (cache lines, trackers,
// stack bounds) deep-copied, non-volatile memory forked copy-on-write — wired
// to the forked machine's clock, register source, and counters. Unlike
// Attach, Fork must not reinitialize anything (in particular not the
// checkpoint store, whose sequence position is part of the state being
// replicated), and the replica comes up probe-free: forks run on the
// emission-free fast path.
type Forkable interface {
	Fork(clk Clock, regs RegSource, c *metrics.Counters) System
}
