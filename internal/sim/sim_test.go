package sim

import (
	"testing"
	"testing/quick"
)

func TestSnapshotWordsRoundTrip(t *testing.T) {
	f := func(regs [31]uint32, pc uint32) bool {
		s := Snapshot{Regs: regs, PC: pc}
		return SnapshotFromWords(s.Words()) == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSnapshotLayout(t *testing.T) {
	var s Snapshot
	s.Regs[0] = 0x11 // x1
	s.Regs[1] = 0x22 // x2 (sp)
	s.PC = 0x33
	w := s.Words()
	if w[0] != 0x11 || w[1] != 0x22 || w[31] != 0x33 {
		t.Errorf("layout wrong: %v", w)
	}
}

func TestTestClockAdvancesAndFails(t *testing.T) {
	c := &TestClock{FailAt: 10}
	c.Advance(5)
	if c.Now() != 5 || c.Failed() {
		t.Fatalf("state after 5: now=%d failed=%v", c.Now(), c.Failed())
	}
	func() {
		defer func() {
			if r := recover(); r == nil {
				t.Error("no PowerFail panic at the failure cycle")
			} else if _, ok := r.(PowerFail); !ok {
				t.Errorf("wrong panic value %v", r)
			}
		}()
		c.Advance(100)
	}()
	if c.Now() != 10 {
		t.Errorf("clock stopped at %d, want the failure instant 10", c.Now())
	}
	// Failures are one-shot: the clock keeps running afterwards.
	c.Advance(100)
	if c.Now() != 110 {
		t.Errorf("post-failure advance: %d", c.Now())
	}
}

func TestTestClockNoFailure(t *testing.T) {
	c := &TestClock{}
	c.Advance(1 << 30)
	if c.Failed() {
		t.Error("unscheduled failure fired")
	}
}
