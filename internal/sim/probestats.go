package sim

import "nacho/internal/metrics"

// This file holds the two stock probe implementations that cannot live in
// their "natural" packages: metrics is imported *by* sim (System.Attach takes
// a *metrics.Counters), so the counters-from-events adapter and the
// per-interval statistics collector are defined here instead.

// CounterProbe independently derives a metrics.Counters from the probe event
// stream. It exists to prove the stream is complete: a run observed through a
// CounterProbe must reproduce every directly-maintained counter except Cycles
// (which the emulator stamps from its clock at end of run, not from an
// event). The property tests in internal/harness assert exactly that for
// every system.
type CounterProbe struct {
	NopProbe
	c metrics.Counters
}

// NewCounterProbe returns an empty counter-deriving probe.
func NewCounterProbe() *CounterProbe { return &CounterProbe{} }

// Counters returns the counters derived so far.
func (cp *CounterProbe) Counters() metrics.Counters { return cp.c }

// OnAccess implements Probe.
func (cp *CounterProbe) OnAccess(e AccessEvent) {
	if e.Store {
		cp.c.Stores++
	} else {
		cp.c.Loads++
	}
	switch e.Class {
	case AccessHit:
		cp.c.CacheHits++
	case AccessMiss:
		cp.c.CacheMisses++
	}
}

// OnWriteBack implements Probe.
func (cp *CounterProbe) OnWriteBack(e WriteBackEvent) {
	switch e.Verdict {
	case VerdictSafe:
		cp.c.SafeEvictions++
		cp.c.Evictions++
	case VerdictUnsafe:
		cp.c.UnsafeEvictions++
	case VerdictDroppedStack:
		cp.c.DroppedStackLines++
	case VerdictAsync:
		cp.c.Evictions++
	}
}

// OnCheckpointCommit implements Probe.
func (cp *CounterProbe) OnCheckpointCommit(e CheckpointEvent) {
	switch e.Kind {
	case CheckpointCommit:
		cp.c.Checkpoints++
		cp.c.CheckpointLines += uint64(e.Lines)
		if n := uint64(e.Lines); n > cp.c.MaxCheckpointLines {
			cp.c.MaxCheckpointLines = n
		}
		if e.Forced {
			cp.c.ForcedCkpts++
		}
		if e.Adaptive {
			cp.c.AdaptiveCkpts++
		}
		if e.IntervalValid {
			cp.c.RecordInterval(e.Interval)
		}
	case CheckpointRegion:
		cp.c.Regions++
	case CheckpointJIT:
		cp.c.Checkpoints++
	}
}

// OnPowerFailure implements Probe.
func (cp *CounterProbe) OnPowerFailure(PowerEvent) { cp.c.PowerFailures++ }

// OnRestore implements Probe.
func (cp *CounterProbe) OnRestore(e RestoreEvent) { cp.c.RestoreCycles += e.Cycles }

// OnRetire implements Probe.
func (cp *CounterProbe) OnRetire(RetireEvent) { cp.c.Instructions++ }

// OnNVM implements Probe.
func (cp *CounterProbe) OnNVM(e NVMEvent) {
	if e.Write {
		cp.c.NVMWrites++
		cp.c.NVMWriteBytes += uint64(e.Bytes)
	} else {
		cp.c.NVMReads++
		cp.c.NVMReadBytes += uint64(e.Bytes)
	}
}

// IntervalStat is the statistics of one checkpoint interval: the stretch of
// execution between two consecutive persistence points (checkpoint commits,
// region ends, or a power failure).
type IntervalStat struct {
	Start, End uint64 // cycles
	// NVM traffic inside the interval (checkpoint writes included: they are
	// exactly the recovery cost the interval's length buys).
	NVMReadBytes, NVMWriteBytes uint64
	// WriteBacks histograms the interval's write-back verdicts by Verdict.
	WriteBacks [NumVerdicts]uint64
	// Lines is the dirty-line payload of the closing checkpoint.
	Lines int
	// Kind is what closed the interval; PowerFailure marks intervals cut
	// short by a failure instead of a commit, EndOfRun the tail interval
	// closed by Finish.
	Kind         CheckpointKind
	PowerFailure bool
	EndOfRun     bool
}

// defaultMaxIntervals bounds stored per-interval records; runs with more
// intervals keep aggregate totals and count the overflow in Dropped.
const defaultMaxIntervals = 4096

// IntervalStats collects per-checkpoint-interval statistics from the probe
// stream — the capability behind `nachosim -probe-stats`. It is the kind of
// observer the pre-probe design could not express without modifying every
// system: it needs NVM traffic, write-back verdicts, and checkpoint commits
// correlated on one timeline.
type IntervalStats struct {
	NopProbe
	// Max caps stored intervals (0 = 4096); totals keep counting past it.
	Max int

	Intervals []IntervalStat
	Dropped   int // intervals beyond Max (still in the totals)

	TotalNVMReadBytes  uint64
	TotalNVMWriteBytes uint64
	TotalWriteBacks    [NumVerdicts]uint64

	cur IntervalStat
}

// OnNVM implements Probe.
func (s *IntervalStats) OnNVM(e NVMEvent) {
	if e.Write {
		s.cur.NVMWriteBytes += uint64(e.Bytes)
	} else {
		s.cur.NVMReadBytes += uint64(e.Bytes)
	}
}

// OnWriteBack implements Probe.
func (s *IntervalStats) OnWriteBack(e WriteBackEvent) {
	s.cur.WriteBacks[e.Verdict]++
}

// OnCheckpointCommit implements Probe.
func (s *IntervalStats) OnCheckpointCommit(e CheckpointEvent) {
	s.cur.Kind, s.cur.Lines = e.Kind, e.Lines
	s.close(e.Cycle)
}

// OnPowerFailure implements Probe: a failure ends the interval without a
// commit (the work since the last persistence point is lost).
func (s *IntervalStats) OnPowerFailure(e PowerEvent) {
	s.cur.PowerFailure = true
	s.close(e.Cycle)
}

// Finish closes the tail interval at the run's final cycle. Call it once
// after the run completes.
func (s *IntervalStats) Finish(now uint64) {
	if now > s.cur.Start || s.cur != (IntervalStat{Start: s.cur.Start}) {
		s.cur.EndOfRun = true
		s.close(now)
	}
}

func (s *IntervalStats) close(now uint64) {
	s.cur.End = now
	s.TotalNVMReadBytes += s.cur.NVMReadBytes
	s.TotalNVMWriteBytes += s.cur.NVMWriteBytes
	for i, n := range s.cur.WriteBacks {
		s.TotalWriteBacks[i] += n
	}
	max := s.Max
	if max == 0 {
		max = defaultMaxIntervals
	}
	if len(s.Intervals) < max {
		s.Intervals = append(s.Intervals, s.cur)
	} else {
		s.Dropped++
	}
	s.cur = IntervalStat{Start: now}
}

// Count is the total number of intervals observed, stored or dropped.
func (s *IntervalStats) Count() int { return len(s.Intervals) + s.Dropped }
