// Package power models energy availability for intermittent execution:
// schedules that decide at which active cycle the next power failure strikes
// (paper Section 6.1.4), and helpers for the periodic forward-progress
// checkpoint the paper inserts at half the on-duration (Section 6.2.4).
package power

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
)

// NoFailure is the sentinel returned by schedules that never fail.
const NoFailure = ^uint64(0)

// Schedule decides when power failures occur, measured in *active* cycles
// (time spent computing; the off/recharge time does not advance the
// simulation clock — the paper's overhead metric likewise counts only the
// extra work, not the waiting).
type Schedule interface {
	// NextFailureAfter returns the cycle of the first failure strictly after
	// the given cycle, or NoFailure.
	NextFailureAfter(cycle uint64) uint64

	// Key returns a stable identity of the schedule's parameters. Two
	// schedules with equal keys must produce identical failure sequences; the
	// experiment harness uses the key to decide whether two runs may share a
	// cached result, so a lossy key silently aliases distinct experiments.
	Key() string

	// Clone returns an independent schedule that replays the same failure
	// sequence from cycle 0. Stateless schedules may return themselves;
	// stateful ones (seeded RNGs) must return a fresh value so that reusing
	// one schedule value across runs — sequentially or concurrently — neither
	// mutates shared state nor depends on run order.
	Clone() Schedule
}

// None is the always-on power supply used for the failure-free experiments
// (Figures 5-8).
type None struct{}

// NextFailureAfter always reports that no failure will occur.
func (None) NextFailureAfter(uint64) uint64 { return NoFailure }

// Key identifies the always-on supply.
func (None) Key() string { return "none" }

// Clone returns the schedule itself; None is stateless.
func (n None) Clone() Schedule { return n }

// Periodic fails every Period active cycles: at Period, 2*Period, ...
// It reproduces the paper's fixed on-durations of 5/10/50/100 ms.
type Periodic struct {
	Period uint64
}

// NextFailureAfter returns the next multiple of Period after cycle. Near the
// top of the cycle domain the next multiple would wrap past 2^64 (or collide
// with the NoFailure sentinel); those instants are unreachable in any run, so
// the schedule saturates to NoFailure instead of wrapping to a bogus early
// failure.
func (p Periodic) NextFailureAfter(cycle uint64) uint64 {
	if p.Period == 0 {
		return NoFailure
	}
	q := cycle/p.Period + 1
	if q == 0 || q > (NoFailure-1)/p.Period {
		return NoFailure
	}
	return q * p.Period
}

// Key identifies the schedule by its period.
func (p Periodic) Key() string { return fmt.Sprintf("periodic(%d)", p.Period) }

// Clone returns the schedule itself; Periodic is stateless.
func (p Periodic) Clone() Schedule { return p }

// Uniform draws i.i.d. on-durations uniformly from [Min, Max] cycles using a
// deterministic seed, modelling the harvested-energy variability described in
// the paper's introduction. The sequence of failure instants is fixed by the
// seed, so runs are reproducible.
type Uniform struct {
	Min, Max uint64
	Seed     int64

	rng     *rand.Rand
	next    uint64
	lastAsk uint64
}

// NewUniform creates a seeded random schedule with on-durations in
// [min, max] cycles.
func NewUniform(min, max uint64, seed int64) *Uniform {
	u := &Uniform{Min: min, Max: max, Seed: seed}
	u.Reset()
	return u
}

// Reset rewinds the schedule to replay its seeded sequence from cycle 0.
// It is the explicit alternative to Clone for reusing one schedule value
// across sequential runs.
func (u *Uniform) Reset() {
	u.rng = rand.New(rand.NewSource(u.Seed))
	u.next = u.draw(0)
	u.lastAsk = 0
}

// draw advances the sequence by one on-duration. The sum saturates at
// NoFailure rather than wrapping past 2^64: an instant beyond the cycle
// domain is indistinguishable from "never", and a wrapped small value would
// be a bogus early failure (and could loop NextFailureAfter forever).
func (u *Uniform) draw(from uint64) uint64 {
	span := u.Max - u.Min
	d := u.Min
	if span > 0 {
		d += uint64(u.rng.Int63n(int64(span + 1)))
	}
	if d == 0 {
		d = 1
	}
	if from > NoFailure-d {
		return NoFailure
	}
	return from + d
}

// NextFailureAfter returns the next drawn failure instant after cycle,
// advancing the internal sequence as simulation time passes it. Queries must
// be monotonically non-decreasing: one Uniform value serves exactly one run.
// To reuse a value across runs, Clone it per run (the harness does) or call
// Reset between runs; a backwards query panics rather than silently replaying
// or — worse — continuing the previous run's sequence, which would make
// failure instants depend on run order.
func (u *Uniform) NextFailureAfter(cycle uint64) uint64 {
	if cycle < u.lastAsk {
		panic(fmt.Sprintf("power: Uniform queried backwards (cycle %d after %d); Clone or Reset the schedule per run", cycle, u.lastAsk))
	}
	u.lastAsk = cycle
	for u.next != NoFailure && u.next <= cycle {
		u.next = u.draw(u.next)
	}
	return u.next
}

// Key identifies the schedule by its bounds and seed; the drawn sequence is a
// pure function of all three.
func (u *Uniform) Key() string { return fmt.Sprintf("uniform(%d,%d,%d)", u.Min, u.Max, u.Seed) }

// Clone returns a fresh schedule replaying the same seeded sequence from
// cycle 0, leaving the original's RNG position untouched.
func (u *Uniform) Clone() Schedule { return NewUniform(u.Min, u.Max, u.Seed) }

// At fails at exactly the given active-time instants (sorted internally).
// It is the precision tool of the incorruptibility sweeps: tests place a
// failure at every individual cycle of a program.
type At struct {
	instants []uint64
}

// NewAt builds a schedule failing at each listed cycle.
func NewAt(instants ...uint64) At {
	sorted := make([]uint64, len(instants))
	copy(sorted, instants)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return At{instants: sorted}
}

// Instants returns a copy of the schedule's sorted failure instants.
func (a At) Instants() []uint64 {
	out := make([]uint64, len(a.instants))
	copy(out, a.instants)
	return out
}

// NextFailureAfter returns the first listed instant strictly after cycle.
func (a At) NextFailureAfter(cycle uint64) uint64 {
	i := sort.Search(len(a.instants), func(i int) bool { return a.instants[i] > cycle })
	if i == len(a.instants) {
		return NoFailure
	}
	return a.instants[i]
}

// Key identifies the schedule by its sorted instants.
func (a At) Key() string {
	var b strings.Builder
	b.WriteString("at(")
	for i, x := range a.instants {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", x)
	}
	b.WriteByte(')')
	return b.String()
}

// Clone returns the schedule itself; the instants are never mutated after
// NewAt.
func (a At) Clone() Schedule { return a }

// FromBytes derives a finite failure schedule from raw fuzz-engine bytes.
// Consecutive 16-bit little-endian words become inter-failure gaps of
// 1+4*word cycles (so adjacent byte strings map to nearby schedules, which
// is what coverage-guided mutation wants), a trailing odd byte becomes one
// last short gap, and the instant count is capped so a long input cannot
// request an unbounded outage storm. An empty input yields a failure-free
// schedule, the identity the differential oracle compares against.
func FromBytes(b []byte) At {
	const maxInstants = 32
	var instants []uint64
	cycle := uint64(0)
	for len(b) >= 2 && len(instants) < maxInstants {
		gap := 1 + 4*uint64(uint16(b[0])|uint16(b[1])<<8)
		b = b[2:]
		cycle += gap
		instants = append(instants, cycle)
	}
	if len(b) == 1 && len(instants) < maxInstants {
		cycle += 1 + uint64(b[0])
		instants = append(instants, cycle)
	}
	return NewAt(instants...)
}

// ParseKey reconstructs a schedule from its Key() string. It is the inverse
// every distributed consumer of run identities relies on: a serialized run
// spec carries only the schedule key, and the worker that executes it must
// rebuild an equivalent schedule. ParseKey(s.Key()).Key() == s.Key() holds
// for every schedule implementation in this package (pinned by
// TestParseKeyRoundTrip); an unrecognized or malformed key is rejected with
// a named diagnostic rather than silently mapped to always-on power.
func ParseKey(key string) (Schedule, error) {
	if key == "" || key == "none" {
		return None{}, nil
	}
	open := strings.IndexByte(key, '(')
	if open < 0 || !strings.HasSuffix(key, ")") {
		return nil, fmt.Errorf("power: malformed schedule key %q", key)
	}
	name, args := key[:open], key[open+1:len(key)-1]
	fields := []string{}
	if args != "" {
		fields = strings.Split(args, ",")
	}
	parse := func(s string) (uint64, error) {
		v, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			return 0, fmt.Errorf("power: malformed schedule key %q: bad integer %q", key, s)
		}
		return v, nil
	}
	switch name {
	case "periodic":
		if len(fields) != 1 {
			return nil, fmt.Errorf("power: malformed schedule key %q: periodic wants 1 argument", key)
		}
		period, err := parse(fields[0])
		if err != nil {
			return nil, err
		}
		return Periodic{Period: period}, nil
	case "uniform":
		if len(fields) != 3 {
			return nil, fmt.Errorf("power: malformed schedule key %q: uniform wants 3 arguments", key)
		}
		min, err := parse(fields[0])
		if err != nil {
			return nil, err
		}
		max, err := parse(fields[1])
		if err != nil {
			return nil, err
		}
		seed, err := strconv.ParseInt(fields[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("power: malformed schedule key %q: bad seed %q", key, fields[2])
		}
		return NewUniform(min, max, seed), nil
	case "at":
		instants := make([]uint64, 0, len(fields))
		for _, f := range fields {
			v, err := parse(f)
			if err != nil {
				return nil, err
			}
			instants = append(instants, v)
		}
		return NewAt(instants...), nil
	}
	return nil, fmt.Errorf("power: unknown schedule key %q", key)
}
