package power

import "testing"

func TestNone(t *testing.T) {
	if (None{}).NextFailureAfter(0) != NoFailure {
		t.Error("None scheduled a failure")
	}
}

func TestPeriodic(t *testing.T) {
	p := Periodic{Period: 100}
	cases := []struct{ at, want uint64 }{
		{0, 100}, {1, 100}, {99, 100}, {100, 200}, {101, 200}, {250, 300},
	}
	for _, c := range cases {
		if got := p.NextFailureAfter(c.at); got != c.want {
			t.Errorf("NextFailureAfter(%d) = %d, want %d", c.at, got, c.want)
		}
	}
	if (Periodic{}).NextFailureAfter(5) != NoFailure {
		t.Error("zero period should never fail")
	}
}

func TestUniformDeterministicAndMonotonic(t *testing.T) {
	a := NewUniform(10, 50, 42)
	b := NewUniform(10, 50, 42)
	var cycle uint64
	prev := uint64(0)
	for i := 0; i < 1000; i++ {
		fa := a.NextFailureAfter(cycle)
		fb := b.NextFailureAfter(cycle)
		if fa != fb {
			t.Fatalf("same seed diverged at step %d: %d vs %d", i, fa, fb)
		}
		if fa <= cycle {
			t.Fatalf("failure %d not after cycle %d", fa, cycle)
		}
		if fa < prev {
			t.Fatalf("failure sequence went backwards: %d after %d", fa, prev)
		}
		gap := fa - cycle
		if cycle == prev && (gap == 0 || fa-prev > 50*1000) {
			t.Fatalf("implausible gap %d", gap)
		}
		prev = fa
		cycle = fa // simulate consuming the failure
	}
}

func TestUniformBounds(t *testing.T) {
	u := NewUniform(10, 20, 7)
	var cycle uint64
	for i := 0; i < 2000; i++ {
		next := u.NextFailureAfter(cycle)
		gap := next - cycle
		if gap < 1 || gap > 20 {
			t.Fatalf("gap %d outside (0, 20]", gap)
		}
		cycle = next
	}
}

func TestUniformZeroSpan(t *testing.T) {
	u := NewUniform(5, 5, 1)
	if got := u.NextFailureAfter(0); got != 5 {
		t.Errorf("fixed-width schedule first failure = %d, want 5", got)
	}
}

func TestAtSchedule(t *testing.T) {
	a := NewAt(30, 10, 20)
	cases := []struct{ at, want uint64 }{
		{0, 10}, {9, 10}, {10, 20}, {19, 20}, {20, 30}, {30, NoFailure},
	}
	for _, c := range cases {
		if got := a.NextFailureAfter(c.at); got != c.want {
			t.Errorf("NextFailureAfter(%d) = %d, want %d", c.at, got, c.want)
		}
	}
	if NewAt().NextFailureAfter(0) != NoFailure {
		t.Error("empty At schedule fired")
	}
}
