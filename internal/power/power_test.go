package power

import "testing"

func TestNone(t *testing.T) {
	if (None{}).NextFailureAfter(0) != NoFailure {
		t.Error("None scheduled a failure")
	}
}

func TestPeriodic(t *testing.T) {
	p := Periodic{Period: 100}
	cases := []struct{ at, want uint64 }{
		{0, 100}, {1, 100}, {99, 100}, {100, 200}, {101, 200}, {250, 300},
	}
	for _, c := range cases {
		if got := p.NextFailureAfter(c.at); got != c.want {
			t.Errorf("NextFailureAfter(%d) = %d, want %d", c.at, got, c.want)
		}
	}
	if (Periodic{}).NextFailureAfter(5) != NoFailure {
		t.Error("zero period should never fail")
	}
}

func TestUniformDeterministicAndMonotonic(t *testing.T) {
	a := NewUniform(10, 50, 42)
	b := NewUniform(10, 50, 42)
	var cycle uint64
	prev := uint64(0)
	for i := 0; i < 1000; i++ {
		fa := a.NextFailureAfter(cycle)
		fb := b.NextFailureAfter(cycle)
		if fa != fb {
			t.Fatalf("same seed diverged at step %d: %d vs %d", i, fa, fb)
		}
		if fa <= cycle {
			t.Fatalf("failure %d not after cycle %d", fa, cycle)
		}
		if fa < prev {
			t.Fatalf("failure sequence went backwards: %d after %d", fa, prev)
		}
		gap := fa - cycle
		if cycle == prev && (gap == 0 || fa-prev > 50*1000) {
			t.Fatalf("implausible gap %d", gap)
		}
		prev = fa
		cycle = fa // simulate consuming the failure
	}
}

func TestUniformBounds(t *testing.T) {
	u := NewUniform(10, 20, 7)
	var cycle uint64
	for i := 0; i < 2000; i++ {
		next := u.NextFailureAfter(cycle)
		gap := next - cycle
		if gap < 1 || gap > 20 {
			t.Fatalf("gap %d outside (0, 20]", gap)
		}
		cycle = next
	}
}

func TestUniformZeroSpan(t *testing.T) {
	u := NewUniform(5, 5, 1)
	if got := u.NextFailureAfter(0); got != 5 {
		t.Errorf("fixed-width schedule first failure = %d, want 5", got)
	}
}

func TestAtSchedule(t *testing.T) {
	a := NewAt(30, 10, 20)
	cases := []struct{ at, want uint64 }{
		{0, 10}, {9, 10}, {10, 20}, {19, 20}, {20, 30}, {30, NoFailure},
	}
	for _, c := range cases {
		if got := a.NextFailureAfter(c.at); got != c.want {
			t.Errorf("NextFailureAfter(%d) = %d, want %d", c.at, got, c.want)
		}
	}
	if NewAt().NextFailureAfter(0) != NoFailure {
		t.Error("empty At schedule fired")
	}
}

func TestScheduleKeys(t *testing.T) {
	keys := []string{
		None{}.Key(),
		Periodic{Period: 100}.Key(),
		Periodic{Period: 200}.Key(),
		NewUniform(10, 50, 1).Key(),
		NewUniform(10, 50, 2).Key(),
		NewUniform(10, 51, 1).Key(),
		NewUniform(11, 50, 1).Key(),
		NewAt(5, 10).Key(),
		NewAt(5, 11).Key(),
	}
	seen := map[string]int{}
	for i, k := range keys {
		if j, dup := seen[k]; dup {
			t.Errorf("schedules %d and %d share key %q", j, i, k)
		}
		seen[k] = i
	}
	if NewUniform(10, 50, 1).Key() != NewUniform(10, 50, 1).Key() {
		t.Error("equal-parameter Uniform schedules have distinct keys")
	}
	if NewAt(10, 5).Key() != NewAt(5, 10).Key() {
		t.Error("At key depends on argument order, not the failure sequence")
	}
}

func TestUniformCloneReplaysFromStart(t *testing.T) {
	orig := NewUniform(10, 50, 42)
	var seq []uint64
	var cycle uint64
	for i := 0; i < 5; i++ {
		cycle = orig.NextFailureAfter(cycle)
		seq = append(seq, cycle)
	}

	clone := orig.Clone()
	var c uint64
	for i := 0; i < 5; i++ {
		c = clone.NextFailureAfter(c)
		if c != seq[i] {
			t.Fatalf("clone step %d = %d, want %d", i, c, seq[i])
		}
	}

	// Advancing the clone must not have perturbed the original: its next
	// answers track a reference schedule advanced identically.
	ref := NewUniform(10, 50, 42)
	rc := uint64(0)
	for i := 0; i < 5; i++ {
		rc = ref.NextFailureAfter(rc)
	}
	for i := 0; i < 5; i++ {
		cycle = orig.NextFailureAfter(cycle)
		rc = ref.NextFailureAfter(rc)
		if cycle != rc {
			t.Fatalf("original diverged after clone use: %d vs %d", cycle, rc)
		}
	}
}

func TestAtInstants(t *testing.T) {
	a := NewAt(30, 10, 20)
	got := a.Instants()
	want := []uint64{10, 20, 30}
	if len(got) != len(want) {
		t.Fatalf("Instants() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Instants() = %v, want %v", got, want)
		}
	}
	got[0] = 999
	if a.Instants()[0] != 10 {
		t.Error("Instants() returned aliased storage; mutating the copy changed the schedule")
	}
}

func TestFromBytes(t *testing.T) {
	if got := FromBytes(nil).Instants(); len(got) != 0 {
		t.Errorf("FromBytes(nil) = %v, want empty", got)
	}

	// Two full words and a leftover byte: gaps 1+4*0x0201, 1+4*0x0403, 1+5.
	b := []byte{0x01, 0x02, 0x03, 0x04, 0x05}
	want := []uint64{0, 0, 0}
	want[0] = 1 + 4*0x0201
	want[1] = want[0] + 1 + 4*0x0403
	want[2] = want[1] + 1 + 5
	got := FromBytes(b).Instants()
	if len(got) != len(want) {
		t.Fatalf("FromBytes(%x) = %v, want %v", b, got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("FromBytes(%x) = %v, want %v", b, got, want)
		}
	}

	// Zero words still advance by at least one cycle each: instants stay
	// strictly increasing, so the schedule can never fire twice at once.
	zeros := FromBytes(make([]byte, 10)).Instants()
	for i := 1; i < len(zeros); i++ {
		if zeros[i] <= zeros[i-1] {
			t.Fatalf("instants not strictly increasing: %v", zeros)
		}
	}

	// Long inputs are capped, not unbounded.
	long := FromBytes(make([]byte, 4096)).Instants()
	if len(long) > 32 {
		t.Errorf("FromBytes produced %d instants, want <= 32", len(long))
	}

	// Same bytes, same schedule — the fuzzer's reproducibility contract.
	if FromBytes(b).Key() != FromBytes(b).Key() {
		t.Error("FromBytes is not deterministic")
	}
}

// TestPeriodicOverflowNearMax pins the uint64 overflow fix: near 2^64 the
// pre-fix (cycle/Period+1)*Period wrapped to a small bogus instant (breaking
// the strictly-after contract) instead of saturating to NoFailure.
func TestPeriodicOverflowNearMax(t *testing.T) {
	cases := []struct {
		period, at, want uint64
	}{
		{100, NoFailure - 10, NoFailure},
		{100, NoFailure - 1, NoFailure},
		{100, NoFailure, NoFailure},
		{1, NoFailure - 1, NoFailure}, // next multiple would be the sentinel itself
		{1, NoFailure, NoFailure},     // cycle/1+1 wraps q to 0
		{NoFailure - 1, 5, NoFailure - 1},
		{NoFailure - 1, NoFailure - 1, NoFailure},
		{1 << 63, (1 << 63) + 1, NoFailure}, // 2*Period wraps to 0
	}
	for _, c := range cases {
		p := Periodic{Period: c.period}
		if got := p.NextFailureAfter(c.at); got != c.want {
			t.Errorf("Periodic{%d}.NextFailureAfter(%d) = %d, want %d", c.period, c.at, got, c.want)
		}
	}
}

// TestUniformDrawSaturatesNearMax pins the companion wrap in Uniform.draw:
// from+d past 2^64 must saturate to NoFailure, and NextFailureAfter's advance
// loop must terminate once the sequence saturates (pre-fix the wrapped small
// value kept the loop spinning forever).
func TestUniformDrawSaturatesNearMax(t *testing.T) {
	u := NewUniform(10, 20, 1)
	if got := u.draw(NoFailure - 5); got != NoFailure {
		t.Errorf("draw(NoFailure-5) = %d, want NoFailure", got)
	}
	if got := u.draw(NoFailure); got != NoFailure {
		t.Errorf("draw(NoFailure) = %d, want NoFailure", got)
	}

	// White-box: park the sequence near the top of the domain and query past
	// it; the loop must saturate and answer NoFailure, not wrap or hang.
	u = NewUniform(10, 20, 1)
	u.next = NoFailure - 3
	u.lastAsk = NoFailure - 4
	if got := u.NextFailureAfter(NoFailure - 2); got != NoFailure {
		t.Errorf("NextFailureAfter(NoFailure-2) = %d, want NoFailure", got)
	}
	// Saturated schedules stay saturated under further queries.
	if got := u.NextFailureAfter(NoFailure - 1); got != NoFailure {
		t.Errorf("saturated schedule answered %d, want NoFailure", got)
	}
}

// TestUniformInterleavedRunsPanic pins the reuse-contract fix. Pre-fix, the
// silent restart heuristic made two interleaved runs over one schedule value
// corrupt each other: run B's backwards query restarted the RNG under run A,
// so A's subsequent instants silently came from a restarted sequence and the
// observed failures depended on run interleaving order. Post-fix the
// backwards query panics instead of corrupting anything.
func TestUniformInterleavedRunsPanic(t *testing.T) {
	u := NewUniform(10, 50, 42)
	runA := u.NextFailureAfter(0)
	runA = u.NextFailureAfter(runA) // run A is mid-flight, lastAsk > 0

	defer func() {
		if recover() == nil {
			t.Fatal("interleaved second run's backwards query did not panic; " +
				"silent RNG restart would make failure instants run-order-dependent")
		}
	}()
	u.NextFailureAfter(0) // run B starts over the same value
}

// TestUniformResetReplays verifies the sanctioned sequential-reuse path: an
// explicit Reset rewinds the value to the exact sequence a fresh clone sees.
func TestUniformResetReplays(t *testing.T) {
	u := NewUniform(10, 50, 42)
	var first []uint64
	cycle := uint64(0)
	for i := 0; i < 8; i++ {
		cycle = u.NextFailureAfter(cycle)
		first = append(first, cycle)
	}

	u.Reset()
	cycle = 0
	for i := 0; i < 8; i++ {
		cycle = u.NextFailureAfter(cycle)
		if cycle != first[i] {
			t.Fatalf("after Reset, instant %d = %d, want %d", i, cycle, first[i])
		}
	}
}

// scheduleUnderTest pairs a fresh-instance factory with a name so properties
// can be checked uniformly across every Schedule implementation.
type scheduleUnderTest struct {
	name string
	mk   func() Schedule
}

func allSchedules() []scheduleUnderTest {
	return []scheduleUnderTest{
		{"none", func() Schedule { return None{} }},
		{"periodic", func() Schedule { return Periodic{Period: 37} }},
		{"uniform", func() Schedule { return NewUniform(3, 29, 99) }},
		{"at", func() Schedule { return NewAt(5, 17, 17, 100, 4096) }},
		{"frombytes", func() Schedule { return FromBytes([]byte{9, 0, 1, 2, 3}) }},
	}
}

// TestSchedulePropertyStrictlyAfter checks the interface contract for every
// implementation: NextFailureAfter(c) is either NoFailure or strictly greater
// than c, and consuming each failure yields a non-decreasing instant sequence.
func TestSchedulePropertyStrictlyAfter(t *testing.T) {
	for _, s := range allSchedules() {
		t.Run(s.name, func(t *testing.T) {
			sched := s.mk()
			cycle := uint64(0)
			for i := 0; i < 500; i++ {
				next := sched.NextFailureAfter(cycle)
				if next == NoFailure {
					return
				}
				if next <= cycle {
					t.Fatalf("NextFailureAfter(%d) = %d, not strictly after", cycle, next)
				}
				cycle = next
			}
		})
	}
}

// TestSchedulePropertyCloneIndependence interleaves queries on an original
// and its clone; each must see the sequence a dedicated fresh instance sees,
// regardless of what the other is asked in between.
func TestSchedulePropertyCloneIndependence(t *testing.T) {
	for _, s := range allSchedules() {
		t.Run(s.name, func(t *testing.T) {
			orig, ref := s.mk(), s.mk()
			clone := orig.Clone()
			cloneRef := s.mk()
			var oc, cc uint64
			for i := 0; i < 200; i++ {
				// Interleave: one query on the original, one on the clone.
				if got, want := orig.NextFailureAfter(oc), ref.NextFailureAfter(oc); got != want {
					t.Fatalf("original step %d: %d, want %d", i, got, want)
				} else if want == NoFailure {
					break
				} else {
					oc = want
				}
				if got, want := clone.NextFailureAfter(cc), cloneRef.NextFailureAfter(cc); got != want {
					t.Fatalf("clone step %d: %d, want %d", i, got, want)
				} else if want != NoFailure {
					cc = want
				}
			}
		})
	}
}

// TestSchedulePropertyKeyRoundTrip checks that equal parameters give equal
// keys (runs may share cached results) and distinct parameters give distinct
// keys (no silent aliasing of different experiments).
func TestSchedulePropertyKeyRoundTrip(t *testing.T) {
	for _, s := range allSchedules() {
		if s.mk().Key() != s.mk().Key() {
			t.Errorf("%s: equal parameters produced distinct keys", s.name)
		}
		if k := s.mk().Clone().Key(); k != s.mk().Key() {
			t.Errorf("%s: Clone changed the key to %q", s.name, k)
		}
	}
	distinct := []Schedule{
		None{},
		Periodic{Period: 37}, Periodic{Period: 38},
		NewUniform(3, 29, 99), NewUniform(3, 29, 100), NewUniform(3, 30, 99), NewUniform(4, 29, 99),
		NewAt(5, 17), NewAt(5, 18), NewAt(5),
		FromBytes([]byte{9, 0, 1, 2, 3}), FromBytes([]byte{9, 0, 1, 2}),
	}
	seen := map[string]int{}
	for i, sched := range distinct {
		k := sched.Key()
		if j, dup := seen[k]; dup {
			t.Errorf("schedules %d and %d alias key %q", j, i, k)
		}
		seen[k] = i
	}
}

func TestStatelessClonesAreIdentities(t *testing.T) {
	if _, ok := (None{}).Clone().(None); !ok {
		t.Error("None.Clone changed type")
	}
	p := Periodic{Period: 7}
	if p.Clone() != Schedule(p) {
		t.Error("Periodic.Clone changed value")
	}
	a := NewAt(3, 9)
	if a.Clone().NextFailureAfter(0) != 3 {
		t.Error("At.Clone lost instants")
	}
}

// TestParseKeyRoundTrip checks ParseKey inverts Key for every schedule
// implementation — the property the distributed job service relies on when a
// worker rebuilds a schedule from a serialized run spec — and that the
// reconstructed schedule replays the original failure sequence.
func TestParseKeyRoundTrip(t *testing.T) {
	for _, s := range allSchedules() {
		t.Run(s.name, func(t *testing.T) {
			orig := s.mk()
			parsed, err := ParseKey(orig.Key())
			if err != nil {
				t.Fatalf("ParseKey(%q): %v", orig.Key(), err)
			}
			if parsed.Key() != orig.Key() {
				t.Fatalf("round trip changed key: %q -> %q", orig.Key(), parsed.Key())
			}
			ref := s.mk()
			cycle := uint64(0)
			for i := 0; i < 200; i++ {
				got, want := parsed.NextFailureAfter(cycle), ref.NextFailureAfter(cycle)
				if got != want {
					t.Fatalf("instant %d: parsed schedule fails at %d, original at %d", i, got, want)
				}
				if want == NoFailure {
					break
				}
				cycle = want
			}
		})
	}
	if sched, err := ParseKey(""); err != nil || sched.Key() != "none" {
		t.Errorf("ParseKey(\"\") = %v, %v; want the always-on schedule", sched, err)
	}
	if sched, err := ParseKey("uniform(3,29,-7)"); err != nil || sched.Key() != "uniform(3,29,-7)" {
		t.Errorf("negative seed: got %v, %v", sched, err)
	}
	for _, bad := range []string{"periodic", "periodic(", "periodic(x)", "periodic(1,2)", "uniform(1,2)", "at(1,)", "warp(9)", "periodic(1)x"} {
		if _, err := ParseKey(bad); err == nil {
			t.Errorf("ParseKey(%q) accepted a malformed key", bad)
		}
	}
}
