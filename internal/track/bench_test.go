package track

import "testing"

func BenchmarkObserveWrite(b *testing.B) {
	tr := New()
	for i := 0; i < b.N; i++ {
		tr.ObserveWrite(uint32(i)&0xFFFF, 4)
		if i&0xFFFF == 0 {
			tr.Reset()
		}
	}
}

func BenchmarkObserveReadWritePair(b *testing.B) {
	tr := New()
	for i := 0; i < b.N; i++ {
		a := uint32(i) & 0x3FFF
		tr.ObserveRead(a, 4)
		tr.ObserveWrite(a, 4)
	}
}
