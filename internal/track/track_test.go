package track

import (
	"math/rand"
	"testing"
)

func TestBasicDominance(t *testing.T) {
	tr := New()
	// Write-first location is write-dominated: never a violation.
	if tr.ObserveWrite(0x100, 4) {
		t.Error("first write flagged as violation")
	}
	tr.ObserveRead(0x100, 4)
	if tr.ObserveWrite(0x100, 4) {
		t.Error("write to write-dominated location flagged")
	}
	// Read-first location is read-dominated: write violates.
	tr.ObserveRead(0x200, 4)
	if !tr.ReadDominated(0x200, 4) {
		t.Error("read-first location not read-dominated")
	}
	if !tr.ObserveWrite(0x200, 4) {
		t.Error("WAR not detected")
	}
	// Still read-dominated after the write (first access rules).
	if !tr.ReadDominated(0x200, 4) {
		t.Error("dominance changed by later write")
	}
}

func TestReset(t *testing.T) {
	tr := New()
	tr.ObserveRead(0x300, 4)
	tr.Reset()
	if tr.ReadDominated(0x300, 4) {
		t.Error("dominance survived reset")
	}
	if tr.ObserveWrite(0x300, 4) {
		t.Error("violation after reset")
	}
	if tr.Len() != 1 {
		t.Errorf("Len = %d, want 1", tr.Len())
	}
}

func TestByteGranularity(t *testing.T) {
	tr := New()
	tr.ObserveRead(0x400, 1) // byte 0 read-dominated
	if tr.ObserveWrite(0x401, 1) {
		t.Error("write to sibling byte flagged")
	}
	if !tr.ObserveWrite(0x400, 1) {
		t.Error("write to read-dominated byte missed")
	}
	// Word write covering a read-dominated byte is a violation.
	tr2 := New()
	tr2.ObserveRead(0x402, 1)
	if !tr2.ObserveWrite(0x400, 4) {
		t.Error("word write over read-dominated byte missed")
	}
	// Half-word access spanning bytes 2..3.
	tr3 := New()
	tr3.ObserveRead(0x406, 2)
	if tr3.ReadDominated(0x404, 2) {
		t.Error("low half reported read-dominated")
	}
	if !tr3.ReadDominated(0x406, 2) {
		t.Error("high half not read-dominated")
	}
}

// naiveTracker is a transparent per-byte reference model.
type naiveTracker struct {
	seen    map[uint32]bool
	readDom map[uint32]bool
}

func newNaive() *naiveTracker {
	return &naiveTracker{seen: map[uint32]bool{}, readDom: map[uint32]bool{}}
}

func (n *naiveTracker) read(addr uint32, size int) {
	for i := 0; i < size; i++ {
		a := addr + uint32(i)
		if !n.seen[a] {
			n.seen[a] = true
			n.readDom[a] = true
		}
	}
}

func (n *naiveTracker) write(addr uint32, size int) bool {
	viol := false
	for i := 0; i < size; i++ {
		a := addr + uint32(i)
		if n.readDom[a] {
			viol = true
		}
		n.seen[a] = true
	}
	return viol
}

func (n *naiveTracker) dominated(addr uint32, size int) bool {
	for i := 0; i < size; i++ {
		if n.readDom[addr+uint32(i)] {
			return true
		}
	}
	return false
}

// Property: the bitmask tracker matches the per-byte reference model over
// random access streams with resets.
func TestTrackerVersusNaiveModel(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	tr := New()
	ref := newNaive()
	sizes := []int{1, 2, 4}
	for i := 0; i < 200000; i++ {
		size := sizes[r.Intn(3)]
		addr := uint32(r.Intn(64)) * 2 // overlap-heavy address pool
		addr &^= uint32(size - 1)
		switch r.Intn(10) {
		case 0: // occasional interval reset
			tr.Reset()
			ref = newNaive()
		case 1, 2, 3, 4:
			tr.ObserveRead(addr, size)
			ref.read(addr, size)
		default:
			got := tr.ObserveWrite(addr, size)
			want := ref.write(addr, size)
			if got != want {
				t.Fatalf("step %d: write(%#x,%d) violation=%v, want %v", i, addr, size, got, want)
			}
		}
		if got, want := tr.ReadDominated(addr, size), ref.dominated(addr, size); got != want {
			t.Fatalf("step %d: dominated(%#x,%d)=%v, want %v", i, addr, size, got, want)
		}
	}
}
