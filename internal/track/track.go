// Package track implements exact-address read/write-dominance tracking as
// defined by Clank (paper Section 3.2): within one checkpoint interval, a
// location is read-dominated if its first access was a read and
// write-dominated if its first access was a write. A write to a
// read-dominated location is a WAR (idempotency) violation.
//
// The tracker is byte-granular (stored as per-word bitmasks) so that
// sub-word accesses are classified exactly. It is used three ways: as the
// idealized Clank baseline's hardware tracker, as Oracle NACHO's perfect WAR
// detector, and as ReplayCache's idempotent-region former.
package track

// Tracker records first-access dominance per byte since the last Reset.
type Tracker struct {
	// words maps word address (addr>>2) to two 4-bit masks:
	// low nibble = byte seen, high nibble = byte read-dominated.
	words map[uint32]uint8
}

// New returns an empty tracker.
func New() *Tracker { return &Tracker{words: make(map[uint32]uint8)} }

func byteMask(addr uint32, size int) uint8 {
	return uint8((1<<size - 1) << (addr & 3))
}

// ObserveRead records a read of size bytes at addr: any byte not yet seen in
// this interval becomes read-dominated.
func (t *Tracker) ObserveRead(addr uint32, size int) {
	w := addr >> 2
	m := byteMask(addr, size)
	e := t.words[w]
	seen := e & 0xF
	newBytes := m &^ seen
	if newBytes != 0 {
		e |= newBytes | newBytes<<4
	}
	t.words[w] = e
}

// ObserveWrite records a write of size bytes at addr and reports whether any
// written byte was read-dominated (i.e. whether this write, if it reached
// NVM, would be a WAR violation). Bytes not yet seen become write-dominated.
func (t *Tracker) ObserveWrite(addr uint32, size int) (violation bool) {
	w := addr >> 2
	m := byteMask(addr, size)
	e := t.words[w]
	violation = e>>4&m != 0
	e |= m // mark seen; read-dominated nibble unchanged
	t.words[w] = e
	return violation
}

// ReadDominated reports whether any of size bytes at addr is currently
// read-dominated (Oracle NACHO's eviction-safety check).
func (t *Tracker) ReadDominated(addr uint32, size int) bool {
	return t.words[addr>>2]>>4&byteMask(addr, size) != 0
}

// Clone returns an independent copy of the tracker's interval state (used
// when forking a machine mid-interval).
func (t *Tracker) Clone() *Tracker {
	n := &Tracker{words: make(map[uint32]uint8, len(t.words))}
	for k, v := range t.words {
		n.words[k] = v
	}
	return n
}

// Reset clears the interval (called at each checkpoint / region boundary).
func (t *Tracker) Reset() {
	clear(t.words)
}

// Len returns the number of tracked words (test/inspection helper).
func (t *Tracker) Len() int { return len(t.words) }
