// Package store is the persistent, content-addressed run-result store: the
// structured in-process run-cache key promoted to a digest over the canonical
// serialization of a run's full identity, mapping to an on-disk record of the
// run's outcome. It is what lets the evaluation matrix survive process
// restarts, be shared between worker processes and machines (see
// internal/jobs), and regenerate the whole paper evaluation from a warm
// store without executing a single simulation.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"strconv"
)

// KeyVersion is the schema version folded into every digest. Bump it when
// the key serialization — or anything about the simulation that the key
// cannot see — changes meaning, so stale stores turn into clean misses
// instead of serving results computed under different semantics.
const KeyVersion = 1

// Key is the complete, serializable identity of one run: everything that can
// influence the simulation result. It mirrors the harness's in-process
// run-cache key with one strengthening — the program is identified by the
// content hash of its assembled image, not by name, so two builds of a repo
// with different benchmark source never alias in a shared store.
type Key struct {
	Program   string `json:"program"`    // benchmark/program name (diagnostic; ImageHash is authoritative)
	ImageHash string `json:"image_hash"` // hex SHA-256 of the canonical image serialization
	System    string `json:"system"`
	Engine    string `json:"engine"` // resolved engine (never "auto")

	CacheSize int    `json:"cache"`
	Ways      int    `json:"ways"`
	Schedule  string `json:"schedule"` // power.Schedule.Key(); "none" when always-on

	ForcedCheckpointPeriod uint64 `json:"forced_period"`
	ForcedCheckpointMargin uint64 `json:"forced_margin"`
	MaxInstructions        uint64 `json:"max_instructions"`
	MaxCycles              uint64 `json:"max_cycles"`
	FinalFlush             bool   `json:"final_flush"`
	Verify                 bool   `json:"verify"`
	CheckGolden            bool   `json:"check_golden"`

	// Cost model (mem.CostModel), flattened so the serialization is stable.
	ClockHz   uint64 `json:"clock_hz"`
	HitCycles uint64 `json:"hit_cycles"`
	NVMCycles uint64 `json:"nvm_cycles"`

	DirtyThreshold   int  `json:"dirty_threshold"`
	EnergyPrediction bool `json:"energy_prediction"`
}

// appendCanonical renders the key's canonical serialization: a single JSON
// object with fixed field order, fixed integer formatting, and every field
// present (zero values included). This is the digest pre-image, so its bytes
// are part of the on-disk format: any change must bump KeyVersion.
func (k *Key) appendCanonical(buf []byte) []byte {
	str := func(name, v string) {
		buf = append(buf, ',', '"')
		buf = append(buf, name...)
		buf = append(buf, `":`...)
		buf = strconv.AppendQuote(buf, v)
	}
	num := func(name string, v uint64) {
		buf = append(buf, ',', '"')
		buf = append(buf, name...)
		buf = append(buf, `":`...)
		buf = strconv.AppendUint(buf, v, 10)
	}
	sint := func(name string, v int) {
		buf = append(buf, ',', '"')
		buf = append(buf, name...)
		buf = append(buf, `":`...)
		buf = strconv.AppendInt(buf, int64(v), 10)
	}
	boolean := func(name string, v bool) {
		buf = append(buf, ',', '"')
		buf = append(buf, name...)
		buf = append(buf, `":`...)
		buf = strconv.AppendBool(buf, v)
	}
	buf = append(buf, `{"v":`...)
	buf = strconv.AppendInt(buf, KeyVersion, 10)
	str("program", k.Program)
	str("image_hash", k.ImageHash)
	str("system", k.System)
	str("engine", k.Engine)
	sint("cache", k.CacheSize)
	sint("ways", k.Ways)
	str("schedule", k.Schedule)
	num("forced_period", k.ForcedCheckpointPeriod)
	num("forced_margin", k.ForcedCheckpointMargin)
	num("max_instructions", k.MaxInstructions)
	num("max_cycles", k.MaxCycles)
	boolean("final_flush", k.FinalFlush)
	boolean("verify", k.Verify)
	boolean("check_golden", k.CheckGolden)
	num("clock_hz", k.ClockHz)
	num("hit_cycles", k.HitCycles)
	num("nvm_cycles", k.NVMCycles)
	sint("dirty_threshold", k.DirtyThreshold)
	boolean("energy_prediction", k.EnergyPrediction)
	return append(buf, '}')
}

// Canonical returns the canonical serialization the digest is computed over.
func (k *Key) Canonical() string { return string(k.appendCanonical(nil)) }

// Digest returns the content address of the key: the hex SHA-256 of its
// canonical serialization. Perturbing any result-affecting field changes the
// digest (pinned field by field in TestDigestSensitivity); identical
// identities collide by construction.
func (k *Key) Digest() string {
	sum := sha256.Sum256(k.appendCanonical(nil))
	return hex.EncodeToString(sum[:])
}

// HashImage digests an assembled program image: entry point, expected
// checksum, and every segment (address, then contents) in load order. It is
// the ImageHash component of a Key.
func HashImage(entry, expected uint32, segments []Segment) string {
	h := sha256.New()
	var w [8]byte
	word := func(v uint32) {
		w[0], w[1], w[2], w[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
		h.Write(w[:4])
	}
	word(entry)
	word(expected)
	for _, seg := range segments {
		word(seg.Addr)
		word(uint32(len(seg.Data)))
		h.Write(seg.Data)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Segment is one loadable image segment, as HashImage consumes it. It
// mirrors asm.Segment without importing the assembler.
type Segment struct {
	Addr uint32
	Data []byte
}
