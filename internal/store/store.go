package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"

	"nacho/internal/metrics"
	"nacho/internal/telemetry"
)

// EntryVersion is the schema version stamped on every on-disk record.
const EntryVersion = 1

// Outcome values for an Entry. Simulations are deterministic, so an error
// outcome is as cacheable as a success: the same identity re-executed would
// fail the same way.
const (
	OutcomeOK    = "ok"
	OutcomeError = "error"
)

// Entry is one stored run result: the full key (for diagnostics and
// integrity checking — the digest is recomputable from it) plus everything
// needed to reconstruct the run's outcome without re-executing it. The shape
// extends the run ledger's record (identity + counters) with the result
// payload the in-process run cache holds: exit code, result words, program
// output, final registers, and the run error.
type Entry struct {
	V       int    `json:"v"`
	Key     Key    `json:"key"`
	Outcome string `json:"outcome"`
	Error   string `json:"error,omitempty"`

	ExitCode   uint32   `json:"exit_code"`
	ResultWord uint32   `json:"result_word"`
	Results    []uint32 `json:"results,omitempty"`
	Output     []byte   `json:"output,omitempty"`
	// Regs is the final architectural register file: x1..x31 then the PC
	// (sim.Snapshot in word order).
	Regs [32]uint32 `json:"regs"`

	Counters metrics.Counters `json:"counters"`
}

// Stats is a point-in-time snapshot of a store's hit/miss/write accounting.
type Stats struct {
	Hits           uint64 `json:"hits"`
	Misses         uint64 `json:"misses"`
	Puts           uint64 `json:"puts"`
	CorruptEvicted uint64 `json:"corrupt_evicted"`
	WriteErrors    uint64 `json:"write_errors"`
}

// Store is an on-disk content-addressed run store. Entries live under
// dir/objects/<d0d1>/<digest>, written with an atomic create-temp-then-rename
// protocol and read back through an end-of-file checksum, so a crashed or
// concurrent writer can never make a reader observe a torn entry: a partial
// or bit-flipped file fails its checksum, is evicted, and reads as a miss.
// Multiple processes may share one directory; identical digests map to
// identical bytes, so concurrent writers are idempotent.
type Store struct {
	dir string

	hits           atomic.Uint64
	misses         atomic.Uint64
	puts           atomic.Uint64
	corruptEvicted atomic.Uint64
	writeErrors    atomic.Uint64

	errMu    sync.Mutex
	writeErr error // first asynchronous write error (sticky)

	// lifeMu serializes queue sends against Close, so a send can never race
	// the channel close. The writer goroutine itself never takes it.
	lifeMu sync.Mutex
	closed bool
	queue  chan putReq
	done   chan struct{}
}

// putReq is one write-behind unit: an entry to persist, or (entry nil) a
// flush sentinel whose ack closes once everything queued before it is on
// disk.
type putReq struct {
	digest string
	entry  *Entry
	ack    chan struct{}
}

// Open opens (creating if needed) a store rooted at dir and starts its
// write-behind worker.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(filepath.Join(dir, "objects"), 0o777); err != nil {
		return nil, fmt.Errorf("store: open %s: %w", dir, err)
	}
	s := &Store{
		dir:   dir,
		queue: make(chan putReq, 256),
		done:  make(chan struct{}),
	}
	go s.writer()
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Stats snapshots the store's accounting.
func (s *Store) Stats() Stats {
	return Stats{
		Hits:           s.hits.Load(),
		Misses:         s.misses.Load(),
		Puts:           s.puts.Load(),
		CorruptEvicted: s.corruptEvicted.Load(),
		WriteErrors:    s.writeErrors.Load(),
	}
}

// objectPath maps a digest to its entry file, fanned out over 256
// subdirectories so one directory never collects the whole matrix.
func (s *Store) objectPath(digest string) string {
	fan := "xx"
	if len(digest) >= 2 {
		fan = digest[:2]
	}
	return filepath.Join(s.dir, "objects", fan, digest)
}

// checksumSuffix renders the trailer line guarding a payload.
func checksumSuffix(payload []byte) []byte {
	sum := sha256.Sum256(payload)
	out := make([]byte, 0, len("\nsha256:")+hex.EncodedLen(len(sum))+1)
	out = append(out, "\nsha256:"...)
	out = append(out, hex.EncodeToString(sum[:])...)
	return append(out, '\n')
}

// Get looks a key up, returning (entry, true) on a verified hit. Corrupt or
// torn entries — checksum mismatch, unparsable payload, digest/key
// disagreement — are evicted from disk and reported as a miss, so the caller
// transparently re-executes and re-stores them.
func (s *Store) Get(k Key) (*Entry, bool) { return s.GetDigest(k.Digest()) }

// GetDigest is Get addressed directly by digest (the fleet-wide dedupe path
// of the job service, which carries digests, not keys).
func (s *Store) GetDigest(digest string) (*Entry, bool) {
	path := s.objectPath(digest)
	raw, err := os.ReadFile(path)
	if err != nil {
		s.misses.Add(1)
		return nil, false
	}
	entry, ok := decodeEntry(raw, digest)
	if !ok {
		// Bit flips, truncation, or a foreign file: evict so the slot heals
		// on the next write, and account the event.
		os.Remove(path)
		s.corruptEvicted.Add(1)
		s.misses.Add(1)
		return nil, false
	}
	s.hits.Add(1)
	return entry, true
}

// decodeEntry verifies and parses one on-disk entry image.
func decodeEntry(raw []byte, digest string) (*Entry, bool) {
	// The file is payload + "\nsha256:<hex>\n"; find the trailer.
	if len(raw) == 0 || raw[len(raw)-1] != '\n' {
		return nil, false
	}
	idx := bytes.LastIndex(raw[:len(raw)-1], []byte("\nsha256:"))
	if idx < 0 {
		return nil, false
	}
	payload := raw[:idx]
	if !bytes.Equal(raw[idx:], checksumSuffix(payload)) {
		return nil, false
	}
	var entry Entry
	if err := json.Unmarshal(payload, &entry); err != nil {
		return nil, false
	}
	if entry.V != EntryVersion || entry.Key.Digest() != digest {
		return nil, false
	}
	return &entry, true
}

// Put writes an entry synchronously: temp file in the final directory, then
// an atomic rename. Readers either see the complete checksummed file or
// nothing.
func (s *Store) Put(e *Entry) error {
	e.V = EntryVersion
	return s.put(e.Key.Digest(), e)
}

func (s *Store) put(digest string, e *Entry) error {
	payload, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("store: encode %s: %w", digest, err)
	}
	path := s.objectPath(digest)
	if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
		return fmt.Errorf("store: put %s: %w", digest, err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".put-*")
	if err != nil {
		return fmt.Errorf("store: put %s: %w", digest, err)
	}
	_, werr := tmp.Write(append(payload, checksumSuffix(payload)...))
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		if werr == nil {
			werr = cerr
		}
		return fmt.Errorf("store: put %s: %w", digest, werr)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: put %s: %w", digest, err)
	}
	s.puts.Add(1)
	return nil
}

// PutAsync queues an entry on the write-behind worker and returns
// immediately; the simulation hot path never waits on disk. A full queue
// applies back-pressure rather than dropping results. Errors are sticky and
// surfaced by Flush/Close. PutAsync after Close falls back to a synchronous
// write so late results are never lost.
func (s *Store) PutAsync(e *Entry) {
	e.V = EntryVersion
	digest := e.Key.Digest()
	s.lifeMu.Lock()
	if s.closed {
		s.lifeMu.Unlock()
		s.recordWriteErr(s.put(digest, e))
		return
	}
	s.queue <- putReq{digest: digest, entry: e}
	s.lifeMu.Unlock()
}

func (s *Store) writer() {
	defer close(s.done)
	for req := range s.queue {
		if req.entry == nil {
			close(req.ack)
			continue
		}
		s.recordWriteErr(s.put(req.digest, req.entry))
	}
}

func (s *Store) recordWriteErr(err error) {
	if err == nil {
		return
	}
	s.writeErrors.Add(1)
	s.errMu.Lock()
	if s.writeErr == nil {
		s.writeErr = err
	}
	s.errMu.Unlock()
}

// Flush blocks until every entry queued before the call is durably written,
// and returns the first asynchronous write error encountered so far.
func (s *Store) Flush() error {
	s.lifeMu.Lock()
	if s.closed {
		s.lifeMu.Unlock()
	} else {
		ack := make(chan struct{})
		s.queue <- putReq{ack: ack}
		s.lifeMu.Unlock()
		<-ack
	}
	s.errMu.Lock()
	defer s.errMu.Unlock()
	return s.writeErr
}

// Close drains the write-behind queue, stops the worker, and returns the
// first write error. The store remains readable, and synchronous writes
// still work, after Close.
func (s *Store) Close() error {
	s.lifeMu.Lock()
	if !s.closed {
		s.closed = true
		close(s.queue)
	}
	s.lifeMu.Unlock()
	<-s.done
	return s.Flush()
}

// Count walks the store and returns the number of entries on disk,
// regardless of validity. It is a maintenance helper (tests, fsck-style
// tooling), not a hot path.
func (s *Store) Count() (int, error) {
	n := 0
	err := filepath.WalkDir(filepath.Join(s.dir, "objects"), func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && !strings.HasPrefix(d.Name(), ".put-") {
			n++
		}
		return nil
	})
	return n, err
}

// RegisterMetrics exposes the store's accounting in r as nacho_store_*
// series.
func (s *Store) RegisterMetrics(r *telemetry.Registry) {
	r.NewCounterFunc("nacho_store_hits_total",
		"Persistent run-store hits (verified entries served).", s.hits.Load)
	r.NewCounterFunc("nacho_store_misses_total",
		"Persistent run-store misses.", s.misses.Load)
	r.NewCounterFunc("nacho_store_puts_total",
		"Entries written to the persistent run store.", s.puts.Load)
	r.NewCounterFunc("nacho_store_corrupt_evicted_total",
		"Corrupt or torn entries detected by checksum and evicted.", s.corruptEvicted.Load)
	r.NewCounterFunc("nacho_store_write_errors_total",
		"Failed run-store writes (results recomputed on the next miss).", s.writeErrors.Load)
}
