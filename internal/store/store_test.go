package store

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"nacho/internal/metrics"
)

func testKey() Key {
	return Key{
		Program:                "aes",
		ImageHash:              "0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef",
		System:                 "nacho",
		Engine:                 "aot",
		CacheSize:              512,
		Ways:                   2,
		Schedule:               "none",
		ForcedCheckpointPeriod: 0,
		ForcedCheckpointMargin: 0,
		MaxInstructions:        0,
		MaxCycles:              0,
		FinalFlush:             false,
		Verify:                 true,
		CheckGolden:            true,
		ClockHz:                50_000_000,
		HitCycles:              2,
		NVMCycles:              6,
		DirtyThreshold:         0,
		EnergyPrediction:       false,
	}
}

func testEntry(k Key) *Entry {
	e := &Entry{
		Key:        k,
		Outcome:    OutcomeOK,
		ExitCode:   0,
		ResultWord: 0xdeadbeef,
		Results:    []uint32{1, 2, 0xdeadbeef},
		Output:     []byte("hello\n"),
	}
	for i := range e.Regs {
		e.Regs[i] = uint32(i * 7)
	}
	e.Counters = metrics.Counters{Cycles: 123456, Instructions: 4321, Checkpoints: 7,
		NVMReadBytes: 1024, NVMWriteBytes: 2048, CacheHits: 99, CacheMisses: 11}
	return e
}

// goldenDigest pins the on-disk digest derivation: the canonical key
// serialization, and therefore every existing store, silently drifting is
// exactly what this constant is here to catch. If this test fails you have
// changed the store format — bump KeyVersion and regenerate the constant.
const goldenDigest = "ac53b15a36c375867cee9d7def45f9d3ff4d84b736456d720f51bfc7780bda5b"

func TestGoldenDigest(t *testing.T) {
	k := testKey()
	if got := k.Digest(); got != goldenDigest {
		t.Fatalf("default-config digest drifted:\n got %s\nwant %s\ncanonical: %s", got, goldenDigest, k.Canonical())
	}
}

// TestDigestSensitivity perturbs every field of the key, one at a time, and
// requires a distinct digest for each: no result-affecting knob may alias in
// the store. Reflection walks the struct so a future field cannot be added
// without extending the perturbation table (the test fails on an unknown
// field).
func TestDigestSensitivity(t *testing.T) {
	base := testKey()
	baseDigest := base.Digest()

	same := testKey()
	if d := same.Digest(); d != baseDigest {
		t.Fatalf("identical keys produced distinct digests: %s vs %s", d, baseDigest)
	}

	perturb := map[string]func(*Key){
		"Program":                func(k *Key) { k.Program = "sha" },
		"ImageHash":              func(k *Key) { k.ImageHash = strings.Repeat("f", 64) },
		"System":                 func(k *Key) { k.System = "clank" },
		"Engine":                 func(k *Key) { k.Engine = "ref" },
		"CacheSize":              func(k *Key) { k.CacheSize = 256 },
		"Ways":                   func(k *Key) { k.Ways = 4 },
		"Schedule":               func(k *Key) { k.Schedule = "periodic(250000)" },
		"ForcedCheckpointPeriod": func(k *Key) { k.ForcedCheckpointPeriod = 125000 },
		"ForcedCheckpointMargin": func(k *Key) { k.ForcedCheckpointMargin = 64 },
		"MaxInstructions":        func(k *Key) { k.MaxInstructions = 1 << 20 },
		"MaxCycles":              func(k *Key) { k.MaxCycles = 1 << 21 },
		"FinalFlush":             func(k *Key) { k.FinalFlush = true },
		"Verify":                 func(k *Key) { k.Verify = false },
		"CheckGolden":            func(k *Key) { k.CheckGolden = false },
		"ClockHz":                func(k *Key) { k.ClockHz = 100_000_000 },
		"HitCycles":              func(k *Key) { k.HitCycles = 3 },
		"NVMCycles":              func(k *Key) { k.NVMCycles = 9 },
		"DirtyThreshold":         func(k *Key) { k.DirtyThreshold = 8 },
		"EnergyPrediction":       func(k *Key) { k.EnergyPrediction = true },
	}

	typ := reflect.TypeOf(Key{})
	seen := map[string]string{"": baseDigest}
	for i := 0; i < typ.NumField(); i++ {
		name := typ.Field(i).Name
		mutate, ok := perturb[name]
		if !ok {
			t.Fatalf("Key field %s has no perturbation: extend the table (and the canonical serialization)", name)
		}
		k := testKey()
		mutate(&k)
		d := k.Digest()
		if prev, dup := seen[name]; dup {
			t.Fatalf("internal test error: field %s perturbed twice (%s)", name, prev)
		}
		for other, od := range seen {
			if d == od {
				t.Errorf("perturbing %s collides with %q (digest %s)", name, other, d)
			}
		}
		seen[name] = d
		// The perturbed field must round-trip through the canonical form too.
		if !strings.Contains(k.Canonical(), `"`) {
			t.Fatalf("canonical form of %s looks wrong: %s", name, k.Canonical())
		}
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	k := testKey()
	if _, ok := s.Get(k); ok {
		t.Fatal("empty store reported a hit")
	}
	want := testEntry(k)
	if err := s.Put(want); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(k)
	if !ok {
		t.Fatal("stored entry missed")
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
	if st := s.Stats(); st.Hits != 1 || st.Misses != 1 || st.Puts != 1 || st.CorruptEvicted != 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestPutAsyncFlush(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		k := testKey()
		k.CacheSize = 1 << uint(i%20)
		k.Ways = i
		s.PutAsync(testEntry(k))
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if n, err := s.Count(); err != nil || n != 50 {
		t.Fatalf("Count = %d, %v; want 50", n, err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen: entries survive the process "restart".
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	k := testKey()
	k.CacheSize = 1
	k.Ways = 0
	if _, ok := s2.Get(k); !ok {
		t.Fatal("entry lost across reopen")
	}
	// PutAsync after Close degrades to a synchronous write, never a loss.
	late := testKey()
	late.Program = "late"
	s.PutAsync(testEntry(late))
	if _, ok := s2.Get(late); !ok {
		t.Fatal("PutAsync after Close lost the entry")
	}
}

// findObject returns the single entry file under the store (helper for the
// corruption tests).
func findObject(t *testing.T, s *Store, k Key) string {
	t.Helper()
	path := s.objectPath(k.Digest())
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("object file missing: %v", err)
	}
	return path
}

func TestCorruptionBitFlipDetectedAndEvicted(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	k := testKey()
	if err := s.Put(testEntry(k)); err != nil {
		t.Fatal(err)
	}
	path := findObject(t, s, k)

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one bit in every byte position in turn would be slow; flip a few
	// spread across payload and trailer.
	for _, pos := range []int{0, len(raw) / 3, len(raw) / 2, len(raw) - 2} {
		mut := append([]byte(nil), raw...)
		mut[pos] ^= 0x10
		if err := os.WriteFile(path, mut, 0o666); err != nil {
			t.Fatal(err)
		}
		if e, ok := s.Get(k); ok {
			t.Fatalf("bit flip at %d served as a hit: %+v", pos, e)
		}
		if _, err := os.Stat(path); !os.IsNotExist(err) {
			t.Fatalf("corrupt entry (flip at %d) not evicted", pos)
		}
		// Transparent re-execution is modelled by the caller re-putting.
		if err := s.Put(testEntry(k)); err != nil {
			t.Fatal(err)
		}
	}
	if st := s.Stats(); st.CorruptEvicted != 4 {
		t.Fatalf("CorruptEvicted = %d, want 4", st.CorruptEvicted)
	}
}

func TestCorruptionTruncationDetectedAndEvicted(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	k := testKey()
	if err := s.Put(testEntry(k)); err != nil {
		t.Fatal(err)
	}
	path := findObject(t, s, k)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{0, 1, len(raw) / 2, len(raw) - 1} {
		if err := os.WriteFile(path, raw[:n], 0o666); err != nil {
			t.Fatal(err)
		}
		if _, ok := s.Get(k); ok {
			t.Fatalf("truncation to %d bytes served as a hit", n)
		}
		if _, err := os.Stat(path); !os.IsNotExist(err) {
			t.Fatalf("truncated entry (%d bytes) not evicted", n)
		}
		if err := s.Put(testEntry(k)); err != nil {
			t.Fatal(err)
		}
	}
}

// TestWrongDigestFileRejected: an entry renamed under a different digest (a
// foreign or tampered file) fails the key/digest cross-check even though its
// checksum is internally consistent.
func TestWrongDigestFileRejected(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	k := testKey()
	if err := s.Put(testEntry(k)); err != nil {
		t.Fatal(err)
	}
	src := findObject(t, s, k)
	other := testKey()
	other.Program = "sha"
	dst := s.objectPath(other.Digest())
	if err := os.MkdirAll(filepath.Dir(dst), 0o777); err != nil {
		t.Fatal(err)
	}
	raw, _ := os.ReadFile(src)
	if err := os.WriteFile(dst, raw, 0o666); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(other); ok {
		t.Fatal("entry stored under a foreign digest was served")
	}
}

func TestConcurrentPutGet(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	done := make(chan struct{})
	for w := 0; w < 4; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 25; i++ {
				k := testKey()
				k.Ways = i
				k.DirtyThreshold = w % 2 // overlap digests across goroutines
				s.PutAsync(testEntry(k))
				s.Get(k)
			}
		}(w)
	}
	for w := 0; w < 4; w++ {
		<-done
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if n, err := s.Count(); err != nil || n != 50 {
		t.Fatalf("Count = %d, %v; want 50", n, err)
	}
}

func TestCanonicalFormStable(t *testing.T) {
	k := testKey()
	want := fmt.Sprintf(`{"v":%d,"program":"aes","image_hash":"%s","system":"nacho","engine":"aot",`+
		`"cache":512,"ways":2,"schedule":"none","forced_period":0,"forced_margin":0,`+
		`"max_instructions":0,"max_cycles":0,"final_flush":false,"verify":true,"check_golden":true,`+
		`"clock_hz":50000000,"hit_cycles":2,"nvm_cycles":6,"dirty_threshold":0,"energy_prediction":false}`,
		KeyVersion, k.ImageHash)
	if got := k.Canonical(); got != want {
		t.Fatalf("canonical form drifted:\n got %s\nwant %s", got, want)
	}
}
