package metrics

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
)

func TestAddAccumulatesEveryField(t *testing.T) {
	a := Counters{
		Cycles: 1, Instructions: 2, Checkpoints: 3, CheckpointLines: 4,
		AbortedCkpts: 5, ForcedCkpts: 6, NVMReads: 7, NVMWrites: 8,
		NVMReadBytes: 9, NVMWriteBytes: 10, CacheHits: 11, CacheMisses: 12,
		Evictions: 13, SafeEvictions: 14, UnsafeEvictions: 15,
		DroppedStackLines: 16, Regions: 17, PowerFailures: 18, RestoreCycles: 19,
	}
	var sum Counters
	sum.Add(a)
	sum.Add(a)
	if sum.Cycles != 2 || sum.RestoreCycles != 38 || sum.Regions != 34 ||
		sum.DroppedStackLines != 32 || sum.NVMWriteBytes != 20 {
		t.Errorf("Add wrong: %+v", sum)
	}
}

func TestNVMBytes(t *testing.T) {
	c := Counters{NVMReadBytes: 100, NVMWriteBytes: 40}
	if c.NVMBytes() != 140 {
		t.Errorf("NVMBytes = %d", c.NVMBytes())
	}
}

func TestHitRate(t *testing.T) {
	c := Counters{CacheHits: 3, CacheMisses: 1}
	if c.HitRate() != 0.75 {
		t.Errorf("HitRate = %f", c.HitRate())
	}
	var zero Counters
	if zero.HitRate() != 0 {
		t.Error("empty hit rate should be 0")
	}
}

func TestStringIncludesKeyCounters(t *testing.T) {
	c := Counters{Cycles: 123456, Checkpoints: 42}
	s := c.String()
	for _, want := range []string{"cycles", "123456", "checkpoints", "42", "power failures"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}

func TestRecordIntervalBuckets(t *testing.T) {
	var c Counters
	for _, v := range []uint64{0, 999, 1000, 9999, 10_000, 99_999, 100_000, 1 << 40} {
		c.RecordInterval(v)
	}
	want := [4]uint64{2, 2, 2, 2}
	if c.IntervalHist != want {
		t.Errorf("hist = %v, want %v", c.IntervalHist, want)
	}
	var sum Counters
	sum.Add(c)
	sum.Add(c)
	if sum.IntervalHist != [4]uint64{4, 4, 4, 4} {
		t.Errorf("Add hist = %v", sum.IntervalHist)
	}
}

func TestAvgCheckpointLines(t *testing.T) {
	c := Counters{Checkpoints: 4, CheckpointLines: 10}
	if c.AvgCheckpointLines() != 2.5 {
		t.Errorf("avg = %f", c.AvgCheckpointLines())
	}
	var zero Counters
	if zero.AvgCheckpointLines() != 0 {
		t.Error("zero checkpoints should average 0")
	}
}

func TestMaxCheckpointLinesAdd(t *testing.T) {
	var sum Counters
	sum.Add(Counters{MaxCheckpointLines: 3})
	sum.Add(Counters{MaxCheckpointLines: 9})
	sum.Add(Counters{MaxCheckpointLines: 5})
	if sum.MaxCheckpointLines != 9 {
		t.Errorf("max = %d, want 9", sum.MaxCheckpointLines)
	}
}

// fillDistinct sets every counter field to a distinct value via the same
// reflective walk Diff and String use.
func fillDistinct(c *Counters) {
	v := reflect.ValueOf(c).Elem()
	for i := 0; i < v.NumField(); i++ {
		f := v.Field(i)
		if f.Kind() == reflect.Array {
			for j := 0; j < f.Len(); j++ {
				f.Index(j).SetUint(uint64(100*(i+1) + j))
			}
			continue
		}
		f.SetUint(uint64(100 * (i + 1)))
	}
}

// TestStringIncludesEveryField is the regression net for the old
// hand-maintained String, which silently omitted eight fields (Loads, Stores,
// AbortedCkpts, AdaptiveCkpts, Regions, RestoreCycles, MaxCheckpointLines and
// the interval histogram): every field's distinct value must render.
func TestStringIncludesEveryField(t *testing.T) {
	var c Counters
	fillDistinct(&c)
	s := c.String()
	v := reflect.ValueOf(c)
	tp := v.Type()
	for i := 0; i < v.NumField(); i++ {
		f := v.Field(i)
		if f.Kind() == reflect.Array {
			for j := 0; j < f.Len(); j++ {
				if want := fmt.Sprintf("%d", f.Index(j).Uint()); !strings.Contains(s, want) {
					t.Errorf("String() missing %s[%d] = %s:\n%s", tp.Field(i).Name, j, want, s)
				}
			}
			continue
		}
		if want := fmt.Sprintf("%d", f.Uint()); !strings.Contains(s, want) {
			t.Errorf("String() missing %s = %s:\n%s", tp.Field(i).Name, want, s)
		}
	}
}

// TestStringGolden pins the exact rendering, field order included.
func TestStringGolden(t *testing.T) {
	var c Counters
	fillDistinct(&c)
	want := `  cycles                          100
  instructions                    200
  loads                           300
  stores                          400
  checkpoints                     500
  checkpoint lines                600
  max checkpoint lines            700
  aborted ckpts                   800
  forced ckpts                    900
  adaptive ckpts                 1000
  nvm reads                      1100
  nvm writes                     1200
  nvm read bytes                 1300
  nvm write bytes                1400
  cache hits                     1500
  cache misses                   1600
  evictions                      1700
  safe evictions                 1800
  unsafe evictions               1900
  dropped stack lines            2000
  regions                        2100
  interval hist          2200/2201/2202/2203  (<1k / <10k / <100k / >=100k cycles)
  power failures                 2300
  restore cycles                 2400
`
	if got := c.String(); got != want {
		t.Errorf("String() drifted from golden:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestFieldLabel(t *testing.T) {
	for name, want := range map[string]string{
		"Cycles":             "cycles",
		"NVMReadBytes":       "nvm read bytes",
		"MaxCheckpointLines": "max checkpoint lines",
		"AbortedCkpts":       "aborted ckpts",
		"IntervalHist":       "interval hist",
	} {
		if got := fieldLabel(name); got != want {
			t.Errorf("fieldLabel(%q) = %q, want %q", name, got, want)
		}
	}
}
