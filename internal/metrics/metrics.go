// Package metrics defines the performance counters collected during
// simulation. They correspond to the paper's evaluation metrics
// (Section 6.1.3): execution time (cycles), number of checkpoints, number of
// NVM transfers, and the inputs needed to compute intermittent re-execution
// overhead.
package metrics

import (
	"fmt"
	"reflect"
	"strings"
	"unicode"
)

// Counters accumulates every observable event of one simulation run.
// The zero value is ready to use.
type Counters struct {
	// Execution.
	Cycles       uint64 // total active cycles (the paper's execution-time metric)
	Instructions uint64 // instructions retired, including re-executed ones
	Loads        uint64 // data loads retired
	Stores       uint64 // data stores retired

	// Checkpoints.
	Checkpoints        uint64 // committed checkpoints
	CheckpointLines    uint64 // dirty cache lines persisted by checkpoints
	MaxCheckpointLines uint64 // largest single checkpoint (capacitor sizing)
	AbortedCkpts       uint64 // checkpoints interrupted by a power failure before commit
	ForcedCkpts        uint64 // periodic forward-progress checkpoints (intermittent runs)
	AdaptiveCkpts      uint64 // dirty-threshold checkpoints (Section 8 adaptive policy)

	// NVM traffic (the paper's "number of NVM transfers" is bytes).
	NVMReads      uint64 // word-granular read accesses
	NVMWrites     uint64 // word-granular write accesses
	NVMReadBytes  uint64
	NVMWriteBytes uint64

	// Cache behaviour.
	CacheHits         uint64
	CacheMisses       uint64
	Evictions         uint64 // dirty lines written back outside checkpoints
	SafeEvictions     uint64 // write-dominated write-backs (no checkpoint needed)
	UnsafeEvictions   uint64 // read-dominated write-backs (checkpoint triggered)
	DroppedStackLines uint64 // dirty lines discarded by stack tracking

	// ReplayCache idempotent regions (region boundaries committed).
	Regions uint64

	// Checkpoint-interval histogram: cycles between consecutive commits,
	// bucketed <1k / <10k / <100k / >=100k — the "checkpointing frequency"
	// statistic of paper Section 8.
	IntervalHist [4]uint64

	// Intermittency.
	PowerFailures uint64
	RestoreCycles uint64 // cycles spent restoring checkpoints after reboots
}

// Add accumulates other into c.
func (c *Counters) Add(other Counters) {
	c.Cycles += other.Cycles
	c.Instructions += other.Instructions
	c.Loads += other.Loads
	c.Stores += other.Stores
	c.Checkpoints += other.Checkpoints
	c.CheckpointLines += other.CheckpointLines
	if other.MaxCheckpointLines > c.MaxCheckpointLines {
		c.MaxCheckpointLines = other.MaxCheckpointLines
	}
	c.AbortedCkpts += other.AbortedCkpts
	c.ForcedCkpts += other.ForcedCkpts
	c.AdaptiveCkpts += other.AdaptiveCkpts
	c.NVMReads += other.NVMReads
	c.NVMWrites += other.NVMWrites
	c.NVMReadBytes += other.NVMReadBytes
	c.NVMWriteBytes += other.NVMWriteBytes
	c.CacheHits += other.CacheHits
	c.CacheMisses += other.CacheMisses
	c.Evictions += other.Evictions
	c.SafeEvictions += other.SafeEvictions
	c.UnsafeEvictions += other.UnsafeEvictions
	c.DroppedStackLines += other.DroppedStackLines
	for i := range c.IntervalHist {
		c.IntervalHist[i] += other.IntervalHist[i]
	}
	c.Regions += other.Regions
	c.PowerFailures += other.PowerFailures
	c.RestoreCycles += other.RestoreCycles
}

// RecordInterval buckets one checkpoint interval length in cycles.
func (c *Counters) RecordInterval(cycles uint64) {
	switch {
	case cycles < 1_000:
		c.IntervalHist[0]++
	case cycles < 10_000:
		c.IntervalHist[1]++
	case cycles < 100_000:
		c.IntervalHist[2]++
	default:
		c.IntervalHist[3]++
	}
}

// AvgCheckpointLines is the paper Section 8 "average size of a checkpoint"
// statistic, in cache lines.
func (c *Counters) AvgCheckpointLines() float64 {
	if c.Checkpoints == 0 {
		return 0
	}
	return float64(c.CheckpointLines) / float64(c.Checkpoints)
}

// NVMBytes is the paper's "NVM transfers" metric: total bytes moved between
// the processor/cache and non-volatile memory in either direction.
func (c *Counters) NVMBytes() uint64 { return c.NVMReadBytes + c.NVMWriteBytes }

// HitRate returns the data-cache hit rate in [0,1], or 0 for cacheless runs.
func (c *Counters) HitRate() float64 {
	total := c.CacheHits + c.CacheMisses
	if total == 0 {
		return 0
	}
	return float64(c.CacheHits) / float64(total)
}

// Diff lists the fields on which two counter sets disagree, as
// "Field: got vs want" lines (a testing aid; empty means equal).
func (c Counters) Diff(o Counters) []string {
	var out []string
	cv, ov := reflect.ValueOf(c), reflect.ValueOf(o)
	t := cv.Type()
	for i := 0; i < t.NumField(); i++ {
		a, b := cv.Field(i).Interface(), ov.Field(i).Interface()
		if a != b {
			out = append(out, fmt.Sprintf("%s: %v vs %v", t.Field(i).Name, a, b))
		}
	}
	return out
}

// String renders the counters as an aligned human-readable block. It walks
// the struct fields the same way Diff does, so a newly added counter can
// never silently drop out of the rendering (the old hand-maintained row list
// omitted Loads, Stores, AbortedCkpts, AdaptiveCkpts, Regions, RestoreCycles,
// MaxCheckpointLines and the interval histogram).
func (c *Counters) String() string {
	var b strings.Builder
	v := reflect.ValueOf(*c)
	t := v.Type()
	for i := 0; i < t.NumField(); i++ {
		name, fv := t.Field(i).Name, v.Field(i)
		if fv.Kind() == reflect.Array { // IntervalHist
			parts := make([]string, fv.Len())
			for j := range parts {
				parts[j] = fmt.Sprintf("%d", fv.Index(j).Uint())
			}
			fmt.Fprintf(&b, "  %-22s %12s  (<1k / <10k / <100k / >=100k cycles)\n",
				fieldLabel(name), strings.Join(parts, "/"))
			continue
		}
		fmt.Fprintf(&b, "  %-22s %12d\n", fieldLabel(name), fv.Uint())
	}
	return b.String()
}

// fieldLabel renders a counter field name as a spaced lowercase label,
// keeping acronym runs intact: NVMReadBytes -> "nvm read bytes",
// MaxCheckpointLines -> "max checkpoint lines".
func fieldLabel(name string) string {
	runes := []rune(name)
	var b strings.Builder
	for i, r := range runes {
		startsWord := i > 0 && unicode.IsUpper(r) &&
			(!unicode.IsUpper(runes[i-1]) || (i+1 < len(runes) && unicode.IsLower(runes[i+1])))
		if startsWord {
			b.WriteByte(' ')
		}
		b.WriteRune(unicode.ToLower(r))
	}
	return b.String()
}
