// sim.FastPort implementations for the baseline systems (see
// internal/core/fastport.go for the NACHO controller's). Each port serves
// only plain cache hits with settled metadata — everything that could evict,
// checkpoint, cut a region, or read the clock declines and falls back to the
// full Load/Store, which is what keeps results, counters, and probe streams
// byte-identical. Every port is withheld while a probe is attached.
//
// Clank deliberately has no port: it is cacheless, so every access classifies
// against its address-monitor hardware and pays a dynamic NVM cost — there is
// no "plain hit" to devirtualize (its fast path in hardware, non-WAR
// accesses, still reaches NVM and the clock here).
package systems

import "nacho/internal/sim"

// FastPort implements sim.FastMemory for the volatile baseline: every access
// is an SRAM hit, so both directions are servable unconditionally. (The AOT
// engine prefers the even cheaper mem.DirectPort when available; this port is
// what the batched fast-path engine uses.)
func (v *Volatile) FastPort() (sim.FastPort, bool) {
	return sim.FastPort{
		LoadHit: func(addr uint32, size int) (uint32, bool) {
			v.c.CacheHits++
			return v.space.Read(addr, size), true
		},
		StoreHit: func(addr uint32, size int, val uint32) bool {
			v.c.CacheHits++
			v.space.Write(addr, size, val)
			return true
		},
		Epoch:     func() uint64 { return v.epoch },
		HitCycles: v.cost.HitCycles,
	}, v.probe == nil
}

// FastPort implements sim.FastMemory for the write-through baseline: read
// hits are servable; stores always pay the NVM write (and may trigger the
// exact tracker's WAR checkpoint), so StoreHit stays nil.
func (w *WriteThrough) FastPort() (sim.FastPort, bool) {
	return sim.FastPort{
		LoadHit: func(addr uint32, size int) (uint32, bool) {
			line := w.cache.Probe(addr)
			if line == nil {
				return 0, false
			}
			w.tracker.ObserveRead(addr, size)
			w.c.CacheHits++
			w.cache.Touch(line)
			return line.ReadData(addr, size), true
		},
		Epoch:     func() uint64 { return w.epoch },
		HitCycles: w.cost.HitCycles,
	}, w.probe == nil
}

// FastPort implements sim.FastMemory for ReplayCache: read hits are servable;
// stores read the clock to enforce the region-length cap (and may close a
// region), so StoreHit stays nil.
func (r *ReplayCache) FastPort() (sim.FastPort, bool) {
	return sim.FastPort{
		LoadHit: func(addr uint32, size int) (uint32, bool) {
			line := r.cache.Probe(addr)
			if line == nil {
				return 0, false
			}
			r.tracker.ObserveRead(addr, size)
			r.c.CacheHits++
			r.cache.Touch(line)
			return line.ReadData(addr, size), true
		},
		Epoch:     func() uint64 { return r.epoch },
		HitCycles: r.cost.HitCycles,
	}, r.probe == nil
}

// FastPort implements sim.FastMemory for PROWL: it has no WAR metadata on
// hits (checkpoints happen only on forced dirty evictions, i.e. misses), so
// both directions are servable on a lookup hit.
func (p *PROWL) FastPort() (sim.FastPort, bool) {
	return sim.FastPort{
		LoadHit: func(addr uint32, size int) (uint32, bool) {
			line := p.lookup(addr)
			if line == nil {
				return 0, false
			}
			p.c.CacheHits++
			p.touch(line)
			return line.ReadData(addr, size), true
		},
		StoreHit: func(addr uint32, size int, val uint32) bool {
			line := p.lookup(addr)
			if line == nil {
				return false
			}
			p.c.CacheHits++
			p.touch(line)
			line.WriteData(addr, size, val)
			line.Dirty = true
			return true
		},
		Epoch:     func() uint64 { return p.epoch },
		HitCycles: p.cost.HitCycles,
	}, p.probe == nil
}
