package systems

import (
	"fmt"

	"nacho/internal/cache"
	"nacho/internal/checkpoint"
	"nacho/internal/mem"
	"nacho/internal/metrics"
	"nacho/internal/sim"
)

// PROWL models the consistency-aware replacement policy of Hoseinghorban et
// al. [28] as the paper characterizes it: a 2-way data cache (PROWL only
// publishes hash functions for two ways) that "avoids frequent checkpoints
// due to WARs by employing a custom cache replacement policy that delays the
// eviction of a dirty cache block". Each way is indexed by its own hash
// (skewed associativity); victim selection prefers invalid, then clean
// lines, and before surrendering a dirty line PROWL tries its relocation
// move (the "cache relocation strategy" the paper credits for dijkstra,
// Section 6.2.3): migrating one dirty candidate to its alternate way's slot
// when that slot is clean. PROWL has no WAR detector, so when it is finally
// forced to evict a dirty line it must create a full checkpoint (flush all
// dirty lines plus registers, double-buffered) to stay incorruptible. See
// DESIGN.md for the substitution note.
type PROWL struct {
	ways    [2][]cache.Line
	numSets int
	stamp   uint64

	nvm  *mem.NVM
	ckpt *checkpoint.Store
	cost mem.CostModel

	clk   sim.Clock
	regs  sim.RegSource
	c     *metrics.Counters
	probe sim.Probe
	epoch uint64 // sim.FastPort invalidation epoch (see fastport.go)
}

// NewPROWL builds a 2-way skewed cache of sizeBytes data capacity.
func NewPROWL(nvm *mem.NVM, sizeBytes int, checkpointBase uint32, cost mem.CostModel) (*PROWL, error) {
	lines := sizeBytes / cache.LineSize
	if lines <= 0 || lines%2 != 0 {
		return nil, fmt.Errorf("prowl: size %dB not divisible into 2 ways of %dB lines", sizeBytes, cache.LineSize)
	}
	numSets := lines / 2
	if numSets&(numSets-1) != 0 {
		return nil, fmt.Errorf("prowl: set count %d is not a power of two", numSets)
	}
	p := &PROWL{numSets: numSets, nvm: nvm, cost: cost,
		ckpt: checkpoint.NewStore(nvm, checkpointBase, lines)}
	p.ways[0] = make([]cache.Line, numSets)
	p.ways[1] = make([]cache.Line, numSets)
	return p, nil
}

// Name implements sim.System.
func (p *PROWL) Name() string { return "prowl" }

// Attach implements sim.System.
func (p *PROWL) Attach(clk sim.Clock, regs sim.RegSource, c *metrics.Counters) {
	p.clk, p.regs, p.c = clk, regs, c
	p.nvm.Attach(clk, c)
	p.ckpt.Init(regs.RegSnapshot())
}

// AttachProbe implements sim.System. PROWL owns its line storage directly
// (skewed 2-way, no cache.Cache), so it emits its own fill events.
func (p *PROWL) AttachProbe(probe sim.Probe) {
	p.epoch++
	p.probe = probe
	p.nvm.AttachProbe(probe)
	p.ckpt.AttachProbe(probe)
}

// index computes the per-way skewed hash of a line address.
func (p *PROWL) index(way int, addr uint32) int {
	la := addr >> 2
	if way == 0 {
		return int(la) & (p.numSets - 1)
	}
	// Second hash: a multiplicative scramble so conflicting lines in way 0
	// spread over different sets in way 1 (skewed associativity).
	return int((la*2654435761)>>16) & (p.numSets - 1)
}

func (p *PROWL) slot(way int, addr uint32) *cache.Line {
	return &p.ways[way][p.index(way, addr)]
}

func (p *PROWL) touch(l *cache.Line) {
	p.stamp++
	l.SetLRU(p.stamp)
}

// lookup returns the hit line or nil.
func (p *PROWL) lookup(addr uint32) *cache.Line {
	tag := addr >> 2
	for w := 0; w < 2; w++ {
		if l := p.slot(w, addr); l.Valid && l.Tag == tag {
			return l
		}
	}
	return nil
}

// victim implements PROWL's dirty-eviction-delaying policy over the two
// candidate slots: invalid first, then clean (older first), then the older
// dirty line.
func (p *PROWL) victim(addr uint32) *cache.Line {
	l0, l1 := p.slot(0, addr), p.slot(1, addr)
	switch {
	case !l0.Valid:
		return l0
	case !l1.Valid:
		return l1
	case !l0.Dirty && l1.Dirty:
		return l0
	case l0.Dirty && !l1.Dirty:
		return l1
	case l0.LRU() <= l1.LRU():
		return l0
	default:
		return l1
	}
}

// Load implements sim.System.
func (p *PROWL) Load(addr uint32, size int) uint32 {
	line, hit := p.access(addr, true, size)
	p.clk.Advance(p.cost.HitCycles)
	v := line.ReadData(addr, size)
	if p.probe != nil {
		p.probe.OnAccess(sim.AccessEvent{Cycle: p.clk.Now(), Addr: addr, Size: size, Value: v, Class: accessClass(hit)})
	}
	return v
}

// Store implements sim.System.
func (p *PROWL) Store(addr uint32, size int, val uint32) {
	line, hit := p.access(addr, false, size)
	p.clk.Advance(p.cost.HitCycles)
	line.WriteData(addr, size, val)
	line.Dirty = true
	if p.probe != nil {
		p.probe.OnAccess(sim.AccessEvent{Cycle: p.clk.Now(), Addr: addr, Size: size, Value: val, Store: true, Class: accessClass(hit)})
	}
}

func (p *PROWL) access(addr uint32, isRead bool, size int) (*cache.Line, bool) {
	if line := p.lookup(addr); line != nil {
		p.c.CacheHits++
		p.touch(line)
		return line, true
	}
	p.epoch++ // replacement (and possible relocation) changes the servable hit set
	p.c.CacheMisses++
	line := p.victim(addr)
	if line.Valid && line.Dirty {
		// Relocation: try to move one of the dirty candidates into its
		// alternate way's slot instead of evicting it.
		if moved := p.relocate(addr); moved != nil {
			line = moved
		} else {
			// No WAR detector: a forced dirty eviction requires a
			// checkpoint to stay incorruptible.
			p.c.UnsafeEvictions++
			if p.probe != nil {
				p.probe.OnWriteBack(sim.WriteBackEvent{Cycle: p.clk.Now(), Addr: line.Addr(), Size: 4, Verdict: sim.VerdictUnsafe})
			}
			p.checkpoint(false)
		}
	}
	line.Valid = true
	line.Tag = addr >> 2
	line.Dirty = false
	p.touch(line)
	if isRead || size < cache.LineSize {
		line.Data = p.nvm.Read(addr&^3, 4)
	} else {
		line.Data = 0
	}
	if p.probe != nil {
		p.probe.OnLineFill(sim.FillEvent{Addr: addr &^ 3})
	}
	return line, false
}

// relocate tries to free a slot for addr by migrating one of its two dirty
// candidates to the candidate's OTHER way, if that destination is clean (or
// invalid). It returns the freed line, now invalid, or nil.
func (p *PROWL) relocate(addr uint32) *cache.Line {
	for w := 0; w < 2; w++ {
		cand := p.slot(w, addr)
		if !cand.Valid || !cand.Dirty {
			continue
		}
		dest := p.slot(1-w, cand.Addr())
		if dest == cand {
			continue
		}
		if dest.Valid && dest.Dirty {
			continue
		}
		// Destination is clean: dropping it loses nothing (NVM has it).
		*dest = *cand
		p.touch(dest)
		*cand = cache.Line{}
		return cand
	}
	return nil
}

func (p *PROWL) checkpoint(forced bool) {
	p.epoch++
	var lines []checkpoint.Line
	p.forEach(func(l *cache.Line) {
		if l.Valid && l.Dirty {
			lines = append(lines, checkpoint.Line{Addr: l.Addr(), Data: l.Data})
		}
	})
	p.ckpt.Checkpoint(p.regs.RegSnapshot(), lines, func() {
		p.c.Checkpoints++
		p.c.CheckpointLines += uint64(len(lines))
		if n := uint64(len(lines)); n > p.c.MaxCheckpointLines {
			p.c.MaxCheckpointLines = n
		}
		if forced {
			p.c.ForcedCkpts++
		}
		if p.probe != nil {
			p.probe.OnCheckpointCommit(sim.CheckpointEvent{Cycle: p.clk.Now(), Kind: sim.CheckpointCommit, Lines: len(lines), Forced: forced})
		}
	})
	p.forEach(func(l *cache.Line) { l.Dirty = false })
}

func (p *PROWL) forEach(f func(*cache.Line)) {
	for w := 0; w < 2; w++ {
		for i := range p.ways[w] {
			f(&p.ways[w][i])
		}
	}
}

// Fork implements sim.Forkable: forked NVM plus deep-copied way arrays, LRU
// stamp, and checkpoint-store position.
func (p *PROWL) Fork(clk sim.Clock, regs sim.RegSource, c *metrics.Counters) sim.System {
	nvm := p.nvm.Fork()
	nvm.Attach(clk, c)
	f := &PROWL{
		numSets: p.numSets,
		stamp:   p.stamp,
		nvm:     nvm,
		ckpt:    p.ckpt.Fork(nvm),
		cost:    p.cost,
		clk:     clk,
		regs:    regs,
		c:       c,
		epoch:   p.epoch,
	}
	for w := 0; w < 2; w++ {
		f.ways[w] = make([]cache.Line, len(p.ways[w]))
		copy(f.ways[w], p.ways[w])
	}
	return f
}

// NotifySP implements sim.System (no stack tracking in PROWL).
func (p *PROWL) NotifySP(uint32) {}

// ForceCheckpoint implements sim.System.
func (p *PROWL) ForceCheckpoint() { p.checkpoint(true) }

// PowerFailure implements sim.System.
func (p *PROWL) PowerFailure() {
	p.epoch++
	p.forEach(func(l *cache.Line) { *l = cache.Line{} })
	p.stamp = 0
}

// Restore implements sim.System.
func (p *PROWL) Restore() (sim.Snapshot, bool) {
	p.epoch++
	return p.ckpt.Restore()
}

// Mem implements sim.System.
func (p *PROWL) Mem() sim.MemReaderWriter { return p.nvm }
