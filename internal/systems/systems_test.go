package systems

import (
	"testing"

	"nacho/internal/cache"
	"nacho/internal/mem"
	"nacho/internal/metrics"
	"nacho/internal/sim"
)

const (
	testStackTop = 0x000A_0000
	testCkptBase = 0x000E_0000
)

type fakeRegs struct{}

func (fakeRegs) RegSnapshot() sim.Snapshot {
	var s sim.Snapshot
	s.Regs[1] = testStackTop
	return s
}

func testConfig() Config {
	return Config{CacheSize: 64, Ways: 2, StackTop: testStackTop,
		CheckpointBase: testCkptBase, Cost: mem.DefaultCostModel()}
}

// build constructs and attaches a system over fresh NVM.
func build(t *testing.T, kind Kind) (sim.System, *sim.TestClock, *metrics.Counters) {
	t.Helper()
	clk := &sim.TestClock{}
	c := &metrics.Counters{}
	sys, err := Build(kind, mem.NewSpace(), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	sys.Attach(clk, fakeRegs{}, c)
	return sys, clk, c
}

func TestBuildAllKinds(t *testing.T) {
	for _, kind := range AllKinds() {
		sys, err := Build(kind, mem.NewSpace(), testConfig())
		if err != nil {
			t.Errorf("Build(%s): %v", kind, err)
			continue
		}
		if sys.Name() != string(kind) && kind != KindVolatile {
			// Volatile's name matches too; this is a sanity check only.
			t.Errorf("Build(%s).Name() = %s", kind, sys.Name())
		}
	}
	if _, err := Build("bogus", mem.NewSpace(), testConfig()); err == nil {
		t.Error("unknown kind accepted")
	}
	cfg := testConfig()
	cfg.Ways = 4
	if _, err := Build(KindPROWL, mem.NewSpace(), cfg); err == nil {
		t.Error("prowl accepted 4 ways")
	}
}

func TestVolatileCosts(t *testing.T) {
	sys, clk, _ := build(t, KindVolatile)
	sys.Store(0x100, 4, 7)
	if clk.Cycle != 2 {
		t.Errorf("store cost %d, want 2", clk.Cycle)
	}
	if got := sys.Load(0x100, 4); got != 7 {
		t.Errorf("load = %d, want 7", got)
	}
	if clk.Cycle != 4 {
		t.Errorf("load cost: total %d, want 4", clk.Cycle)
	}
	if _, ok := sys.Restore(); ok {
		t.Error("volatile system restored a checkpoint")
	}
}

func TestClankWARCheckpointing(t *testing.T) {
	sys, _, c := build(t, KindClank)
	sys.Store(0x100, 4, 1) // write-first: safe
	if c.Checkpoints != 0 {
		t.Fatal("checkpoint on write-dominated store")
	}
	sys.Load(0x200, 4)
	sys.Store(0x200, 4, 2) // read-then-write: WAR
	if c.Checkpoints != 1 {
		t.Fatalf("checkpoints = %d, want 1", c.Checkpoints)
	}
	// After the checkpoint the same location becomes write-dominated.
	sys.Store(0x200, 4, 3)
	if c.Checkpoints != 1 {
		t.Error("extra checkpoint on now write-dominated store")
	}
	// Byte granularity: writing a sibling byte of a read word is a WAR.
	sys.Load(0x300, 4)
	sys.Store(0x301, 1, 9)
	if c.Checkpoints != 2 {
		t.Errorf("byte-granular WAR missed: checkpoints = %d", c.Checkpoints)
	}
}

func TestClankEveryAccessHitsNVM(t *testing.T) {
	sys, clk, c := build(t, KindClank)
	sys.Load(0x100, 4)
	sys.Load(0x100, 4) // no cache: second read also pays NVM latency
	if clk.Cycle != 12 {
		t.Errorf("two loads cost %d, want 12", clk.Cycle)
	}
	if c.NVMReads != 2 {
		t.Errorf("NVMReads = %d, want 2", c.NVMReads)
	}
}

func TestPROWLPrefersCleanVictim(t *testing.T) {
	sys, _, c := build(t, KindPROWL)
	p := sys.(*PROWL)
	// Occupy both candidate slots of address 0x100's set: one dirty, one
	// clean, then force a miss that conflicts with both.
	p.Store(0x100, 4, 1) // dirty in one way
	// Find an address hashing to the same slots. With 8 sets (64B/2-way),
	// addresses 0x100 and 0x100+8*4 share way-0 slots.
	alt := uint32(0x100 + 8*4)
	p.Load(alt, 4) // clean line in the other candidate slot (or same set)
	ckptsBefore := c.Checkpoints
	p.Load(alt+8*4, 4) // force a replacement decision
	// The clean line must have been evicted rather than the dirty one, so no
	// checkpoint was needed.
	if c.Checkpoints != ckptsBefore {
		t.Errorf("PROWL checkpointed instead of evicting a clean line")
	}
	// Hammer one way-0 set with dirty stores: the skewed way-1 slots fill
	// up too, eventually forcing a dirty eviction and thus a checkpoint.
	sys2, _, c2 := build(t, KindPROWL)
	p2 := sys2.(*PROWL)
	for i := uint32(0); i < 64 && c2.Checkpoints == 0; i++ {
		p2.Store(0x100+32*i, 4, i)
	}
	if c2.Checkpoints == 0 {
		t.Error("PROWL never checkpointed with all-dirty candidates")
	}
}

func TestReplayCacheRegionsAndJIT(t *testing.T) {
	sys, _, c := build(t, KindReplayCache)
	r := sys.(*ReplayCache)
	r.Store(0x100, 4, 1)
	if c.Regions != 0 {
		t.Fatal("region ended without a WAR")
	}
	r.Load(0x200, 4)
	r.Store(0x200, 4, 2) // WAR: ends the region first
	if c.Regions != 1 {
		t.Fatalf("regions = %d, want 1", c.Regions)
	}
	// Region-end persisted the dirty line from the previous region.
	if r.Mem().ReadRaw(0x100, 4) != 1 {
		t.Error("region end did not persist prior stores")
	}
	if c.Checkpoints != 0 {
		t.Error("replaycache checkpointed without power failure")
	}

	// JIT path: a power failure flushes dirty lines and saves registers.
	r.Store(0x300, 4, 7)
	r.PowerFailure()
	if r.Mem().ReadRaw(0x300, 4) != 7 {
		t.Error("JIT flush lost a dirty line")
	}
	if _, ok := r.Restore(); !ok {
		t.Error("no JIT checkpoint to restore")
	}
	if c.Checkpoints != 1 {
		t.Errorf("JIT checkpoints = %d, want 1", c.Checkpoints)
	}
}

func TestReplayCacheRegionCap(t *testing.T) {
	sys, clk, c := build(t, KindReplayCache)
	r := sys.(*ReplayCache)
	// Stores without WARs, spread past the region cap, must still cut
	// regions (the compiler-conservatism bound).
	for i := uint32(0); i < 64; i++ {
		r.Store(0x100+4*(i%4), 4, i)
		clk.Advance(50)
	}
	if c.Regions == 0 {
		t.Error("region cap never fired")
	}
}

func TestOracleMatchesExactSemantics(t *testing.T) {
	sys, _, c := build(t, KindOracleNACHO)
	// Read a, evict it with enough conflicting reads, then write a: the
	// eventual write-back of a must be classified unsafe (checkpoint), since
	// exact tracking knows a was read first.
	sys.Load(0x100, 4)
	sys.Store(0x100, 4, 9) // hit: read-dominated word now dirty
	// Conflict both ways of 0x100's set (8 sets): +32B strides.
	sys.Store(0x100+32, 4, 1)
	sys.Store(0x100+64, 4, 2) // evicts the read-dominated dirty line
	if c.Checkpoints != 1 {
		t.Errorf("oracle checkpoints = %d, want 1", c.Checkpoints)
	}
}

func TestVerifyConfigFor(t *testing.T) {
	if cfg := VerifyConfigFor(KindNACHO); !cfg.RollbackOnFailure || !cfg.CheckWAR {
		t.Error("nacho verify config wrong")
	}
	if cfg := VerifyConfigFor(KindReplayCache); cfg.RollbackOnFailure || cfg.CheckWAR {
		t.Error("replaycache verify config wrong")
	}
	if cfg := VerifyConfigFor(KindVolatile); cfg.RollbackOnFailure || cfg.CheckWAR {
		t.Error("volatile verify config wrong")
	}
}

func TestWriteThroughSemantics(t *testing.T) {
	sys, clk, c := build(t, KindWriteThrough)
	w := sys.(*WriteThrough)

	// Store writes through to NVM immediately.
	w.Store(0x100, 4, 7)
	if w.Mem().ReadRaw(0x100, 4) != 7 {
		t.Fatal("store did not reach NVM")
	}
	if c.NVMWrites != 1 {
		t.Errorf("NVMWrites = %d, want 1", c.NVMWrites)
	}
	// Read misses fill the cache; repeats hit without NVM traffic.
	w.Load(0x100, 4)
	readsAfterFill := c.NVMReads
	cyc := clk.Cycle
	if got := w.Load(0x100, 4); got != 7 {
		t.Fatalf("cached load = %d", got)
	}
	if c.NVMReads != readsAfterFill {
		t.Error("cache hit still accessed NVM")
	}
	if clk.Cycle-cyc != 2 {
		t.Errorf("hit cost = %d cycles, want 2", clk.Cycle-cyc)
	}
	// Store to a cached line keeps the cache coherent.
	w.Store(0x100, 4, 9)
	if got := w.Load(0x100, 4); got != 9 {
		t.Errorf("cache stale after write-through: %d", got)
	}

	// WAR: read-dominated location triggers a register checkpoint.
	w.Load(0x200, 4)
	ckpts := c.Checkpoints
	w.Store(0x200, 4, 1)
	if c.Checkpoints != ckpts+1 {
		t.Error("write-through missed the WAR checkpoint")
	}

	// Power failure loses only locality.
	w.PowerFailure()
	if got := w.Load(0x100, 4); got != 9 {
		t.Errorf("data lost across power failure: %d", got)
	}
	if _, ok := w.Restore(); !ok {
		t.Error("no checkpoint to restore")
	}
}

func TestWriteThroughLinesNeverDirty(t *testing.T) {
	sys, _, _ := build(t, KindWriteThrough)
	w := sys.(*WriteThrough)
	for i := uint32(0); i < 64; i++ {
		w.Store(0x100+4*i, 4, i)
		w.Load(0x100+4*i, 4)
	}
	w.cache.ForEach(func(l *cache.Line) {
		if l.Dirty {
			t.Fatal("write-through produced a dirty line")
		}
	})
}

func TestPROWLRelocationAvoidsCheckpoint(t *testing.T) {
	sys, _, c := build(t, KindPROWL)
	p := sys.(*PROWL)
	// Dirty a line in way 0, then fill its alternate (way 1) slot's
	// conflicting address so relocation is exercised when a second dirty
	// store conflicts in way 0.
	p.Store(0x100, 4, 1)      // dirty line; way-0 index of 0x100
	alt := uint32(0x100 + 32) // same way-0 set (8 sets * 4 B)
	p.Store(alt, 4, 2)        // may share way-0 slot: relocation or free slot
	p.Store(alt+32, 4, 3)     // third conflicting dirty store
	// With relocation, three conflicting dirty lines fit before any
	// checkpoint (two way-0 aliases relocated into distinct way-1 slots).
	if c.Checkpoints != 0 {
		t.Errorf("relocation failed to absorb conflicts: %d checkpoints", c.Checkpoints)
	}
	// All three values must still be readable.
	for i, a := range []uint32{0x100, alt, alt + 32} {
		if got := p.Load(a, 4); got != uint32(i+1) {
			t.Errorf("Load(%#x) = %d, want %d", a, got, i+1)
		}
	}
}
