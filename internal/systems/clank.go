package systems

import (
	"nacho/internal/checkpoint"
	"nacho/internal/mem"
	"nacho/internal/metrics"
	"nacho/internal/sim"
	"nacho/internal/track"
)

// Clank is the idealized version of Clank [27] used by the paper
// (Section 6.1.2): a cacheless system whose every access goes straight to
// NVM, with a hardware memory tracker that detects writes to read-dominated
// addresses and checkpoints the registers (double-buffered) before letting
// such a write proceed. As in the paper, the tracker is ideal — unbounded
// address sets, no tracking-access cost.
type Clank struct {
	nvm     *mem.NVM
	ckpt    *checkpoint.Store
	tracker *track.Tracker

	clk   sim.Clock
	regs  sim.RegSource
	c     *metrics.Counters
	probe sim.Probe
}

// NewClank builds the baseline over the given NVM. checkpointBase locates
// the double-buffered register checkpoint area.
func NewClank(nvm *mem.NVM, checkpointBase uint32) *Clank {
	return &Clank{
		nvm:     nvm,
		ckpt:    checkpoint.NewStore(nvm, checkpointBase, 0),
		tracker: track.New(),
	}
}

// Name implements sim.System.
func (k *Clank) Name() string { return "clank" }

// Attach implements sim.System.
func (k *Clank) Attach(clk sim.Clock, regs sim.RegSource, c *metrics.Counters) {
	k.clk, k.regs, k.c = clk, regs, c
	k.nvm.Attach(clk, c)
	k.ckpt.Init(regs.RegSnapshot())
}

// AttachProbe implements sim.System.
func (k *Clank) AttachProbe(p sim.Probe) {
	k.probe = p
	k.nvm.AttachProbe(p)
	k.ckpt.AttachProbe(p)
}

// Load implements sim.System: a direct NVM read.
func (k *Clank) Load(addr uint32, size int) uint32 {
	k.tracker.ObserveRead(addr, size)
	v := k.nvm.Read(addr, size)
	if k.probe != nil {
		k.probe.OnAccess(sim.AccessEvent{Cycle: k.clk.Now(), Addr: addr, Size: size, Value: v, Class: sim.AccessNVM})
	}
	return v
}

// Store implements sim.System: a direct NVM write, preceded by a register
// checkpoint when the target is read-dominated (the WAR case).
func (k *Clank) Store(addr uint32, size int, val uint32) {
	if k.tracker.ReadDominated(addr, size) {
		k.checkpoint(false)
	}
	k.tracker.ObserveWrite(addr, size)
	k.nvm.Write(addr, size, val)
	if k.probe != nil {
		k.probe.OnWriteBack(sim.WriteBackEvent{Cycle: k.clk.Now(), Addr: addr, Size: size, Verdict: sim.VerdictWriteThrough})
		k.probe.OnAccess(sim.AccessEvent{Cycle: k.clk.Now(), Addr: addr, Size: size, Value: val, Store: true, Class: sim.AccessNVM})
	}
}

func (k *Clank) checkpoint(forced bool) {
	k.ckpt.Checkpoint(k.regs.RegSnapshot(), nil, func() {
		k.c.Checkpoints++
		if forced {
			k.c.ForcedCkpts++
		}
		if k.probe != nil {
			k.probe.OnCheckpointCommit(sim.CheckpointEvent{Cycle: k.clk.Now(), Kind: sim.CheckpointCommit, Forced: forced})
		}
	})
	k.tracker.Reset()
}

// Fork implements sim.Forkable: forked NVM plus deep-copied tracker state
// and checkpoint-store position.
func (k *Clank) Fork(clk sim.Clock, regs sim.RegSource, c *metrics.Counters) sim.System {
	nvm := k.nvm.Fork()
	nvm.Attach(clk, c)
	return &Clank{
		nvm:     nvm,
		ckpt:    k.ckpt.Fork(nvm),
		tracker: k.tracker.Clone(),
		clk:     clk,
		regs:    regs,
		c:       c,
	}
}

// NotifySP implements sim.System (Clank has no stack tracking).
func (k *Clank) NotifySP(uint32) {}

// ForceCheckpoint implements sim.System.
func (k *Clank) ForceCheckpoint() { k.checkpoint(true) }

// PowerFailure implements sim.System: only the tracker state is volatile.
func (k *Clank) PowerFailure() { k.tracker.Reset() }

// Restore implements sim.System.
func (k *Clank) Restore() (sim.Snapshot, bool) { return k.ckpt.Restore() }

// Mem implements sim.System.
func (k *Clank) Mem() sim.MemReaderWriter { return k.nvm }
