package systems

import (
	"nacho/internal/cache"
	"nacho/internal/checkpoint"
	"nacho/internal/mem"
	"nacho/internal/metrics"
	"nacho/internal/sim"
	"nacho/internal/track"
)

// wbQueueDepth is the number of outstanding asynchronous write-backs the
// non-blocking cache supports (the paper notes ReplayCache's MSHR-based
// write-back queue; eight entries is the conventional MSHR count).
const wbQueueDepth = 8

// regionCapCycles bounds idempotent region length. ReplayCache's compiler
// cuts regions wherever a *static* WAR may exist; published idempotent-
// region compilers produce regions of tens of instructions, far shorter
// than the dynamic-WAR optimum a runtime oracle would find. The cap models
// that compile-time conservatism (see DESIGN.md).
const regionCapCycles = 100

// ReplayCache models Zeng et al.'s ReplayCache [73] as the paper's
// re-implementation describes it (Section 6.1.2): a volatile non-blocking
// data cache over NVM whose execution is partitioned into idempotent
// regions. All stores of a region persist to NVM by the region's end, via an
// asynchronous write-back queue that overlaps NVM writes with execution; no
// checkpoints are created during failure-free execution. Region boundaries
// are cut exactly where a store would break idempotency (a write to a
// read-dominated location) — the fixpoint the original compiler's region
// former converges to; see DESIGN.md's substitution table. Recovery uses
// JIT state saving: on the power-failure interrupt the remaining dirty lines
// and the registers are persisted on reserve energy, and execution resumes
// in place after reboot.
type ReplayCache struct {
	cache   *cache.Cache
	tracker *track.Tracker
	nvm     *mem.NVM
	ckpt    *checkpoint.Store
	cost    mem.CostModel

	queue       []uint64 // completion cycles of outstanding write-backs (sorted)
	markerAddr  uint32
	regionSeq   uint32
	regionStart uint64 // cycle the current region began

	clk   sim.Clock
	regs  sim.RegSource
	c     *metrics.Counters
	probe sim.Probe
	epoch uint64 // sim.FastPort invalidation epoch (see fastport.go)
}

// NewReplayCache builds the system with the given cache geometry.
func NewReplayCache(nvm *mem.NVM, sizeBytes, ways int, checkpointBase uint32, cost mem.CostModel) (*ReplayCache, error) {
	ch, err := cache.New(sizeBytes, ways)
	if err != nil {
		return nil, err
	}
	ck := checkpoint.NewStore(nvm, checkpointBase, 0)
	return &ReplayCache{
		cache:      ch,
		tracker:    track.New(),
		nvm:        nvm,
		ckpt:       ck,
		cost:       cost,
		markerAddr: checkpointBase + ck.SizeBytes(),
	}, nil
}

// Name implements sim.System.
func (r *ReplayCache) Name() string { return "replaycache" }

// Attach implements sim.System.
func (r *ReplayCache) Attach(clk sim.Clock, regs sim.RegSource, c *metrics.Counters) {
	r.clk, r.regs, r.c = clk, regs, c
	r.nvm.Attach(clk, c)
	r.ckpt.Init(regs.RegSnapshot())
}

// AttachProbe implements sim.System.
func (r *ReplayCache) AttachProbe(p sim.Probe) {
	r.epoch++
	r.probe = p
	r.cache.AttachProbe(p)
	r.nvm.AttachProbe(p)
	r.ckpt.AttachProbe(p)
}

// Load implements sim.System.
func (r *ReplayCache) Load(addr uint32, size int) uint32 {
	r.tracker.ObserveRead(addr, size)
	line, hit := r.access(addr, true, size)
	r.clk.Advance(r.cost.HitCycles)
	v := line.ReadData(addr, size)
	if r.probe != nil {
		r.probe.OnAccess(sim.AccessEvent{Cycle: r.clk.Now(), Addr: addr, Size: size, Value: v, Class: accessClass(hit)})
	}
	return v
}

// Store implements sim.System: a store that would violate the current
// region's idempotency — or that falls past the compiler's region-length
// bound — first closes the region (persisting its stores).
func (r *ReplayCache) Store(addr uint32, size int, val uint32) {
	if r.tracker.ReadDominated(addr, size) || r.clk.Now()-r.regionStart >= regionCapCycles {
		r.endRegion()
	}
	r.tracker.ObserveWrite(addr, size)
	line, hit := r.access(addr, false, size)
	r.clk.Advance(r.cost.HitCycles)
	line.WriteData(addr, size, val)
	line.Dirty = true
	if r.probe != nil {
		r.probe.OnAccess(sim.AccessEvent{Cycle: r.clk.Now(), Addr: addr, Size: size, Value: val, Store: true, Class: accessClass(hit)})
	}
}

// accessClass maps a cache probe outcome to the access event class.
func accessClass(hit bool) sim.AccessClass {
	if hit {
		return sim.AccessHit
	}
	return sim.AccessMiss
}

func (r *ReplayCache) access(addr uint32, isRead bool, size int) (*cache.Line, bool) {
	if line := r.cache.Probe(addr); line != nil {
		r.c.CacheHits++
		r.cache.Touch(line)
		return line, true
	}
	r.epoch++ // replacement changes the servable hit set
	r.c.CacheMisses++
	line := r.cache.Victim(addr)
	if line.Valid && line.Dirty {
		// Non-blocking write-back: enqueue, no checkpoint ever needed —
		// region replay guarantees recovery.
		r.c.Evictions++
		victimAddr := line.Addr()
		r.enqueue(victimAddr, line.Data)
		if r.probe != nil {
			r.probe.OnWriteBack(sim.WriteBackEvent{Cycle: r.clk.Now(), Addr: victimAddr, Size: 4, Verdict: sim.VerdictAsync})
		}
	}
	r.cache.Install(line, addr)
	line.Dirty = false
	if isRead || size < cache.LineSize {
		line.Data = r.nvm.Read(addr&^3, 4)
	} else {
		line.Data = 0
	}
	return line, false
}

// enqueue issues an asynchronous NVM write. The value lands functionally at
// once (the queue holds it; reads are served from cache or the already-
// written space), while timing is modeled by completion times on a single
// NVM port: the CPU stalls only when all MSHR slots are busy.
func (r *ReplayCache) enqueue(addr, data uint32) {
	now := r.clk.Now()
	r.retire(now)
	if len(r.queue) >= wbQueueDepth {
		r.clk.Advance(r.queue[0] - now)
		r.retire(r.clk.Now())
	}
	start := r.clk.Now()
	if n := len(r.queue); n > 0 && r.queue[n-1] > start {
		start = r.queue[n-1]
	}
	r.queue = append(r.queue, start+r.cost.NVMCycles)
	r.nvm.WriteAsync(addr, 4, data)
}

// retire drops completed write-backs.
func (r *ReplayCache) retire(now uint64) {
	i := 0
	for i < len(r.queue) && r.queue[i] <= now {
		i++
	}
	r.queue = r.queue[i:]
}

// endRegion closes the current idempotent region: all dirty lines enter the
// write-back queue, the CPU waits for the queue to drain (store persistence
// ordering), and a one-word region marker is persisted.
func (r *ReplayCache) endRegion() {
	r.epoch++
	r.cache.ForEach(func(l *cache.Line) {
		if l.Valid && l.Dirty {
			r.enqueue(l.Addr(), l.Data)
			l.Dirty = false
		}
	})
	if n := len(r.queue); n > 0 {
		if last := r.queue[n-1]; last > r.clk.Now() {
			r.clk.Advance(last - r.clk.Now())
		}
		r.queue = r.queue[:0]
	}
	r.regionSeq++
	r.nvm.Write(r.markerAddr, 4, r.regionSeq)
	r.tracker.Reset()
	r.regionStart = r.clk.Now()
	r.c.Regions++
	if r.probe != nil {
		r.probe.OnCheckpointCommit(sim.CheckpointEvent{Cycle: r.clk.Now(), Kind: sim.CheckpointRegion})
	}
}

// Fork implements sim.Forkable: forked NVM plus deep-copied cache, tracker,
// write-back queue, region position, and checkpoint-store position.
func (r *ReplayCache) Fork(clk sim.Clock, regs sim.RegSource, c *metrics.Counters) sim.System {
	nvm := r.nvm.Fork()
	nvm.Attach(clk, c)
	return &ReplayCache{
		cache:       r.cache.Clone(),
		tracker:     r.tracker.Clone(),
		nvm:         nvm,
		ckpt:        r.ckpt.Fork(nvm),
		cost:        r.cost,
		queue:       append([]uint64(nil), r.queue...),
		markerAddr:  r.markerAddr,
		regionSeq:   r.regionSeq,
		regionStart: r.regionStart,
		clk:         clk,
		regs:        regs,
		c:           c,
		epoch:       r.epoch,
	}
}

// NotifySP implements sim.System (no stack tracking).
func (r *ReplayCache) NotifySP(uint32) {}

// ForceCheckpoint implements sim.System: ReplayCache has no periodic
// checkpoints; forward progress is a property of its region protocol, so a
// forced checkpoint maps to closing the current region.
func (r *ReplayCache) ForceCheckpoint() { r.endRegion() }

// PowerFailure implements sim.System: the JIT path — on the power-failure
// interrupt the remaining dirty lines, the queue, and the registers are
// persisted using reserve energy (the clock's failure window is already
// open, so these writes are charged but cannot recursively fail).
func (r *ReplayCache) PowerFailure() {
	r.epoch++
	r.cache.ForEach(func(l *cache.Line) {
		if l.Valid && l.Dirty {
			r.nvm.Write(l.Addr(), 4, l.Data)
		}
	})
	r.queue = r.queue[:0]
	r.ckpt.Checkpoint(r.regs.RegSnapshot(), nil, nil)
	r.c.Checkpoints++
	if r.probe != nil {
		// A JIT save is NOT an interval boundary: execution resumes in
		// place, so rollback-sensitive observers must ignore it.
		r.probe.OnCheckpointCommit(sim.CheckpointEvent{Cycle: r.clk.Now(), Kind: sim.CheckpointJIT})
	}
	r.cache.InvalidateAll()
	r.tracker.Reset()
}

// Restore implements sim.System: resume from the JIT-saved state.
func (r *ReplayCache) Restore() (sim.Snapshot, bool) {
	r.epoch++
	return r.ckpt.Restore()
}

// Mem implements sim.System.
func (r *ReplayCache) Mem() sim.MemReaderWriter { return r.nvm }
