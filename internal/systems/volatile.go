// Package systems implements the comparison systems of paper Section 6.1.2
// behind the common sim.System interface: the fully volatile normalization
// baseline, idealized Clank, PROWL, ReplayCache, and the NACHO family (built
// on internal/core). The Build registry in systems.go is the single entry
// point the harness and public API use.
package systems

import (
	"nacho/internal/mem"
	"nacho/internal/metrics"
	"nacho/internal/sim"
)

// Volatile is the normalization baseline of Figure 5: a system whose main
// memory uses the same technology (and latency) as the data cache, with no
// intermittent-computing support at all. It defines the 1.0 line every other
// system is normalized against.
type Volatile struct {
	space *mem.Space
	cost  mem.CostModel
	clk   sim.Clock
	c     *metrics.Counters
	probe sim.Probe
	epoch uint64 // sim.FastPort invalidation epoch (see fastport.go)
}

// NewVolatile builds the baseline over the given memory image.
func NewVolatile(space *mem.Space, cost mem.CostModel) *Volatile {
	return &Volatile{space: space, cost: cost}
}

// Name implements sim.System.
func (v *Volatile) Name() string { return "volatile" }

// Attach implements sim.System.
func (v *Volatile) Attach(clk sim.Clock, _ sim.RegSource, c *metrics.Counters) {
	v.clk, v.c = clk, c
}

// Load implements sim.System: an SRAM access (counted as a hit so the
// energy model sees the SRAM traffic).
func (v *Volatile) Load(addr uint32, size int) uint32 {
	v.c.CacheHits++
	v.clk.Advance(v.cost.HitCycles)
	val := v.space.Read(addr, size)
	if v.probe != nil {
		v.probe.OnAccess(sim.AccessEvent{Cycle: v.clk.Now(), Addr: addr, Size: size, Value: val, Class: sim.AccessHit})
	}
	return val
}

// Store implements sim.System: an SRAM access.
func (v *Volatile) Store(addr uint32, size int, val uint32) {
	v.c.CacheHits++
	v.clk.Advance(v.cost.HitCycles)
	v.space.Write(addr, size, val)
	if v.probe != nil {
		v.probe.OnAccess(sim.AccessEvent{Cycle: v.clk.Now(), Addr: addr, Size: size, Value: val, Store: true, Class: sim.AccessHit})
	}
}

// Fork implements sim.Forkable: the baseline's entire state is its memory
// space, forked copy-on-write.
func (v *Volatile) Fork(clk sim.Clock, _ sim.RegSource, c *metrics.Counters) sim.System {
	return &Volatile{space: v.space.Fork(), cost: v.cost, clk: clk, c: c, epoch: v.epoch}
}

// NotifySP implements sim.System (no stack tracking).
func (v *Volatile) NotifySP(uint32) {}

// ForceCheckpoint implements sim.System (no checkpoints to create).
func (v *Volatile) ForceCheckpoint() {}

// PowerFailure implements sim.System. The volatile baseline cannot survive
// one — main memory is volatile — so losing everything is the honest model.
func (v *Volatile) PowerFailure() {}

// Restore implements sim.System: there is never a checkpoint to restore.
func (v *Volatile) Restore() (sim.Snapshot, bool) { return sim.Snapshot{}, false }

// Mem implements sim.System.
func (v *Volatile) Mem() sim.MemReaderWriter { return v.space }

// DirectPort implements mem.DirectMemory: the baseline's Load/Store are a
// fixed HitCycles charge, a CacheHits tick, and a raw space access, so the
// AOT engine may serve them directly — but only while no probe is attached,
// since port-served accesses emit no events.
func (v *Volatile) DirectPort() (mem.DirectPort, bool) {
	return mem.DirectPort{Space: v.space, HitCycles: v.cost.HitCycles}, v.probe == nil
}

// AttachProbe implements sim.System: the baseline owns no cache, NVM, or
// checkpoint store — only its own access events flow.
func (v *Volatile) AttachProbe(p sim.Probe) {
	v.epoch++
	v.probe = p
}
