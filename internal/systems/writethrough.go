package systems

import (
	"nacho/internal/cache"
	"nacho/internal/checkpoint"
	"nacho/internal/mem"
	"nacho/internal/metrics"
	"nacho/internal/sim"
	"nacho/internal/track"
)

// WriteThrough is this reproduction's Section 8 extension: the write-through
// cache model the paper names as outside NACHO's write-back assumption
// ("for write-through caches, the implementation needs to be modified").
//
// Reads are cached; every store writes straight through to NVM (updating the
// cached copy on a hit, no allocation on a miss). Because writes are never
// delayed, the cache cannot serve as the WAR detector — an exact hardware
// tracker (as in Clank) checkpoints the registers before any store to a
// read-dominated location. All cache lines stay clean, so checkpoints are
// register-only and power failures lose nothing but locality.
//
// The comparison against NACHO (cmd/nachobench -exp ext-wt) quantifies what
// the paper's write-back choice buys: write-through pays the NVM latency on
// every store and checkpoints as often as Clank, gaining only read locality.
type WriteThrough struct {
	cache   *cache.Cache
	tracker *track.Tracker
	nvm     *mem.NVM
	ckpt    *checkpoint.Store
	cost    mem.CostModel

	clk   sim.Clock
	regs  sim.RegSource
	c     *metrics.Counters
	probe sim.Probe
	epoch uint64 // sim.FastPort invalidation epoch (see fastport.go)
}

// NewWriteThrough builds the system with the given read-cache geometry.
func NewWriteThrough(nvm *mem.NVM, sizeBytes, ways int, checkpointBase uint32, cost mem.CostModel) (*WriteThrough, error) {
	ch, err := cache.New(sizeBytes, ways)
	if err != nil {
		return nil, err
	}
	return &WriteThrough{
		cache:   ch,
		tracker: track.New(),
		nvm:     nvm,
		ckpt:    checkpoint.NewStore(nvm, checkpointBase, 0),
		cost:    cost,
	}, nil
}

// Name implements sim.System.
func (w *WriteThrough) Name() string { return string(KindWriteThrough) }

// Attach implements sim.System.
func (w *WriteThrough) Attach(clk sim.Clock, regs sim.RegSource, c *metrics.Counters) {
	w.clk, w.regs, w.c = clk, regs, c
	w.nvm.Attach(clk, c)
	w.ckpt.Init(regs.RegSnapshot())
}

// AttachProbe implements sim.System.
func (w *WriteThrough) AttachProbe(p sim.Probe) {
	w.epoch++
	w.probe = p
	w.cache.AttachProbe(p)
	w.nvm.AttachProbe(p)
	w.ckpt.AttachProbe(p)
}

// Load implements sim.System: served from the read cache when possible.
func (w *WriteThrough) Load(addr uint32, size int) uint32 {
	w.tracker.ObserveRead(addr, size)
	line := w.cache.Probe(addr)
	class := sim.AccessHit
	if line == nil {
		w.epoch++ // replacement changes the servable hit set
		class = sim.AccessMiss
		w.c.CacheMisses++
		line = w.cache.Victim(addr)
		// Lines are never dirty: replacement is free.
		w.cache.Install(line, addr)
		line.Data = w.nvm.Read(addr&^3, 4)
	} else {
		w.c.CacheHits++
		w.cache.Touch(line)
	}
	w.clk.Advance(w.cost.HitCycles)
	v := line.ReadData(addr, size)
	if w.probe != nil {
		w.probe.OnAccess(sim.AccessEvent{Cycle: w.clk.Now(), Addr: addr, Size: size, Value: v, Class: class})
	}
	return v
}

// Store implements sim.System: write-through with no allocation; a WAR
// checkpoint (registers only) precedes stores to read-dominated locations.
func (w *WriteThrough) Store(addr uint32, size int, val uint32) {
	if w.tracker.ReadDominated(addr, size) {
		w.checkpoint(false)
	}
	w.tracker.ObserveWrite(addr, size)
	class := sim.AccessNVM // store miss: straight through, no allocation
	if line := w.cache.Probe(addr); line != nil {
		class = sim.AccessHit
		w.c.CacheHits++
		w.cache.Touch(line)
		line.WriteData(addr, size, val)
	}
	w.nvm.Write(addr, size, val)
	if w.probe != nil {
		w.probe.OnWriteBack(sim.WriteBackEvent{Cycle: w.clk.Now(), Addr: addr, Size: size, Verdict: sim.VerdictWriteThrough})
	}
	w.clk.Advance(w.cost.HitCycles)
	if w.probe != nil {
		w.probe.OnAccess(sim.AccessEvent{Cycle: w.clk.Now(), Addr: addr, Size: size, Value: val, Store: true, Class: class})
	}
}

func (w *WriteThrough) checkpoint(forced bool) {
	w.epoch++
	w.ckpt.Checkpoint(w.regs.RegSnapshot(), nil, func() {
		w.c.Checkpoints++
		if forced {
			w.c.ForcedCkpts++
		}
		if w.probe != nil {
			w.probe.OnCheckpointCommit(sim.CheckpointEvent{Cycle: w.clk.Now(), Kind: sim.CheckpointCommit, Forced: forced})
		}
	})
	w.tracker.Reset()
}

// Fork implements sim.Forkable: forked NVM plus deep-copied read cache,
// tracker, and checkpoint-store position.
func (w *WriteThrough) Fork(clk sim.Clock, regs sim.RegSource, c *metrics.Counters) sim.System {
	nvm := w.nvm.Fork()
	nvm.Attach(clk, c)
	return &WriteThrough{
		cache:   w.cache.Clone(),
		tracker: w.tracker.Clone(),
		nvm:     nvm,
		ckpt:    w.ckpt.Fork(nvm),
		cost:    w.cost,
		clk:     clk,
		regs:    regs,
		c:       c,
		epoch:   w.epoch,
	}
}

// NotifySP implements sim.System (no stack tracking: nothing dirty to drop).
func (w *WriteThrough) NotifySP(uint32) {}

// ForceCheckpoint implements sim.System.
func (w *WriteThrough) ForceCheckpoint() { w.checkpoint(true) }

// PowerFailure implements sim.System: the clean cache just vanishes.
func (w *WriteThrough) PowerFailure() {
	w.epoch++
	w.cache.InvalidateAll()
	w.tracker.Reset()
}

// Restore implements sim.System.
func (w *WriteThrough) Restore() (sim.Snapshot, bool) {
	w.epoch++
	return w.ckpt.Restore()
}

// Mem implements sim.System.
func (w *WriteThrough) Mem() sim.MemReaderWriter { return w.nvm }
