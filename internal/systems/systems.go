package systems

import (
	"fmt"

	"nacho/internal/core"
	"nacho/internal/mem"
	"nacho/internal/sim"
	"nacho/internal/verify"
)

// Kind names a system under evaluation (paper Section 6.1.2).
type Kind string

// The evaluated systems. The nacho-pw / nacho-st kinds are the component
// systems of Table 3: possible-WAR detection alone and stack tracking alone.
const (
	KindVolatile    Kind = "volatile"
	KindClank       Kind = "clank"
	KindPROWL       Kind = "prowl"
	KindReplayCache Kind = "replaycache"
	KindNaiveNACHO  Kind = "naive-nacho"
	KindNACHO       Kind = "nacho"
	KindOracleNACHO Kind = "oracle-nacho"
	KindNACHOPW     Kind = "nacho-pw"
	KindNACHOST     Kind = "nacho-st"
	// KindWriteThrough is this reproduction's Section 8 extension: a
	// write-through data cache over NVM with an exact hardware WAR tracker —
	// the cache model the paper names as a limitation of NACHO's write-back
	// assumption.
	KindWriteThrough Kind = "writethrough"
	// KindNACHOBrokenPW is NACHO with the write-back safety check inverted
	// (core.Options.TestInvertPW). It is a deliberately unsound system used
	// to prove the crash-consistency fuzzer's oracle actually detects WAR
	// bugs; it is intentionally excluded from AllKinds.
	KindNACHOBrokenPW Kind = "nacho-broken-pw"
)

// AllKinds lists every buildable system.
func AllKinds() []Kind {
	return []Kind{
		KindVolatile, KindClank, KindPROWL, KindReplayCache,
		KindNaiveNACHO, KindNACHO, KindOracleNACHO, KindNACHOPW, KindNACHOST,
		KindWriteThrough,
	}
}

// Config is the common build configuration. CacheSize/Ways are ignored by
// the cacheless systems (volatile, clank).
type Config struct {
	CacheSize      int
	Ways           int
	StackTop       uint32
	CheckpointBase uint32
	Cost           mem.CostModel

	// DirtyThreshold enables the Section 8 adaptive checkpointing policy on
	// the NACHO-family systems (0 = off).
	DirtyThreshold int
	// EnergyPrediction runs NACHO-family checkpoints single-buffered under
	// a guaranteed-energy window (Section 8, "Energy Prediction").
	EnergyPrediction bool
}

// Build constructs a system of the given kind over the memory image in
// space. For every kind except KindVolatile the space acts as non-volatile
// main memory.
func Build(kind Kind, space *mem.Space, cfg Config) (sim.System, error) {
	nvm := mem.NewNVM(space, cfg.Cost)
	nachoOpts := func(war core.WARMode, stack bool) core.Options {
		return core.Options{
			CacheSize:        cfg.CacheSize,
			Ways:             cfg.Ways,
			WARMode:          war,
			StackTracking:    stack,
			StackTop:         cfg.StackTop,
			CheckpointBase:   cfg.CheckpointBase,
			Cost:             cfg.Cost,
			DirtyThreshold:   cfg.DirtyThreshold,
			EnergyPrediction: cfg.EnergyPrediction,
		}
	}
	switch kind {
	case KindVolatile:
		return NewVolatile(space, cfg.Cost), nil
	case KindClank:
		return NewClank(nvm, cfg.CheckpointBase), nil
	case KindPROWL:
		if cfg.Ways != 2 {
			return nil, fmt.Errorf("systems: prowl supports only 2 ways, got %d", cfg.Ways)
		}
		return NewPROWL(nvm, cfg.CacheSize, cfg.CheckpointBase, cfg.Cost)
	case KindReplayCache:
		return NewReplayCache(nvm, cfg.CacheSize, cfg.Ways, cfg.CheckpointBase, cfg.Cost)
	case KindNaiveNACHO:
		return core.New(string(kind), nvm, nachoOpts(core.WARNone, false))
	case KindNACHO:
		return core.New(string(kind), nvm, nachoOpts(core.WARCacheBits, true))
	case KindNACHOBrokenPW:
		opts := nachoOpts(core.WARCacheBits, true)
		opts.TestInvertPW = true
		return core.New(string(kind), nvm, opts)
	case KindOracleNACHO:
		return core.New(string(kind), nvm, nachoOpts(core.WARExact, true))
	case KindNACHOPW:
		return core.New(string(kind), nvm, nachoOpts(core.WARCacheBits, false))
	case KindNACHOST:
		return core.New(string(kind), nvm, nachoOpts(core.WARNone, true))
	case KindWriteThrough:
		return NewWriteThrough(nvm, cfg.CacheSize, cfg.Ways, cfg.CheckpointBase, cfg.Cost)
	}
	return nil, fmt.Errorf("systems: unknown kind %q", kind)
}

// VerifyConfigFor returns the verification semantics matching a system's
// recovery model: checkpoint/rollback systems rewind the shadow and must
// never write back read-dominated data; ReplayCache's JIT/region model
// resumes in place, so only the shadow check applies. The volatile baseline
// has no recovery at all.
func VerifyConfigFor(kind Kind) verify.Config {
	switch kind {
	case KindReplayCache:
		return verify.Config{RollbackOnFailure: false, CheckWAR: false}
	case KindVolatile:
		return verify.Config{RollbackOnFailure: false, CheckWAR: false}
	default:
		return verify.Config{RollbackOnFailure: true, CheckWAR: true}
	}
}
