// Package checkpoint implements the double-buffered checkpoint store in
// non-volatile memory (paper Sections 4.1 and 6.1.2: every compared system
// uses the same double-buffered mechanism, which is what makes them
// incorruptible).
//
// A checkpoint consists of the processor snapshot (x1..x31 + pc) and the
// dirty cache lines being persisted. Two NVM slots alternate; a checkpoint is
// staged entirely in the inactive slot and becomes visible only when its
// sequence word — the commit point — is written. Staged line data is then
// applied to its home NVM addresses (the redo phase); a reboot that finds a
// committed-but-unapplied checkpoint replays the redo log first. A power
// failure at *any* cycle therefore leaves either the previous or the new
// checkpoint fully intact, never a mixture.
package checkpoint

import (
	"fmt"

	"nacho/internal/mem"
	"nacho/internal/sim"
)

// Line is one dirty cache line persisted by a checkpoint.
type Line struct {
	Addr uint32
	Data uint32
}

// Slot word-offsets within a checkpoint slot.
const (
	offSeq     = 0 // sequence number; 0 = never written; commit point
	offApplied = 1 // 1 once the redo log has been applied to home addresses
	offNLines  = 2
	offSnap    = 3                           // 32 snapshot words
	offLines   = offSnap + sim.SnapshotWords // (addr,data) pairs
)

// Store is a two-slot double-buffered checkpoint area in NVM.
type Store struct {
	nvm      *mem.NVM
	base     uint32
	maxLines int
	seq      uint32 // next sequence number to commit
	probe    sim.Probe
}

// NewStore lays out a checkpoint area at base for up to maxLines dirty lines
// per checkpoint (the cache capacity; 0 for register-only systems like
// Clank).
func NewStore(nvm *mem.NVM, base uint32, maxLines int) *Store {
	return &Store{nvm: nvm, base: base, maxLines: maxLines, seq: 1}
}

// AttachProbe wires an observer for checkpoint-begin events (nil detaches).
// Commit events are emitted by the owning system's onCommit callback, which
// knows the checkpoint's cause; the store only knows when staging starts.
func (s *Store) AttachProbe(p sim.Probe) { s.probe = p }

// Fork returns a store over the given forked NVM at the same layout and
// sequence position, probe-free. The checkpoint slots themselves live in NVM
// and traveled with the forked space; only the next-sequence counter and the
// layout are volatile-side state. Fork deliberately does not Init: the
// committed checkpoints are part of the state being replicated.
func (s *Store) Fork(nvm *mem.NVM) *Store {
	return &Store{nvm: nvm, base: s.base, maxLines: s.maxLines, seq: s.seq}
}

// slotWords is the size of one slot in words.
func (s *Store) slotWords() uint32 { return offLines + 2*uint32(s.maxLines) }

func (s *Store) slotAddr(slot int, wordOff uint32) uint32 {
	return s.base + uint32(slot)*s.slotWords()*4 + wordOff*4
}

// SizeBytes is the NVM footprint of the whole checkpoint area.
func (s *Store) SizeBytes() uint32 { return 2 * s.slotWords() * 4 }

// Init writes the boot-time checkpoint (program entry, zeroed registers plus
// the given stack pointer) without charging simulation time: it models the
// state the device ships with. It must be called before execution.
func (s *Store) Init(snap sim.Snapshot) {
	for slot := 0; slot < 2; slot++ {
		s.nvm.WriteRaw(s.slotAddr(slot, offSeq), 4, 0)
	}
	words := snap.Words()
	s.nvm.WriteRaw(s.slotAddr(0, offNLines), 4, 0)
	for i, w := range words {
		s.nvm.WriteRaw(s.slotAddr(0, offSnap+uint32(i)), 4, w)
	}
	s.nvm.WriteRaw(s.slotAddr(0, offApplied), 4, 1)
	s.nvm.WriteRaw(s.slotAddr(0, offSeq), 4, 1)
	s.seq = 2
}

// inactiveSlot returns the slot to stage the next checkpoint into: the one
// NOT holding the newest committed checkpoint.
func (s *Store) inactiveSlot() int {
	s0 := s.nvm.ReadRaw(s.slotAddr(0, offSeq), 4)
	s1 := s.nvm.ReadRaw(s.slotAddr(1, offSeq), 4)
	if s0 > s1 {
		return 1
	}
	return 0
}

// Checkpoint persists the snapshot and lines double-buffered, charging every
// NVM word transfer on the attached clock. If a power failure strikes before
// the commit word is written, the store is untouched from the reader's
// perspective; if it strikes during the redo phase, Restore completes the
// redo. onCommit (optional) runs at the exact commit instant — the moment
// the checkpoint becomes the one a reboot will restore — which is where
// rollback-sensitive observers (the shadow-memory verifier) must move their
// rollback point. The caller must pass at most maxLines lines.
func (s *Store) Checkpoint(snap sim.Snapshot, lines []Line, onCommit func()) {
	if len(lines) > s.maxLines {
		panic(fmt.Sprintf("checkpoint: %d lines exceeds capacity %d", len(lines), s.maxLines))
	}
	if s.probe != nil {
		s.probe.OnCheckpointBegin(sim.CheckpointEvent{Cycle: s.nvm.Now(), Lines: len(lines)})
	}
	slot := s.inactiveSlot()

	// Stage phase: invisible until commit.
	s.nvm.Write(s.slotAddr(slot, offApplied), 4, 0)
	s.nvm.Write(s.slotAddr(slot, offNLines), 4, uint32(len(lines)))
	for i, w := range snap.Words() {
		s.nvm.Write(s.slotAddr(slot, offSnap+uint32(i)), 4, w)
	}
	for i, l := range lines {
		s.nvm.Write(s.slotAddr(slot, offLines+2*uint32(i)), 4, l.Addr)
		s.nvm.Write(s.slotAddr(slot, offLines+2*uint32(i)+1), 4, l.Data)
	}

	// Commit point: a single word write.
	s.nvm.Write(s.slotAddr(slot, offSeq), 4, s.seq)
	s.seq++
	if onCommit != nil {
		onCommit()
	}

	// Redo phase: apply staged lines to their home addresses.
	for _, l := range lines {
		s.nvm.Write(l.Addr, 4, l.Data)
	}
	s.nvm.Write(s.slotAddr(slot, offApplied), 4, 1)
}

// CheckpointSingleBuffered persists the snapshot and lines WITHOUT double
// buffering: lines go straight to their home addresses and the registers
// overwrite the newest slot in place. This halves the NVM writes of a
// checkpoint (paper Section 8, "Energy Prediction") but is only safe when
// the platform guarantees enough energy to finish the sequence — a power
// failure in the middle leaves a torn checkpoint. The emulator models that
// guarantee by running these checkpoints under the energy reserve (failures
// deferred), mirroring the JIT hardware the paper describes.
func (s *Store) CheckpointSingleBuffered(snap sim.Snapshot, lines []Line, onCommit func()) {
	if len(lines) > s.maxLines {
		panic(fmt.Sprintf("checkpoint: %d lines exceeds capacity %d", len(lines), s.maxLines))
	}
	if s.probe != nil {
		s.probe.OnCheckpointBegin(sim.CheckpointEvent{Cycle: s.nvm.Now(), Lines: len(lines)})
	}
	slot := 1 - s.inactiveSlot() // overwrite the active slot in place
	for _, l := range lines {
		s.nvm.Write(l.Addr, 4, l.Data)
	}
	s.nvm.Write(s.slotAddr(slot, offNLines), 4, 0)
	for i, w := range snap.Words() {
		s.nvm.Write(s.slotAddr(slot, offSnap+uint32(i)), 4, w)
	}
	s.nvm.Write(s.slotAddr(slot, offApplied), 4, 1)
	s.nvm.Write(s.slotAddr(slot, offSeq), 4, s.seq)
	s.seq++
	if onCommit != nil {
		onCommit()
	}
}

// Restore finds the newest committed checkpoint, finishes its redo log if the
// previous run died mid-apply, and returns its processor snapshot. All NVM
// traffic is charged. ok is false when no checkpoint was ever committed.
func (s *Store) Restore() (snap sim.Snapshot, ok bool) {
	s0 := s.nvm.Read(s.slotAddr(0, offSeq), 4)
	s1 := s.nvm.Read(s.slotAddr(1, offSeq), 4)
	if s0 == 0 && s1 == 0 {
		return sim.Snapshot{}, false
	}
	slot := 0
	newest := s0
	if s1 > s0 {
		slot, newest = 1, s1
	}
	s.seq = newest + 1

	if s.nvm.Read(s.slotAddr(slot, offApplied), 4) == 0 {
		n := s.nvm.Read(s.slotAddr(slot, offNLines), 4)
		for i := uint32(0); i < n; i++ {
			addr := s.nvm.Read(s.slotAddr(slot, offLines+2*i), 4)
			data := s.nvm.Read(s.slotAddr(slot, offLines+2*i+1), 4)
			s.nvm.Write(addr, 4, data)
		}
		s.nvm.Write(s.slotAddr(slot, offApplied), 4, 1)
	}

	var words [sim.SnapshotWords]uint32
	for i := range words {
		words[i] = s.nvm.Read(s.slotAddr(slot, offSnap+uint32(i)), 4)
	}
	return sim.SnapshotFromWords(words), true
}
