package checkpoint

import (
	"testing"

	"nacho/internal/mem"
	"nacho/internal/metrics"
	"nacho/internal/sim"
)

const testBase = 0x000E_0000

func newStore(maxLines int) (*Store, *mem.NVM, *sim.TestClock) {
	clk := &sim.TestClock{}
	var c metrics.Counters
	nvm := mem.NewNVM(mem.NewSpace(), mem.DefaultCostModel())
	nvm.Attach(clk, &c)
	return NewStore(nvm, testBase, maxLines), nvm, clk
}

func snap(pc uint32) sim.Snapshot {
	var s sim.Snapshot
	s.PC = pc
	for i := range s.Regs {
		s.Regs[i] = pc + uint32(i)
	}
	return s
}

func TestInitAndRestore(t *testing.T) {
	s, _, clk := newStore(4)
	boot := snap(0x1000)
	s.Init(boot)
	if clk.Cycle != 0 {
		t.Errorf("Init charged %d cycles, want 0", clk.Cycle)
	}
	got, ok := s.Restore()
	if !ok || got != boot {
		t.Fatalf("Restore = %+v, %v; want boot snapshot", got, ok)
	}
}

func TestRestoreWithoutInit(t *testing.T) {
	s, _, _ := newStore(0)
	if _, ok := s.Restore(); ok {
		t.Error("Restore succeeded on empty store")
	}
}

func TestCheckpointRoundTripAndLines(t *testing.T) {
	s, nvm, _ := newStore(4)
	s.Init(snap(0x1000))
	lines := []Line{{Addr: 0x2000, Data: 0xAAAA}, {Addr: 0x2004, Data: 0xBBBB}}
	s.Checkpoint(snap(0x2000), lines, nil)
	got, ok := s.Restore()
	if !ok || got.PC != 0x2000 {
		t.Fatalf("Restore after checkpoint: %+v, %v", got, ok)
	}
	// Redo applied the lines to their home addresses.
	if nvm.ReadRaw(0x2000, 4) != 0xAAAA || nvm.ReadRaw(0x2004, 4) != 0xBBBB {
		t.Error("checkpoint lines not applied to home NVM")
	}
}

func TestSlotsAlternate(t *testing.T) {
	s, _, _ := newStore(0)
	s.Init(snap(0x1000))
	for i := uint32(1); i <= 5; i++ {
		s.Checkpoint(snap(0x1000+4*i), nil, nil)
		got, ok := s.Restore()
		if !ok || got.PC != 0x1000+4*i {
			t.Fatalf("checkpoint %d: restore pc %#x", i, got.PC)
		}
	}
}

func TestOnCommitCalledExactlyOnce(t *testing.T) {
	s, _, _ := newStore(1)
	s.Init(snap(0))
	n := 0
	s.Checkpoint(snap(4), []Line{{Addr: 0x3000, Data: 1}}, func() { n++ })
	if n != 1 {
		t.Errorf("onCommit called %d times, want 1", n)
	}
}

func TestCapacityPanic(t *testing.T) {
	s, _, _ := newStore(1)
	s.Init(snap(0))
	defer func() {
		if recover() == nil {
			t.Error("over-capacity checkpoint did not panic")
		}
	}()
	s.Checkpoint(snap(4), []Line{{Addr: 0, Data: 0}, {Addr: 4, Data: 0}}, nil)
}

// TestCrashConsistencyAtEveryCycle is the incorruptibility property
// (paper Section 4.1): a power failure at ANY cycle during a checkpoint must
// leave the store restoring either the complete old checkpoint (with old NVM
// home values) or the complete new one (with the redo guaranteed to finish
// during Restore). It simulates the failure at every possible cycle.
func TestCrashConsistencyAtEveryCycle(t *testing.T) {
	const homeAddr = 0x2000
	const oldVal, newVal = 0x0501D01D, 0x05E30E30

	// Measure the failure-free checkpoint duration first.
	probe, _, probeClk := newStore(2)
	probe.Init(snap(0x100))
	probe.Checkpoint(snap(0x200), []Line{{Addr: homeAddr, Data: newVal}, {Addr: homeAddr + 4, Data: 2}}, nil)
	total := probeClk.Cycle

	for fail := uint64(1); fail <= total; fail++ {
		clk := &sim.TestClock{FailAt: fail}
		var c metrics.Counters
		nvm := mem.NewNVM(mem.NewSpace(), mem.DefaultCostModel())
		nvm.Attach(clk, &c)
		st := NewStore(nvm, testBase, 2)
		st.Init(snap(0x100))
		nvm.WriteRaw(homeAddr, 4, oldVal)
		nvm.WriteRaw(homeAddr+4, 4, 0xB01D0)

		committed := false
		func() {
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(sim.PowerFail); !ok {
						panic(r)
					}
				}
			}()
			st.Checkpoint(snap(0x200), []Line{{Addr: homeAddr, Data: newVal}, {Addr: homeAddr + 4, Data: 2}}, func() { committed = true })
		}()

		// Reboot: restore must succeed and be internally consistent.
		got, ok := st.Restore()
		if !ok {
			t.Fatalf("fail@%d: no restorable checkpoint", fail)
		}
		switch got.PC {
		case 0x100: // old checkpoint survived
			if committed {
				t.Fatalf("fail@%d: commit observed but old checkpoint restored", fail)
			}
			if v := nvm.ReadRaw(homeAddr, 4); v != oldVal {
				t.Fatalf("fail@%d: home NVM %#x modified before commit", fail, v)
			}
		case 0x200: // new checkpoint won; redo must be complete after Restore
			if v := nvm.ReadRaw(homeAddr, 4); v != newVal {
				t.Fatalf("fail@%d: committed checkpoint but home = %#x", fail, v)
			}
			if v := nvm.ReadRaw(homeAddr+4, 4); v != 2 {
				t.Fatalf("fail@%d: second line not applied: %#x", fail, v)
			}
		default:
			t.Fatalf("fail@%d: restored unexpected pc %#x", fail, got.PC)
		}
	}
}

// TestTornCheckpointFallsBackByteForByte pins the narrowest torn-checkpoint
// window: the power cut lands after every redo-log (staging) word has reached
// NVM but before the commit flag — the sequence word — flips. The staged
// checkpoint is complete in the inactive slot, yet it must be as if it never
// happened: Restore returns the previous snapshot, and every NVM byte outside
// the staging slot is bit-identical to the pre-checkpoint image.
func TestTornCheckpointFallsBackByteForByte(t *testing.T) {
	const homeAddr = 0x2000
	const oldVal, newVal = 0x0DDC0FFE, 0x0DDFACE5
	boot := snap(0x100)
	lines := []Line{{Addr: homeAddr, Data: newVal}, {Addr: homeAddr + 4, Data: 2}}

	// Staging is offApplied + offNLines + snapshot words + (addr,data) per
	// line; the commit sequence word is the very next NVM write. Every write
	// advances the clock by the NVM cost BEFORE the data lands, so failing at
	// any cycle in (stageEnd, stageEnd+cost] means staging is fully on NVM
	// and the commit word is not.
	cost := mem.DefaultCostModel().NVMCycles
	stagingWrites := uint64(2 + sim.SnapshotWords + 2*len(lines))
	stageEnd := stagingWrites * cost
	commitEnd := stageEnd + cost

	// Ground the arithmetic against the real write sequence once.
	{
		st, _, clk := newStore(2)
		st.Init(boot)
		var atCommit uint64
		st.Checkpoint(snap(0x200), lines, func() { atCommit = clk.Cycle })
		if atCommit != commitEnd {
			t.Fatalf("commit word lands at cycle %d, test computed %d; staging layout changed", atCommit, commitEnd)
		}
	}

	for fail := stageEnd + 1; fail <= commitEnd; fail++ {
		clk := &sim.TestClock{FailAt: fail}
		var c metrics.Counters
		nvm := mem.NewNVM(mem.NewSpace(), mem.DefaultCostModel())
		nvm.Attach(clk, &c)
		st := NewStore(nvm, testBase, 2)
		st.Init(boot)
		nvm.WriteRaw(homeAddr, 4, oldVal)
		nvm.WriteRaw(homeAddr+4, 4, 0xB01D)
		pre := nvm.Space().Clone()

		committed := false
		func() {
			defer func() {
				if _, ok := recover().(sim.PowerFail); !ok {
					t.Fatalf("fail@%d: checkpoint completed, expected a power failure", fail)
				}
			}()
			st.Checkpoint(snap(0x200), lines, func() { committed = true })
		}()
		if committed {
			t.Fatalf("fail@%d: commit callback ran before the sequence word landed", fail)
		}

		got, ok := st.Restore()
		if !ok || got != boot {
			t.Fatalf("fail@%d: Restore = %+v, %v; want the pre-checkpoint snapshot", fail, got, ok)
		}

		// Byte-for-byte fallback: only bytes inside the staging slot may
		// differ from the pre-checkpoint image (the staged words are there,
		// but uncommitted data is invisible to Restore).
		stagingLo := st.slotAddr(1, 0)
		stagingHi := stagingLo + st.slotWords()*4
		check := func(lo, hi uint32) {
			for a := lo; a < hi; a++ {
				if a >= stagingLo && a < stagingHi {
					continue
				}
				if got, want := nvm.ReadRaw(a, 1), pre.Read(a, 1); got != want {
					t.Fatalf("fail@%d: NVM byte 0x%08x = %#02x, want pre-checkpoint %#02x", fail, a, got, want)
				}
			}
		}
		check(homeAddr, homeAddr+8)
		check(testBase, testBase+st.SizeBytes())
	}
}

func TestSizeBytes(t *testing.T) {
	s, _, _ := newStore(8)
	want := uint32(2 * (offLines + 16) * 4)
	if s.SizeBytes() != want {
		t.Errorf("SizeBytes = %d, want %d", s.SizeBytes(), want)
	}
}
