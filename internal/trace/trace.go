// Package trace renders the per-instruction execution trace from the probe
// event stream. It replaces the emulator's old hot-loop fmt.Fprintf — which
// paid one unbuffered Write per retired instruction — with a fixed-capacity
// entry buffer that is formatted and written in chunks. Output is
// byte-identical to the old format:
//
//	     cycle  pc        disassembly
//	%10d  %08x  %v\n
//
// plus the "-- power failure, rebooting --" reboot markers.
package trace

import (
	"bytes"
	"fmt"
	"io"

	"nacho/internal/isa"
	"nacho/internal/sim"
)

// bufEntries is the number of events buffered between writes. At ~30 bytes a
// line this renders in ~256 KiB chunks — large enough that a traced run
// performs thousands of times fewer writes than instructions.
const bufEntries = 8192

// entry is one buffered trace event.
type entry struct {
	cycle  uint64
	pc     uint32
	in     isa.Instr
	marker bool // power-failure marker instead of an instruction
}

// Recorder is the trace probe. Attach it through the run's probe pipeline
// and Flush it once the run completes.
type Recorder struct {
	sim.NopProbe
	w      io.Writer
	buf    []entry
	render bytes.Buffer
	err    error // first write error; later output is dropped
}

// NewRecorder builds a recorder writing the rendered trace to w.
func NewRecorder(w io.Writer) *Recorder {
	return &Recorder{w: w, buf: make([]entry, 0, bufEntries)}
}

// OnRetire implements sim.Probe: one line per retired instruction.
func (r *Recorder) OnRetire(e sim.RetireEvent) {
	r.append(entry{cycle: e.Cycle, pc: e.PC, in: e.Instr})
}

// OnPowerFailure implements sim.Probe: the reboot marker line.
func (r *Recorder) OnPowerFailure(e sim.PowerEvent) {
	r.append(entry{cycle: e.Cycle, marker: true})
}

func (r *Recorder) append(e entry) {
	r.buf = append(r.buf, e)
	if len(r.buf) == cap(r.buf) {
		r.flushBuf()
	}
}

// flushBuf renders the buffered entries and writes them as one chunk.
func (r *Recorder) flushBuf() {
	if len(r.buf) == 0 {
		return
	}
	r.render.Reset()
	for _, e := range r.buf {
		if e.marker {
			fmt.Fprintf(&r.render, "%10d  -- power failure, rebooting --\n", e.cycle)
		} else {
			fmt.Fprintf(&r.render, "%10d  %08x  %v\n", e.cycle, e.pc, e.in)
		}
	}
	r.buf = r.buf[:0]
	if r.err != nil {
		return
	}
	_, r.err = r.w.Write(r.render.Bytes())
}

// Flush writes any buffered entries and returns the first write error
// encountered over the recorder's lifetime.
func (r *Recorder) Flush() error {
	r.flushBuf()
	return r.err
}
