package trace

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"testing"

	"nacho/internal/isa"
	"nacho/internal/sim"
)

var testInstrs = []isa.Instr{
	{Op: isa.ADDI, Rd: isa.Reg(10), Rs1: isa.Reg(10), Imm: 5},
	{Op: isa.LW, Rd: isa.Reg(11), Rs1: isa.Reg(2), Imm: -8},
	{Op: isa.SW, Rs1: isa.Reg(2), Rs2: isa.Reg(11), Imm: 12},
}

// TestRecorderFormat pins the output byte-for-byte to the emulator's old
// unbuffered format: "%10d  %08x  %v\n" per instruction and the reboot
// marker on power failures.
func TestRecorderFormat(t *testing.T) {
	var got, want bytes.Buffer
	r := NewRecorder(&got)
	cycle := uint64(1)
	for i, in := range testInstrs {
		pc := 0x1000 + uint32(4*i)
		r.OnRetire(sim.RetireEvent{Cycle: cycle, PC: pc, Instr: in})
		fmt.Fprintf(&want, "%10d  %08x  %v\n", cycle, pc, in)
		cycle += 3
	}
	r.OnPowerFailure(sim.PowerEvent{Cycle: cycle})
	fmt.Fprintf(&want, "%10d  -- power failure, rebooting --\n", cycle)
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	if got.String() != want.String() {
		t.Errorf("trace output:\n%q\nwant:\n%q", got.String(), want.String())
	}
}

// countingWriter counts Write calls — the property the buffered recorder
// exists for.
type countingWriter struct {
	io.Writer
	writes int
}

func (w *countingWriter) Write(p []byte) (int, error) {
	w.writes++
	return w.Writer.Write(p)
}

// TestRecorderBuffers proves the recorder does not pay one Write per
// instruction: tracing many instructions costs a handful of chunked writes.
func TestRecorderBuffers(t *testing.T) {
	const n = 3 * bufEntries
	cw := &countingWriter{Writer: io.Discard}
	r := NewRecorder(cw)
	for i := 0; i < n; i++ {
		r.OnRetire(sim.RetireEvent{Cycle: uint64(i), PC: 0x1000, Instr: testInstrs[0]})
	}
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	if want := n/bufEntries + 1; cw.writes > want {
		t.Errorf("%d instructions took %d writes, want at most %d", n, cw.writes, want)
	}
}

// errWriter fails every write.
type errWriter struct{ err error }

func (w errWriter) Write([]byte) (int, error) { return 0, w.err }

func TestRecorderSurfacesWriteError(t *testing.T) {
	sentinel := errors.New("disk full")
	r := NewRecorder(errWriter{sentinel})
	r.OnRetire(sim.RetireEvent{Instr: testInstrs[0]})
	if err := r.Flush(); !errors.Is(err, sentinel) {
		t.Errorf("Flush() = %v, want %v", err, sentinel)
	}
	// Later flushes keep reporting the first error and must not panic.
	r.OnRetire(sim.RetireEvent{Instr: testInstrs[0]})
	if err := r.Flush(); !errors.Is(err, sentinel) {
		t.Errorf("second Flush() = %v, want %v", err, sentinel)
	}
}

// BenchmarkRecorder vs BenchmarkUnbufferedFprintf quantifies the refactor's
// win: the old trace path formatted and wrote each instruction individually.
func BenchmarkRecorder(b *testing.B) {
	r := NewRecorder(io.Discard)
	ev := sim.RetireEvent{Cycle: 123456, PC: 0x1040, Instr: testInstrs[0]}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.OnRetire(ev)
	}
	r.Flush()
}

func BenchmarkUnbufferedFprintf(b *testing.B) {
	ev := sim.RetireEvent{Cycle: 123456, PC: 0x1040, Instr: testInstrs[0]}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		fmt.Fprintf(io.Discard, "%10d  %08x  %v\n", ev.Cycle, ev.PC, ev.Instr)
	}
}
