package jobs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"nacho/internal/emu"
	"nacho/internal/fuzzer"
	"nacho/internal/harness"
	"nacho/internal/systems"
)

// defaultFuzzKinds is the fuzzer's default system set as wire strings.
func defaultFuzzKinds() []string {
	kinds := fuzzer.DefaultKinds()
	out := make([]string, len(kinds))
	for i, k := range kinds {
		out[i] = string(k)
	}
	return out
}

// CampaignConfig validates the spec and expands it to the fuzzer's campaign
// configuration. The mapping is total and deterministic: the same spec yields
// the same campaign on coordinator and worker.
func (f *FuzzSpec) CampaignConfig() (fuzzer.CampaignConfig, error) {
	cc := fuzzer.CampaignConfig{Seeds: f.Seeds, SeedBase: f.SeedBase, Minimize: f.Minimize}
	for _, name := range f.Systems {
		kind := systems.Kind(name)
		// The deliberately-broken self-check kind is a valid fuzz subject too.
		valid := kind == systems.KindNACHOBrokenPW
		for _, k := range systems.AllKinds() {
			if k == kind {
				valid = true
				break
			}
		}
		if !valid {
			return fuzzer.CampaignConfig{}, fmt.Errorf("jobs: fuzz spec names unknown system %q", name)
		}
		cc.Kinds = append(cc.Kinds, kind)
	}
	engine, err := emu.ParseEngine(f.Engine)
	if err != nil {
		return fuzzer.CampaignConfig{}, fmt.Errorf("jobs: fuzz spec engine: %w", err)
	}
	cc.Oracle = fuzzer.Config{
		CacheSize: f.CacheSize,
		Ways:      f.Ways,
		Schedules: f.Schedules,
		Engine:    engine,
	}
	return cc, nil
}

// Worker is the client side of the lease protocol: it polls a job server,
// executes cells through the store-aware harness run path, and pushes results
// back until the server signals shutdown. For experiment jobs the worker must
// share the coordinator's persistent store directory — the store is how run
// results travel; the HTTP result push only carries the digest.
type Worker struct {
	// BaseURL is the job server root, e.g. "http://127.0.0.1:9100".
	BaseURL string
	// Name identifies this worker in leases (default "worker").
	Name string
	// Concurrency is the number of cells executed at once (default
	// harness.Workers()).
	Concurrency int
	// Poll is the idle backoff between empty leases (default 100ms).
	Poll time.Duration
	// Client is the HTTP client (default http.DefaultClient).
	Client *http.Client
	// Log, when non-nil, receives one line per executed cell.
	Log io.Writer
}

// Run polls until the server tells the drained fleet to shut down. It
// returns the number of cells this worker completed, or the first transport
// error.
func (w *Worker) Run() (int, error) {
	name := w.Name
	if name == "" {
		name = "worker"
	}
	conc := w.Concurrency
	if conc <= 0 {
		conc = harness.Workers()
	}
	poll := w.Poll
	if poll <= 0 {
		poll = 100 * time.Millisecond
	}

	var (
		mu       sync.Mutex
		done     int
		firstErr error
		wg       sync.WaitGroup
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	failed := func() bool {
		mu.Lock()
		defer mu.Unlock()
		return firstErr != nil
	}
	for i := 0; i < conc; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			who := fmt.Sprintf("%s/%d", name, id)
			for !failed() {
				var lease LeaseResponse
				if err := w.post("/jobs/lease", LeaseRequest{Worker: who}, &lease); err != nil {
					fail(err)
					return
				}
				if lease.Cell == nil {
					if lease.Shutdown {
						return
					}
					time.Sleep(poll)
					continue
				}
				result := executeCell(lease.Cell)
				if w.Log != nil {
					fmt.Fprintf(w.Log, "%s: %s cell %d of %s done\n", who, lease.Cell.Kind, lease.Cell.ID, lease.Job)
				}
				if err := w.post("/jobs/complete", CompleteRequest{Job: lease.Job, Worker: who, Result: result}, nil); err != nil {
					fail(err)
					return
				}
				mu.Lock()
				done++
				mu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	return done, firstErr
}

// executeCell runs one leased cell to a CellResult. Execution failures land
// in the result (simulation errors are results; only an invalid spec sets
// Err) — the cell is always completed, never abandoned.
func executeCell(c *Cell) CellResult {
	result := CellResult{ID: c.ID}
	switch c.Kind {
	case CellRun:
		if c.Run == nil {
			result.Err = "jobs: run cell without a spec"
			break
		}
		digest, err := harness.ExecuteSpec(*c.Run)
		if err != nil {
			result.Err = err.Error()
			break
		}
		result.Digest = digest
	case CellFuzz:
		if c.Fuzz == nil {
			result.Err = "jobs: fuzz cell without a spec"
			break
		}
		cc, err := c.Fuzz.CampaignConfig()
		if err != nil {
			result.Err = err.Error()
			break
		}
		rep := fuzzer.RunCampaign(cc)
		result.Programs = rep.Programs
		for _, f := range rep.Findings {
			result.Findings = append(result.Findings, f.String())
		}
		result.Errors = rep.Errors
	default:
		result.Err = fmt.Sprintf("jobs: unknown cell kind %q", c.Kind)
	}
	return result
}

func (w *Worker) post(path string, body, out any) error {
	client := w.Client
	if client == nil {
		client = http.DefaultClient
	}
	wire, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := client.Post(w.BaseURL+path, "application/json", bytes.NewReader(wire))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("jobs: %s: %s: %s", path, resp.Status, bytes.TrimSpace(msg))
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// SubmitJob posts a job to a server and returns its ID — the coordinator-side
// client half of POST /jobs.
func SubmitJob(client *http.Client, baseURL string, req JobRequest) (string, error) {
	w := &Worker{BaseURL: baseURL, Client: client}
	var resp struct {
		ID string `json:"id"`
	}
	if err := w.post("/jobs", req, &resp); err != nil {
		return "", err
	}
	return resp.ID, nil
}

// FetchStatus polls one job's status.
func FetchStatus(client *http.Client, baseURL, id string) (JobStatus, error) {
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Get(baseURL + "/jobs/" + id)
	if err != nil {
		return JobStatus{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return JobStatus{}, fmt.Errorf("jobs: status %s: %s: %s", id, resp.Status, bytes.TrimSpace(msg))
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return JobStatus{}, err
	}
	return st, nil
}

// WaitJob polls until the job is done (or the deadline passes, returning the
// last status with an error).
func WaitJob(client *http.Client, baseURL, id string, poll time.Duration, deadline time.Time) (JobStatus, error) {
	if poll <= 0 {
		poll = 100 * time.Millisecond
	}
	for {
		st, err := FetchStatus(client, baseURL, id)
		if err != nil {
			return st, err
		}
		if st.State == "done" {
			return st, nil
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			return st, fmt.Errorf("jobs: %s still %d/%d after deadline", id, st.Done, st.Total)
		}
		time.Sleep(poll)
	}
}

// ShutdownServer signals the drain-and-exit flag on a remote server.
func ShutdownServer(client *http.Client, baseURL string) error {
	w := &Worker{BaseURL: baseURL, Client: client}
	return w.post("/jobs/shutdown", struct{}{}, nil)
}
