package jobs

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"nacho/internal/fuzzer"
	"nacho/internal/harness"
	"nacho/internal/store"
)

// withStore installs a fresh persistent store for one test, restoring the
// previous one afterwards.
func withStore(t *testing.T) *store.Store {
	t.Helper()
	s, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	prev := harness.SetStore(s)
	t.Cleanup(func() {
		harness.SetStore(prev)
		s.Close()
	})
	return s
}

func testServer(t *testing.T, s *store.Store, ttl time.Duration) (*Server, *httptest.Server) {
	t.Helper()
	js := NewServer(s, ttl)
	mux := http.NewServeMux()
	mux.Handle("/jobs", js)
	mux.Handle("/jobs/", js)
	hs := httptest.NewServer(mux)
	t.Cleanup(hs.Close)
	return js, hs
}

// TestExperimentJobEndToEnd drives the whole loop in one process: submit an
// experiment matrix, run a worker over HTTP until drained, and verify the
// store-backed regeneration executes zero simulations.
func TestExperimentJobEndToEnd(t *testing.T) {
	s := withStore(t)
	js, hs := testServer(t, s, 0)

	id, err := SubmitJob(nil, hs.URL, JobRequest{Kind: "experiment", Experiment: "fig6", Benchmarks: []string{"crc"}})
	if err != nil {
		t.Fatal(err)
	}
	specs, err := harness.ExperimentSpecs("fig6", []string{"crc"})
	if err != nil {
		t.Fatal(err)
	}
	st, ok := js.Status(id)
	if !ok || st.Total != len(specs) {
		t.Fatalf("job status %+v, want %d cells", st, len(specs))
	}

	js.Shutdown() // queue is loaded: drain, then stop the worker
	w := &Worker{BaseURL: hs.URL, Name: "t", Concurrency: 2}
	done, err := w.Run()
	if err != nil {
		t.Fatal(err)
	}
	if done != len(specs) {
		t.Fatalf("worker completed %d cells, want %d", done, len(specs))
	}

	st, _ = js.Status(id)
	if st.State != "done" || st.Done != st.Total {
		t.Fatalf("job not done after drain: %+v", st)
	}

	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	before := harness.Status()
	rep, err := harness.RunNamedExperiment("fig6", []string{"crc"})
	if err != nil {
		t.Fatal(err)
	}
	if got := harness.Status().RunsStarted - before.RunsStarted; got != 0 {
		t.Errorf("regeneration after worker fill ran %d simulations, want 0", got)
	}
	if len(rep.Rows) == 0 {
		t.Error("regenerated report is empty")
	}
}

// TestSubmitTimeDedupe: a job whose cells are already in the store is born
// done — nothing to lease.
func TestSubmitTimeDedupe(t *testing.T) {
	s := withStore(t)
	specs, err := harness.ExperimentSpecs("fig6", []string{"crc"})
	if err != nil {
		t.Fatal(err)
	}
	for _, sp := range specs {
		if _, err := harness.ExecuteSpec(sp); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}

	js := NewServer(s, 0)
	id, err := js.Submit(JobRequest{Kind: "experiment", Experiment: "fig6", Benchmarks: []string{"crc"}})
	if err != nil {
		t.Fatal(err)
	}
	st, _ := js.Status(id)
	if st.State != "done" || st.Deduped != len(specs) {
		t.Fatalf("warm submit not fully deduped: %+v (want %d deduped)", st, len(specs))
	}
	if lease := js.Lease("t"); lease.Cell != nil {
		t.Fatalf("deduped job still leased cell %+v", lease.Cell)
	}
}

// TestFuzzJobMergedReportMatchesDirect: a chunked, worker-executed fuzz
// campaign merges to the byte-identical report of a direct single-process
// RunCampaign over the same seed range.
func TestFuzzJobMergedReportMatchesDirect(t *testing.T) {
	spec := FuzzSpec{Seeds: 7, SeedBase: 100, Systems: []string{"nacho", "clank"}}
	js, hs := testServer(t, nil, 0)

	id, err := js.Submit(JobRequest{Kind: "fuzz", Fuzz: &spec, Chunk: 3})
	if err != nil {
		t.Fatal(err)
	}
	if st, _ := js.Status(id); st.Total != 3 { // 7 seeds / chunks of 3 → 3+3+1
		t.Fatalf("7 seeds in chunks of 3 made %d cells, want 3", st.Total)
	}

	js.Shutdown()
	w := &Worker{BaseURL: hs.URL, Name: "t", Concurrency: 2}
	if _, err := w.Run(); err != nil {
		t.Fatal(err)
	}

	st, _ := js.Status(id)
	if st.State != "done" {
		t.Fatalf("fuzz job not done: %+v", st)
	}
	cc, err := spec.CampaignConfig()
	if err != nil {
		t.Fatal(err)
	}
	want := fuzzer.RunCampaign(cc).String()
	if st.Report != want {
		t.Errorf("merged distributed report differs from direct campaign:\nmerged:\n%s\ndirect:\n%s", st.Report, want)
	}
}

// TestLeaseExpiryReassigns: an abandoned lease returns to the queue after its
// TTL and is handed to the next worker.
func TestLeaseExpiryReassigns(t *testing.T) {
	js := NewServer(nil, 10*time.Millisecond)
	if _, err := js.Submit(JobRequest{Kind: "fuzz", Fuzz: &FuzzSpec{Seeds: 1}, Chunk: 1}); err != nil {
		t.Fatal(err)
	}

	first := js.Lease("flaky")
	if first.Cell == nil {
		t.Fatal("no cell leased")
	}
	// Within the TTL the cell is taken.
	if again := js.Lease("steady"); again.Cell != nil {
		t.Fatalf("cell double-leased: %+v", again.Cell)
	}
	time.Sleep(20 * time.Millisecond)
	second := js.Lease("steady")
	if second.Cell == nil || second.Cell.ID != first.Cell.ID {
		t.Fatalf("expired lease not reassigned: %+v", second.Cell)
	}
}

// TestShutdownDrainsBeforeStopping: shutdown is delivered to workers only
// once nothing is pending or leased.
func TestShutdownDrainsBeforeStopping(t *testing.T) {
	js := NewServer(nil, 0)
	id, err := js.Submit(JobRequest{Kind: "fuzz", Fuzz: &FuzzSpec{Seeds: 1}, Chunk: 1})
	if err != nil {
		t.Fatal(err)
	}
	js.Shutdown()

	lease := js.Lease("t")
	if lease.Cell == nil {
		t.Fatal("shutdown starved a pending cell")
	}
	if lease.Shutdown {
		t.Error("shutdown delivered alongside a live cell")
	}
	// The cell is leased, not done: other workers must keep waiting, not exit.
	if other := js.Lease("t2"); other.Cell != nil || other.Shutdown {
		t.Fatalf("undrained queue released a worker: %+v", other)
	}
	if err := js.Complete(CompleteRequest{Job: id, Worker: "t", Result: CellResult{ID: lease.Cell.ID}}); err != nil {
		t.Fatal(err)
	}
	if final := js.Lease("t"); !final.Shutdown {
		t.Error("drained queue did not deliver shutdown")
	}
}

// TestCompleteIsIdempotent: a worker racing a lease-expiry replacement can
// complete the same cell twice without double counting.
func TestCompleteIsIdempotent(t *testing.T) {
	js := NewServer(nil, 0)
	id, err := js.Submit(JobRequest{Kind: "fuzz", Fuzz: &FuzzSpec{Seeds: 1}, Chunk: 1})
	if err != nil {
		t.Fatal(err)
	}
	lease := js.Lease("t")
	req := CompleteRequest{Job: id, Worker: "t", Result: CellResult{ID: lease.Cell.ID, Programs: 1}}
	if err := js.Complete(req); err != nil {
		t.Fatal(err)
	}
	if err := js.Complete(req); err != nil {
		t.Fatal(err)
	}
	st, _ := js.Status(id)
	if st.Done != 1 {
		t.Errorf("double complete counted %d done, want 1", st.Done)
	}
}

// TestSubmitRejectsGarbage covers the validation surface: unknown kinds,
// empty fuzz specs, bad systems and experiments are refused at submit time.
func TestSubmitRejectsGarbage(t *testing.T) {
	js := NewServer(nil, 0)
	for name, req := range map[string]JobRequest{
		"kind":       {Kind: "bake"},
		"experiment": {Kind: "experiment", Experiment: "fig99"},
		"no-fuzz":    {Kind: "fuzz"},
		"zero-seeds": {Kind: "fuzz", Fuzz: &FuzzSpec{}},
		"system":     {Kind: "fuzz", Fuzz: &FuzzSpec{Seeds: 1, Systems: []string{"warp-core"}}},
		"engine":     {Kind: "fuzz", Fuzz: &FuzzSpec{Seeds: 1, Engine: "turbo"}},
	} {
		if _, err := js.Submit(req); err == nil {
			t.Errorf("bad %s request accepted", name)
		}
	}
}

// TestHTTPSurface exercises the routing: submit over HTTP, list, status,
// unknown job 404, bad body 400.
func TestHTTPSurface(t *testing.T) {
	_, hs := testServer(t, nil, 0)

	id, err := SubmitJob(nil, hs.URL, JobRequest{Kind: "fuzz", Fuzz: &FuzzSpec{Seeds: 2}, Chunk: 1})
	if err != nil {
		t.Fatal(err)
	}
	st, err := FetchStatus(nil, hs.URL, id)
	if err != nil {
		t.Fatal(err)
	}
	if st.Total != 2 || st.State != "running" {
		t.Fatalf("status %+v, want 2 running cells", st)
	}

	if _, err := FetchStatus(nil, hs.URL, "job-999"); err == nil || !strings.Contains(err.Error(), "404") {
		t.Errorf("unknown job error = %v, want 404", err)
	}
	resp, err := http.Post(hs.URL+"/jobs", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed submit returned %s, want 400", resp.Status)
	}

	list, err := http.Get(hs.URL + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	list.Body.Close()
	if list.StatusCode != http.StatusOK {
		t.Errorf("list returned %s", list.Status)
	}
}
