// Package jobs is the campaign job service: the telemetry HTTP server grown
// into a distributed work queue over the persistent run store. A coordinator
// submits an experiment matrix (enumerated to RunSpec cells via the harness
// experiment registry) or a fuzz campaign (chunked into seed ranges); worker
// processes poll for leases, execute cells through the store-aware harness
// run path, and push results back. The shared content-addressed store is the
// data plane — a run cell's "result" is the store entry under its digest —
// so the fleet dedupes work submit- and lease-time, and the coordinator
// regenerates the final report from the warm store without executing
// anything.
package jobs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"nacho/internal/harness"
	"nacho/internal/store"
	"nacho/internal/telemetry"
)

// CellKind discriminates the two unit-of-work shapes.
const (
	CellRun  = "run"
	CellFuzz = "fuzz"
)

// FuzzSpec is the serializable identity of a fuzz campaign (or one chunk of
// it): a contiguous seed range plus the oracle configuration. It is a pure
// function — the same spec produces the same findings on any worker.
type FuzzSpec struct {
	Seeds    int   `json:"seeds"`
	SeedBase int64 `json:"seed_base"`
	// Systems under test (fuzzer.DefaultKinds when empty).
	Systems []string `json:"systems,omitempty"`
	// Oracle knobs (zero = the fuzzer's defaults: 512 B, 2-way, 3 schedules).
	CacheSize int    `json:"cache,omitempty"`
	Ways      int    `json:"ways,omitempty"`
	Schedules int    `json:"schedules,omitempty"`
	Engine    string `json:"engine,omitempty"`
	// Minimize delta-debugs findings on the worker (deterministic per seed,
	// so merged reports stay stable).
	Minimize bool `json:"minimize,omitempty"`
}

// Cell is one leasable unit of work.
type Cell struct {
	ID   int              `json:"id"`
	Kind string           `json:"kind"`
	Run  *harness.RunSpec `json:"run,omitempty"`
	Fuzz *FuzzSpec        `json:"fuzz,omitempty"`
}

// CellResult is what a worker pushes back for one completed cell.
type CellResult struct {
	ID int `json:"id"`
	// Digest is the store address a run cell's result landed under.
	Digest string `json:"digest,omitempty"`
	// Fuzz-cell outcome: programs checked, findings (Finding.String() lines,
	// sorted by seed then system within the chunk) and infrastructure errors.
	Programs int      `json:"programs,omitempty"`
	Findings []string `json:"findings,omitempty"`
	Errors   []string `json:"errors,omitempty"`
	// Err marks a cell the worker could not execute (invalid spec).
	Err string `json:"error,omitempty"`
}

// JobRequest is the POST /jobs submission body: either a named experiment
// (its matrix enumerated server-side) or a fuzz campaign (chunked
// server-side).
type JobRequest struct {
	Kind string `json:"kind"` // "experiment" | "fuzz"

	Experiment string   `json:"experiment,omitempty"`
	Benchmarks []string `json:"benchmarks,omitempty"`

	Fuzz *FuzzSpec `json:"fuzz,omitempty"`
	// Chunk is the number of fuzz seeds per cell (default 8).
	Chunk int `json:"chunk,omitempty"`
}

// JobStatus is the public view of one job.
type JobStatus struct {
	ID      string `json:"id"`
	Kind    string `json:"kind"`
	Name    string `json:"name"`
	Total   int    `json:"total"`
	Done    int    `json:"done"`
	Deduped int    `json:"deduped"`
	Leased  int    `json:"leased"`
	State   string `json:"state"` // "running" | "done"
	// Report is the merged deterministic findings report, present once a fuzz
	// job is done. Experiment jobs have no server-side report: the
	// coordinator regenerates it from the warm store.
	Report string `json:"report,omitempty"`
}

// LeaseRequest / LeaseResponse are the worker poll protocol. A response with
// neither a cell nor the shutdown flag means "nothing right now, poll again".
type LeaseRequest struct {
	Worker string `json:"worker"`
}
type LeaseResponse struct {
	Job      string `json:"job,omitempty"`
	Cell     *Cell  `json:"cell,omitempty"`
	Shutdown bool   `json:"shutdown,omitempty"`
}

// CompleteRequest is the worker result push.
type CompleteRequest struct {
	Job    string     `json:"job"`
	Worker string     `json:"worker"`
	Result CellResult `json:"result"`
}

// Cell lifecycle states.
const (
	statePending = iota
	stateLeased
	stateDone
)

type cellState struct {
	cell   Cell
	state  int
	worker string
	expiry time.Time
	result CellResult
}

type jobState struct {
	id      string
	kind    string
	name    string
	fuzz    *FuzzSpec // the whole campaign (for the merged report header)
	cells   []*cellState
	done    int
	deduped int
}

func (j *jobState) status() JobStatus {
	st := JobStatus{ID: j.id, Kind: j.kind, Name: j.name,
		Total: len(j.cells), Done: j.done, Deduped: j.deduped, State: "running"}
	for _, c := range j.cells {
		if c.state == stateLeased {
			st.Leased++
		}
	}
	if j.done == len(j.cells) {
		st.State = "done"
		if j.kind == "fuzz" {
			st.Report = j.mergedFuzzReport()
		}
	}
	return st
}

// mergedFuzzReport renders the campaign report from the per-chunk results,
// byte-identical to fuzzer.CampaignReport.String() on the whole seed range:
// cells cover contiguous ascending seed ranges and each chunk's findings are
// already sorted by (seed, system), so concatenation in cell order is the
// global sort order. Infrastructure errors are re-sorted globally, matching
// the campaign's sort.Strings.
func (j *jobState) mergedFuzzReport() string {
	var b strings.Builder
	programs := 0
	var findings, errs []string
	for _, c := range j.cells {
		programs += c.result.Programs
		findings = append(findings, c.result.Findings...)
		errs = append(errs, c.result.Errors...)
		if c.result.Err != "" {
			errs = append(errs, c.result.Err)
		}
	}
	sort.Strings(errs)
	kinds := j.fuzz.Systems
	if len(kinds) == 0 {
		kinds = defaultFuzzKinds()
	}
	fmt.Fprintf(&b, "nachofuzz: %d seeds (base %d) x systems [%s]: %d programs checked, %d findings\n",
		j.fuzz.Seeds, j.fuzz.SeedBase, strings.Join(kinds, " "), programs, len(findings))
	for _, f := range findings {
		fmt.Fprintf(&b, "FINDING %s\n", f)
	}
	for _, e := range errs {
		fmt.Fprintf(&b, "ERROR %s\n", e)
	}
	return b.String()
}

// Server is the job queue. It implements http.Handler (mount it on the
// telemetry server at /jobs and /jobs/) and is safe for concurrent use.
type Server struct {
	store    *store.Store  // nil disables store-side dedupe
	leaseTTL time.Duration // a lease not completed within this returns to pending

	mu       sync.Mutex
	jobs     []*jobState
	byID     map[string]*jobState
	nextID   int
	shutdown bool

	submitted     atomic.Uint64
	cellsTotal    atomic.Uint64
	cellsDone     atomic.Uint64
	cellsDeduped  atomic.Uint64
	leases        atomic.Uint64
	leasesExpired atomic.Uint64
}

// DefaultLeaseTTL is how long a worker may sit on a leased cell before it is
// handed to someone else.
const DefaultLeaseTTL = 2 * time.Minute

// NewServer creates a job server over an optional persistent store (nil
// disables digest dedupe). ttl <= 0 selects DefaultLeaseTTL.
func NewServer(s *store.Store, ttl time.Duration) *Server {
	if ttl <= 0 {
		ttl = DefaultLeaseTTL
	}
	return &Server{store: s, leaseTTL: ttl, byID: make(map[string]*jobState)}
}

// Shutdown flips the server into drain mode: queued cells are still leased
// and completed, but once nothing is pending, lease responses tell workers to
// exit.
func (s *Server) Shutdown() {
	s.mu.Lock()
	s.shutdown = true
	s.mu.Unlock()
}

// Drained reports whether shutdown has been requested and every cell of
// every job is done — the point at which lease responses release workers.
func (s *Server) Drained() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.shutdown {
		return false
	}
	for _, j := range s.jobs {
		if j.done != len(j.cells) {
			return false
		}
	}
	return true
}

// Submit enqueues a job programmatically (the HTTP POST /jobs body goes
// through the same path) and returns its ID.
func (s *Server) Submit(req JobRequest) (string, error) {
	j := &jobState{kind: req.Kind}
	switch req.Kind {
	case "experiment":
		specs, err := harness.ExperimentSpecs(req.Experiment, req.Benchmarks)
		if err != nil {
			return "", err
		}
		j.name = req.Experiment
		for i := range specs {
			j.cells = append(j.cells, &cellState{cell: Cell{ID: i, Kind: CellRun, Run: &specs[i]}})
		}
	case "fuzz":
		if req.Fuzz == nil || req.Fuzz.Seeds <= 0 {
			return "", fmt.Errorf("jobs: fuzz job needs a FuzzSpec with seeds > 0")
		}
		if _, err := req.Fuzz.CampaignConfig(); err != nil {
			return "", err
		}
		chunk := req.Chunk
		if chunk <= 0 {
			chunk = 8
		}
		j.fuzz = req.Fuzz
		j.name = fmt.Sprintf("fuzz %d seeds (base %d)", req.Fuzz.Seeds, req.Fuzz.SeedBase)
		for i, id := 0, 0; i < req.Fuzz.Seeds; i, id = i+chunk, id+1 {
			part := *req.Fuzz
			part.SeedBase = req.Fuzz.SeedBase + int64(i)
			part.Seeds = min(chunk, req.Fuzz.Seeds-i)
			j.cells = append(j.cells, &cellState{cell: Cell{ID: id, Kind: CellFuzz, Fuzz: &part}})
		}
	default:
		return "", fmt.Errorf("jobs: unknown job kind %q (want \"experiment\" or \"fuzz\")", req.Kind)
	}

	// Submit-time dedupe: run cells whose digest is already in the store are
	// born done — a prior job, process, or machine already paid for them.
	for _, c := range j.cells {
		if s.dedupeCell(c) {
			j.done++
			j.deduped++
		}
	}

	s.mu.Lock()
	s.nextID++
	j.id = fmt.Sprintf("job-%d", s.nextID)
	s.jobs = append(s.jobs, j)
	s.byID[j.id] = j
	s.mu.Unlock()
	s.submitted.Add(1)
	s.cellsTotal.Add(uint64(len(j.cells)))
	s.cellsDone.Add(uint64(j.done))
	s.cellsDeduped.Add(uint64(j.deduped))
	return j.id, nil
}

// dedupeCell marks a run cell done if its result already exists in the
// store. The caller owns the cell (not yet published, or s.mu held).
func (s *Server) dedupeCell(c *cellState) bool {
	if s.store == nil || c.cell.Kind != CellRun {
		return false
	}
	digest, err := c.cell.Run.Digest()
	if err != nil {
		return false
	}
	if _, ok := s.store.GetDigest(digest); !ok {
		return false
	}
	c.state = stateDone
	c.result = CellResult{ID: c.cell.ID, Digest: digest}
	return true
}

// Status returns one job's status, or false.
func (s *Server) Status(id string) (JobStatus, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.byID[id]
	if !ok {
		return JobStatus{}, false
	}
	return j.status(), true
}

// List returns every job's status in submission order.
func (s *Server) List() []JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobStatus, len(s.jobs))
	for i, j := range s.jobs {
		out[i] = j.status()
	}
	return out
}

// Lease hands the next available cell to worker. Expired leases are reaped
// (returned to pending) on the way; a run cell that meanwhile appeared in the
// store is completed as a dedupe instead of handed out. The shutdown signal
// is only delivered once nothing is pending or leased — drain before exit.
func (s *Server) Lease(worker string) LeaseResponse {
	now := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	busy := false
	for _, j := range s.jobs {
		for _, c := range j.cells {
			if c.state == stateLeased {
				if now.After(c.expiry) {
					c.state = statePending
					c.worker = ""
					s.leasesExpired.Add(1)
				} else {
					busy = true
				}
			}
			if c.state != statePending {
				continue
			}
			// Lease-time dedupe: another worker (or another job sharing the
			// cell's digest) may have landed the result since submission.
			if s.dedupeCell(c) {
				j.done++
				j.deduped++
				s.cellsDone.Add(1)
				s.cellsDeduped.Add(1)
				continue
			}
			c.state = stateLeased
			c.worker = worker
			c.expiry = now.Add(s.leaseTTL)
			s.leases.Add(1)
			cell := c.cell
			return LeaseResponse{Job: j.id, Cell: &cell}
		}
	}
	return LeaseResponse{Shutdown: s.shutdown && !busy}
}

// Complete records a worker's result for a leased cell. Completing an
// already-done cell (a worker racing a lease-expiry replacement) is
// idempotent.
func (s *Server) Complete(req CompleteRequest) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.byID[req.Job]
	if !ok {
		return fmt.Errorf("jobs: unknown job %q", req.Job)
	}
	if req.Result.ID < 0 || req.Result.ID >= len(j.cells) {
		return fmt.Errorf("jobs: %s has no cell %d", req.Job, req.Result.ID)
	}
	c := j.cells[req.Result.ID]
	if c.state == stateDone {
		return nil
	}
	c.state = stateDone
	c.worker = req.Worker
	c.result = req.Result
	j.done++
	s.cellsDone.Add(1)
	return nil
}

// ServeHTTP routes the /jobs API:
//
//	POST /jobs           submit a JobRequest → {"id": "job-N"}
//	GET  /jobs           list every job's status
//	GET  /jobs/{id}      one job's status (merged report once done)
//	POST /jobs/lease     worker poll → LeaseResponse
//	POST /jobs/complete  worker result push
//	POST /jobs/shutdown  drain workers once the queue is empty
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.URL.Path == "/jobs" && r.Method == http.MethodPost:
		var req JobRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		id, err := s.Submit(req)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, map[string]string{"id": id})
	case r.URL.Path == "/jobs" && r.Method == http.MethodGet:
		writeJSON(w, s.List())
	case r.URL.Path == "/jobs/lease" && r.Method == http.MethodPost:
		var req LeaseRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, s.Lease(req.Worker))
	case r.URL.Path == "/jobs/complete" && r.Method == http.MethodPost:
		var req CompleteRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		if err := s.Complete(req); err != nil {
			httpError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, map[string]bool{"ok": true})
	case r.URL.Path == "/jobs/shutdown" && r.Method == http.MethodPost:
		s.Shutdown()
		writeJSON(w, map[string]bool{"ok": true})
	case strings.HasPrefix(r.URL.Path, "/jobs/") && r.Method == http.MethodGet:
		id := strings.TrimPrefix(r.URL.Path, "/jobs/")
		st, ok := s.Status(id)
		if !ok {
			httpError(w, http.StatusNotFound, fmt.Errorf("jobs: unknown job %q", id))
			return
		}
		writeJSON(w, st)
	default:
		httpError(w, http.StatusMethodNotAllowed, fmt.Errorf("jobs: %s %s not supported", r.Method, r.URL.Path))
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

// RegisterMetrics exposes the queue's accounting in r as nacho_jobs_* series.
func (s *Server) RegisterMetrics(r *telemetry.Registry) {
	r.NewCounterFunc("nacho_jobs_submitted_total",
		"Jobs accepted by the campaign job service.", s.submitted.Load)
	r.NewCounterFunc("nacho_jobs_cells_total",
		"Work cells enqueued across all jobs.", s.cellsTotal.Load)
	r.NewCounterFunc("nacho_jobs_cells_done_total",
		"Work cells completed (including deduped ones).", s.cellsDone.Load)
	r.NewCounterFunc("nacho_jobs_cells_deduped_total",
		"Run cells satisfied by an existing store entry without executing.", s.cellsDeduped.Load)
	r.NewCounterFunc("nacho_jobs_leases_total",
		"Cells handed to workers.", s.leases.Load)
	r.NewCounterFunc("nacho_jobs_leases_expired_total",
		"Leases reaped after their TTL and returned to the queue.", s.leasesExpired.Load)
	r.NewGaugeFunc("nacho_jobs_pending",
		"Cells currently waiting for a worker.", func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			n := 0
			for _, j := range s.jobs {
				for _, c := range j.cells {
					if c.state == statePending {
						n++
					}
				}
			}
			return float64(n)
		})
}
