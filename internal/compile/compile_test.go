package compile

import (
	"testing"

	"nacho/internal/isa"
)

// r is a plain general-purpose register shorthand for test programs.
func r(n int) isa.Reg { return isa.Reg(n) }

func compileOne(t *testing.T, instrs ...isa.Instr) *Program {
	t.Helper()
	return Compile(instrs)
}

func TestLowerSpecialization(t *testing.T) {
	cases := []struct {
		name string
		in   isa.Instr
		want Op
	}{
		{"alu", isa.Instr{Op: isa.ADDI, Rd: r(5), Rs1: r(6), Imm: 1}, Addi},
		{"alu to x0 is timed nop", isa.Instr{Op: isa.ADD, Rd: isa.Zero, Rs1: r(5), Rs2: r(6)}, TimedNop},
		{"addi to sp runs the stack guard", isa.Instr{Op: isa.ADDI, Rd: isa.SP, Rs1: isa.SP, Imm: -16}, AddiSP},
		{"non-addi write to sp falls back", isa.Instr{Op: isa.ADD, Rd: isa.SP, Rs1: r(5), Rs2: r(6)}, RefStep},
		{"load", isa.Instr{Op: isa.LW, Rd: r(5), Rs1: r(6)}, Lw},
		{"load to x0 falls back", isa.Instr{Op: isa.LW, Rd: isa.Zero, Rs1: r(6)}, RefStep},
		{"load to sp falls back", isa.Instr{Op: isa.LW, Rd: isa.SP, Rs1: r(6)}, RefStep},
		{"store", isa.Instr{Op: isa.SB, Rs1: r(6), Rs2: r(7)}, Sb},
		{"jal links", isa.Instr{Op: isa.JAL, Rd: r(1)}, Jal},
		{"jal x0 is a plain jump", isa.Instr{Op: isa.JAL, Rd: isa.Zero}, Jmp},
		{"jal into sp falls back", isa.Instr{Op: isa.JAL, Rd: isa.SP}, RefStep},
		{"jalr links", isa.Instr{Op: isa.JALR, Rd: r(1), Rs1: r(5)}, Jalr},
		{"jalr x0 is a register jump", isa.Instr{Op: isa.JALR, Rd: isa.Zero, Rs1: r(1)}, JmpReg},
		{"fence is a timed nop", isa.Instr{Op: isa.FENCE}, TimedNop},
		{"ebreak halts", isa.Instr{Op: isa.EBREAK}, Halt},
		{"ecall falls back", isa.Instr{Op: isa.ECALL}, RefStep},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := compileOne(t, tc.in)
			if got := p.Code[0].Op; got != tc.want {
				t.Fatalf("lowered op = %d, want %d", got, tc.want)
			}
		})
	}
}

func TestBranchTargetResolution(t *testing.T) {
	nop := isa.Instr{Op: isa.ADDI, Rd: r(5), Rs1: r(5)}
	beq := func(imm int32) isa.Instr {
		return isa.Instr{Op: isa.BEQ, Rs1: r(5), Rs2: r(6), Imm: imm}
	}
	t.Run("forward and backward", func(t *testing.T) {
		p := compileOne(t, beq(8), nop, beq(-8))
		if got := p.Code[0].Target; got != 2 {
			t.Fatalf("forward target = %d, want 2", got)
		}
		if got := p.Code[2].Target; got != 0 {
			t.Fatalf("backward target = %d, want 0", got)
		}
	})
	t.Run("out of text", func(t *testing.T) {
		p := compileOne(t, beq(8), nop) // lands one past the end
		if got := p.Code[0].Target; got != InvalidTarget {
			t.Fatalf("target = %d, want InvalidTarget", got)
		}
	})
	t.Run("before text", func(t *testing.T) {
		p := compileOne(t, beq(-4), nop)
		if got := p.Code[0].Target; got != InvalidTarget {
			t.Fatalf("target = %d, want InvalidTarget", got)
		}
	})
	t.Run("misaligned", func(t *testing.T) {
		p := compileOne(t, beq(6), nop, nop)
		if got := p.Code[0].Target; got != InvalidTarget {
			t.Fatalf("target = %d, want InvalidTarget", got)
		}
		// The architectural byte offset must survive for the fallback path.
		if got := int32(p.Code[0].Imm); got != 6 {
			t.Fatalf("fallback imm = %d, want 6", got)
		}
	})
}

func TestFusion(t *testing.T) {
	t.Run("lui+addi folds the constant", func(t *testing.T) {
		p := compileOne(t,
			isa.Instr{Op: isa.LUI, Rd: r(5), Imm: 0x12345000},
			isa.Instr{Op: isa.ADDI, Rd: r(5), Rs1: r(5), Imm: 0x678},
		)
		f := p.Code[0]
		if f.Op != LuiAddi || f.Imm != 0x12345678 {
			t.Fatalf("got op=%d imm=%#x, want LuiAddi imm=0x12345678", f.Op, f.Imm)
		}
		if p.Stats.Fused != 1 {
			t.Fatalf("Stats.Fused = %d, want 1", p.Stats.Fused)
		}
		// The shadowed slot keeps its own lowering for direct branch entry.
		if p.Code[1].Op != Addi {
			t.Fatalf("shadowed slot op = %d, want Addi", p.Code[1].Op)
		}
	})
	t.Run("addi+load carries both immediates", func(t *testing.T) {
		p := compileOne(t,
			isa.Instr{Op: isa.ADDI, Rd: r(6), Rs1: r(7), Imm: 16},
			isa.Instr{Op: isa.LW, Rd: r(5), Rs1: r(6), Imm: 4},
		)
		f := p.Code[0]
		if f.Op != AddiLw || f.Rd != 5 || f.Rs1 != 7 || f.Rs2 != 6 ||
			f.Imm != 16 || f.Target != 4 {
			t.Fatalf("unexpected fused load: %+v", f)
		}
	})
	t.Run("addi+store carries the value register in Rd", func(t *testing.T) {
		p := compileOne(t,
			isa.Instr{Op: isa.ADDI, Rd: r(6), Rs1: r(7), Imm: 16},
			isa.Instr{Op: isa.SW, Rs1: r(6), Rs2: r(9), Imm: 8},
		)
		f := p.Code[0]
		if f.Op != AddiSw || f.Rd != 9 || f.Rs1 != 7 || f.Rs2 != 6 ||
			f.Imm != 16 || f.Target != 8 {
			t.Fatalf("unexpected fused store: %+v", f)
		}
	})
	t.Run("slt+bnez fuses with a resolved target", func(t *testing.T) {
		nop := isa.Instr{Op: isa.ADDI, Rd: r(5), Rs1: r(5)}
		p := compileOne(t,
			isa.Instr{Op: isa.SLT, Rd: r(5), Rs1: r(6), Rs2: r(7)},
			isa.Instr{Op: isa.BNE, Rs1: r(5), Rs2: isa.Zero, Imm: 8},
			nop, nop,
		)
		f := p.Code[0]
		if f.Op != SltBne || f.Target != 3 {
			t.Fatalf("got op=%d target=%d, want SltBne target=3", f.Op, f.Target)
		}
	})
	t.Run("slt+bnez skipped when the target cannot resolve", func(t *testing.T) {
		p := compileOne(t,
			isa.Instr{Op: isa.SLT, Rd: r(5), Rs1: r(6), Rs2: r(7)},
			isa.Instr{Op: isa.BNE, Rs1: r(5), Rs2: isa.Zero, Imm: 64},
		)
		if p.Code[0].Op == SltBne {
			t.Fatal("fused despite unresolvable branch target")
		}
	})
	t.Run("unrelated neighbors stay unfused", func(t *testing.T) {
		p := compileOne(t,
			isa.Instr{Op: isa.ADDI, Rd: r(6), Rs1: r(7), Imm: 16},
			isa.Instr{Op: isa.LW, Rd: r(5), Rs1: r(8), Imm: 4}, // base is not the addi's rd
		)
		if p.Code[0].Op != Addi {
			t.Fatalf("fused across unrelated registers: op=%d", p.Code[0].Op)
		}
	})
}

func TestALURunLengths(t *testing.T) {
	alu := isa.Instr{Op: isa.ADDI, Rd: r(5), Rs1: r(5), Imm: 1}
	p := compileOne(t, alu, alu, alu,
		isa.Instr{Op: isa.BEQ, Rs1: r(5), Rs2: r(6), Imm: -12},
		alu,
	)
	want := []uint32{3, 2, 1, 0, 1}
	for i, w := range want {
		if got := p.Code[i].Run; got != w {
			t.Fatalf("Run[%d] = %d, want %d", i, got, w)
		}
	}
	if p.Stats.Batchable != 4 {
		t.Fatalf("Stats.Batchable = %d, want 4", p.Stats.Batchable)
	}
}

func TestWidth(t *testing.T) {
	if w := Addi.Width(); w != 1 {
		t.Fatalf("Addi.Width() = %d, want 1", w)
	}
	for _, o := range []Op{LuiAddi, AddiLw, AddiSb, SltBne, SltiuBeq} {
		if w := o.Width(); w != 2 {
			t.Fatalf("Width(%d) = %d, want 2", o, w)
		}
	}
}

func TestStatsRefSteps(t *testing.T) {
	p := compileOne(t,
		isa.Instr{Op: isa.ECALL},
		isa.Instr{Op: isa.LW, Rd: isa.Zero, Rs1: r(6)},
		isa.Instr{Op: isa.ADDI, Rd: r(5), Rs1: r(5)},
	)
	if p.Stats.RefSteps != 2 {
		t.Fatalf("Stats.RefSteps = %d, want 2", p.Stats.RefSteps)
	}
}
