// Package compile lowers decoded RV32IM text into a threaded-code IR: the
// ahead-of-time half of the emulator's compile/interpret split (the same
// shape as starlark-go's internal/compile bytecode feeding its interp loop).
//
// The IR is slot-for-slot parallel to the instruction stream: IR index i
// describes the architectural instruction at textBase + 4*i. Lowering
// specializes each instruction once — operands pre-decoded into flat uint8
// register numbers, immediates pre-sign-extended into uint32, static branch
// and jump targets pre-resolved to IR indices, x0/sp destination handling
// baked into distinct opcodes — so the interpreter loop in internal/emu pays
// no per-step decode, no operand extraction, and no destination-register
// special-casing.
//
// A fusion pass additionally forms two-instruction superinstructions
// (lui+addi constant synthesis, addi+load/store address generation, and
// slt-family compare-and-branch). A fused opcode occupies the slot of its
// first instruction and performs the architectural work of both; the second
// slot keeps its plain lowering so control flow may still enter there
// directly. Because every executed slot performs exactly the architectural
// instruction(s) it covers and then transfers to the correct successor slot,
// overlapping fusion opportunities need no conflict resolution.
//
// The package is deliberately free of execution semantics: it imports only
// internal/isa and never touches the clock, the memory system, or the
// power-failure schedule. Anything it cannot specialize it lowers to RefStep,
// which the interpreter delegates to the reference step — so the reference
// interpreter remains the single behavioral specification.
package compile

import "nacho/internal/isa"

// Op enumerates the IR opcodes. RefStep (the zero value) delegates to the
// reference interpreter.
type Op uint8

const (
	// RefStep executes the slot's architectural instruction through the
	// reference interpreter's step: ECALL, unexecutable encodings, and the
	// rare operand shapes not worth specializing (loads targeting x0 or sp,
	// non-ADDI writes to sp, jumps linking into sp).
	RefStep Op = iota

	// Register-only ALU operations with Rd ∉ {x0, sp}: one base cycle, one
	// register write, no memory, no control flow. The block is contiguous so
	// membership is a single range compare (see isSimpleALU); these are the
	// only ops eligible for batched execution (Inst.Run).
	Lui
	Auipc
	Addi
	Slti
	Sltiu
	Xori
	Ori
	Andi
	Slli
	Srli
	Srai
	Add
	Sub
	Sll
	Slt
	Sltu
	Xor
	Srl
	Sra
	Or
	And
	Mul
	Mulh
	Mulhsu
	Mulhu
	Div
	Divu
	Rem
	Remu

	// TimedNop charges one base cycle and retires with no architectural
	// effect: ALU operations writing x0 (the write is discarded) and FENCE
	// (nothing to order on an in-order single-issue core).
	TimedNop
	// AddiSP is ADDI with Rd == sp: the stack-pointer update that runs the
	// emulator's stack guard and notifies the memory system's stack tracker.
	AddiSP
	// Halt is EBREAK: charge the base cycle, advance pc, halt cleanly.
	Halt

	// Control transfers. Target holds the pre-resolved IR index of the
	// static destination, or InvalidTarget when the destination falls
	// outside the text segment or is misaligned (the interpreter then
	// commits the architectural pc and lets the reference fetch produce the
	// identical out-of-text error). Imm keeps the byte offset for that
	// fallback. Jmp/JmpReg are the link-less (Rd == x0) forms of Jal/Jalr.
	Jmp
	Jal
	JmpReg
	Jalr
	Beq
	Bne
	Blt
	Bge
	Bltu
	Bgeu

	// Memory operations, specialized by width and (for loads) sign
	// extension, with Rd ∉ {x0, sp} for loads. Imm is the address offset.
	Lb
	Lh
	Lw
	Lbu
	Lhu
	Sb
	Sh
	Sw

	// Fused superinstructions: each covers the architectural instructions of
	// its own slot and the next (Width == 2).

	// LuiAddi is "lui rd, hi" + "addi rd, rd, lo" — constant synthesis. Imm
	// holds the final constant, computed at compile time.
	LuiAddi

	// AddiL*/AddiS* fuse address generation into the memory access:
	// "addi rt, rb, imm1" + a load/store whose base is rt. The addi still
	// commits rt (it is architecturally visible). Field layout: Rs1 = rb,
	// Rs2 = rt, Imm = imm1, Target = the memory op's offset (imm2), and
	// Rd = the load destination / the store value register.
	AddiLb
	AddiLh
	AddiLw
	AddiLbu
	AddiLhu
	AddiSb
	AddiSh
	AddiSw

	// Slt*B* fuse a compare into the following branch-on-zero:
	// "slt/sltu/slti/sltiu rd, ..." + "bne/beq rd, x0" (either operand
	// order). The compare still commits rd. Target is always a valid IR
	// index — fusion is skipped otherwise. Immediate forms carry the compare
	// immediate in Imm.
	SltBne
	SltuBne
	SltBeq
	SltuBeq
	SltiBne
	SltiuBne
	SltiBeq
	SltiuBeq

	numOps
)

// InvalidTarget marks a static control-flow destination outside the text
// segment (or misaligned): taking it must produce the reference fetch error.
const InvalidTarget = ^uint32(0)

// Width is the number of architectural instructions the opcode covers: 2 for
// fused superinstructions, 1 otherwise.
func (o Op) Width() uint32 {
	if o >= LuiAddi {
		return 2
	}
	return 1
}

// isSimpleALU reports whether the opcode is a specialized register-only ALU
// operation (batchable: no memory, no control, Rd ∉ {x0, sp}).
func isSimpleALU(o Op) bool { return o >= Lui && o <= Remu }

// Inst is one IR slot: a fully pre-decoded instruction (or superinstruction)
// the interpreter executes without consulting the original encoding.
type Inst struct {
	Op           Op
	Rd, Rs1, Rs2 uint8
	Imm          uint32 // pre-sign-extended immediate (meaning per opcode)
	Target       uint32 // pre-resolved IR index for static control flow / second immediate for fused memory ops
	Run          uint32 // length of the simple-ALU run starting here (0 if this slot is not simple ALU)
}

// Stats summarizes one compilation, for tests and tooling.
type Stats struct {
	Fused     int // slots holding a two-instruction superinstruction
	Batchable int // slots eligible for batched ALU execution
	RefSteps  int // slots delegated to the reference interpreter
}

// Program is a compiled text segment. Code is slot-for-slot parallel to the
// instruction stream: Code[i] executes the instruction at textBase + 4*i.
type Program struct {
	Code  []Inst
	Stats Stats
}

// aluOp maps an isa ALU opcode to its specialized IR opcode.
var aluOp = [...]Op{
	isa.LUI: Lui, isa.AUIPC: Auipc,
	isa.ADDI: Addi, isa.SLTI: Slti, isa.SLTIU: Sltiu, isa.XORI: Xori,
	isa.ORI: Ori, isa.ANDI: Andi, isa.SLLI: Slli, isa.SRLI: Srli, isa.SRAI: Srai,
	isa.ADD: Add, isa.SUB: Sub, isa.SLL: Sll, isa.SLT: Slt, isa.SLTU: Sltu,
	isa.XOR: Xor, isa.SRL: Srl, isa.SRA: Sra, isa.OR: Or, isa.AND: And,
	isa.MUL: Mul, isa.MULH: Mulh, isa.MULHSU: Mulhsu, isa.MULHU: Mulhu,
	isa.DIV: Div, isa.DIVU: Divu, isa.REM: Rem, isa.REMU: Remu,
}

var loadOp = [...]Op{isa.LB: Lb, isa.LH: Lh, isa.LW: Lw, isa.LBU: Lbu, isa.LHU: Lhu}
var storeOp = [...]Op{isa.SB: Sb, isa.SH: Sh, isa.SW: Sw}
var branchOp = [...]Op{isa.BEQ: Beq, isa.BNE: Bne, isa.BLT: Blt, isa.BGE: Bge, isa.BLTU: Bltu, isa.BGEU: Bgeu}
var fusedLoadOp = [...]Op{isa.LB: AddiLb, isa.LH: AddiLh, isa.LW: AddiLw, isa.LBU: AddiLbu, isa.LHU: AddiLhu}
var fusedStoreOp = [...]Op{isa.SB: AddiSb, isa.SH: AddiSh, isa.SW: AddiSw}

// cmpBranchOp[cmp][branch] maps a fusible compare × branch pair; cmp indexed
// 0..3 = SLT, SLTU, SLTI, SLTIU and branch 0..1 = BNE, BEQ.
var cmpBranchOp = [4][2]Op{
	{SltBne, SltBeq},
	{SltuBne, SltuBeq},
	{SltiBne, SltiBeq},
	{SltiuBne, SltiuBeq},
}

// Compile lowers a decoded instruction sequence into its IR program. The
// input is not retained.
func Compile(instrs []isa.Instr) *Program {
	n := len(instrs)
	p := &Program{Code: make([]Inst, n)}
	for i := range instrs {
		p.Code[i] = lower(&instrs[i], i, n)
	}
	for i := 0; i+1 < n; i++ {
		if f, ok := fuse(&instrs[i], &instrs[i+1], i, n); ok {
			p.Code[i] = f
			p.Stats.Fused++
		}
	}
	// ALU run lengths, right to left (cf. emu's block analysis): Run counts
	// the consecutive simple-ALU slots starting at i. Fused slots are never
	// simple ALU, so runs neither include nor jump over them, and a slot
	// shadowed by a preceding fused op still carries its own run for direct
	// branch entry.
	for i := n - 1; i >= 0; i-- {
		switch {
		case isSimpleALU(p.Code[i].Op):
			p.Code[i].Run = 1
			if i+1 < n {
				p.Code[i].Run += p.Code[i+1].Run
			}
			p.Stats.Batchable++
		case p.Code[i].Op == RefStep:
			p.Stats.RefSteps++
		}
	}
	return p
}

// target resolves a static control-flow destination (byte offset imm from
// slot i) to an IR index, or InvalidTarget if it leaves the text segment or
// is misaligned.
func target(i int, imm int32, n int) uint32 {
	if imm%4 != 0 {
		return InvalidTarget
	}
	t := int64(i) + int64(imm)/4
	if t < 0 || t >= int64(n) {
		return InvalidTarget
	}
	return uint32(t)
}

// lower specializes one instruction into its IR slot.
func lower(in *isa.Instr, i, n int) Inst {
	rd, rs1, rs2 := uint8(in.Rd), uint8(in.Rs1), uint8(in.Rs2)
	imm := uint32(in.Imm)
	op := in.Op
	switch {
	case op.IsALU():
		switch in.Rd {
		case isa.Zero:
			return Inst{Op: TimedNop}
		case isa.SP:
			if op == isa.ADDI {
				return Inst{Op: AddiSP, Rd: rd, Rs1: rs1, Imm: imm}
			}
			return Inst{Op: RefStep}
		}
		return Inst{Op: aluOp[op], Rd: rd, Rs1: rs1, Rs2: rs2, Imm: imm}
	case op.IsLoad():
		if in.Rd == isa.Zero || in.Rd == isa.SP {
			return Inst{Op: RefStep}
		}
		return Inst{Op: loadOp[op], Rd: rd, Rs1: rs1, Imm: imm}
	case op.IsStore():
		return Inst{Op: storeOp[op], Rs1: rs1, Rs2: rs2, Imm: imm}
	case op.IsBranch():
		return Inst{Op: branchOp[op], Rs1: rs1, Rs2: rs2, Imm: imm, Target: target(i, in.Imm, n)}
	case op == isa.JAL:
		if in.Rd == isa.SP {
			return Inst{Op: RefStep}
		}
		o := Jal
		if in.Rd == isa.Zero {
			o = Jmp
		}
		return Inst{Op: o, Rd: rd, Imm: imm, Target: target(i, in.Imm, n)}
	case op == isa.JALR:
		if in.Rd == isa.SP {
			return Inst{Op: RefStep}
		}
		o := Jalr
		if in.Rd == isa.Zero {
			o = JmpReg
		}
		return Inst{Op: o, Rd: rd, Rs1: rs1, Imm: imm}
	case op == isa.FENCE:
		return Inst{Op: TimedNop}
	case op == isa.EBREAK:
		return Inst{Op: Halt}
	default: // ECALL, OpInvalid, and anything unrecognized
		return Inst{Op: RefStep}
	}
}

// gpr reports whether r is a general-purpose destination the specialized ops
// may write directly (not x0, whose writes are discarded, and not sp, whose
// writes run the stack guard).
func gpr(r isa.Reg) bool { return r != isa.Zero && r != isa.SP }

// fuse recognizes a two-instruction superinstruction at slots (i, i+1).
func fuse(a, b *isa.Instr, i, n int) (Inst, bool) {
	switch {
	case a.Op == isa.LUI && gpr(a.Rd) &&
		b.Op == isa.ADDI && b.Rd == a.Rd && b.Rs1 == a.Rd:
		return Inst{Op: LuiAddi, Rd: uint8(a.Rd), Imm: uint32(a.Imm) + uint32(b.Imm)}, true

	case a.Op == isa.ADDI && gpr(a.Rd) && b.Rs1 == a.Rd:
		switch {
		case b.Op.IsLoad() && gpr(b.Rd):
			return Inst{Op: fusedLoadOp[b.Op], Rd: uint8(b.Rd),
				Rs1: uint8(a.Rs1), Rs2: uint8(a.Rd),
				Imm: uint32(a.Imm), Target: uint32(b.Imm)}, true
		case b.Op.IsStore():
			return Inst{Op: fusedStoreOp[b.Op], Rd: uint8(b.Rs2),
				Rs1: uint8(a.Rs1), Rs2: uint8(a.Rd),
				Imm: uint32(a.Imm), Target: uint32(b.Imm)}, true
		}

	case (a.Op == isa.SLT || a.Op == isa.SLTU || a.Op == isa.SLTI || a.Op == isa.SLTIU) &&
		gpr(a.Rd) && (b.Op == isa.BEQ || b.Op == isa.BNE):
		// bnez/beqz on the compare result, either operand order. Fuse only
		// when the branch target resolves: the InvalidTarget fallback needs
		// the plain branch's byte offset, which the fused encoding spends on
		// the compare immediate.
		if !((b.Rs1 == a.Rd && b.Rs2 == isa.Zero) || (b.Rs2 == a.Rd && b.Rs1 == isa.Zero)) {
			return Inst{}, false
		}
		tgt := target(i+1, b.Imm, n)
		if tgt == InvalidTarget {
			return Inst{}, false
		}
		var ci int
		switch a.Op {
		case isa.SLT:
			ci = 0
		case isa.SLTU:
			ci = 1
		case isa.SLTI:
			ci = 2
		default:
			ci = 3
		}
		bi := 0
		if b.Op == isa.BEQ {
			bi = 1
		}
		return Inst{Op: cmpBranchOp[ci][bi], Rd: uint8(a.Rd),
			Rs1: uint8(a.Rs1), Rs2: uint8(a.Rs2),
			Imm: uint32(a.Imm), Target: tgt}, true
	}
	return Inst{}, false
}
