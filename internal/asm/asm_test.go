package asm

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"nacho/internal/isa"
)

func mustAssemble(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Assemble(src, DefaultOptions())
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	return p
}

// textWords decodes the .text segment back into instructions.
func textWords(t *testing.T, p *Program) []isa.Instr {
	t.Helper()
	var out []isa.Instr
	seg := p.Segments[0]
	for i := 0; i+4 <= len(seg.Data); i += 4 {
		w := uint32(seg.Data[i]) | uint32(seg.Data[i+1])<<8 | uint32(seg.Data[i+2])<<16 | uint32(seg.Data[i+3])<<24
		in, err := isa.Decode(w)
		if err != nil {
			t.Fatalf("decode word %d (0x%08x): %v", i/4, w, err)
		}
		out = append(out, in)
	}
	return out
}

func TestBasicInstructions(t *testing.T) {
	p := mustAssemble(t, `
		.text
		_start:
		addi sp, sp, -16
		lw   a0, 8(sp)
		sw   a1, (sp)
		add  a2, a0, a1
		mul  a3, a2, a0
		ebreak
	`)
	want := []isa.Instr{
		{Op: isa.ADDI, Rd: isa.SP, Rs1: isa.SP, Imm: -16},
		{Op: isa.LW, Rd: isa.A0, Rs1: isa.SP, Imm: 8},
		{Op: isa.SW, Rs1: isa.SP, Rs2: isa.A1, Imm: 0},
		{Op: isa.ADD, Rd: isa.A2, Rs1: isa.A0, Rs2: isa.A1},
		{Op: isa.MUL, Rd: isa.A3, Rs1: isa.A2, Rs2: isa.A0},
		{Op: isa.EBREAK},
	}
	got := textWords(t, p)
	if len(got) != len(want) {
		t.Fatalf("got %d instrs, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("instr %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if p.Entry != DefaultOptions().TextBase {
		t.Errorf("entry = %#x, want %#x", p.Entry, DefaultOptions().TextBase)
	}
}

func TestBranchAndLabelResolution(t *testing.T) {
	p := mustAssemble(t, `
	_start:
		li   t0, 10
	loop:
		addi t0, t0, -1
		bnez t0, loop
		beq  t0, zero, done
		nop
	done:
		ebreak
	`)
	ins := textWords(t, p)
	// li 10 fits in addi → single word. Layout:
	// 0: addi t0, zero, 10
	// 4: addi t0, t0, -1   <- loop
	// 8: bne t0, zero, -4
	// 12: beq t0, zero, +8 (to 20)
	// 16: nop
	// 20: ebreak            <- done
	if ins[2].Op != isa.BNE || ins[2].Imm != -4 {
		t.Errorf("bnez lowered to %+v, want bne offset -4", ins[2])
	}
	if ins[3].Op != isa.BEQ || ins[3].Imm != 8 {
		t.Errorf("beq lowered to %+v, want offset 8", ins[3])
	}
}

func TestLiLaExpansion(t *testing.T) {
	p := mustAssemble(t, `
		.data
	buf:	.space 64
		.text
	_start:
		li a0, 2047
		li a1, -2048
		li a2, 0x12345678
		li a3, -1
		la a4, buf
	`)
	ins := textWords(t, p)
	check := func(idx int, want isa.Instr) {
		t.Helper()
		if ins[idx] != want {
			t.Errorf("instr %d = %+v, want %+v", idx, ins[idx], want)
		}
	}
	check(0, isa.Instr{Op: isa.ADDI, Rd: isa.A0, Imm: 2047})
	check(1, isa.Instr{Op: isa.ADDI, Rd: isa.A1, Imm: -2048})
	// 0x12345678: lo = 0x678, hi = 0x12345000
	check(2, isa.Instr{Op: isa.LUI, Rd: isa.A2, Imm: 0x12345000})
	check(3, isa.Instr{Op: isa.ADDI, Rd: isa.A2, Rs1: isa.A2, Imm: 0x678})
	check(4, isa.Instr{Op: isa.ADDI, Rd: isa.A3, Imm: -1})
	// la buf: buf at DataBase.
	base := int32(DefaultOptions().DataBase)
	check(5, isa.Instr{Op: isa.LUI, Rd: isa.A4, Imm: base})
	check(6, isa.Instr{Op: isa.ADDI, Rd: isa.A4, Rs1: isa.A4, Imm: 0})
}

func TestLiRoundTripValues(t *testing.T) {
	// Property: for a spread of 32-bit constants, the lui+addi (or addi)
	// sequence reconstructs exactly the constant.
	values := []int32{0, 1, -1, 2047, -2048, 2048, -2049, 0x7FFFFFFF, -0x80000000, 0x12345678, -0x12345678, 0x800, 0xFFF, 0x1000, 0x0001_0000}
	for _, v := range values {
		src := fmt.Sprintf("_start:\n li a0, %d\n", v)
		p := mustAssemble(t, src)
		ins := textWords(t, p)
		var got int32
		for _, in := range ins {
			switch in.Op {
			case isa.LUI:
				got = in.Imm
			case isa.ADDI:
				if in.Rs1 == isa.A0 {
					got += in.Imm
				} else {
					got = in.Imm
				}
			}
		}
		if got != v {
			t.Errorf("li %d reconstructs to %d (instrs %v)", v, got, ins)
		}
	}
}

func TestDataDirectives(t *testing.T) {
	p := mustAssemble(t, `
		.data
	tbl:	.word 1, 2, -1, 0xDEADBEEF
	h:	.half 0x1234
	b:	.byte 'A', '\n', 255
	s:	.asciz "hi\n"
		.balign 4
	end:	.word tbl
	`)
	var data []byte
	for _, seg := range p.Segments {
		if seg.Addr == DefaultOptions().DataBase {
			data = seg.Data
		}
	}
	if data == nil {
		t.Fatal("no data segment")
	}
	wantPrefix := []byte{
		1, 0, 0, 0, 2, 0, 0, 0, 0xFF, 0xFF, 0xFF, 0xFF, 0xEF, 0xBE, 0xAD, 0xDE,
		0x34, 0x12,
		'A', '\n', 255,
		'h', 'i', '\n', 0,
		0, 0, 0, // balign padding to 28
	}
	if len(data) < len(wantPrefix)+4 {
		t.Fatalf("data segment too short: %d bytes", len(data))
	}
	for i, b := range wantPrefix {
		if data[i] != b {
			t.Errorf("data[%d] = %#x, want %#x", i, data[i], b)
		}
	}
	// end: .word tbl — must hold the address of tbl.
	endSym := p.Symbols["end"]
	off := endSym - DefaultOptions().DataBase
	got := uint32(data[off]) | uint32(data[off+1])<<8 | uint32(data[off+2])<<16 | uint32(data[off+3])<<24
	if got != p.Symbols["tbl"] {
		t.Errorf(".word tbl = %#x, want %#x", got, p.Symbols["tbl"])
	}
	if endSym%4 != 0 {
		t.Errorf("end not aligned: %#x", endSym)
	}
}

func TestEquAndExpressions(t *testing.T) {
	p := mustAssemble(t, `
		.equ N, 16
		.equ DOUBLE, N*2
		.data
	arr:	.space N*4
	after:	.word DOUBLE+1
		.text
	_start:	li a0, N-1
	`)
	if p.Symbols["N"] != 16 || p.Symbols["DOUBLE"] != 32 {
		t.Errorf("equ symbols wrong: N=%d DOUBLE=%d", p.Symbols["N"], p.Symbols["DOUBLE"])
	}
	if p.Symbols["after"]-p.Symbols["arr"] != 64 {
		t.Errorf(".space N*4 reserved %d bytes, want 64", p.Symbols["after"]-p.Symbols["arr"])
	}
	// li with a symbolic expression uses the 2-word lui+addi form; the
	// reconstructed constant must still be N-1.
	ins := textWords(t, p)
	if len(ins) != 2 || ins[0].Op != isa.LUI || ins[1].Op != isa.ADDI {
		t.Fatalf("li a0, N-1 lowered to %v, want lui+addi", ins)
	}
	if got := ins[0].Imm + ins[1].Imm; got != 15 {
		t.Errorf("li a0, N-1 reconstructs to %d, want 15", got)
	}
}

func TestPseudoLowering(t *testing.T) {
	p := mustAssemble(t, `
	_start:
		mv   a0, a1
		not  a2, a3
		neg  a4, a5
		seqz t0, t1
		snez t2, t3
		j    skip
		nop
	skip:	jr   ra
		call _start
		ret
		bgt  a0, a1, skip
		bleu a0, a1, skip
	`)
	ins := textWords(t, p)
	want := []isa.Instr{
		{Op: isa.ADDI, Rd: isa.A0, Rs1: isa.A1},
		{Op: isa.XORI, Rd: isa.A2, Rs1: isa.A3, Imm: -1},
		{Op: isa.SUB, Rd: isa.A4, Rs2: isa.A5},
		{Op: isa.SLTIU, Rd: isa.T0, Rs1: isa.T1, Imm: 1},
		{Op: isa.SLTU, Rd: isa.T2, Rs2: isa.T3},
		{Op: isa.JAL, Rd: isa.Zero, Imm: 8},
		{Op: isa.ADDI},
		{Op: isa.JALR, Rd: isa.Zero, Rs1: isa.RA},
		{Op: isa.JAL, Rd: isa.RA, Imm: -32},
		{Op: isa.JALR, Rd: isa.Zero, Rs1: isa.RA},
		{Op: isa.BLT, Rs1: isa.A1, Rs2: isa.A0, Imm: -12},
		{Op: isa.BGEU, Rs1: isa.A1, Rs2: isa.A0, Imm: -16},
	}
	if len(ins) != len(want) {
		t.Fatalf("got %d instrs, want %d: %v", len(ins), len(want), ins)
	}
	for i := range want {
		if ins[i] != want[i] {
			t.Errorf("instr %d = %+v, want %+v", i, ins[i], want[i])
		}
	}
}

func TestErrors(t *testing.T) {
	cases := []struct {
		src     string
		wantSub string
	}{
		{"bogus a0, a1", "unknown instruction"},
		{"addi a0, a1", "3 operands"},
		{"addi a0, a1, 5000", "out of range"},
		{"lw a0, a1", "memory operand"},
		{"x: \n x: nop", "duplicate label"},
		{"li a0, undefined_sym", "undefined symbol"},
		{".word", "at least one value"},
		{".byte 300", "out of range"},
		{"beq a0, a1", "3 operands"},
		{"addi a9, a1, 0", "bad register"},
		{".bogusdir 4", "unknown directive"},
		{"lw a0, 4(sp", "unbalanced"},
	}
	for _, c := range cases {
		_, err := Assemble(c.src, DefaultOptions())
		if err == nil {
			t.Errorf("Assemble(%q) succeeded, want error containing %q", c.src, c.wantSub)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("Assemble(%q) error = %v, want substring %q", c.src, err, c.wantSub)
		}
	}
}

func TestCommentsAndLabels(t *testing.T) {
	p := mustAssemble(t, `
	# full line comment
	_start: nop // trailing comment
	a: b: nop   # two labels on one line
		.data
	msg: .asciz "has # no comment \" inside"
	`)
	if p.Symbols["a"] != p.Symbols["b"] {
		t.Errorf("stacked labels differ: a=%#x b=%#x", p.Symbols["a"], p.Symbols["b"])
	}
	if len(textWords(t, p)) != 2 {
		t.Errorf("want 2 instructions")
	}
	var data []byte
	for _, seg := range p.Segments {
		if seg.Addr == DefaultOptions().DataBase {
			data = seg.Data
		}
	}
	want := "has # no comment \" inside\x00"
	if string(data) != want {
		t.Errorf("string data = %q, want %q", data, want)
	}
}

func TestEntrySymbol(t *testing.T) {
	p := mustAssemble(t, `
	helper: nop
	_start: nop
	`)
	if p.Entry != p.Symbols["_start"] {
		t.Errorf("entry = %#x, want _start %#x", p.Entry, p.Symbols["_start"])
	}
}

// TestDisassemblyRoundTrip is a property test tying the assembler to the
// disassembler: for random structurally-valid instructions (excluding
// pc-relative ones, whose textual operand is an absolute target), rendering
// via isa.Instr.String and re-assembling the text must reproduce the
// instruction exactly.
func TestDisassemblyRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	reg := func() isa.Reg { return isa.Reg(r.Intn(isa.NumRegs)) }
	imm12 := func() int32 { return int32(r.Intn(1<<12)) - (1 << 11) }
	regRegOps := []isa.Op{
		isa.ADD, isa.SUB, isa.SLL, isa.SLT, isa.SLTU, isa.XOR, isa.SRL,
		isa.SRA, isa.OR, isa.AND, isa.MUL, isa.MULH, isa.MULHSU, isa.MULHU,
		isa.DIV, isa.DIVU, isa.REM, isa.REMU,
	}
	immOps := []isa.Op{isa.ADDI, isa.SLTI, isa.SLTIU, isa.XORI, isa.ORI, isa.ANDI}
	memOps := []isa.Op{isa.LB, isa.LH, isa.LW, isa.LBU, isa.LHU, isa.SB, isa.SH, isa.SW}

	for i := 0; i < 5000; i++ {
		var in isa.Instr
		switch r.Intn(5) {
		case 0:
			in = isa.Instr{Op: regRegOps[r.Intn(len(regRegOps))], Rd: reg(), Rs1: reg(), Rs2: reg()}
		case 1:
			in = isa.Instr{Op: immOps[r.Intn(len(immOps))], Rd: reg(), Rs1: reg(), Imm: imm12()}
		case 2:
			op := memOps[r.Intn(len(memOps))]
			in = isa.Instr{Op: op, Rs1: reg(), Imm: imm12()}
			if op.IsLoad() {
				in.Rd = reg()
			} else {
				in.Rs2 = reg()
			}
		case 3:
			in = isa.Instr{Op: isa.LUI, Rd: reg(), Imm: int32(uint32(r.Intn(1<<20)) << 12)}
		default:
			sh := []isa.Op{isa.SLLI, isa.SRLI, isa.SRAI}[r.Intn(3)]
			in = isa.Instr{Op: sh, Rd: reg(), Rs1: reg(), Imm: int32(r.Intn(32))}
		}
		src := "_start:\n\t" + in.String() + "\n"
		p, err := Assemble(src, DefaultOptions())
		if err != nil {
			t.Fatalf("assemble %q: %v", in.String(), err)
		}
		got := textWords(t, p)
		if len(got) != 1 || got[0] != in {
			t.Fatalf("round trip %q: got %+v, want %+v", in.String(), got, in)
		}
	}
}

func TestMoreErrorPaths(t *testing.T) {
	cases := []struct {
		src     string
		wantSub string
	}{
		{".equ N", "name, value"},
		{".equ 9bad, 1", "invalid symbol"},
		{".equ N, 1\n.equ N, 2", "duplicate symbol"},
		{".space -4", "out of range"},
		{".align 99", "out of range"},
		{".balign 3", "power of two"},
		{".ascii noquotes", "string literal"},
		{".asciz \"bad\\q\"", "unknown string escape"},
		{".half 70000", "out of range"},
		{"lui a0, 0x100000", "20-bit range"},
		{"jalr a0, a1, a2, a3", "1 or 2 operands"},
		{"jal a0, a1, a2", "1 or 2 operands"},
		{"li a0", "needs rd, imm"},
		{"sll a0, a1", "3 operands"},
		{"beq a0, a1, 3", "misaligned"},
		{"_start: j faraway", "undefined symbol"},
		{".word 1+", "unexpected end"},
		{".word (1", "unbalanced"},
		{".word 'a", "bad character literal"},
		{".word '\\q'", "unknown escape"},
		{".section", "needs a name"},
		{"mv a0", "needs 2"},
		{"addi a0, a1, ", "empty operand"},
	}
	for _, c := range cases {
		_, err := Assemble(c.src, DefaultOptions())
		if err == nil {
			t.Errorf("Assemble(%q) succeeded, want error %q", c.src, c.wantSub)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("Assemble(%q) error = %v, want substring %q", c.src, err, c.wantSub)
		}
	}
}

func TestSectionDirective(t *testing.T) {
	p := mustAssemble(t, `
	.section .text
_start:	nop
	.section .rodata
x:	.word 5
	.section .text
	ebreak
`)
	if p.Symbols["x"] < DefaultOptions().DataBase {
		t.Errorf("x placed at %#x, want in data", p.Symbols["x"])
	}
	if len(textWords(t, p)) != 2 {
		t.Errorf("text should hold 2 instructions")
	}
}

func TestJalrForms(t *testing.T) {
	p := mustAssemble(t, `
_start:
	jalr t0
	jalr a0, 8(t1)
`)
	ins := textWords(t, p)
	want := []isa.Instr{
		{Op: isa.JALR, Rd: isa.RA, Rs1: isa.T0},
		{Op: isa.JALR, Rd: isa.A0, Rs1: isa.T1, Imm: 8},
	}
	for i := range want {
		if ins[i] != want[i] {
			t.Errorf("instr %d = %+v, want %+v", i, ins[i], want[i])
		}
	}
}

func TestBranchZeroPseudoForms(t *testing.T) {
	p := mustAssemble(t, `
_start:
	blez a0, _start
	bgez a1, _start
	bltz a2, _start
	bgtz a3, _start
	sltz t0, a4
	sgtz t1, a5
`)
	ins := textWords(t, p)
	want := []isa.Instr{
		{Op: isa.BGE, Rs2: isa.A0, Imm: 0},
		{Op: isa.BGE, Rs1: isa.A1, Imm: -4},
		{Op: isa.BLT, Rs1: isa.A2, Imm: -8},
		{Op: isa.BLT, Rs2: isa.A3, Imm: -12},
		{Op: isa.SLT, Rd: isa.T0, Rs1: isa.A4},
		{Op: isa.SLT, Rd: isa.T1, Rs2: isa.A5},
	}
	for i := range want {
		if ins[i] != want[i] {
			t.Errorf("instr %d = %+v, want %+v", i, ins[i], want[i])
		}
	}
}

func TestHiLoRelocations(t *testing.T) {
	p := mustAssemble(t, `
	.data
	.space 0x804
x:	.word 7
	.text
_start:
	lui  a0, %hi(x)
	addi a0, a0, %lo(x)
	lw   a1, %lo(x)(a0)
`)
	addr := p.Symbols["x"]
	ins := textWords(t, p)
	// lui imm (already shifted) + sign-extended addi must reconstruct x.
	got := uint32(ins[0].Imm) + uint32(ins[1].Imm)
	if got != addr {
		t.Errorf("%%hi/%%lo reconstruct %#x, want %#x", got, addr)
	}
	// The %lo in a memory displacement also resolves.
	if ins[2].Op != isa.LW {
		t.Fatalf("third instr %v", ins[2])
	}
	// Known tricky case: low 12 bits >= 0x800 forces the +0x800 rounding.
	if addr&0xFFF < 0x800 {
		t.Fatalf("test layout did not exercise the rounding case: %#x", addr)
	}
}

func TestHiLoErrors(t *testing.T) {
	for _, src := range []string{
		"_start: lui a0, %hi(x", "_start: lui a0, %bad(3)", "_start: lui a0, %hi(undefined)",
	} {
		if _, err := Assemble(src, DefaultOptions()); err == nil {
			t.Errorf("Assemble(%q) succeeded", src)
		}
	}
}

func TestStringsWithCommas(t *testing.T) {
	p := mustAssemble(t, `
	.data
m:	.asciz "a, b, c"
`)
	var data []byte
	for _, seg := range p.Segments {
		if seg.Addr == DefaultOptions().DataBase {
			data = seg.Data
		}
	}
	if string(data) != "a, b, c\x00" {
		t.Errorf("data = %q", data)
	}
	if _, err := Assemble(`.asciz "unterminated`, DefaultOptions()); err == nil {
		t.Error("unterminated string accepted")
	}
}
