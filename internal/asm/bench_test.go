package asm

import "testing"

const benchSrc = `
	.data
buf:	.space 256
	.text
_start:
	la   a1, buf
	li   a2, 0
loop:
	slli t0, a2, 2
	add  t0, a1, t0
	sw   a2, (t0)
	addi a2, a2, 1
	li   t1, 64
	bne  a2, t1, loop
	ebreak
`

func BenchmarkAssemble(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Assemble(benchSrc, DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}
