package asm

import (
	"strings"

	"nacho/internal/isa"
)

// mnemonics that are real single-word RV32IM instructions, keyed by name.
var realOps = map[string]isa.Op{
	"lui": isa.LUI, "auipc": isa.AUIPC,
	"beq": isa.BEQ, "bne": isa.BNE, "blt": isa.BLT, "bge": isa.BGE,
	"bltu": isa.BLTU, "bgeu": isa.BGEU,
	"lb": isa.LB, "lh": isa.LH, "lw": isa.LW, "lbu": isa.LBU, "lhu": isa.LHU,
	"sb": isa.SB, "sh": isa.SH, "sw": isa.SW,
	"addi": isa.ADDI, "slti": isa.SLTI, "sltiu": isa.SLTIU, "xori": isa.XORI,
	"ori": isa.ORI, "andi": isa.ANDI, "slli": isa.SLLI, "srli": isa.SRLI, "srai": isa.SRAI,
	"add": isa.ADD, "sub": isa.SUB, "sll": isa.SLL, "slt": isa.SLT, "sltu": isa.SLTU,
	"xor": isa.XOR, "srl": isa.SRL, "sra": isa.SRA, "or": isa.OR, "and": isa.AND,
	"fence": isa.FENCE, "ecall": isa.ECALL, "ebreak": isa.EBREAK,
	"mul": isa.MUL, "mulh": isa.MULH, "mulhsu": isa.MULHSU, "mulhu": isa.MULHU,
	"div": isa.DIV, "divu": isa.DIVU, "rem": isa.REM, "remu": isa.REMU,
}

var pseudoOps = map[string]bool{
	"nop": true, "li": true, "la": true, "mv": true, "not": true, "neg": true,
	"seqz": true, "snez": true, "sltz": true, "sgtz": true,
	"beqz": true, "bnez": true, "blez": true, "bgez": true, "bltz": true, "bgtz": true,
	"bgt": true, "ble": true, "bgtu": true, "bleu": true,
	"j": true, "jr": true, "jal": true, "jalr": true, "call": true, "ret": true, "tail": true,
}

// instrWords returns how many 32-bit words the (possibly pseudo) instruction
// expands to. The result must be identical in pass 1 and pass 2, so `li`
// chooses its form from the literal text alone.
func instrWords(line int, mnem string, ops []string) (int, error) {
	if _, ok := realOps[mnem]; ok {
		return 1, nil
	}
	if !pseudoOps[mnem] {
		return 0, errf(line, "unknown instruction %q", mnem)
	}
	switch mnem {
	case "la":
		return 2, nil
	case "li":
		if len(ops) != 2 {
			return 0, errf(line, "li needs rd, imm")
		}
		e := expr(ops[1])
		if e.isPureLiteral() {
			v, _ := (&assembler{symbols: map[string]uint32{}}).eval(line, e)
			if v >= -2048 && v <= 2047 {
				return 1, nil
			}
		}
		return 2, nil
	}
	return 1, nil
}

func (a *assembler) reg(line int, s string) (isa.Reg, error) {
	r, ok := isa.RegByName(strings.ToLower(s))
	if !ok {
		return 0, errf(line, "bad register %q", s)
	}
	return r, nil
}

func (a *assembler) imm(line int, s string) (int32, error) {
	v, err := a.eval(line, expr(s))
	if err != nil {
		return 0, err
	}
	if v < -(1<<31) || v > (1<<32)-1 {
		return 0, errf(line, "immediate %d out of 32-bit range", v)
	}
	return int32(uint32(uint64(v))), nil
}

// memOperand parses "off(reg)", "(reg)", or "sym+4(reg)".
func (a *assembler) memOperand(line int, s string) (int32, isa.Reg, error) {
	open := strings.LastIndexByte(s, '(')
	if open < 0 || !strings.HasSuffix(s, ")") {
		return 0, 0, errf(line, "bad memory operand %q (want off(reg))", s)
	}
	r, err := a.reg(line, s[open+1:len(s)-1])
	if err != nil {
		return 0, 0, err
	}
	offStr := strings.TrimSpace(s[:open])
	if offStr == "" {
		return 0, r, nil
	}
	off, err := a.imm(line, offStr)
	return off, r, err
}

// relTarget evaluates a branch/jump target symbol or expression as a
// pc-relative offset from the instruction at pc.
func (a *assembler) relTarget(line int, s string, pc uint32) (int32, error) {
	v, err := a.eval(line, expr(s))
	if err != nil {
		return 0, err
	}
	return int32(uint32(v) - pc), nil
}

func (a *assembler) needOps(line int, mnem string, ops []string, n int) error {
	if len(ops) != n {
		return errf(line, "%s needs %d operands, got %d", mnem, n, len(ops))
	}
	return nil
}

// encodeInstr expands an item into concrete instructions in pass 2.
func (a *assembler) encodeInstr(it item) ([]isa.Instr, error) {
	line, mnem, ops, pc := it.line, it.mnem, it.ops, it.addr
	need := func(n int) error { return a.needOps(line, mnem, ops, n) }

	if op, ok := realOps[mnem]; ok {
		return a.encodeReal(it, op)
	}

	switch mnem {
	case "nop":
		return []isa.Instr{{Op: isa.ADDI}}, nil
	case "li":
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err := a.reg(line, ops[0])
		if err != nil {
			return nil, err
		}
		v, err := a.imm(line, ops[1])
		if err != nil {
			return nil, err
		}
		if it.size == 4 {
			return []isa.Instr{{Op: isa.ADDI, Rd: rd, Imm: v}}, nil
		}
		return loadImm32(rd, v), nil
	case "la":
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err := a.reg(line, ops[0])
		if err != nil {
			return nil, err
		}
		v, err := a.imm(line, ops[1])
		if err != nil {
			return nil, err
		}
		return loadImm32(rd, v), nil
	case "mv":
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err := a.reg(line, ops[0])
		if err != nil {
			return nil, err
		}
		rs, err := a.reg(line, ops[1])
		if err != nil {
			return nil, err
		}
		return []isa.Instr{{Op: isa.ADDI, Rd: rd, Rs1: rs}}, nil
	case "not":
		rd, rs, err := a.twoRegs(line, mnem, ops)
		if err != nil {
			return nil, err
		}
		return []isa.Instr{{Op: isa.XORI, Rd: rd, Rs1: rs, Imm: -1}}, nil
	case "neg":
		rd, rs, err := a.twoRegs(line, mnem, ops)
		if err != nil {
			return nil, err
		}
		return []isa.Instr{{Op: isa.SUB, Rd: rd, Rs2: rs}}, nil
	case "seqz":
		rd, rs, err := a.twoRegs(line, mnem, ops)
		if err != nil {
			return nil, err
		}
		return []isa.Instr{{Op: isa.SLTIU, Rd: rd, Rs1: rs, Imm: 1}}, nil
	case "snez":
		rd, rs, err := a.twoRegs(line, mnem, ops)
		if err != nil {
			return nil, err
		}
		return []isa.Instr{{Op: isa.SLTU, Rd: rd, Rs2: rs}}, nil
	case "sltz":
		rd, rs, err := a.twoRegs(line, mnem, ops)
		if err != nil {
			return nil, err
		}
		return []isa.Instr{{Op: isa.SLT, Rd: rd, Rs1: rs}}, nil
	case "sgtz":
		rd, rs, err := a.twoRegs(line, mnem, ops)
		if err != nil {
			return nil, err
		}
		return []isa.Instr{{Op: isa.SLT, Rd: rd, Rs2: rs}}, nil
	case "beqz", "bnez", "blez", "bgez", "bltz", "bgtz":
		if err := need(2); err != nil {
			return nil, err
		}
		rs, err := a.reg(line, ops[0])
		if err != nil {
			return nil, err
		}
		off, err := a.relTarget(line, ops[1], pc)
		if err != nil {
			return nil, err
		}
		switch mnem {
		case "beqz":
			return []isa.Instr{{Op: isa.BEQ, Rs1: rs, Imm: off}}, nil
		case "bnez":
			return []isa.Instr{{Op: isa.BNE, Rs1: rs, Imm: off}}, nil
		case "blez":
			return []isa.Instr{{Op: isa.BGE, Rs2: rs, Imm: off}}, nil
		case "bgez":
			return []isa.Instr{{Op: isa.BGE, Rs1: rs, Imm: off}}, nil
		case "bltz":
			return []isa.Instr{{Op: isa.BLT, Rs1: rs, Imm: off}}, nil
		default: // bgtz
			return []isa.Instr{{Op: isa.BLT, Rs2: rs, Imm: off}}, nil
		}
	case "bgt", "ble", "bgtu", "bleu":
		if err := need(3); err != nil {
			return nil, err
		}
		rs1, err := a.reg(line, ops[0])
		if err != nil {
			return nil, err
		}
		rs2, err := a.reg(line, ops[1])
		if err != nil {
			return nil, err
		}
		off, err := a.relTarget(line, ops[2], pc)
		if err != nil {
			return nil, err
		}
		// Swapped-operand forms of blt/bge.
		switch mnem {
		case "bgt":
			return []isa.Instr{{Op: isa.BLT, Rs1: rs2, Rs2: rs1, Imm: off}}, nil
		case "ble":
			return []isa.Instr{{Op: isa.BGE, Rs1: rs2, Rs2: rs1, Imm: off}}, nil
		case "bgtu":
			return []isa.Instr{{Op: isa.BLTU, Rs1: rs2, Rs2: rs1, Imm: off}}, nil
		default: // bleu
			return []isa.Instr{{Op: isa.BGEU, Rs1: rs2, Rs2: rs1, Imm: off}}, nil
		}
	case "j", "tail":
		if err := need(1); err != nil {
			return nil, err
		}
		off, err := a.relTarget(line, ops[0], pc)
		if err != nil {
			return nil, err
		}
		return []isa.Instr{{Op: isa.JAL, Rd: isa.Zero, Imm: off}}, nil
	case "jr":
		if err := need(1); err != nil {
			return nil, err
		}
		rs, err := a.reg(line, ops[0])
		if err != nil {
			return nil, err
		}
		return []isa.Instr{{Op: isa.JALR, Rd: isa.Zero, Rs1: rs}}, nil
	case "jal":
		switch len(ops) {
		case 1:
			off, err := a.relTarget(line, ops[0], pc)
			if err != nil {
				return nil, err
			}
			return []isa.Instr{{Op: isa.JAL, Rd: isa.RA, Imm: off}}, nil
		case 2:
			rd, err := a.reg(line, ops[0])
			if err != nil {
				return nil, err
			}
			off, err := a.relTarget(line, ops[1], pc)
			if err != nil {
				return nil, err
			}
			return []isa.Instr{{Op: isa.JAL, Rd: rd, Imm: off}}, nil
		}
		return nil, errf(line, "jal needs 1 or 2 operands")
	case "jalr":
		switch len(ops) {
		case 1:
			rs, err := a.reg(line, ops[0])
			if err != nil {
				return nil, err
			}
			return []isa.Instr{{Op: isa.JALR, Rd: isa.RA, Rs1: rs}}, nil
		case 2:
			rd, err := a.reg(line, ops[0])
			if err != nil {
				return nil, err
			}
			off, rs, err := a.memOperand(line, ops[1])
			if err != nil {
				return nil, err
			}
			return []isa.Instr{{Op: isa.JALR, Rd: rd, Rs1: rs, Imm: off}}, nil
		}
		return nil, errf(line, "jalr needs 1 or 2 operands")
	case "call":
		if err := need(1); err != nil {
			return nil, err
		}
		off, err := a.relTarget(line, ops[0], pc)
		if err != nil {
			return nil, err
		}
		return []isa.Instr{{Op: isa.JAL, Rd: isa.RA, Imm: off}}, nil
	case "ret":
		return []isa.Instr{{Op: isa.JALR, Rd: isa.Zero, Rs1: isa.RA}}, nil
	}
	return nil, errf(line, "unknown instruction %q", mnem)
}

func (a *assembler) twoRegs(line int, mnem string, ops []string) (isa.Reg, isa.Reg, error) {
	if err := a.needOps(line, mnem, ops, 2); err != nil {
		return 0, 0, err
	}
	rd, err := a.reg(line, ops[0])
	if err != nil {
		return 0, 0, err
	}
	rs, err := a.reg(line, ops[1])
	return rd, rs, err
}

// loadImm32 materializes an arbitrary 32-bit constant with lui+addi.
func loadImm32(rd isa.Reg, v int32) []isa.Instr {
	lo := v << 20 >> 20 // low 12 bits, sign extended
	hi := uint32(v) - uint32(lo)
	if hi == 0 {
		// Still emit two words (sizing was fixed in pass 1): lui rd,0 clears.
		return []isa.Instr{{Op: isa.LUI, Rd: rd, Imm: 0}, {Op: isa.ADDI, Rd: rd, Rs1: rd, Imm: lo}}
	}
	return []isa.Instr{
		{Op: isa.LUI, Rd: rd, Imm: int32(hi)},
		{Op: isa.ADDI, Rd: rd, Rs1: rd, Imm: lo},
	}
}

func (a *assembler) encodeReal(it item, op isa.Op) ([]isa.Instr, error) {
	line, mnem, ops, pc := it.line, it.mnem, it.ops, it.addr
	switch {
	case op == isa.LUI || op == isa.AUIPC:
		if err := a.needOps(line, mnem, ops, 2); err != nil {
			return nil, err
		}
		rd, err := a.reg(line, ops[0])
		if err != nil {
			return nil, err
		}
		v, err := a.imm(line, ops[1])
		if err != nil {
			return nil, err
		}
		if uint32(v) > 0xFFFFF {
			return nil, errf(line, "%s immediate 0x%x out of 20-bit range", mnem, uint32(v))
		}
		return []isa.Instr{{Op: op, Rd: rd, Imm: v << 12}}, nil
	case op.IsBranch():
		if err := a.needOps(line, mnem, ops, 3); err != nil {
			return nil, err
		}
		rs1, err := a.reg(line, ops[0])
		if err != nil {
			return nil, err
		}
		rs2, err := a.reg(line, ops[1])
		if err != nil {
			return nil, err
		}
		off, err := a.relTarget(line, ops[2], pc)
		if err != nil {
			return nil, err
		}
		return []isa.Instr{{Op: op, Rs1: rs1, Rs2: rs2, Imm: off}}, nil
	case op.IsLoad():
		if err := a.needOps(line, mnem, ops, 2); err != nil {
			return nil, err
		}
		rd, err := a.reg(line, ops[0])
		if err != nil {
			return nil, err
		}
		off, rs1, err := a.memOperand(line, ops[1])
		if err != nil {
			return nil, err
		}
		return []isa.Instr{{Op: op, Rd: rd, Rs1: rs1, Imm: off}}, nil
	case op.IsStore():
		if err := a.needOps(line, mnem, ops, 2); err != nil {
			return nil, err
		}
		rs2, err := a.reg(line, ops[0])
		if err != nil {
			return nil, err
		}
		off, rs1, err := a.memOperand(line, ops[1])
		if err != nil {
			return nil, err
		}
		return []isa.Instr{{Op: op, Rs1: rs1, Rs2: rs2, Imm: off}}, nil
	case op >= isa.ADDI && op <= isa.SRAI:
		if err := a.needOps(line, mnem, ops, 3); err != nil {
			return nil, err
		}
		rd, err := a.reg(line, ops[0])
		if err != nil {
			return nil, err
		}
		rs1, err := a.reg(line, ops[1])
		if err != nil {
			return nil, err
		}
		v, err := a.imm(line, ops[2])
		if err != nil {
			return nil, err
		}
		return []isa.Instr{{Op: op, Rd: rd, Rs1: rs1, Imm: v}}, nil
	case op >= isa.ADD && op <= isa.AND || op >= isa.MUL && op <= isa.REMU:
		if err := a.needOps(line, mnem, ops, 3); err != nil {
			return nil, err
		}
		rd, err := a.reg(line, ops[0])
		if err != nil {
			return nil, err
		}
		rs1, err := a.reg(line, ops[1])
		if err != nil {
			return nil, err
		}
		rs2, err := a.reg(line, ops[2])
		if err != nil {
			return nil, err
		}
		return []isa.Instr{{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2}}, nil
	case op == isa.FENCE || op == isa.ECALL || op == isa.EBREAK:
		return []isa.Instr{{Op: op}}, nil
	}
	return nil, errf(line, "unhandled op %v", op)
}
