package asm

import "testing"

// FuzzAssemble checks the assembler never panics on arbitrary source and
// that successful assemblies produce decodable text segments.
func FuzzAssemble(f *testing.F) {
	f.Add("_start:\n nop\n")
	f.Add(".data\nx: .word 1, 2\n.text\n_start: la a0, x\n lw a1, (a0)\n")
	f.Add(".equ N, 4*3\n_start: li a0, N\n beqz a0, _start\n")
	f.Add("\t.asciz \"hi\\n\"\n")
	f.Add("a: b: c: .balign 8\n")
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Assemble(src, DefaultOptions())
		if err != nil {
			return
		}
		for _, seg := range p.Segments {
			_ = seg // segments must be internally consistent
			if len(seg.Data) > 1<<26 {
				t.Fatalf("segment unreasonably large: %d", len(seg.Data))
			}
		}
	})
}
