package asm

import "strings"

// directive handles one assembler directive line during pass 1.
func (a *assembler) directive(line int, text string) error {
	mnem, ops, err := splitInstr(line, text)
	if err != nil {
		return err
	}
	switch mnem {
	case ".text":
		a.cur = secText
		return nil
	case ".data", ".rodata", ".bss":
		a.cur = secData
		return nil
	case ".section":
		if len(ops) < 1 {
			return errf(line, ".section needs a name")
		}
		if strings.HasPrefix(ops[0], ".text") {
			a.cur = secText
		} else {
			a.cur = secData
		}
		return nil
	case ".globl", ".global", ".local", ".type", ".size", ".file", ".option", ".attribute", ".p2align_ignored":
		return nil // accepted and ignored, like a linker-less toolchain
	case ".word", ".long":
		return a.dataElems(line, ops, 4)
	case ".half", ".short":
		return a.dataElems(line, ops, 2)
	case ".byte":
		return a.dataElems(line, ops, 1)
	case ".ascii", ".asciz", ".string":
		if len(ops) != 1 {
			return errf(line, "%s needs one string operand", mnem)
		}
		b, err := parseString(line, ops[0])
		if err != nil {
			return err
		}
		if mnem != ".ascii" {
			b = append(b, 0)
		}
		a.emit(item{line: line, size: uint32(len(b)), data: b})
		return nil
	case ".space", ".zero", ".skip":
		if len(ops) != 1 {
			return errf(line, "%s needs one operand", mnem)
		}
		n, err := a.eval(line, expr(ops[0]))
		if err != nil {
			return err
		}
		if n < 0 || n > 1<<24 {
			return errf(line, "%s size %d out of range", mnem, n)
		}
		a.emit(item{line: line, size: uint32(n), data: make([]byte, n)})
		return nil
	case ".balign", ".align", ".p2align":
		if len(ops) < 1 {
			return errf(line, "%s needs an operand", mnem)
		}
		n, err := a.eval(line, expr(ops[0]))
		if err != nil {
			return err
		}
		align := uint32(n)
		if mnem != ".balign" {
			if n < 0 || n > 16 {
				return errf(line, "%s exponent %d out of range", mnem, n)
			}
			align = 1 << uint(n)
		}
		if align == 0 || align&(align-1) != 0 {
			return errf(line, "alignment %d is not a power of two", align)
		}
		pad := (align - a.here()%align) % align
		if pad > 0 {
			a.emit(item{line: line, size: pad, data: make([]byte, pad)})
		}
		return nil
	case ".equ", ".set":
		if len(ops) != 2 {
			return errf(line, "%s needs name, value", mnem)
		}
		if !validSymbol(ops[0]) {
			return errf(line, "invalid symbol %q", ops[0])
		}
		v, err := a.eval(line, expr(ops[1]))
		if err != nil {
			return err
		}
		if _, dup := a.symbols[ops[0]]; dup {
			return errf(line, "duplicate symbol %q", ops[0])
		}
		a.symbols[ops[0]] = uint32(v)
		return nil
	}
	return errf(line, "unknown directive %q", mnem)
}

func (a *assembler) dataElems(line int, ops []string, elemSz uint32) error {
	if len(ops) == 0 {
		return errf(line, "data directive needs at least one value")
	}
	exprs := make([]expr, len(ops))
	for i, o := range ops {
		exprs[i] = expr(o)
	}
	a.emit(item{line: line, size: elemSz * uint32(len(ops)), wordExx: exprs, elemSz: elemSz})
	return nil
}

func parseString(line int, lit string) ([]byte, error) {
	if len(lit) < 2 || lit[0] != '"' || lit[len(lit)-1] != '"' {
		return nil, errf(line, "bad string literal %s", lit)
	}
	body := lit[1 : len(lit)-1]
	var out []byte
	for i := 0; i < len(body); i++ {
		c := body[i]
		if c != '\\' {
			out = append(out, c)
			continue
		}
		i++
		if i >= len(body) {
			return nil, errf(line, "trailing backslash in string")
		}
		switch body[i] {
		case 'n':
			out = append(out, '\n')
		case 't':
			out = append(out, '\t')
		case '0':
			out = append(out, 0)
		case '\\':
			out = append(out, '\\')
		case '"':
			out = append(out, '"')
		default:
			return nil, errf(line, "unknown string escape '\\%c'", body[i])
		}
	}
	return out, nil
}
