// Package asm implements a two-pass assembler for RV32IM used to build the
// benchmark programs of the NACHO reproduction.
//
// The paper compiles its benchmarks with clang 16 at -O3 (Section 6.1.1);
// this repository instead assembles hand-written, register-allocated RISC-V
// sources (see DESIGN.md, substitution table). The assembler supports the
// common GNU-style subset: labels, `.text`/`.data` sections, data directives
// (.word/.half/.byte/.asciz/.space/.balign/.align), integer expressions with
// symbols, and the standard pseudo-instructions (li, la, mv, j, call, ret,
// beqz, bgt, ...).
package asm

import (
	"fmt"
	"sort"
	"strings"

	"nacho/internal/isa"
)

// Options configures section base addresses for assembly.
type Options struct {
	TextBase uint32 // load address of the .text section
	DataBase uint32 // load address of the .data section
}

// DefaultOptions places .text at 0x0001_0000 and .data at 0x0002_0000,
// matching the memory map in DESIGN.md.
func DefaultOptions() Options {
	return Options{TextBase: 0x0001_0000, DataBase: 0x0002_0000}
}

// Segment is a contiguous chunk of the assembled image.
type Segment struct {
	Addr uint32
	Data []byte
}

// Program is the result of assembling one source: loadable segments, the
// entry point (the `_start` symbol if present, otherwise the start of .text),
// and the full symbol table.
type Program struct {
	Entry    uint32
	Segments []Segment
	Symbols  map[string]uint32
}

// Symbol returns the address of a defined symbol.
func (p *Program) Symbol(name string) (uint32, bool) {
	v, ok := p.Symbols[name]
	return v, ok
}

// Error is an assembly diagnostic carrying the 1-based source line.
type Error struct {
	Line int
	Msg  string
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("asm: line %d: %s", e.Line, e.Msg) }

func errf(line int, format string, args ...any) error {
	return &Error{Line: line, Msg: fmt.Sprintf(format, args...)}
}

type section int

const (
	secText section = iota
	secData
)

// item is one unit of output: either an instruction to encode in pass 2 or
// raw data bytes.
type item struct {
	line    int
	sec     section
	addr    uint32
	size    uint32
	mnem    string   // instruction mnemonic ("" for data)
	ops     []string // raw operand strings
	data    []byte   // literal data bytes (directives)
	wordExx []expr   // unresolved .word/.half/.byte expressions
	elemSz  uint32   // element size for wordExx
}

// Assemble translates source text into a loadable program image.
func Assemble(src string, opts Options) (*Program, error) {
	a := &assembler{
		opts:    opts,
		symbols: make(map[string]uint32),
		lc:      map[section]uint32{secText: opts.TextBase, secData: opts.DataBase},
	}
	if err := a.pass1(src); err != nil {
		return nil, err
	}
	return a.pass2()
}

type assembler struct {
	opts    Options
	symbols map[string]uint32
	items   []item
	lc      map[section]uint32 // location counters
	cur     section
}

func (a *assembler) here() uint32 { return a.lc[a.cur] }

func (a *assembler) emit(it item) {
	it.sec = a.cur
	it.addr = a.here()
	a.items = append(a.items, it)
	a.lc[a.cur] += it.size
}

func (a *assembler) pass1(src string) error {
	for i, raw := range strings.Split(src, "\n") {
		line := i + 1
		text := stripComment(raw)
		// Peel off any leading labels.
		for {
			trimmed := strings.TrimSpace(text)
			idx := labelEnd(trimmed)
			if idx < 0 {
				text = trimmed
				break
			}
			name := trimmed[:idx]
			if !validSymbol(name) {
				return errf(line, "invalid label %q", name)
			}
			if _, dup := a.symbols[name]; dup {
				return errf(line, "duplicate label %q", name)
			}
			a.symbols[name] = a.here()
			text = trimmed[idx+1:]
		}
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, ".") {
			if err := a.directive(line, text); err != nil {
				return err
			}
			continue
		}
		mnem, ops, err := splitInstr(line, text)
		if err != nil {
			return err
		}
		n, err := instrWords(line, mnem, ops)
		if err != nil {
			return err
		}
		a.emit(item{line: line, size: uint32(4 * n), mnem: mnem, ops: ops})
	}
	return nil
}

// labelEnd returns the index of the ':' terminating a leading label, or -1.
func labelEnd(s string) int {
	for i, c := range s {
		switch {
		case c == ':':
			if i == 0 {
				return -1
			}
			return i
		case isSymbolChar(byte(c), i == 0):
			continue
		default:
			return -1
		}
	}
	return -1
}

func stripComment(s string) string {
	inStr := false
	for i := 0; i < len(s); i++ {
		switch {
		case s[i] == '"':
			inStr = !inStr
		case inStr:
			if s[i] == '\\' {
				i++
			}
		case s[i] == '#':
			return s[:i]
		case s[i] == '/' && i+1 < len(s) && s[i+1] == '/':
			return s[:i]
		}
	}
	return s
}

func isSymbolChar(c byte, first bool) bool {
	if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == '.' || c == '$' {
		return true
	}
	return !first && c >= '0' && c <= '9'
}

func validSymbol(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		if !isSymbolChar(s[i], i == 0) {
			return false
		}
	}
	return true
}

// splitInstr separates a mnemonic from its comma-separated operand list.
func splitInstr(line int, text string) (string, []string, error) {
	sp := strings.IndexAny(text, " \t")
	if sp < 0 {
		return strings.ToLower(text), nil, nil
	}
	mnem := strings.ToLower(text[:sp])
	rest := strings.TrimSpace(text[sp+1:])
	if rest == "" {
		return mnem, nil, nil
	}
	var ops []string
	depth := 0
	start := 0
	inStr := false
	for i := 0; i < len(rest); i++ {
		c := rest[i]
		switch {
		case inStr:
			if c == '\\' {
				i++
			} else if c == '"' {
				inStr = false
			}
		case c == '"':
			inStr = true
		case c == '(':
			depth++
		case c == ')':
			depth--
		case c == ',' && depth == 0:
			ops = append(ops, strings.TrimSpace(rest[start:i]))
			start = i + 1
		}
	}
	if depth != 0 || inStr {
		return "", nil, errf(line, "unbalanced parentheses or quotes in %q", text)
	}
	ops = append(ops, strings.TrimSpace(rest[start:]))
	for _, o := range ops {
		if o == "" {
			return "", nil, errf(line, "empty operand in %q", text)
		}
	}
	return mnem, ops, nil
}

func (a *assembler) pass2() (*Program, error) {
	images := map[section][]byte{}
	base := map[section]uint32{secText: a.opts.TextBase, secData: a.opts.DataBase}
	for _, it := range a.items {
		img := images[it.sec]
		off := it.addr - base[it.sec]
		for uint32(len(img)) < off {
			img = append(img, 0)
		}
		var bytesOut []byte
		switch {
		case it.mnem != "":
			instrs, err := a.encodeInstr(it)
			if err != nil {
				return nil, err
			}
			for _, in := range instrs {
				w, err := isa.Encode(in)
				if err != nil {
					return nil, errf(it.line, "%v", err)
				}
				bytesOut = append(bytesOut, byte(w), byte(w>>8), byte(w>>16), byte(w>>24))
			}
		case it.wordExx != nil:
			for _, e := range it.wordExx {
				v, err := a.eval(it.line, e)
				if err != nil {
					return nil, err
				}
				u := uint32(v)
				switch it.elemSz {
				case 1:
					if v < -128 || v > 255 {
						return nil, errf(it.line, ".byte value %d out of range", v)
					}
					bytesOut = append(bytesOut, byte(u))
				case 2:
					if v < -32768 || v > 65535 {
						return nil, errf(it.line, ".half value %d out of range", v)
					}
					bytesOut = append(bytesOut, byte(u), byte(u>>8))
				default:
					bytesOut = append(bytesOut, byte(u), byte(u>>8), byte(u>>16), byte(u>>24))
				}
			}
		default:
			bytesOut = it.data
		}
		if uint32(len(bytesOut)) > it.size {
			return nil, errf(it.line, "internal: item grew from %d to %d bytes", it.size, len(bytesOut))
		}
		img = append(img, bytesOut...)
		for uint32(len(img)) < off+it.size {
			img = append(img, 0)
		}
		images[it.sec] = img
	}

	p := &Program{Symbols: a.symbols}
	var secs []section
	for s := range images {
		secs = append(secs, s)
	}
	sort.Slice(secs, func(i, j int) bool { return base[secs[i]] < base[secs[j]] })
	for _, s := range secs {
		if len(images[s]) > 0 {
			p.Segments = append(p.Segments, Segment{Addr: base[s], Data: images[s]})
		}
	}
	if e, ok := a.symbols["_start"]; ok {
		p.Entry = e
	} else {
		p.Entry = a.opts.TextBase
	}
	return p, nil
}
