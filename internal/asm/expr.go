package asm

import (
	"strconv"
	"strings"
)

// expr is an unevaluated integer expression: literals, symbols, unary minus,
// and left-associative + - * between terms. Expressions are evaluated in
// pass 2 so symbols may be defined anywhere in the source.
type expr string

// isPureLiteral reports whether the expression contains no symbol references,
// i.e. it evaluates to the same value in pass 1 and pass 2.
func (e expr) isPureLiteral() bool {
	_, err := (&assembler{symbols: map[string]uint32{}}).eval(0, e)
	return err == nil
}

func (a *assembler) eval(line int, e expr) (int64, error) {
	p := exprParser{src: string(e), line: line, syms: a.symbols}
	v, err := p.parse()
	if err != nil {
		return 0, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return 0, errf(line, "trailing junk in expression %q", e)
	}
	return v, nil
}

type exprParser struct {
	src  string
	pos  int
	line int
	syms map[string]uint32
}

func (p *exprParser) skipSpace() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t') {
		p.pos++
	}
}

func (p *exprParser) parse() (int64, error) {
	v, err := p.mul()
	if err != nil {
		return 0, err
	}
	for {
		p.skipSpace()
		if p.pos >= len(p.src) {
			return v, nil
		}
		switch p.src[p.pos] {
		case '+':
			p.pos++
			t, err := p.mul()
			if err != nil {
				return 0, err
			}
			v += t
		case '-':
			p.pos++
			t, err := p.mul()
			if err != nil {
				return 0, err
			}
			v -= t
		default:
			return v, nil
		}
	}
}

func (p *exprParser) mul() (int64, error) {
	v, err := p.term()
	if err != nil {
		return 0, err
	}
	for {
		p.skipSpace()
		if p.pos < len(p.src) && p.src[p.pos] == '*' {
			p.pos++
			t, err := p.term()
			if err != nil {
				return 0, err
			}
			v *= t
			continue
		}
		return v, nil
	}
}

func (p *exprParser) term() (int64, error) {
	p.skipSpace()
	if p.pos >= len(p.src) {
		return 0, errf(p.line, "unexpected end of expression %q", p.src)
	}
	c := p.src[p.pos]
	switch {
	case c == '%':
		return p.reloc()
	case c == '-':
		p.pos++
		v, err := p.term()
		return -v, err
	case c == '(':
		p.pos++
		v, err := p.parse()
		if err != nil {
			return 0, err
		}
		p.skipSpace()
		if p.pos >= len(p.src) || p.src[p.pos] != ')' {
			return 0, errf(p.line, "missing ')' in expression %q", p.src)
		}
		p.pos++
		return v, nil
	case c == '\'':
		return p.charLiteral()
	case c >= '0' && c <= '9':
		return p.number()
	case isSymbolChar(c, true):
		start := p.pos
		for p.pos < len(p.src) && isSymbolChar(p.src[p.pos], p.pos == start) {
			p.pos++
		}
		name := p.src[start:p.pos]
		v, ok := p.syms[name]
		if !ok {
			return 0, errf(p.line, "undefined symbol %q", name)
		}
		return int64(v), nil
	}
	return 0, errf(p.line, "unexpected %q in expression %q", string(c), p.src)
}

// reloc parses the %hi(expr) / %lo(expr) relocation operators: %hi yields
// the upper 20 bits adjusted for %lo's sign extension, so that
// (%hi(x) << 12) + signext(%lo(x)) == x — the standard lui/addi pairing.
func (p *exprParser) reloc() (int64, error) {
	rest := p.src[p.pos:]
	var hi bool
	switch {
	case strings.HasPrefix(rest, "%hi("):
		hi = true
		p.pos += 3
	case strings.HasPrefix(rest, "%lo("):
		p.pos += 3
	default:
		return 0, errf(p.line, "unknown %% operator in %q", p.src)
	}
	p.pos++ // consume '('
	v, err := p.parse()
	if err != nil {
		return 0, err
	}
	p.skipSpace()
	if p.pos >= len(p.src) || p.src[p.pos] != ')' {
		return 0, errf(p.line, "missing ')' after %%hi/%%lo")
	}
	p.pos++
	u := uint32(v)
	if hi {
		return int64((u + 0x800) >> 12), nil
	}
	lo := int64(int32(u<<20) >> 20) // sign-extended low 12 bits
	return lo, nil
}

func (p *exprParser) number() (int64, error) {
	start := p.pos
	for p.pos < len(p.src) && (isSymbolChar(p.src[p.pos], false) || p.src[p.pos] == 'x' || p.src[p.pos] == 'X') {
		p.pos++
	}
	lit := strings.ToLower(p.src[start:p.pos])
	v, err := strconv.ParseInt(lit, 0, 64)
	if err != nil {
		// Also accept unsigned 32-bit hex like 0xFFFFFFFF.
		u, uerr := strconv.ParseUint(lit, 0, 32)
		if uerr != nil {
			return 0, errf(p.line, "bad number %q", lit)
		}
		v = int64(u)
	}
	return v, nil
}

func (p *exprParser) charLiteral() (int64, error) {
	s := p.src[p.pos:]
	if len(s) < 3 {
		return 0, errf(p.line, "bad character literal")
	}
	if s[1] == '\\' {
		if len(s) < 4 || s[3] != '\'' {
			return 0, errf(p.line, "bad character escape")
		}
		p.pos += 4
		switch s[2] {
		case 'n':
			return '\n', nil
		case 't':
			return '\t', nil
		case '0':
			return 0, nil
		case '\\':
			return '\\', nil
		case '\'':
			return '\'', nil
		}
		return 0, errf(p.line, "unknown escape '\\%c'", s[2])
	}
	if s[2] != '\'' {
		return 0, errf(p.line, "bad character literal")
	}
	p.pos += 3
	return int64(s[1]), nil
}
